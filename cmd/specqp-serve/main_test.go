package main

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// writeFixture writes a small triples TSV and rules TSV into dir.
func writeFixture(t *testing.T, dir string) (triples, rules string) {
	t.Helper()
	var tb strings.Builder
	for _, row := range []struct {
		s, o  string
		score float64
	}{
		{"shakira", "singer", 100}, {"beyonce", "singer", 90}, {"miley", "singer", 50},
		{"prince", "vocalist", 95}, {"elton", "vocalist", 85},
		{"shakira", "guitarist", 40}, {"prince", "guitarist", 99},
		{"miley", "musician", 45}, {"beyonce", "musician", 70},
	} {
		fmt.Fprintf(&tb, "%s\trdf:type\t%s\t%g\n", row.s, row.o, row.score)
	}
	triples = filepath.Join(dir, "triples.tsv")
	if err := os.WriteFile(triples, []byte(tb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	// From: ?s rdf:type singer  →  To: ?s rdf:type vocalist, weight 0.8.
	rulesTSV := "?s\trdf:type\tsinger\t?s\trdf:type\tvocalist\t0.8\n" +
		"?s\trdf:type\tguitarist\t?s\trdf:type\tmusician\t0.7\n"
	rules = filepath.Join(dir, "rules.tsv")
	if err := os.WriteFile(rules, []byte(rulesTSV), 0o644); err != nil {
		t.Fatal(err)
	}
	return triples, rules
}

const smokeQuery = `SELECT ?s WHERE { ?s 'rdf:type' <singer> . ?s 'rdf:type' <guitarist> }`

// TestServeSmoke boots the full binary path through the run() seam: load a
// store, serve queries and mutations over HTTP, weather an overload burst
// without dropping an accepted answer, then drain cleanly on shutdown.
func TestServeSmoke(t *testing.T) {
	triples, rules := writeFixture(t, t.TempDir())
	shutdown := make(chan struct{})
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0",
			"-triples", triples,
			"-rules", rules,
			"-max-inflight", "2",
			"-max-queue", "2",
		}, io.Discard, shutdown, ready)
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-done:
		t.Fatalf("server exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	// A straight query works and answers.
	body := fmt.Sprintf(`{"query":%q,"k":3,"mode":"trinit"}`, smokeQuery)
	resp, err := http.Post(base+"/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(raw), `"prince"`) {
		t.Fatalf("query: %d %s", resp.StatusCode, raw)
	}

	// A mutation round-trips.
	resp, err = http.Post(base+"/insert", "application/json",
		strings.NewReader(`{"s":"bowie","p":"rdf:type","o":"singer","score":97}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("insert: %d", resp.StatusCode)
	}

	// Overload burst against the tiny (2-slot, 2-queue) server: every
	// response is either a served answer or a clean 429 — never a dropped
	// connection or a 5xx.
	var wg sync.WaitGroup
	var served, shed, other int64
	var mu sync.Mutex
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(base+"/query", "application/json", strings.NewReader(body))
			if err != nil {
				mu.Lock()
				other++
				mu.Unlock()
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			mu.Lock()
			switch resp.StatusCode {
			case http.StatusOK:
				served++
			case http.StatusTooManyRequests:
				shed++
			default:
				other++
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	if other != 0 {
		t.Fatalf("burst: %d requests neither served nor shed (served=%d shed=%d)", other, served, shed)
	}
	if served == 0 {
		t.Fatal("burst: nothing served")
	}

	// /healthz and /metrics respond.
	for _, path := range []string{"/healthz", "/metrics"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: %d", path, resp.StatusCode)
		}
	}

	// Graceful drain: shutdown exits cleanly.
	close(shutdown)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not drain")
	}
}

// TestServeDurableRecovery: mutations served over HTTP into a WAL-backed
// engine survive a restart of the whole server.
func TestServeDurableRecovery(t *testing.T) {
	dir := t.TempDir()
	triples, rules := writeFixture(t, dir)
	wal := filepath.Join(dir, "wal")

	boot := func(args []string) (string, chan struct{}, chan error) {
		shutdown := make(chan struct{})
		ready := make(chan string, 1)
		done := make(chan error, 1)
		go func() { done <- run(args, io.Discard, shutdown, ready) }()
		select {
		case addr := <-ready:
			return "http://" + addr, shutdown, done
		case err := <-done:
			t.Fatalf("server exited before ready: %v", err)
		case <-time.After(10 * time.Second):
			t.Fatal("server never became ready")
		}
		panic("unreachable")
	}

	base, shutdown, done := boot([]string{
		"-addr", "127.0.0.1:0", "-triples", triples, "-rules", rules, "-wal", wal,
	})
	resp, err := http.Post(base+"/insert", "application/json",
		strings.NewReader(`{"s":"bowie","p":"rdf:type","o":"guitarist","score":97}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("insert: %d", resp.StatusCode)
	}
	close(shutdown)
	if err := <-done; err != nil {
		t.Fatalf("drain: %v", err)
	}

	// Restart from the WAL directory alone; the served insert must be there.
	base, shutdown, done = boot([]string{"-addr", "127.0.0.1:0", "-wal", wal})
	body := fmt.Sprintf(`{"query":%q,"k":5,"mode":"naive"}`,
		`SELECT ?s WHERE { ?s 'rdf:type' <guitarist> }`)
	resp, err = http.Post(base+"/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(raw), `"bowie"`) {
		t.Fatalf("recovered query: %d %s", resp.StatusCode, raw)
	}
	close(shutdown)
	if err := <-done; err != nil {
		t.Fatalf("second drain: %v", err)
	}
}
