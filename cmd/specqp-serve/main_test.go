package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// writeFixture writes a small triples TSV and rules TSV into dir.
func writeFixture(t *testing.T, dir string) (triples, rules string) {
	t.Helper()
	var tb strings.Builder
	for _, row := range []struct {
		s, o  string
		score float64
	}{
		{"shakira", "singer", 100}, {"beyonce", "singer", 90}, {"miley", "singer", 50},
		{"prince", "vocalist", 95}, {"elton", "vocalist", 85},
		{"shakira", "guitarist", 40}, {"prince", "guitarist", 99},
		{"miley", "musician", 45}, {"beyonce", "musician", 70},
	} {
		fmt.Fprintf(&tb, "%s\trdf:type\t%s\t%g\n", row.s, row.o, row.score)
	}
	triples = filepath.Join(dir, "triples.tsv")
	if err := os.WriteFile(triples, []byte(tb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	// From: ?s rdf:type singer  →  To: ?s rdf:type vocalist, weight 0.8.
	rulesTSV := "?s\trdf:type\tsinger\t?s\trdf:type\tvocalist\t0.8\n" +
		"?s\trdf:type\tguitarist\t?s\trdf:type\tmusician\t0.7\n"
	rules = filepath.Join(dir, "rules.tsv")
	if err := os.WriteFile(rules, []byte(rulesTSV), 0o644); err != nil {
		t.Fatal(err)
	}
	return triples, rules
}

const smokeQuery = `SELECT ?s WHERE { ?s 'rdf:type' <singer> . ?s 'rdf:type' <guitarist> }`

// TestServeSmoke boots the full binary path through the run() seam: load a
// store, serve queries and mutations over HTTP, weather an overload burst
// without dropping an accepted answer, then drain cleanly on shutdown.
func TestServeSmoke(t *testing.T) {
	triples, rules := writeFixture(t, t.TempDir())
	shutdown := make(chan struct{})
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0",
			"-triples", triples,
			"-rules", rules,
			"-max-inflight", "2",
			"-max-queue", "2",
		}, io.Discard, shutdown, ready)
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-done:
		t.Fatalf("server exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	// A straight query works and answers.
	body := fmt.Sprintf(`{"query":%q,"k":3,"mode":"trinit"}`, smokeQuery)
	resp, err := http.Post(base+"/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(raw), `"prince"`) {
		t.Fatalf("query: %d %s", resp.StatusCode, raw)
	}

	// A mutation round-trips.
	resp, err = http.Post(base+"/insert", "application/json",
		strings.NewReader(`{"s":"bowie","p":"rdf:type","o":"singer","score":97}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("insert: %d", resp.StatusCode)
	}

	// Overload burst against the tiny (2-slot, 2-queue) server: every
	// response is either a served answer or a clean 429 — never a dropped
	// connection or a 5xx.
	var wg sync.WaitGroup
	var served, shed, other int64
	var mu sync.Mutex
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(base+"/query", "application/json", strings.NewReader(body))
			if err != nil {
				mu.Lock()
				other++
				mu.Unlock()
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			mu.Lock()
			switch resp.StatusCode {
			case http.StatusOK:
				served++
			case http.StatusTooManyRequests:
				shed++
			default:
				other++
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	if other != 0 {
		t.Fatalf("burst: %d requests neither served nor shed (served=%d shed=%d)", other, served, shed)
	}
	if served == 0 {
		t.Fatal("burst: nothing served")
	}

	// /healthz and /metrics respond.
	for _, path := range []string{"/healthz", "/metrics"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: %d", path, resp.StatusCode)
		}
	}

	// Graceful drain: shutdown exits cleanly.
	close(shutdown)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not drain")
	}
}

// TestServeDurableRecovery: mutations served over HTTP into a WAL-backed
// engine survive a restart of the whole server.
func TestServeDurableRecovery(t *testing.T) {
	dir := t.TempDir()
	triples, rules := writeFixture(t, dir)
	wal := filepath.Join(dir, "wal")

	boot := func(args []string) (string, chan struct{}, chan error) {
		shutdown := make(chan struct{})
		ready := make(chan string, 1)
		done := make(chan error, 1)
		go func() { done <- run(args, io.Discard, shutdown, ready) }()
		select {
		case addr := <-ready:
			return "http://" + addr, shutdown, done
		case err := <-done:
			t.Fatalf("server exited before ready: %v", err)
		case <-time.After(10 * time.Second):
			t.Fatal("server never became ready")
		}
		panic("unreachable")
	}

	base, shutdown, done := boot([]string{
		"-addr", "127.0.0.1:0", "-triples", triples, "-rules", rules, "-wal", wal,
	})
	resp, err := http.Post(base+"/insert", "application/json",
		strings.NewReader(`{"s":"bowie","p":"rdf:type","o":"guitarist","score":97}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("insert: %d", resp.StatusCode)
	}
	close(shutdown)
	if err := <-done; err != nil {
		t.Fatalf("drain: %v", err)
	}

	// Restart from the WAL directory alone; the served insert must be there.
	base, shutdown, done = boot([]string{"-addr", "127.0.0.1:0", "-wal", wal})
	body := fmt.Sprintf(`{"query":%q,"k":5,"mode":"naive"}`,
		`SELECT ?s WHERE { ?s 'rdf:type' <guitarist> }`)
	resp, err = http.Post(base+"/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(raw), `"bowie"`) {
		t.Fatalf("recovered query: %d %s", resp.StatusCode, raw)
	}
	close(shutdown)
	if err := <-done; err != nil {
		t.Fatalf("second drain: %v", err)
	}
}

// syncBuf is a goroutine-safe output sink: run() prints from the serving
// goroutine while the test reads the transcript for the bound replication
// address.
type syncBuf struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// postJSON posts body and returns the status code and response bytes.
func postJSON(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp.StatusCode, raw
}

// TestServeReplicationEndToEnd runs the two-process topology through the run()
// seam: a durable primary with -listen-repl, a follower with -replicate-from,
// both serving HTTP. Mutations posted to the primary become visible on the
// follower; its /healthz reports replica position and zero lag at quiescence;
// both processes answer every query mode identically; mutations on the
// follower shed with 503; and the follower's /metrics exports the lag gauges.
func TestServeReplicationEndToEnd(t *testing.T) {
	dir := t.TempDir()
	triples, rules := writeFixture(t, dir)
	walDir := filepath.Join(dir, "wal")

	boot := func(out io.Writer, args []string) (string, chan struct{}, chan error) {
		shutdown := make(chan struct{})
		ready := make(chan string, 1)
		done := make(chan error, 1)
		go func() { done <- run(args, out, shutdown, ready) }()
		select {
		case addr := <-ready:
			return "http://" + addr, shutdown, done
		case err := <-done:
			t.Fatalf("server exited before ready: %v", err)
		case <-time.After(10 * time.Second):
			t.Fatal("server never became ready")
		}
		panic("unreachable")
	}

	var out syncBuf
	primBase, primShutdown, primDone := boot(&out, []string{
		"-addr", "127.0.0.1:0", "-triples", triples, "-rules", rules,
		"-wal", walDir, "-listen-repl", "127.0.0.1:0",
	})

	// The primary prints the bound shipping address before signalling ready.
	var replAddr string
	for _, line := range strings.Split(out.String(), "\n") {
		if rest, ok := strings.CutPrefix(line, "replicating on "); ok {
			replAddr = rest
		}
	}
	if replAddr == "" {
		t.Fatalf("no replication address in transcript:\n%s", out.String())
	}

	folBase, folShutdown, folDone := boot(io.Discard, []string{
		"-addr", "127.0.0.1:0", "-replicate-from", replAddr, "-rules", rules,
	})

	// Mutations land on the primary...
	for _, body := range []string{
		`{"s":"bowie","p":"rdf:type","o":"singer","score":97}`,
		`{"s":"bowie","p":"rdf:type","o":"guitarist","score":88}`,
	} {
		if code, raw := postJSON(t, primBase+"/insert", body); code != http.StatusOK {
			t.Fatalf("primary insert: %d %s", code, raw)
		}
	}

	// ...and the follower's health converges to zero lag at an applied
	// position covering them, reporting itself a read-only replica.
	type health struct {
		Status     string  `json:"status"`
		Replica    bool    `json:"replica"`
		AppliedSeq *uint64 `json:"replica_applied_seq"`
		LagSeq     *uint64 `json:"replica_lag_seq"`
	}
	var h health
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(folBase + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&h)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if h.Replica && h.AppliedSeq != nil && *h.AppliedSeq >= 2 && h.LagSeq != nil && *h.LagSeq == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never caught up: %+v", h)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if h.Status != "read-only" {
		t.Fatalf("follower health status = %q, want read-only", h.Status)
	}

	// Every mode answers identically on both processes — bindings, scores and
	// relaxation masks; only the timing fields may differ.
	type answers struct {
		Answers []struct {
			Binding map[string]string `json:"binding"`
			Score   float64           `json:"score"`
			Relaxed uint32            `json:"relaxed"`
		} `json:"answers"`
	}
	for _, mode := range []string{"specqp", "trinit", "naive", "exact"} {
		body := fmt.Sprintf(`{"query":%q,"k":5,"mode":%q}`, smokeQuery, mode)
		var prim, fol answers
		code, raw := postJSON(t, primBase+"/query", body)
		if code != http.StatusOK {
			t.Fatalf("primary %s query: %d %s", mode, code, raw)
		}
		if err := json.Unmarshal(raw, &prim); err != nil {
			t.Fatal(err)
		}
		code, raw = postJSON(t, folBase+"/query", body)
		if code != http.StatusOK {
			t.Fatalf("follower %s query: %d %s", mode, code, raw)
		}
		if err := json.Unmarshal(raw, &fol); err != nil {
			t.Fatal(err)
		}
		if len(prim.Answers) == 0 || !reflect.DeepEqual(prim.Answers, fol.Answers) {
			t.Fatalf("mode %s diverged:\nprimary:  %+v\nfollower: %+v", mode, prim.Answers, fol.Answers)
		}
	}

	// Mutations on the follower shed with 503: replicas are read-only.
	if code, raw := postJSON(t, folBase+"/insert",
		`{"s":"elvis","p":"rdf:type","o":"singer","score":99}`); code != http.StatusServiceUnavailable {
		t.Fatalf("follower insert = %d %s, want 503", code, raw)
	}

	// The follower exports the replication gauges.
	resp, err := http.Get(folBase + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, gauge := range []string{"specqp_replica_lag_seq", "specqp_replica_applied_seq", "specqp_replica_connected"} {
		if !strings.Contains(string(raw), gauge) {
			t.Fatalf("follower /metrics missing %s:\n%s", gauge, raw)
		}
	}

	// A mutation after catch-up still flows: the follower tails continuously,
	// not just at bootstrap.
	if code, raw := postJSON(t, primBase+"/insert",
		`{"s":"aretha","p":"rdf:type","o":"singer","score":98}`); code != http.StatusOK {
		t.Fatalf("late primary insert: %d %s", code, raw)
	}
	lateQuery := fmt.Sprintf(`{"query":%q,"k":8,"mode":"naive"}`,
		`SELECT ?s WHERE { ?s 'rdf:type' <singer> }`)
	deadline = time.Now().Add(15 * time.Second)
	for {
		code, raw := postJSON(t, folBase+"/query", lateQuery)
		if code == http.StatusOK && strings.Contains(string(raw), `"aretha"`) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("late insert never reached the follower: %d %s", code, raw)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Both processes drain cleanly — follower first, then the primary.
	close(folShutdown)
	if err := <-folDone; err != nil {
		t.Fatalf("follower drain: %v", err)
	}
	close(primShutdown)
	if err := <-primDone; err != nil {
		t.Fatalf("primary drain: %v", err)
	}
}

// TestServeReplicationFlagRefusals pins the CLI contract: follower mode
// refuses every flag that would build or persist local state, and shipping
// requires a log to ship.
func TestServeReplicationFlagRefusals(t *testing.T) {
	triples, _ := writeFixture(t, t.TempDir())
	for _, tc := range []struct {
		name string
		args []string
		want string
	}{
		{"follower refuses -wal",
			[]string{"-replicate-from", "127.0.0.1:1", "-wal", "w"},
			"owns no log"},
		{"follower refuses -triples",
			[]string{"-replicate-from", "127.0.0.1:1", "-triples", triples},
			"ships from the primary"},
		{"follower refuses -listen-repl",
			[]string{"-replicate-from", "127.0.0.1:1", "-listen-repl", "127.0.0.1:0"},
			"cannot re-ship"},
		{"shipping requires -wal",
			[]string{"-triples", triples, "-listen-repl", "127.0.0.1:0"},
			"requires -wal"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			err := run(tc.args, io.Discard, nil, nil)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("run(%v) = %v, want error containing %q", tc.args, err, tc.want)
			}
		})
	}
}
