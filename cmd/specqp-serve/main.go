// Command specqp-serve exposes a specqp engine as a resilient HTTP/JSON
// query service (internal/server): per-client admission control, bounded
// accept queue with fast 429 shedding, deadline propagation into the
// operators, graceful degradation tiers under sustained overload, read-only
// serving when the WAL wedges, and a graceful SIGTERM drain that flushes
// in-flight requests and persists a final Sync+Checkpoint before exit.
//
// Example:
//
//	specqp-datagen -dataset xkg -out data
//	specqp-serve -triples data/xkg.triples.tsv -rules data/xkg.rules.tsv -addr :8080
//
//	curl -s localhost:8080/query -d '{"query":"SELECT ?s WHERE { ?s <rdf:type> <type:g0:t1> . ?s <rdf:type> <type:g0:t2> }","k":5}'
//	curl -s localhost:8080/healthz
//	curl -s localhost:8080/metrics
//
// Endpoints: POST /query, /batch (JSON lines), /insert, /delete, /update;
// GET /healthz, /metrics. Deadlines ride the X-Deadline-Ms header or the
// body's deadline_ms field.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/ on DefaultServeMux; exposed only behind -pprof
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"specqp"
	"specqp/internal/kg"
	"specqp/internal/metrics"
	"specqp/internal/relax"
	"specqp/internal/repl"
	"specqp/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("specqp-serve: ")
	if err := run(os.Args[1:], os.Stdout, nil, nil); err != nil {
		if err == errBadFlags {
			os.Exit(2)
		}
		log.Fatal(err)
	}
}

var errBadFlags = fmt.Errorf("invalid command line")

// run is the whole server behind a testable seam. shutdown, when non-nil,
// substitutes for process signals (tests trigger drain by closing it);
// ready, when non-nil, receives the bound listener address once the server
// accepts connections.
func run(args []string, out io.Writer, shutdown <-chan struct{}, ready chan<- string) error {
	fs := flag.NewFlagSet("specqp-serve", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	var (
		addr        = fs.String("addr", ":8080", "listen address")
		triplesPath = fs.String("triples", "", "path to triples TSV or .bin snapshot (required unless -wal holds state)")
		rulesPath   = fs.String("rules", "", "path to relaxation rules TSV (optional)")
		walDir      = fs.String("wal", "", "durable WAL directory: bootstrap from -triples or recover existing state (mutations become crash-durable)")
		walSync     = fs.String("wal-sync", "always", "WAL fsync policy: always, interval, or none")
		shards      = fs.Int("shards", 1, "store segments (-1 = one per CPU)")
		buckets     = fs.Int("buckets", 2, "histogram buckets for the estimator")
		inflight    = fs.Int("max-inflight", 0, "max concurrently executing requests (0 = 2x GOMAXPROCS)")
		queue       = fs.Int("max-queue", 0, "max requests waiting for a slot before shedding (0 = 4x max-inflight)")
		rate        = fs.Float64("rate", 0, "per-client token-bucket rate, requests/sec (0 = unlimited)")
		burst       = fs.Int("burst", 0, "per-client bucket capacity (0 = default)")
		deadline    = fs.Duration("deadline", 2*time.Second, "default per-query deadline when the request carries none")
		maxDeadline = fs.Duration("max-deadline", 30*time.Second, "upper clamp on requested deadlines")
		degradedK   = fs.Int("degraded-k", 3, "k cap at the deepest degradation tier")
		drainWait   = fs.Duration("drain-timeout", 30*time.Second, "max time to wait for in-flight requests on shutdown")

		slowQuery         = fs.Duration("slow-query", 0, "log queries slower than this as JSON lines to stderr, with their execution trace (0 = off)")
		slowQueryInterval = fs.Duration("slow-query-interval", time.Second, "minimum gap between slow-query log lines; crossings in between are counted, not logged")
		degradeLatency    = fs.Duration("degrade-latency", 0, "feed the degradation governor from completion latency: queries slower than this pressure it like a shed (0 = off)")
		pprofFlag         = fs.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ on the serving address")

		listenRepl    = fs.String("listen-repl", "", "ship the WAL to read replicas on this address (requires -wal)")
		replicateFrom = fs.String("replicate-from", "", "run as a read-only follower tailing the primary's -listen-repl address (excludes -wal and -triples; -rules still applies locally)")
	)
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return nil
		}
		return errBadFlags
	}

	var backend server.Backend
	var replMetrics *metrics.ReplicationMetrics
	switch {
	case *replicateFrom != "":
		// Follower mode: no store of its own, no log of its own — state
		// arrives exclusively through log shipping, mutations answer 503. The
		// flags that would build or persist local state are refused rather
		// than silently ignored.
		if *walDir != "" {
			return fmt.Errorf("-replicate-from runs a read-only follower; it owns no log, so -wal does not apply")
		}
		if *triplesPath != "" {
			return fmt.Errorf("-replicate-from runs a read-only follower; its state ships from the primary, so -triples does not apply")
		}
		if *listenRepl != "" {
			return fmt.Errorf("-listen-repl requires a primary's WAL; a follower cannot re-ship")
		}
		rep := specqp.NewReplica(nil, specqp.Options{HistogramBuckets: *buckets, Shards: *shards})
		if *rulesPath != "" {
			// Relaxation rules are query configuration, not shipped state: the
			// follower loads its own copy, re-encoded against each installed
			// snapshot's dictionary (snapshot installs rebuild it).
			rulesData, err := os.ReadFile(*rulesPath)
			if err != nil {
				return err
			}
			rep.SetRulesLoader(func(d *kg.Dict) (*specqp.RuleSet, error) {
				rs := specqp.NewRuleSet()
				if err := relax.ReadTSVInto(rs, bytes.NewReader(rulesData), d); err != nil {
					return nil, err
				}
				return rs, nil
			})
		}
		replMetrics = &metrics.ReplicationMetrics{}
		client := repl.NewNetClient(*replicateFrom, repl.NetClientOptions{Metrics: replMetrics})
		fol := repl.NewFollower(client, rep, repl.FollowerOptions{Metrics: replMetrics})
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() { defer wg.Done(); fol.Run(stop) }()
		defer func() { close(stop); wg.Wait(); client.Close() }()
		fmt.Fprintf(out, "following %s\n", *replicateFrom)
		backend = rep
	default:
		eng, err := buildEngine(*triplesPath, *rulesPath, *walDir, *walSync, *shards, *buckets, out)
		if err != nil {
			return err
		}
		defer eng.Close()
		if *listenRepl != "" {
			feed := eng.WALFeed()
			if feed == nil {
				return fmt.Errorf("-listen-repl requires -wal: without a write-ahead log there is nothing to ship")
			}
			prim := repl.NewPrimary(feed, repl.PrimaryOptions{})
			rln, err := net.Listen("tcp", *listenRepl)
			if err != nil {
				return err
			}
			go prim.Serve(rln)
			defer prim.Close()
			fmt.Fprintf(out, "replicating on %s\n", rln.Addr())
		}
		backend = eng
	}

	srv := server.New(server.Config{
		Backend:            backend,
		MaxInflight:        *inflight,
		MaxQueue:           *queue,
		RatePerClient:      *rate,
		BurstPerClient:     *burst,
		DefaultDeadline:    *deadline,
		MaxDeadline:        *maxDeadline,
		DegradedK:          *degradedK,
		Replication:        replMetrics,
		SlowQueryThreshold: *slowQuery,
		SlowQueryInterval:  *slowQueryInterval,
		DegradeLatency:     *degradeLatency,
	})

	handler := srv.Handler()
	if *pprofFlag {
		// The profiling routes bypass the admission pipeline on purpose — an
		// overloaded server is exactly when a profile is needed, and a 429 on
		// /debug/pprof/profile would make the tool useless. net/http/pprof
		// registers on http.DefaultServeMux at import; an outer mux routes the
		// debug prefix there and everything else to the admission-controlled
		// handler.
		outer := http.NewServeMux()
		outer.Handle("/debug/pprof/", http.DefaultServeMux)
		outer.Handle("/", handler)
		handler = outer
	}

	hs := &http.Server{
		Handler: handler,
		// Slow-loris protection: a connection that trickles its headers or
		// body is cut, releasing whatever it holds, instead of pinning a
		// slot forever.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      2 * *maxDeadline,
		IdleTimeout:       2 * time.Minute,
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if eng, ok := backend.(*specqp.Engine); ok {
		fmt.Fprintf(out, "serving %d triples on %s\n", eng.Graph().Len(), ln.Addr())
	} else {
		fmt.Fprintf(out, "serving read-only replica on %s\n", ln.Addr())
	}
	if ready != nil {
		ready <- ln.Addr().String()
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	// Graceful shutdown: on SIGTERM/SIGINT (or the test shutdown channel),
	// stop accepting, drain in-flight requests, flush durable state, exit 0.
	sig := make(chan os.Signal, 1)
	if shutdown == nil {
		signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	}
	select {
	case err := <-serveErr:
		return err
	case s := <-sig:
		fmt.Fprintf(out, "received %v, draining\n", s)
	case <-shutdown:
		fmt.Fprintf(out, "shutdown requested, draining\n")
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	// Drain first (stops admission, waits for in-flight, flushes the WAL),
	// then close the HTTP layer; Shutdown reuses the same deadline.
	if err := srv.Drain(ctx); err != nil {
		hs.Close()
		return err
	}
	if err := hs.Shutdown(ctx); err != nil {
		return err
	}
	fmt.Fprintf(out, "drained cleanly\n")
	return nil
}

// buildEngine loads the store exactly like the specqp CLI does: a flat or
// sharded in-memory engine from -triples, or a durable engine bootstrapped
// into / recovered from -wal.
func buildEngine(triplesPath, rulesPath, walDir, walSync string, shards, buckets int, out io.Writer) (*specqp.Engine, error) {
	syncPolicy, err := specqp.ParseSyncPolicy(walSync)
	if err != nil {
		return nil, err
	}
	opts := specqp.Options{
		HistogramBuckets: buckets,
		Shards:           shards,
		SyncPolicy:       syncPolicy,
	}
	rules := specqp.NewRuleSet()
	var eng *specqp.Engine
	switch {
	case walDir != "":
		recovered, err := specqp.DurableStateExists(walDir)
		if err != nil {
			return nil, err
		}
		if recovered {
			if triplesPath != "" {
				return nil, fmt.Errorf("-wal %s already holds durable state; omit -triples", walDir)
			}
			if eng, err = specqp.OpenDurable(walDir, rules, opts); err != nil {
				return nil, err
			}
			fmt.Fprintf(out, "recovered %d triples from %s\n", eng.Graph().Len(), walDir)
		} else {
			var st *kg.Store
			if triplesPath != "" {
				if st, err = loadTriples(triplesPath); err != nil {
					return nil, err
				}
			}
			if eng, err = specqp.OpenDurableWith(walDir, st, rules, opts); err != nil {
				return nil, err
			}
			fmt.Fprintf(out, "bootstrapped %s (sync=%v)\n", walDir, syncPolicy)
		}
	default:
		if triplesPath == "" {
			return nil, fmt.Errorf("-triples is required (or -wal with existing durable state)")
		}
		st, err := loadTriples(triplesPath)
		if err != nil {
			return nil, err
		}
		eng = specqp.NewEngineWith(st, rules, opts)
	}
	if rulesPath != "" {
		f, err := os.Open(rulesPath)
		if err != nil {
			eng.Close()
			return nil, err
		}
		err = relax.ReadTSVInto(rules, f, eng.Graph().Dict())
		f.Close()
		if err != nil {
			eng.Close()
			return nil, err
		}
	}
	return eng, nil
}

func loadTriples(path string) (*kg.Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".bin") {
		return kg.ReadBinary(f)
	}
	return kg.ReadTSV(f)
}
