// Command specqp is a command-line query runner: it loads a scored triple
// store (TSV) and a relaxation rule set (TSV), then executes SPARQL-subset
// queries — from -query, from a file, or interactively from stdin — under a
// chosen engine (spec-qp, trinit, naive), printing ranked answers and the
// efficiency metrics the paper reports.
//
// Example:
//
//	specqp-datagen -dataset xkg -out data
//	specqp -triples data/xkg.triples.tsv -rules data/xkg.rules.tsv \
//	       -k 10 -mode spec-qp -explain \
//	       -query "SELECT ?s WHERE { ?s <rdf:type> <type:g0:t1> . ?s <rdf:type> <type:g0:t2> }"
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"specqp"
	"specqp/internal/kg"
	"specqp/internal/relax"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("specqp: ")
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		if err == errBadFlags {
			// The FlagSet already printed the problem and usage.
			os.Exit(2)
		}
		log.Fatal(err)
	}
}

// errBadFlags signals a flag-parse failure the FlagSet has already reported,
// so main exits non-zero without printing it a second time.
var errBadFlags = fmt.Errorf("invalid command line")

// run is the whole CLI behind a testable seam: flags are parsed from args,
// queries stream from in when no -query/-queries is given, answer data —
// the golden-diffable listing — goes to out, and per-query errors go to
// errOut so redirected answer output never interleaves with error text.
func run(args []string, in io.Reader, out, errOut io.Writer) error {
	fs := flag.NewFlagSet("specqp", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		triplesPath = fs.String("triples", "", "path to triples TSV (required)")
		rulesPath   = fs.String("rules", "", "path to relaxation rules TSV (optional)")
		queryStr    = fs.String("query", "", "SPARQL query to execute (default: read queries from stdin)")
		queryFile   = fs.String("queries", "", "file with one SPARQL query per line ('#' comments allowed)")
		k           = fs.Int("k", 10, "number of answers to return")
		modeStr     = fs.String("mode", "spec-qp", "engine: spec-qp, trinit or naive")
		explain     = fs.Bool("explain", false, "print the speculative plan reasoning and the executed trace (per-operator pulls, emits, bound trajectory)")
		compare     = fs.Bool("compare", false, "run all three engines and compare")
		buckets     = fs.Int("buckets", 2, "histogram buckets for the estimator")
		estimated   = fs.Bool("estimated-selectivity", false, "use estimated instead of exact join selectivity")
		shards      = fs.Int("shards", 1, "store segments (1 = flat layout, -1 = one per CPU); answers are identical at every setting")
		timings     = fs.Bool("timings", true, "print plan/exec timings (disable for diffable output)")
		ingestPath  = fs.String("ingest", "", "TSV of mutations to apply live after the initial load: insert lines are s\\tp\\to\\tscore, retraction lines are -\\ts\\tp\\to (queries then run against the mutated store)")
		deleteSpec  = fs.String("delete", "", "whitespace-separated \"s p o\" key to delete after load and -ingest (every live copy is retracted)")
		headLimit   = fs.Int("head", 0, "per-segment head size triggering automatic compaction during live ingest (0 = default, negative = manual only)")
		l1Limit     = fs.Int("l1", 0, "tiered compaction: heads merge into a small frozen L1 tier, which folds into the main arenas at this size (0 = single-level)")
		compact     = fs.Bool("compact", false, "compact all pending heads after live ingest, before running queries")
		walDir      = fs.String("wal", "", "durable WAL directory: a fresh directory is bootstrapped from -triples (every live insert is then crash-durable); a directory with existing state is recovered — omit -triples in that case")
		walSync     = fs.String("wal-sync", "always", "WAL fsync policy: always (group commit before each insert acks), interval, or none")
		savePath    = fs.String("save", "", "after loading (and any -ingest/-compact), persist the store to this binary snapshot file (reload it later via -triples path.bin)")
	)
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return nil
		}
		return errBadFlags
	}

	syncPolicy, err := specqp.ParseSyncPolicy(*walSync)
	if err != nil {
		return err
	}
	opts := specqp.Options{
		HistogramBuckets:     *buckets,
		EstimatedSelectivity: *estimated,
		Shards:               *shards,
		HeadLimit:            *headLimit,
		L1Limit:              *l1Limit,
		SyncPolicy:           syncPolicy,
	}

	// The rule set is created empty and populated after the engine exists:
	// a WAL recovery rebuilds the dictionary from the durable directory, so
	// rules can only be interned against it once the store is loaded.
	rules := specqp.NewRuleSet()
	var eng *specqp.Engine
	switch {
	case *walDir != "":
		recovered, err := specqp.DurableStateExists(*walDir)
		if err != nil {
			return err
		}
		if recovered {
			if *triplesPath != "" {
				return fmt.Errorf("-wal %s already holds durable state; omit -triples (the WAL directory is the store)", *walDir)
			}
			eng, err = specqp.OpenDurable(*walDir, rules, opts)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "recovered %d triples from %s\n", eng.Graph().Len(), *walDir)
		} else {
			var st *kg.Store
			if *triplesPath != "" {
				if st, err = loadTriples(*triplesPath); err != nil {
					return err
				}
			}
			eng, err = specqp.OpenDurableWith(*walDir, st, rules, opts)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "bootstrapped %s with %d triples (sync=%v)\n", *walDir, eng.Graph().Len(), syncPolicy)
		}
		defer eng.Close()
	default:
		if *triplesPath == "" {
			return fmt.Errorf("-triples is required (or -wal with existing durable state)")
		}
		st, err := loadTriples(*triplesPath)
		if err != nil {
			return err
		}
		eng = specqp.NewEngineWith(st, rules, opts)
	}
	if *rulesPath != "" {
		if err := loadRulesInto(rules, *rulesPath, eng.Graph().Dict()); err != nil {
			return err
		}
	}
	fmt.Fprintf(out, "loaded %d triples, %d relaxation rules\n", eng.Graph().Len(), rules.Len())

	if *ingestPath != "" {
		ins, del, err := ingestMutations(eng, *ingestPath)
		if err != nil {
			return err
		}
		if live, ok := eng.Graph().(specqp.LiveGraph); ok {
			fmt.Fprintf(out, "ingested %d inserts, %d retractions live (%d in heads, %d compactions)\n",
				ins, del, live.HeadLen(), live.Compactions())
		} else {
			fmt.Fprintf(out, "ingested %d inserts, %d retractions live\n", ins, del)
		}
	}

	if *deleteSpec != "" {
		key := strings.Fields(*deleteSpec)
		if len(key) != 3 {
			return fmt.Errorf("-delete wants \"s p o\" (3 whitespace-separated terms), got %d", len(key))
		}
		removed, err := eng.DeleteSPO(key[0], key[1], key[2])
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "deleted %d copies of <%s %s %s>\n", removed, key[0], key[1], key[2])
	}

	if (*ingestPath != "" || *deleteSpec != "") && *compact {
		if err := eng.Compact(); err != nil {
			return err
		}
	}

	if *savePath != "" {
		n, err := saveSnapshot(eng, *savePath)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "saved %d triples to %s\n", n, *savePath)
	}

	mode, err := parseMode(*modeStr)
	if err != nil {
		return err
	}

	runQuery := func(src string) {
		q, err := eng.ParseSPARQL(src)
		if err != nil {
			fmt.Fprintf(errOut, "parse error: %v\n", err)
			return
		}
		if *explain && !*compare {
			// The traced run IS the run: plan reasoning, then the executed
			// operator tree with its counters, then the answers — one
			// execution, so the trace describes exactly the result printed.
			res, err := eng.QueryTraced(context.Background(), q, *k, mode)
			if err != nil {
				fmt.Fprintf(errOut, "%v\n", err)
				return
			}
			if mode == specqp.ModeSpecQP {
				fmt.Fprint(out, eng.Explain(res.Plan))
			}
			fmt.Fprint(out, specqp.RenderTrace(res.Trace))
			printResult(out, eng, q, mode, res, *timings)
			return
		}
		if *explain {
			fmt.Fprint(out, eng.Explain(eng.PlanQuery(q, *k)))
		}
		if *compare {
			for _, m := range []specqp.Mode{specqp.ModeTriniT, specqp.ModeSpecQP, specqp.ModeNaive} {
				res, err := eng.Query(q, *k, m)
				if err != nil {
					fmt.Fprintf(errOut, "%v: %v\n", m, err)
					continue
				}
				printResult(out, eng, q, m, res, *timings)
			}
			return
		}
		res, err := eng.Query(q, *k, mode)
		if err != nil {
			fmt.Fprintf(errOut, "%v\n", err)
			return
		}
		printResult(out, eng, q, mode, res, *timings)
	}

	switch {
	case *queryStr != "":
		runQuery(*queryStr)
	case *queryFile != "":
		qs, err := loadQueries(*queryFile)
		if err != nil {
			return err
		}
		for i, src := range qs {
			fmt.Fprintf(out, "--- query %d ---\n", i+1)
			runQuery(src)
		}
	default:
		fmt.Fprintln(out, "enter one SPARQL query per line (empty line or EOF to quit):")
		sc := bufio.NewScanner(in)
		sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" {
				break
			}
			runQuery(line)
		}
		if err := sc.Err(); err != nil {
			return fmt.Errorf("reading queries: %v", err)
		}
	}
	return nil
}

// printResult writes the metrics header and the ranked answer listing. With
// timings off the output is fully deterministic (PR 2 pinned operator and
// iteration order), which is what the golden end-to-end test diffs.
func printResult(out io.Writer, eng *specqp.Engine, q specqp.Query, mode specqp.Mode, res specqp.Result, timings bool) {
	fmt.Fprintf(out, "%s: %d answers, %d memory objects", mode, len(res.Answers), res.MemoryObjects)
	if timings {
		fmt.Fprintf(out, ", plan %v + exec %v", res.PlanTime, res.ExecTime)
	}
	fmt.Fprintln(out)
	for rank, a := range res.Answers {
		vars := eng.DecodeAnswer(q, a)
		parts := make([]string, 0, len(vars))
		for _, v := range q.Vars() {
			if val, ok := vars[v]; ok {
				parts = append(parts, fmt.Sprintf("?%s=%s", v, val))
			}
		}
		suffix := ""
		if n := a.RelaxedCount(); n > 0 {
			suffix = fmt.Sprintf("  [%d relaxed]", n)
		}
		fmt.Fprintf(out, "  %2d. %-50s score=%.4f%s\n", rank+1, strings.Join(parts, " "), a.Score, suffix)
	}
}

func parseMode(s string) (specqp.Mode, error) {
	switch strings.ToLower(s) {
	case "s":
		return specqp.ModeSpecQP, nil
	case "t":
		return specqp.ModeTriniT, nil
	case "n":
		return specqp.ModeNaive, nil
	case "e":
		return specqp.ModeExact, nil
	}
	return specqp.ParseMode(strings.ToLower(s))
}

func loadTriples(path string) (*kg.Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".bin") {
		return kg.ReadBinary(f)
	}
	return kg.ReadTSV(f)
}

func loadRulesInto(rules *relax.RuleSet, path string, dict *kg.Dict) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return relax.ReadTSVInto(rules, f, dict)
}

// saveSnapshot persists the engine's current store — heads included — to a
// binary snapshot file, atomically (tmp + rename) so an interrupted save
// never leaves a torn file at the target path.
func saveSnapshot(eng *specqp.Engine, path string) (int, error) {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return 0, err
	}
	n, err := kg.WriteGraphBinary(f, eng.Graph())
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	return n, os.Rename(tmp, path)
}

// ingestMutations streams a TSV mutation file through the live engine:
// insert lines go through Engine.InsertSPO, retraction lines ("-" first
// field) through Engine.DeleteSPO. Every line is applied the moment its call
// returns, and segments compact themselves as heads cross the -head limit.
func ingestMutations(eng *specqp.Engine, path string) (ins, del int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	err = kg.ForEachTSVMutation(f,
		func(s, p, o string, score float64) error {
			if err := eng.InsertSPO(s, p, o, score); err != nil {
				return err
			}
			ins++
			return nil
		},
		func(s, p, o string) error {
			if _, err := eng.DeleteSPO(s, p, o); err != nil {
				return err
			}
			del++
			return nil
		})
	if err != nil {
		return ins, del, fmt.Errorf("ingest %s: %v", path, err)
	}
	return ins, del, nil
}

func loadQueries(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		out = append(out, line)
	}
	return out, sc.Err()
}
