// Command specqp is a command-line query runner: it loads a scored triple
// store (TSV) and a relaxation rule set (TSV), then executes SPARQL-subset
// queries — from -query, from a file, or interactively from stdin — under a
// chosen engine (spec-qp, trinit, naive), printing ranked answers and the
// efficiency metrics the paper reports.
//
// Example:
//
//	specqp-datagen -dataset xkg -out data
//	specqp -triples data/xkg.triples.tsv -rules data/xkg.rules.tsv \
//	       -k 10 -mode spec-qp -explain \
//	       -query "SELECT ?s WHERE { ?s <rdf:type> <type:g0:t1> . ?s <rdf:type> <type:g0:t2> }"
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"specqp"
	"specqp/internal/kg"
	"specqp/internal/relax"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("specqp: ")

	var (
		triplesPath = flag.String("triples", "", "path to triples TSV (required)")
		rulesPath   = flag.String("rules", "", "path to relaxation rules TSV (optional)")
		queryStr    = flag.String("query", "", "SPARQL query to execute (default: read queries from stdin)")
		queryFile   = flag.String("queries", "", "file with one SPARQL query per line ('#' comments allowed)")
		k           = flag.Int("k", 10, "number of answers to return")
		modeStr     = flag.String("mode", "spec-qp", "engine: spec-qp, trinit or naive")
		explain     = flag.Bool("explain", false, "print the speculative plan reasoning")
		compare     = flag.Bool("compare", false, "run all three engines and compare")
		buckets     = flag.Int("buckets", 2, "histogram buckets for the estimator")
		estimated   = flag.Bool("estimated-selectivity", false, "use estimated instead of exact join selectivity")
	)
	flag.Parse()

	if *triplesPath == "" {
		log.Fatal("-triples is required")
	}
	st, err := loadTriples(*triplesPath)
	if err != nil {
		log.Fatal(err)
	}
	rules := specqp.NewRuleSet()
	if *rulesPath != "" {
		rules, err = loadRules(*rulesPath, st.Dict())
		if err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("loaded %d triples, %d relaxation rules\n", st.Len(), rules.Len())

	eng := specqp.NewEngineWith(st, rules, specqp.Options{
		HistogramBuckets:     *buckets,
		EstimatedSelectivity: *estimated,
	})

	mode, err := parseMode(*modeStr)
	if err != nil {
		log.Fatal(err)
	}

	run := func(src string) {
		q, err := eng.ParseSPARQL(src)
		if err != nil {
			log.Printf("parse error: %v", err)
			return
		}
		if *explain {
			fmt.Print(eng.Explain(eng.PlanQuery(q, *k)))
		}
		if *compare {
			for _, m := range []specqp.Mode{specqp.ModeTriniT, specqp.ModeSpecQP, specqp.ModeNaive} {
				res, err := eng.Query(q, *k, m)
				if err != nil {
					log.Printf("%v: %v", m, err)
					continue
				}
				printResult(eng, q, m, res, *k)
			}
			return
		}
		res, err := eng.Query(q, *k, mode)
		if err != nil {
			log.Printf("%v", err)
			return
		}
		printResult(eng, q, mode, res, *k)
	}

	switch {
	case *queryStr != "":
		run(*queryStr)
	case *queryFile != "":
		qs, err := loadQueries(*queryFile)
		if err != nil {
			log.Fatal(err)
		}
		for i, src := range qs {
			fmt.Printf("--- query %d ---\n", i+1)
			run(src)
		}
	default:
		fmt.Println("enter one SPARQL query per line (empty line or EOF to quit):")
		sc := bufio.NewScanner(os.Stdin)
		sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" {
				break
			}
			run(line)
		}
	}
}

func printResult(eng *specqp.Engine, q specqp.Query, mode specqp.Mode, res specqp.Result, k int) {
	fmt.Printf("%s: %d answers, %d memory objects, plan %v + exec %v\n",
		mode, len(res.Answers), res.MemoryObjects, res.PlanTime, res.ExecTime)
	for rank, a := range res.Answers {
		vars := eng.DecodeAnswer(q, a)
		parts := make([]string, 0, len(vars))
		for _, v := range q.Vars() {
			if val, ok := vars[v]; ok {
				parts = append(parts, fmt.Sprintf("?%s=%s", v, val))
			}
		}
		suffix := ""
		if n := a.RelaxedCount(); n > 0 {
			suffix = fmt.Sprintf("  [%d relaxed]", n)
		}
		fmt.Printf("  %2d. %-50s score=%.4f%s\n", rank+1, strings.Join(parts, " "), a.Score, suffix)
	}
}

func parseMode(s string) (specqp.Mode, error) {
	switch strings.ToLower(s) {
	case "spec-qp", "specqp", "s":
		return specqp.ModeSpecQP, nil
	case "trinit", "t":
		return specqp.ModeTriniT, nil
	case "naive", "n":
		return specqp.ModeNaive, nil
	default:
		return 0, fmt.Errorf("unknown mode %q (want spec-qp, trinit or naive)", s)
	}
}

func loadTriples(path string) (*kg.Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".bin") {
		return kg.ReadBinary(f)
	}
	return kg.ReadTSV(f)
}

func loadRules(path string, dict *kg.Dict) (*relax.RuleSet, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return relax.ReadTSV(f, dict)
}

func loadQueries(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		out = append(out, line)
	}
	return out, sc.Err()
}
