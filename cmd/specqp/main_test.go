package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden file from current output")

// cliArgs are the fixture invocation shared by the golden and sharding
// tests: -compare runs all three engines over the committed music KG, and
// -timings=false keeps the output fully deterministic (PR 2's determinism
// fixes pinned answer order, memory-object counts and map-iteration-free
// rendering).
func cliArgs(extra ...string) []string {
	args := []string{
		"-triples", filepath.Join("testdata", "music.triples.tsv"),
		"-rules", filepath.Join("testdata", "music.rules.tsv"),
		"-queries", filepath.Join("testdata", "music.queries.txt"),
		"-compare", "-k", "3", "-timings=false",
	}
	return append(args, extra...)
}

func runCLI(t *testing.T, args []string) string {
	t.Helper()
	var buf, errBuf bytes.Buffer
	if err := run(args, nil, &buf, &errBuf); err != nil {
		t.Fatalf("run %v: %v", args, err)
	}
	if errBuf.Len() > 0 {
		t.Fatalf("run %v wrote errors: %s", args, errBuf.String())
	}
	return buf.String()
}

// TestGoldenCompare is the end-to-end golden test: -compare over the
// committed TSV fixture must reproduce the committed ranked answers and
// metrics headers byte-for-byte. Regenerate with `go test ./cmd/specqp
// -run TestGoldenCompare -update` after an intentional output change.
func TestGoldenCompare(t *testing.T) {
	got := runCLI(t, cliArgs())
	goldenPath := filepath.Join("testdata", "golden_compare.txt")
	if *updateGolden {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create it): %v", err)
	}
	if got != string(want) {
		t.Fatalf("output diverged from golden file.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestIngestCLIMatchesPreloaded pins the -ingest flag end to end: loading
// half the fixture and live-inserting the rest (across head limits, with and
// without a final -compact, flat and sharded) must print exactly the ranked
// answers of preloading the whole fixture — only the load/ingest headers may
// differ.
func TestIngestCLIMatchesPreloaded(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "music.triples.tsv"))
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	for _, l := range strings.Split(string(data), "\n") {
		if strings.TrimSpace(l) != "" {
			lines = append(lines, l)
		}
	}
	if len(lines) < 4 {
		t.Fatalf("fixture has only %d triples", len(lines))
	}
	dir := t.TempDir()
	base := filepath.Join(dir, "base.tsv")
	stream := filepath.Join(dir, "stream.tsv")
	half := len(lines) / 2
	if err := os.WriteFile(base, []byte(strings.Join(lines[:half], "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(stream, []byte(strings.Join(lines[half:], "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Drop the load/ingest headers; everything below them must match.
	stripHeaders := func(out string) string {
		var kept []string
		for _, l := range strings.Split(out, "\n") {
			if strings.HasPrefix(l, "loaded ") || strings.HasPrefix(l, "ingested ") {
				continue
			}
			kept = append(kept, l)
		}
		return memObjects.ReplaceAllString(strings.Join(kept, "\n"), "")
	}
	want := stripHeaders(runCLI(t, cliArgs()))
	ingestArgs := func(extra ...string) []string {
		args := []string{
			"-triples", base, "-ingest", stream,
			"-rules", filepath.Join("testdata", "music.rules.tsv"),
			"-queries", filepath.Join("testdata", "music.queries.txt"),
			"-compare", "-k", "3", "-timings=false",
		}
		return append(args, extra...)
	}
	for _, extra := range [][]string{
		{"-head", "2"},              // aggressive auto-compaction mid-stream
		{"-head", "-1"},             // everything stays in the head
		{"-head", "-1", "-compact"}, // head merged before querying
		{"-shards", "3", "-head", "2"},
	} {
		got := stripHeaders(runCLI(t, ingestArgs(extra...)))
		if got != want {
			t.Fatalf("%v diverged from preloaded run.\n--- got ---\n%s\n--- want ---\n%s", extra, got, want)
		}
	}
}

// memObjects matches the run-dependent part of the metrics header: sharded
// execution prefetches entries the top-k cutoff may never consume, so the
// memory-object count is a scheduling-dependent upper bound there.
var memObjects = regexp.MustCompile(`, \d+ memory objects`)

// TestShardedCLIMatchesFlat runs the same fixture through a sharded engine
// and requires identical ranked answers and answer counts — the CLI-level
// face of the bit-identical-answers guarantee.
func TestShardedCLIMatchesFlat(t *testing.T) {
	flat := memObjects.ReplaceAllString(runCLI(t, cliArgs()), "")
	for _, shards := range []string{"2", "5", "-1"} {
		sharded := memObjects.ReplaceAllString(runCLI(t, cliArgs("-shards", shards)), "")
		if sharded != flat {
			t.Fatalf("-shards=%s changed the output.\n--- sharded ---\n%s\n--- flat ---\n%s", shards, sharded, flat)
		}
	}
}

// splitFixture writes the committed triples fixture into a preloaded base
// half and a streamed half under dir.
func splitFixture(t *testing.T, dir string) (base, stream string) {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", "music.triples.tsv"))
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	for _, l := range strings.Split(string(data), "\n") {
		if strings.TrimSpace(l) != "" {
			lines = append(lines, l)
		}
	}
	base = filepath.Join(dir, "base.tsv")
	stream = filepath.Join(dir, "stream.tsv")
	half := len(lines) / 2
	if err := os.WriteFile(base, []byte(strings.Join(lines[:half], "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(stream, []byte(strings.Join(lines[half:], "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return base, stream
}

// stripVarHeaders drops the load/ingest/delete/save/recovery headers and the
// scheduling-dependent memory-object counts; the ranked answers below must
// match byte-for-byte.
func stripVarHeaders(out string) string {
	var kept []string
	for _, l := range strings.Split(out, "\n") {
		if strings.HasPrefix(l, "loaded ") || strings.HasPrefix(l, "ingested ") ||
			strings.HasPrefix(l, "saved ") || strings.HasPrefix(l, "recovered ") ||
			strings.HasPrefix(l, "bootstrapped ") || strings.HasPrefix(l, "deleted ") {
			continue
		}
		kept = append(kept, l)
	}
	return memObjects.ReplaceAllString(strings.Join(kept, "\n"), "")
}

// TestSaveReloadCLIMatches pins -save end to end: ingest half the fixture
// live, save the combined store to a binary snapshot, reload the snapshot
// with -triples, and require the ranked answers of the preloaded run.
func TestSaveReloadCLIMatches(t *testing.T) {
	dir := t.TempDir()
	base, stream := splitFixture(t, dir)
	snap := filepath.Join(dir, "store.bin")
	want := stripVarHeaders(runCLI(t, cliArgs()))

	// Save with the heads still un-compacted: the snapshot must cover them.
	got := stripVarHeaders(runCLI(t, []string{
		"-triples", base, "-ingest", stream, "-head", "-1", "-save", snap,
		"-rules", filepath.Join("testdata", "music.rules.tsv"),
		"-queries", filepath.Join("testdata", "music.queries.txt"),
		"-compare", "-k", "3", "-timings=false",
	}))
	if got != want {
		t.Fatalf("ingest+save run diverged.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	reloaded := stripVarHeaders(runCLI(t, []string{
		"-triples", snap,
		"-rules", filepath.Join("testdata", "music.rules.tsv"),
		"-queries", filepath.Join("testdata", "music.queries.txt"),
		"-compare", "-k", "3", "-timings=false",
	}))
	if reloaded != want {
		t.Fatalf("snapshot reload diverged.\n--- got ---\n%s\n--- want ---\n%s", reloaded, want)
	}
}

// TestDeleteCLIRoundTrip pins retractions end to end: load the fixture, feed
// a mutation stream carrying `-` retraction lines and a latest-wins re-score,
// drop one more key with -delete, and require the ranked answers of a run
// preloaded with only the surviving facts. Then save the mutated store and
// reload the snapshot — retracted facts must stay gone across persistence.
//
// The survivors file is built by editing the fixture in place (re-scored line
// stays at its original position, retracted lines removed) so both runs
// intern every term in the same order; ranked-answer tie-breaks therefore
// compare byte-for-byte.
func TestDeleteCLIRoundTrip(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "music.triples.tsv"))
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	for _, l := range strings.Split(string(data), "\n") {
		if strings.TrimSpace(l) != "" {
			lines = append(lines, l)
		}
	}
	var survivors []string
	for _, l := range lines {
		f := strings.Split(l, "\t")
		switch {
		case f[0] == "prince" && f[1] == "rdf:type" && f[2] == "guitarist":
			continue // retracted by the stream
		case f[0] == "miley" && f[1] == "collab" && f[2] == "shakira":
			continue // retracted by -delete
		case f[0] == "beyonce" && f[1] == "rdf:type" && f[2] == "singer":
			survivors = append(survivors, "beyonce\trdf:type\tsinger\t70") // re-scored in place
		default:
			survivors = append(survivors, l)
		}
	}
	dir := t.TempDir()
	survivorsPath := filepath.Join(dir, "survivors.tsv")
	if err := os.WriteFile(survivorsPath, []byte(strings.Join(survivors, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	stream := filepath.Join(dir, "mutations.tsv")
	mutations := "-\tprince\trdf:type\tguitarist\n" +
		"-\tbeyonce\trdf:type\tsinger\n" +
		"beyonce\trdf:type\tsinger\t70\n"
	if err := os.WriteFile(stream, []byte(mutations), 0o644); err != nil {
		t.Fatal(err)
	}
	common := []string{
		"-rules", filepath.Join("testdata", "music.rules.tsv"),
		"-queries", filepath.Join("testdata", "music.queries.txt"),
		"-compare", "-k", "3", "-timings=false",
	}
	want := stripVarHeaders(runCLI(t, append([]string{"-triples", survivorsPath}, common...)))
	if full := stripVarHeaders(runCLI(t, append([]string{"-triples", filepath.Join("testdata", "music.triples.tsv")}, common...))); full == want {
		t.Fatal("fixture and survivors runs agree — the retracted keys are invisible to the queries, test proves nothing")
	}
	snap := filepath.Join(dir, "mutated.bin")
	mutArgs := func(extra ...string) []string {
		args := append([]string{
			"-triples", filepath.Join("testdata", "music.triples.tsv"),
			"-ingest", stream, "-delete", "miley collab shakira",
		}, extra...)
		return append(args, common...)
	}
	for _, extra := range [][]string{
		{},
		{"-compact"},
		{"-shards", "3"},
		{"-shards", "3", "-compact"},
		{"-head", "2", "-l1", "4"},
		{"-save", snap},
	} {
		got := stripVarHeaders(runCLI(t, mutArgs(extra...)))
		if got != want {
			t.Fatalf("%v diverged from survivors-only run.\n--- got ---\n%s\n--- want ---\n%s", extra, got, want)
		}
	}
	reloaded := stripVarHeaders(runCLI(t, append([]string{"-triples", snap}, common...)))
	if reloaded != want {
		t.Fatalf("snapshot of mutated store resurrected retracted facts.\n--- got ---\n%s\n--- want ---\n%s", reloaded, want)
	}
}

// TestWALCLIRecovery pins -wal end to end: bootstrap a durable session from
// the base fixture, ingest the stream (every insert WAL-logged), exit; a
// second session recovers from the directory alone and must print exactly
// the preloaded run's ranked answers. A third session with -triples against
// the populated directory must be refused.
func TestWALCLIRecovery(t *testing.T) {
	dir := t.TempDir()
	base, stream := splitFixture(t, dir)
	walDir := filepath.Join(dir, "wal")
	want := stripVarHeaders(runCLI(t, cliArgs()))

	common := []string{
		"-rules", filepath.Join("testdata", "music.rules.tsv"),
		"-queries", filepath.Join("testdata", "music.queries.txt"),
		"-compare", "-k", "3", "-timings=false",
	}
	got := stripVarHeaders(runCLI(t, append([]string{
		"-triples", base, "-ingest", stream, "-wal", walDir, "-wal-sync", "always",
	}, common...)))
	if got != want {
		t.Fatalf("durable ingest run diverged.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	for _, shards := range []string{"1", "3"} {
		recovered := stripVarHeaders(runCLI(t, append([]string{
			"-wal", walDir, "-shards", shards,
		}, common...)))
		if recovered != want {
			t.Fatalf("-shards=%s recovery diverged.\n--- got ---\n%s\n--- want ---\n%s", shards, recovered, want)
		}
	}
	var buf, errBuf bytes.Buffer
	err := run(append([]string{"-triples", base, "-wal", walDir}, common...), nil, &buf, &errBuf)
	if err == nil || !strings.Contains(err.Error(), "durable state") {
		t.Fatalf("bootstrapping over existing durable state: err=%v", err)
	}
}
