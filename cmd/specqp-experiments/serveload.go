package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"specqp"
	"specqp/internal/datagen"
	"specqp/internal/metrics"
	"specqp/internal/server"
	"specqp/internal/sparql"
)

// serveLoadReport is the JSON written by -benchout: client-observed latency
// quantiles plus the server's own admission/degradation counters for a mixed
// ingest/query load against the resilient query service.
type serveLoadReport struct {
	Dataset       string  `json:"dataset"`
	Clients       int     `json:"clients"`
	ReqsPerClient int     `json:"reqs_per_client"`
	Shards        int     `json:"shards"`
	DurationMS    float64 `json:"duration_ms"`
	ThroughputRPS float64 `json:"throughput_rps"`

	Queries struct {
		Served  int64 `json:"served"`
		Shed    int64 `json:"shed"`
		Expired int64 `json:"expired"`
		Errors  int64 `json:"errors"`
		P50US   int64 `json:"p50_us"`
		P90US   int64 `json:"p90_us"`
		P99US   int64 `json:"p99_us"`
		MeanUS  int64 `json:"mean_us"`
	} `json:"queries"`

	Mutations struct {
		Served int64 `json:"served"`
		Shed   int64 `json:"shed"`
		Errors int64 `json:"errors"`
	} `json:"mutations"`

	Server struct {
		Accepted  int64 `json:"accepted"`
		ShedQueue int64 `json:"shed_queue"`
		ShedRate  int64 `json:"shed_rate"`
		Degraded  int64 `json:"degraded_responses"`
		P50US     int64 `json:"latency_p50_us"`
		P99US     int64 `json:"latency_p99_us"`
	} `json:"server"`
}

// runServeLoad stands up the HTTP query service over the dataset on a
// loopback listener and drives it with a mixed ingest/query workload from
// concurrent clients, reporting client-observed p50/p99 latency and the
// server's shedding/degradation counters. With benchOut non-empty the report
// is also written there as JSON.
func runServeLoad(ds *datagen.Dataset, clients, reqsPerClient, shards int, benchOut string) error {
	eng := specqp.NewEngineWith(ds.Store, ds.Rules, specqp.Options{Shards: shards})
	srv := server.New(server.Config{Backend: eng})
	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	// Render the workload queries to SPARQL once; skip the few shapes the
	// renderer cannot express.
	dict := ds.Store.Dict()
	var bodies [][]byte
	for _, qs := range ds.Queries {
		if !sparql.CanRender(qs.Query, dict) {
			continue
		}
		b, err := json.Marshal(map[string]any{
			"query":       sparql.Render(qs.Query, dict),
			"k":           10,
			"mode":        "spec-qp",
			"deadline_ms": 5000,
		})
		if err != nil {
			return err
		}
		bodies = append(bodies, b)
	}
	if len(bodies) == 0 {
		return fmt.Errorf("serveload: no renderable queries in dataset %s", ds.Name)
	}

	var rep serveLoadReport
	rep.Dataset = ds.Name
	rep.Clients = clients
	rep.ReqsPerClient = reqsPerClient
	rep.Shards = shards

	var hist metrics.Histogram
	var qServed, qShed, qExpired, qErr atomic.Int64
	var mServed, mShed, mErr atomic.Int64

	client := &http.Client{Timeout: 30 * time.Second}
	var wg sync.WaitGroup
	t0 := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + c)))
			id := fmt.Sprintf("client-%d", c)
			for i := 0; i < reqsPerClient; i++ {
				// Every 8th request is a live insert: the mixed workload the
				// acceptance criterion asks for.
				if i%8 == 7 {
					mb, _ := json.Marshal(map[string]any{
						"s": fmt.Sprintf("loadgen:c%d:i%d", c, i), "p": "loadgen:touched",
						"o": "loadgen:blob", "score": rng.Float64() * 100,
					})
					status, err := post(client, base+"/insert", id, mb, nil)
					switch {
					case err != nil || status >= 500:
						mErr.Add(1)
					case status == http.StatusTooManyRequests:
						mShed.Add(1)
					default:
						mServed.Add(1)
					}
					continue
				}
				body := bodies[rng.Intn(len(bodies))]
				start := time.Now()
				status, err := post(client, base+"/query", id, body, nil)
				lat := time.Since(start)
				switch {
				case err != nil || status >= 500 && status != http.StatusGatewayTimeout:
					qErr.Add(1)
				case status == http.StatusTooManyRequests:
					qShed.Add(1)
				case status == http.StatusGatewayTimeout:
					qExpired.Add(1)
				default:
					qServed.Add(1)
					hist.Observe(lat)
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(t0)

	rep.DurationMS = float64(elapsed.Microseconds()) / 1000
	total := qServed.Load() + qShed.Load() + qExpired.Load() + mServed.Load() + mShed.Load()
	rep.ThroughputRPS = float64(total) / elapsed.Seconds()
	rep.Queries.Served = qServed.Load()
	rep.Queries.Shed = qShed.Load()
	rep.Queries.Expired = qExpired.Load()
	rep.Queries.Errors = qErr.Load()
	rep.Queries.P50US = hist.Quantile(0.50).Microseconds()
	rep.Queries.P90US = hist.Quantile(0.90).Microseconds()
	rep.Queries.P99US = hist.Quantile(0.99).Microseconds()
	rep.Queries.MeanUS = hist.Mean().Microseconds()
	rep.Mutations.Served = mServed.Load()
	rep.Mutations.Shed = mShed.Load()
	rep.Mutations.Errors = mErr.Load()
	m := srv.Metrics()
	rep.Server.Accepted = m.Accepted.Load()
	rep.Server.ShedQueue = m.ShedQueue.Load()
	rep.Server.ShedRate = m.ShedRate.Load()
	rep.Server.Degraded = m.Degraded.Load()
	rep.Server.P50US = m.Latency.Quantile(0.50).Microseconds()
	rep.Server.P99US = m.Latency.Quantile(0.99).Microseconds()

	fmt.Printf("--- serve load, dataset %s: %d clients x %d reqs, shards=%d ---\n",
		ds.Name, clients, reqsPerClient, shards)
	fmt.Printf("  %d served / %d shed / %d expired / %d errors; %d mutations (%d shed)\n",
		rep.Queries.Served, rep.Queries.Shed, rep.Queries.Expired, rep.Queries.Errors,
		rep.Mutations.Served, rep.Mutations.Shed)
	fmt.Printf("  client latency p50=%dus p90=%dus p99=%dus mean=%dus; %.0f req/s over %.0fms\n",
		rep.Queries.P50US, rep.Queries.P90US, rep.Queries.P99US, rep.Queries.MeanUS,
		rep.ThroughputRPS, rep.DurationMS)
	fmt.Printf("  server: accepted=%d shed_queue=%d degraded=%d p50=%dus p99=%dus\n",
		rep.Server.Accepted, rep.Server.ShedQueue, rep.Server.Degraded,
		rep.Server.P50US, rep.Server.P99US)
	if rep.Queries.Errors > 0 || rep.Mutations.Errors > 0 {
		return fmt.Errorf("serveload: %d query / %d mutation errors under load",
			rep.Queries.Errors, rep.Mutations.Errors)
	}

	if benchOut != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(benchOut, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("  wrote %s\n", benchOut)
	}
	return nil
}

// post issues one JSON POST with the given client identity, draining and
// closing the response body; when out is non-nil the body is decoded into it.
func post(c *http.Client, url, clientID string, body []byte, out any) (int, error) {
	req, err := http.NewRequest("POST", url, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Client-ID", clientID)
	resp, err := c.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if out != nil {
		return resp.StatusCode, json.NewDecoder(resp.Body).Decode(out)
	}
	_, err = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, err
}
