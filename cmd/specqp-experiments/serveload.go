package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"specqp"
	"specqp/internal/datagen"
	"specqp/internal/metrics"
	"specqp/internal/server"
	"specqp/internal/sparql"
)

// serveLoadReport is the JSON written by -benchout: client-observed latency
// quantiles plus the server's own admission/degradation counters for a mixed
// ingest/query load against the resilient query service.
type serveLoadReport struct {
	Dataset       string  `json:"dataset"`
	Clients       int     `json:"clients"`
	ReqsPerClient int     `json:"reqs_per_client"`
	Shards        int     `json:"shards"`
	DurationMS    float64 `json:"duration_ms"`
	ThroughputRPS float64 `json:"throughput_rps"`

	Queries struct {
		Served  int64 `json:"served"`
		Shed    int64 `json:"shed"`
		Expired int64 `json:"expired"`
		Errors  int64 `json:"errors"`
		P50US   int64 `json:"p50_us"`
		P90US   int64 `json:"p90_us"`
		P99US   int64 `json:"p99_us"`
		MeanUS  int64 `json:"mean_us"`
	} `json:"queries"`

	// Streaming covers the NDJSON arm of the workload: a share of queries is
	// issued with "stream":true and the client clocks the first answer line
	// separately from the full drain. The first-answer-vs-drain gap is the
	// streaming payoff, measured at the client through real HTTP flushing.
	Streaming struct {
		Served            int64 `json:"served"`
		Answers           int64 `json:"answers"`
		Errors            int64 `json:"errors"`
		FirstAnswerP50US  int64 `json:"first_answer_p50_us"`
		FirstAnswerP90US  int64 `json:"first_answer_p90_us"`
		FirstAnswerP99US  int64 `json:"first_answer_p99_us"`
		FirstAnswerMeanUS int64 `json:"first_answer_mean_us"`
		DrainP50US        int64 `json:"drain_p50_us"`
		DrainP99US        int64 `json:"drain_p99_us"`
		DrainMeanUS       int64 `json:"drain_mean_us"`
	} `json:"streaming"`

	Mutations struct {
		Served int64 `json:"served"`
		Shed   int64 `json:"shed"`
		Errors int64 `json:"errors"`
	} `json:"mutations"`

	Server struct {
		Accepted         int64 `json:"accepted"`
		ShedQueue        int64 `json:"shed_queue"`
		ShedRate         int64 `json:"shed_rate"`
		Degraded         int64 `json:"degraded_responses"`
		P50US            int64 `json:"latency_p50_us"`
		P99US            int64 `json:"latency_p99_us"`
		FirstAnswerP50US int64 `json:"first_answer_p50_us"`
		FirstAnswerP99US int64 `json:"first_answer_p99_us"`
		StreamedAnswers  int64 `json:"streamed_answers"`
		// SlowQueries counts the slow-query log lines the run captured (the
		// server runs with an aggressive threshold so the load exercises the
		// sampler); SlowQuerySample is the first captured line, a structured
		// JSON record carrying the query, latency and execution trace.
		SlowQueries     int64  `json:"slow_queries_logged"`
		SlowQuerySample string `json:"slow_query_sample,omitempty"`
	} `json:"server"`
}

// serveLoadRun stands up the HTTP query service over the dataset on a
// loopback listener, drives it with a mixed ingest/query workload (every 8th
// request a live insert, every 3rd query streamed as NDJSON) from concurrent
// clients, and returns the measured report. Split from runServeLoad so the
// smoke test can assert on the report without capturing stdout.
func serveLoadRun(ds *datagen.Dataset, clients, reqsPerClient, shards int) (*serveLoadReport, error) {
	eng := specqp.NewEngineWith(ds.Store, ds.Rules, specqp.Options{Shards: shards})
	// The slow-query log runs with an aggressive threshold so the load
	// exercises the sampler end-to-end: lines land in a buffer (not stderr)
	// and the report counts them and carries the first as a sample.
	var slowBuf syncBuffer
	srv := server.New(server.Config{
		Backend:            eng,
		SlowQueryThreshold: time.Microsecond,
		SlowQueryInterval:  10 * time.Millisecond,
		SlowQueryLog:       &slowBuf,
	})
	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	// Render the workload queries to SPARQL once; skip the few shapes the
	// renderer cannot express. Each query gets a buffered and a streamed body.
	dict := ds.Store.Dict()
	var bodies, streamBodies [][]byte
	for _, qs := range ds.Queries {
		if !sparql.CanRender(qs.Query, dict) {
			continue
		}
		req := map[string]any{
			"query":       sparql.Render(qs.Query, dict),
			"k":           10,
			"mode":        "spec-qp",
			"deadline_ms": 5000,
		}
		b, err := json.Marshal(req)
		if err != nil {
			return nil, err
		}
		bodies = append(bodies, b)
		req["stream"] = true
		sb, err := json.Marshal(req)
		if err != nil {
			return nil, err
		}
		streamBodies = append(streamBodies, sb)
	}
	if len(bodies) == 0 {
		return nil, fmt.Errorf("serveload: no renderable queries in dataset %s", ds.Name)
	}

	rep := &serveLoadReport{}
	rep.Dataset = ds.Name
	rep.Clients = clients
	rep.ReqsPerClient = reqsPerClient
	rep.Shards = shards

	var hist, firstHist, drainHist metrics.Histogram
	var qServed, qShed, qExpired, qErr atomic.Int64
	var sServed, sAnswers, sErr atomic.Int64
	var mServed, mShed, mErr atomic.Int64

	client := &http.Client{Timeout: 30 * time.Second}
	var wg sync.WaitGroup
	t0 := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + c)))
			id := fmt.Sprintf("client-%d", c)
			for i := 0; i < reqsPerClient; i++ {
				// Every 8th request is a live insert: the mixed workload the
				// acceptance criterion asks for.
				if i%8 == 7 {
					mb, _ := json.Marshal(map[string]any{
						"s": fmt.Sprintf("loadgen:c%d:i%d", c, i), "p": "loadgen:touched",
						"o": "loadgen:blob", "score": rng.Float64() * 100,
					})
					status, err := post(client, base+"/insert", id, mb, nil)
					switch {
					case err != nil || status >= 500:
						mErr.Add(1)
					case status == http.StatusTooManyRequests:
						mShed.Add(1)
					default:
						mServed.Add(1)
					}
					continue
				}
				qi := rng.Intn(len(bodies))
				// Every 3rd query rides the streaming arm: same query, NDJSON
				// delivery, first answer and full drain clocked separately.
				if i%3 == 0 {
					status, ttfa, drain, answers, err := postStream(client, base+"/query", id, streamBodies[qi])
					switch {
					case err != nil || status >= 500 && status != http.StatusGatewayTimeout:
						qErr.Add(1)
						sErr.Add(1)
					case status == http.StatusTooManyRequests:
						qShed.Add(1)
					case status == http.StatusGatewayTimeout:
						qExpired.Add(1)
					default:
						qServed.Add(1)
						sServed.Add(1)
						sAnswers.Add(int64(answers))
						hist.Observe(drain)
						drainHist.Observe(drain)
						if answers > 0 {
							firstHist.Observe(ttfa)
						}
					}
					continue
				}
				start := time.Now()
				status, err := post(client, base+"/query", id, bodies[qi], nil)
				lat := time.Since(start)
				switch {
				case err != nil || status >= 500 && status != http.StatusGatewayTimeout:
					qErr.Add(1)
				case status == http.StatusTooManyRequests:
					qShed.Add(1)
				case status == http.StatusGatewayTimeout:
					qExpired.Add(1)
				default:
					qServed.Add(1)
					hist.Observe(lat)
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(t0)

	rep.DurationMS = float64(elapsed.Microseconds()) / 1000
	total := qServed.Load() + qShed.Load() + qExpired.Load() + mServed.Load() + mShed.Load()
	rep.ThroughputRPS = float64(total) / elapsed.Seconds()
	rep.Queries.Served = qServed.Load()
	rep.Queries.Shed = qShed.Load()
	rep.Queries.Expired = qExpired.Load()
	rep.Queries.Errors = qErr.Load()
	rep.Queries.P50US = hist.Quantile(0.50).Microseconds()
	rep.Queries.P90US = hist.Quantile(0.90).Microseconds()
	rep.Queries.P99US = hist.Quantile(0.99).Microseconds()
	rep.Queries.MeanUS = hist.Mean().Microseconds()
	rep.Streaming.Served = sServed.Load()
	rep.Streaming.Answers = sAnswers.Load()
	rep.Streaming.Errors = sErr.Load()
	rep.Streaming.FirstAnswerP50US = firstHist.Quantile(0.50).Microseconds()
	rep.Streaming.FirstAnswerP90US = firstHist.Quantile(0.90).Microseconds()
	rep.Streaming.FirstAnswerP99US = firstHist.Quantile(0.99).Microseconds()
	rep.Streaming.FirstAnswerMeanUS = firstHist.Mean().Microseconds()
	rep.Streaming.DrainP50US = drainHist.Quantile(0.50).Microseconds()
	rep.Streaming.DrainP99US = drainHist.Quantile(0.99).Microseconds()
	rep.Streaming.DrainMeanUS = drainHist.Mean().Microseconds()
	rep.Mutations.Served = mServed.Load()
	rep.Mutations.Shed = mShed.Load()
	rep.Mutations.Errors = mErr.Load()
	m := srv.Metrics()
	rep.Server.Accepted = m.Accepted.Load()
	rep.Server.ShedQueue = m.ShedQueue.Load()
	rep.Server.ShedRate = m.ShedRate.Load()
	rep.Server.Degraded = m.Degraded.Load()
	rep.Server.P50US = m.Latency.Quantile(0.50).Microseconds()
	rep.Server.P99US = m.Latency.Quantile(0.99).Microseconds()
	rep.Server.FirstAnswerP50US = m.FirstAnswer.Quantile(0.50).Microseconds()
	rep.Server.FirstAnswerP99US = m.FirstAnswer.Quantile(0.99).Microseconds()
	rep.Server.StreamedAnswers = m.StreamedAnswers.Load()
	rep.Server.SlowQueries = srv.SlowQueriesLogged()
	if lines := strings.SplitN(slowBuf.String(), "\n", 2); len(lines) > 0 && lines[0] != "" {
		rep.Server.SlowQuerySample = lines[0]
	}
	return rep, nil
}

// syncBuffer is a mutex-guarded bytes.Buffer — the slow-query log writes from
// request goroutines while the report reads it after the drain.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// runServeLoad executes serveLoadRun, prints the report, and with benchOut
// non-empty also writes it there as JSON.
func runServeLoad(ds *datagen.Dataset, clients, reqsPerClient, shards int, benchOut string) error {
	rep, err := serveLoadRun(ds, clients, reqsPerClient, shards)
	if err != nil {
		return err
	}

	fmt.Printf("--- serve load, dataset %s: %d clients x %d reqs, shards=%d ---\n",
		ds.Name, clients, reqsPerClient, shards)
	fmt.Printf("  %d served / %d shed / %d expired / %d errors; %d mutations (%d shed)\n",
		rep.Queries.Served, rep.Queries.Shed, rep.Queries.Expired, rep.Queries.Errors,
		rep.Mutations.Served, rep.Mutations.Shed)
	fmt.Printf("  client latency p50=%dus p90=%dus p99=%dus mean=%dus; %.0f req/s over %.0fms\n",
		rep.Queries.P50US, rep.Queries.P90US, rep.Queries.P99US, rep.Queries.MeanUS,
		rep.ThroughputRPS, rep.DurationMS)
	fmt.Printf("  streaming: %d served, %d answers; first-answer p50=%dus p99=%dus vs drain p50=%dus p99=%dus\n",
		rep.Streaming.Served, rep.Streaming.Answers,
		rep.Streaming.FirstAnswerP50US, rep.Streaming.FirstAnswerP99US,
		rep.Streaming.DrainP50US, rep.Streaming.DrainP99US)
	fmt.Printf("  server: accepted=%d shed_queue=%d degraded=%d p50=%dus p99=%dus first-answer p50=%dus\n",
		rep.Server.Accepted, rep.Server.ShedQueue, rep.Server.Degraded,
		rep.Server.P50US, rep.Server.P99US, rep.Server.FirstAnswerP50US)
	if rep.Queries.Errors > 0 || rep.Mutations.Errors > 0 {
		return fmt.Errorf("serveload: %d query / %d mutation errors under load",
			rep.Queries.Errors, rep.Mutations.Errors)
	}

	if benchOut != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(benchOut, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("  wrote %s\n", benchOut)
	}
	return nil
}

// post issues one JSON POST with the given client identity, draining and
// closing the response body; when out is non-nil the body is decoded into it.
func post(c *http.Client, url, clientID string, body []byte, out any) (int, error) {
	req, err := http.NewRequest("POST", url, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Client-ID", clientID)
	resp, err := c.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if out != nil {
		return resp.StatusCode, json.NewDecoder(resp.Body).Decode(out)
	}
	_, err = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, err
}

// postStream issues one streamed query and reads the NDJSON response line by
// line, clocking the first answer line (time-to-first-answer as a real client
// sees it, flush included) and the full drain. A trailer carrying an error
// counts as a failed request.
func postStream(c *http.Client, url, clientID string, body []byte) (status int, ttfa, drain time.Duration, answers int, err error) {
	req, err := http.NewRequest("POST", url, bytes.NewReader(body))
	if err != nil {
		return 0, 0, 0, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Client-ID", clientID)
	start := time.Now()
	resp, err := c.Do(req)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, 0, 0, 0, nil
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	var trailerErr string
	var trailerPartial bool
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.Contains(line, `"answer"`) {
			if answers == 0 {
				ttfa = time.Since(start)
			}
			answers++
			continue
		}
		var tr struct {
			Trailer struct {
				Error   string `json:"error"`
				Partial bool   `json:"partial"`
			} `json:"trailer"`
		}
		if jerr := json.Unmarshal([]byte(line), &tr); jerr == nil && tr.Trailer.Error != "" {
			trailerErr = tr.Trailer.Error
			trailerPartial = tr.Trailer.Partial
		}
	}
	drain = time.Since(start)
	if err := sc.Err(); err != nil {
		return resp.StatusCode, ttfa, drain, answers, err
	}
	if trailerErr != "" {
		// A partial trailer is the streamed spelling of a deadline expiry —
		// the buffered path would have returned 504; report it the same way.
		if trailerPartial {
			return http.StatusGatewayTimeout, ttfa, drain, answers, nil
		}
		return resp.StatusCode, ttfa, drain, answers, fmt.Errorf("stream trailer: %s", trailerErr)
	}
	return resp.StatusCode, ttfa, drain, answers, nil
}
