package main

import (
	"encoding/json"
	"testing"

	"specqp/internal/datagen"
)

// TestServeLoadSmoke drives the serveload workload — buffered queries,
// streamed queries and live inserts — against a small dataset and asserts
// the report carries the streaming arm's measurements: streamed queries were
// served, answers arrived, and first-answer latency is reported and no later
// than the full drain (per request TTFA <= drain, which survives the
// histogram's monotone bucketing).
func TestServeLoadSmoke(t *testing.T) {
	ds, err := datagen.Twitter(datagen.TwitterConfig{Seed: 7, Tweets: 600, Terms: 60, Queries: 12})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := serveLoadRun(ds, 2, 24, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Queries.Errors != 0 || rep.Mutations.Errors != 0 || rep.Streaming.Errors != 0 {
		t.Fatalf("errors under smoke load: %d query / %d mutation / %d stream",
			rep.Queries.Errors, rep.Mutations.Errors, rep.Streaming.Errors)
	}
	if rep.Queries.Served == 0 || rep.Mutations.Served == 0 {
		t.Fatalf("smoke load served nothing: %+v", rep)
	}
	if rep.Streaming.Served == 0 || rep.Streaming.Answers == 0 {
		t.Fatalf("streaming arm served nothing: %+v", rep.Streaming)
	}
	if rep.Streaming.FirstAnswerP50US <= 0 {
		t.Fatalf("first-answer latency not reported: %+v", rep.Streaming)
	}
	if rep.Streaming.FirstAnswerP50US > rep.Streaming.DrainP50US {
		t.Fatalf("first-answer p50 %dus exceeds drain p50 %dus",
			rep.Streaming.FirstAnswerP50US, rep.Streaming.DrainP50US)
	}
	if rep.Server.FirstAnswerP50US <= 0 || rep.Server.StreamedAnswers == 0 {
		t.Fatalf("server-side streaming metrics missing: %+v", rep.Server)
	}

	// The slow-query log ran with an aggressive threshold: the load must have
	// captured at least one structured line, and that line must be a valid
	// JSON record naming the query with a positive latency. The trace rides
	// along when the sampled query took the traced buffered path.
	if rep.Server.SlowQueries == 0 {
		t.Fatalf("slow-query log captured nothing under load: %+v", rep.Server)
	}
	if rep.Server.SlowQuerySample == "" {
		t.Fatal("slow-query sample line missing despite logged > 0")
	}
	var entry struct {
		Query     string          `json:"query"`
		ElapsedUS int64           `json:"elapsed_us"`
		Mode      string          `json:"mode"`
		Trace     json.RawMessage `json:"trace"`
	}
	if err := json.Unmarshal([]byte(rep.Server.SlowQuerySample), &entry); err != nil {
		t.Fatalf("slow-query sample is not valid JSON: %v\n%s", err, rep.Server.SlowQuerySample)
	}
	if entry.Query == "" || entry.ElapsedUS <= 0 {
		t.Fatalf("slow-query sample incomplete: %s", rep.Server.SlowQuerySample)
	}
}
