// Command specqp-experiments reproduces the paper's complete evaluation:
// Tables 2–4 and the figure series 6–9, plus the ablations catalogued in
// DESIGN.md (histogram resolution, rank-join strategy, selectivity source).
//
// By default it generates both synthetic datasets with the paper-shaped
// configurations (65 XKG queries of 2–4 patterns, 50 Twitter queries of 2–3
// patterns), runs TriniT and Spec-QP for k ∈ {10,15,20}, and prints every
// table and figure. Use -exp to select a single experiment and -dataset to
// restrict the dataset.
//
// Pre-generated datasets (cmd/specqp-datagen) can be loaded with -load; this
// skips generation and mines nothing — triples, rules and queries all come
// from the files.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"specqp"
	"specqp/internal/datagen"
	"specqp/internal/harness"
	"specqp/internal/kg"
	"specqp/internal/relax"
	"specqp/internal/sparql"
	"specqp/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("specqp-experiments: ")

	var (
		exp       = flag.String("exp", "all", "experiment: all, table2, table3, table4, fig6, fig7, fig8, fig9, ablations")
		dataset   = flag.String("dataset", "both", "dataset: xkg, twitter or both")
		seed      = flag.Int64("seed", 1, "random seed for dataset generation")
		scale     = flag.Float64("scale", 1.0, "dataset size multiplier")
		load      = flag.String("load", "", "directory with pre-generated datasets (from specqp-datagen)")
		buckets   = flag.Int("buckets", 2, "histogram buckets (paper uses 2)")
		csvDir    = flag.String("csv", "", "also write per-figure and per-outcome CSV files into this directory")
		runs      = flag.Int("runs", 1, "measurement runs per query; 5 reproduces the paper's warm-cache protocol (average of the last 3)")
		batch     = flag.Int("batch", 0, "also time the workload through Engine.QueryBatch with this many workers vs sequential Engine.Query (0 = skip)")
		shards    = flag.Int("shards", 1, "store segments for the batch/sharding comparisons (1 = flat, -1 = one per CPU); >1 also times sharded vs flat sequential execution")
		ingest    = flag.Int("ingest", 0, "live-ingest comparison: hold out this many triples, stream them back in batches, and time live Insert+query against a full rebuild per batch (0 = skip)")
		churn     = flag.Int("churn", 0, "mixed-churn comparison: hold out this many triples, replay them as an insert/delete/update mix with probe queries per batch, and time single-level vs tiered (L1) compaction (0 = skip)")
		serveload = flag.Int("serveload", 0, "serving-layer load generator: stand up the HTTP query service and drive it with this many concurrent clients running a mixed ingest/query workload, reporting p50/p99 latency and shed/degradation counts (0 = skip)")
		servereqs = flag.Int("servereqs", 200, "requests per client for -serveload")
		benchOut  = flag.String("benchout", "", "write the -serveload report as JSON to this file")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the experiment run to this file (go tool pprof)")
		memProf   = flag.String("memprofile", "", "write a heap profile taken at exit to this file (go tool pprof)")
	)
	flag.Parse()

	// The experiment body runs inside run() so its profile-flushing defers
	// execute on every exit path before main's log.Fatal can call os.Exit —
	// a mid-run error must still leave usable -cpuprofile/-memprofile files.
	if err := run(*exp, *dataset, *load, *csvDir, *cpuProf, *memProf, *benchOut, *seed, *scale, *buckets, *runs, *batch, *shards, *ingest, *churn, *serveload, *servereqs); err != nil {
		log.Fatal(err)
	}
}

func run(exp, dataset, load, csvDir, cpuProf, memProf, benchOut string, seed int64, scale float64, buckets, runs, batch, shards, ingest, churn, serveload, servereqs int) error {
	if cpuProf != "" {
		f, err := os.Create(cpuProf)
		if err != nil {
			return fmt.Errorf("cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("cpuprofile: %v", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if memProf != "" {
		// log.Printf, not a returned error: a heap-profile failure must not
		// mask the run's own error, and the CPU profile still flushes.
		defer func() {
			f, err := os.Create(memProf)
			if err != nil {
				log.Printf("memprofile: %v", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialise only live objects in the profile
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Printf("memprofile: %v", err)
			}
		}()
	}

	runXKG := dataset == "xkg" || dataset == "both"
	runTwitter := dataset == "twitter" || dataset == "both"

	var sets []*datagen.Dataset
	if runXKG {
		ds, err := getDataset(load, "xkg", func() (*datagen.Dataset, error) {
			cfg := datagen.XKGConfig{Seed: seed, Entities: int(20000 * scale)}
			return datagen.XKG(cfg)
		})
		if err != nil {
			return err
		}
		sets = append(sets, ds)
	}
	if runTwitter {
		ds, err := getDataset(load, "twitter", func() (*datagen.Dataset, error) {
			cfg := datagen.TwitterConfig{Seed: seed, Tweets: int(15000 * scale)}
			return datagen.Twitter(cfg)
		})
		if err != nil {
			return err
		}
		sets = append(sets, ds)
	}

	for _, ds := range sets {
		fmt.Printf("===== dataset %s: %d triples, %d rules, %d queries =====\n",
			ds.Name, ds.Store.Len(), ds.Rules.Len(), len(ds.Queries))
		r := harness.NewRunnerWith(ds, buckets, nil, []int{10, 15, 20})
		r.Runs = runs
		outs := r.RunAll()

		want := func(name string) bool { return exp == "all" || exp == name }
		if want("table2") {
			harness.PrintTable2(os.Stdout, ds.Name, harness.Table2(outs))
		}
		if want("table3") {
			harness.PrintTable3(os.Stdout, ds.Name, harness.Table3(outs))
		}
		if want("table4") {
			harness.PrintTable4(os.Stdout, ds.Name, harness.Table4(outs))
		}
		figTP, figRelax := "fig6", "fig7"
		if ds.Name == "twitter" {
			figTP, figRelax = "fig8", "fig9"
		}
		if want(figTP) {
			harness.PrintFigure(os.Stdout,
				fmt.Sprintf("Figure %s — runtimes & memory by #TP, dataset %s", strings.TrimPrefix(figTP, "fig"), ds.Name),
				"#TP", harness.FigureByTP(outs))
		}
		if want(figRelax) {
			harness.PrintFigure(os.Stdout,
				fmt.Sprintf("Figure %s — runtimes & memory by #TP relaxed, dataset %s", strings.TrimPrefix(figRelax, "fig"), ds.Name),
				"#TPrelaxed", harness.FigureByRelaxed(outs))
		}
		if want("ablations") {
			runAblations(ds)
		}
		if shards != 1 {
			if err := runShardedComparison(ds, shards); err != nil {
				return err
			}
		}
		if batch > 0 {
			if err := runBatchComparison(ds, batch, shards); err != nil {
				return err
			}
		}
		if ingest > 0 {
			if err := runIngestComparison(ds, ingest, shards); err != nil {
				return err
			}
			if err := runWALComparison(ds, ingest, shards); err != nil {
				return err
			}
		}
		if churn > 0 {
			if err := runChurnComparison(ds, churn, shards); err != nil {
				return err
			}
		}
		if serveload > 0 {
			if err := runServeLoad(ds, serveload, servereqs, shards, benchOut); err != nil {
				return err
			}
		}
		if csvDir != "" {
			if err := writeCSVs(csvDir, ds.Name, outs); err != nil {
				return err
			}
		}
		fmt.Println()
	}
	return nil
}

// writeCSVs dumps the per-outcome table and both figure series for one
// dataset into dir.
func writeCSVs(dir, name string, outs []harness.Outcome) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(file string, fn func(w *os.File) error) error {
		f, err := os.Create(filepath.Join(dir, file))
		if err != nil {
			return err
		}
		if err := fn(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if err := write(name+".outcomes.csv", func(w *os.File) error {
		return harness.WriteOutcomesCSV(w, outs)
	}); err != nil {
		return err
	}
	if err := write(name+".by_tp.csv", func(w *os.File) error {
		return harness.WriteFigureCSV(w, "tp", harness.FigureByTP(outs))
	}); err != nil {
		return err
	}
	return write(name+".by_relaxed.csv", func(w *os.File) error {
		return harness.WriteFigureCSV(w, "relaxed", harness.FigureByRelaxed(outs))
	})
}

// runBatchComparison times the dataset's whole query workload through
// sequential Engine.Query and through Engine.QueryBatch with the given
// worker count, printing wall-clock times and the resulting speedup. A
// warm-up pass down each path first fills the store's match-list caches,
// the statistics catalog and QueryBatch's plan cache (sequential Query has
// no plan cache and replans every time), so the measured gap is what the
// batch API actually buys: execution concurrency plus per-shape plan
// amortisation.
// runShardedComparison times the dataset's query workload sequentially over
// the flat layout and over a sharded engine (parallel per-shard merge scans
// plus concurrent join legs), printing the per-query wall-clock speedup.
// Answers are bit-identical across layouts; only the schedule changes.
func runShardedComparison(ds *datagen.Dataset, shards int) error {
	effective := shards
	if effective < 0 {
		effective = runtime.GOMAXPROCS(0)
	}
	if effective <= 1 {
		// -shards -1 resolves to GOMAXPROCS; on a single-CPU machine that is
		// one segment, i.e. the flat layout — timing it against itself would
		// present noise as a sharding result. Resolve before building so the
		// repartition + parallel freeze is not paid just to be thrown away.
		fmt.Printf("Sharding — not engaged: %d segment(s) resolved on this machine (dataset %s)\n", effective, ds.Name)
		return nil
	}
	sharded := specqp.NewEngineWith(ds.Store, ds.Rules, specqp.Options{Shards: effective})
	flat := specqp.NewEngineWith(ds.Store, ds.Rules, specqp.Options{Shards: 1})
	timeAll := func(eng *specqp.Engine) (time.Duration, error) {
		t0 := time.Now()
		for _, qs := range ds.Queries {
			if _, err := eng.Query(qs.Query, 10, specqp.ModeSpecQP); err != nil {
				return 0, err
			}
		}
		return time.Since(t0), nil
	}
	// Warm both engines' match-list and statistics caches first.
	if _, err := timeAll(flat); err != nil {
		return err
	}
	if _, err := timeAll(sharded); err != nil {
		return err
	}
	flatT, err := timeAll(flat)
	if err != nil {
		return err
	}
	shardT, err := timeAll(sharded)
	if err != nil {
		return err
	}
	speedup := 0.0
	if shardT > 0 {
		speedup = float64(flatT) / float64(shardT)
	}
	fmt.Printf("Sharding — %d queries, %d segments (dataset %s):\n", len(ds.Queries), effective, ds.Name)
	fmt.Printf("  %-12s %-12s %-8s\n", "flat", "sharded", "speedup")
	fmt.Printf("  %-12v %-12v %.2fx\n", flatT.Round(time.Microsecond), shardT.Round(time.Microsecond), speedup)
	return nil
}

// ingestFixture is the shared scaffolding of the live-ingest comparisons:
// the dataset's triples captured as a flat sequence, the holdout split, the
// batch schedule and the probe queries, so every arm replays the identical
// workload.
type ingestFixture struct {
	ds        *datagen.Dataset
	triples   []kg.Triple
	base      int
	total     int
	batchSize int
	probes    []datagen.QuerySpec
}

// newIngestFixture validates the holdout and captures the schedule.
func newIngestFixture(ds *datagen.Dataset, holdout int) (*ingestFixture, error) {
	total := ds.Store.Len()
	if holdout >= total {
		return nil, fmt.Errorf("-ingest %d: dataset %s has only %d triples", holdout, ds.Name, total)
	}
	f := &ingestFixture{ds: ds, total: total, base: total - holdout, batchSize: holdout / 10}
	if f.batchSize == 0 {
		f.batchSize = 1
	}
	f.probes = ds.Queries
	if len(f.probes) > 5 {
		f.probes = f.probes[:5]
	}
	f.triples = make([]kg.Triple, total)
	for i := range f.triples {
		f.triples[i] = ds.Store.Triple(int32(i))
	}
	return f, nil
}

// runProbes executes the probe queries once.
func (f *ingestFixture) runProbes(eng *specqp.Engine) error {
	for _, qs := range f.probes {
		if _, err := eng.Query(qs.Query, 10, specqp.ModeSpecQP); err != nil {
			return err
		}
	}
	return nil
}

// baseStore loads the pre-holdout prefix into a fresh flat store sharing the
// dataset dictionary.
func (f *ingestFixture) baseStore() (*kg.Store, error) {
	st := kg.NewStore(f.ds.Store.Dict())
	for _, tr := range f.triples[:f.base] {
		if err := st.Add(tr); err != nil {
			return nil, err
		}
	}
	return st, nil
}

// verifyAgainst asserts eng answers every probe exactly like want — the
// bit-identical cross-arm check every comparison ends with.
func (f *ingestFixture) verifyAgainst(label string, eng, want *specqp.Engine) error {
	for _, qs := range f.probes {
		w, err := want.Query(qs.Query, 10, specqp.ModeSpecQP)
		if err != nil {
			return err
		}
		g, err := eng.Query(qs.Query, 10, specqp.ModeSpecQP)
		if err != nil {
			return err
		}
		if len(g.Answers) != len(w.Answers) {
			return fmt.Errorf("%s verification: %d answers vs %d", label, len(g.Answers), len(w.Answers))
		}
		for i := range g.Answers {
			if g.Answers[i].Score != w.Answers[i].Score ||
				g.Answers[i].Binding.Compare(w.Answers[i].Binding) != 0 {
				return fmt.Errorf("%s verification: answer %d diverged", label, i)
			}
		}
	}
	return nil
}

// runIngestComparison replays the growing-knowledge-graph scenario: holdout
// triples are removed from the dataset's store, then streamed back in ten
// batches with the first few workload queries run after each batch. The
// rebuild arm pays a full store rebuild + freeze per batch (the only option
// before live ingest); the live arm uses Engine.Insert with automatic
// merge-on-threshold compaction. Both arms' final answers are verified
// identical before the timings are printed.
func runIngestComparison(ds *datagen.Dataset, holdout, shards int) error {
	f, err := newIngestFixture(ds, holdout)
	if err != nil {
		return err
	}
	dict := ds.Store.Dict()
	triples, base, total, batchSize := f.triples, f.base, f.total, f.batchSize

	t0 := time.Now()
	var lastRebuilt *specqp.Engine
	for pos := base; ; {
		st := kg.NewStore(dict)
		for _, tr := range triples[:pos] {
			if err := st.Add(tr); err != nil {
				return err
			}
		}
		st.Freeze()
		lastRebuilt = specqp.NewEngineOver(st, ds.Rules, specqp.Options{})
		if err := f.runProbes(lastRebuilt); err != nil {
			return err
		}
		if pos == total {
			break
		}
		if pos += batchSize; pos > total {
			pos = total
		}
	}
	rebuildT := time.Since(t0)

	t0 = time.Now()
	effective := shards
	if effective < 1 {
		effective = runtime.GOMAXPROCS(0)
	}
	ss := kg.NewShardedStore(dict, effective)
	for _, tr := range triples[:base] {
		if err := ss.Add(tr); err != nil {
			return err
		}
	}
	live := specqp.NewEngineOver(ss, ds.Rules, specqp.Options{})
	if err := f.runProbes(live); err != nil {
		return err
	}
	for pos := base; pos < total; pos += batchSize {
		end := pos + batchSize
		if end > total {
			end = total
		}
		for _, tr := range triples[pos:end] {
			if err := live.Insert(tr); err != nil {
				return err
			}
		}
		if err := f.runProbes(live); err != nil {
			return err
		}
	}
	liveT := time.Since(t0)

	// The two arms must agree answer-for-answer at the final state.
	if err := f.verifyAgainst("ingest", live, lastRebuilt); err != nil {
		return err
	}

	lg, _ := live.Graph().(specqp.LiveGraph)
	speedup := 0.0
	if liveT > 0 {
		speedup = float64(rebuildT) / float64(liveT)
	}
	fmt.Printf("Live ingest — %d base + %d streamed in batches of %d, %d probe queries/batch, %d segments (dataset %s):\n",
		base, holdout, batchSize, len(f.probes), effective, ds.Name)
	fmt.Printf("  %-16s %-16s %-8s %s\n", "rebuild/batch", "live insert", "speedup", "compactions")
	fmt.Printf("  %-16v %-16v %.2fx    %d (head %d)\n",
		rebuildT.Round(time.Microsecond), liveT.Round(time.Microsecond), speedup, lg.Compactions(), lg.HeadLen())
	return nil
}

// runWALComparison measures what durability costs: the live-ingest schedule
// of runIngestComparison (stream the holdout back in ten batches, probing
// after each) runs three times over identical engines — WAL off, WAL with
// SyncPolicy=interval (the production setting: acks after the buffered
// write, background fsync), and WAL with SyncPolicy=always (every insert
// group-commit-fsynced) — plus a recovery timing: reopening the durable
// directory from scratch. Final answers are verified identical across arms.
func runWALComparison(ds *datagen.Dataset, holdout, shards int) error {
	f, err := newIngestFixture(ds, holdout)
	if err != nil {
		return err
	}
	triples, base, total, batchSize := f.triples, f.base, f.total, f.batchSize
	effective := shards
	if effective < 1 {
		effective = runtime.GOMAXPROCS(0)
	}

	type arm struct {
		name    string
		policy  specqp.SyncPolicy
		withWAL bool
	}
	arms := []arm{
		{name: "wal-off", withWAL: false},
		{name: "wal-interval", policy: specqp.SyncInterval, withWAL: true},
		{name: "wal-always", policy: specqp.SyncAlways, withWAL: true},
	}
	times := make([]time.Duration, len(arms))
	insertTimes := make([]time.Duration, len(arms))
	engines := make([]*specqp.Engine, len(arms))
	var walDir string
	var recoveryT time.Duration
	var recoveredLen int
	for ai, a := range arms {
		st, err := f.baseStore()
		if err != nil {
			return err
		}
		var eng *specqp.Engine
		opts := specqp.Options{Shards: effective, SyncPolicy: a.policy}
		if a.withWAL {
			dir, err := os.MkdirTemp("", "specqp-wal-*")
			if err != nil {
				return err
			}
			defer os.RemoveAll(dir)
			if eng, err = specqp.OpenDurableWith(dir, st, ds.Rules, opts); err != nil {
				return err
			}
			defer eng.Close()
			if a.policy == specqp.SyncInterval {
				walDir = dir
			}
		} else {
			eng = specqp.NewEngineWith(st, ds.Rules, opts)
		}
		// Engine construction (and the durable arms' opening checkpoint) is
		// excluded: the arms compare steady-state ingest throughput.
		t0 := time.Now()
		var insertT time.Duration
		for pos := base; pos < total; pos += batchSize {
			end := pos + batchSize
			if end > total {
				end = total
			}
			i0 := time.Now()
			for _, tr := range triples[pos:end] {
				if err := eng.Insert(tr); err != nil {
					return err
				}
			}
			insertT += time.Since(i0)
			if err := f.runProbes(eng); err != nil {
				return err
			}
		}
		if a.withWAL {
			i0 := time.Now()
			if err := eng.Sync(); err != nil {
				return err
			}
			insertT += time.Since(i0)
		}
		times[ai] = time.Since(t0)
		insertTimes[ai] = insertT
		engines[ai] = eng
	}

	// All arms must agree answer-for-answer at the final state.
	for ai := 1; ai < len(arms); ai++ {
		if err := f.verifyAgainst("wal "+arms[ai].name, engines[ai], engines[0]); err != nil {
			return err
		}
	}

	// Recovery timing: close the interval arm's engine and reopen the
	// directory cold (snapshot load + WAL tail replay + freeze).
	if walDir != "" {
		for ai, a := range arms {
			if a.policy == specqp.SyncInterval && a.withWAL {
				if err := engines[ai].Close(); err != nil {
					return err
				}
			}
		}
		t0 := time.Now()
		reng, err := specqp.OpenDurable(walDir, ds.Rules, specqp.Options{Shards: effective})
		if err != nil {
			return err
		}
		recoveryT = time.Since(t0)
		recoveredLen = reng.Graph().Len()
		if recoveredLen != total {
			return fmt.Errorf("recovery returned %d triples, want %d", recoveredLen, total)
		}
		reng.Close()
	}

	fmt.Printf("Durability — %d base + %d streamed in batches of %d, %d probe queries/batch, %d segments (dataset %s):\n",
		base, holdout, batchSize, len(f.probes), effective, ds.Name)
	fmt.Printf("  %-14s %-14s %-14s %-11s %s\n", "arm", "total", "insert-only", "vs wal-off", "insert-only vs wal-off")
	for ai, a := range arms {
		ratio := float64(times[0]) / float64(times[ai])
		insRatio := float64(insertTimes[0]) / float64(insertTimes[ai])
		fmt.Printf("  %-14s %-14v %-14v %-11s %.2fx\n",
			a.name, times[ai].Round(time.Microsecond), insertTimes[ai].Round(time.Microsecond),
			fmt.Sprintf("%.2fx", ratio), insRatio)
	}
	fmt.Printf("  recovery: %d triples in %v (snapshot + WAL tail replay + freeze)\n",
		recoveredLen, recoveryT.Round(time.Microsecond))
	return nil
}

// churnOp is one step of the deterministic mixed-mutation schedule every
// churn arm replays: an insert of the next holdout triple, a retraction of a
// previously-seen key, or a latest-wins re-score.
type churnOp struct {
	kind byte // 0 insert, 1 delete, 2 update
	tr   kg.Triple
}

// runChurnComparison replays the mutable-knowledge-graph scenario: the
// holdout is streamed back as a ~70/15/15 insert/delete/update mix with the
// probe queries run after each batch, once per compaction arm — single-level
// merges (every head merge rebuilds the segment's full arena) and tiered
// compaction (heads fold into a small L1 level; the full arena is only
// rebuilt when L1 crosses its own threshold). Both arms replay the identical
// schedule and must end answer-for-answer identical; the timings show what
// the L1 tier buys under churn.
func runChurnComparison(ds *datagen.Dataset, churn, shards int) error {
	f, err := newIngestFixture(ds, churn)
	if err != nil {
		return err
	}
	dict := ds.Store.Dict()
	effective := shards
	if effective < 1 {
		effective = runtime.GOMAXPROCS(0)
	}

	// One deterministic schedule for every arm. Deletes and updates pick keys
	// from the triples already streamed (or the base), so most hit something.
	rng := rand.New(rand.NewSource(7))
	var ops []churnOp
	for pos := f.base; pos < f.total; {
		switch r := rng.Intn(20); {
		case r < 14:
			ops = append(ops, churnOp{kind: 0, tr: f.triples[pos]})
			pos++
		case r < 17:
			ops = append(ops, churnOp{kind: 1, tr: f.triples[rng.Intn(pos)]})
		default:
			tr := f.triples[rng.Intn(pos)]
			tr.Score = float64(1 + rng.Intn(100))
			ops = append(ops, churnOp{kind: 2, tr: tr})
		}
	}
	batchSize := len(ops) / 10
	if batchSize == 0 {
		batchSize = 1
	}

	type arm struct {
		name string
		l1   int
	}
	arms := []arm{{"single-level", 0}, {"tiered-l1", 4096}}
	times := make([]time.Duration, len(arms))
	mutateTimes := make([]time.Duration, len(arms))
	compactions := make([]uint64, len(arms))
	engines := make([]*specqp.Engine, len(arms))
	for ai, a := range arms {
		ss := kg.NewShardedStore(dict, effective)
		for _, tr := range f.triples[:f.base] {
			if err := ss.Add(tr); err != nil {
				return err
			}
		}
		eng := specqp.NewEngineOver(ss, ds.Rules, specqp.Options{Shards: effective, HeadLimit: 256, L1Limit: a.l1})
		if err := f.runProbes(eng); err != nil {
			return err
		}
		lg, _ := eng.Graph().(specqp.LiveGraph)
		t0 := time.Now()
		var mutateT time.Duration
		for off := 0; off < len(ops); off += batchSize {
			end := off + batchSize
			if end > len(ops) {
				end = len(ops)
			}
			m0 := time.Now()
			for _, op := range ops[off:end] {
				switch op.kind {
				case 0:
					err = eng.Insert(op.tr)
				case 1:
					_, err = eng.Delete(op.tr.S, op.tr.P, op.tr.O)
				default:
					err = eng.Update(op.tr)
				}
				if err != nil {
					return err
				}
			}
			mutateT += time.Since(m0)
			if err := f.runProbes(eng); err != nil {
				return err
			}
		}
		times[ai] = time.Since(t0)
		mutateTimes[ai] = mutateT
		compactions[ai] = lg.Compactions()
		engines[ai] = eng
	}

	// Both arms replayed the same schedule: answers must be bit-identical.
	for ai := 1; ai < len(arms); ai++ {
		if err := f.verifyAgainst("churn "+arms[ai].name, engines[ai], engines[0]); err != nil {
			return err
		}
	}

	nIns, nDel, nUpd := 0, 0, 0
	for _, op := range ops {
		switch op.kind {
		case 0:
			nIns++
		case 1:
			nDel++
		default:
			nUpd++
		}
	}
	fmt.Printf("Mixed churn — %d inserts, %d deletes, %d updates in batches of %d, %d probe queries/batch, head limit 256, %d segments (dataset %s):\n",
		nIns, nDel, nUpd, batchSize, len(f.probes), effective, ds.Name)
	fmt.Printf("  %-14s %-14s %-14s %-12s %s\n", "arm", "total", "mutate-only", "compactions", "vs single-level (mutate)")
	for ai, a := range arms {
		ratio := float64(mutateTimes[0]) / float64(mutateTimes[ai])
		fmt.Printf("  %-14s %-14v %-14v %-12d %.2fx\n",
			a.name, times[ai].Round(time.Microsecond), mutateTimes[ai].Round(time.Microsecond), compactions[ai], ratio)
	}
	// A full compact annihilates every pending tombstone in both arms.
	for ai, a := range arms {
		lg, _ := engines[ai].Graph().(specqp.LiveGraph)
		pending := lg.Tombstones()
		c0 := time.Now()
		engines[ai].Compact()
		fmt.Printf("  %-14s final full compact: %d tombstones GC'd in %v\n", a.name, pending, time.Since(c0).Round(time.Microsecond))
		if lg.Tombstones() != 0 {
			return fmt.Errorf("churn %s: full compact left %d tombstones", a.name, lg.Tombstones())
		}
	}
	return nil
}

func runBatchComparison(ds *datagen.Dataset, workers, shards int) error {
	eng := specqp.NewEngineWith(ds.Store, ds.Rules, specqp.Options{BatchWorkers: workers, Shards: shards})
	queries := make([]specqp.Query, len(ds.Queries))
	for i, qs := range ds.Queries {
		queries[i] = qs.Query
	}
	runSeq := func() (time.Duration, error) {
		t0 := time.Now()
		for _, q := range queries {
			if _, err := eng.Query(q, 10, specqp.ModeSpecQP); err != nil {
				return 0, err
			}
		}
		return time.Since(t0), nil
	}
	runBatch := func() (time.Duration, error) {
		t0 := time.Now()
		results, err := eng.QueryBatch(context.Background(), queries, 10, specqp.ModeSpecQP)
		if err != nil {
			return 0, err
		}
		for _, r := range results {
			if r.Err != nil {
				return 0, r.Err
			}
		}
		return time.Since(t0), nil
	}
	if _, err := runSeq(); err != nil { // warm match-list caches and the statistics catalog
		return err
	}
	if _, err := runBatch(); err != nil { // warm the batch path's plan cache
		return err
	}
	seq, err := runSeq()
	if err != nil {
		return err
	}
	bat, err := runBatch()
	if err != nil {
		return err
	}
	speedup := 0.0
	if bat > 0 {
		speedup = float64(seq) / float64(bat)
	}
	fmt.Printf("Batch API — %d queries, %d workers (dataset %s):\n", len(queries), workers, ds.Name)
	fmt.Printf("  %-12s %-12s %-8s\n", "sequential", "batch", "speedup")
	fmt.Printf("  %-12v %-12v %.2fx\n", seq.Round(time.Microsecond), bat.Round(time.Microsecond), speedup)
	return nil
}

// runAblations prints the three design-choice studies from DESIGN.md.
func runAblations(ds *datagen.Dataset) {
	fmt.Printf("Ablation A1 — histogram buckets (dataset %s):\n", ds.Name)
	fmt.Printf("  %-8s %-10s %-12s %-12s\n", "buckets", "precision", "S-time", "S-mem")
	for _, b := range []int{2, 4, 8} {
		r := harness.NewRunnerWith(ds, b, nil, []int{10})
		outs := r.RunAll()
		prec, stime, smem := summarise(outs)
		fmt.Printf("  %-8d %-10.2f %-12v %-12.0f\n", b, prec, stime, smem)
	}

	fmt.Printf("Ablation A3 — selectivity source (dataset %s):\n", ds.Name)
	fmt.Printf("  %-10s %-10s %-12s %-12s\n", "source", "precision", "S-time", "S-mem")
	for _, c := range []struct {
		name    string
		counter stats.Counter
	}{
		{"exact", nil},
		{"estimated", stats.EstimatedCounter{Store: ds.Store}},
	} {
		r := harness.NewRunnerWith(ds, 2, c.counter, []int{10})
		outs := r.RunAll()
		prec, stime, smem := summarise(outs)
		fmt.Printf("  %-10s %-10.2f %-12v %-12.0f\n", c.name, prec, stime, smem)
	}
}

func summarise(outs []harness.Outcome) (prec float64, stime interface{}, smem float64) {
	var t, n int64
	var mem float64
	for _, o := range outs {
		prec += o.Precision
		t += int64(o.SpecQP.TotalTime())
		mem += float64(o.SpecQP.MemoryObjects)
		n++
	}
	if n == 0 {
		return 0, 0, 0
	}
	return prec / float64(n), timeDur(t / n), mem / float64(n)
}

func timeDur(ns int64) interface{} {
	return fmt.Sprintf("%.3fms", float64(ns)/1e6)
}

// getDataset loads a dataset triple/rule/query bundle from dir if given,
// otherwise generates it.
func getDataset(dir, name string, gen func() (*datagen.Dataset, error)) (*datagen.Dataset, error) {
	if dir == "" {
		return gen()
	}
	return loadDataset(dir, name)
}

func loadDataset(dir, name string) (*datagen.Dataset, error) {
	tf, err := os.Open(filepath.Join(dir, name+".triples.tsv"))
	if err != nil {
		return nil, err
	}
	defer tf.Close()
	st, err := kg.ReadTSV(tf)
	if err != nil {
		return nil, err
	}

	rf, err := os.Open(filepath.Join(dir, name+".rules.tsv"))
	if err != nil {
		return nil, err
	}
	defer rf.Close()
	rules, err := relax.ReadTSV(rf, st.Dict())
	if err != nil {
		return nil, err
	}

	qf, err := os.Open(filepath.Join(dir, name+".queries.txt"))
	if err != nil {
		return nil, err
	}
	defer qf.Close()
	ds := &datagen.Dataset{Name: name, Store: st, Rules: rules}
	sc := bufio.NewScanner(qf)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	qname := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			qname = strings.TrimSpace(strings.TrimPrefix(line, "#"))
			continue
		}
		pq, err := sparql.Parse(line, st.Dict())
		if err != nil {
			return nil, fmt.Errorf("query %q: %v", qname, err)
		}
		if qname == "" {
			qname = fmt.Sprintf("%s-q%02d", name, len(ds.Queries))
		}
		ds.Queries = append(ds.Queries, datagen.QuerySpec{Name: qname, Query: pq.Query})
		qname = ""
	}
	return ds, sc.Err()
}
