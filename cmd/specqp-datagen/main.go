// Command specqp-datagen generates the synthetic evaluation datasets (the
// XKG-style and Twitter-style substitutes described in DESIGN.md §5) and
// writes them to disk as three files per dataset:
//
//	<out>/<name>.triples.tsv   — subject\tpredicate\tobject\tscore
//	<out>/<name>.rules.tsv     — fromS..fromO toS..toO weight
//	<out>/<name>.queries.txt   — one SPARQL query per line
//
// The files round-trip through the specqp CLI (cmd/specqp) and the
// experiment harness (cmd/specqp-experiments -load).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"specqp/internal/datagen"
	"specqp/internal/sparql"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("specqp-datagen: ")

	var (
		dataset = flag.String("dataset", "both", "dataset to generate: xkg, twitter or both")
		out     = flag.String("out", "data", "output directory")
		seed    = flag.Int64("seed", 1, "random seed")
		scale   = flag.Float64("scale", 1.0, "size multiplier for entities/tweets")
		binary  = flag.Bool("binary", false, "also write a binary store snapshot (.triples.bin) for fast loading")
	)
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}

	writeBinary = *binary
	if *dataset == "xkg" || *dataset == "both" {
		cfg := datagen.XKGConfig{Seed: *seed}
		cfg.Entities = int(20000 * *scale)
		ds, err := datagen.XKG(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if err := writeDataset(*out, ds); err != nil {
			log.Fatal(err)
		}
	}
	if *dataset == "twitter" || *dataset == "both" {
		cfg := datagen.TwitterConfig{Seed: *seed}
		cfg.Tweets = int(15000 * *scale)
		ds, err := datagen.Twitter(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if err := writeDataset(*out, ds); err != nil {
			log.Fatal(err)
		}
	}
}

var writeBinary bool

func writeDataset(dir string, ds *datagen.Dataset) error {
	triplesPath := filepath.Join(dir, ds.Name+".triples.tsv")
	f, err := os.Create(triplesPath)
	if err != nil {
		return err
	}
	if err := ds.Store.WriteTSV(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if writeBinary {
		bf, err := os.Create(filepath.Join(dir, ds.Name+".triples.bin"))
		if err != nil {
			return err
		}
		if err := ds.Store.WriteBinary(bf); err != nil {
			bf.Close()
			return err
		}
		if err := bf.Close(); err != nil {
			return err
		}
	}

	rulesPath := filepath.Join(dir, ds.Name+".rules.tsv")
	f, err = os.Create(rulesPath)
	if err != nil {
		return err
	}
	if err := ds.Rules.WriteTSV(f, ds.Store.Dict()); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}

	queriesPath := filepath.Join(dir, ds.Name+".queries.txt")
	f, err = os.Create(queriesPath)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	for _, qs := range ds.Queries {
		fmt.Fprintf(w, "# %s\n%s\n", qs.Name, sparql.Render(qs.Query, ds.Store.Dict()))
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}

	fmt.Printf("%s: %d triples, %d rules, %d queries → %s{.triples.tsv,.rules.tsv,.queries.txt}\n",
		ds.Name, ds.Store.Len(), ds.Rules.Len(), len(ds.Queries), filepath.Join(dir, ds.Name))
	return nil
}
