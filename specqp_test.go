package specqp

import (
	"context"
	"math"
	"strings"
	"testing"
)

// engineFixture builds the quickstart KG: singers/guitarists with two
// relaxation rules.
func engineFixture(t *testing.T) (*Engine, Query) {
	t.Helper()
	st := NewStore()
	triples := []struct {
		s, o  string
		score float64
	}{
		{"shakira", "singer", 100}, {"beyonce", "singer", 90}, {"miley", "singer", 50},
		{"prince", "vocalist", 95}, {"elton", "vocalist", 85},
		{"shakira", "guitarist", 40}, {"prince", "guitarist", 99},
		{"miley", "musician", 45}, {"beyonce", "musician", 70},
	}
	for _, tr := range triples {
		if err := st.AddSPO(tr.s, "rdf:type", tr.o, tr.score); err != nil {
			t.Fatal(err)
		}
	}
	st.Freeze()
	d := st.Dict()
	ty, _ := d.Lookup("rdf:type")
	pat := func(o string) Pattern {
		id, _ := d.Lookup(o)
		return NewPattern(Var("s"), Const(ty), Const(id))
	}
	rules := NewRuleSet()
	if err := rules.Add(Rule{From: pat("singer"), To: pat("vocalist"), Weight: 0.8}); err != nil {
		t.Fatal(err)
	}
	if err := rules.Add(Rule{From: pat("guitarist"), To: pat("musician"), Weight: 0.7}); err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(st, rules)
	q := NewQuery(pat("singer"), pat("guitarist"))
	return eng, q
}

func TestEngineModesAgreeOnTruth(t *testing.T) {
	eng, q := engineFixture(t)
	tr, err := eng.Query(q, 3, ModeTriniT)
	if err != nil {
		t.Fatal(err)
	}
	nv, err := eng.Query(q, 3, ModeNaive)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Answers) != 3 || len(nv.Answers) != 3 {
		t.Fatalf("answer counts: trinit=%d naive=%d", len(tr.Answers), len(nv.Answers))
	}
	for i := range tr.Answers {
		if math.Abs(tr.Answers[i].Score-nv.Answers[i].Score) > 1e-9 {
			t.Fatalf("rank %d: trinit %v vs naive %v", i, tr.Answers[i].Score, nv.Answers[i].Score)
		}
	}
	// Only shakira matches the original query; prince wins via relaxations:
	// vocalist 0.8·1 + guitarist 1.0 = 1.8.
	top := eng.DecodeAnswer(q, tr.Answers[0])
	if top["s"] != "prince" {
		t.Fatalf("top answer: %v", top)
	}
	if math.Abs(tr.Answers[0].Score-1.8) > 1e-9 {
		t.Fatalf("prince score: %v want 1.8", tr.Answers[0].Score)
	}
}

func TestEngineSpecQPMode(t *testing.T) {
	eng, q := engineFixture(t)
	res, err := eng.Query(q, 3, ModeSpecQP)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) == 0 {
		t.Fatal("no answers")
	}
	if res.PlanTime <= 0 {
		t.Fatal("planning time not recorded")
	}
	if len(res.Plan.Decisions) != 2 {
		t.Fatalf("decisions: %d", len(res.Plan.Decisions))
	}
}

func TestEngineParseSPARQL(t *testing.T) {
	eng, _ := engineFixture(t)
	q, err := eng.ParseSPARQL(`SELECT ?s WHERE { ?s 'rdf:type' <singer> . ?s 'rdf:type' <guitarist> }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Patterns) != 2 {
		t.Fatalf("patterns: %d", len(q.Patterns))
	}
	if _, err := eng.ParseSPARQL("garbage"); err == nil {
		t.Fatal("bad query accepted")
	}
}

func TestEngineQueryValidation(t *testing.T) {
	eng, q := engineFixture(t)
	if _, err := eng.Query(q, 0, ModeSpecQP); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := eng.Query(NewQuery(), 5, ModeSpecQP); err == nil {
		t.Fatal("empty query accepted")
	}
	if _, err := eng.Query(q, 5, Mode(99)); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

func TestEngineExplain(t *testing.T) {
	eng, q := engineFixture(t)
	out := eng.Explain(eng.PlanQuery(q, 3))
	if !strings.Contains(out, "plan:") {
		t.Fatalf("explain output: %s", out)
	}
}

func TestEnginePatternStats(t *testing.T) {
	eng, q := engineFixture(t)
	ps, err := eng.PatternStats(q.Patterns[0])
	if err != nil {
		t.Fatal(err)
	}
	if ps.M != 3 {
		t.Fatalf("singer matches: got %d want 3", ps.M)
	}
	if ps.SigmaR <= 0 || ps.SigmaR > 1 {
		t.Fatalf("sigma: %v", ps.SigmaR)
	}
}

func TestModeString(t *testing.T) {
	for m, want := range map[Mode]string{
		ModeSpecQP: "spec-qp", ModeTriniT: "trinit", ModeNaive: "naive", Mode(9): "Mode(9)",
	} {
		if got := m.String(); got != want {
			t.Errorf("%d: got %q want %q", int(m), got, want)
		}
	}
}

func TestMiners(t *testing.T) {
	st := NewStore()
	for _, tw := range []struct{ id, tag string }{
		{"t1", "a"}, {"t1", "b"}, {"t2", "a"}, {"t2", "b"}, {"t3", "a"},
	} {
		if err := st.AddSPO(tw.id, "hasTag", tw.tag, 1); err != nil {
			t.Fatal(err)
		}
	}
	st.Freeze()
	tag, _ := st.Dict().Lookup("hasTag")
	rules, err := MineCooccurrence(st, tag, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rules.Len() == 0 {
		t.Fatal("no rules mined")
	}
	a, _ := st.Dict().Lookup("a")
	top, ok := rules.Top(NewPattern(Var("s"), Const(tag), Const(a)))
	if !ok || math.Abs(top.Weight-2.0/3) > 1e-9 {
		t.Fatalf("a→b weight: %v ok=%v", top.Weight, ok)
	}

	// Type-hierarchy miner through the facade.
	st2 := NewStore()
	if err := st2.AddSPO("x", "rdf:type", "singer", 1); err != nil {
		t.Fatal(err)
	}
	st2.Freeze()
	ty, _ := st2.Dict().Lookup("rdf:type")
	singer, _ := st2.Dict().Lookup("singer")
	musician := st2.Dict().Encode("musician")
	hier, err := MineTypeHierarchy(st2, TypeHierarchy{
		TypePred:   ty,
		SubclassOf: map[ID][]ID{singer: {musician}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if hier.Len() != 1 {
		t.Fatalf("hierarchy rules: %d", hier.Len())
	}
}

func TestEngineOptions(t *testing.T) {
	eng, q := engineFixture(t)
	_ = eng
	st := NewStore()
	if err := st.AddSPO("a", "p", "b", 1); err != nil {
		t.Fatal(err)
	}
	// NewEngineWith must freeze an unfrozen store and honour options.
	e2 := NewEngineWith(st, NewRuleSet(), Options{
		HistogramBuckets:     4,
		EstimatedSelectivity: true,
		NaiveLimit:           3,
	})
	if !e2.Store().Frozen() {
		t.Fatal("engine did not freeze the store")
	}
	_ = q
}

func TestDecodeAnswer(t *testing.T) {
	eng, q := engineFixture(t)
	res, err := eng.Query(q, 1, ModeTriniT)
	if err != nil {
		t.Fatal(err)
	}
	vars := eng.DecodeAnswer(q, res.Answers[0])
	if vars["s"] == "" {
		t.Fatalf("decode: %v", vars)
	}
}

func TestEngineQuerySPARQL(t *testing.T) {
	eng, _ := engineFixture(t)
	res, err := eng.QuerySPARQL(`SELECT ?s WHERE {
		?s 'rdf:type' <singer> . ?s 'rdf:type' <guitarist> } LIMIT 2`, ModeTriniT)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 2 {
		t.Fatalf("LIMIT 2: got %d answers", len(res.Answers))
	}
	// Without LIMIT, DefaultK applies.
	res2, err := eng.QuerySPARQL(`SELECT ?s WHERE {
		?s 'rdf:type' <singer> . ?s 'rdf:type' <guitarist> }`, ModeTriniT)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Answers) > DefaultK {
		t.Fatalf("default k exceeded: %d", len(res2.Answers))
	}
	if _, err := eng.QuerySPARQL(`garbage`, ModeTriniT); err == nil {
		t.Fatal("bad SPARQL accepted")
	}
}

func TestEngineQueryContext(t *testing.T) {
	eng, q := engineFixture(t)
	res, err := eng.QueryContext(context.Background(), q, 3, ModeSpecQP)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) == 0 {
		t.Fatal("no answers")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.QueryContext(ctx, q, 3, ModeTriniT); err != context.Canceled {
		t.Fatalf("cancelled context: err=%v", err)
	}
	// Naive mode ignores the context but still works.
	if _, err := eng.QueryContext(ctx, q, 3, ModeNaive); err != nil {
		t.Fatalf("naive with cancelled ctx: %v", err)
	}
	if _, err := eng.QueryContext(context.Background(), q, 0, ModeSpecQP); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := eng.QueryContext(context.Background(), NewQuery(), 3, ModeSpecQP); err == nil {
		t.Fatal("empty query accepted")
	}
	if _, err := eng.QueryContext(context.Background(), q, 3, Mode(42)); err == nil {
		t.Fatal("unknown mode accepted")
	}
}
