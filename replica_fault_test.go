package specqp

import (
	"fmt"
	"math/rand"
	"testing"

	"specqp/internal/repl"
	"specqp/internal/wal"
)

// This file drives the full replication stack through the network fault
// injector — the transport analogue of the WAL's crash-fault suite. The
// FaultClient drops deliveries, replays stale ones, delays and reorders them,
// truncates them mid-frame and kills the link on a byte budget; the follower
// under all of it must keep the replica's state equal to the acked-prefix
// oracle at every position it reaches, never apply a record twice (a double
// apply changes the survivor multiset — the state comparison catches it),
// never rewind, and still converge to the primary's tip, including across
// checkpoints that truncate the log underneath its lag.

// TestReplicaConvergesUnderNetworkFaults runs four seeded fault schedules
// against four shard-ladder replicas, with the primary checkpointing
// mid-stream so truncation fallbacks interleave with the injected hazards.
func TestReplicaConvergesUnderNetworkFaults(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		shards := oracleShardCounts[int(seed)%len(oracleShardCounts)]
		t.Run(fmt.Sprintf("seed=%d shards=%d", seed, shards), func(t *testing.T) {
			dict, triples, rules, queries := randomLiveFixture(t, 9700+seed)
			rng := rand.New(rand.NewSource(9800 + seed))
			base := len(triples) / 2
			fs := wal.NewMemFS()
			eng, err := openDurableFS(fs, buildBaseStore(t, dict, triples, base), rules, Options{
				Shards:          2,
				SyncPolicy:      SyncAlways,
				WALSegmentSize:  1 << 11,
				CheckpointBytes: -1,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer eng.Close()
			prim := repl.NewPrimary(eng.WALFeed(), repl.PrimaryOptions{PollWait: -1, MaxBatchBytes: 384})
			client := repl.NewFaultClient(&repl.LocalClient{Primary: prim}, repl.FaultOptions{
				Seed:       seed,
				Drop:       0.15,
				Duplicate:  0.15,
				Delay:      0.15,
				Truncate:   0.2,
				ByteBudget: 4096,
			})
			rep := NewReplica(rules, Options{Shards: shards})
			f := repl.NewFollower(client, rep, repl.FollowerOptions{})
			bootstrapReplica(t, "fault bootstrap", f, rep, 64)

			oc := &oracleCache{t: t, dict: dict, triples: triples, base: base, rules: rules, cache: map[uint64]*Engine{}}
			var ops []replOp
			for chunk := 0; chunk < 4; chunk++ {
				ops = append(ops, randomOps(t, eng, rng, 20)...)
				oc.ops = ops
				if chunk == 1 || chunk == 2 {
					// Checkpoints truncate shipped positions while the faulty
					// link has the follower lagging: recovery must route
					// through the snapshot fallback, under the same faults.
					if err := eng.Checkpoint(); err != nil {
						t.Fatal(err)
					}
				}
				stepReplicaTo(t, fmt.Sprintf("seed %d chunk %d", seed, chunk), f, rep, uint64(len(ops)), oc, queries, 3000)
			}

			tip := oc.at(uint64(len(ops)))
			assertSameTriples(t, "fault tip state", rep.Engine().Graph(), tip.Graph())
			assertReplicaOracle(t, "fault tip", rep, tip, queries)

			// The schedule must actually have exercised every hazard class —
			// a converging follower under a fault injector that never fired
			// proves nothing.
			c := client.Counts()
			if c.Drops == 0 || c.Duplicates == 0 || c.Delays == 0 || c.Reorders == 0 || c.Truncations == 0 || c.Kills == 0 {
				t.Fatalf("fault schedule left a hazard unexercised: %+v", c)
			}
		})
	}
}

// TestReplicaFaultsOverTCP runs a lighter fault schedule over the real TCP
// transport: the injector wraps the NetClient, so every injected error also
// tears the TCP connection path (redial + positional resume) rather than just
// an in-process call.
func TestReplicaFaultsOverTCP(t *testing.T) {
	dict, triples, rules, queries := randomLiveFixture(t, 9900)
	rng := rand.New(rand.NewSource(9901))
	base := len(triples) / 2
	fs := wal.NewMemFS()
	eng, err := openDurableFS(fs, buildBaseStore(t, dict, triples, base), rules, Options{
		SyncPolicy:      SyncAlways,
		WALSegmentSize:  1 << 11,
		CheckpointBytes: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	prim := repl.NewPrimary(eng.WALFeed(), repl.PrimaryOptions{PollWait: -1, MaxBatchBytes: 384})
	ln := mustListen(t)
	go prim.Serve(ln)
	defer prim.Close()

	nc := repl.NewNetClient(ln.Addr().String(), repl.NetClientOptions{})
	defer nc.Close()
	client := repl.NewFaultClient(nc, repl.FaultOptions{Seed: 7, Drop: 0.1, Duplicate: 0.1, Truncate: 0.15, ByteBudget: 8192})
	rep := NewReplica(rules, Options{Shards: 3})
	f := repl.NewFollower(client, rep, repl.FollowerOptions{})
	bootstrapReplica(t, "tcp fault bootstrap", f, rep, 64)

	oc := &oracleCache{t: t, dict: dict, triples: triples, base: base, rules: rules, cache: map[uint64]*Engine{}}
	ops := randomOps(t, eng, rng, 60)
	oc.ops = ops
	stepReplicaTo(t, "tcp fault", f, rep, uint64(len(ops)), oc, queries, 3000)
	assertReplicaOracle(t, "tcp fault tip", rep, oc.at(uint64(len(ops))), queries)
}

// TestReplicaNeverAppliesTwice pins replay protection in isolation: a
// duplicate-heavy schedule (every other delivery is a replay of the previous
// one) against a duplicate-sensitive state — repeated inserts of the SAME
// triple, where one double-apply changes the survivor multiset.
func TestReplicaNeverAppliesTwice(t *testing.T) {
	dict, triples, rules, queries := randomLiveFixture(t, 9950)
	base := len(triples) / 2
	fs := wal.NewMemFS()
	eng, err := openDurableFS(fs, buildBaseStore(t, dict, triples, base), rules, Options{
		SyncPolicy: SyncAlways, WALSegmentSize: 1 << 11, CheckpointBytes: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	prim := repl.NewPrimary(eng.WALFeed(), repl.PrimaryOptions{PollWait: -1, MaxBatchBytes: 128})
	client := repl.NewFaultClient(&repl.LocalClient{Primary: prim}, repl.FaultOptions{Seed: 3, Duplicate: 0.5})
	rep := NewReplica(rules, Options{Shards: 2})
	f := repl.NewFollower(client, rep, repl.FollowerOptions{})
	bootstrapReplica(t, "dup bootstrap", f, rep, 16)

	// 30 copies of one triple: every double-applied delivery adds a copy the
	// oracle does not have.
	tr := Triple{S: 0, P: 8, O: 11, Score: 5}
	var ops []replOp
	for i := 0; i < 30; i++ {
		if err := eng.Insert(tr); err != nil {
			t.Fatal(err)
		}
		ops = append(ops, replOp{ins: true, tr: tr})
	}
	oc := &oracleCache{t: t, dict: dict, triples: triples, base: base, ops: ops, rules: rules, cache: map[uint64]*Engine{}}
	stepReplicaTo(t, "dup", f, rep, uint64(len(ops)), oc, queries, 2000)
	assertSameTriples(t, "dup tip", rep.Engine().Graph(), oc.at(uint64(len(ops))).Graph())
	if c := client.Counts(); c.Duplicates == 0 {
		t.Fatalf("duplicate schedule never fired: %+v", c)
	}
}
