package specqp

// This file is the benchmark harness that regenerates every table and figure
// of the paper's evaluation (Section 4) plus the design-choice ablations
// catalogued in DESIGN.md. Run everything with
//
//	go test -bench=. -benchmem
//
// Naming maps directly onto the paper:
//
//	BenchmarkTable2*   — precision/recall per k                 (Table 2)
//	BenchmarkTable3*   — prediction accuracy per k              (Table 3)
//	BenchmarkTable4*   — average score error per k              (Table 4)
//	BenchmarkFigure6   — XKG runtime/memory by #TP              (Figure 6)
//	BenchmarkFigure7   — XKG runtime/memory by #TP relaxed      (Figure 7)
//	BenchmarkFigure8   — Twitter runtime/memory by #TP          (Figure 8)
//	BenchmarkFigure9   — Twitter runtime/memory by #TP relaxed  (Figure 9)
//	BenchmarkAblation* — DESIGN.md ablations A1–A3
//
// Quality metrics that a ns/op number cannot carry (precision, exact-match
// rate, score error, memory objects) are attached with b.ReportMetric, so a
// single -bench run prints every row the paper reports. Benchmarks use a
// reduced-scale dataset for tolerable runtimes; cmd/specqp-experiments runs
// the paper-sized configuration.

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"testing"

	"specqp/internal/datagen"
	"specqp/internal/exec"
	"specqp/internal/harness"
	"specqp/internal/kg"
	"specqp/internal/metrics"
	"specqp/internal/operators"
	"specqp/internal/planner"
	"specqp/internal/stats"
)

var (
	benchOnce    sync.Once
	benchXKGDS   *datagen.Dataset
	benchTwDS    *datagen.Dataset
	benchInitErr error
)

func benchDatasets(b *testing.B) (*datagen.Dataset, *datagen.Dataset) {
	b.Helper()
	benchOnce.Do(func() {
		benchXKGDS, benchInitErr = datagen.XKG(datagen.XKGConfig{Seed: 1, Entities: 8000, Queries: 39})
		if benchInitErr != nil {
			return
		}
		benchTwDS, benchInitErr = datagen.Twitter(datagen.TwitterConfig{Seed: 7, Tweets: 8000, Queries: 30})
	})
	if benchInitErr != nil {
		b.Fatal(benchInitErr)
	}
	return benchXKGDS, benchTwDS
}

// runWorkload executes every query at the given k under both engines and
// returns the outcomes (one full table row set).
func runWorkload(ds *datagen.Dataset, k int) []harness.Outcome {
	r := harness.NewRunnerWith(ds, 2, nil, []int{k})
	return r.RunAll()
}

// ---------------------------------------------------------------------------
// Tables 2–4.

func benchTable(b *testing.B, ds *datagen.Dataset, report func(b *testing.B, outs []harness.Outcome)) {
	for _, k := range []int{10, 15, 20} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			var outs []harness.Outcome
			for i := 0; i < b.N; i++ {
				outs = runWorkload(ds, k)
			}
			report(b, outs)
		})
	}
}

func reportTable2(b *testing.B, outs []harness.Outcome) {
	rows := harness.Table2(outs)
	for _, r := range rows {
		b.ReportMetric(r.Precision, "precision")
	}
}

func reportTable3(b *testing.B, outs []harness.Outcome) {
	exact, total := 0, 0
	for _, c := range harness.Table3(outs) {
		exact += c.Exact
		total += c.Total
	}
	if total > 0 {
		b.ReportMetric(float64(exact)/float64(total), "exact-match-rate")
	}
}

func reportTable4(b *testing.B, outs []harness.Outcome) {
	var mean float64
	var n int
	for _, c := range harness.Table4(outs) {
		mean += c.Mean * float64(c.Total)
		n += c.Total
	}
	if n > 0 {
		b.ReportMetric(mean/float64(n), "score-error")
	}
}

func BenchmarkTable2XKG(b *testing.B) {
	xkg, _ := benchDatasets(b)
	benchTable(b, xkg, reportTable2)
}

func BenchmarkTable2Twitter(b *testing.B) {
	_, tw := benchDatasets(b)
	benchTable(b, tw, reportTable2)
}

func BenchmarkTable3XKG(b *testing.B) {
	xkg, _ := benchDatasets(b)
	benchTable(b, xkg, reportTable3)
}

func BenchmarkTable3Twitter(b *testing.B) {
	_, tw := benchDatasets(b)
	benchTable(b, tw, reportTable3)
}

func BenchmarkTable4XKG(b *testing.B) {
	xkg, _ := benchDatasets(b)
	benchTable(b, xkg, reportTable4)
}

func BenchmarkTable4Twitter(b *testing.B) {
	_, tw := benchDatasets(b)
	benchTable(b, tw, reportTable4)
}

// ---------------------------------------------------------------------------
// Figures 6–9: per (k, group, engine) series. The figure's y-axes (time and
// memory objects) map to ns/op and the mem-objects metric.

func benchFigure(b *testing.B, ds *datagen.Dataset, byRelaxed bool) {
	ex := exec.New(ds.Store, ds.Rules)
	cat := stats.NewCatalog(ds.Store, 2, nil)
	pl := planner.New(cat, ds.Rules)

	for _, k := range []int{10, 15, 20} {
		// Group query indexes.
		groups := map[int][]int{}
		for qi, qs := range ds.Queries {
			g := len(qs.Query.Patterns)
			if byRelaxed {
				g = pl.Plan(qs.Query, k).NumRelaxed()
			}
			groups[g] = append(groups[g], qi)
		}
		var gkeys []int
		for g := range groups {
			gkeys = append(gkeys, g)
		}
		sort.Ints(gkeys)
		label := "tp"
		if byRelaxed {
			label = "relaxed"
		}
		for _, g := range gkeys {
			idxs := groups[g]
			b.Run(fmt.Sprintf("k=%d/%s=%d/TriniT", k, label, g), func(b *testing.B) {
				var mem int64
				for i := 0; i < b.N; i++ {
					res := ex.TriniT(ds.Queries[idxs[i%len(idxs)]].Query, k)
					mem += res.MemoryObjects
				}
				b.ReportMetric(float64(mem)/float64(b.N), "mem-objects")
			})
			b.Run(fmt.Sprintf("k=%d/%s=%d/SpecQP", k, label, g), func(b *testing.B) {
				var mem int64
				for i := 0; i < b.N; i++ {
					res := ex.SpecQP(pl, ds.Queries[idxs[i%len(idxs)]].Query, k)
					mem += res.MemoryObjects
				}
				b.ReportMetric(float64(mem)/float64(b.N), "mem-objects")
			})
		}
	}
}

func BenchmarkFigure6(b *testing.B) {
	xkg, _ := benchDatasets(b)
	benchFigure(b, xkg, false)
}

func BenchmarkFigure7(b *testing.B) {
	xkg, _ := benchDatasets(b)
	benchFigure(b, xkg, true)
}

func BenchmarkFigure8(b *testing.B) {
	_, tw := benchDatasets(b)
	benchFigure(b, tw, false)
}

func BenchmarkFigure9(b *testing.B) {
	_, tw := benchDatasets(b)
	benchFigure(b, tw, true)
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md A1–A3).

// BenchmarkAblationBuckets varies the estimator's histogram resolution
// (paper §4.5.2: multi-bucket histograms model the distribution better but
// cost more planning time).
func BenchmarkAblationBuckets(b *testing.B) {
	xkg, _ := benchDatasets(b)
	for _, buckets := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("buckets=%d", buckets), func(b *testing.B) {
			var prec float64
			var n int
			for i := 0; i < b.N; i++ {
				r := harness.NewRunnerWith(xkg, buckets, nil, []int{10})
				for qi := range xkg.Queries {
					o := r.RunQuery(qi, 10)
					prec += o.Precision
					n++
				}
			}
			if n > 0 {
				b.ReportMetric(prec/float64(n), "precision")
			}
		})
	}
}

// BenchmarkAblationSelectivity compares exact join counting (the paper's
// configuration, footnote 3) against the independence-based estimate.
func BenchmarkAblationSelectivity(b *testing.B) {
	xkg, _ := benchDatasets(b)
	for _, cfg := range []struct {
		name    string
		counter stats.Counter
	}{
		{"exact", nil},
		{"estimated", stats.EstimatedCounter{Store: xkg.Store}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			var prec float64
			var n int
			for i := 0; i < b.N; i++ {
				r := harness.NewRunnerWith(xkg, 2, cfg.counter, []int{10})
				for qi := range xkg.Queries {
					o := r.RunQuery(qi, 10)
					prec += o.Precision
					n++
				}
			}
			if n > 0 {
				b.ReportMetric(prec/float64(n), "precision")
			}
		})
	}
}

// BenchmarkAblationRankJoin compares the HRJN hash rank join against the
// nested-loops NRJN variant on a two-pattern join.
func BenchmarkAblationRankJoin(b *testing.B) {
	xkg, _ := benchDatasets(b)
	// Pick the first 2-pattern query.
	var q kg.Query
	for _, qs := range xkg.Queries {
		if len(qs.Query.Patterns) == 2 {
			q = qs.Query
			break
		}
	}
	if len(q.Patterns) == 0 {
		b.Skip("no 2-pattern query")
	}
	vs := kg.NewVarSet(q)
	jv := operators.JoinVars(
		operators.PatternBoundVars(vs, q.Patterns[0]),
		operators.PatternBoundVars(vs, q.Patterns[1]),
	)
	b.Run("HRJN", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			l := operators.NewListScan(xkg.Store, vs, q.Patterns[0], 1, 0, nil)
			r := operators.NewListScan(xkg.Store, vs, q.Patterns[1], 1, 0, nil)
			rj := operators.NewRankJoin(l, r, jv, nil)
			operators.DrainK(rj, 10)
		}
	})
	b.Run("NRJN", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			l := operators.NewListScan(xkg.Store, vs, q.Patterns[0], 1, 0, nil)
			r := operators.NewListScan(xkg.Store, vs, q.Patterns[1], 1, 0, nil)
			nj := operators.NewNRJN(l, r, jv, nil)
			operators.DrainK(nj, 10)
		}
	})
}

// ---------------------------------------------------------------------------
// Batch query API: sequential Engine.Query against Engine.QueryBatch at
// several pool widths, over the same workload. The ns/op ratio is the
// multi-core speedup; the shared LRU plan cache additionally amortises
// PLANGEN across the workload's recurring query shapes.

func BenchmarkQueryBatch(b *testing.B) {
	xkg, _ := benchDatasets(b)
	queries := make([]Query, len(xkg.Queries))
	for i, qs := range xkg.Queries {
		queries[i] = qs.Query
	}
	b.Run("sequential", func(b *testing.B) {
		eng := NewEngine(xkg.Store, xkg.Rules)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, q := range queries {
				if _, err := eng.Query(q, 10, ModeSpecQP); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	for _, workers := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			eng := NewEngineWith(xkg.Store, xkg.Rules, Options{BatchWorkers: workers})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				results, err := eng.QueryBatch(context.Background(), queries, 10, ModeSpecQP)
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range results {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Sharded execution: the Figure 6 workload (XKG queries, k ∈ {10}) per store
// layout. shards=1 is the flat baseline and must match the unsharded ns/op
// and allocs/op; shards=GOMAXPROCS is the multi-core configuration — on a
// multi-core runner its ns/op drop is the sharding speedup (answers are
// bit-identical across the ladder, see TestShardedEnginesBitIdentical).

func shardedBenchCounts() []int {
	counts := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		counts = append(counts, n)
	} else {
		// Single-core runner: still exercise the sharded code path so its
		// overhead is visible, even though no parallel speedup is possible.
		counts = append(counts, 4)
	}
	return counts
}

func BenchmarkShardedFigure6(b *testing.B) {
	xkg, _ := benchDatasets(b)
	for _, shards := range shardedBenchCounts() {
		eng := NewEngineWith(xkg.Store, xkg.Rules, Options{Shards: shards})
		for _, mode := range []Mode{ModeSpecQP, ModeTriniT} {
			b.Run(fmt.Sprintf("shards=%d/%v", shards, mode), func(b *testing.B) {
				// Warm match-list, statistics and residual caches so the
				// measurement isolates execution.
				for _, qs := range xkg.Queries {
					if _, err := eng.Query(qs.Query, 10, mode); err != nil {
						b.Fatal(err)
					}
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					qs := xkg.Queries[i%len(xkg.Queries)]
					if _, err := eng.Query(qs.Query, 10, mode); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkShardedMatchList drains one pattern's scan per store layout: the
// flat ListScan over its zero-alloc posting view against the sharded k-way
// merge over per-segment views (the path every sharded query's leg takes).
// Both emit the identical entry sequence; kg's BenchmarkShardedMatchList
// covers the raw merged-list reads underneath.
func BenchmarkShardedMatchList(b *testing.B) {
	xkg, _ := benchDatasets(b)
	pat := xkg.Queries[0].Query.Patterns[0]
	vs := kg.NewVarSet(kg.NewQuery(pat))
	b.Run("flat", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			operators.Drain(operators.NewPatternScan(xkg.Store, vs, pat, 1, 0, nil))
		}
	})
	for _, shards := range shardedBenchCounts()[1:] {
		ss := kg.NewShardedStoreFrom(xkg.Store, shards)
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				operators.Drain(operators.NewPatternScan(ss, vs, pat, 1, 0, nil))
			}
		})
	}
}

// BenchmarkShardedQueryBatch runs the whole workload through QueryBatch per
// layout — inter-query concurrency on top of intra-query sharding.
func BenchmarkShardedQueryBatch(b *testing.B) {
	xkg, _ := benchDatasets(b)
	queries := make([]Query, len(xkg.Queries))
	for i, qs := range xkg.Queries {
		queries[i] = qs.Query
	}
	for _, shards := range shardedBenchCounts() {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			eng := NewEngineWith(xkg.Store, xkg.Rules, Options{Shards: shards})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				results, err := eng.QueryBatch(context.Background(), queries, 10, ModeSpecQP)
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range results {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Operator and estimator micro-benchmarks.

func BenchmarkIncrementalMerge(b *testing.B) {
	xkg, _ := benchDatasets(b)
	var pat kg.Pattern
	for _, qs := range xkg.Queries {
		pat = qs.Query.Patterns[0]
		break
	}
	vs := kg.NewVarSet(kg.NewQuery(pat))
	rules := xkg.Rules.For(pat)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inputs := []operators.Stream{operators.NewListScan(xkg.Store, vs, pat, 1, 0, nil)}
		for _, r := range rules {
			inputs = append(inputs, operators.NewListScan(xkg.Store, vs, r.To, r.Weight, 1, nil))
		}
		m := operators.NewIncrementalMerge(inputs, nil)
		operators.DrainK(m, 100)
	}
}

func BenchmarkListScan(b *testing.B) {
	xkg, _ := benchDatasets(b)
	pat := xkg.Queries[0].Query.Patterns[0]
	vs := kg.NewVarSet(kg.NewQuery(pat))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		operators.Drain(operators.NewListScan(xkg.Store, vs, pat, 1, 0, nil))
	}
}

func BenchmarkConvolve(b *testing.B) {
	a := stats.PiecewiseConst{Bounds: []float64{0, 0.3, 1}, Heights: []float64{2.0 / 3, 0.8 / 0.7}}
	c := stats.PiecewiseConst{Bounds: []float64{0, 0.6, 1}, Heights: []float64{1.0 / 3, 2.0}}
	// Normalise c so the bench input is a valid density.
	mass := 0.0
	for i := range c.Heights {
		mass += c.Heights[i] * (c.Bounds[i+1] - c.Bounds[i])
	}
	for i := range c.Heights {
		c.Heights[i] /= mass
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pl := stats.Convolve(a, c)
		_ = pl.InvCDF(0.95)
	}
}

func BenchmarkPlanGen(b *testing.B) {
	xkg, _ := benchDatasets(b)
	cat := stats.NewCatalog(xkg.Store, 2, nil)
	pl := planner.New(cat, xkg.Rules)
	// Warm pattern caches so the bench isolates PLANGEN itself.
	for _, qs := range xkg.Queries {
		pl.Plan(qs.Query, 10)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pl.Plan(xkg.Queries[i%len(xkg.Queries)].Query, 10)
	}
}

func BenchmarkExactCount(b *testing.B) {
	xkg, _ := benchDatasets(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		xkg.Store.Count(xkg.Queries[i%len(xkg.Queries)].Query)
	}
}

// BenchmarkPrecisionAgainstTruth is a whole-pipeline quality gate: it runs
// the reduced workload once per iteration and reports the exact-match rate
// and precision so regressions in the estimator show up in -bench output.
func BenchmarkPrecisionAgainstTruth(b *testing.B) {
	xkg, _ := benchDatasets(b)
	ex := exec.New(xkg.Store, xkg.Rules)
	cat := stats.NewCatalog(xkg.Store, 2, nil)
	pl := planner.New(cat, xkg.Rules)
	b.ResetTimer()
	var prec float64
	var exact, n int
	for i := 0; i < b.N; i++ {
		qs := xkg.Queries[i%len(xkg.Queries)]
		tr := ex.TriniT(qs.Query, 10)
		sp := ex.SpecQP(pl, qs.Query, 10)
		prec += metrics.Precision(sp.Answers, tr.Answers, 10)
		if metrics.PredictionExact(sp.Plan.RelaxMask(), metrics.RequiredRelaxations(tr.Answers, 10)) {
			exact++
		}
		n++
	}
	b.ReportMetric(prec/float64(n), "precision")
	b.ReportMetric(float64(exact)/float64(n), "exact-match-rate")
}

// ---------------------------------------------------------------------------
// Live ingest: the PR 4 scenario benchmarks behind BENCH_4.json.

// benchIngestTriples extracts a dataset's triples as a replayable sequence.
func benchIngestTriples(b *testing.B, st *Store, n int) []Triple {
	b.Helper()
	if st.Len() < n {
		b.Fatalf("dataset has %d triples, need %d", st.Len(), n)
	}
	out := make([]Triple, n)
	for i := range out {
		out[i] = st.Triple(int32(i))
	}
	return out
}

// BenchmarkLiveIngest times the growing-knowledge-graph scenario the paper's
// workload implies: a base store is built once, then a stream of new triples
// arrives in batches with one probe query per batch.
//
//	rebuild — the pre-live-ingest behaviour: every batch pays a full store
//	          rebuild + freeze before it can be queried;
//	live    — Engine.Insert into the mutable heads with automatic
//	          merge-on-threshold compaction.
//
// Answers are bit-identical between the two (TestLiveInterleavedOracle);
// this measures what the mutable head buys in wall-clock per scenario.
func BenchmarkLiveIngest(b *testing.B) {
	xkg, _ := benchDatasets(b)
	const baseN, streamN, batch = 8000, 1000, 100
	triples := benchIngestTriples(b, xkg.Store, baseN+streamN)
	probe := xkg.Queries[0].Query
	dict := xkg.Store.Dict()

	b.Run("rebuild", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for pos := baseN; pos <= baseN+streamN; pos += batch {
				st := kg.NewStore(dict)
				for _, tr := range triples[:pos] {
					if err := st.Add(tr); err != nil {
						b.Fatal(err)
					}
				}
				st.Freeze()
				eng := NewEngineOver(st, xkg.Rules, Options{})
				if _, err := eng.Query(probe, 10, ModeSpecQP); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	for _, shards := range shardedBenchCounts() {
		b.Run(fmt.Sprintf("live/shards=%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ss := kg.NewShardedStore(dict, shards)
				for _, tr := range triples[:baseN] {
					if err := ss.Add(tr); err != nil {
						b.Fatal(err)
					}
				}
				eng := NewEngineOver(ss, xkg.Rules, Options{})
				if _, err := eng.Query(probe, 10, ModeSpecQP); err != nil {
					b.Fatal(err)
				}
				for pos := baseN; pos < baseN+streamN; pos += batch {
					for _, tr := range triples[pos : pos+batch] {
						if err := eng.Insert(tr); err != nil {
							b.Fatal(err)
						}
					}
					if _, err := eng.Query(probe, 10, ModeSpecQP); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkCompact isolates the merge itself: compacting a 1024-triple head
// into a frozen base versus re-freezing the whole store from scratch — the
// work a rebuild-per-batch design pays at the same point.
func BenchmarkCompact(b *testing.B) {
	xkg, _ := benchDatasets(b)
	const baseN, headN = 8000, 1024
	triples := benchIngestTriples(b, xkg.Store, baseN+headN)
	dict := xkg.Store.Dict()

	b.Run("compact-head", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			st := kg.NewStore(dict)
			for _, tr := range triples[:baseN] {
				if err := st.Add(tr); err != nil {
					b.Fatal(err)
				}
			}
			st.Freeze()
			st.SetHeadLimit(-1)
			for _, tr := range triples[baseN:] {
				if err := st.Insert(tr); err != nil {
					b.Fatal(err)
				}
			}
			b.StartTimer()
			st.Compact()
		}
	})
	b.Run("full-refreeze", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			st := kg.NewStore(dict)
			for _, tr := range triples {
				if err := st.Add(tr); err != nil {
					b.Fatal(err)
				}
			}
			b.StartTimer()
			st.Freeze()
		}
	})
	// On a sharded store the merge is segment-local: compacting the shard
	// that absorbed the head costs ~1/N of the flat rebuild, and the other
	// shards' snapshots are untouched.
	for _, shards := range shardedBenchCounts()[1:] {
		b.Run(fmt.Sprintf("compact-one-shard/shards=%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				ss := kg.NewShardedStore(dict, shards)
				for _, tr := range triples[:baseN] {
					if err := ss.Add(tr); err != nil {
						b.Fatal(err)
					}
				}
				ss.Freeze()
				ss.SetHeadLimit(-1)
				for _, tr := range triples[baseN:] {
					if err := ss.Insert(tr); err != nil {
						b.Fatal(err)
					}
				}
				target := 0
				for s := 0; s < shards; s++ {
					if ss.Shard(s).HeadLen() > ss.Shard(target).HeadLen() {
						target = s
					}
				}
				b.StartTimer()
				ss.CompactShard(target)
			}
		})
	}
}

// BenchmarkShardedCount measures the shard-parallel exact counter (the
// planner's join-cardinality source) against the flat sequential walk on the
// same queries. The parallel fast path engages on duplicate-free stores;
// XKG's generator emits unique triples, so this is the live path.
func BenchmarkShardedCount(b *testing.B) {
	xkg, _ := benchDatasets(b)
	b.Run("flat", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			xkg.Store.Count(xkg.Queries[i%len(xkg.Queries)].Query)
		}
	})
	for _, shards := range shardedBenchCounts()[1:] {
		ss := kg.NewShardedStoreFrom(xkg.Store, shards)
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ss.Count(xkg.Queries[i%len(xkg.Queries)].Query)
			}
		})
	}
}
