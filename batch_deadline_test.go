package specqp

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"testing"
	"time"
)

// expiringCtx is a context whose Err flips to DeadlineExceeded after a fixed
// number of polls — a deterministic model of a deadline expiring mid-batch.
// The batch workers poll Err before each query and the operators poll it
// every AbortStride pulls, so the early queries in a one-worker batch
// complete and the later ones expire, with no wall-clock dependence.
type expiringCtx struct {
	context.Context
	polls atomic.Int64
	allow int64
}

func (e *expiringCtx) Err() error {
	if e.polls.Add(1) > e.allow {
		return context.DeadlineExceeded
	}
	return nil
}

func (e *expiringCtx) Deadline() (time.Time, bool) { return time.Time{}, true }

// deadlineFixture builds a shape-recurring workload over an engine with the
// given shard count and a single batch worker (so completion order is the
// input order and "mid-batch" is well defined).
func deadlineFixture(t *testing.T, shards int) (*Engine, []Query) {
	t.Helper()
	st := NewStore()
	for e := 0; e < 300; e++ {
		name := fmt.Sprintf("e%03d", e)
		score := 500.0 / float64(1+e)
		if err := st.AddSPO(name, "rdf:type", fmt.Sprintf("T%d", e%6), score); err != nil {
			t.Fatal(err)
		}
		if e%2 == 0 {
			if err := st.AddSPO(name, "rdf:type", fmt.Sprintf("T%d", (e+1)%6), score*0.8); err != nil {
				t.Fatal(err)
			}
		}
	}
	st.Freeze()
	d := st.Dict()
	ty, _ := d.Lookup("rdf:type")
	pat := func(i int) Pattern {
		id, _ := d.Lookup(fmt.Sprintf("T%d", i))
		return NewPattern(Var("s"), Const(ty), Const(id))
	}
	rules := NewRuleSet()
	for i := 0; i < 6; i++ {
		if err := rules.Add(Rule{From: pat(i), To: pat((i + 1) % 6), Weight: 0.6}); err != nil {
			t.Fatal(err)
		}
	}
	eng := NewEngineWith(st, rules, Options{Shards: shards, BatchWorkers: 1})
	var queries []Query
	for rep := 0; rep < 4; rep++ {
		for i := 0; i < 6; i++ {
			queries = append(queries, NewQuery(pat(i), pat((i+2)%6)))
		}
	}
	return eng, queries
}

// TestQueryBatchDeadlineMidBatch pins QueryBatch's behavior when the
// deadline expires partway through: queries that completed before the expiry
// return their full results (bit-identical to an unpressured run), queries
// after it report context.DeadlineExceeded, and nothing hangs or panics —
// across flat and sharded layouts and all modes.
func TestQueryBatchDeadlineMidBatch(t *testing.T) {
	for _, shards := range []int{1, 3} {
		for _, mode := range []Mode{ModeSpecQP, ModeTriniT, ModeNaive, ModeExact} {
			t.Run(fmt.Sprintf("shards=%d/mode=%v", shards, mode), func(t *testing.T) {
				eng, queries := deadlineFixture(t, shards)
				oracle, err := eng.QueryBatch(context.Background(), queries, 5, mode)
				if err != nil {
					t.Fatal(err)
				}

				// Allow a modest number of polls: enough for the first queries
				// to finish, far too few for the whole batch (each of the 24
				// queries costs at least one pre-query poll, whatever the mode).
				ctx := &expiringCtx{Context: context.Background(), allow: 12}
				results, err := eng.QueryBatch(ctx, queries, 5, mode)
				if err != nil {
					t.Fatal(err)
				}
				if len(results) != len(queries) {
					t.Fatalf("results: %d for %d queries", len(results), len(queries))
				}

				completed, expired := 0, 0
				for qi, r := range results {
					switch {
					case r.Err == nil:
						completed++
						ref := oracle[qi]
						if len(r.Result.Answers) != len(ref.Result.Answers) {
							t.Fatalf("query %d: %d answers, unpressured run got %d",
								qi, len(r.Result.Answers), len(ref.Result.Answers))
						}
						for i := range ref.Result.Answers {
							if math.Abs(r.Result.Answers[i].Score-ref.Result.Answers[i].Score) > 1e-9 {
								t.Fatalf("query %d rank %d: %v vs %v", qi, i,
									r.Result.Answers[i].Score, ref.Result.Answers[i].Score)
							}
						}
					case errors.Is(r.Err, context.DeadlineExceeded):
						expired++
					default:
						t.Fatalf("query %d: unexpected error %v", qi, r.Err)
					}
				}
				if completed == 0 {
					t.Fatal("no query completed before the deadline")
				}
				if expired == 0 {
					t.Fatal("no query expired — deadline never bit mid-batch")
				}
			})
		}
	}
}

// TestQueryBatchDeadlineAlreadyExpired: a batch submitted past its deadline
// fails every query fast with DeadlineExceeded and touches no engine state.
func TestQueryBatchDeadlineAlreadyExpired(t *testing.T) {
	for _, shards := range []int{1, 3} {
		eng, queries := deadlineFixture(t, shards)
		ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
		defer cancel()
		results, err := eng.QueryBatch(ctx, queries, 5, ModeSpecQP)
		if err != nil {
			t.Fatal(err)
		}
		for qi, r := range results {
			if !errors.Is(r.Err, context.DeadlineExceeded) {
				t.Fatalf("shards=%d query %d: err = %v", shards, qi, r.Err)
			}
			if len(r.Result.Answers) != 0 {
				t.Fatalf("shards=%d query %d: expired query produced answers", shards, qi)
			}
		}
	}
}
