package specqp

import (
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"specqp/internal/kg"
)

// TestConcurrentQueriesSeeSingleVersion extends the interleaved oracle to
// the snapshot-isolation claim: while a writer streams inserts, every
// concurrent query's answers must equal the oracle of exactly ONE insert
// prefix — never a mixture of two versions. The oracle answer sets for all
// prefixes are precomputed at quiescence; each concurrent result must be a
// member. ModeTriniT is used because its plan is purely structural, making
// answers a function of store content alone.
func TestConcurrentQueriesSeeSingleVersion(t *testing.T) {
	dict, triples, rules, queries := randomLiveFixture(t, 424242)
	base := len(triples) / 2
	probes := queries[:2]
	const k = 8

	key := func(res Result) string {
		var b strings.Builder
		for _, a := range res.Answers {
			for _, id := range a.Binding {
				fmt.Fprintf(&b, "%d,", id)
			}
			fmt.Fprintf(&b, "=%016x|", math.Float64bits(a.Score))
		}
		return b.String()
	}

	// Oracle answer keys per probe, one entry per insert prefix.
	valid := make([]map[string]int, len(probes))
	for qi := range probes {
		valid[qi] = make(map[string]int)
	}
	for pos := base; pos <= len(triples); pos++ {
		st := kg.NewStore(dict)
		for _, tr := range triples[:pos] {
			if err := st.Add(tr); err != nil {
				t.Fatal(err)
			}
		}
		st.Freeze()
		ref := NewEngineWith(st, rules, Options{Shards: 1})
		for qi, q := range probes {
			res, err := ref.Query(q, k, ModeTriniT)
			if err != nil {
				t.Fatal(err)
			}
			valid[qi][key(res)] = pos
		}
	}

	for _, shards := range []int{1, 3} {
		ss := kg.NewShardedStore(dict, shards)
		for _, tr := range triples[:base] {
			if err := ss.Add(tr); err != nil {
				t.Fatal(err)
			}
		}
		eng := NewEngineOver(ss, rules, Options{HeadLimit: 24})

		type obs struct {
			qi  int
			key string
		}
		var mu sync.Mutex
		var seen []obs
		done := make(chan struct{})
		var wg sync.WaitGroup
		for r := 0; r < 3; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				for i := 0; ; i++ {
					select {
					case <-done:
						return
					default:
					}
					qi := (r + i) % len(probes)
					res, err := eng.Query(probes[qi], k, ModeTriniT)
					if err != nil {
						t.Error(err)
						return
					}
					mu.Lock()
					seen = append(seen, obs{qi: qi, key: key(res)})
					mu.Unlock()
				}
			}(r)
		}
		for i, tr := range triples[base:] {
			if err := eng.Insert(tr); err != nil {
				t.Fatal(err)
			}
			if i%4 == 0 {
				// Let readers interleave mid-mutation (the container may have
				// a single CPU, where a tight insert loop would starve them).
				runtime.Gosched()
			}
		}
		// Keep readers sampling until enough observations landed; late ones
		// see the final version, which is itself a valid single prefix.
		for deadline := time.Now().Add(5 * time.Second); ; {
			mu.Lock()
			n := len(seen)
			mu.Unlock()
			if n >= 25 || time.Now().After(deadline) {
				break
			}
			runtime.Gosched()
		}
		close(done)
		wg.Wait()

		if len(seen) == 0 {
			t.Fatal("no concurrent queries observed")
		}
		for _, o := range seen {
			if _, ok := valid[o.qi][o.key]; !ok {
				t.Fatalf("shards=%d: query %d answers match no single insert-prefix version (key %q)",
					shards, o.qi, o.key)
			}
		}
	}
}
