// Package specqp is a Go implementation of Spec-QP — speculative query
// planning for top-k join queries with relaxations over scored knowledge
// graphs (Mohanty, Ramanath, Yahya, Weikum; EDBT 2019) — together with the
// complete substrate it needs: a scored in-memory triple store, relaxation
// rule mining, the Incremental Merge and Rank Join top-k operators, the
// TriniT baseline engine, and a SPARQL-subset parser.
//
// Quick start:
//
//	st := specqp.NewStore()
//	st.AddSPO("shakira", "rdf:type", "singer", 98)
//	... more triples ...
//	st.Freeze()
//
//	rules := specqp.NewRuleSet()
//	rules.Add(specqp.Rule{From: ..., To: ..., Weight: 0.8})
//
//	eng := specqp.NewEngine(st, rules)
//	q, _ := eng.ParseSPARQL(`SELECT ?s WHERE { ?s 'rdf:type' <singer> . ?s 'rdf:type' <guitarist> }`)
//	res, _ := eng.Query(q, 10, specqp.ModeSpecQP)
//	for _, a := range res.Answers { ... }
package specqp

import (
	"context"
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"specqp/internal/exec"
	"specqp/internal/kg"
	"specqp/internal/planner"
	"specqp/internal/relax"
	"specqp/internal/sparql"
	"specqp/internal/stats"
	"specqp/internal/trace"
)

// Re-exported core types. These aliases form the public surface; callers
// never import internal packages directly.
type (
	// Store is the scored triple store.
	Store = kg.Store
	// ShardedStore is a Store hash-partitioned into independently-frozen
	// segments, serving queries with per-shard merged scans.
	ShardedStore = kg.ShardedStore
	// Graph is the read interface implemented by Store and ShardedStore.
	Graph = kg.Graph
	// LiveGraph is the mutable extension of Graph: post-freeze Insert into
	// per-segment mutable heads, merged by Compact. Both store layouts
	// implement it.
	LiveGraph = kg.LiveGraph
	// Dict is the term dictionary.
	Dict = kg.Dict
	// ID is a dictionary-encoded term.
	ID = kg.ID
	// Triple is a scored 〈s p o〉 tuple.
	Triple = kg.Triple
	// Term is a pattern position: constant or variable.
	Term = kg.Term
	// Pattern is a triple pattern.
	Pattern = kg.Pattern
	// Query is a set of triple patterns.
	Query = kg.Query
	// Answer is a scored query answer.
	Answer = kg.Answer
	// Rule is a weighted relaxation rule.
	Rule = relax.Rule
	// RuleSet indexes relaxation rules by domain pattern.
	RuleSet = relax.RuleSet
	// Result carries answers plus efficiency metrics of one execution.
	Result = exec.Result
	// Plan is a speculative query plan.
	Plan = planner.Plan
	// QueryTrace is the execution trace QueryTraced attaches to its Result:
	// planner decisions (mode, shape key, plan-cache hit, relaxation count)
	// plus a plan-shaped tree of per-operator counters. It marshals to JSON
	// and renders as text via RenderTrace.
	QueryTrace = trace.Trace
	// TraceNode is one operator's node in a QueryTrace tree.
	TraceNode = trace.Node
)

// RenderTrace renders a QueryTrace as an indented text tree — the executed
// half of ExplainString, usable on traces decoded from the HTTP API too.
func RenderTrace(t *QueryTrace) string { return trace.Render(t) }

// Var builds a variable term (name without the leading '?').
func Var(name string) Term { return kg.Var(name) }

// Const builds a constant term from an encoded ID.
func Const(id ID) Term { return kg.Const(id) }

// NewStore returns an empty triple store with a fresh dictionary.
func NewStore() *Store { return kg.NewStore(nil) }

// NewShardedStore returns an empty sharded store with the given number of
// segments and a fresh dictionary (see Options.Shards for when to shard);
// negative counts resolve to one segment per CPU, like Options.Shards.
// Populate it with Add/AddSPO and hand it to NewEngineOver to query without
// ever materialising a flat copy of the triples.
func NewShardedStore(shards int) *ShardedStore {
	if shards < 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	return kg.NewShardedStore(nil, shards)
}

// NewRuleSet returns an empty relaxation rule set.
func NewRuleSet() *RuleSet { return relax.NewRuleSet() }

// NewPattern builds a triple pattern.
func NewPattern(s, p, o Term) Pattern { return kg.NewPattern(s, p, o) }

// NewQuery builds a triple pattern query.
func NewQuery(ps ...Pattern) Query { return kg.NewQuery(ps...) }

// MineCooccurrence mines Twitter-style relaxation rules for 〈?s pred term〉
// patterns from subject/term co-occurrence: term T1 relaxes to T2 with
// weight #subjects(T1∧T2)/#subjects(T1). maxRules caps rules per term
// (0 = unlimited); minWeight drops weaker rules.
func MineCooccurrence(st Graph, pred ID, maxRules int, minWeight float64) (*RuleSet, error) {
	m := relax.CooccurrenceMiner{Pred: pred, MaxRules: maxRules, MinWeight: minWeight}
	return m.Mine(st)
}

// TypeHierarchy re-exports the taxonomy description used by
// MineTypeHierarchy.
type TypeHierarchy = relax.TypeHierarchy

// MineTypeHierarchy mines XKG-style relaxation rules for 〈?s type T〉 patterns
// from a type taxonomy: siblings, parents and grandparents of each type used
// in the store become relaxation targets.
func MineTypeHierarchy(st Graph, h TypeHierarchy) (*RuleSet, error) {
	return h.Mine(st)
}

// Mode selects the execution engine.
type Mode int

const (
	// ModeSpecQP plans speculatively and prunes relaxations (the paper's
	// contribution).
	ModeSpecQP Mode = iota
	// ModeTriniT processes every relaxation of every pattern (baseline).
	ModeTriniT
	// ModeNaive evaluates every relaxed query completely (strawman).
	ModeNaive
	// ModeExact executes the query with no relaxations at all: a pure rank
	// join over the original patterns' sorted lists, answering with the exact
	// unrelaxed top-k. It is the cheapest mode — no Incremental Merges, no
	// relaxed scans, no planning — and the principled degraded tier a
	// saturated server falls back to (see internal/server).
	ModeExact
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeSpecQP:
		return "spec-qp"
	case ModeTriniT:
		return "trinit"
	case ModeNaive:
		return "naive"
	case ModeExact:
		return "exact"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// ParseMode parses a mode name as rendered by Mode.String: "spec-qp" (or
// "specqp"), "trinit", "naive", "exact".
func ParseMode(s string) (Mode, error) {
	switch s {
	case "spec-qp", "specqp":
		return ModeSpecQP, nil
	case "trinit":
		return ModeTriniT, nil
	case "naive":
		return ModeNaive, nil
	case "exact":
		return ModeExact, nil
	default:
		return 0, fmt.Errorf("specqp: unknown mode %q (want spec-qp, trinit, naive or exact)", s)
	}
}

// Options configures an Engine.
type Options struct {
	// HistogramBuckets is the per-pattern score histogram resolution.
	// 0 or 2 reproduces the paper's two-bucket model.
	HistogramBuckets int
	// EstimatedSelectivity switches the planner's join-cardinality source
	// from exact counting (the paper's setting) to an independence-based
	// estimate.
	EstimatedSelectivity bool
	// NaiveLimit caps the number of relaxed queries ModeNaive evaluates
	// (0 = all of them).
	NaiveLimit int
	// BatchWorkers bounds QueryBatch's worker pool (0 = GOMAXPROCS).
	BatchWorkers int
	// PlanCacheSize is the capacity of the LRU plan cache QueryBatch uses
	// for ModeSpecQP, keyed by query shape (0 = planner.DefaultPlanCacheSize).
	PlanCacheSize int
	// Shards selects the storage layout the engine queries. 0 or 1 keeps
	// today's flat layout. A value > 1 repartitions the store into that many
	// subject-hashed segments (frozen in parallel) and turns on parallel
	// query execution: per-pattern scans merge per-shard sorted views, and
	// independent join legs are built and prefetched concurrently. Negative
	// values select runtime.GOMAXPROCS(0) segments — the usual opt-in for
	// multi-core machines (ShardsAuto). Answers are bit-identical across
	// shard counts; Result.MemoryObjects may be higher in sharded mode
	// because prefetched-but-unconsumed entries still count.
	//
	// Memory note: the engine copies the store's triples into the segments
	// and keeps the passed Store alive for Store()/Dict(), so during the
	// engine's lifetime the triple payload exists twice — plus the flat
	// posting arenas if the store was already frozen. For memory-critical
	// giant stores, pass an unfrozen Store (its postings are then never
	// built) and drop external references to it after engine construction.
	Shards int
	// HeadLimit is the per-segment mutable-head size at which a live
	// Engine.Insert triggers automatic compaction of that segment:
	// 0 selects kg.DefaultHeadLimit, a negative value disables automatic
	// compaction entirely (call Engine.Compact explicitly).
	HeadLimit int
	// L1Limit turns on tiered compaction: a head crossing HeadLimit merges
	// into a small frozen L1 tier instead of rebuilding the segment's main
	// posting arenas, and the L1 tier folds into the main arenas only once
	// it holds L1Limit triples. 0 (the default) keeps single-level
	// compaction — every merge rebuilds the full segment. Under churn-heavy
	// mixed workloads tiering trades a second frozen probe per read for
	// merge cost proportional to the L1 size rather than the store size.
	L1Limit int
	// WALDir selects the durable write-ahead-log directory. It is consumed
	// exclusively by OpenDurable/OpenDurableWith (as the default for their
	// dir argument); NewEngineWith panics when it is set, because a non-nil
	// value there would otherwise silently produce a non-durable engine.
	WALDir string
	// SyncPolicy selects the WAL fsync discipline for durable engines:
	// SyncAlways (default — group-committed fsync before every Insert
	// returns), SyncInterval, or SyncNone.
	SyncPolicy SyncPolicy
	// SyncInterval is the background fsync period under SyncInterval
	// (0 = wal.DefaultInterval).
	SyncInterval time.Duration
	// WALSegmentSize is the log rotation threshold in bytes
	// (0 = wal.DefaultSegmentSize).
	WALSegmentSize int64
	// CheckpointBytes is the WAL size at which a durable engine snapshots
	// and truncates the log automatically: 0 selects DefaultCheckpointBytes,
	// negative disables automatic checkpoints (Compact and Checkpoint still
	// persist on demand).
	CheckpointBytes int64
}

// ShardsAuto is the Options.Shards sentinel selecting one shard per
// available CPU (runtime.GOMAXPROCS(0)).
const ShardsAuto = -1

// Engine bundles a store, a rule set, the statistics catalog, the
// speculative planner and the executors behind one façade. It is safe for
// concurrent queries once the store is frozen — and for concurrent Insert
// calls interleaved with queries: live inserts land in per-segment mutable
// heads, the statistics catalog invalidates itself against the store's
// content version, and the batch plan cache is flushed on version changes.
type Engine struct {
	store   *Store
	graph   kg.Graph
	rules   *RuleSet
	catalog *stats.Catalog
	planner *planner.Planner
	plans   *planner.PlanCache
	exec    *exec.Executor
	opts    Options
	// planVersion is the graph content version the batch plan cache was last
	// validated against (see livePlans).
	planVersion atomic.Uint64
	// wal is the durability layer; nil on non-durable engines. Set only by
	// OpenDurable/OpenDurableWith (see durable.go).
	wal *walState
}

// NewEngine builds an engine over a frozen store and a rule set with default
// options.
func NewEngine(st *Store, rules *RuleSet) *Engine {
	return NewEngineWith(st, rules, Options{})
}

// NewEngineWith builds an engine with explicit options. With Options.Shards
// beyond 1 the store's triples are repartitioned into subject-hashed
// segments (frozen in parallel; st itself is left as passed) and every
// query runs through the parallel sharded read path.
func NewEngineWith(st *Store, rules *RuleSet, opts Options) *Engine {
	if opts.WALDir != "" {
		// Accepting the option here and ignoring it would hand back an
		// engine the caller believes is durable. Fail loudly instead.
		panic("specqp: Options.WALDir requires OpenDurable/OpenDurableWith, not NewEngineWith")
	}
	shards := opts.Shards
	if shards < 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	var graph kg.Graph
	if shards > 1 {
		graph = kg.NewShardedStoreFrom(st, shards)
	} else {
		if !st.Frozen() {
			st.Freeze()
		}
		graph = st
	}
	return newEngineOver(graph, st, rules, opts)
}

// NewEngineOver builds an engine directly over an existing Graph — a Store
// or a caller-built ShardedStore — without copying or repartitioning it
// (Options.Shards is ignored; the graph's own layout decides the execution
// mode). This is the memory-lean path for sharded engines: populate a
// specqp.NewShardedStore yourself and no flat copy of the triples ever
// exists. Engine.Store returns nil unless g is a *Store.
func NewEngineOver(g Graph, rules *RuleSet, opts Options) *Engine {
	if !g.Frozen() {
		switch s := g.(type) {
		case *Store:
			s.Freeze()
		case *ShardedStore:
			s.Freeze()
		}
	}
	st, _ := g.(*Store)
	return newEngineOver(g, st, rules, opts)
}

// newEngineOver wires catalog, planner, caches and executor over graph.
// store may be nil (engines built over a non-*Store graph).
func newEngineOver(graph kg.Graph, store *Store, rules *RuleSet, opts Options) *Engine {
	buckets := opts.HistogramBuckets
	if buckets == 0 {
		buckets = 2
	}
	var counter stats.Counter
	if opts.EstimatedSelectivity {
		counter = stats.EstimatedCounter{Store: graph}
	}
	cat := stats.NewCatalog(graph, buckets, counter)
	pl := planner.New(cat, rules)
	ex := exec.New(graph, rules)
	if ss, ok := graph.(*ShardedStore); ok && ss.NumShards() > 1 {
		ex.Parallel = true
	}
	if lg, ok := graph.(kg.LiveGraph); ok {
		if opts.HeadLimit != 0 {
			lg.SetHeadLimit(opts.HeadLimit)
		}
		if opts.L1Limit > 0 {
			lg.SetL1Limit(opts.L1Limit)
		}
	}
	return &Engine{
		store:   store,
		graph:   graph,
		rules:   rules,
		catalog: cat,
		planner: pl,
		plans:   planner.NewPlanCache(pl, opts.PlanCacheSize),
		exec:    ex,
		opts:    opts,
	}
}

// Store returns the engine's triple store as passed to NewEngine. With
// Options.Shards beyond 1 the engine queries a sharded copy instead — see
// Graph. Engines built with NewEngineOver on a non-*Store graph return nil.
func (e *Engine) Store() *Store { return e.store }

// Graph returns the store layout the engine actually queries: the Store
// itself, or the ShardedStore built from it when Options.Shards asked for
// partitioning.
func (e *Engine) Graph() Graph { return e.graph }

// Rules returns the engine's rule set.
func (e *Engine) Rules() *RuleSet { return e.rules }

// ParseSPARQL parses a SPARQL-subset query against the engine's dictionary.
func (e *Engine) ParseSPARQL(src string) (Query, error) {
	pq, err := sparql.Parse(src, e.graph.Dict())
	if err != nil {
		return Query{}, err
	}
	return pq.Query, nil
}

// PatternStats re-exports the paper's per-pattern precomputed statistics
// {m, σr, Sr, Sm}.
type PatternStats = stats.PatternStats

// PatternStats computes the two-bucket statistics of a pattern's normalised
// scores — the four values the paper precomputes per triple pattern.
func (e *Engine) PatternStats(p Pattern) (PatternStats, error) {
	return stats.FitTwoBucket(e.graph.NormalizedScores(p))
}

// DefaultK is the top-k used by QuerySPARQL when the query has no LIMIT.
const DefaultK = 10

// QuerySPARQL parses and executes a SPARQL-subset query in one call. The
// query's LIMIT clause selects k (DefaultK when absent).
func (e *Engine) QuerySPARQL(src string, mode Mode) (Result, error) {
	pq, err := sparql.Parse(src, e.graph.Dict())
	if err != nil {
		return Result{}, err
	}
	k := pq.Limit
	if k == 0 {
		k = DefaultK
	}
	return e.Query(pq.Query, k, mode)
}

// PlanQuery runs the speculative planner without executing, for inspection.
func (e *Engine) PlanQuery(q Query, k int) Plan {
	return e.planner.Plan(q, k)
}

// Explain renders the planner's reasoning for a plan.
func (e *Engine) Explain(p Plan) string { return e.planner.Explain(p) }

// Query executes q for the top-k answers under the chosen mode.
func (e *Engine) Query(q Query, k int, mode Mode) (Result, error) {
	if k < 1 {
		return Result{}, fmt.Errorf("specqp: k must be >= 1, got %d", k)
	}
	if len(q.Patterns) == 0 {
		return Result{}, fmt.Errorf("specqp: empty query")
	}
	switch mode {
	case ModeSpecQP:
		return e.exec.SpecQP(e.planner, q, k), nil
	case ModeTriniT:
		return e.exec.TriniT(q, k), nil
	case ModeNaive:
		return e.exec.Naive(q, k, e.opts.NaiveLimit), nil
	case ModeExact:
		return e.exec.Exact(q, k), nil
	default:
		return Result{}, fmt.Errorf("specqp: unknown mode %v", mode)
	}
}

// QueryContext is Query with cancellation support for the operator-based
// modes (ModeSpecQP, ModeTriniT): a cancelled context returns the partial
// top-k gathered so far together with the context error. ModeNaive does not
// support cancellation (it delegates to Query).
func (e *Engine) QueryContext(ctx context.Context, q Query, k int, mode Mode) (Result, error) {
	if k < 1 {
		return Result{}, fmt.Errorf("specqp: k must be >= 1, got %d", k)
	}
	if len(q.Patterns) == 0 {
		return Result{}, fmt.Errorf("specqp: empty query")
	}
	switch mode {
	case ModeSpecQP:
		return e.exec.SpecQPContext(ctx, e.planner, q, k)
	case ModeTriniT:
		return e.exec.TriniTContext(ctx, q, k)
	case ModeNaive:
		return e.Query(q, k, mode)
	case ModeExact:
		return e.exec.ExactContext(ctx, q, k)
	default:
		return Result{}, fmt.Errorf("specqp: unknown mode %v", mode)
	}
}

// AnswerEmitter receives streamed answers in rank order the moment the
// operators prove them final. Returning false stops the query early with the
// answers emitted so far and a nil error.
type AnswerEmitter = exec.AnswerEmitFunc

// QueryStream executes q like QueryContext but hands each answer to emit the
// instant the rank join's corner bound proves no future answer can outrank
// it — for selective joins that is typically long before the full top-k is
// known, so a streaming client sees its first answer at a fraction of the
// full-drain latency. The returned Result carries the same answers passed to
// emit (streamed and batch consumers observe one sequence by construction;
// QueryContext is exactly QueryStream with a nil emitter).
//
// Cancellation keeps QueryContext's contract: a context expiring mid-stream
// stops the operators within a bounded number of probes (AbortStride) and
// returns the emitted prefix together with ctx.Err(). ModeNaive evaluates
// exhaustively and cannot prove finality incrementally; it computes the full
// top-k first and then replays it through emit, so the wire protocol is
// uniform across modes even though Naive gains no latency.
func (e *Engine) QueryStream(ctx context.Context, q Query, k int, mode Mode, emit AnswerEmitter) (Result, error) {
	if k < 1 {
		return Result{}, fmt.Errorf("specqp: k must be >= 1, got %d", k)
	}
	if len(q.Patterns) == 0 {
		return Result{}, fmt.Errorf("specqp: empty query")
	}
	switch mode {
	case ModeSpecQP:
		return e.exec.SpecQPContextStream(ctx, e.planner, q, k, emit)
	case ModeTriniT:
		return e.exec.TriniTContextStream(ctx, q, k, emit)
	case ModeExact:
		return e.exec.ExactContextStream(ctx, q, k, emit)
	case ModeNaive:
		res, err := e.Query(q, k, mode)
		if err != nil {
			return res, err
		}
		if emit != nil {
			for _, a := range res.Answers {
				if !emit(a) {
					break
				}
			}
		}
		return res, nil
	default:
		return Result{}, fmt.Errorf("specqp: unknown mode %v", mode)
	}
}

// QueryTraced is QueryContext with per-query observability: the returned
// Result carries a QueryTrace recording the planner's decisions (plan-cache
// hit or miss, shape key, relaxation count, planning time) and a plan-shaped
// tree of per-operator counters — pulls, emissions, dedup drops, bound
// trajectory samples, abort polls, arena bytes. Tracing changes only what is
// recorded, never what is computed: answers are bit-identical to
// QueryContext's (the oracle tests pin this down).
//
// ModeSpecQP plans through the engine's shape-keyed plan cache so the trace
// reflects production cache behaviour; Query/QueryContext plan afresh each
// call, so a traced run may observe a cached plan where an untraced one
// re-planned — the plans are identical either way (materialised from the
// same shape). ModeNaive has no operator tree; its trace carries only the
// header fields.
func (e *Engine) QueryTraced(ctx context.Context, q Query, k int, mode Mode) (Result, error) {
	if k < 1 {
		return Result{}, fmt.Errorf("specqp: k must be >= 1, got %d", k)
	}
	if len(q.Patterns) == 0 {
		return Result{}, fmt.Errorf("specqp: empty query")
	}
	switch mode {
	case ModeSpecQP:
		t0 := time.Now()
		p, hit := e.livePlans().PlanInfo(q, k)
		planTime := time.Since(t0)
		res, err := e.exec.RunContextTraced(ctx, p, nil)
		res.PlanTime = planTime
		if res.Trace != nil {
			res.Trace.Mode = mode.String()
			res.Trace.ShapeKey = planner.ShapeKey(q, k)
			res.Trace.PlanCached = true
			res.Trace.PlanCacheHit = hit
			res.Trace.Relaxations = p.NumRelaxed()
			res.Trace.PlanUS = planTime.Microseconds()
		}
		return res, err
	case ModeTriniT:
		res, err := e.exec.RunContextTraced(ctx, planner.TriniTPlan(q, k), nil)
		if res.Trace != nil {
			res.Trace.Mode = mode.String()
			res.Trace.Relaxations = len(q.Patterns)
		}
		return res, err
	case ModeExact:
		res, err := e.exec.RunContextTraced(ctx, planner.ExactPlan(q, k), nil)
		if res.Trace != nil {
			res.Trace.Mode = mode.String()
		}
		return res, err
	case ModeNaive:
		res, err := e.Query(q, k, mode)
		if err != nil {
			return res, err
		}
		res.Trace = &trace.Trace{
			Mode:          mode.String(),
			K:             k,
			ExecUS:        res.ExecTime.Microseconds(),
			Answers:       len(res.Answers),
			MemoryObjects: res.MemoryObjects,
		}
		return res, nil
	default:
		return Result{}, fmt.Errorf("specqp: unknown mode %v", mode)
	}
}

// ExplainString executes q traced and renders both halves of the story: the
// planner's reasoning (what it speculated and why — ModeSpecQP only; the
// other modes have no speculative plan to explain) followed by the executed
// trace tree with per-operator counters. This is what `specqp -explain`
// prints.
func (e *Engine) ExplainString(ctx context.Context, q Query, k int, mode Mode) (string, error) {
	res, err := e.QueryTraced(ctx, q, k, mode)
	if err != nil {
		return "", err
	}
	var out string
	if mode == ModeSpecQP {
		out = e.planner.Explain(res.Plan)
	}
	return out + trace.Render(res.Trace), nil
}

// Insert adds a scored triple to the engine's live store: the triple lands
// in its segment's mutable head, is immediately visible to every subsequent
// query, and is merged into the frozen posting arenas when the head crosses
// Options.HeadLimit or Compact is called. Safe for concurrent use with
// queries and other Inserts. Note that with Options.Shards beyond 1 the
// engine queries a sharded copy of the store passed to NewEngineWith — the
// insert lands there, and Engine.Store() no longer reflects the live
// contents (Engine.Graph() always does).
//
// On a durable engine (OpenDurable) the insert is first framed into the
// write-ahead log and Insert returns only once the record is durable per
// Options.SyncPolicy — concurrent inserters share fsyncs through group
// commit — so every acknowledged Insert survives a crash. An Insert that
// returns an error is *indeterminate*, exactly like an unacked write to any
// database: the triple may be visible to queries on this process (applied
// before the commit failed) and may or may not survive recovery. A commit
// failure wedges the log — every later Insert fails and checkpoints are
// refused, so durable state stays at the last consistent prefix.
func (e *Engine) Insert(t Triple) error {
	lg, ok := e.graph.(kg.LiveGraph)
	if !ok {
		return fmt.Errorf("specqp: %T does not support live inserts", e.graph)
	}
	if e.wal != nil {
		return e.wal.insert(lg, t)
	}
	return lg.Insert(t)
}

// InsertSPO encodes the three terms against the engine's dictionary and
// inserts the triple live.
func (e *Engine) InsertSPO(s, p, o string, score float64) error {
	d := e.graph.Dict()
	return e.Insert(Triple{S: d.Encode(s), P: d.Encode(p), O: d.Encode(o), Score: score})
}

// Delete retracts every live copy of the 〈s p o〉 key from the engine's
// store — frozen copies, L1-tier copies and head copies alike — and returns
// how many were removed. The retraction is immediately visible to every
// subsequent query (cached plans and statistics invalidate through the
// content version); pinned snapshots taken before the delete keep seeing the
// old state. Deleting a key with no live copies is a no-op that still
// returns (0, nil). Requires a frozen store, like Insert.
//
// On a durable engine the tombstone is framed into the write-ahead log
// before the retraction applies, with the same acknowledgement contract as
// Insert: when Delete returns nil the retraction survives a crash, and a
// deleted fact is never resurrected by recovery.
func (e *Engine) Delete(s, p, o ID) (int, error) {
	lg, ok := e.graph.(kg.LiveGraph)
	if !ok {
		return 0, fmt.Errorf("specqp: %T does not support live deletes", e.graph)
	}
	if e.wal != nil {
		return e.wal.delete(lg, s, p, o)
	}
	return lg.Delete(s, p, o)
}

// DeleteSPO looks the three terms up in the engine's dictionary and deletes
// the key. Unknown terms cannot name a stored fact, so they short-circuit to
// (0, nil) without touching the store — or, on a durable engine, the log.
func (e *Engine) DeleteSPO(s, p, o string) (int, error) {
	d := e.graph.Dict()
	si, ok1 := d.Lookup(s)
	pi, ok2 := d.Lookup(p)
	oi, ok3 := d.Lookup(o)
	if !ok1 || !ok2 || !ok3 {
		return 0, nil
	}
	return e.Delete(si, pi, oi)
}

// Update re-scores the 〈s p o〉 key latest-wins: every live copy is retracted
// and one copy with t.Score takes its place, atomically from the point of
// view of concurrent queries (no interleaving observes the key absent or
// doubled). Updating a key with no live copies inserts it.
//
// On a durable engine the update logs as a tombstone followed by an insert;
// Update returns nil only once both records are durable.
func (e *Engine) Update(t Triple) error {
	lg, ok := e.graph.(kg.LiveGraph)
	if !ok {
		return fmt.Errorf("specqp: %T does not support live updates", e.graph)
	}
	if e.wal != nil {
		return e.wal.update(lg, t)
	}
	return lg.Update(t)
}

// UpdateSPO encodes the three terms against the engine's dictionary and
// applies the latest-wins re-score.
func (e *Engine) UpdateSPO(s, p, o string, score float64) error {
	d := e.graph.Dict()
	return e.Update(Triple{S: d.Encode(s), P: d.Encode(p), O: d.Encode(o), Score: score})
}

// Compact merges every pending mutable head into its frozen segment
// (per-shard, in parallel, without blocking concurrent queries). Answers are
// bit-identical before and after; only the read-path cost changes — frozen
// segments serve zero-allocation match-list views, heads pay a small merge.
// On a durable engine Compact also checkpoints: the frozen state is
// persisted through the binary snapshot format and the log segments it
// covers are truncated. The returned error is always nil on non-durable
// engines.
func (e *Engine) Compact() error {
	if lg, ok := e.graph.(kg.LiveGraph); ok {
		lg.Compact()
	}
	return e.Checkpoint()
}

// livePlans returns the batch plan cache, flushed when the store's content
// version moved since the last use: cached plans embed cardinalities and
// score distributions that are stale after a live insert. planVersion only
// advances (CAS), so a goroutine carrying a stale version read cannot
// rewind it, and PlanCache's generation guard keeps a plan computed before
// a Clear from ever being published after it — a query racing an insert may
// still *execute* such a plan, which is the same outcome as the query
// having started just before the insert. The sequential ingest-then-query
// flow the oracle tests pin always sees a freshly cleared cache.
func (e *Engine) livePlans() *planner.PlanCache {
	v := e.graph.Version()
	if cur := e.planVersion.Load(); cur < v {
		e.plans.Clear()
		e.planVersion.CompareAndSwap(cur, v)
	}
	return e.plans
}

// DecodeAnswer renders an answer's bindings as variable→term strings.
func (e *Engine) DecodeAnswer(q Query, a Answer) map[string]string {
	vs := kg.NewVarSet(q)
	out := make(map[string]string, vs.Len())
	for i := 0; i < vs.Len(); i++ {
		if a.Binding[i] != kg.NoID {
			out[vs.Name(i)] = e.graph.Dict().Decode(a.Binding[i])
		}
	}
	return out
}
