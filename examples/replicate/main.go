// Command replicate is a self-contained transcript of WAL log shipping: a
// durable primary serving reads and writes, and a read-only follower that
// owns no log and no triples file — its entire state arrives over a loopback
// TCP link as the primary's checkpoint snapshot plus the record tail, applied
// with the same replay discipline crash recovery uses. The transcript plays
// the clients: writes land on the primary, the follower's health converges to
// zero lag, both processes answer a relaxed query identically, a write sent
// to the follower sheds with 503, and the follower's metrics export the
// replication gauges.
//
// The same topology ships as binaries:
//
//	specqp-serve -triples data.tsv -rules rules.tsv -wal wal -listen-repl :7070
//	specqp-serve -replicate-from primary:7070 -rules rules.tsv -addr :8081
package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"specqp"
	"specqp/internal/kg"
	"specqp/internal/metrics"
	"specqp/internal/relax"
	"specqp/internal/repl"
	"specqp/internal/server"
)

// One relaxation rule, in the same TSV dialect the binaries load: both sides
// hold a copy, because rules are query configuration, not shipped state.
const rulesTSV = "?s\trdf:type\tsinger\t?s\trdf:type\tvocalist\t0.8\n"

func main() {
	// --- The primary: a WAL-backed engine over a small musicians graph. ---
	walDir, err := os.MkdirTemp("", "specqp-replicate-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(walDir)

	st := specqp.NewStore()
	for _, row := range []struct {
		s, o  string
		score float64
	}{
		{"shakira", "singer", 100}, {"beyonce", "singer", 90}, {"miley", "singer", 50},
		{"prince", "vocalist", 95}, {"elton", "vocalist", 85},
		{"shakira", "guitarist", 40}, {"prince", "guitarist", 99},
	} {
		st.AddSPO(row.s, "rdf:type", row.o, row.score)
	}
	rules := specqp.NewRuleSet()
	eng, err := specqp.OpenDurableWith(walDir, st, rules, specqp.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()
	if err := relax.ReadTSVInto(rules, strings.NewReader(rulesTSV), eng.Graph().Dict()); err != nil {
		log.Fatal(err)
	}

	// Ship the WAL: the feed serves positional pulls and checkpoint
	// snapshots; the primary frames them over TCP.
	prim := repl.NewPrimary(eng.WALFeed(), repl.PrimaryOptions{})
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go prim.Serve(rln)
	defer prim.Close()

	primSrv := server.New(server.Config{Backend: eng})
	primHTTP := &http.Server{Handler: primSrv.Handler(), ReadHeaderTimeout: 5 * time.Second}
	pln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go primHTTP.Serve(pln)
	primBase := "http://" + pln.Addr().String()
	fmt.Printf("primary: serving %d triples on %s, shipping the WAL on %s\n",
		eng.Graph().Len(), pln.Addr(), rln.Addr())

	// --- The follower: no store, no log — just an address to tail. ---
	rep := specqp.NewReplica(nil, specqp.Options{})
	rep.SetRulesLoader(func(d *kg.Dict) (*specqp.RuleSet, error) {
		// Re-encoded against each installed snapshot's dictionary, exactly
		// what -rules does in follower mode.
		rs := specqp.NewRuleSet()
		if err := relax.ReadTSVInto(rs, strings.NewReader(rulesTSV), d); err != nil {
			return nil, err
		}
		return rs, nil
	})
	rm := &metrics.ReplicationMetrics{}
	client := repl.NewNetClient(rln.Addr().String(), repl.NetClientOptions{Metrics: rm})
	defer client.Close()
	fol := repl.NewFollower(client, rep, repl.FollowerOptions{Metrics: rm})
	stop := make(chan struct{})
	folDone := make(chan struct{})
	go func() { defer close(folDone); fol.Run(stop) }()

	folSrv := server.New(server.Config{Backend: rep, Replication: rm})
	folHTTP := &http.Server{Handler: folSrv.Handler(), ReadHeaderTimeout: 5 * time.Second}
	fln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go folHTTP.Serve(fln)
	folBase := "http://" + fln.Addr().String()
	fmt.Printf("follower: read-only replica on %s, tailing %s\n\n", fln.Addr(), rln.Addr())

	// 1. Writes land on the primary — the only process that takes them.
	fmt.Printf("POST primary /insert {\"s\":\"bowie\",...}\n")
	fmt.Printf("          ->  %s\n", post(primBase+"/insert",
		`{"s":"bowie","p":"rdf:type","o":"singer","score":97}`))
	fmt.Printf("POST primary /insert {\"s\":\"bowie\",...}\n")
	fmt.Printf("          ->  %s\n", post(primBase+"/insert",
		`{"s":"bowie","p":"rdf:type","o":"guitarist","score":88}`))

	// 2. The follower converges: lag drops to zero as the shipped records
	// apply. /healthz carries the replica position gauges.
	var health string
	for deadline := time.Now().Add(10 * time.Second); ; {
		health = get(folBase + "/healthz")
		if strings.Contains(health, `"replica_lag_seq":0`) &&
			strings.Contains(health, `"replica_applied_seq":2`) {
			break
		}
		if time.Now().After(deadline) {
			log.Fatalf("follower never caught up: %s", health)
		}
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Printf("\nGET follower /healthz ->  %s\n\n", health)

	// 3. Both processes answer the relaxed query identically — prince only
	// matches because singer relaxes to vocalist, and the follower holds its
	// own copy of that rule.
	query := `SELECT ?s WHERE { ?s 'rdf:type' <singer> . ?s 'rdf:type' <guitarist> }`
	body := fmt.Sprintf(`{"query":%q,"k":3,"mode":"spec-qp"}`, query)
	fmt.Printf("POST /query  %s\n", body)
	fmt.Printf("primary   ->  %s\n", post(primBase+"/query", body))
	fmt.Printf("follower  ->  %s\n\n", post(folBase+"/query", body))

	// 4. A write sent to the follower sheds fast with 503: replicas are
	// read-only, same discipline as a wedged primary.
	resp, err := http.Post(folBase+"/insert", "application/json",
		strings.NewReader(`{"s":"elvis","p":"rdf:type","o":"singer","score":99}`))
	if err != nil {
		log.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Printf("POST follower /insert -> %d %s\n", resp.StatusCode, strings.TrimSpace(string(raw)))

	// 5. The follower's metrics export the replication gauges.
	fmt.Printf("GET follower /metrics ->  (excerpt)\n")
	for _, line := range strings.Split(get(folBase+"/metrics"), "\n") {
		if strings.HasPrefix(line, "specqp_replica_") {
			fmt.Printf("    %s\n", line)
		}
	}

	// 6. Shut down: follower loop first, then both HTTP fronts.
	close(stop)
	<-folDone
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	folSrv.Drain(ctx)
	folHTTP.Shutdown(ctx)
	primSrv.Drain(ctx)
	primHTTP.Shutdown(ctx)
	fmt.Printf("\ndrained cleanly\n")
}

func post(url, body string) string {
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return strings.TrimSpace(string(raw))
}

func get(url string) string {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return strings.TrimSpace(string(raw))
}
