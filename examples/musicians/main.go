// Command musicians reproduces the paper's motivating scenario at scale:
// "Which singers also write lyrics and play guitar and piano?" over a
// synthetic XKG-style knowledge graph with a full relaxation space (Table 1
// of the paper: singer→vocalist/jazz_singer/artist, lyricist→writer,
// guitarist→musician/instrumentalist, pianist→percussionist).
//
// It shows the paper's core effect: TriniT processes relaxations of all four
// patterns, Spec-QP speculates which of them can actually reach the top-k
// and prunes the rest, cutting answer-object creation.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"specqp"
)

// professions maps each queried type to its relaxations with weights, per
// the paper's Table 1 (weights chosen to mirror the example's spirit).
var professions = map[string][]struct {
	to string
	w  float64
}{
	"singer":    {{"vocalist", 0.9}, {"jazz_singer", 0.75}, {"artist", 0.5}},
	"lyricist":  {{"writer", 0.8}},
	"guitarist": {{"musician", 0.7}, {"instrumentalist", 0.65}},
	"pianist":   {{"percussionist", 0.6}},
}

var allTypes = []string{
	"singer", "vocalist", "jazz_singer", "artist",
	"lyricist", "writer",
	"guitarist", "musician", "instrumentalist",
	"pianist", "percussionist",
}

func main() {
	rng := rand.New(rand.NewSource(2019))
	st := specqp.NewStore()

	// 3000 musicians with Zipf-like fame; each has a random subset of the
	// profession types. The singer∧lyricist∧guitarist∧pianist conjunction is
	// rare, so relaxations genuinely matter.
	const musicians = 3000
	for i := 0; i < musicians; i++ {
		name := fmt.Sprintf("musician_%04d", i)
		fame := 1e6 / float64(1+i)
		n := 2 + rng.Intn(3)
		seen := map[string]bool{}
		for j := 0; j < n; j++ {
			ty := allTypes[rng.Intn(len(allTypes))]
			if seen[ty] {
				continue
			}
			seen[ty] = true
			score := fame * (0.8 + 0.4*rng.Float64())
			if err := st.AddSPO(name, "rdf:type", ty, score); err != nil {
				log.Fatal(err)
			}
		}
	}
	st.Freeze()

	dict := st.Dict()
	typeID, _ := dict.Lookup("rdf:type")
	pat := func(object string) specqp.Pattern {
		id, ok := dict.Lookup(object)
		if !ok {
			log.Fatalf("type %q not in the KG", object)
		}
		return specqp.NewPattern(specqp.Var("s"), specqp.Const(typeID), specqp.Const(id))
	}

	rules := specqp.NewRuleSet()
	for from, rels := range professions {
		for _, r := range rels {
			if err := rules.Add(specqp.Rule{From: pat(from), To: pat(r.to), Weight: r.w}); err != nil {
				log.Fatal(err)
			}
		}
	}

	eng := specqp.NewEngine(st, rules)
	q, err := eng.ParseSPARQL(`SELECT ?s WHERE {
		?s 'rdf:type' <singer> .
		?s 'rdf:type' <lyricist> .
		?s 'rdf:type' <guitarist> .
		?s 'rdf:type' <pianist>
	}`)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("query: singers who write lyrics and play guitar and piano, top-10")
	fmt.Printf("relaxation space: %d rules; full enumeration would evaluate %d queries\n",
		rules.Len(), enumerationSize(q, eng))

	for _, k := range []int{5, 10, 20} {
		tr, err := eng.Query(q, k, specqp.ModeTriniT)
		if err != nil {
			log.Fatal(err)
		}
		sp, err := eng.Query(q, k, specqp.ModeSpecQP)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nk=%d: TriniT %d objects / %v — Spec-QP %d objects / %v (relaxed %d of %d patterns)\n",
			k, tr.MemoryObjects, tr.TotalTime(), sp.MemoryObjects, sp.TotalTime(),
			sp.Plan.NumRelaxed(), len(q.Patterns))
		for rank, a := range sp.Answers {
			if rank >= 5 {
				fmt.Printf("  … %d more\n", len(sp.Answers)-5)
				break
			}
			vars := eng.DecodeAnswer(q, a)
			fmt.Printf("  %d. %-14s score=%.3f (via %d relaxations)\n",
				rank+1, vars["s"], a.Score, a.RelaxedCount())
		}
	}

	plan := eng.PlanQuery(q, 10)
	fmt.Println("\nplanner reasoning (k=10):")
	fmt.Print(eng.Explain(plan))
}

// enumerationSize computes ∏(1+fanout) — the count the paper's intro gives
// as 48 for its example.
func enumerationSize(q specqp.Query, eng *specqp.Engine) int {
	n := 1
	for _, p := range q.Patterns {
		n *= 1 + len(eng.Rules().For(p))
	}
	return n
}
