// Command twitter mirrors the paper's second evaluation scenario: conjunctive
// hashtag search over a tweet stream where triple scores are retweet counts
// and relaxation rules are mined automatically from term co-occurrence
// (w = #tweets(T1∧T2)/#tweets(T1)).
//
// Unlike the quickstart, nothing here is hand-specified: the rule set comes
// out of the data via the co-occurrence miner, exactly as the paper built its
// Twitter relaxations.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"specqp"
)

func main() {
	rng := rand.New(rand.NewSource(42))
	st := specqp.NewStore()

	// A small synthetic stream: 5000 tweets over 60 hashtags clustered into
	// topics (music, sports, news, tech), Zipf retweet counts.
	topics := map[string][]string{
		"music":  {"#intoyouvideo", "#ariana", "#dangerous", "#video", "#song", "#pop", "#nowplaying", "#remix", "#vocals", "#tour", "#setlist", "#encore", "#album", "#single", "#chart"},
		"sports": {"#football", "#goal", "#worldcup", "#match", "#team", "#fans", "#stadium", "#league", "#derby", "#transfer", "#coach", "#injury", "#penalty", "#var", "#finals"},
		"news":   {"#breaking", "#election", "#economy", "#weather", "#storm", "#update", "#live", "#report", "#press", "#policy", "#vote", "#debate", "#poll", "#summit", "#crisis"},
		"tech":   {"#ai", "#startup", "#coding", "#golang", "#database", "#cloud", "#launch", "#beta", "#opensource", "#devops", "#mobile", "#security", "#data", "#api", "#infra"},
	}
	var topicNames []string
	for name := range topics {
		topicNames = append(topicNames, name)
	}
	// Deterministic order for reproducibility (map iteration is random).
	for i := 1; i < len(topicNames); i++ {
		for j := i; j > 0 && topicNames[j] < topicNames[j-1]; j-- {
			topicNames[j], topicNames[j-1] = topicNames[j-1], topicNames[j]
		}
	}

	const tweets = 5000
	for i := 0; i < tweets; i++ {
		id := fmt.Sprintf("tweet_%05d", i)
		retweets := float64(1 + rng.Intn(20000)/(1+i%97))
		topic := topics[topicNames[rng.Intn(len(topicNames))]]
		n := 2 + rng.Intn(4)
		seen := map[string]bool{}
		for j := 0; j < n; j++ {
			var tag string
			if rng.Float64() < 0.8 {
				tag = topic[rng.Intn(len(topic))]
			} else {
				other := topics[topicNames[rng.Intn(len(topicNames))]]
				tag = other[rng.Intn(len(other))]
			}
			if seen[tag] {
				continue
			}
			seen[tag] = true
			if err := st.AddSPO(id, "hasTag", tag, retweets); err != nil {
				log.Fatal(err)
			}
		}
	}
	st.Freeze()

	// Mine co-occurrence relaxations from the stream itself.
	hasTag, _ := st.Dict().Lookup("hasTag")
	rules, err := specqp.MineCooccurrence(st, hasTag, 10, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mined %d relaxation rules from %d triples\n", rules.Len(), st.Len())

	eng := specqp.NewEngine(st, rules)

	// The paper's example query: tweets carrying all three terms.
	q, err := eng.ParseSPARQL(`SELECT ?s WHERE {
		?s <hasTag> <#intoyouvideo> .
		?s <hasTag> <#ariana> .
		?s <hasTag> <#dangerous>
	}`)
	if err != nil {
		log.Fatal(err)
	}

	// Show the mined relaxations for one pattern.
	fmt.Println("\nmined relaxations for 〈?s hasTag #intoyouvideo〉:")
	for i, r := range eng.Rules().For(q.Patterns[0]) {
		if i >= 5 {
			break
		}
		fmt.Printf("  → %-16s w=%.3f\n", st.Dict().Decode(r.To.O.ID), r.Weight)
	}

	for _, k := range []int{10, 20} {
		tr, err := eng.Query(q, k, specqp.ModeTriniT)
		if err != nil {
			log.Fatal(err)
		}
		sp, err := eng.Query(q, k, specqp.ModeSpecQP)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nk=%d: TriniT found %d answers with %d objects; Spec-QP %d answers with %d objects (relaxed %d/%d patterns)\n",
			k, len(tr.Answers), tr.MemoryObjects, len(sp.Answers), sp.MemoryObjects,
			sp.Plan.NumRelaxed(), len(q.Patterns))
		for rank, a := range sp.Answers {
			if rank >= 3 {
				break
			}
			vars := eng.DecodeAnswer(q, a)
			fmt.Printf("  %d. %-12s score=%.3f\n", rank+1, vars["s"], a.Score)
		}
	}
}
