// Command explain walks through the Spec-QP estimator step by step on a
// controlled knowledge graph, printing the quantities the paper defines:
// per-pattern two-bucket statistics {m, σr, Sr, Sm}, the expected k-th score
// of the original query EQ(k), each pattern's top-weighted relaxation
// estimate EQ'(1), and the resulting plan partition. It is the debugging
// companion to Algorithm 1 (PLANGEN).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"specqp"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	st := specqp.NewStore()

	// Three populations:
	//   A — 200 entities, strong scores (stars);
	//   B — 30 entities, scarce (forces relaxation for large k);
	//   C — 150 entities, strong; the relaxation target for B;
	//   D — 100 entities; a weak relaxation target for A.
	addPop := func(prefix, ty string, n int, maxScore float64) {
		for i := 0; i < n; i++ {
			score := maxScore / float64(1+i) * (0.8 + 0.4*rng.Float64())
			name := fmt.Sprintf("%s%03d", prefix, i)
			if err := st.AddSPO(name, "rdf:type", ty, score); err != nil {
				log.Fatal(err)
			}
		}
	}
	addPop("e", "A", 200, 10000)
	for i := 0; i < 30; i++ { // B overlaps A's top entities
		name := fmt.Sprintf("e%03d", i*3)
		if err := st.AddSPO(name, "rdf:type", "B", 5000/float64(1+i)); err != nil {
			log.Fatal(err)
		}
	}
	addPop("e", "C", 150, 9000)
	addPop("x", "D", 100, 2000)
	st.Freeze()

	dict := st.Dict()
	typeID, _ := dict.Lookup("rdf:type")
	pat := func(object string) specqp.Pattern {
		id, _ := dict.Lookup(object)
		return specqp.NewPattern(specqp.Var("s"), specqp.Const(typeID), specqp.Const(id))
	}

	rules := specqp.NewRuleSet()
	must(rules.Add(specqp.Rule{From: pat("B"), To: pat("C"), Weight: 0.85}))
	must(rules.Add(specqp.Rule{From: pat("A"), To: pat("D"), Weight: 0.4}))

	eng := specqp.NewEngine(st, rules)
	q := specqp.NewQuery(pat("A"), pat("B"))

	fmt.Println("per-pattern statistics (the paper's precomputed metadata):")
	for i, p := range q.Patterns {
		stats, err := eng.PatternStats(p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  pattern %d %s: m=%d σr=%.4f Sr=%.2f Sm=%.2f\n",
			i, st.PatternString(p), stats.M, stats.SigmaR, stats.SR, stats.SM)
	}

	for _, k := range []int{5, 20, 60} {
		plan := eng.PlanQuery(q, k)
		fmt.Printf("\n===== k=%d =====\n", k)
		fmt.Print(eng.Explain(plan))

		res, err := eng.Query(q, k, specqp.ModeSpecQP)
		if err != nil {
			log.Fatal(err)
		}
		truth, err := eng.Query(q, k, specqp.ModeTriniT)
		if err != nil {
			log.Fatal(err)
		}
		match := 0
		truthSet := map[string]bool{}
		for _, a := range truth.Answers {
			truthSet[a.Binding.Key()] = true
		}
		for _, a := range res.Answers {
			if truthSet[a.Binding.Key()] {
				match++
			}
		}
		fmt.Printf("answers: %d (vs TriniT %d), overlap %d; objects S=%d T=%d\n",
			len(res.Answers), len(truth.Answers), match, res.MemoryObjects, truth.MemoryObjects)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
