// Command quickstart is the smallest end-to-end use of the specqp public
// API: build a tiny scored knowledge graph, add two relaxation rules, and ask
// for the top-3 multi-talented musicians under all three execution modes.
package main

import (
	"fmt"
	"log"

	"specqp"
)

func main() {
	st := specqp.NewStore()
	// 〈subject predicate object〉 with a popularity score.
	triples := []struct {
		s, p, o string
		score   float64
	}{
		{"shakira", "rdf:type", "singer", 100},
		{"beyonce", "rdf:type", "singer", 90},
		{"miley", "rdf:type", "singer", 50},
		{"prince", "rdf:type", "vocalist", 95},
		{"elton", "rdf:type", "vocalist", 85},
		{"shakira", "rdf:type", "guitarist", 40},
		{"prince", "rdf:type", "guitarist", 99},
		{"elton", "rdf:type", "pianist", 88},
		{"miley", "rdf:type", "musician", 45},
		{"beyonce", "rdf:type", "musician", 70},
	}
	for _, t := range triples {
		if err := st.AddSPO(t.s, t.p, t.o, t.score); err != nil {
			log.Fatal(err)
		}
	}
	st.Freeze()

	dict := st.Dict()
	typeID, _ := dict.Lookup("rdf:type")
	pat := func(object string) specqp.Pattern {
		id, _ := dict.Lookup(object)
		return specqp.NewPattern(specqp.Var("s"), specqp.Const(typeID), specqp.Const(id))
	}

	// Relaxation rules (Definition 7): singer may be relaxed to vocalist at
	// a 0.8 score penalty, guitarist to musician at 0.7.
	rules := specqp.NewRuleSet()
	must(rules.Add(specqp.Rule{From: pat("singer"), To: pat("vocalist"), Weight: 0.8}))
	must(rules.Add(specqp.Rule{From: pat("guitarist"), To: pat("musician"), Weight: 0.7}))

	eng := specqp.NewEngine(st, rules)

	q, err := eng.ParseSPARQL(`SELECT ?s WHERE {
		?s 'rdf:type' <singer> .
		?s 'rdf:type' <guitarist>
	}`)
	if err != nil {
		log.Fatal(err)
	}

	for _, mode := range []specqp.Mode{specqp.ModeTriniT, specqp.ModeSpecQP, specqp.ModeNaive} {
		res, err := eng.Query(q, 3, mode)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s (objects=%d, time=%v)\n", mode, res.MemoryObjects, res.TotalTime())
		for rank, a := range res.Answers {
			vars := eng.DecodeAnswer(q, a)
			fmt.Printf("  %d. %-8s score=%.3f relaxed=%v\n", rank+1, vars["s"], a.Score, a.RelaxedCount() > 0)
		}
	}

	// Inspect the speculative plan.
	plan := eng.PlanQuery(q, 3)
	fmt.Println("\nplanner reasoning:")
	fmt.Print(eng.Explain(plan))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
