// Command serve is a self-contained transcript of the resilient query
// service: it boots the HTTP front end (internal/server) over a small
// musicians graph on a loopback port, then plays the part of the clients —
// a query, a live insert, the same query streamed as NDJSON (one line per
// proven-final answer plus a trailer), an overload burst against a
// deliberately tiny executor (watch the 429s), a health check, a metrics
// excerpt — and finally drains the server the way a SIGTERM would.
//
// The same server ships as a binary: see cmd/specqp-serve.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"specqp"
	"specqp/internal/server"
)

func main() {
	// A scored graph and one relaxation rule, same shape as examples/musicians.
	st := specqp.NewStore()
	for _, row := range []struct {
		s, o  string
		score float64
	}{
		{"shakira", "singer", 100}, {"beyonce", "singer", 90}, {"miley", "singer", 50},
		{"prince", "vocalist", 95}, {"elton", "vocalist", 85},
		{"shakira", "guitarist", 40}, {"prince", "guitarist", 99},
	} {
		st.AddSPO(row.s, "rdf:type", row.o, row.score)
	}
	st.Freeze()

	rules := specqp.NewRuleSet()
	dict := st.Dict()
	typeID, _ := dict.Lookup("rdf:type")
	singer, _ := dict.Lookup("singer")
	vocalist, _ := dict.Lookup("vocalist")
	s := specqp.Var("s")
	rules.Add(specqp.Rule{
		From:   specqp.NewPattern(s, specqp.Const(typeID), specqp.Const(singer)),
		To:     specqp.NewPattern(s, specqp.Const(typeID), specqp.Const(vocalist)),
		Weight: 0.8,
	})

	eng := specqp.NewEngine(st, rules)

	// A deliberately tight admission policy — 1 executing request, 1 queued,
	// and a 10-request-per-client token bucket that refills (practically)
	// never — so the burst below visibly sheds. Production defaults scale
	// with GOMAXPROCS and leave rate limiting off.
	srv := server.New(server.Config{
		Backend:        eng,
		MaxInflight:    1,
		MaxQueue:       1,
		RatePerClient:  0.0001,
		BurstPerClient: 10,
	})
	hs := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 5 * time.Second}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go hs.Serve(ln)
	base := "http://" + ln.Addr().String()
	fmt.Printf("serving %d triples on %s\n\n", eng.Graph().Len(), ln.Addr())

	// 1. A top-k query with a relaxation: prince matches singer+guitarist
	// only because singer relaxes to vocalist.
	query := `SELECT ?s WHERE { ?s 'rdf:type' <singer> . ?s 'rdf:type' <guitarist> }`
	body := fmt.Sprintf(`{"query":%q,"k":3,"mode":"spec-qp","deadline_ms":2000}`, query)
	fmt.Printf("POST /query  %s\n", body)
	fmt.Printf("         ->  %s\n", post(base+"/query", body))

	// 2. A live insert, immediately visible to the next query.
	fmt.Printf("POST /insert {\"s\":\"bowie\",...}\n")
	fmt.Printf("         ->  %s\n", post(base+"/insert",
		`{"s":"bowie","p":"rdf:type","o":"singer","score":97}`))

	// 3. The same query streamed: "stream":true turns the response into
	// NDJSON, one line per answer flushed the moment the rank join proves it
	// final (the corner bound can no longer be outranked), then a trailer
	// with the metrics a buffered envelope would have carried. A client
	// reads answers as they land instead of waiting for the full drain.
	streamBody := fmt.Sprintf(`{"query":%q,"k":3,"mode":"spec-qp","deadline_ms":2000,"stream":true}`, query)
	fmt.Printf("POST /query  %s\n", streamBody)
	for _, line := range strings.Split(post(base+"/query", streamBody), "\n") {
		fmt.Printf("         ->  %s\n", line)
	}
	fmt.Println()

	// 4. The same query with "explain": true — the response carries a trace
	// object: the planner's decisions (plan-cache hit, shape key, relaxation
	// expansions) and a plan-shaped tree of per-operator counters from the
	// actual execution. Render it the way `specqp -explain` would.
	explainBody := fmt.Sprintf(`{"query":%q,"k":3,"mode":"spec-qp","explain":true}`, query)
	fmt.Printf("POST /query  %s\n", explainBody)
	var explained struct {
		Trace *specqp.QueryTrace `json:"trace"`
	}
	if err := json.Unmarshal([]byte(post(base+"/query", explainBody)), &explained); err != nil {
		log.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimRight(specqp.RenderTrace(explained.Trace), "\n"), "\n") {
		fmt.Printf("         ->  %s\n", line)
	}
	fmt.Println()

	// 5. An overload burst: one client fires 16 concurrent requests, but its
	// token bucket holds 10. Every request is answered — served, or shed with
	// a fast 429 and a Retry-After header — never hung, never errored.
	var wg sync.WaitGroup
	var mu sync.Mutex
	served, shed := 0, 0
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req, _ := http.NewRequest("POST", base+"/query", strings.NewReader(body))
			req.Header.Set("Content-Type", "application/json")
			req.Header.Set("X-Client-ID", "bursty-client")
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			mu.Lock()
			if resp.StatusCode == http.StatusOK {
				served++
			} else if resp.StatusCode == http.StatusTooManyRequests {
				shed++
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	fmt.Printf("\nburst of 16 from one client (bucket of 10): %d served, %d shed with 429\n\n", served, shed)

	// 6. Health and metrics — including the time-to-first-answer histogram
	// the streamed query above just populated and the engine-internals block
	// (store occupancy, cache hit ratios) the explain run touched.
	fmt.Printf("GET /healthz ->  %s\n", get(base+"/healthz"))
	fmt.Printf("GET /metrics ->  (excerpt)\n")
	for _, line := range strings.Split(get(base+"/metrics"), "\n") {
		if strings.HasPrefix(line, "specqp_requests_") || strings.HasPrefix(line, "specqp_shed_") ||
			strings.HasPrefix(line, "specqp_streamed_") || strings.HasPrefix(line, "specqp_first_answer_latency_p") ||
			strings.HasPrefix(line, "specqp_engine_live_") || strings.HasPrefix(line, "specqp_engine_plan_cache_") {
			fmt.Printf("    %s\n", line)
		}
	}

	// 7. Graceful drain: stop admitting, flush in-flight work, then close.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		log.Fatal(err)
	}
	hs.Shutdown(ctx)
	fmt.Printf("\ndrained cleanly\n")
}

func post(url, body string) string {
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return strings.TrimSpace(string(raw))
}

func get(url string) string {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return strings.TrimSpace(string(raw))
}
