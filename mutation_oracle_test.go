package specqp

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"specqp/internal/kg"
)

// This file extends the live-ingest oracle to full mutability: random
// interleavings of Insert, Delete, Update, per-shard and whole-store Compact
// against a live sharded engine must be bit-identical — answers, scores,
// relaxation provenance, Spec-QP plan decisions — to a flat engine rebuilt
// from scratch over the *surviving* facts at every checkpoint, across the
// shard-count ladder, all three execution modes, with and without the tiered
// L1 compaction level.

// survivorModel replays insert/delete/update against a flat fact list with
// retraction-of-every-copy and latest-wins semantics — the ground truth the
// tombstone machinery must reproduce.
type survivorModel struct {
	facts []Triple
}

func (m *survivorModel) insert(tr Triple) { m.facts = append(m.facts, tr) }

func (m *survivorModel) delete(s, p, o ID) int {
	kept := m.facts[:0]
	removed := 0
	for _, f := range m.facts {
		if f.S == s && f.P == p && f.O == o {
			removed++
			continue
		}
		kept = append(kept, f)
	}
	m.facts = kept
	return removed
}

func (m *survivorModel) update(tr Triple) {
	m.delete(tr.S, tr.P, tr.O)
	m.facts = append(m.facts, tr)
}

// TestMutatedInterleavedOracle is the full-mutability acceptance test.
func TestMutatedInterleavedOracle(t *testing.T) {
	for trial := int64(0); trial < 2; trial++ {
		dict, triples, rules, queries := randomLiveFixture(t, 6400+trial)
		base := len(triples) / 2
		l1Limit := 0
		if trial%2 == 1 {
			l1Limit = 16 // small enough that L1 folds mid-schedule
		}
		for _, shards := range oracleShardCounts {
			ss := kg.NewShardedStore(dict, shards)
			for _, tr := range triples[:base] {
				if err := ss.Add(tr); err != nil {
					t.Fatal(err)
				}
			}
			eng := NewEngineOver(ss, rules, Options{HeadLimit: 6, L1Limit: l1Limit})
			live, ok := eng.Graph().(LiveGraph)
			if !ok {
				t.Fatalf("engine graph %T is not a LiveGraph", eng.Graph())
			}
			model := &survivorModel{facts: append([]Triple(nil), triples[:base]...)}
			pos := base
			check := func() {
				t.Helper()
				flat := kg.NewStore(dict)
				for _, tr := range model.facts {
					if err := flat.Add(tr); err != nil {
						t.Fatal(err)
					}
				}
				flat.Freeze()
				ref := NewEngineWith(flat, rules, Options{Shards: 1})
				for qi, q := range queries[:3] {
					for _, mode := range []Mode{ModeSpecQP, ModeTriniT, ModeNaive} {
						k := 3 + qi + int(trial)
						want, err := ref.Query(q, k, mode)
						if err != nil {
							t.Fatal(err)
						}
						got, err := eng.Query(q, k, mode)
						if err != nil {
							t.Fatal(err)
						}
						label := fmt.Sprintf("trial %d shards=%d l1=%d pos=%d survivors=%d tombs=%d query %d mode %v k=%d",
							trial, shards, l1Limit, pos, len(model.facts), live.Tombstones(), qi, mode, k)
						sameAnswers(t, label, got.Answers, want.Answers)
						if mode == ModeSpecQP && got.Plan.RelaxMask() != want.Plan.RelaxMask() {
							t.Fatalf("%s: plan relax mask %b, want %b", label, got.Plan.RelaxMask(), want.Plan.RelaxMask())
						}
					}
				}
			}
			// randomKey picks a key biased toward live facts so deletes and
			// updates usually hit something.
			opRng := rand.New(rand.NewSource(410 + trial))
			randomKey := func() (ID, ID, ID) {
				if len(model.facts) > 0 && opRng.Intn(5) != 0 {
					f := model.facts[opRng.Intn(len(model.facts))]
					return f.S, f.P, f.O
				}
				return ID(opRng.Intn(8)), ID(8 + opRng.Intn(3)), ID(11 + opRng.Intn(5))
			}
			check() // freeze point, before any mutation
			for pos < len(triples) {
				switch op := opRng.Intn(18); {
				case op < 9:
					if err := eng.Insert(triples[pos]); err != nil {
						t.Fatal(err)
					}
					model.insert(triples[pos])
					pos++
				case op < 12:
					s, p, o := randomKey()
					removed, err := eng.Delete(s, p, o)
					if err != nil {
						t.Fatal(err)
					}
					if want := model.delete(s, p, o); removed != want {
						t.Fatalf("shards=%d: Delete removed %d copies, model says %d", shards, removed, want)
					}
				case op < 14:
					s, p, o := randomKey()
					tr := Triple{S: s, P: p, O: o, Score: float64(1 + opRng.Intn(25))}
					if err := eng.Update(tr); err != nil {
						t.Fatal(err)
					}
					model.update(tr)
				case op == 14:
					eng.Compact()
				case op == 15:
					ss.CompactShard(opRng.Intn(shards))
				default:
					check()
				}
			}
			check() // end of stream
			eng.Compact()
			if live.Tombstones() != 0 {
				t.Fatalf("shards=%d: full Compact left %d tombstones", shards, live.Tombstones())
			}
			check() // fully compacted, tombstones GC'd
			if got, want := live.LiveLen(), len(model.facts); got != want {
				t.Fatalf("shards=%d: live store has %d facts, model has %d", shards, got, want)
			}
		}
	}
}

// TestMutateQueryRaceHammer is the -race companion to the oracle: concurrent
// writers (insert/delete/update/compact) and readers (all three query modes)
// over one live sharded engine. Readers don't check answers against a moving
// target — the oracle above owns semantics — they check that every answer set
// is internally consistent and that the snapshot isolation the storeState
// pointer promises holds under churn (no panics, no torn reads, -race clean).
func TestMutateQueryRaceHammer(t *testing.T) {
	dict, triples, rules, queries := randomLiveFixture(t, 8181)
	base := len(triples) / 2
	ss := kg.NewShardedStore(dict, 4)
	for _, tr := range triples[:base] {
		if err := ss.Add(tr); err != nil {
			t.Fatal(err)
		}
	}
	eng := NewEngineOver(ss, rules, Options{HeadLimit: 8, L1Limit: 32})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// One mutator: the live-write API is single-writer by contract.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < 3000; i++ {
			tr := triples[base+i%(len(triples)-base)]
			switch rng.Intn(10) {
			case 0:
				if _, err := eng.Delete(tr.S, tr.P, tr.O); err != nil {
					t.Error(err)
					return
				}
			case 1:
				up := tr
				up.Score = float64(1 + rng.Intn(25))
				if err := eng.Update(up); err != nil {
					t.Error(err)
					return
				}
			case 2:
				eng.Compact()
			default:
				if err := eng.Insert(tr); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			modes := []Mode{ModeSpecQP, ModeTriniT, ModeNaive}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := queries[(w+i)%len(queries)]
				res, err := eng.Query(q, 5, modes[i%3])
				if err != nil {
					t.Error(err)
					return
				}
				for r := 1; r < len(res.Answers); r++ {
					if res.Answers[r].Score > res.Answers[r-1].Score {
						t.Errorf("worker %d: answers out of score order", w)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}
