package specqp

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"specqp/internal/kg"
	"specqp/internal/wal"
)

// This file is the durability layer: it threads the internal/wal subsystem
// through the engine so that every acknowledged mutation — Insert, Delete or
// Update — survives a crash.
//
// The protocol is write-ahead with one serialisation point: a mutation (1)
// validates, (2) under the durable mutex reserves its log position(s) AND
// applies to the store — so log order and global mutation order are the same
// order — and (3) outside the mutex waits for the group-commit pipeline to
// make the record durable per the SyncPolicy. An insert logs one KindInsert
// record; a delete logs one KindTombstone; an update logs a tombstone
// followed by an insert (two sequence numbers, matching the store's
// two-operation accounting). Because every sequence number corresponds to
// exactly one store operation (LiveGraph.Ops — NOT one triple: a tombstone
// consumes a sequence number without adding a triple), a snapshot pinned at
// operation count O covers exactly log positions 1..O-base, which is how
// checkpoints pin their (snapshot, log offset) pair without quiescing
// writers: WriteGraphSnapshot captures a consistent pinned view (survivors
// only — a checkpoint never carries a retracted fact) and returns its
// operation count, and the manifest commit plus segment truncation follow.
//
// Recovery (OpenDurable) loads the manifest's snapshot into a fresh store —
// flat or sharded per Options.Shards — replays the log tail's records (term
// strings, not IDs: re-encoding in log order reproduces the mutation order,
// and subject-hash routing re-derives shard placement under any shard
// count), and resumes with the next sequence number. A pure-insert tail
// replays with pre-freeze Adds; the first tombstone freezes the store and
// replays the rest live.

// SyncPolicy re-exports the WAL fsync discipline.
type SyncPolicy = wal.SyncPolicy

// Re-exported sync policies (see wal.SyncPolicy).
const (
	// SyncAlways fsyncs (group-committed) before every Insert returns.
	SyncAlways = wal.SyncAlways
	// SyncInterval acknowledges after the buffered write and fsyncs in the
	// background every Options.SyncInterval.
	SyncInterval = wal.SyncInterval
	// SyncNone leaves fsync timing to the OS.
	SyncNone = wal.SyncNone
)

// ParseSyncPolicy parses "always", "interval" or "none".
func ParseSyncPolicy(s string) (SyncPolicy, error) { return wal.ParseSyncPolicy(s) }

// ErrWedged is the typed, errors.Is-able marker of a wedged write-ahead log:
// after any WAL I/O failure every later Insert/Delete/Update (and Sync,
// Checkpoint) on the durable engine fails with an error matching
// errors.Is(err, ErrWedged), unwrapping to the original fault. Queries are
// unaffected — the engine keeps serving reads from the last applied state,
// which is the library-level read-only degradation the serving layer builds
// on (see Engine.Wedged).
var ErrWedged = wal.ErrWedged

// Wedged reports whether the engine's write-ahead log has entered the sticky
// failure state: mutations fail fast with ErrWedged while queries keep
// serving. Always false on non-durable engines — they have no log to wedge.
func (e *Engine) Wedged() bool {
	return e.wal != nil && e.wal.log.Wedged()
}

// DefaultCheckpointBytes is the WAL size at which a durable engine
// checkpoints automatically when Options.CheckpointBytes is zero.
const DefaultCheckpointBytes = int64(64 << 20)

// The WAL's per-term bound must equal the snapshot format's: a record the
// log accepts must be loadable from a snapshot and vice versa. This is the
// compile-time tripwire — it fails to build if either side drifts.
var _ = [1]struct{}{}[kg.MaxTermLen-wal.MaxTermLen]

// walState is a durable engine's write-ahead machinery.
type walState struct {
	// mu serialises "reserve log position + apply to store", making log
	// order identical to global insertion order. The durability wait —
	// including the group-committed fsync — happens outside it, so
	// concurrent inserters batch into shared fsyncs.
	mu  sync.Mutex
	fs  wal.FS
	log *wal.Log
	// base aligns the store's operation count with the log: operation count
	// minus base is the log sequence number of the store's last applied
	// mutation. It may be negative — a recovered snapshot holds only
	// surviving triples, so its operation count can trail the sequence
	// numbers its deletes consumed.
	base            int
	checkpointBytes int64
	// cpMu serialises checkpoints; cpBusy gates the auto-trigger to one
	// in-flight goroutine; cpWG lets Close wait for it. spawnMu fences
	// checkpoint-goroutine spawning against Close: a spawn either registers
	// with cpWG before Close's fence (so Close waits for it) or observes
	// closed afterwards (so it never starts) — without the fence a straggler
	// could checkpoint a directory whose writer lock Close already released.
	cpMu    sync.Mutex
	cpBusy  atomic.Bool
	cpWG    sync.WaitGroup
	spawnMu sync.Mutex
	closed  atomic.Bool

	// Group-commit observability, fed by the WAL's OnCommit hook (commit
	// leader goroutine, outside the log mutex — see wal.Options.OnCommit).
	commits       atomic.Int64
	commitRecords atomic.Int64
	fsyncCount    atomic.Int64
	fsyncNS       atomic.Int64
	lastFsyncNS   atomic.Int64
	// Checkpoint observability, recorded by checkpoint() on success.
	checkpoints    atomic.Int64
	checkpointNS   atomic.Int64
	lastCheckpoint atomic.Int64 // bytes of the newest snapshot
}

// noteCommit is the wal.Options.OnCommit hook: one call per group commit,
// records = batch size, syncDur > 0 iff the batch ended in a timed fsync.
func (w *walState) noteCommit(records int, syncDur time.Duration) {
	w.commits.Add(1)
	w.commitRecords.Add(int64(records))
	if syncDur > 0 {
		w.fsyncCount.Add(1)
		w.fsyncNS.Add(syncDur.Nanoseconds())
		w.lastFsyncNS.Store(syncDur.Nanoseconds())
	}
}

// DurableStateExists reports whether dir holds a recoverable durable store
// (a WAL manifest). It does not validate the state — OpenDurable does.
func DurableStateExists(dir string) (bool, error) {
	_, err := os.Stat(filepath.Join(dir, wal.ManifestName))
	if err == nil {
		return true, nil
	}
	if os.IsNotExist(err) {
		return false, nil
	}
	return false, err
}

// OpenDurable opens the durable engine rooted at dir (or Options.WALDir when
// dir is empty): if the directory holds durable state it is recovered —
// newest snapshot, then the WAL tail replayed in sequence order — and
// otherwise an empty durable store is initialised. Every Insert on the
// returned engine is crash-durable per Options.SyncPolicy. Close the engine
// to release the log.
func OpenDurable(dir string, rules *RuleSet, opts Options) (*Engine, error) {
	return OpenDurableWith(dir, nil, rules, opts)
}

// OpenDurableWith is OpenDurable with a bootstrap store: when dir is fresh,
// base's triples become the durable starting state (an opening checkpoint
// persists them, so the directory is self-contained from the first Insert).
// A non-nil base with existing durable state is an error — recovery will not
// silently discard either side.
func OpenDurableWith(dir string, base *Store, rules *RuleSet, opts Options) (*Engine, error) {
	if dir == "" {
		dir = opts.WALDir
	}
	if dir == "" {
		return nil, fmt.Errorf("specqp: OpenDurable needs a WAL directory (dir argument or Options.WALDir)")
	}
	fsys, err := wal.DirFS(dir)
	if err != nil {
		return nil, err
	}
	return openDurableFS(fsys, base, rules, opts)
}

// openDurableFS is OpenDurableWith behind the filesystem seam — the entry
// point the crash-fault-injection tests drive with an in-memory FS.
func openDurableFS(fsys wal.FS, base *Store, rules *RuleSet, opts Options) (*Engine, error) {
	if rules == nil {
		rules = NewRuleSet()
	}
	cpBytes := opts.CheckpointBytes
	if cpBytes == 0 {
		cpBytes = DefaultCheckpointBytes
	}
	w := &walState{fs: fsys, checkpointBytes: cpBytes}
	log, rec, err := wal.Open(fsys, wal.Options{
		Policy:      opts.SyncPolicy,
		Interval:    opts.SyncInterval,
		SegmentSize: opts.WALSegmentSize,
		OnCommit:    w.noteCommit,
	})
	if err != nil {
		return nil, err
	}
	w.log = log

	engOpts := opts
	engOpts.WALDir = "" // consumed here; NewEngineWith rejects it
	var eng *Engine
	if rec.HasState {
		if base != nil {
			log.Close()
			return nil, fmt.Errorf("specqp: directory already holds durable state; open it without a base store")
		}
		g, err := loadDurableState(fsys, rec, engOpts)
		if err != nil {
			log.Close()
			return nil, err
		}
		eng = NewEngineOver(g, rules, engOpts)
		w.base = int(g.Ops()) - int(rec.LastSeq)
		eng.wal = w
		// Re-root the directory at a fresh checkpoint before accepting any
		// append. The replayed tail may have been read from bytes no one
		// ever fsynced (a kill -9 leaves them in the page cache): without
		// this, a later power loss could shrink the old segment's valid
		// prefix and strand every newer segment behind a sequence gap. The
		// new snapshot covers LastSeq durably, post-recovery segments chain
		// from SnapshotSeq+1 by construction, and the replay work done here
		// is never repeated on the next start.
		if err := eng.Checkpoint(); err != nil {
			log.Close()
			return nil, err
		}
		return eng, nil
	}

	if base == nil {
		base = NewStore()
	}
	eng = NewEngineWith(base, rules, engOpts)
	lg, ok := eng.graph.(kg.LiveGraph)
	if !ok {
		log.Close()
		return nil, fmt.Errorf("specqp: %T does not support live inserts", eng.graph)
	}
	w.base = int(lg.Ops())
	eng.wal = w
	// The opening checkpoint makes the directory self-contained: recovery
	// never needs the bootstrap source again. Until the manifest lands the
	// directory holds no state, so a crash here just means a fresh start.
	if err := eng.Checkpoint(); err != nil {
		log.Close()
		return nil, err
	}
	return eng, nil
}

// loadDurableState rebuilds the store a recovery describes: the manifest's
// snapshot loaded into the layout Options.Shards selects, then the log tail
// replayed in sequence order. The pure-insert prefix of the tail replays
// with plain pre-freeze Adds; the first tombstone freezes the store (deletes
// are live operations) and the rest replays through Insert/Delete, which
// keeps the operation count in lockstep with the sequence numbers under any
// interleaving. Record terms are interned unconditionally — dictionary IDs
// may diverge from the original process's, but term-level content (what
// recovery promises) is reproduced exactly.
func loadDurableState(fsys wal.FS, rec *wal.Recovery, opts Options) (kg.LiveGraph, error) {
	rd, err := fsys.Open(rec.Manifest.Snapshot)
	if err != nil {
		return nil, fmt.Errorf("specqp: manifest names snapshot %s: %w", rec.Manifest.Snapshot, err)
	}
	defer rd.Close()

	shards := opts.Shards
	if shards < 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	// stage is the loading surface both layouts share.
	type stage interface {
		kg.LiveGraph
		Add(kg.Triple) error
		AddSPO(s, p, o string, score float64) error
		InsertSPO(s, p, o string, score float64) error
		Freeze()
	}
	var g stage
	if shards > 1 {
		g = kg.NewShardedStore(nil, shards)
	} else {
		g = kg.NewStore(nil)
	}
	if err := kg.ReadBinaryInto(rd, g.Dict(), g.Add); err != nil {
		return nil, fmt.Errorf("specqp: loading snapshot %s: %w", rec.Manifest.Snapshot, err)
	}
	i := 0
	for ; i < len(rec.Records); i++ {
		r := rec.Records[i]
		if r.Kind != wal.KindInsert {
			break
		}
		if err := g.AddSPO(r.S, r.P, r.O, r.Score); err != nil {
			return nil, fmt.Errorf("specqp: replaying WAL record %d: %w", r.Seq, err)
		}
	}
	if i < len(rec.Records) {
		g.Freeze()
		d := g.Dict()
		for _, r := range rec.Records[i:] {
			switch r.Kind {
			case wal.KindInsert:
				if err := g.InsertSPO(r.S, r.P, r.O, r.Score); err != nil {
					return nil, fmt.Errorf("specqp: replaying WAL record %d: %w", r.Seq, err)
				}
			case wal.KindTombstone:
				// Delete by encoded ID, not DeleteSPO: the short-circuit on
				// unknown terms would skip the operation count this record's
				// sequence number already consumed.
				if _, err := g.Delete(d.Encode(r.S), d.Encode(r.P), d.Encode(r.O)); err != nil {
					return nil, fmt.Errorf("specqp: replaying WAL record %d: %w", r.Seq, err)
				}
			default:
				return nil, fmt.Errorf("specqp: unsupported WAL record kind %d at seq %d", r.Kind, r.Seq)
			}
		}
	}
	// With a pure-insert tail the store returns unfrozen and NewEngineOver
	// picks the parallel freeze path.
	return g, nil
}

// insert is the durable Insert path (see the file comment for the protocol).
func (w *walState) insert(lg kg.LiveGraph, t Triple) error {
	if err := kg.ValidateScore(t.Score); err != nil {
		return err
	}
	d := lg.Dict()
	n := kg.ID(d.Len())
	if t.S >= n || t.P >= n || t.O >= n {
		return fmt.Errorf("specqp: insert references unknown term ID (dictionary holds %d terms)", n)
	}
	rec := wal.Record{Kind: wal.KindInsert, S: d.Decode(t.S), P: d.Decode(t.P), O: d.Decode(t.O), Score: t.Score}

	w.mu.Lock()
	wait, err := w.log.AppendAsync(rec)
	if err != nil {
		w.mu.Unlock()
		return err
	}
	compact, aerr := lg.InsertDeferred(t)
	w.mu.Unlock()
	if aerr != nil {
		// Unreachable: the triple was validated above with the store's own
		// checks. Reaching this would leave a logged record with no applied
		// triple — a broken durability invariant worth crashing over.
		panic(fmt.Sprintf("specqp: validated insert rejected by store after logging: %v", aerr))
	}
	werr := wait()
	if compact != nil {
		// The merge the insert triggered runs on this goroutine like the
		// non-durable path, but outside the ordering mutex: other durable
		// inserts proceed while the posting arenas rebuild.
		compact()
	}
	if werr != nil {
		return werr
	}
	w.maybeCheckpoint(lg)
	return nil
}

// delete is the durable Delete path: one tombstone record reserved and the
// retraction applied under the ordering mutex, the durability wait outside
// it. A delete of a key with no live copies still logs (and consumes a
// sequence number) — the store counts it as an operation either way, which
// keeps the ops↔seq lockstep unconditional.
func (w *walState) delete(lg kg.LiveGraph, s, p, o kg.ID) (int, error) {
	d := lg.Dict()
	n := kg.ID(d.Len())
	if s >= n || p >= n || o >= n {
		return 0, fmt.Errorf("specqp: delete references unknown term ID (dictionary holds %d terms)", n)
	}
	rec := wal.Record{Kind: wal.KindTombstone, S: d.Decode(s), P: d.Decode(p), O: d.Decode(o)}

	w.mu.Lock()
	wait, err := w.log.AppendAsync(rec)
	if err != nil {
		w.mu.Unlock()
		return 0, err
	}
	removed, aerr := lg.Delete(s, p, o)
	w.mu.Unlock()
	if aerr != nil {
		// Unreachable on a frozen engine graph; a logged tombstone with no
		// applied retraction is a broken durability invariant worth crashing
		// over.
		panic(fmt.Sprintf("specqp: delete rejected by store after logging: %v", aerr))
	}
	if werr := wait(); werr != nil {
		return removed, werr
	}
	w.maybeCheckpoint(lg)
	return removed, nil
}

// update is the durable Update path: a tombstone and an insert record
// reserved back-to-back (two sequence numbers, matching the store's
// two-operation accounting) and the latest-wins re-score applied once, all
// under the ordering mutex. A crash between the two records recovers as a
// bare delete — the un-acked update's retraction half — which is exactly the
// acked-prefix contract: the caller was never told the update happened.
func (w *walState) update(lg kg.LiveGraph, t Triple) error {
	if err := kg.ValidateScore(t.Score); err != nil {
		return err
	}
	d := lg.Dict()
	n := kg.ID(d.Len())
	if t.S >= n || t.P >= n || t.O >= n {
		return fmt.Errorf("specqp: update references unknown term ID (dictionary holds %d terms)", n)
	}
	s, p, o := d.Decode(t.S), d.Decode(t.P), d.Decode(t.O)

	w.mu.Lock()
	wait1, err := w.log.AppendAsync(wal.Record{Kind: wal.KindTombstone, S: s, P: p, O: o})
	if err != nil {
		w.mu.Unlock()
		return err
	}
	wait2, err := w.log.AppendAsync(wal.Record{Kind: wal.KindInsert, S: s, P: p, O: o, Score: t.Score})
	if err != nil {
		// The tombstone is reserved but the insert is not: the log is wedged
		// (sticky error), no further append can interleave, and the update is
		// not applied nor acked.
		w.mu.Unlock()
		return err
	}
	compact, aerr := lg.UpdateDeferred(t)
	w.mu.Unlock()
	if aerr != nil {
		panic(fmt.Sprintf("specqp: validated update rejected by store after logging: %v", aerr))
	}
	werr := wait1()
	if werr2 := wait2(); werr == nil {
		werr = werr2
	}
	if compact != nil {
		compact()
	}
	if werr != nil {
		return werr
	}
	w.maybeCheckpoint(lg)
	return nil
}

// maybeCheckpoint starts a background checkpoint once the log outgrows the
// configured threshold, at most one in flight.
func (w *walState) maybeCheckpoint(g kg.Graph) {
	if w.checkpointBytes <= 0 || w.log.Size() < w.checkpointBytes {
		return
	}
	if !w.cpBusy.CompareAndSwap(false, true) {
		return
	}
	w.spawnMu.Lock()
	if w.closed.Load() {
		w.spawnMu.Unlock()
		w.cpBusy.Store(false)
		return
	}
	w.cpWG.Add(1)
	w.spawnMu.Unlock()
	go func() {
		defer w.cpWG.Done()
		defer w.cpBusy.Store(false)
		// Errors are not fatal here: the log keeps growing and the next
		// threshold crossing (or explicit Checkpoint/Compact) retries.
		_ = w.checkpoint(g)
	}()
}

// checkpoint persists the store's current state as a binary snapshot, commits
// it through the manifest, and truncates the log segments it covers. It
// refuses closed engines (Close released the exclusive-writer lock — the
// directory may belong to another process now) and wedged logs (a failed
// commit means the in-memory store can be ahead of every acked insert;
// durable state stays at the last consistent prefix).
func (w *walState) checkpoint(g kg.Graph) error {
	w.cpMu.Lock()
	defer w.cpMu.Unlock()
	if w.closed.Load() {
		return fmt.Errorf("specqp: checkpoint on closed engine")
	}
	if err := w.log.Err(); err != nil {
		return fmt.Errorf("specqp: checkpoint refused, log is wedged: %w", err)
	}

	cpStart := time.Now()
	const tmp = "snap.tmp"
	f, err := w.fs.Create(tmp)
	if err != nil {
		return err
	}
	nbytes, ops, err := kg.WriteGraphSnapshot(f, g)
	if err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	seq := uint64(int(ops) - w.base)
	name := wal.SnapshotName(seq)
	if err := w.fs.Rename(tmp, name); err != nil {
		return err
	}
	if err := wal.WriteManifest(w.fs, wal.Manifest{Snapshot: name, SnapshotSeq: seq}); err != nil {
		return err
	}
	// The manifest commit is the durability point: record the checkpoint as
	// done even if the garbage collection below fails.
	w.checkpoints.Add(1)
	w.checkpointNS.Add(time.Since(cpStart).Nanoseconds())
	w.lastCheckpoint.Store(int64(nbytes))
	// Anything that fails from here on is garbage collection, not
	// correctness: the manifest already commits the new snapshot.
	if err := w.log.TruncateThrough(seq); err != nil {
		return err
	}
	names, err := w.fs.List()
	if err != nil {
		return err
	}
	for _, old := range names {
		if wal.IsSnapshotName(old) && old != name {
			if err := w.fs.Remove(old); err != nil {
				return err
			}
		}
	}
	return nil
}

// Sync forces every buffered WAL record to durable storage, regardless of
// the sync policy — the barrier an application calls before acknowledging
// externally visible state. A no-op on engines without a WAL.
func (e *Engine) Sync() error {
	if e.wal == nil {
		return nil
	}
	return e.wal.log.Sync()
}

// Checkpoint persists the current store state as a binary snapshot in the
// WAL directory, commits it via the manifest, and truncates every log
// segment it covers. Concurrent inserts are safe: the snapshot captures a
// consistent prefix and newer records simply stay in the log. A no-op on
// engines without a WAL.
func (e *Engine) Checkpoint() error {
	if e.wal == nil {
		return nil
	}
	return e.wal.checkpoint(e.graph)
}

// Close flushes and fsyncs the WAL, waits for any in-flight automatic
// checkpoint, and releases the log. Queries remain usable; further Inserts
// fail. Idempotent; a no-op on engines without a WAL.
func (e *Engine) Close() error {
	if e.wal == nil {
		return nil
	}
	w := e.wal
	if !w.closed.CompareAndSwap(false, true) {
		return nil
	}
	// The fence: any checkpoint spawn that won the race registered with cpWG
	// under spawnMu before we acquire it here; any later spawn sees closed.
	w.spawnMu.Lock()
	w.spawnMu.Unlock() //nolint:staticcheck // empty critical section IS the fence
	w.cpWG.Wait()
	// Drain any in-flight explicit Checkpoint/Compact before the log close
	// releases the directory lock; later ones fail the closed check above.
	w.cpMu.Lock()
	w.cpMu.Unlock() //nolint:staticcheck // empty critical section IS the fence
	return w.log.Close()
}
