package specqp

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// BatchResult pairs one query's execution result with its error, aligned by
// index with the queries passed to QueryBatch.
type BatchResult struct {
	Result Result
	Err    error
}

// QueryBatch executes queries concurrently on a bounded worker pool and
// returns one BatchResult per query, in input order. All queries run with
// the same k and mode. Concurrency is Options.BatchWorkers (GOMAXPROCS when
// unset); ModeSpecQP queries share the engine's LRU plan cache, so batches
// with recurring query shapes — the paper's workload of template-generated
// queries — plan once per shape instead of once per query.
//
// Per-query failures (empty query, cancellation mid-batch) are reported in
// the corresponding BatchResult.Err; the returned error is non-nil only for
// batch-level misuse (k < 1). When ctx is cancelled, queries not yet started
// fail fast with ctx.Err() and in-flight queries return their partial top-k
// exactly like QueryContext.
func (e *Engine) QueryBatch(ctx context.Context, queries []Query, k int, mode Mode) ([]BatchResult, error) {
	return e.QueryBatchStream(ctx, queries, k, mode, nil)
}

// QueryBatchStream is QueryBatch with incremental emission: emit receives
// (query index, answer) pairs the moment each query's operators prove the
// answer final, so a consumer multiplexing many queries — the server's
// streaming /batch endpoint — can forward early answers while slower queries
// are still joining. Emissions from different queries interleave; within one
// query index they arrive in rank order. Because the pool runs queries on
// multiple goroutines, emit is called concurrently and must serialise its own
// side effects. An emit returning false stops that query early (its
// BatchResult keeps the emitted prefix) without affecting the others.
//
// A nil emit reproduces QueryBatch verbatim — the batch path is expressed on
// the streaming one, so both observe identical per-query answer sequences.
func (e *Engine) QueryBatchStream(ctx context.Context, queries []Query, k int, mode Mode, emit func(int, Answer) bool) ([]BatchResult, error) {
	if k < 1 {
		return nil, fmt.Errorf("specqp: k must be >= 1, got %d", k)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]BatchResult, len(queries))
	if len(queries) == 0 {
		return results, nil
	}
	workers := e.opts.BatchWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(queries) {
		workers = len(queries)
	}

	jobs := make(chan int, len(queries))
	for qi := range queries {
		jobs <- qi
	}
	close(jobs)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for qi := range jobs {
				if err := ctx.Err(); err != nil {
					results[qi].Err = err
					continue
				}
				var perQuery AnswerEmitter
				if emit != nil {
					qi := qi
					perQuery = func(a Answer) bool { return emit(qi, a) }
				}
				results[qi].Result, results[qi].Err = e.queryOne(ctx, queries[qi], k, mode, perQuery)
			}
		}()
	}
	wg.Wait()
	return results, nil
}

// queryOne executes a single query for QueryBatchStream. ModeSpecQP goes
// through the plan cache; the other modes have no planning stage to share and
// delegate to QueryStream.
func (e *Engine) queryOne(ctx context.Context, q Query, k int, mode Mode, emit AnswerEmitter) (Result, error) {
	if len(q.Patterns) == 0 {
		return Result{}, fmt.Errorf("specqp: empty query")
	}
	if mode != ModeSpecQP {
		return e.QueryStream(ctx, q, k, mode, emit)
	}
	return e.exec.SpecQPContextStream(ctx, e.livePlans(), q, k, emit)
}
