package specqp

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
)

// batchFixture builds an engine plus a workload of shape-recurring queries,
// the setting QueryBatch's plan cache is designed for.
func batchFixture(t *testing.T) (*Engine, []Query) {
	t.Helper()
	st := NewStore()
	for e := 0; e < 300; e++ {
		name := fmt.Sprintf("e%03d", e)
		score := 500.0 / float64(1+e)
		if err := st.AddSPO(name, "rdf:type", fmt.Sprintf("T%d", e%6), score); err != nil {
			t.Fatal(err)
		}
		if e%2 == 0 {
			if err := st.AddSPO(name, "rdf:type", fmt.Sprintf("T%d", (e+1)%6), score*0.8); err != nil {
				t.Fatal(err)
			}
		}
	}
	st.Freeze()
	d := st.Dict()
	ty, _ := d.Lookup("rdf:type")
	pat := func(i int) Pattern {
		id, _ := d.Lookup(fmt.Sprintf("T%d", i))
		return NewPattern(Var("s"), Const(ty), Const(id))
	}
	rules := NewRuleSet()
	for i := 0; i < 6; i++ {
		if err := rules.Add(Rule{From: pat(i), To: pat((i + 1) % 6), Weight: 0.6}); err != nil {
			t.Fatal(err)
		}
	}
	eng := NewEngine(st, rules)
	var queries []Query
	for rep := 0; rep < 4; rep++ {
		for i := 0; i < 6; i++ {
			queries = append(queries, NewQuery(pat(i), pat((i+2)%6)))
		}
	}
	return eng, queries
}

func TestQueryBatchMatchesSequential(t *testing.T) {
	eng, queries := batchFixture(t)
	for _, mode := range []Mode{ModeSpecQP, ModeTriniT, ModeNaive} {
		results, err := eng.QueryBatch(context.Background(), queries, 5, mode)
		if err != nil {
			t.Fatal(err)
		}
		if len(results) != len(queries) {
			t.Fatalf("%v: %d results for %d queries", mode, len(results), len(queries))
		}
		for qi, r := range results {
			if r.Err != nil {
				t.Fatalf("%v query %d: %v", mode, qi, r.Err)
			}
			ref, err := eng.Query(queries[qi], 5, mode)
			if err != nil {
				t.Fatal(err)
			}
			if len(r.Result.Answers) != len(ref.Answers) {
				t.Fatalf("%v query %d: %d answers, sequential got %d",
					mode, qi, len(r.Result.Answers), len(ref.Answers))
			}
			for i := range ref.Answers {
				if math.Abs(r.Result.Answers[i].Score-ref.Answers[i].Score) > 1e-9 {
					t.Fatalf("%v query %d rank %d: batch %v sequential %v",
						mode, qi, i, r.Result.Answers[i].Score, ref.Answers[i].Score)
				}
			}
		}
	}
}

func TestQueryBatchPerQueryErrors(t *testing.T) {
	eng, queries := batchFixture(t)
	mixed := []Query{queries[0], {}, queries[1]}
	results, err := eng.QueryBatch(context.Background(), mixed, 5, ModeSpecQP)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil || results[2].Err != nil {
		t.Fatalf("valid queries failed: %v / %v", results[0].Err, results[2].Err)
	}
	if results[1].Err == nil {
		t.Fatal("empty query did not report an error")
	}
	if _, err := eng.QueryBatch(context.Background(), queries, 0, ModeSpecQP); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestQueryBatchCancelled(t *testing.T) {
	eng, queries := batchFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, err := eng.QueryBatch(ctx, queries, 5, ModeSpecQP)
	if err != nil {
		t.Fatal(err)
	}
	for qi, r := range results {
		if !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("query %d: err %v, want context.Canceled", qi, r.Err)
		}
	}
}

// TestQueryBatchHammer is the -race workhorse from the issue: many
// goroutines issue overlapping QueryBatch calls while others hammer
// residual-cache misses (S+O-bound patterns) on the same cold store, so the
// sharded single-flight cache, the plan cache, and the batch pool are all
// exercised together.
func TestQueryBatchHammer(t *testing.T) {
	eng, queries := batchFixture(t)
	st := eng.Store()
	d := st.Dict()

	refs, err := eng.QueryBatch(context.Background(), queries, 5, ModeSpecQP)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 24)
	for w := 0; w < 12; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			results, err := eng.QueryBatch(context.Background(), queries, 5, ModeSpecQP)
			if err != nil {
				errs <- err
				return
			}
			for qi, r := range results {
				if r.Err != nil {
					errs <- r.Err
					return
				}
				if len(r.Result.Answers) != len(refs[qi].Result.Answers) {
					errs <- fmt.Errorf("worker %d query %d: %d answers want %d",
						w, qi, len(r.Result.Answers), len(refs[qi].Result.Answers))
					return
				}
			}
		}(w)
	}
	for w := 0; w < 12; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 40; rep++ {
				s, _ := d.Lookup(fmt.Sprintf("e%03d", (w*17+rep)%300))
				o, _ := d.Lookup(fmt.Sprintf("T%d", rep%6))
				st.MatchList(NewPattern(Const(s), Var("p"), Const(o)))
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
