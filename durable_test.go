package specqp

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"specqp/internal/kg"
	"specqp/internal/wal"
)

// This file proves the durability subsystem end to end, against the same
// bit-identical oracle discipline PRs 3–4 used: at every injected crash
// point, OpenDurable must recover a store whose triples are exactly the
// acked insert prefix and whose answers — all three modes, across shard
// counts — equal a flat engine rebuilt from that prefix. The whole stack
// (log, snapshots, manifest) runs against wal.MemFS, whose byte-budget
// fault kills the writer mid-record and whose Crash views keep only synced
// bytes plus an arbitrary prefix of the unsynced tail.

var durableShardCounts = []int{1, 2, 7}

// buildBaseStore loads the first n fixture triples into a flat store over
// the fixture dict (the durable bootstrap store).
func buildBaseStore(t *testing.T, dict *kg.Dict, triples []Triple, n int) *Store {
	t.Helper()
	st := kg.NewStore(dict)
	for _, tr := range triples[:n] {
		if err := st.Add(tr); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

// flatOracle builds the reference engine over exactly the first pos fixture
// triples.
func flatOracle(t *testing.T, dict *kg.Dict, triples []Triple, pos int, rules *RuleSet) *Engine {
	t.Helper()
	st := buildBaseStore(t, dict, triples, pos)
	st.Freeze()
	return NewEngineWith(st, rules, Options{Shards: 1})
}

// assertOracleEqual checks the engine's answers against the flat oracle for
// the first three fixture queries under every mode.
func assertOracleEqual(t *testing.T, label string, eng, oracle *Engine, queries []Query) {
	t.Helper()
	for qi, q := range queries[:3] {
		for _, mode := range []Mode{ModeSpecQP, ModeTriniT, ModeNaive} {
			want, err := oracle.Query(q, 8, mode)
			if err != nil {
				t.Fatal(err)
			}
			got, err := eng.Query(q, 8, mode)
			if err != nil {
				t.Fatal(err)
			}
			sameAnswers(t, fmt.Sprintf("%s query %d mode %v", label, qi, mode), got.Answers, want.Answers)
		}
	}
}

// assertTriplePrefix checks the recovered store holds exactly the first pos
// fixture triples, comparing decoded terms (recovered dictionaries reproduce
// IDs for snapshot terms, but the contract is string-level identity).
func assertTriplePrefix(t *testing.T, label string, g Graph, dict *kg.Dict, triples []Triple, pos int) {
	t.Helper()
	if g.Len() != pos {
		t.Fatalf("%s: recovered %d triples, want %d", label, g.Len(), pos)
	}
	rd := g.Dict()
	for i := 0; i < pos; i++ {
		got, want := g.Triple(int32(i)), triples[i]
		if rd.Decode(got.S) != dict.Decode(want.S) || rd.Decode(got.P) != dict.Decode(want.P) ||
			rd.Decode(got.O) != dict.Decode(want.O) || got.Score != want.Score {
			t.Fatalf("%s: triple %d = %v, want %v", label, i, got, want)
		}
	}
}

// TestDurableCloseReopen is the clean-shutdown contract: ingest through the
// WAL, close, reopen from the directory alone — at the same or a different
// shard count — and get a bit-identical engine that can keep ingesting.
func TestDurableCloseReopen(t *testing.T) {
	for trial := int64(0); trial < 2; trial++ {
		dict, triples, rules, queries := randomLiveFixture(t, 6100+trial)
		base := len(triples) * 3 / 5
		for _, shards := range durableShardCounts {
			fs := wal.NewMemFS()
			eng, err := openDurableFS(fs, buildBaseStore(t, dict, triples, base), rules,
				Options{Shards: shards, SyncPolicy: SyncAlways, WALSegmentSize: 1 << 12})
			if err != nil {
				t.Fatal(err)
			}
			mid := base + (len(triples)-base)/2
			for _, tr := range triples[base:mid] {
				if err := eng.Insert(tr); err != nil {
					t.Fatal(err)
				}
			}
			if err := eng.Close(); err != nil {
				t.Fatal(err)
			}
			if err := eng.Insert(triples[mid]); err == nil {
				t.Fatal("insert after Close succeeded")
			}

			// Recover at a rotated shard count: replay re-routes by subject
			// hash, so the layout is free to change between runs.
			reShards := durableShardCounts[(trial+1)%int64(len(durableShardCounts))]
			reng, err := openDurableFS(fs, nil, rules, Options{Shards: reShards, SyncPolicy: SyncAlways})
			if err != nil {
				t.Fatal(err)
			}
			label := fmt.Sprintf("trial %d shards=%d→%d", trial, shards, reShards)
			assertTriplePrefix(t, label, reng.Graph(), dict, triples, mid)
			assertOracleEqual(t, label, reng, flatOracle(t, dict, triples, mid, rules), queries)

			// Resume ingesting on the recovered engine and re-verify at the
			// final state.
			for _, tr := range triples[mid:] {
				if err := reng.Insert(tr); err != nil {
					t.Fatal(err)
				}
			}
			if err := reng.Close(); err != nil {
				t.Fatal(err)
			}
			final, err := openDurableFS(fs, nil, rules, Options{Shards: shards})
			if err != nil {
				t.Fatal(err)
			}
			label += " resumed"
			assertTriplePrefix(t, label, final.Graph(), dict, triples, len(triples))
			assertOracleEqual(t, label, final, flatOracle(t, dict, triples, len(triples), rules), queries)
			final.Close()
		}
	}
}

// TestDurableCrashFaultInjection is the flagship harness: randomized byte
// budgets kill the writer at arbitrary offsets — mid-record, mid-fsync
// window, mid-checkpoint — while a schedule of inserts, compactions and
// checkpoints runs; recovery must always yield the flat oracle of exactly
// some acked-consistent prefix, and under SyncAlways the prefix must cover
// every insert that returned nil.
func TestDurableCrashFaultInjection(t *testing.T) {
	policies := []SyncPolicy{SyncAlways, SyncNone}
	trial := int64(0)
	for _, policy := range policies {
		for _, shards := range durableShardCounts {
			for rep := 0; rep < 4; rep++ {
				trial++
				rng := rand.New(rand.NewSource(4400 + trial))
				dict, triples, rules, queries := randomLiveFixture(t, 8800+trial)
				base := len(triples) / 2
				fs := wal.NewMemFS()
				eng, err := openDurableFS(fs, buildBaseStore(t, dict, triples, base), rules, Options{
					Shards:          shards,
					SyncPolicy:      policy,
					WALSegmentSize:  1 << 10, // force rotation under the schedule
					CheckpointBytes: -1,      // checkpoints fire from the schedule, deterministically
					HeadLimit:       16,      // force head merges under the schedule
				})
				if err != nil {
					t.Fatal(err)
				}
				// Arm the kill: the opening checkpoint is durable, everything
				// after may die at any byte.
				fs.SetBudget(int64(rng.Intn(6000)))

				acked := 0
				for pos := base; pos < len(triples); pos++ {
					switch rng.Intn(12) {
					case 0:
						_ = eng.Checkpoint() // may die mid-snapshot; recovery must not care
					case 1:
						_ = eng.Compact() // head merge + checkpoint
					}
					if err := eng.Insert(triples[pos]); err != nil {
						break
					}
					acked++
				}

				crashed := fs.Crash(func(_ string, pending int) int { return rng.Intn(pending + 1) })
				reShards := durableShardCounts[rng.Intn(len(durableShardCounts))]
				reng, err := openDurableFS(crashed, nil, rules, Options{Shards: reShards})
				if err != nil {
					t.Fatalf("trial %d (policy=%v shards=%d→%d): recovery failed: %v",
						trial, policy, shards, reShards, err)
				}
				label := fmt.Sprintf("trial %d policy=%v shards=%d→%d acked=%d", trial, policy, shards, reShards, acked)
				recovered := reng.Graph().Len() - base
				if recovered < 0 || base+recovered > len(triples) {
					t.Fatalf("%s: recovered length %d out of range", label, reng.Graph().Len())
				}
				if policy == SyncAlways && recovered < acked {
					t.Fatalf("%s: lost acked inserts — recovered %d of %d", label, recovered, acked)
				}
				assertTriplePrefix(t, label, reng.Graph(), dict, triples, base+recovered)
				assertOracleEqual(t, label, reng, flatOracle(t, dict, triples, base+recovered, rules), queries)
				reng.Close()
			}
		}
	}
}

// TestDurableSyncBarrier pins Engine.Sync's contract under SyncNone: inserts
// acknowledged before a successful Sync survive a crash that drops every
// unsynced byte; inserts after it may not, but never out of order.
func TestDurableSyncBarrier(t *testing.T) {
	dict, triples, rules, queries := randomLiveFixture(t, 1357)
	base := len(triples) / 2
	fs := wal.NewMemFS()
	eng, err := openDurableFS(fs, buildBaseStore(t, dict, triples, base), rules,
		Options{SyncPolicy: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	mid := base + (len(triples)-base)/2
	for _, tr := range triples[base:mid] {
		if err := eng.Insert(tr); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Sync(); err != nil {
		t.Fatal(err)
	}
	for _, tr := range triples[mid:] {
		if err := eng.Insert(tr); err != nil {
			t.Fatal(err)
		}
	}
	// Harshest crash: only synced bytes survive.
	reng, err := openDurableFS(fs.Crash(wal.SyncedOnly), nil, rules, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := reng.Graph().Len()
	if got < mid {
		t.Fatalf("synced prefix lost: recovered %d triples, synced through %d", got, mid)
	}
	assertTriplePrefix(t, "sync barrier", reng.Graph(), dict, triples, got)
	assertOracleEqual(t, "sync barrier", reng, flatOracle(t, dict, triples, got, rules), queries)
	reng.Close()
	eng.Close()
}

// TestDurableIntervalPolicy exercises the background fsyncer: an interval
// engine's inserts become durable without explicit Syncs, within a few
// periods.
func TestDurableIntervalPolicy(t *testing.T) {
	dict, triples, rules, _ := randomLiveFixture(t, 2468)
	base := len(triples) / 2
	fs := wal.NewMemFS()
	eng, err := openDurableFS(fs, buildBaseStore(t, dict, triples, base), rules,
		Options{SyncPolicy: SyncInterval, SyncInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range triples[base:] {
		if err := eng.Insert(tr); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		reng, err := openDurableFS(fs.Crash(wal.SyncedOnly), nil, rules, Options{})
		if err != nil {
			t.Fatal(err)
		}
		n := reng.Graph().Len()
		reng.Close()
		if n == len(triples) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background fsync never covered the tail: %d of %d durable", n, len(triples))
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDurableCheckpointTruncatesLog pins the checkpoint contract: after
// Compact, the snapshot covers everything, obsolete segments are deleted,
// and recovery replays nothing.
func TestDurableCheckpointTruncatesLog(t *testing.T) {
	dict, triples, rules, queries := randomLiveFixture(t, 97)
	base := len(triples) / 2
	fs := wal.NewMemFS()
	eng, err := openDurableFS(fs, buildBaseStore(t, dict, triples, base), rules,
		Options{SyncPolicy: SyncAlways, WALSegmentSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range triples[base:] {
		if err := eng.Insert(tr); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := eng.wal.log.SegmentCount(); got > 1 {
		t.Fatalf("checkpoint left %d log segments", got)
	}
	names, err := fs.List()
	if err != nil {
		t.Fatal(err)
	}
	snaps := 0
	for _, n := range names {
		if wal.IsSnapshotName(n) {
			snaps++
		}
	}
	if snaps != 1 {
		t.Fatalf("checkpoint left %d snapshots: %v", snaps, names)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	// Crash view keeping nothing unsynced: the checkpoint must be complete.
	reng, err := openDurableFS(fs.Crash(wal.SyncedOnly), nil, rules, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	assertTriplePrefix(t, "post-checkpoint", reng.Graph(), dict, triples, len(triples))
	assertOracleEqual(t, "post-checkpoint", reng, flatOracle(t, dict, triples, len(triples), rules), queries)
	reng.Close()
}

// TestDurableStateGuards pins the API misuse errors: re-bootstrapping over
// existing state is rejected, and NewEngineWith refuses Options.WALDir.
func TestDurableStateGuards(t *testing.T) {
	dict, triples, rules, _ := randomLiveFixture(t, 31)
	fs := wal.NewMemFS()
	eng, err := openDurableFS(fs, buildBaseStore(t, dict, triples, 20), rules, Options{})
	if err != nil {
		t.Fatal(err)
	}
	eng.Close()
	if _, err := openDurableFS(fs, buildBaseStore(t, dict, triples, 5), rules, Options{}); err == nil {
		t.Fatal("bootstrap over existing durable state succeeded")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("NewEngineWith accepted Options.WALDir")
			}
		}()
		NewEngineWith(kg.NewStore(nil), rules, Options{WALDir: "somewhere"})
	}()
	// A non-durable engine's durable surface is inert, not an error.
	plain := NewEngineWith(buildBaseStore(t, dict, triples, 20), rules, Options{})
	if err := plain.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := plain.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := plain.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDurableInsertHammer races concurrent durable inserters against
// Engine.Sync, explicit checkpoints and queries (run with -race in CI), then
// proves the recovered store is bit-identical to the live store's final
// state — insertion order included, since the WAL serialises it.
func TestDurableInsertHammer(t *testing.T) {
	dict, triples, rules, queries := randomLiveFixture(t, 5150)
	base := len(triples) / 3
	fs := wal.NewMemFS()
	eng, err := openDurableFS(fs, buildBaseStore(t, dict, triples, base), rules, Options{
		Shards:          3,
		SyncPolicy:      SyncAlways,
		WALSegmentSize:  1 << 11,
		CheckpointBytes: 1 << 13, // let the automatic threshold fire too
		HeadLimit:       32,
	})
	if err != nil {
		t.Fatal(err)
	}
	rest := triples[base:]
	const workers = 4
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(rest); i += workers {
				if err := eng.Insert(rest[i]); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if err := eng.Sync(); err != nil {
				t.Errorf("sync: %v", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			if err := eng.Checkpoint(); err != nil {
				t.Errorf("checkpoint: %v", err)
				return
			}
		}
	}()
	for qi := 0; qi < 10; qi++ {
		if _, err := eng.Query(queries[qi%len(queries)], 5, ModeSpecQP); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if eng.Graph().Len() != len(triples) {
		t.Fatalf("live store has %d triples, want %d", eng.Graph().Len(), len(triples))
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	reng, err := openDurableFS(fs, nil, rules, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer reng.Close()
	// The concurrent insert order is whatever the WAL serialised; the
	// recovered store must reproduce it triple for triple.
	g, rg := eng.Graph(), reng.Graph()
	if rg.Len() != g.Len() {
		t.Fatalf("recovered %d triples, live had %d", rg.Len(), g.Len())
	}
	ld, rd := g.Dict(), rg.Dict()
	for i := 0; i < g.Len(); i++ {
		a, b := g.Triple(int32(i)), rg.Triple(int32(i))
		if ld.Decode(a.S) != rd.Decode(b.S) || ld.Decode(a.P) != rd.Decode(b.P) ||
			ld.Decode(a.O) != rd.Decode(b.O) || a.Score != b.Score {
			t.Fatalf("triple %d diverged after recovery: %v vs %v", i, a, b)
		}
	}
	for qi, q := range queries[:3] {
		for _, mode := range []Mode{ModeSpecQP, ModeTriniT, ModeNaive} {
			want, err := eng.Query(q, 8, mode)
			if err != nil {
				t.Fatal(err)
			}
			got, err := reng.Query(q, 8, mode)
			if err != nil {
				t.Fatal(err)
			}
			sameAnswers(t, fmt.Sprintf("hammer recovery query %d mode %v", qi, mode), got.Answers, want.Answers)
		}
	}
}

// TestRecoveryRecheckpointsReplayedTail pins the double-crash contract: a
// recovery may replay log bytes nobody ever fsynced (a kill -9 leaves them
// in the page cache), so it must re-root the directory at a fresh covering
// checkpoint before accepting appends. Modelled by recovering from an
// everything-written crash view, then deleting every log segment (the
// power loss that would have eaten the unsynced bytes) and recovering
// again: the replayed tail must survive via the recovery checkpoint.
func TestRecoveryRecheckpointsReplayedTail(t *testing.T) {
	dict, triples, rules, queries := randomLiveFixture(t, 8642)
	base := len(triples) / 2
	fs := wal.NewMemFS()
	eng, err := openDurableFS(fs, buildBaseStore(t, dict, triples, base), rules,
		Options{SyncPolicy: SyncNone}) // nothing fsynced: the page-cache model
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range triples[base:] {
		if err := eng.Insert(tr); err != nil {
			t.Fatal(err)
		}
	}
	// kill -9: all written bytes survive in the page cache, none are durable.
	view := fs.Crash(wal.EverythingWritten)
	reng, err := openDurableFS(view, nil, rules, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if reng.Graph().Len() != len(triples) {
		t.Fatalf("first recovery got %d triples, want %d", reng.Graph().Len(), len(triples))
	}
	if err := reng.Close(); err != nil {
		t.Fatal(err)
	}
	// The deferred power loss: the old segments' bytes were never fsynced by
	// anyone pre-recovery, so they may vanish entirely.
	names, err := view.List()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if strings.HasPrefix(n, "wal-") {
			if err := view.Remove(n); err != nil {
				t.Fatal(err)
			}
		}
	}
	final, err := openDurableFS(view, nil, rules, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer final.Close()
	assertTriplePrefix(t, "post-double-crash", final.Graph(), dict, triples, len(triples))
	assertOracleEqual(t, "post-double-crash", final, flatOracle(t, dict, triples, len(triples), rules), queries)
}

// recOp is one WAL record in the mutation crash harness's model: the op log
// at record granularity, so a crash landing between an update's tombstone
// and its insert is just a prefix cut (the torn update recovers as a bare
// delete — acceptable, the caller was never acked).
type recOp struct {
	del     bool
	s, p, o string
	score   float64
}

// survivorsOf replays a record prefix into the surviving fact sequence.
func survivorsOf(records []recOp) []recOp {
	var out []recOp
	for _, r := range records {
		if r.del {
			kept := out[:0]
			for _, t := range out {
				if t.s == r.s && t.p == r.p && t.o == r.o {
					continue
				}
				kept = append(kept, t)
			}
			out = kept
			continue
		}
		out = append(out, r)
	}
	return out
}

// liveSequence extracts a graph's surviving triples in global insertion
// order as term strings, by round-tripping the survivors-only snapshot
// writer (which is itself part of the contract under test).
func liveSequence(t *testing.T, g Graph) []recOp {
	t.Helper()
	var buf strings.Builder
	if _, _, err := kg.WriteGraphSnapshot(&buf, g); err != nil {
		t.Fatal(err)
	}
	d := kg.NewDict()
	var out []recOp
	add := func(tr Triple) error {
		out = append(out, recOp{s: d.Decode(tr.S), p: d.Decode(tr.P), o: d.Decode(tr.O), score: tr.Score})
		return nil
	}
	if err := kg.ReadBinaryInto(strings.NewReader(buf.String()), d, add); err != nil {
		t.Fatal(err)
	}
	return out
}

// sameRecOps reports whether two survivor sequences are identical.
func sameRecOps(a, b []recOp) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestDurableMutationCrashFaultInjection is the tombstone-bearing crash
// harness: a randomized schedule of inserts, deletes, updates, compactions
// and checkpoints runs under byte-budget fault injection; recovery must
// yield exactly the survivors of some record-level prefix of the mutation
// log — under SyncAlways a prefix covering every acked mutation — and a
// deleted fact must never resurrect. Shard counts rotate across recovery,
// and checkpoints in the schedule make some crashes land with a covering
// snapshot (tombstones resolved, replay empty) and some without.
func TestDurableMutationCrashFaultInjection(t *testing.T) {
	trial := int64(0)
	for _, policy := range []SyncPolicy{SyncAlways, SyncNone} {
		for _, shards := range durableShardCounts {
			for rep := 0; rep < 4; rep++ {
				trial++
				rng := rand.New(rand.NewSource(9100 + trial))
				dict, triples, rules, queries := randomLiveFixture(t, 7700+trial)
				base := len(triples) / 2
				l1 := 0
				if rep%2 == 0 {
					l1 = 48 // alternate reps run the tiered compaction path
				}
				fs := wal.NewMemFS()
				eng, err := openDurableFS(fs, buildBaseStore(t, dict, triples, base), rules, Options{
					Shards:          shards,
					SyncPolicy:      policy,
					WALSegmentSize:  1 << 10,
					CheckpointBytes: -1,
					HeadLimit:       16,
					L1Limit:         l1,
				})
				if err != nil {
					t.Fatal(err)
				}
				// The model starts at the bootstrap store's contents.
				var records []recOp
				for _, tr := range triples[:base] {
					records = append(records, recOp{
						s: dict.Decode(tr.S), p: dict.Decode(tr.P), o: dict.Decode(tr.O), score: tr.Score})
				}
				fs.SetBudget(int64(rng.Intn(8000)))
				acked := len(records)

				deletable := func() Triple {
					if s := survivorsOf(records); len(s) > 0 && rng.Intn(4) != 0 {
						pick := s[rng.Intn(len(s))]
						return Triple{S: dict.Encode(pick.s), P: dict.Encode(pick.p), O: dict.Encode(pick.o)}
					}
					return triples[rng.Intn(len(triples))]
				}
				// The bootstrap dict IS the fixture dict, and recovery snapshots
				// persist the full dictionary in ID order, so IDs stay stable
				// across every crash/recover cycle below.
				pos := base
				for pos < len(triples) {
					var err error
					switch op := rng.Intn(16); {
					case op == 0:
						_ = eng.Checkpoint()
					case op == 1:
						_ = eng.Compact()
					case op < 5: // delete
						tr := deletable()
						records = append(records, recOp{
							del: true, s: dict.Decode(tr.S), p: dict.Decode(tr.P), o: dict.Decode(tr.O)})
						_, err = eng.Delete(tr.S, tr.P, tr.O)
					case op < 8: // latest-wins update
						tr := deletable()
						tr.Score = float64(1 + rng.Intn(25))
						records = append(records,
							recOp{del: true, s: dict.Decode(tr.S), p: dict.Decode(tr.P), o: dict.Decode(tr.O)},
							recOp{s: dict.Decode(tr.S), p: dict.Decode(tr.P), o: dict.Decode(tr.O), score: tr.Score})
						err = eng.Update(tr)
					default:
						tr := triples[pos]
						records = append(records, recOp{
							s: dict.Decode(tr.S), p: dict.Decode(tr.P), o: dict.Decode(tr.O), score: tr.Score})
						err = eng.Insert(tr)
						pos++
					}
					if err != nil {
						break // wedged log: nothing past this point is acked
					}
					acked = len(records)
				}

				crashed := fs.Crash(func(_ string, pending int) int { return rng.Intn(pending + 1) })
				reShards := durableShardCounts[rng.Intn(len(durableShardCounts))]
				reng, err := openDurableFS(crashed, nil, rules, Options{Shards: reShards})
				if err != nil {
					t.Fatalf("trial %d (policy=%v shards=%d→%d): recovery failed: %v",
						trial, policy, shards, reShards, err)
				}
				label := fmt.Sprintf("trial %d policy=%v shards=%d→%d", trial, policy, shards, reShards)
				got := liveSequence(t, reng.Graph())
				lo := 0
				if policy == SyncAlways {
					lo = acked
				}
				matched := -1
				for l := lo; l <= len(records); l++ {
					if sameRecOps(got, survivorsOf(records[:l])) {
						matched = l
						break
					}
				}
				if matched < 0 {
					t.Fatalf("%s: recovered state matches no record prefix in [%d,%d] (got %d survivors, acked-prefix has %d)",
						label, lo, len(records), len(got), len(survivorsOf(records[:acked])))
				}
				// Answer-level oracle over the matched prefix's survivors,
				// built over the fixture dict (ID-stable, see above).
				flat := kg.NewStore(dict)
				for _, r := range survivorsOf(records[:matched]) {
					if err := flat.AddSPO(r.s, r.p, r.o, r.score); err != nil {
						t.Fatal(err)
					}
				}
				flat.Freeze()
				oracle := NewEngineWith(flat, rules, Options{Shards: 1})
				assertOracleEqual(t, label, reng, oracle, queries)
				reng.Close()
			}
		}
	}
}

// TestDurableMutationCloseReopen is the clean-shutdown face of full
// mutability: mutate through the WAL — deletes and updates included — close,
// recover at a different shard count, and get exactly the surviving facts
// back, whether or not a checkpoint covered the tombstones.
func TestDurableMutationCloseReopen(t *testing.T) {
	for _, checkpointed := range []bool{false, true} {
		dict, triples, rules, queries := randomLiveFixture(t, 3300)
		base := len(triples) * 3 / 5
		fs := wal.NewMemFS()
		eng, err := openDurableFS(fs, buildBaseStore(t, dict, triples, base), rules,
			Options{Shards: 2, SyncPolicy: SyncAlways})
		if err != nil {
			t.Fatal(err)
		}
		var records []recOp
		for _, tr := range triples[:base] {
			records = append(records, recOp{
				s: dict.Decode(tr.S), p: dict.Decode(tr.P), o: dict.Decode(tr.O), score: tr.Score})
		}
		rng := rand.New(rand.NewSource(31337))
		for _, tr := range triples[base:] {
			s, p, o := dict.Decode(tr.S), dict.Decode(tr.P), dict.Decode(tr.O)
			switch rng.Intn(4) {
			case 0:
				if _, err := eng.Delete(tr.S, tr.P, tr.O); err != nil {
					t.Fatal(err)
				}
				records = append(records, recOp{del: true, s: s, p: p, o: o})
			case 1:
				up := 1 + float64(rng.Intn(30))
				if err := eng.Update(Triple{S: tr.S, P: tr.P, O: tr.O, Score: up}); err != nil {
					t.Fatal(err)
				}
				records = append(records, recOp{del: true, s: s, p: p, o: o},
					recOp{s: s, p: p, o: o, score: up})
			default:
				if err := eng.Insert(tr); err != nil {
					t.Fatal(err)
				}
				records = append(records, recOp{s: s, p: p, o: o, score: tr.Score})
			}
		}
		if checkpointed {
			if err := eng.Compact(); err != nil {
				t.Fatal(err)
			}
		}
		if err := eng.Close(); err != nil {
			t.Fatal(err)
		}
		reng, err := openDurableFS(fs, nil, rules, Options{Shards: 7})
		if err != nil {
			t.Fatal(err)
		}
		label := fmt.Sprintf("mutation close/reopen checkpointed=%v", checkpointed)
		want := survivorsOf(records)
		got := liveSequence(t, reng.Graph())
		if !sameRecOps(got, want) {
			t.Fatalf("%s: recovered %d survivors, want %d (or content diverged)", label, len(got), len(want))
		}
		flat := kg.NewStore(dict)
		for _, r := range want {
			if err := flat.AddSPO(r.s, r.p, r.o, r.score); err != nil {
				t.Fatal(err)
			}
		}
		flat.Freeze()
		oracle := NewEngineWith(flat, rules, Options{Shards: 1})
		assertOracleEqual(t, label, reng, oracle, queries)
		reng.Close()
	}
}

// TestCheckpointRefusedAfterCloseAndWedge pins the two checkpoint guards: a
// closed engine (the directory lock is released — another process may own
// it) and a wedged log (the in-memory store can be ahead of acked state)
// must both refuse to touch the manifest.
func TestCheckpointRefusedAfterCloseAndWedge(t *testing.T) {
	dict, triples, rules, _ := randomLiveFixture(t, 271)
	fs := wal.NewMemFS()
	eng, err := openDurableFS(fs, buildBaseStore(t, dict, triples, 30), rules, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Checkpoint(); err == nil {
		t.Fatal("checkpoint on closed engine succeeded")
	}
	if err := eng.Compact(); err == nil {
		t.Fatal("compact-checkpoint on closed engine succeeded")
	}

	// Wedge path: arm the fault, fail an insert, then demand Checkpoint
	// refuse to persist the indeterminate state.
	fs2 := wal.NewMemFS()
	eng2, err := openDurableFS(fs2, buildBaseStore(t, dict, triples, 30), rules, Options{SyncPolicy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	fs2.SetBudget(10)
	var insertErr error
	for _, tr := range triples[30:40] {
		if insertErr = eng2.Insert(tr); insertErr != nil {
			break
		}
	}
	if insertErr == nil {
		t.Fatal("budget fault never fired")
	}
	if err := eng2.Checkpoint(); err == nil {
		t.Fatal("checkpoint on wedged engine succeeded")
	}
}
