package specqp

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"specqp/internal/kg"
)

// This file is the streaming contract: QueryStream must emit exactly the
// buffered answer sequence — same order, bit-equal scores and masks — one
// answer at a time as the rank join proves each final, across every mode and
// shard count, with or without a client that stops mid-stream, and under
// concurrent ingest. "Streaming" that buffers and replays would pass the
// equality half of this file but is caught by the operator-level pull-count
// test (internal/operators); together they pin incremental emission end to
// end.

var streamOracleModes = []Mode{ModeSpecQP, ModeTriniT, ModeNaive, ModeExact}

// TestStreamingPrefixOracle: for randomized stores, every shard count and
// every mode, the streamed emission sequence equals the buffered Query
// answers element for element (exact float equality), the returned Result is
// itself bit-identical, and an emitter that stops after j answers receives
// exactly the length-j prefix.
func TestStreamingPrefixOracle(t *testing.T) {
	ctx := context.Background()
	for trial := int64(0); trial < 3; trial++ {
		st, rules, queries := randomEngineFixture(t, 7400+trial)
		for _, shards := range oracleShardCounts {
			eng := NewEngineWith(st, rules, Options{Shards: shards, NaiveLimit: 3})
			for qi, q := range queries {
				k := 2 + (qi+int(trial))%8
				for _, mode := range streamOracleModes {
					label := fmt.Sprintf("trial %d shards=%d query %d mode %v k=%d", trial, shards, qi, mode, k)
					want, err := eng.Query(q, k, mode)
					if err != nil {
						t.Fatal(err)
					}

					var streamed []Answer
					res, err := eng.QueryStream(ctx, q, k, mode, func(a Answer) bool {
						streamed = append(streamed, a)
						return true
					})
					if err != nil {
						t.Fatalf("%s: QueryStream: %v", label, err)
					}
					sameAnswers(t, label+" (emitted)", streamed, want.Answers)
					sameAnswers(t, label+" (result)", res.Answers, want.Answers)

					// Early-stop: a client that walks away after j answers got
					// exactly the proven prefix, and the call still succeeds.
					for _, j := range []int{1, len(want.Answers) / 2} {
						if j < 1 || j >= len(want.Answers) {
							continue
						}
						var prefix []Answer
						if _, err := eng.QueryStream(ctx, q, k, mode, func(a Answer) bool {
							prefix = append(prefix, a)
							return len(prefix) < j
						}); err != nil {
							t.Fatalf("%s: early-stop QueryStream: %v", label, err)
						}
						sameAnswers(t, fmt.Sprintf("%s prefix j=%d", label, j), prefix, want.Answers[:j])
					}
				}
			}
		}
	}
}

// TestStreamingBatchOracle: QueryBatchStream's per-query emissions, demuxed
// by index, equal each query's buffered answers, even though workers emit
// concurrently.
func TestStreamingBatchOracle(t *testing.T) {
	ctx := context.Background()
	st, rules, queries := randomEngineFixture(t, 9100)
	for _, shards := range []int{1, 3} {
		eng := NewEngineWith(st, rules, Options{Shards: shards, BatchWorkers: 3})
		const k = 6
		for _, mode := range streamOracleModes {
			var mu sync.Mutex
			perQuery := make([][]Answer, len(queries))
			results, err := eng.QueryBatchStream(ctx, queries, k, mode, func(i int, a Answer) bool {
				mu.Lock()
				perQuery[i] = append(perQuery[i], a)
				mu.Unlock()
				return true
			})
			if err != nil {
				t.Fatal(err)
			}
			for qi, q := range queries {
				want, err := eng.Query(q, k, mode)
				if err != nil {
					t.Fatal(err)
				}
				label := fmt.Sprintf("shards=%d mode %v batch query %d", shards, mode, qi)
				sameAnswers(t, label+" (emitted)", perQuery[qi], want.Answers)
				if results[qi].Err != nil {
					t.Fatalf("%s: %v", label, results[qi].Err)
				}
				sameAnswers(t, label+" (result)", results[qi].Result.Answers, want.Answers)
			}
		}
	}
}

// TestStreamingUnderIngestHammer runs streamed-vs-buffered equality against
// pinned snapshots while a writer ingests concurrently (run under -race).
// Each reader iteration pins the live graph once and builds an engine over
// the pinned snapshot, so both executions see the same version and must be
// bit-identical regardless of what the writer does meanwhile.
func TestStreamingUnderIngestHammer(t *testing.T) {
	dict, triples, rules, queries := randomLiveFixture(t, 5151)
	base := len(triples) / 2
	probes := queries[:3]
	const k = 7

	ss := kg.NewShardedStore(dict, 3)
	for _, tr := range triples[:base] {
		if err := ss.Add(tr); err != nil {
			t.Fatal(err)
		}
	}
	eng := NewEngineOver(ss, rules, Options{})

	ctx := context.Background()
	done := make(chan struct{})
	var checks int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				q := probes[(r+i)%len(probes)]
				mode := streamOracleModes[(r+i)%len(streamOracleModes)]
				snap := NewEngineOver(eng.Graph().Pin(), rules, Options{})
				want, err := snap.Query(q, k, mode)
				if err != nil {
					t.Error(err)
					return
				}
				var streamed []Answer
				if _, err := snap.QueryStream(ctx, q, k, mode, func(a Answer) bool {
					streamed = append(streamed, a)
					return true
				}); err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				sameAnswers(t, fmt.Sprintf("hammer r=%d i=%d mode %v", r, i, mode), streamed, want.Answers)
				checks++
				mu.Unlock()
			}
		}(r)
	}
	for i, tr := range triples[base:] {
		if err := eng.Insert(tr); err != nil {
			t.Fatal(err)
		}
		if i%4 == 0 {
			runtime.Gosched()
		}
	}
	for deadline := time.Now().Add(5 * time.Second); ; {
		mu.Lock()
		n := checks
		mu.Unlock()
		if n >= 20 || time.Now().After(deadline) {
			break
		}
		runtime.Gosched()
	}
	close(done)
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if checks == 0 {
		t.Fatal("no streamed-vs-buffered checks ran under ingest")
	}
}
