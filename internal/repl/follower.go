package repl

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"specqp/internal/metrics"
	"specqp/internal/wal"
)

// Applier is the store side of a follower: the same replay-by-kind surface
// crash recovery drives, behind an interface so the root package can
// implement it over a live engine. AppliedSeq is the follower's durable
// cursor — every record with Seq <= AppliedSeq() has been applied exactly
// once, and Apply is only ever called with Seq == AppliedSeq()+1.
type Applier interface {
	// InstallSnapshot replaces the entire local state with the snapshot
	// (v2 binary format) covering WAL position seq.
	InstallSnapshot(seq uint64, r io.Reader) error
	// Apply applies one WAL record (KindInsert or KindTombstone) at position
	// AppliedSeq()+1.
	Apply(rec wal.Record) error
	// AppliedSeq returns the last applied WAL position.
	AppliedSeq() uint64
}

// Client is a follower's transport to the primary: whole deliveries in, as
// byte slices — the seam the network fault injector wraps, mirroring how
// wal.MemFS seams the durability layer's filesystem.
type Client interface {
	// Pull requests records after the given position. The primary may answer
	// with a snapshot delivery instead when the position was truncated.
	Pull(afterSeq uint64) ([]byte, error)
	// Bootstrap requests the current checkpoint snapshot.
	Bootstrap() ([]byte, error)
	Close() error
}

// NetClientOptions tunes the TCP transport.
type NetClientOptions struct {
	// DialTimeout bounds connection establishment (default 5s).
	DialTimeout time.Duration
	// IOTimeout bounds each request/response round trip; it must exceed the
	// primary's PollWait or every caught-up long poll looks like a hang
	// (default 10s).
	IOTimeout time.Duration
	// MaxDeliveryBytes bounds a delivery's claimed body length (default
	// 1 GiB). The body buffer still grows only with bytes actually read.
	MaxDeliveryBytes uint64
	// Metrics counts redials when set.
	Metrics *metrics.ReplicationMetrics
}

func (o NetClientOptions) withDefaults() NetClientOptions {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.IOTimeout <= 0 {
		o.IOTimeout = 10 * time.Second
	}
	if o.MaxDeliveryBytes == 0 {
		o.MaxDeliveryBytes = 1 << 30
	}
	return o
}

// NetClient is the TCP Client: one persistent connection, redialed on demand
// after any failure. Every read is bounded — the header frame is fixed-size
// and CRC-checked before its body length is believed, and the body is read
// in chunks so allocation tracks delivery, not claims.
type NetClient struct {
	addr string
	opts NetClientOptions

	mu     sync.Mutex
	conn   net.Conn
	br     *bufio.Reader
	dialed bool
}

// NewNetClient returns a client for the primary listening at addr. No
// connection is made until the first request.
func NewNetClient(addr string, opts NetClientOptions) *NetClient {
	return &NetClient{addr: addr, opts: opts.withDefaults()}
}

// Pull implements Client.
func (c *NetClient) Pull(afterSeq uint64) ([]byte, error) { return c.roundTrip(opPull, afterSeq) }

// Bootstrap implements Client.
func (c *NetClient) Bootstrap() ([]byte, error) { return c.roundTrip(opSnapshot, 0) }

// Close drops the connection.
func (c *NetClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn != nil {
		err := c.conn.Close()
		c.conn, c.br = nil, nil
		return err
	}
	return nil
}

// roundTrip sends one request and reads one delivery. Any failure tears the
// connection down; the next call redials — which is exactly the resume-after-
// disconnect path, since the follower re-sends its position every pull.
func (c *NetClient) roundTrip(op byte, afterSeq uint64) (data []byte, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		conn, derr := net.DialTimeout("tcp", c.addr, c.opts.DialTimeout)
		if derr != nil {
			return nil, derr
		}
		c.conn, c.br = conn, bufio.NewReaderSize(conn, 1<<16)
		if c.dialed && c.opts.Metrics != nil {
			c.opts.Metrics.Redials.Add(1)
		}
		c.dialed = true
	}
	defer func() {
		if err != nil && c.conn != nil {
			c.conn.Close()
			c.conn, c.br = nil, nil
		}
	}()
	if err := c.conn.SetDeadline(time.Now().Add(c.opts.IOTimeout)); err != nil {
		return nil, err
	}
	if _, err := c.conn.Write(AppendRequest(nil, op, afterSeq)); err != nil {
		return nil, err
	}
	head := make([]byte, HeaderFrameLen)
	if _, err := io.ReadFull(c.br, head); err != nil {
		return nil, err
	}
	h, err := ParseHeader(head)
	if err != nil {
		return nil, err
	}
	if h.BodyLen > c.opts.MaxDeliveryBytes {
		return nil, corruptf("delivery body claims %d bytes (bound %d)", h.BodyLen, c.opts.MaxDeliveryBytes)
	}
	data = head
	const chunk = 1 << 20
	for read := uint64(0); read < h.BodyLen; {
		step := h.BodyLen - read
		if step > chunk {
			step = chunk
		}
		start := len(data)
		data = append(data, make([]byte, step)...)
		if _, err := io.ReadFull(c.br, data[start:]); err != nil {
			return nil, err
		}
		read += step
	}
	return data, nil
}

// FollowerOptions tunes the tailing loop.
type FollowerOptions struct {
	// RetryDelay is the pause after a failed round trip before redialing
	// (default 50ms).
	RetryDelay time.Duration
	// IdleDelay is the pause after a successful but empty round trip — only
	// relevant on transports without a server-side long poll (default 2ms).
	IdleDelay time.Duration
	// Metrics receives position gauges and event counters when set.
	Metrics *metrics.ReplicationMetrics
}

func (o FollowerOptions) withDefaults() FollowerOptions {
	if o.RetryDelay <= 0 {
		o.RetryDelay = 50 * time.Millisecond
	}
	if o.IdleDelay <= 0 {
		o.IdleDelay = 2 * time.Millisecond
	}
	return o
}

// Follower tails a primary through a Client and applies deliveries to an
// Applier with crash-recovery discipline:
//
//   - Bootstrap: the first successful delivery must be a snapshot — the
//     checkpoint is the only self-contained state; records alone never are.
//   - Duplicates and replays: records at or below the applied position are
//     skipped, so a replayed delivery applies nothing twice.
//   - Gaps: a record beyond position+1 stops the batch — the rest chains off
//     a record we do not have, exactly the WAL sequence-break rule.
//   - Truncation fallback: a snapshot delivery ahead of the applied position
//     reinstalls state wholesale; one at or below it is stale and ignored
//     (a follower never rewinds).
type Follower struct {
	client Client
	app    Applier
	opts   FollowerOptions

	mu        sync.Mutex
	installed bool
}

// NewFollower returns a Follower applying deliveries from client to app.
func NewFollower(client Client, app Applier, opts FollowerOptions) *Follower {
	return &Follower{client: client, app: app, opts: opts.withDefaults()}
}

// AppliedSeq returns the applier's position (the follower's pull cursor).
func (f *Follower) AppliedSeq() uint64 { return f.app.AppliedSeq() }

// Step performs one round trip: pull (or bootstrap), parse, apply.
// progressed reports whether any state changed. Errors are retryable —
// transport failures and corrupt deliveries alike leave the applied state
// consistent, and the next Step resumes from the same position.
func (f *Follower) Step() (progressed bool, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	var data []byte
	if !f.installed {
		data, err = f.client.Bootstrap()
	} else {
		data, err = f.client.Pull(f.app.AppliedSeq())
	}
	if err != nil {
		return false, err
	}
	return f.ingest(data)
}

// ingest parses and applies one delivery (caller holds f.mu).
func (f *Follower) ingest(data []byte) (bool, error) {
	m := f.opts.Metrics
	d, err := ParseDelivery(data)
	if err != nil {
		if m != nil {
			m.Corrupt.Add(1)
		}
		return false, err
	}
	if m != nil {
		m.Deliveries.Add(1)
		m.SetPrimary(d.PrimarySeq)
	}
	switch d.Type {
	case DeliverySnapshot:
		if f.installed && d.Seq <= f.app.AppliedSeq() {
			return false, nil // stale or replayed snapshot — never rewind
		}
		if err := f.app.InstallSnapshot(d.Seq, bytes.NewReader(d.Snapshot)); err != nil {
			return false, err
		}
		f.installed = true
		if m != nil {
			m.SnapshotsInstalled.Add(1)
			m.SetApplied(d.Seq)
		}
		return true, nil
	default: // DeliveryRecords, per ParseDelivery
		if !f.installed {
			// Records without a state root are unusable; ask for the
			// snapshot again next Step.
			return false, fmt.Errorf("repl: records delivery before snapshot bootstrap")
		}
		progressed := false
		for _, r := range d.Records {
			applied := f.app.AppliedSeq()
			if r.Seq <= applied {
				continue // duplicate of an applied record
			}
			if r.Seq != applied+1 {
				break // gap: the rest chains off records we do not have
			}
			if err := f.app.Apply(r); err != nil {
				return progressed, err
			}
			progressed = true
			if m != nil {
				m.RecordsApplied.Add(1)
				m.SetApplied(r.Seq)
			}
		}
		return progressed, nil
	}
}

// Run tails until stop closes: Step in a loop, with RetryDelay after
// failures and IdleDelay after empty rounds. The Metrics connected gauge
// tracks the last round trip's outcome.
func (f *Follower) Run(stop <-chan struct{}) {
	m := f.opts.Metrics
	for {
		select {
		case <-stop:
			return
		default:
		}
		progressed, err := f.Step()
		if m != nil {
			m.SetConnected(err == nil)
		}
		var pause time.Duration
		switch {
		case err != nil:
			pause = f.opts.RetryDelay
		case !progressed:
			pause = f.opts.IdleDelay
		default:
			continue
		}
		select {
		case <-stop:
			return
		case <-time.After(pause):
		}
	}
}
