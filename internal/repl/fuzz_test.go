package repl

import (
	"bytes"
	"hash/crc32"
	"testing"

	"specqp/internal/wal"
)

// FuzzReplFrame feeds hostile bytes to the follower's single ingest point.
// ParseDelivery must never panic, never allocate proportionally to a claimed
// length (bodies are parsed from bytes actually present), and — the
// round-trip half, the same contract as FuzzWALReplay — any records it
// recovers must re-frame to a byte prefix of the delivery body: exactly the
// valid prefix, nothing reordered, nothing invented.
func FuzzReplFrame(f *testing.F) {
	// Seeds: a clean records delivery, the same cut mid-frame and mid-header,
	// a snapshot delivery whole and torn, an empty caught-up delivery, a
	// hostile bodyLen claim, and raw garbage.
	var body []byte
	body = wal.FrameRecord(body, wal.Record{Seq: 4, Kind: wal.KindInsert, S: "alice", P: "knows", O: "bob", Score: 0.75})
	body = wal.FrameRecord(body, wal.Record{Seq: 5, Kind: wal.KindTombstone, S: "alice", P: "knows", O: "bob"})
	body = wal.FrameRecord(body, wal.Record{Seq: 6, Kind: wal.KindInsert, S: "alice", P: "knows", O: "carol", Score: 2})
	recsDelivery := appendDeliveryHeader(nil, DeliveryRecords, uint64(len(body)), crc32.Checksum(body, castagnoli), 6, 9)
	recsDelivery = append(recsDelivery, body...)
	f.Add(append([]byte(nil), recsDelivery...))
	f.Add(append([]byte(nil), recsDelivery[:len(recsDelivery)-7]...))
	f.Add(append([]byte(nil), recsDelivery[:HeaderFrameLen-3]...))

	snapBody := []byte("not a real snapshot, just CRC-covered bytes")
	snapDelivery := appendDeliveryHeader(nil, DeliverySnapshot, uint64(len(snapBody)), crc32.Checksum(snapBody, castagnoli), 12, 20)
	snapDelivery = append(snapDelivery, snapBody...)
	f.Add(append([]byte(nil), snapDelivery...))
	f.Add(append([]byte(nil), snapDelivery[:len(snapDelivery)-5]...))

	empty := appendDeliveryHeader(nil, DeliveryRecords, 0, 0, 7, 7)
	f.Add(empty)

	hostile := appendDeliveryHeader(nil, DeliveryRecords, 1<<60, 0, 1, 1)
	f.Add(hostile)
	f.Add([]byte("\xff\xff\xff\x7fgarbage"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := ParseDelivery(data)
		if err != nil {
			return // rejected is always a legal outcome for hostile bytes
		}
		switch d.Type {
		case DeliveryRecords:
			if d.Snapshot != nil {
				t.Fatalf("records delivery carries snapshot bytes")
			}
			var reframed []byte
			for _, r := range d.Records {
				reframed = wal.FrameRecord(reframed, r)
			}
			if !bytes.HasPrefix(data[HeaderFrameLen:], reframed) {
				t.Fatalf("recovered records do not re-frame to a body prefix")
			}
		case DeliverySnapshot:
			if d.Records != nil {
				t.Fatalf("snapshot delivery carries records")
			}
			// The accepted body must be exactly the CRC-covered bytes the
			// header claims — an accepted torn snapshot would install half a
			// store.
			h, err := ParseHeader(data)
			if err != nil {
				t.Fatalf("ParseDelivery accepted what ParseHeader rejects: %v", err)
			}
			if uint64(len(d.Snapshot)) != h.BodyLen {
				t.Fatalf("snapshot body %d bytes, header claims %d", len(d.Snapshot), h.BodyLen)
			}
			if crc32.Checksum(d.Snapshot, castagnoli) != h.BodyCRC {
				t.Fatalf("accepted snapshot fails its own CRC")
			}
		default:
			t.Fatalf("ParseDelivery accepted unknown type %d", d.Type)
		}
	})
}
