package repl

import (
	"bufio"
	"errors"
	"hash/crc32"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"specqp/internal/wal"
)

// PrimaryOptions tunes the shipping side.
type PrimaryOptions struct {
	// MaxBatchBytes bounds the framed records per delivery (default 1 MiB).
	MaxBatchBytes int
	// PollWait is how long a caught-up pull blocks waiting for new records
	// before answering with an empty delivery — the long-poll window that
	// keeps follower lag at one round trip without a busy wire (default
	// 250ms; negative disables waiting).
	PollWait time.Duration
	// PollInterval is the primary's position re-check period inside the
	// long-poll window (default 2ms).
	PollInterval time.Duration
}

func (o PrimaryOptions) withDefaults() PrimaryOptions {
	if o.MaxBatchBytes <= 0 {
		o.MaxBatchBytes = 1 << 20
	}
	if o.PollWait == 0 {
		o.PollWait = 250 * time.Millisecond
	}
	if o.PollInterval <= 0 {
		o.PollInterval = 2 * time.Millisecond
	}
	return o
}

// Primary ships one WAL feed to any number of followers. It is purely a
// reader of the feed — the engine keeps writing, checkpointing and truncating
// underneath it, and every truncation race surfaces as a snapshot delivery.
type Primary struct {
	feed *wal.Feed
	opts PrimaryOptions

	mu     sync.Mutex
	lns    map[net.Listener]struct{}
	conns  map[net.Conn]struct{}
	closed atomic.Bool
	wg     sync.WaitGroup
}

// NewPrimary returns a Primary shipping feed.
func NewPrimary(feed *wal.Feed, opts PrimaryOptions) *Primary {
	return &Primary{
		feed:  feed,
		opts:  opts.withDefaults(),
		lns:   make(map[net.Listener]struct{}),
		conns: make(map[net.Conn]struct{}),
	}
}

// DeliverRecords builds the delivery answering a pull after the given
// position: a contiguous batch of records from afterSeq+1, or — when a
// checkpoint truncated that position away — the current snapshot, which is
// the restart rule a crashed-and-recovered follower would follow too. n is
// the number of records in the batch (a snapshot counts as 1, an empty
// caught-up delivery as 0).
func (p *Primary) DeliverRecords(afterSeq uint64) (data []byte, n int, err error) {
	recs, err := p.feed.ReadAfter(afterSeq, p.opts.MaxBatchBytes)
	if errors.Is(err, wal.ErrPositionTruncated) {
		return p.DeliverSnapshot()
	}
	if err != nil {
		return nil, 0, err
	}
	var body []byte
	seq := afterSeq
	for _, r := range recs {
		body = wal.FrameRecord(body, r)
		seq = r.Seq
	}
	data = appendDeliveryHeader(make([]byte, 0, HeaderFrameLen+len(body)),
		DeliveryRecords, uint64(len(body)), crc32.Checksum(body, castagnoli), seq, p.feed.LastSeq())
	return append(data, body...), len(recs), nil
}

// DeliverSnapshot builds a snapshot delivery from the current checkpoint —
// the bootstrap shipment for a blank follower and the fallback for a
// truncated position.
func (p *Primary) DeliverSnapshot() (data []byte, n int, err error) {
	rc, seq, err := p.feed.OpenSnapshot()
	if err != nil {
		return nil, 0, err
	}
	body, err := io.ReadAll(rc)
	rc.Close()
	if err != nil {
		return nil, 0, err
	}
	data = appendDeliveryHeader(make([]byte, 0, HeaderFrameLen+len(body)),
		DeliverySnapshot, uint64(len(body)), crc32.Checksum(body, castagnoli), seq, p.feed.LastSeq())
	return append(data, body...), 1, nil
}

// Serve accepts follower connections on ln until Close (or the listener
// fails). Each connection runs a request loop: length-prefixed pull requests
// in, deliveries out. Call it on its own goroutine.
func (p *Primary) Serve(ln net.Listener) error {
	p.mu.Lock()
	if p.closed.Load() {
		p.mu.Unlock()
		ln.Close()
		return errors.New("repl: primary closed")
	}
	p.lns[ln] = struct{}{}
	p.mu.Unlock()
	defer func() {
		p.mu.Lock()
		delete(p.lns, ln)
		p.mu.Unlock()
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if p.closed.Load() {
				return nil
			}
			return err
		}
		p.mu.Lock()
		if p.closed.Load() {
			p.mu.Unlock()
			conn.Close()
			return nil
		}
		p.conns[conn] = struct{}{}
		p.wg.Add(1)
		p.mu.Unlock()
		go func() {
			defer p.wg.Done()
			p.serveConn(conn)
			p.mu.Lock()
			delete(p.conns, conn)
			p.mu.Unlock()
		}()
	}
}

// serveConn runs one follower's request loop until the connection errors or
// the primary closes.
func (p *Primary) serveConn(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReader(conn)
	var req [8 + reqPayloadLen]byte
	for !p.closed.Load() {
		if _, err := io.ReadFull(br, req[:]); err != nil {
			return
		}
		op, after, err := ParseRequest(req[:])
		if err != nil {
			return // a client speaking garbage gets a hangup, not a guess
		}
		var data []byte
		if op == opSnapshot {
			data, _, err = p.DeliverSnapshot()
		} else {
			data, err = p.buildWithPoll(after)
		}
		if err != nil {
			return
		}
		if _, err := conn.Write(data); err != nil {
			return
		}
	}
}

// buildWithPoll answers a pull, blocking up to PollWait when the follower is
// already caught up so new records ship the moment they land.
func (p *Primary) buildWithPoll(after uint64) ([]byte, error) {
	deadline := time.Now().Add(p.opts.PollWait)
	for {
		data, n, err := p.DeliverRecords(after)
		if err != nil || n > 0 {
			return data, err
		}
		if p.closed.Load() || !time.Now().Before(deadline) {
			return data, nil // empty delivery: "caught up at primarySeq"
		}
		time.Sleep(p.opts.PollInterval)
	}
}

// Close stops serving: listeners and live connections are shut and every
// per-connection goroutine is awaited. The feed itself is untouched — it
// belongs to the engine.
func (p *Primary) Close() error {
	if !p.closed.CompareAndSwap(false, true) {
		return nil
	}
	p.mu.Lock()
	for ln := range p.lns {
		ln.Close()
	}
	for conn := range p.conns {
		conn.Close()
	}
	p.mu.Unlock()
	p.wg.Wait()
	return nil
}

// LocalClient is the in-process Client over a Primary — the transport the
// oracle and fault-injection harnesses drive, and the degenerate case proving
// the protocol does not depend on TCP semantics.
type LocalClient struct{ Primary *Primary }

// Pull answers a positional pull without any long-poll wait.
func (c *LocalClient) Pull(afterSeq uint64) ([]byte, error) {
	data, _, err := c.Primary.DeliverRecords(afterSeq)
	return data, err
}

// Bootstrap answers a snapshot request.
func (c *LocalClient) Bootstrap() ([]byte, error) {
	data, _, err := c.Primary.DeliverSnapshot()
	return data, err
}

// Close is a no-op; the Primary is owned by the caller.
func (c *LocalClient) Close() error { return nil }
