package repl

import (
	"errors"
	"math/rand"
	"sync"
)

// This file is the network fault injector — the transport analogue of
// wal.MemFS's crash injection. A FaultClient wraps any Client and, driven by
// a seeded deterministic RNG, drops deliveries, replays old ones, delays and
// reorders them, truncates them mid-frame, and kills the connection once a
// byte budget is spent. The follower's contract under all of it: applied
// state always equals some record-level prefix of the primary's log, no
// record applies twice, and the applied position never rewinds.

// ErrInjected marks every failure the injector fabricates (drops, delays,
// budget kills), distinguishable from real transport errors.
var ErrInjected = errors.New("repl: injected fault")

func injectedf(kind string) error { return &injectedError{kind: kind} }

type injectedError struct{ kind string }

func (e *injectedError) Error() string        { return "repl: injected fault: " + e.kind }
func (e *injectedError) Is(target error) bool { return target == ErrInjected }

// FaultOptions sets the per-delivery fault probabilities (each in [0,1],
// rolled independently in the order documented on FaultClient.do) and the
// connection byte budget.
type FaultOptions struct {
	Seed int64
	// Drop loses the delivery outright: the follower sees an error.
	Drop float64
	// Duplicate re-delivers the previous delivery's bytes instead of pulling
	// a fresh one — a replayed shipment answering a stale position.
	Duplicate float64
	// Delay holds a freshly fetched delivery back (the follower sees an
	// error) and releases it on a later round — combined with the rounds in
	// between, that is an out-of-order delivery.
	Delay float64
	// Truncate cuts the delivered bytes at a random offset — torn mid-frame,
	// mid-header or mid-body.
	Truncate float64
	// ByteBudget kills the connection (one injected error) every time
	// roughly this many bytes have been delivered; 0 disables.
	ByteBudget int64
}

// FaultCounts reports how many of each fault actually fired, so harnesses
// can assert the schedule exercised what it claims to.
type FaultCounts struct {
	Drops, Duplicates, Delays, Reorders, Truncations, Kills int
}

// FaultClient wraps a Client with deterministic fault injection. Safe for
// concurrent use (serialised internally, like a single flaky link).
type FaultClient struct {
	inner Client
	opts  FaultOptions

	mu     sync.Mutex
	rng    *rand.Rand
	prev   []byte   // last delivery successfully handed to the follower's side of the link
	held   [][]byte // deliveries delayed in flight, oldest first
	spent  int64
	counts FaultCounts
}

// NewFaultClient wraps inner with the given fault schedule.
func NewFaultClient(inner Client, opts FaultOptions) *FaultClient {
	return &FaultClient{inner: inner, opts: opts, rng: rand.New(rand.NewSource(opts.Seed))}
}

// Counts returns how many faults have fired so far.
func (c *FaultClient) Counts() FaultCounts {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counts
}

// Pull implements Client.
func (c *FaultClient) Pull(afterSeq uint64) ([]byte, error) {
	return c.do(func() ([]byte, error) { return c.inner.Pull(afterSeq) })
}

// Bootstrap implements Client.
func (c *FaultClient) Bootstrap() ([]byte, error) {
	return c.do(func() ([]byte, error) { return c.inner.Bootstrap() })
}

// Close implements Client.
func (c *FaultClient) Close() error { return c.inner.Close() }

// do runs one faulted round trip. Order of hazards:
//
//  1. budget kill — the connection dies once ByteBudget bytes shipped
//  2. drop — the delivery is lost
//  3. duplicate — the previous delivery is replayed verbatim
//  4. release — a delayed delivery from an earlier round arrives instead of
//     the answer to this request (the reorder)
//  5. delay — the fresh delivery is held back; the follower sees an error
//  6. truncate — the delivered bytes are cut mid-frame
func (c *FaultClient) do(fetch func() ([]byte, error)) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.opts.ByteBudget > 0 && c.spent >= c.opts.ByteBudget {
		c.spent = 0
		c.counts.Kills++
		return nil, injectedf("connection killed on byte budget")
	}
	if c.rng.Float64() < c.opts.Drop {
		c.counts.Drops++
		return nil, injectedf("delivery dropped")
	}
	var data []byte
	switch {
	case c.prev != nil && c.rng.Float64() < c.opts.Duplicate:
		c.counts.Duplicates++
		data = append([]byte(nil), c.prev...)
	case len(c.held) > 0 && c.rng.Float64() < 0.5:
		c.counts.Reorders++
		data = c.held[0]
		c.held = c.held[1:]
	default:
		fresh, err := fetch()
		if err != nil {
			return nil, err
		}
		if c.rng.Float64() < c.opts.Delay {
			c.counts.Delays++
			c.held = append(c.held, fresh)
			return nil, injectedf("delivery delayed in flight")
		}
		data = fresh
	}
	c.prev = append(c.prev[:0], data...)
	if len(data) > 1 && c.rng.Float64() < c.opts.Truncate {
		c.counts.Truncations++
		data = data[:1+c.rng.Intn(len(data)-1)]
	}
	c.spent += int64(len(data))
	return data, nil
}
