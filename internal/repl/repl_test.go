package repl

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"specqp/internal/wal"
)

// fakeApplier models the follower's store as the literal recovery state:
// the installed snapshot bytes plus the records applied after it. It asserts
// the Applier contract on every call — records arrive exactly once, exactly
// in sequence.
type fakeApplier struct {
	t *testing.T

	mu       sync.Mutex
	snapSeq  uint64
	snapData []byte
	installs int
	recs     []wal.Record
	applied  uint64
}

func (a *fakeApplier) InstallSnapshot(seq uint64, r io.Reader) error {
	data, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if seq < a.applied {
		a.t.Errorf("InstallSnapshot(%d) would rewind applied %d", seq, a.applied)
	}
	a.snapSeq, a.snapData = seq, data
	a.installs++
	a.recs = a.recs[:0]
	a.applied = seq
	return nil
}

func (a *fakeApplier) Apply(r wal.Record) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if r.Seq != a.applied+1 {
		a.t.Errorf("Apply(seq %d) at applied %d breaks continuity", r.Seq, a.applied)
	}
	a.recs = append(a.recs, r)
	a.applied = r.Seq
	return nil
}

func (a *fakeApplier) AppliedSeq() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.applied
}

func (a *fakeApplier) state() (uint64, []byte, []wal.Record) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.snapSeq, a.snapData, append([]wal.Record(nil), a.recs...)
}

// plantCheckpoint writes a snapshot file with recognizable content and
// commits it through the manifest — what the engine's checkpoint does, minus
// the real store payload.
func plantCheckpoint(t *testing.T, fs wal.FS, seq uint64) []byte {
	t.Helper()
	content := []byte(fmt.Sprintf("snapshot@%d", seq))
	name := wal.SnapshotName(seq)
	f, err := fs.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(content); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := wal.WriteManifest(fs, wal.Manifest{Snapshot: name, SnapshotSeq: seq}); err != nil {
		t.Fatal(err)
	}
	return content
}

func shipRec(i int) wal.Record {
	if i%5 == 4 {
		return wal.Record{Kind: wal.KindTombstone, S: fmt.Sprintf("s%d", i-1), P: "p", O: fmt.Sprintf("o%d", i-1)}
	}
	return wal.Record{Kind: wal.KindInsert, S: fmt.Sprintf("s%d", i), P: "p", O: fmt.Sprintf("o%d", i), Score: float64(i%7) + 0.25}
}

// shipFixture builds a primary over a MemFS log with n appended records.
func shipFixture(t *testing.T, n int) (wal.FS, *wal.Log, *Primary) {
	t.Helper()
	fs := wal.NewMemFS()
	plantCheckpoint(t, fs, 0)
	l, _, err := wal.Open(fs, wal.Options{Policy: wal.SyncAlways, SegmentSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	for i := 0; i < n; i++ {
		if err := l.Append(shipRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	return fs, l, NewPrimary(wal.NewFeed(fs, l), PrimaryOptions{MaxBatchBytes: 256, PollWait: -1})
}

// driveTo steps the follower until the applier reaches the target position,
// tolerating injected faults and the torn deliveries they produce (both are
// retryable by design — only a real failure is fatal).
func driveTo(t *testing.T, f *Follower, a *fakeApplier, target uint64, maxSteps int) {
	t.Helper()
	for steps := 1; steps <= maxSteps; steps++ {
		if a.AppliedSeq() >= target {
			return
		}
		if _, err := f.Step(); err != nil && !errors.Is(err, ErrInjected) && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("step %d: %v", steps, err)
		}
	}
	t.Fatalf("follower stuck at %d of %d after %d steps", a.AppliedSeq(), target, maxSteps)
}

func assertCaughtUp(t *testing.T, a *fakeApplier, snapContent []byte, snapSeq uint64, n int) {
	t.Helper()
	gotSnapSeq, gotSnap, recs := a.state()
	if gotSnapSeq != snapSeq {
		t.Fatalf("snapshot seq = %d, want %d", gotSnapSeq, snapSeq)
	}
	if string(gotSnap) != string(snapContent) {
		t.Fatalf("snapshot content = %q, want %q", gotSnap, snapContent)
	}
	if a.AppliedSeq() != uint64(n) {
		t.Fatalf("applied = %d, want %d", a.AppliedSeq(), n)
	}
	for i, r := range recs {
		wantSeq := snapSeq + uint64(i) + 1
		want := shipRec(int(wantSeq) - 1)
		want.Seq = wantSeq
		if r != want {
			t.Fatalf("applied record %d = %+v, want %+v", i, r, want)
		}
	}
}

func TestFollowerCatchesUpLocal(t *testing.T) {
	const n = 40
	fs, _, p := shipFixture(t, n)
	snap := plantCheckpoint(t, fs, 0) // rewrite so content is deterministic
	a := &fakeApplier{t: t}
	f := NewFollower(&LocalClient{Primary: p}, a, FollowerOptions{})
	driveTo(t, f, a, n, 200)
	assertCaughtUp(t, a, snap, 0, n)
	if a.installs != 1 {
		t.Fatalf("installs = %d, want exactly one bootstrap snapshot", a.installs)
	}
}

func TestFollowerJoinsMidStreamAfterTruncation(t *testing.T) {
	const n = 60
	fs, l, p := shipFixture(t, n)
	// Checkpoint at 45 and truncate: a fresh follower must bootstrap from the
	// snapshot and replay only 46..60.
	snap := plantCheckpoint(t, fs, 45)
	if err := l.TruncateThrough(45); err != nil {
		t.Fatal(err)
	}
	a := &fakeApplier{t: t}
	f := NewFollower(&LocalClient{Primary: p}, a, FollowerOptions{})
	driveTo(t, f, a, n, 200)
	assertCaughtUp(t, a, snap, 45, n)
}

func TestFollowerFallsBackToSnapshotWhenLagTruncated(t *testing.T) {
	const n = 30
	fs, l, p := shipFixture(t, n)
	plantCheckpoint(t, fs, 0)
	a := &fakeApplier{t: t}
	f := NewFollower(&LocalClient{Primary: p}, a, FollowerOptions{})
	// Apply a short prefix only.
	if _, err := f.Step(); err != nil { // bootstrap
		t.Fatal(err)
	}
	if _, err := f.Step(); err != nil { // first batch
		t.Fatal(err)
	}
	lagged := a.AppliedSeq()
	if lagged == 0 || lagged == n {
		t.Fatalf("fixture produced no lag window (applied %d)", lagged)
	}
	// The primary checkpoints beyond the follower's position and truncates.
	cpSeq := lagged + 10
	snap := plantCheckpoint(t, fs, cpSeq)
	if err := l.TruncateThrough(cpSeq); err != nil {
		t.Fatal(err)
	}
	driveTo(t, f, a, n, 200)
	if a.installs != 2 {
		t.Fatalf("installs = %d, want bootstrap + truncation fallback", a.installs)
	}
	assertCaughtUp(t, a, snap, cpSeq, n)
}

func TestFollowerTailsLiveAppends(t *testing.T) {
	fs, l, p := shipFixture(t, 10)
	snap := plantCheckpoint(t, fs, 0)
	a := &fakeApplier{t: t}
	f := NewFollower(&LocalClient{Primary: p}, a, FollowerOptions{})
	driveTo(t, f, a, 10, 100)
	for i := 10; i < 25; i++ {
		if err := l.Append(shipRec(i)); err != nil {
			t.Fatal(err)
		}
		driveTo(t, f, a, uint64(i)+1, 100)
	}
	assertCaughtUp(t, a, snap, 0, 25)
}

func TestNetClientOverTCP(t *testing.T) {
	const n = 35
	fs, l, p := shipFixture(t, n)
	snap := plantCheckpoint(t, fs, 0)
	p.opts.PollWait = 50 * time.Millisecond
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go p.Serve(ln)
	defer p.Close()

	c := NewNetClient(ln.Addr().String(), NetClientOptions{IOTimeout: 2 * time.Second})
	defer c.Close()
	a := &fakeApplier{t: t}
	f := NewFollower(c, a, FollowerOptions{})
	driveTo(t, f, a, n, 200)
	assertCaughtUp(t, a, snap, 0, n)

	// Disconnect mid-stream: the next pull redials and resumes from the
	// applied position — nothing re-applies, nothing is skipped.
	c.Close()
	for i := n; i < n+12; i++ {
		if err := l.Append(shipRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	driveTo(t, f, a, n+12, 200)
	assertCaughtUp(t, a, snap, 0, n+12)
}

func TestFaultClientConvergesUnderAllFaults(t *testing.T) {
	for _, seed := range []int64{1, 7, 1234, 99991} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			const n = 80
			fs, l, p := shipFixture(t, n)
			snap := plantCheckpoint(t, fs, 0)
			fc := NewFaultClient(&LocalClient{Primary: p}, FaultOptions{
				Seed:       seed,
				Drop:       0.15,
				Duplicate:  0.15,
				Delay:      0.15,
				Truncate:   0.2,
				ByteBudget: 4096,
			})
			a := &fakeApplier{t: t}
			f := NewFollower(fc, a, FollowerOptions{})
			driveTo(t, f, a, n, 5000)
			// Live appends while the link keeps misbehaving.
			for i := n; i < n+20; i++ {
				if err := l.Append(shipRec(i)); err != nil {
					t.Fatal(err)
				}
			}
			driveTo(t, f, a, n+20, 5000)
			assertCaughtUp(t, a, snap, 0, n+20)
			c := fc.Counts()
			if c.Drops == 0 || c.Duplicates == 0 || c.Delays == 0 || c.Truncations == 0 || c.Kills == 0 {
				t.Fatalf("fault schedule did not exercise every hazard: %+v", c)
			}
		})
	}
}

func TestRequestRoundTrip(t *testing.T) {
	for _, op := range []byte{opPull, opSnapshot} {
		buf := AppendRequest(nil, op, 7777)
		gotOp, after, err := ParseRequest(buf)
		if err != nil || gotOp != op || after != 7777 {
			t.Fatalf("round trip op=%d: got (%d, %d, %v)", op, gotOp, after, err)
		}
	}
	if _, _, err := ParseRequest([]byte("short")); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("short request = %v, want ErrCorrupt", err)
	}
	buf := AppendRequest(nil, opPull, 1)
	buf[9]++ // flip a payload byte under the CRC
	if _, _, err := ParseRequest(buf); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt request = %v, want ErrCorrupt", err)
	}
}

func TestParseDeliveryRejectsTornSnapshot(t *testing.T) {
	fs, _, p := shipFixture(t, 3)
	plantCheckpoint(t, fs, 0)
	data, _, err := p.DeliverSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseDelivery(data[:len(data)-1]); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("torn snapshot = %v, want ErrCorrupt", err)
	}
	if _, err := ParseDelivery(data); err != nil {
		t.Fatalf("whole snapshot rejected: %v", err)
	}
}

func TestParseDeliveryTornRecordsYieldPrefix(t *testing.T) {
	_, _, p := shipFixture(t, 10)
	data, n, err := p.DeliverRecords(0)
	if err != nil || n == 0 {
		t.Fatalf("DeliverRecords: n=%d err=%v", n, err)
	}
	whole, err := ParseDelivery(data)
	if err != nil {
		t.Fatal(err)
	}
	for cut := HeaderFrameLen; cut < len(data); cut += 7 {
		d, err := ParseDelivery(data[:cut])
		if err != nil {
			t.Fatalf("torn records at %d rejected: %v", cut, err)
		}
		if len(d.Records) > len(whole.Records) {
			t.Fatalf("torn delivery yields more records than the whole one")
		}
		for i, r := range d.Records {
			if r != whole.Records[i] {
				t.Fatalf("torn prefix record %d differs", i)
			}
		}
	}
}
