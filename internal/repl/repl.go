// Package repl is WAL log shipping: a primary serves its write-ahead log and
// checkpoints to followers over a length-prefixed, CRC-framed protocol, and a
// follower applies what it receives exactly like crash recovery would — the
// snapshot restart rule when its position has been truncated away, torn-tail
// truncation of partial deliveries, and strict sequence-continuity chaining,
// so a replayed, reordered or torn delivery can never apply a record twice or
// out of order.
//
// The wire format reuses the WAL's own record framing (a shipped record and a
// logged record are the same bytes — see wal.FrameRecord) and the v2 binary
// snapshot format, so the follower's ingest path is the recovery path with a
// socket where the directory used to be.
//
// Layout (all integers little-endian):
//
//	request  := u32 payloadLen | u32 crc32c(payload) | payload
//	payload  := u8 version | u8 op | u64 afterSeq
//	             op 1 (pull): records with Seq > afterSeq
//	             op 2 (snapshot): the current checkpoint, for bootstrap
//
//	delivery := header | body
//	header   := u32 payloadLen | u32 crc32c(payload) | payload
//	payload  := u8 version | u8 type | u64 bodyLen | u32 bodyCRC |
//	            u64 seq | u64 primarySeq
//	body     := type 1 (records): concatenated WAL record frames
//	            type 2 (snapshot): v2 binary snapshot, crc32c == bodyCRC
//
// A records body is self-verifying per record (each frame carries its own
// CRC), so a mid-frame truncation yields a shorter valid prefix — the WAL's
// torn-tail rule on the wire. A snapshot body is all-or-nothing: bodyCRC must
// cover it exactly or the delivery is rejected. seq is the position of the
// last record in the body (type 1) or the position the snapshot covers
// (type 2); primarySeq is the primary's newest position at build time, which
// is what the follower derives its lag gauge from.
package repl

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"specqp/internal/wal"
)

const (
	// protoVersion is the only wire version this package speaks. Bumped on
	// any layout change; both ends reject versions they do not know.
	protoVersion = byte(1)

	// Request operations.
	opPull     = byte(1)
	opSnapshot = byte(2)

	// Delivery body types.
	DeliveryRecords  = byte(1)
	DeliverySnapshot = byte(2)

	reqPayloadLen = 1 + 1 + 8
	hdrPayloadLen = 1 + 1 + 8 + 4 + 8 + 8

	// HeaderFrameLen is the fixed byte length of a delivery header frame
	// (and, with reqPayloadLen, of a request frame).
	HeaderFrameLen = 8 + hdrPayloadLen
)

// castagnoli matches the WAL's CRC32C polynomial — one checksum discipline
// end to end.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports a delivery or request that failed structural or CRC
// validation. Torn frames, hostile lengths and replay residue all land here;
// the receiver drops the delivery and re-pulls.
var ErrCorrupt = errors.New("repl: corrupt frame")

// corruptf wraps a detail message so errors.Is(err, ErrCorrupt) holds.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{ErrCorrupt}, args...)...)
}

// AppendRequest frames one request onto buf.
func AppendRequest(buf []byte, op byte, afterSeq uint64) []byte {
	start := len(buf)
	buf = binary.LittleEndian.AppendUint32(buf, reqPayloadLen)
	buf = binary.LittleEndian.AppendUint32(buf, 0) // CRC patched below
	pstart := len(buf)
	buf = append(buf, protoVersion, op)
	buf = binary.LittleEndian.AppendUint64(buf, afterSeq)
	binary.LittleEndian.PutUint32(buf[start+4:], crc32.Checksum(buf[pstart:], castagnoli))
	return buf
}

// ParseRequest decodes one request frame.
func ParseRequest(data []byte) (op byte, afterSeq uint64, err error) {
	if len(data) < 8 {
		return 0, 0, corruptf("request truncated (%d bytes)", len(data))
	}
	plen := binary.LittleEndian.Uint32(data[:4])
	crc := binary.LittleEndian.Uint32(data[4:8])
	if plen != reqPayloadLen {
		return 0, 0, corruptf("request payload length %d, want %d", plen, reqPayloadLen)
	}
	if len(data) < 8+reqPayloadLen {
		return 0, 0, corruptf("request truncated (%d bytes)", len(data))
	}
	p := data[8 : 8+reqPayloadLen]
	if crc32.Checksum(p, castagnoli) != crc {
		return 0, 0, corruptf("request crc mismatch")
	}
	if p[0] != protoVersion {
		return 0, 0, corruptf("unsupported protocol version %d", p[0])
	}
	op = p[1]
	if op != opPull && op != opSnapshot {
		return 0, 0, corruptf("unknown request op %d", op)
	}
	return op, binary.LittleEndian.Uint64(p[2:]), nil
}

// appendDeliveryHeader frames a delivery header onto buf.
func appendDeliveryHeader(buf []byte, typ byte, bodyLen uint64, bodyCRC uint32, seq, primarySeq uint64) []byte {
	start := len(buf)
	buf = binary.LittleEndian.AppendUint32(buf, hdrPayloadLen)
	buf = binary.LittleEndian.AppendUint32(buf, 0) // CRC patched below
	pstart := len(buf)
	buf = append(buf, protoVersion, typ)
	buf = binary.LittleEndian.AppendUint64(buf, bodyLen)
	buf = binary.LittleEndian.AppendUint32(buf, bodyCRC)
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	buf = binary.LittleEndian.AppendUint64(buf, primarySeq)
	binary.LittleEndian.PutUint32(buf[start+4:], crc32.Checksum(buf[pstart:], castagnoli))
	return buf
}

// Header is a delivery's parsed header.
type Header struct {
	Type       byte
	BodyLen    uint64
	BodyCRC    uint32
	Seq        uint64
	PrimarySeq uint64
}

// ParseHeader decodes the fixed-size delivery header at the front of data.
// It is the transport's gatekeeper: a client must validate the header (and
// with it the claimed body length) before allocating anything for the body.
func ParseHeader(data []byte) (Header, error) {
	var h Header
	if len(data) < 8 {
		return h, corruptf("delivery header truncated (%d bytes)", len(data))
	}
	plen := binary.LittleEndian.Uint32(data[:4])
	crc := binary.LittleEndian.Uint32(data[4:8])
	if plen != hdrPayloadLen {
		return h, corruptf("delivery header payload length %d, want %d", plen, hdrPayloadLen)
	}
	if len(data) < HeaderFrameLen {
		return h, corruptf("delivery header truncated (%d bytes)", len(data))
	}
	p := data[8:HeaderFrameLen]
	if crc32.Checksum(p, castagnoli) != crc {
		return h, corruptf("delivery header crc mismatch")
	}
	if p[0] != protoVersion {
		return h, corruptf("unsupported protocol version %d", p[0])
	}
	h.Type = p[1]
	if h.Type != DeliveryRecords && h.Type != DeliverySnapshot {
		return h, corruptf("unknown delivery type %d", h.Type)
	}
	h.BodyLen = binary.LittleEndian.Uint64(p[2:])
	h.BodyCRC = binary.LittleEndian.Uint32(p[10:])
	h.Seq = binary.LittleEndian.Uint64(p[14:])
	h.PrimarySeq = binary.LittleEndian.Uint64(p[22:])
	return h, nil
}

// Delivery is one parsed shipment from the primary.
type Delivery struct {
	Type       byte
	Seq        uint64 // last record position (records) or covered position (snapshot)
	PrimarySeq uint64 // primary's newest position at build time
	Records    []wal.Record
	Snapshot   []byte // v2 binary snapshot bytes, CRC-verified
}

// ParseDelivery is the follower's single, paranoid ingest point: every byte
// of a delivery — header CRC, version, type, body bounds — is re-verified
// here before anything is applied. Length fields are attacker-ish data (a
// torn transport can produce anything), so allocations grow only with bytes
// actually present, never with a claimed length.
//
// A records body parses to its valid record prefix (per-record CRC plus
// framing, the WAL torn-tail rule), so a mid-frame truncation shortens the
// delivery instead of corrupting it; the parsed records always re-frame to a
// byte prefix of the body. A snapshot body must match its CRC in full or the
// whole delivery is rejected — half a snapshot is not a smaller snapshot.
func ParseDelivery(data []byte) (Delivery, error) {
	var d Delivery
	h, err := ParseHeader(data)
	if err != nil {
		return d, err
	}
	d.Type = h.Type
	d.Seq = h.Seq
	d.PrimarySeq = h.PrimarySeq
	body := data[HeaderFrameLen:]
	switch h.Type {
	case DeliverySnapshot:
		if uint64(len(body)) < h.BodyLen {
			return d, corruptf("snapshot body truncated (%d of %d bytes)", len(body), h.BodyLen)
		}
		body = body[:h.BodyLen]
		if crc32.Checksum(body, castagnoli) != h.BodyCRC {
			return d, corruptf("snapshot body crc mismatch")
		}
		d.Snapshot = body
		return d, nil
	default: // DeliveryRecords, per ParseHeader
		if uint64(len(body)) > h.BodyLen {
			body = body[:h.BodyLen]
		}
		// first=0 skips the reader's continuity check: batch continuity is
		// the applier's concern (it must also hold across deliveries), and a
		// replayed delivery legitimately starts below the current position.
		_, rerr := wal.ReadRecords(bytes.NewReader(body), 0, func(r wal.Record) error {
			d.Records = append(d.Records, r)
			return nil
		})
		if rerr != nil {
			return d, rerr // unreachable: the callback never fails
		}
		return d, nil
	}
}
