// Package metrics implements the quality metrics of the paper's Section 4.3:
// precision/recall of the Spec-QP top-k against TriniT's true top-k,
// prediction accuracy of the speculated relaxation sets, and average score
// error with standard deviation.
package metrics

import (
	"math"

	"specqp/internal/kg"
)

// Precision returns the fraction of true top-k answers (truth) present in
// the approximate top-k (approx), comparing answers by binding. With both
// lists cut at the same k, precision and recall coincide (the paper's note in
// Section 4.3); Recall is provided for symmetry.
func Precision(approx, truth []kg.Answer, k int) float64 {
	if k <= 0 {
		return 1
	}
	if len(approx) > k {
		approx = approx[:k]
	}
	if len(truth) > k {
		truth = truth[:k]
	}
	if len(truth) == 0 {
		if len(approx) == 0 {
			return 1
		}
		return 0
	}
	truthSet := make(map[string]bool, len(truth))
	for _, a := range truth {
		truthSet[a.Binding.Key()] = true
	}
	hit := 0
	for _, a := range approx {
		if truthSet[a.Binding.Key()] {
			hit++
		}
	}
	denom := len(truth)
	if len(approx) > denom {
		denom = len(approx)
	}
	return float64(hit) / float64(denom)
}

// Recall returns the fraction of the approximate top-k present in the true
// top-k; identical to Precision when both lists have k entries.
func Recall(approx, truth []kg.Answer, k int) float64 {
	return Precision(truth, approx, k)
}

// ScoreError computes the average absolute per-rank score deviation between
// the approximate and true top-k lists, with its standard deviation
// (Section 4.5.3's metric). Ranks missing on either side contribute the
// score present on the other side (deviation from an absent answer).
func ScoreError(approx, truth []kg.Answer, k int) (mean, std float64) {
	if k <= 0 {
		return 0, 0
	}
	devs := make([]float64, 0, k)
	for i := 0; i < k; i++ {
		var sa, st float64
		var have bool
		if i < len(approx) {
			sa = approx[i].Score
			have = true
		}
		if i < len(truth) {
			st = truth[i].Score
			have = true
		}
		if !have {
			break
		}
		devs = append(devs, math.Abs(sa-st))
	}
	if len(devs) == 0 {
		return 0, 0
	}
	for _, d := range devs {
		mean += d
	}
	mean /= float64(len(devs))
	for _, d := range devs {
		std += (d - mean) * (d - mean)
	}
	std = math.Sqrt(std / float64(len(devs)))
	return mean, std
}

// RequiredRelaxations derives, from the true top-k answer provenance, the
// set of pattern indexes whose relaxations contribute at least one true
// top-k answer — the ground truth against which speculation is judged
// (Table 3). The result is a bitmask over pattern indexes.
func RequiredRelaxations(truth []kg.Answer, k int) uint32 {
	if len(truth) > k {
		truth = truth[:k]
	}
	var m uint32
	for _, a := range truth {
		m |= a.Relaxed
	}
	return m
}

// PredictionExact reports whether the speculated relaxation set (a bitmask)
// identifies exactly the required relaxations.
func PredictionExact(predicted, required uint32) bool { return predicted == required }

// PredictionSuperset reports whether the speculation covers all required
// relaxations (it may relax more than needed — correctness-preserving but
// slower). Useful as a softer diagnostic alongside Table 3's exact match.
func PredictionSuperset(predicted, required uint32) bool {
	return predicted&required == required
}

// CountBits returns the number of set bits (patterns) in a relaxation mask.
func CountBits(m uint32) int {
	c := 0
	for ; m != 0; m &= m - 1 {
		c++
	}
	return c
}
