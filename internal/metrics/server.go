// Server-side observability for the query service (internal/server): cheap
// atomic counters for the admission/shedding/degradation pipeline and a
// log-bucketed latency histogram with quantile estimation. Everything here is
// lock-free on the hot path — one atomic add per event — so instrumentation
// never becomes the bottleneck it is supposed to measure.
package metrics

import (
	"fmt"
	"io"
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the number of log2 latency buckets: bucket i counts
// observations in [2^i, 2^(i+1)) microseconds, covering sub-microsecond to
// ~18 minutes, far beyond any serving deadline.
const histBuckets = 31

// Histogram is a fixed log2-bucketed latency histogram safe for concurrent
// use. The zero value is ready.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // microseconds
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	i := bits.Len64(uint64(us)) // 0 for 0us, else floor(log2)+1
	if i >= histBuckets {
		i = histBuckets - 1
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(us)
}

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Mean returns the average observed latency (0 with no samples).
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load()/n) * time.Microsecond
}

// Quantile estimates the q-quantile (0 < q <= 1) as the upper bound of the
// bucket where the cumulative count crosses q — a conservative estimate whose
// error is bounded by the 2x bucket width. Returns 0 with no samples.
func (h *Histogram) Quantile(q float64) time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	target := int64(q * float64(n))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= target {
			// Bucket i holds [2^(i-1), 2^i) us (bucket 0 is exactly 0us).
			return time.Duration(int64(1)<<uint(i)) * time.Microsecond
		}
	}
	return time.Duration(int64(1)<<uint(histBuckets)) * time.Microsecond
}

// ServerMetrics aggregates the query service's counters. All fields are
// atomics; the zero value is ready. The names mirror the /metrics exposition.
type ServerMetrics struct {
	// Admission pipeline.
	Requests     atomic.Int64 // requests that reached admission control
	Accepted     atomic.Int64 // requests that acquired an execution slot
	ShedRate     atomic.Int64 // shed by a per-client token bucket (429)
	ShedQueue    atomic.Int64 // shed because the accept queue was full (429)
	ShedDraining atomic.Int64 // refused because the server is draining (503)
	ShedCanceled atomic.Int64 // client gave up while waiting in the accept queue (503)

	// Execution.
	EngineQueries atomic.Int64 // queries actually handed to the engine
	QueryErrors   atomic.Int64 // non-deadline query failures
	Expired       atomic.Int64 // queries that hit their deadline mid-flight
	Degraded      atomic.Int64 // queries served at a degraded tier (>=1)

	// Streaming.
	StreamedAnswers atomic.Int64 // answers flushed as individual NDJSON lines

	// Mutations.
	Mutations      atomic.Int64 // mutations handed to the engine
	MutationErrors atomic.Int64 // failed mutations (incl. wedged-log refusals)

	// Latency of accepted queries, admission to response.
	Latency Histogram
	// FirstAnswer is the time-to-first-answer of streamed queries: admission
	// to the first proven-final answer hitting the wire. Comparing its
	// quantiles against Latency's is the streaming payoff made observable —
	// the gap is the drain time a streaming client no longer waits through.
	FirstAnswer Histogram
}

// WriteText renders the counters in Prometheus text exposition format.
func (m *ServerMetrics) WriteText(w io.Writer) {
	c := func(name string, v int64) { fmt.Fprintf(w, "specqp_%s %d\n", name, v) }
	c("requests_total", m.Requests.Load())
	c("accepted_total", m.Accepted.Load())
	c("shed_rate_total", m.ShedRate.Load())
	c("shed_queue_total", m.ShedQueue.Load())
	c("shed_draining_total", m.ShedDraining.Load())
	c("shed_canceled_total", m.ShedCanceled.Load())
	c("engine_queries_total", m.EngineQueries.Load())
	c("query_errors_total", m.QueryErrors.Load())
	c("query_deadline_exceeded_total", m.Expired.Load())
	c("degraded_responses_total", m.Degraded.Load())
	c("streamed_answers_total", m.StreamedAnswers.Load())
	c("mutations_total", m.Mutations.Load())
	c("mutation_errors_total", m.MutationErrors.Load())
	writeHistText(w, "query_latency", &m.Latency)
	writeHistText(w, "first_answer_latency", &m.FirstAnswer)
}

// writeHistText renders one histogram under the given metric stem: a
// conformant Prometheus histogram family `specqp_<stem>_us` (cumulative
// `_bucket{le="..."}` series over the log2 buckets, `_sum`, `_count`), plus
// the original summary gauges (`_count`, `_mean_us`, `_p50/_p90/_p99_us`)
// kept for scrape configs and dashboards written against the old exposition.
//
// Bucket i of the histogram holds integer-microsecond samples with
// bits.Len64(us) == i — exactly [2^(i-1), 2^i) for i >= 1 and {0} for i = 0 —
// so its inclusive upper bound is 2^i - 1, which is what each `le` label
// carries. Earlier versions emitted no buckets at all and no `_sum`, which
// made the `_count` line parse as a counter fragment of a family that never
// materialised; a strict text-format parser (and the conformance test)
// rejects that.
func writeHistText(w io.Writer, stem string, h *Histogram) {
	family := "specqp_" + stem + "_us"
	fmt.Fprintf(w, "# TYPE %s histogram\n", family)
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", family, (int64(1)<<uint(i))-1, cum)
	}
	count := h.Count()
	if count < cum {
		// A sample raced in between the bucket loads and the count load;
		// keep the series monotone (the +Inf bucket must not undercut the
		// last finite one).
		count = cum
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", family, count)
	fmt.Fprintf(w, "%s_sum %d\n", family, h.sum.Load())
	fmt.Fprintf(w, "%s_count %d\n", family, count)

	fmt.Fprintf(w, "specqp_%s_count %d\n", stem, count)
	fmt.Fprintf(w, "specqp_%s_mean_us %d\n", stem, h.Mean().Microseconds())
	for _, q := range []struct {
		name string
		q    float64
	}{{"p50", 0.50}, {"p90", 0.90}, {"p99", 0.99}} {
		fmt.Fprintf(w, "specqp_%s_%s_us %d\n", stem, q.name, h.Quantile(q.q).Microseconds())
	}
}
