package metrics

import (
	"math"
	"testing"

	"specqp/internal/kg"
)

func ans(id kg.ID, score float64, relaxed uint32) kg.Answer {
	b := kg.NewBinding(1)
	b[0] = id
	return kg.Answer{Binding: b, Score: score, Relaxed: relaxed}
}

func TestPrecisionPerfect(t *testing.T) {
	truth := []kg.Answer{ans(1, 3, 0), ans(2, 2, 0), ans(3, 1, 0)}
	if got := Precision(truth, truth, 3); got != 1 {
		t.Fatalf("identical lists: got %v", got)
	}
}

func TestPrecisionPartialOverlap(t *testing.T) {
	truth := []kg.Answer{ans(1, 3, 0), ans(2, 2, 0), ans(3, 1, 0)}
	approx := []kg.Answer{ans(1, 3, 0), ans(9, 2.5, 0), ans(3, 1, 0)}
	if got := Precision(approx, truth, 3); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("got %v want 2/3", got)
	}
	if got := Recall(approx, truth, 3); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("recall: got %v want 2/3", got)
	}
}

func TestPrecisionCutsAtK(t *testing.T) {
	truth := []kg.Answer{ans(1, 3, 0), ans(2, 2, 0), ans(3, 1, 0)}
	approx := []kg.Answer{ans(3, 9, 0), ans(1, 8, 0), ans(2, 7, 0)}
	// At k=1 only {3} vs {1}: no overlap.
	if got := Precision(approx, truth, 1); got != 0 {
		t.Fatalf("k=1: got %v want 0", got)
	}
	if got := Precision(approx, truth, 3); got != 1 {
		t.Fatalf("k=3: got %v want 1", got)
	}
}

func TestPrecisionEmptyCases(t *testing.T) {
	if got := Precision(nil, nil, 5); got != 1 {
		t.Fatalf("both empty: got %v want 1", got)
	}
	truth := []kg.Answer{ans(1, 1, 0)}
	if got := Precision(nil, truth, 5); got != 0 {
		t.Fatalf("empty approx: got %v want 0", got)
	}
	if got := Precision(truth, nil, 5); got != 0 {
		t.Fatalf("empty truth, non-empty approx: got %v want 0", got)
	}
	if got := Precision(truth, truth, 0); got != 1 {
		t.Fatalf("k=0: got %v", got)
	}
}

func TestScoreError(t *testing.T) {
	truth := []kg.Answer{ans(1, 3, 0), ans(2, 2, 0)}
	approx := []kg.Answer{ans(1, 2.5, 0), ans(9, 2, 0)}
	mean, std := ScoreError(approx, truth, 2)
	// Deviations: |2.5−3| = 0.5, |2−2| = 0.
	if math.Abs(mean-0.25) > 1e-12 {
		t.Fatalf("mean: got %v want 0.25", mean)
	}
	if math.Abs(std-0.25) > 1e-12 {
		t.Fatalf("std: got %v want 0.25", std)
	}
}

func TestScoreErrorIdenticalLists(t *testing.T) {
	truth := []kg.Answer{ans(1, 3, 0), ans(2, 2, 0)}
	mean, std := ScoreError(truth, truth, 2)
	if mean != 0 || std != 0 {
		t.Fatalf("identical: got %v±%v", mean, std)
	}
}

func TestScoreErrorMissingRanks(t *testing.T) {
	truth := []kg.Answer{ans(1, 3, 0), ans(2, 2, 0)}
	approx := []kg.Answer{ans(1, 3, 0)}
	mean, _ := ScoreError(approx, truth, 2)
	// Rank 2 deviation is the full truth score 2: mean = (0+2)/2 = 1.
	if math.Abs(mean-1) > 1e-12 {
		t.Fatalf("missing rank mean: got %v want 1", mean)
	}
	if m, s := ScoreError(nil, nil, 3); m != 0 || s != 0 {
		t.Fatalf("both empty: %v±%v", m, s)
	}
}

func TestRequiredRelaxations(t *testing.T) {
	truth := []kg.Answer{ans(1, 3, 0), ans(2, 2, 0b10), ans(3, 1, 0b101)}
	if got := RequiredRelaxations(truth, 3); got != 0b111 {
		t.Fatalf("mask: got %b want 111", got)
	}
	// Cut at k=1: only the unrelaxed answer counts.
	if got := RequiredRelaxations(truth, 1); got != 0 {
		t.Fatalf("k=1 mask: got %b want 0", got)
	}
}

func TestPredictionPredicates(t *testing.T) {
	if !PredictionExact(0b101, 0b101) {
		t.Fatal("exact match not detected")
	}
	if PredictionExact(0b111, 0b101) {
		t.Fatal("superset reported exact")
	}
	if !PredictionSuperset(0b111, 0b101) {
		t.Fatal("superset not detected")
	}
	if PredictionSuperset(0b001, 0b101) {
		t.Fatal("subset reported superset")
	}
}

func TestCountBits(t *testing.T) {
	for mask, want := range map[uint32]int{0: 0, 1: 1, 0b1011: 3, 0xFFFFFFFF: 32} {
		if got := CountBits(mask); got != want {
			t.Errorf("mask %b: got %d want %d", mask, got, want)
		}
	}
}
