package metrics

import (
	"fmt"
	"io"
	"sync/atomic"
)

// ReplicationMetrics is the follower-side observability of WAL log shipping
// (internal/repl): position gauges the health surface derives lag from, plus
// event counters for deliveries, redials and rejected frames. All fields are
// atomics; the zero value is ready. A nil-checked pointer to this struct is
// how the serving layer knows it is fronting a replica at all.
type ReplicationMetrics struct {
	// Position gauges. appliedSeq is the last WAL sequence number applied to
	// the local store; primarySeq is the newest sequence number the primary
	// reported. Both are set monotonically — a reordered or replayed delivery
	// carries stale positions and must not rewind the gauges.
	appliedSeq atomic.Uint64
	primarySeq atomic.Uint64
	// connected is 1 while the tailing loop's last round trip succeeded.
	connected atomic.Bool

	// Event counters.
	Deliveries         atomic.Int64 // deliveries parsed successfully
	RecordsApplied     atomic.Int64 // records applied to the local store
	SnapshotsInstalled atomic.Int64 // full snapshot installs (bootstrap + truncation fallback)
	Redials            atomic.Int64 // reconnects after a transport failure
	Corrupt            atomic.Int64 // deliveries rejected as torn or corrupt
}

// SetApplied advances the applied-position gauge, monotonically.
func (m *ReplicationMetrics) SetApplied(seq uint64) { storeMax(&m.appliedSeq, seq) }

// SetPrimary advances the primary-position gauge, monotonically.
func (m *ReplicationMetrics) SetPrimary(seq uint64) { storeMax(&m.primarySeq, seq) }

// SetConnected records whether the last round trip to the primary succeeded.
func (m *ReplicationMetrics) SetConnected(ok bool) { m.connected.Store(ok) }

// AppliedSeq returns the last applied WAL sequence number.
func (m *ReplicationMetrics) AppliedSeq() uint64 { return m.appliedSeq.Load() }

// PrimarySeq returns the newest primary position observed.
func (m *ReplicationMetrics) PrimarySeq() uint64 { return m.primarySeq.Load() }

// Connected reports whether the last round trip to the primary succeeded.
func (m *ReplicationMetrics) Connected() bool { return m.connected.Load() }

// Lag returns the replication lag in WAL sequence numbers: how far the
// primary's newest observed position is ahead of the locally applied one.
func (m *ReplicationMetrics) Lag() uint64 {
	p, a := m.primarySeq.Load(), m.appliedSeq.Load()
	if p <= a {
		return 0
	}
	return p - a
}

// storeMax advances g to v unless it is already at or past it.
func storeMax(g *atomic.Uint64, v uint64) {
	for {
		cur := g.Load()
		if v <= cur || g.CompareAndSwap(cur, v) {
			return
		}
	}
}

// WriteText renders the replication gauges and counters in Prometheus text
// exposition format, alongside ServerMetrics.WriteText on a follower.
func (m *ReplicationMetrics) WriteText(w io.Writer) {
	c := func(name string, v int64) { fmt.Fprintf(w, "specqp_%s %d\n", name, v) }
	fmt.Fprintf(w, "specqp_replica_applied_seq %d\n", m.AppliedSeq())
	fmt.Fprintf(w, "specqp_replica_primary_seq %d\n", m.PrimarySeq())
	fmt.Fprintf(w, "specqp_replica_lag_seq %d\n", m.Lag())
	connected := 0
	if m.Connected() {
		connected = 1
	}
	fmt.Fprintf(w, "specqp_replica_connected %d\n", connected)
	c("repl_deliveries_total", m.Deliveries.Load())
	c("repl_records_applied_total", m.RecordsApplied.Load())
	c("repl_snapshots_installed_total", m.SnapshotsInstalled.Load())
	c("repl_redials_total", m.Redials.Load())
	c("repl_corrupt_deliveries_total", m.Corrupt.Load())
}
