package wal

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// SyncPolicy selects when appended records are fsynced.
type SyncPolicy int

const (
	// SyncAlways fsyncs before acknowledging an append — no acked insert is
	// ever lost. Concurrent appenders share fsyncs through group commit: all
	// records buffered while one fsync is in flight are written and synced
	// as a single batch by the next commit leader.
	SyncAlways SyncPolicy = iota
	// SyncInterval acknowledges after the write and fsyncs in the
	// background at most every Interval: a crash loses at most the last
	// interval's acks, never a prefix-hole.
	SyncInterval
	// SyncNone never fsyncs explicitly; the OS decides. Cheapest, weakest.
	SyncNone
)

// String implements fmt.Stringer.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNone:
		return "none"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// ParseSyncPolicy parses "always", "interval" or "none".
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "none":
		return SyncNone, nil
	default:
		return 0, fmt.Errorf("wal: unknown sync policy %q (want always, interval or none)", s)
	}
}

// DefaultInterval is the SyncInterval period when Options.Interval is zero.
const DefaultInterval = 10 * time.Millisecond

// DefaultSegmentSize is the rotation threshold when Options.SegmentSize is
// zero.
const DefaultSegmentSize = int64(64 << 20)

// Options configures a Log.
type Options struct {
	// Policy selects the fsync discipline (default SyncAlways).
	Policy SyncPolicy
	// Interval is the background fsync period under SyncInterval.
	Interval time.Duration
	// SegmentSize is the size at which the active segment is rotated.
	SegmentSize int64
	// OnCommit, when set, observes each successfully written group-commit
	// batch: records is the number of records the batch carried, syncDur the
	// fsync wall time (zero when the policy skipped the fsync). Called on the
	// commit leader's goroutine outside the log mutex — keep it cheap and
	// non-blocking (counter/histogram updates).
	OnCommit func(records int, syncDur time.Duration)
}

func (o Options) withDefaults() Options {
	if o.Interval <= 0 {
		o.Interval = DefaultInterval
	}
	if o.SegmentSize <= 0 {
		o.SegmentSize = DefaultSegmentSize
	}
	return o
}

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log closed")

// ErrWedged marks the sticky state a log enters after any I/O failure: every
// later append, sync or checkpoint fails, exactly like a crashed process,
// while reads of already-applied state stay valid. Errors returned by a
// wedged log match errors.Is(err, ErrWedged) and unwrap to the original I/O
// error — callers degrade to read-only serving on it rather than string-
// matching.
var ErrWedged = errors.New("wal: log wedged by an I/O error")

// wedgedError is the sticky error wrapper: it carries the original fault and
// identifies as ErrWedged under errors.Is.
type wedgedError struct{ cause error }

func (e *wedgedError) Error() string { return "wal: log wedged: " + e.cause.Error() }

// Unwrap exposes the original I/O error for errors.Is/As chains.
func (e *wedgedError) Unwrap() error { return e.cause }

// Is makes every wedged error match the ErrWedged sentinel.
func (e *wedgedError) Is(target error) bool { return target == ErrWedged }

// segment is one managed log file. first is the sequence number of its first
// record (also encoded in its name); size counts the bytes of valid records
// known to be in it.
type segment struct {
	name  string
	first uint64
	size  int64
}

// segmentName formats the canonical segment file name for a first sequence
// number.
func segmentName(first uint64) string { return fmt.Sprintf("wal-%016x.log", first) }

// parseSegmentName inverts segmentName.
func parseSegmentName(name string) (uint64, bool) {
	var first uint64
	if len(name) != len("wal-0000000000000000.log") {
		return 0, false
	}
	if _, err := fmt.Sscanf(name, "wal-%016x.log", &first); err != nil {
		return 0, false
	}
	return first, true
}

// batch is one group-commit round: every record buffered while the previous
// round was writing shares this round's write (and, under SyncAlways, its
// fsync). err is set before done is closed.
type batch struct {
	done chan struct{}
	err  error
}

// Log is the append-only segmented write-ahead log. Appends are safe for
// concurrent use; the commit protocol elects one appender per round as the
// leader, which writes and (policy permitting) fsyncs every record buffered
// so far in one batch — group commit. All I/O errors are sticky: a log that
// failed to write is wedged, exactly like a crashed process, and every later
// operation returns the original error.
type Log struct {
	fs   FS
	opts Options

	mu   sync.Mutex
	cond *sync.Cond // broadcast when writing flips to false
	err  error      // sticky fatal error; the log is wedged
	// closed rejects new work; unlike err it still lets Close's own final
	// flush run.
	closed bool

	buf      []byte // framed records not yet handed to a commit leader
	bufFirst uint64 // seq of buf's first record
	bufCount int    // records in buf (group-commit batch-size observability)
	cur      *batch // round the buffered records belong to
	writing  bool   // a commit leader (or Sync) owns the files
	nextSeq  uint64

	active     File
	activeName string
	activeSize int64
	segments   []segment
	totalSize  int64
	// unlock releases the directory's exclusive-writer lock at Close.
	unlock func() error

	// unsynced tracks bytes written to the active file since its last fsync.
	// Only the current writer (the goroutine holding writing=true) touches
	// the files, so plain fields suffice.
	unsynced bool

	stopTicker chan struct{}
	tickerDone chan struct{}
}

// Recovery describes what Open found in the directory.
type Recovery struct {
	// HasState reports whether a manifest exists — i.e. the directory holds
	// a durable store rather than being fresh.
	HasState bool
	// Manifest is the parsed manifest (zero value when !HasState).
	Manifest Manifest
	// Records are the valid log records with Seq > Manifest.SnapshotSeq, in
	// sequence order — the tail recovery replays on top of the snapshot.
	Records []Record
	// LastSeq is the highest sequence number accounted for: the last valid
	// record, or the snapshot position when it is newer than every surviving
	// record (records may be torn away that a captured snapshot already
	// covers). The next append is assigned LastSeq+1.
	LastSeq uint64
}

// Open scans the directory, reconstructs the replayable tail, and returns a
// log ready for appends. The torn tail discipline: within each segment,
// reading stops at the first corrupt or partial record; a later segment is
// chained only when it continues the sequence exactly (segments created
// after a torn-tail recovery start at the next sequence number, never
// appending after garbage). A directory with log segments but no manifest is
// corrupt — Open refuses to guess rather than silently dropping records.
func Open(fsys FS, opts Options) (*Log, *Recovery, error) {
	opts = opts.withDefaults()
	// The exclusive-writer lock comes first: a second live process appending,
	// checkpointing or truncating the same directory would corrupt both
	// writers' acked state. The lock is kernel-held on the os filesystem, so
	// it cannot go stale across a crash.
	unlock, err := fsys.Lock()
	if err != nil {
		return nil, nil, err
	}
	fail := func(err error) (*Log, *Recovery, error) {
		unlock()
		return nil, nil, err
	}
	m, hasManifest, err := readManifest(fsys)
	if err != nil {
		return fail(err)
	}
	names, err := fsys.List()
	if err != nil {
		return fail(err)
	}
	var segs []segment
	for _, n := range names {
		if first, ok := parseSegmentName(n); ok {
			segs = append(segs, segment{name: n, first: first})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })
	if !hasManifest && len(segs) > 0 {
		return fail(fmt.Errorf("wal: %d log segment(s) but no manifest — refusing to guess at state", len(segs)))
	}

	rec := &Recovery{HasState: hasManifest, Manifest: m, LastSeq: m.SnapshotSeq}
	var kept []segment
	prev := uint64(0) // seq of the last valid record seen; 0 = none
	for i, seg := range segs {
		// A segment chains when it continues the record sequence exactly, or
		// when it starts right after the snapshot position (the restart point
		// a torn-tail recovery uses: everything skipped is covered by the
		// snapshot). Anything else is unreachable — scanning stops, exactly
		// like a torn record.
		switch {
		case prev == 0 && seg.first <= m.SnapshotSeq+1:
		case prev != 0 && seg.first == prev+1:
		case seg.first == m.SnapshotSeq+1 && seg.first > prev:
		default:
			// Everything from here on is garbage from an older era, and it
			// must be deleted rather than merely ignored: a stale segment
			// whose first sequence number happens to continue some future
			// recovery's torn prefix would be chained back in and would
			// resurrect records that were never part of the acked history.
			// Failing the removal fails the Open — proceeding would leave
			// the trap armed.
			for _, g := range segs[i:] {
				if err := fsys.Remove(g.name); err != nil {
					return fail(err)
				}
			}
			return finishOpen(fsys, opts, rec, kept, prev, unlock)
		}
		last, size, serr := scanSegment(fsys, seg.name, seg.first, func(r Record) {
			if r.Seq > m.SnapshotSeq {
				rec.Records = append(rec.Records, r)
			}
		})
		if serr != nil {
			return fail(serr)
		}
		if last == 0 {
			// Zero valid records: crash residue (a segment is only ever
			// created together with its first batch, so an empty or
			// garbage-only file means the crash ate everything). It must not
			// be managed — its first can equal the next append's sequence
			// number, and a name collision would alias two l.segments
			// entries onto one file, corrupting truncation. Deleting it is
			// garbage collection, not state: best-effort.
			_ = fsys.Remove(seg.name)
			continue
		}
		seg.size = size
		kept = append(kept, seg)
		prev = last
	}
	return finishOpen(fsys, opts, rec, kept, prev, unlock)
}

// finishOpen assembles the Log once scanning decided what survives.
func finishOpen(fsys FS, opts Options, rec *Recovery, kept []segment, prev uint64, unlock func() error) (*Log, *Recovery, error) {
	if prev > rec.LastSeq {
		rec.LastSeq = prev
	}
	l := &Log{
		fs:       fsys,
		opts:     opts,
		nextSeq:  rec.LastSeq + 1,
		segments: kept,
		unlock:   unlock,
	}
	for _, s := range kept {
		l.totalSize += s.size
	}
	l.cond = sync.NewCond(&l.mu)
	if opts.Policy == SyncInterval {
		l.stopTicker = make(chan struct{})
		l.tickerDone = make(chan struct{})
		go l.syncLoop()
	}
	return l, rec, nil
}

// syncLoop is the SyncInterval background fsyncer.
func (l *Log) syncLoop() {
	defer close(l.tickerDone)
	t := time.NewTicker(l.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			// Errors are sticky in l.err; appenders surface them.
			_ = l.Sync()
		case <-l.stopTicker:
			return
		}
	}
}

// LastSeq returns the highest sequence number assigned so far.
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq - 1
}

// Size returns the total bytes of valid records across managed segments
// (the durability layer's checkpoint threshold input).
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.totalSize + int64(len(l.buf))
}

// Err returns the sticky fatal error, if any. A non-nil result matches
// errors.Is(err, ErrWedged).
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Wedged reports whether the log has entered the sticky failure state:
// appends and checkpoints fail, reads keep serving.
func (l *Log) Wedged() bool { return l.Err() != nil }

// AppendAsync frames the record into the commit pipeline, assigns its
// sequence number, and returns a wait function that blocks until the record
// is acknowledged per the sync policy (written — and under SyncAlways
// fsynced — by a group-commit leader, possibly the caller itself). The
// caller MUST invoke wait; the two-step shape exists so a caller can
// serialise "assign log position + apply to store" under its own mutex and
// pay the commit latency outside it.
func (l *Log) AppendAsync(r Record) (wait func() error, err error) {
	if err := validRecord(r); err != nil {
		return nil, err
	}
	l.mu.Lock()
	if l.err != nil {
		err := l.err
		l.mu.Unlock()
		return nil, err
	}
	if l.closed {
		l.mu.Unlock()
		return nil, ErrClosed
	}
	r.Seq = l.nextSeq
	l.nextSeq++
	if len(l.buf) == 0 {
		l.bufFirst = r.Seq
	}
	l.buf = appendRecord(l.buf, r)
	l.bufCount++
	b := l.cur
	if b == nil {
		b = &batch{done: make(chan struct{})}
		l.cur = b
	}
	lead := !l.writing
	if lead {
		l.writing = true
	}
	l.mu.Unlock()
	return func() error {
		if lead {
			l.commit(false)
		}
		<-b.done
		return b.err
	}, nil
}

// Append logs one record and blocks until it is acknowledged per the sync
// policy.
func (l *Log) Append(r Record) error {
	wait, err := l.AppendAsync(r)
	if err != nil {
		return err
	}
	return wait()
}

// commit is the group-commit leader loop: repeatedly swap out the buffered
// records and write (and per policy fsync) them as one batch, acknowledging
// the batch's waiters, until the buffer stays empty. forceSync additionally
// fsyncs the active file before returning even when the policy would not.
// Only one goroutine runs commit at a time (the writing flag); it owns the
// active file until it flips the flag back.
func (l *Log) commit(forceSync bool) error {
	var lastErr error
	for {
		l.mu.Lock()
		buf, first, b, count := l.buf, l.bufFirst, l.cur, l.bufCount
		l.buf, l.cur, l.bufCount = nil, nil, 0
		if len(buf) == 0 {
			if forceSync && l.err == nil && l.active != nil && l.unsynced {
				l.mu.Unlock()
				if err := l.syncActive(); err != nil {
					// Sticky like every other I/O failure: a background
					// interval fsync that fails must wedge the log, or
					// appends would keep acking writes that never reach disk.
					l.fail(err)
					lastErr = l.Err()
				}
				l.mu.Lock()
			}
			l.writing = false
			l.cond.Broadcast()
			l.mu.Unlock()
			return lastErr
		}
		wedged := l.err
		l.mu.Unlock()

		err := wedged
		if err == nil {
			err = l.writeChunk(buf, first)
		}
		var syncDur time.Duration
		if err == nil && (forceSync || l.opts.Policy == SyncAlways) {
			if l.opts.OnCommit != nil {
				t0 := time.Now()
				err = l.syncActive()
				syncDur = time.Since(t0)
			} else {
				err = l.syncActive()
			}
		}
		if err == nil && l.opts.OnCommit != nil {
			l.opts.OnCommit(count, syncDur)
		}
		if err != nil {
			// Wedge first, then hand the batch the canonical wrapped error:
			// the very first failing append already reports ErrWedged, so a
			// server can flip to read-only on the fault itself rather than on
			// the next mutation.
			l.fail(err)
			err = l.Err()
			lastErr = err
		}
		b.err = err
		close(b.done)
	}
}

// writeChunk appends one batch of framed records to the active segment,
// rotating first when the active segment is full. A chunk is written whole:
// segment boundaries always fall between records (a batch may overshoot the
// segment size; rotation is checked before the write, not after).
func (l *Log) writeChunk(buf []byte, first uint64) error {
	if l.active != nil && l.activeSize >= l.opts.SegmentSize {
		if err := l.syncActive(); err != nil {
			return err
		}
		old := l.active
		l.mu.Lock()
		l.active = nil
		l.activeName = ""
		l.activeSize = 0
		l.mu.Unlock()
		if err := old.Close(); err != nil {
			return err
		}
	}
	if l.active == nil {
		name := segmentName(first)
		f, err := l.fs.Create(name)
		if err != nil {
			return err
		}
		l.mu.Lock()
		l.active = f
		l.activeName = name
		l.activeSize = 0
		l.segments = append(l.segments, segment{name: name, first: first})
		l.mu.Unlock()
	}
	n, err := l.active.Write(buf)
	l.mu.Lock()
	l.activeSize += int64(n)
	l.totalSize += int64(n)
	if len(l.segments) > 0 {
		l.segments[len(l.segments)-1].size += int64(n)
	}
	l.mu.Unlock()
	if err == nil {
		l.unsynced = true
	}
	return err
}

// syncActive fsyncs the active segment. Caller owns the files (writing=true).
func (l *Log) syncActive() error {
	if l.active == nil {
		return nil
	}
	if err := l.active.Sync(); err != nil {
		return err
	}
	l.unsynced = false
	return nil
}

// fail records the sticky fatal error and releases any batch that has not
// yet been taken by a leader, so no appender blocks on a wedged log. The
// error is wrapped once here — the single wedge point — so every later
// surface of l.err matches errors.Is(err, ErrWedged).
func (l *Log) fail(err error) {
	if !errors.Is(err, ErrWedged) {
		err = &wedgedError{cause: err}
	}
	l.mu.Lock()
	if l.err == nil {
		l.err = err
	}
	b := l.cur
	l.cur = nil
	l.buf = nil
	l.bufCount = 0
	l.mu.Unlock()
	if b != nil {
		b.err = err
		close(b.done)
	}
}

// Sync flushes every buffered record and fsyncs the active segment,
// regardless of policy. It blocks while a commit round is in flight and
// returns the log's sticky error if the flush (or any earlier write) failed.
func (l *Log) Sync() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	l.mu.Unlock()
	return l.flushSync()
}

// flushSync is Sync without the closed check (Close uses it for the final
// flush).
func (l *Log) flushSync() error {
	l.mu.Lock()
	for l.writing {
		l.cond.Wait()
	}
	if l.err != nil {
		err := l.err
		l.mu.Unlock()
		return err
	}
	l.writing = true
	l.mu.Unlock()
	return l.commit(true)
}

// Close stops the background fsyncer, flushes and fsyncs everything pending,
// and closes the active segment. Further appends fail with ErrClosed. Close
// is idempotent; it returns the first error encountered (a wedged log
// returns its sticky error).
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		err := l.err
		l.mu.Unlock()
		return err
	}
	l.closed = true
	l.mu.Unlock()
	if l.stopTicker != nil {
		close(l.stopTicker)
		<-l.tickerDone
	}
	err := l.flushSync()
	l.mu.Lock()
	for l.writing {
		l.cond.Wait()
	}
	f := l.active
	l.active = nil
	l.activeName = ""
	l.mu.Unlock()
	if f != nil {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if l.unlock != nil {
		if uerr := l.unlock(); err == nil {
			err = uerr
		}
	}
	return err
}

// TruncateThrough deletes log segments every record of which has sequence
// number ≤ seq — they are covered by a snapshot the manifest already points
// at. The active segment is never deleted. Deletion is oldest-first, so a
// crash mid-truncation leaves a contiguous suffix. A failed removal is
// reported but does not wedge the log: leftover segments are re-skipped on
// the next recovery (their records filter out against the manifest) and
// retried by the next checkpoint.
func (l *Log) TruncateThrough(seq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for len(l.segments) > 1 && l.segments[0].name != l.activeName && l.segments[1].first <= seq+1 {
		if err := l.fs.Remove(l.segments[0].name); err != nil {
			return err
		}
		l.totalSize -= l.segments[0].size
		l.segments = l.segments[1:]
	}
	return nil
}

// SegmentCount reports how many log segments are currently managed
// (observability and tests).
func (l *Log) SegmentCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.segments)
}
