package wal

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// initManifest plants the minimal durable root a log directory needs (the
// engine's opening checkpoint does this in production): a manifest pointing
// at a snapshot covering seq.
func initManifest(t testing.TB, fs FS, seq uint64) {
	t.Helper()
	name := fmt.Sprintf("snap-%016x.bin", seq)
	f, err := fs.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := writeManifest(fs, Manifest{Snapshot: name, SnapshotSeq: seq}); err != nil {
		t.Fatal(err)
	}
}

func rec(i int) Record {
	return Record{Kind: KindInsert, S: fmt.Sprintf("s%d", i), P: "p", O: fmt.Sprintf("o%d", i), Score: float64(i%7) + 0.5}
}

func TestAppendCloseReopenReplaysAll(t *testing.T) {
	fs := NewMemFS()
	initManifest(t, fs, 0)
	l, r, err := Open(fs, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if !r.HasState || len(r.Records) != 0 || r.LastSeq != 0 {
		t.Fatalf("fresh recovery = %+v", r)
	}
	const n = 100
	for i := 0; i < n; i++ {
		if err := l.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := l.LastSeq(); got != n {
		t.Fatalf("LastSeq = %d, want %d", got, n)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(rec(0)); err != ErrClosed {
		t.Fatalf("append after close = %v, want ErrClosed", err)
	}

	_, r2, err := Open(fs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r2.Records) != n || r2.LastSeq != n {
		t.Fatalf("recovered %d records, LastSeq %d; want %d, %d", len(r2.Records), r2.LastSeq, n, n)
	}
	for i, got := range r2.Records {
		want := rec(i)
		if got.Seq != uint64(i+1) || got.S != want.S || got.P != want.P || got.O != want.O || got.Score != want.Score {
			t.Fatalf("record %d = %+v, want %+v seq=%d", i, got, want, i+1)
		}
	}
}

// TestTombstoneRecordRoundTrip pins the KindTombstone wire format: tombstone
// records interleaved with inserts must survive append → close → recover
// field-for-field, and a torn tail must cut at a record boundary so a
// tombstone is never half-applied.
func TestTombstoneRecordRoundTrip(t *testing.T) {
	fs := NewMemFS()
	initManifest(t, fs, 0)
	l, _, err := Open(fs, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	want := []Record{
		{Kind: KindInsert, S: "alice", P: "knows", O: "bob", Score: 0.75},
		{Kind: KindTombstone, S: "alice", P: "knows", O: "bob"},
		{Kind: KindInsert, S: "alice", P: "knows", O: "bob", Score: 1.5},
		{Kind: KindTombstone, S: "never", P: "seen", O: "key"},
		{Kind: KindInsert, S: "bob", P: "type", O: "person", Score: 9},
	}
	for _, r := range want {
		if err := l.Append(r); err != nil {
			t.Fatalf("append %+v: %v", r, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l1, rec, err := Open(fs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(rec.Records), len(want))
	}
	for i, got := range rec.Records {
		w := want[i]
		if got.Seq != uint64(i+1) || got.Kind != w.Kind || got.S != w.S || got.P != w.P || got.O != w.O || got.Score != w.Score {
			t.Fatalf("record %d = %+v, want %+v at seq %d", i, got, w, i+1)
		}
	}
	if err := l1.Close(); err != nil {
		t.Fatal(err)
	}
	// A tombstone with a junk score must be rejected at the source, same as
	// an insert — recovery treating score as "ignored" does not license the
	// writer to frame garbage.
	l2, _, err := Open(fs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if err := l2.Append(Record{Kind: KindTombstone, S: "s", P: "p", O: "o", Score: -1}); err == nil {
		t.Fatal("append accepted tombstone with negative score")
	}
}

// TestTornTailTruncatesAndChains crashes with a partially-surviving unsynced
// tail, recovers the valid prefix, appends more, and proves a second
// recovery chains the post-crash segment across the torn one.
func TestTornTailTruncatesAndChains(t *testing.T) {
	for _, keepFrac := range []float64{0, 0.3, 0.7, 1} {
		t.Run(fmt.Sprintf("keep=%v", keepFrac), func(t *testing.T) {
			fs := NewMemFS()
			initManifest(t, fs, 0)
			l, _, err := Open(fs, Options{Policy: SyncNone})
			if err != nil {
				t.Fatal(err)
			}
			const n = 50
			for i := 0; i < n; i++ {
				if err := l.Append(rec(i)); err != nil {
					t.Fatal(err)
				}
			}
			// Crash without Close: nothing was fsynced under SyncNone, so
			// only a byte prefix of the written log survives.
			crashed := fs.Crash(func(_ string, pending int) int { return int(float64(pending) * keepFrac) })

			l2, r, err := Open(crashed, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if len(r.Records) > n {
				t.Fatalf("recovered %d records from %d appends", len(r.Records), n)
			}
			for i, got := range r.Records {
				want := rec(i)
				if got.S != want.S || got.Seq != uint64(i+1) {
					t.Fatalf("recovered record %d = %+v, want %+v", i, got, want)
				}
			}
			base := len(r.Records)
			// Resume appending: the new segment must start at LastSeq+1 and
			// chain across the torn tail on the next recovery.
			for i := 0; i < 10; i++ {
				if err := l2.Append(rec(base + i)); err != nil {
					t.Fatal(err)
				}
			}
			if err := l2.Close(); err != nil {
				t.Fatal(err)
			}
			_, r2, err := Open(crashed, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if len(r2.Records) != base+10 {
				t.Fatalf("after resume, recovered %d records, want %d", len(r2.Records), base+10)
			}
			for i, got := range r2.Records {
				if got.Seq != uint64(i+1) || got.S != rec(i).S {
					t.Fatalf("chained record %d = %+v", i, got)
				}
			}
		})
	}
}

// TestSyncAlwaysSurvivesHarshCrash: every acked append must survive a crash
// that loses all unsynced bytes.
func TestSyncAlwaysSurvivesHarshCrash(t *testing.T) {
	fs := NewMemFS()
	initManifest(t, fs, 0)
	l, _, err := Open(fs, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	const n = 40
	for i := 0; i < n; i++ {
		if err := l.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	_, r, err := Open(fs.Crash(SyncedOnly), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Records) != n {
		t.Fatalf("SyncAlways crash recovered %d of %d acked records", len(r.Records), n)
	}
}

// TestBudgetKillRecoversAckedPrefix arms the byte-budget fault at every
// plausible offset class and checks the two core invariants: recovery yields
// an exact prefix of the append order, and under SyncAlways every append
// that returned nil is inside it.
func TestBudgetKillRecoversAckedPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		fs := NewMemFS()
		initManifest(t, fs, 0)
		l, _, err := Open(fs, Options{Policy: SyncAlways, SegmentSize: 1 << 10})
		if err != nil {
			t.Fatal(err)
		}
		fs.SetBudget(int64(rng.Intn(3000)))
		acked := 0
		for i := 0; i < 60; i++ {
			if err := l.Append(rec(i)); err != nil {
				break
			}
			acked++
		}
		crashed := fs.Crash(func(_ string, pending int) int { return rng.Intn(pending + 1) })
		_, r, err := Open(crashed, Options{})
		if err != nil {
			t.Fatalf("trial %d: recovery failed: %v", trial, err)
		}
		if len(r.Records) < acked {
			t.Fatalf("trial %d: %d acked appends but only %d recovered", trial, acked, len(r.Records))
		}
		for i, got := range r.Records {
			if got.Seq != uint64(i+1) || got.S != rec(i).S {
				t.Fatalf("trial %d: recovered record %d out of order: %+v", trial, i, got)
			}
		}
	}
}

// TestRotationAndTruncate drives rotation with a tiny segment size and
// verifies checkpoint truncation deletes everything a snapshot covers while
// keeping the replayable tail intact.
func TestRotationAndTruncate(t *testing.T) {
	fs := NewMemFS()
	initManifest(t, fs, 0)
	l, _, err := Open(fs, Options{Policy: SyncAlways, SegmentSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	const n = 60
	for i := 0; i < n; i++ {
		if err := l.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if c := l.SegmentCount(); c < 3 {
		t.Fatalf("expected rotation to produce several segments, got %d", c)
	}
	// Checkpoint at seq 30: write the new manifest first (as the engine
	// does), then truncate.
	initManifest(t, fs, 30)
	if err := l.TruncateThrough(30); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, r, err := Open(fs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Manifest.SnapshotSeq != 30 {
		t.Fatalf("manifest seq = %d", r.Manifest.SnapshotSeq)
	}
	if len(r.Records) != n-30 {
		t.Fatalf("replay tail = %d records, want %d", len(r.Records), n-30)
	}
	for i, got := range r.Records {
		if got.Seq != uint64(31+i) {
			t.Fatalf("tail record %d has seq %d", i, got.Seq)
		}
	}
}

// countingFS wraps an FS to count fsyncs and slow them down, making group
// commit observable: concurrent appenders must share fsyncs.
type countingFS struct {
	FS
	mu    sync.Mutex
	syncs int
}

type countingFile struct {
	File
	fs *countingFS
}

func (c *countingFS) Create(name string) (File, error) {
	f, err := c.FS.Create(name)
	if err != nil {
		return nil, err
	}
	return &countingFile{File: f, fs: c}, nil
}

func (f *countingFile) Sync() error {
	f.fs.mu.Lock()
	f.fs.syncs++
	f.fs.mu.Unlock()
	time.Sleep(200 * time.Microsecond) // make the fsync window wide enough to batch into
	return f.File.Sync()
}

func TestGroupCommitSharesFsyncs(t *testing.T) {
	cfs := &countingFS{FS: NewMemFS()}
	initManifest(t, cfs.FS, 0)
	l, _, err := Open(cfs, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	const workers, per = 8, 40
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := l.Append(rec(w*per + i)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	total := workers * per
	cfs.mu.Lock()
	syncs := cfs.syncs
	cfs.mu.Unlock()
	if syncs >= total {
		t.Fatalf("group commit degenerate: %d fsyncs for %d appends", syncs, total)
	}
	t.Logf("group commit: %d appends in %d fsyncs", total, syncs)
	_, r, err := Open(cfs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Records) != total {
		t.Fatalf("recovered %d of %d", len(r.Records), total)
	}
}

// TestIntervalPolicyAcksBeforeSync: appends under SyncInterval return
// without fsync; an explicit Sync makes them crash-proof.
func TestIntervalPolicyAcksBeforeSync(t *testing.T) {
	fs := NewMemFS()
	initManifest(t, fs, 0)
	l, _, err := Open(fs, Options{Policy: SyncInterval, Interval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := l.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	_, r, err := Open(fs.Crash(SyncedOnly), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Records) != 0 {
		t.Fatalf("unsynced interval appends survived a synced-only crash: %d", len(r.Records))
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	_, r, err = Open(fs.Crash(SyncedOnly), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Records) != 10 {
		t.Fatalf("after Sync, synced-only crash recovered %d of 10", len(r.Records))
	}
	l.Close()
}

func TestManifestRoundTripAndCorruption(t *testing.T) {
	fs := NewMemFS()
	m := Manifest{Snapshot: "snap-00000000000000ff.bin", SnapshotSeq: 255}
	if err := writeManifest(fs, m); err != nil {
		t.Fatal(err)
	}
	got, ok, err := readManifest(fs)
	if err != nil || !ok || got != m {
		t.Fatalf("round trip = %+v ok=%v err=%v", got, ok, err)
	}
	// Flip a byte: the CRC must catch it and recovery must refuse to guess.
	f, _ := fs.Create(ManifestName)
	fmt.Fprintf(f, "specqp-wal v1\nsnapshot snap-x 9\ncrc deadbeef\n")
	f.Sync()
	f.Close()
	if _, _, err := readManifest(fs); err == nil {
		t.Fatal("corrupt manifest accepted")
	}
	if _, _, err := Open(fs, Options{}); err == nil {
		t.Fatal("Open accepted corrupt manifest")
	}
}

func TestSegmentsWithoutManifestRejected(t *testing.T) {
	fs := NewMemFS()
	f, _ := fs.Create(segmentName(1))
	f.Sync()
	f.Close()
	if _, _, err := Open(fs, Options{}); err == nil {
		t.Fatal("Open accepted log segments with no manifest")
	}
}

func TestAppendValidation(t *testing.T) {
	fs := NewMemFS()
	initManifest(t, fs, 0)
	l, _, err := Open(fs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	bad := []Record{
		{Kind: 3, S: "s", P: "p", O: "o", Score: 1},
		{Kind: KindInsert, S: "s", P: "p", O: "o", Score: -1},
	}
	for _, r := range bad {
		if err := l.Append(r); err == nil {
			t.Fatalf("append accepted invalid record %+v", r)
		}
	}
	if got := l.LastSeq(); got != 0 {
		t.Fatalf("rejected records consumed sequence numbers: LastSeq=%d", got)
	}
}

// TestExclusiveWriterLock: a second Open on a live directory must fail fast
// (two writers would corrupt each other); Close releases the lock.
func TestExclusiveWriterLock(t *testing.T) {
	fs := NewMemFS()
	initManifest(t, fs, 0)
	l, _, err := Open(fs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(fs, Options{}); err == nil {
		t.Fatal("second writer acquired a locked directory")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, _, err := Open(fs, Options{})
	if err != nil {
		t.Fatalf("reopen after Close: %v", err)
	}
	l2.Close()
	// A crash view is a different "boot": the lock must not survive into it
	// (kernel locks die with the process).
	l3, _, err := Open(fs.Crash(EverythingWritten), Options{})
	if err != nil {
		t.Fatalf("open of crash view: %v", err)
	}
	l3.Close()
}

// TestEmptySegmentCrashResidueDoesNotAliasNextSegment reproduces the
// rotation-crash corner: a crash right after a rotation creates the new
// segment file but loses every byte of it. Recovery must not keep managing
// that empty segment — its first sequence number equals the next append's,
// and the name collision would alias two segment entries onto one file,
// making a later TruncateThrough delete acked records (or wedge on ENOENT).
func TestEmptySegmentCrashResidueDoesNotAliasNextSegment(t *testing.T) {
	fs := NewMemFS()
	initManifest(t, fs, 0)
	l, _, err := Open(fs, Options{Policy: SyncNone, SegmentSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Record 1 creates wal-1 and is fsynced; record 2 rotates (SegmentSize=1)
	// into wal-2, whose bytes stay unsynced.
	if err := l.Append(rec(0)); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(rec(1)); err != nil {
		t.Fatal(err)
	}
	crashed := fs.Crash(SyncedOnly) // wal-2 exists, empty

	l2, r, err := Open(crashed, Options{Policy: SyncAlways, SegmentSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Records) != 1 {
		t.Fatalf("recovered %d records, want 1", len(r.Records))
	}
	// Appends re-create wal-2 (same first seq) and rotate several more times.
	for i := 1; i < 6; i++ {
		if err := l2.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Checkpoint through seq 3: truncation must neither fail nor delete the
	// live tail.
	initManifest(t, crashed, 3)
	if err := l2.TruncateThrough(3); err != nil {
		t.Fatalf("truncate after empty-segment recovery: %v", err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	_, r2, err := Open(crashed, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r2.Records) != 3 || r2.LastSeq != 6 {
		t.Fatalf("after truncation, tail = %d records lastSeq=%d; want 3 records through seq 6", len(r2.Records), r2.LastSeq)
	}
	for i, got := range r2.Records {
		if got.Seq != uint64(4+i) || got.S != rec(3+i).S {
			t.Fatalf("tail record %d = %+v, want seq %d (%s)", i, got, 4+i, rec(3+i).S)
		}
	}
}

// syncFailFS makes every file fsync fail once armed — the ENOSPC/EIO model.
type syncFailFS struct {
	FS
	fail atomic.Bool
}

type syncFailFile struct {
	File
	fs *syncFailFS
}

func (s *syncFailFS) Create(name string) (File, error) {
	f, err := s.FS.Create(name)
	if err != nil {
		return nil, err
	}
	return &syncFailFile{File: f, fs: s}, nil
}

func (f *syncFailFile) Sync() error {
	if f.fs.fail.Load() {
		return fmt.Errorf("injected fsync failure")
	}
	return f.File.Sync()
}

// TestFsyncFailureWedgesLog pins the sticky-error contract on the
// background-sync path: under SyncInterval an append is acked after the
// buffered write, so a failing fsync later must wedge the log — continuing
// to ack writes that never reach disk would silently void durability.
func TestFsyncFailureWedgesLog(t *testing.T) {
	fs := &syncFailFS{FS: NewMemFS()}
	initManifest(t, fs.FS, 0)
	l, _, err := Open(fs, Options{Policy: SyncInterval, Interval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(rec(0)); err != nil {
		t.Fatal(err)
	}
	fs.fail.Store(true)
	// The empty-buffer force-sync path (what the interval ticker runs).
	if err := l.Sync(); err == nil {
		t.Fatal("Sync swallowed the fsync failure")
	}
	if err := l.Append(rec(1)); err == nil {
		t.Fatal("append acked on a log whose fsync failed")
	}
	if l.Err() == nil {
		t.Fatal("fsync failure did not stick")
	}
	l.Close()
}

// writeRawSegment plants a segment file with pre-framed bytes (synthetic
// crash states the organic write path cannot produce, e.g. era confusion).
func writeRawSegment(t *testing.T, fs FS, first uint64, data []byte) {
	t.Helper()
	f, err := fs.Create(segmentName(first))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Close()
}

// TestUnreachableSegmentsAreDeletedNotResurrected pins the era-confusion
// defense: segments past a chain break are garbage from an older run, and
// Open must delete them — leaving one behind would let a future recovery,
// whose torn prefix happens to end right before the stale segment's first
// sequence number, chain it back in and replay ghost records.
func TestUnreachableSegmentsAreDeletedNotResurrected(t *testing.T) {
	fs := NewMemFS()
	initManifest(t, fs, 0)
	// Era 1 residue: wal-1 holds seq 1; wal-2 is torn to nothing; wal-3
	// holds era-1's seq 3 — unreachable because the chain breaks at 1.
	writeRawSegment(t, fs, 1, appendRecord(nil, Record{Seq: 1, Kind: KindInsert, S: "keep", P: "p", O: "o", Score: 1}))
	writeRawSegment(t, fs, 2, []byte("garbage that is not a record"))
	writeRawSegment(t, fs, 3, appendRecord(nil, Record{Seq: 3, Kind: KindInsert, S: "ghost", P: "p", O: "o", Score: 9}))

	l, r, err := Open(fs, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Records) != 1 || r.Records[0].S != "keep" {
		t.Fatalf("recovered %+v, want only seq 1", r.Records)
	}
	names, err := fs.List()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if n == segmentName(3) {
			t.Fatal("unreachable era-1 segment survived Open")
		}
	}
	// Era 2 writes seqs 2 and 3 with new content; a torn era-2 tail must
	// never be continued by era-1's seq-3 record.
	if err := l.Append(Record{Kind: KindInsert, S: "era2-a", P: "p", O: "o", Score: 2}); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Record{Kind: KindInsert, S: "era2-b", P: "p", O: "o", Score: 3}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, r2, err := Open(fs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"keep", "era2-a", "era2-b"}
	if len(r2.Records) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(r2.Records), len(want))
	}
	for i, g := range r2.Records {
		if g.S != want[i] || g.Seq != uint64(i+1) {
			t.Fatalf("record %d = %+v, want %s at seq %d", i, g, want[i], i+1)
		}
	}
}
