package wal

import (
	"bytes"
	"testing"
)

// FuzzWALReplay feeds hostile bytes to the torn-tail-tolerant record reader.
// The reader must never panic, never allocate proportionally to a claimed
// length, and — the round-trip half — always recover an exact prefix of
// whatever valid records the input starts with.
func FuzzWALReplay(f *testing.F) {
	// Seeds: a clean two-record log, a truncated one, pure garbage, and a
	// delete-bearing log — insert, tombstone, re-insert, plus an update's
	// tombstone+insert pair — whole and cut mid-tombstone.
	var clean []byte
	clean = appendRecord(clean, Record{Seq: 1, Kind: KindInsert, S: "alice", P: "knows", O: "bob", Score: 0.75})
	clean = appendRecord(clean, Record{Seq: 2, Kind: KindInsert, S: "bob", P: "type", O: "person", Score: 2})
	f.Add(clean)
	f.Add(clean[:len(clean)-5])
	f.Add([]byte("\xff\xff\xff\x7fgarbage"))
	f.Add([]byte{})
	var mutated []byte
	mutated = appendRecord(mutated, Record{Seq: 1, Kind: KindInsert, S: "alice", P: "knows", O: "bob", Score: 0.75})
	mutated = appendRecord(mutated, Record{Seq: 2, Kind: KindTombstone, S: "alice", P: "knows", O: "bob"})
	mutated = appendRecord(mutated, Record{Seq: 3, Kind: KindInsert, S: "alice", P: "knows", O: "bob", Score: 1.5})
	mutated = appendRecord(mutated, Record{Seq: 4, Kind: KindTombstone, S: "bob", P: "type", O: "person"})
	mutated = appendRecord(mutated, Record{Seq: 5, Kind: KindInsert, S: "bob", P: "type", O: "person", Score: 9})
	f.Add(mutated)
	f.Add(mutated[:len(mutated)-30])

	f.Fuzz(func(t *testing.T, data []byte) {
		var got []Record
		n, err := ReadRecords(bytes.NewReader(data), 0, func(r Record) error {
			got = append(got, r)
			return nil
		})
		if err != nil {
			t.Fatalf("ReadRecords returned error for raw bytes: %v", err)
		}
		if n != len(got) {
			t.Fatalf("count %d != delivered %d", n, len(got))
		}
		// Every delivered record must satisfy the writer's invariants (the
		// reader re-checks them post-CRC).
		for i, r := range got {
			if err := validRecord(r); err != nil {
				t.Fatalf("record %d violates invariants: %v", i, err)
			}
		}
		// Re-framing the delivered records must reproduce a byte prefix of
		// the input: the reader accepts exactly the valid prefix, nothing
		// reordered, nothing invented.
		var reframed []byte
		for _, r := range got {
			reframed = appendRecord(reframed, r)
		}
		if !bytes.HasPrefix(data, reframed) {
			t.Fatalf("recovered records do not re-frame to an input prefix")
		}
	})
}
