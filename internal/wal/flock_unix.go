//go:build unix

package wal

import (
	"os"
	"syscall"
)

// flockExclusive takes a non-blocking exclusive advisory lock on f. The
// kernel releases it automatically when the owning process dies — including
// kill -9 — so a crash never leaves a stale lock blocking recovery.
func flockExclusive(f *os.File) error {
	return syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
}
