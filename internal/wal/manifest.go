package wal

import (
	"fmt"
	"hash/crc32"
	"io"
	"strings"
)

// Manifest records the durable root of the store: which snapshot file holds
// the state and the last log sequence number that snapshot covers. Recovery
// loads the snapshot and replays only records with larger sequence numbers.
// The file is tiny, text (debuggable with cat), CRC-protected, and replaced
// atomically via write-tmp + rename — a crash mid-checkpoint leaves the old
// manifest intact and the half-written tmp ignored.
type Manifest struct {
	// Snapshot is the snapshot file name ("" only before the first
	// checkpoint ever, which no valid directory reaches: opening writes one).
	Snapshot string
	// SnapshotSeq is the last log sequence number the snapshot includes (0
	// when the snapshot predates all WAL inserts).
	SnapshotSeq uint64
}

// ManifestName is the manifest's file name inside the WAL directory.
const ManifestName = "MANIFEST"

// manifestTmp is the scratch name the new manifest is written to before the
// atomic rename.
const manifestTmp = "MANIFEST.tmp"

const manifestHeader = "specqp-wal v1"

// SnapshotName formats the canonical snapshot file name for the last log
// sequence number it covers.
func SnapshotName(seq uint64) string { return fmt.Sprintf("snap-%016x.bin", seq) }

// IsSnapshotName reports whether name is a canonical snapshot file name.
func IsSnapshotName(name string) bool {
	var seq uint64
	if len(name) != len("snap-0000000000000000.bin") {
		return false
	}
	_, err := fmt.Sscanf(name, "snap-%016x.bin", &seq)
	return err == nil
}

// WriteManifest atomically replaces the manifest — the single commit point
// of a checkpoint. The snapshot it names must already be durable; until the
// rename lands, recovery uses the previous (snapshot, log offset) pair.
func WriteManifest(fsys FS, m Manifest) error { return writeManifest(fsys, m) }

// writeManifest atomically replaces the manifest.
func writeManifest(fsys FS, m Manifest) error {
	if strings.ContainsAny(m.Snapshot, " \n") || m.Snapshot == "" {
		return fmt.Errorf("wal: invalid snapshot name %q", m.Snapshot)
	}
	body := fmt.Sprintf("%s\nsnapshot %s %d\n", manifestHeader, m.Snapshot, m.SnapshotSeq)
	body += fmt.Sprintf("crc %08x\n", crc32.Checksum([]byte(body), castagnoli))
	f, err := fsys.Create(manifestTmp)
	if err != nil {
		return err
	}
	if _, err := io.WriteString(f, body); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return fsys.Rename(manifestTmp, ManifestName)
}

// readManifest parses the manifest, reporting ok=false when none exists.
// A present-but-unparseable manifest is an error, not a fresh start: guessing
// would silently discard durable state.
func readManifest(fsys FS) (m Manifest, ok bool, err error) {
	names, err := fsys.List()
	if err != nil {
		return m, false, err
	}
	found := false
	for _, n := range names {
		if n == ManifestName {
			found = true
			break
		}
	}
	if !found {
		return m, false, nil
	}
	r, err := fsys.Open(ManifestName)
	if err != nil {
		return m, false, err
	}
	defer r.Close()
	raw, err := io.ReadAll(io.LimitReader(r, 1<<16))
	if err != nil {
		return m, false, err
	}
	body := string(raw)
	crcAt := strings.LastIndex(body, "crc ")
	if crcAt < 0 || !strings.HasSuffix(body, "\n") {
		return m, false, fmt.Errorf("wal: manifest missing crc line")
	}
	var gotCRC uint32
	if _, err := fmt.Sscanf(body[crcAt:], "crc %x\n", &gotCRC); err != nil {
		return m, false, fmt.Errorf("wal: manifest crc line: %v", err)
	}
	if want := crc32.Checksum([]byte(body[:crcAt]), castagnoli); want != gotCRC {
		return m, false, fmt.Errorf("wal: manifest crc mismatch (%08x vs %08x)", gotCRC, want)
	}
	lines := strings.Split(strings.TrimSuffix(body[:crcAt], "\n"), "\n")
	if len(lines) != 2 || lines[0] != manifestHeader {
		return m, false, fmt.Errorf("wal: malformed manifest")
	}
	if _, err := fmt.Sscanf(lines[1], "snapshot %s %d", &m.Snapshot, &m.SnapshotSeq); err != nil {
		return m, false, fmt.Errorf("wal: manifest snapshot line: %v", err)
	}
	return m, true, nil
}
