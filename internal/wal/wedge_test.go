package wal

import (
	"errors"
	"testing"
)

// TestWedgedErrorIsTyped pins the read-only degradation contract: the first
// append that hits an I/O fault — and every operation after it — fails with
// an error satisfying errors.Is(err, ErrWedged), while the underlying cause
// stays reachable through Unwrap for diagnostics.
func TestWedgedErrorIsTyped(t *testing.T) {
	fs := NewMemFS()
	initManifest(t, fs, 0)
	l, _, err := Open(fs, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	if err := l.Append(rec(1)); err != nil {
		t.Fatal(err)
	}
	if l.Wedged() {
		t.Fatal("healthy log reports wedged")
	}

	// Arm the byte-budget fault: the next flush dies mid-write.
	fs.SetBudget(1)
	first := l.Append(rec(2))
	if first == nil {
		t.Fatal("append past the budget succeeded")
	}
	if !errors.Is(first, ErrWedged) {
		t.Fatalf("first failing append not ErrWedged: %v", first)
	}
	// The original cause is preserved under the wrapper.
	var cause error
	for e := first; e != nil; e = errors.Unwrap(e) {
		cause = e
	}
	if cause == ErrWedged || cause == nil {
		t.Fatalf("cause lost: %v", first)
	}

	if !l.Wedged() {
		t.Fatal("log not wedged after I/O fault")
	}
	if !errors.Is(l.Err(), ErrWedged) {
		t.Fatalf("Err() not ErrWedged: %v", l.Err())
	}

	// The wedge is sticky: later appends and syncs fail fast with the same
	// typed error, even though the fault fired only once.
	for i := 0; i < 3; i++ {
		if err := l.Append(rec(10 + i)); !errors.Is(err, ErrWedged) {
			t.Fatalf("append %d after wedge: %v", i, err)
		}
	}
	if err := l.Sync(); !errors.Is(err, ErrWedged) {
		t.Fatalf("sync after wedge: %v", err)
	}
}

// TestWedgedAsyncAppend: the group-commit path reports the wedge through the
// wait function too.
func TestWedgedAsyncAppend(t *testing.T) {
	fs := NewMemFS()
	initManifest(t, fs, 0)
	l, _, err := Open(fs, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	fs.SetBudget(1)
	wait, err := l.AppendAsync(rec(1))
	if err != nil {
		if !errors.Is(err, ErrWedged) {
			t.Fatalf("enqueue error not ErrWedged: %v", err)
		}
		return
	}
	if werr := wait(); !errors.Is(werr, ErrWedged) {
		t.Fatalf("async wait not ErrWedged: %v", werr)
	}
}
