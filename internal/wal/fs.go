// Package wal implements the write-ahead log behind the durable engine: an
// append-only segmented log with per-record CRC32C framing, group-committed
// fsyncs, a torn-tail-tolerant recovery reader, and a manifest recording
// (snapshot, log position) pairs. The package is storage-generic — records
// carry opaque term strings and a score, never kg types — and every byte it
// writes goes through the FS seam below, so the crash-fault-injection tests
// run the full stack against an in-memory filesystem that loses un-synced
// writes at arbitrary byte offsets.
package wal

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// File is the log's view of an append-only file.
type File interface {
	io.Writer
	// Sync forces written bytes to durable storage.
	Sync() error
	Close() error
}

// FS abstracts the WAL directory: every file the durability layer touches —
// segments, snapshots, manifest — is created, read, listed, renamed and
// removed through it. DirFS is the production implementation; MemFS is the
// crash-fault-injection harness.
type FS interface {
	// Create opens name for writing, truncating any existing content.
	Create(name string) (File, error)
	// Open opens name for reading.
	Open(name string) (io.ReadCloser, error)
	// List returns the names of all files in the directory.
	List() ([]string, error)
	// Remove deletes name.
	Remove(name string) error
	// Rename atomically replaces newName with oldName's content.
	Rename(oldName, newName string) error
	// Lock acquires the directory's exclusive-writer lock, failing fast if
	// another live process (or Log) holds it. Two writers interleaving
	// appends, checkpoints and truncations in one directory silently corrupt
	// each other's acked state — wal.Open refuses to start without the lock.
	// The returned release frees it; the os implementation's lock also dies
	// with the process, so a kill -9 never leaves a stale lock behind.
	Lock() (release func() error, err error)
}

// dirFS is the os-backed FS rooted at one directory. Create, Rename and
// Remove fsync the directory afterwards so the entry itself is durable, not
// just the file bytes.
type dirFS struct {
	dir string
}

// DirFS returns the production FS rooted at dir, creating it if missing.
func DirFS(dir string) (FS, error) {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, err
	}
	return &dirFS{dir: dir}, nil
}

// syncDir fsyncs the directory so a freshly created/renamed/removed entry
// survives a crash. Errors are returned — a durability layer must not
// swallow them.
func (d *dirFS) syncDir() error {
	f, err := os.Open(d.dir)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}

func (d *dirFS) path(name string) (string, error) {
	if name != filepath.Base(name) || name == "." || name == ".." {
		return "", fmt.Errorf("wal: invalid file name %q", name)
	}
	return filepath.Join(d.dir, name), nil
}

func (d *dirFS) Create(name string) (File, error) {
	p, err := d.path(name)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(p, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o666)
	if err != nil {
		return nil, err
	}
	if err := d.syncDir(); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

func (d *dirFS) Open(name string) (io.ReadCloser, error) {
	p, err := d.path(name)
	if err != nil {
		return nil, err
	}
	return os.Open(p)
}

func (d *dirFS) List() ([]string, error) {
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if !e.IsDir() {
			out = append(out, e.Name())
		}
	}
	return out, nil
}

func (d *dirFS) Remove(name string) error {
	p, err := d.path(name)
	if err != nil {
		return err
	}
	if err := os.Remove(p); err != nil {
		return err
	}
	return d.syncDir()
}

func (d *dirFS) Rename(oldName, newName string) error {
	po, err := d.path(oldName)
	if err != nil {
		return err
	}
	pn, err := d.path(newName)
	if err != nil {
		return err
	}
	if err := os.Rename(po, pn); err != nil {
		return err
	}
	return d.syncDir()
}

// lockName is the exclusive-writer lock file inside the WAL directory. The
// file persists across runs; ownership is the (advisory, kernel-held) lock
// on it, which evaporates with the owning process.
const lockName = "LOCK"

func (d *dirFS) Lock() (func() error, error) {
	f, err := os.OpenFile(filepath.Join(d.dir, lockName), os.O_CREATE|os.O_RDWR, 0o666)
	if err != nil {
		return nil, err
	}
	if err := flockExclusive(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: %s is owned by another live process: %w", d.dir, err)
	}
	return f.Close, nil
}

// MemFS is an in-memory FS with crash-fault injection, the harness behind
// the durability proofs. Every file tracks its synced prefix separately from
// bytes merely written, a byte budget kills the writer mid-write at an
// arbitrary offset, and Crash materialises what a real power loss could
// leave behind: all synced bytes plus an arbitrary prefix of the un-synced
// tail.
type MemFS struct {
	mu     sync.Mutex
	files  map[string]*memFile
	budget int64 // bytes that may still be written; <0 = unlimited
	failed bool  // the simulated crash has happened; every op now errors
	locked bool  // exclusive-writer lock held (a Crash view starts unlocked)
}

type memFile struct {
	durable []byte // synced prefix — survives any crash
	pending []byte // written but not synced — partially survives
}

func (m *MemFS) Lock() (func() error, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.failed {
		return nil, errCrashed
	}
	if m.locked {
		return nil, fmt.Errorf("wal: in-memory directory already locked by another writer")
	}
	m.locked = true
	return func() error {
		m.mu.Lock()
		m.locked = false
		m.mu.Unlock()
		return nil
	}, nil
}

// NewMemFS returns an empty in-memory FS with no write budget (writes never
// fail until SetBudget arms one).
func NewMemFS() *MemFS {
	return &MemFS{files: make(map[string]*memFile), budget: -1}
}

// SetBudget arms the fault: after n more written bytes, the write errors
// mid-record and every later operation fails — the process is "dead" from
// the log's point of view. n < 0 disarms.
func (m *MemFS) SetBudget(n int64) {
	m.mu.Lock()
	m.budget = n
	m.mu.Unlock()
}

// Failed reports whether the armed fault has fired.
func (m *MemFS) Failed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.failed
}

// errCrashed is returned by every operation after the injected fault fired.
var errCrashed = fmt.Errorf("wal: simulated crash")

// Crash returns the filesystem a recovery would find: every file's synced
// bytes plus the first keep(len(pending)) un-synced bytes, where keep picks
// how much of each file's write-back the OS happened to complete. The
// receiver is left untouched, so one recorded run can be crash-tested at
// many cut points.
func (m *MemFS) Crash(keep func(name string, pending int) int) *MemFS {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := NewMemFS()
	for name, f := range m.files {
		k := 0
		if keep != nil {
			k = keep(name, len(f.pending))
		}
		if k < 0 {
			k = 0
		}
		if k > len(f.pending) {
			k = len(f.pending)
		}
		buf := make([]byte, 0, len(f.durable)+k)
		buf = append(buf, f.durable...)
		buf = append(buf, f.pending[:k]...)
		out.files[name] = &memFile{durable: buf}
	}
	return out
}

// SyncedOnly is a Crash keep function modelling the harshest loss: nothing
// un-synced survives.
func SyncedOnly(string, int) int { return 0 }

// EverythingWritten is a Crash keep function modelling the gentlest loss:
// every written byte survives (equivalent to a process kill with the page
// cache intact).
func EverythingWritten(_ string, pending int) int { return pending }

type memHandle struct {
	fs   *MemFS
	name string
}

func (m *MemFS) Create(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.failed {
		return nil, errCrashed
	}
	m.files[name] = &memFile{}
	return &memHandle{fs: m, name: name}, nil
}

func (h *memHandle) Write(p []byte) (int, error) {
	m := h.fs
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.failed {
		return 0, errCrashed
	}
	f := m.files[h.name]
	if f == nil {
		return 0, fmt.Errorf("wal: write to removed file %q", h.name)
	}
	n := len(p)
	if m.budget >= 0 && int64(n) > m.budget {
		// The fault fires mid-write: a prefix lands in the page cache, the
		// rest never happens, and the "process" is dead.
		n = int(m.budget)
		f.pending = append(f.pending, p[:n]...)
		m.failed = true
		m.budget = 0
		return n, errCrashed
	}
	if m.budget >= 0 {
		m.budget -= int64(n)
	}
	f.pending = append(f.pending, p...)
	return n, nil
}

func (h *memHandle) Sync() error {
	m := h.fs
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.failed {
		return errCrashed
	}
	f := m.files[h.name]
	if f == nil {
		return fmt.Errorf("wal: sync of removed file %q", h.name)
	}
	f.durable = append(f.durable, f.pending...)
	f.pending = nil
	return nil
}

func (h *memHandle) Close() error { return nil }

func (m *MemFS) Open(name string) (io.ReadCloser, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.failed {
		return nil, errCrashed
	}
	f := m.files[name]
	if f == nil {
		return nil, fmt.Errorf("wal: open %s: %w", name, os.ErrNotExist)
	}
	buf := make([]byte, 0, len(f.durable)+len(f.pending))
	buf = append(buf, f.durable...)
	buf = append(buf, f.pending...)
	return io.NopCloser(strings.NewReader(string(buf))), nil
}

func (m *MemFS) List() ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.failed {
		return nil, errCrashed
	}
	out := make([]string, 0, len(m.files))
	for name := range m.files {
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.failed {
		return errCrashed
	}
	if m.files[name] == nil {
		return fmt.Errorf("wal: remove %s: %w", name, os.ErrNotExist)
	}
	delete(m.files, name)
	return nil
}

func (m *MemFS) Rename(oldName, newName string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.failed {
		return errCrashed
	}
	f := m.files[oldName]
	if f == nil {
		return fmt.Errorf("wal: rename %s: %w", oldName, os.ErrNotExist)
	}
	delete(m.files, oldName)
	m.files[newName] = f
	return nil
}
