package wal

import (
	"bufio"
	"encoding/binary"
	"hash/crc32"
	"io"
)

// ReadRecords streams the valid record prefix of one segment's bytes:
// records are decoded in order and handed to fn until the first partial,
// corrupt, or out-of-sequence record, where reading stops — the torn-tail
// truncation rule. first is the sequence number the segment's first record
// must carry (0 skips the continuity check, for tools reading a lone
// segment). The returned count is the number of valid records delivered.
//
// The reader is deliberately paranoid: length fields are attacker-ish data
// (a torn write can produce anything), so allocations grow with bytes
// actually read, never with a claimed length, and every structural rule the
// writer enforces is re-checked after the CRC. It never returns an error for
// bad bytes — bad bytes are the expected crash residue — only fn's error is
// propagated.
func ReadRecords(r io.Reader, first uint64, fn func(Record) error) (int, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var head [8]byte
	payload := make([]byte, 0, 256)
	const chunk = 64 << 10
	var zero [chunk]byte
	n := 0
	expect := first
	for {
		if _, err := io.ReadFull(br, head[:]); err != nil {
			return n, nil // clean EOF or torn header — stop either way
		}
		plen := binary.LittleEndian.Uint32(head[:4])
		crc := binary.LittleEndian.Uint32(head[4:])
		if plen < 8+1 || plen > maxPayload {
			return n, nil // implausible frame — corrupt
		}
		payload = payload[:0]
		for read := uint32(0); read < plen; {
			step := plen - read
			if step > chunk {
				step = chunk
			}
			start := len(payload)
			payload = append(payload, zero[:step]...)
			if _, err := io.ReadFull(br, payload[start:]); err != nil {
				return n, nil // torn payload
			}
			read += step
		}
		if crc32.Checksum(payload, castagnoli) != crc {
			return n, nil // corrupt payload
		}
		rec, err := parsePayload(payload)
		if err != nil {
			return n, nil // CRC-valid but structurally wrong — treat as corrupt
		}
		if expect != 0 && rec.Seq != expect {
			return n, nil // sequence break — the rest is unreachable
		}
		if err := fn(rec); err != nil {
			return n, err
		}
		n++
		if expect != 0 {
			expect++
		}
	}
}

// scanSegment reads one segment file, calling fn per valid record. It
// returns the sequence number of the last valid record (0 if none) and the
// byte size of the valid prefix.
func scanSegment(fsys FS, name string, first uint64, fn func(Record)) (last uint64, size int64, err error) {
	f, err := fsys.Open(name)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	_, err = ReadRecords(f, first, func(r Record) error {
		last = r.Seq
		size += int64(recordSize(r))
		fn(r)
		return nil
	})
	return last, size, err
}
