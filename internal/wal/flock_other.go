//go:build !unix

package wal

import "os"

// flockExclusive is a no-op on platforms without flock semantics: the
// directory lock degrades to best-effort there. Every supported deployment
// target (and CI) is unix.
func flockExclusive(*os.File) error { return nil }
