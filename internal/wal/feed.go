package wal

import (
	"errors"
	"fmt"
	"io"
)

// This file is the log-shipping export: positional reads over a live WAL
// directory, the primary-side surface replication (internal/repl) serves
// followers from. A Feed never mutates anything — it reads the manifest, the
// snapshot the manifest names, and the record segments, all through the same
// FS seam the durability layer writes through, so the whole shipping path is
// crash- and fault-injectable with MemFS.

// ErrPositionTruncated reports that the log no longer holds the records
// immediately after the requested position: a checkpoint truncated them away.
// The caller must fall back to shipping the covering snapshot.
var ErrPositionTruncated = errors.New("wal: requested position truncated; ship the snapshot")

// FrameRecord appends r in the on-disk record framing (u32 len, u32 CRC32C,
// payload) — the exact bytes ReadRecords accepts. Exported for the
// replication protocol, which reuses the WAL framing on the wire so a shipped
// record and a logged record are the same bytes.
func FrameRecord(buf []byte, r Record) []byte { return appendRecord(buf, r) }

// ReadManifest returns the directory's current manifest. ok is false when no
// manifest exists (a fresh directory); a present-but-corrupt manifest is an
// error.
func ReadManifest(fsys FS) (m Manifest, ok bool, err error) {
	return readManifest(fsys)
}

// Feed serves positional reads over one live log for replication. It is safe
// for concurrent use with the log's writer: segment lists are snapshotted
// under the log's mutex, record scans re-verify CRC and sequence continuity,
// and a read racing a checkpoint's truncation surfaces as
// ErrPositionTruncated — the follower re-roots from the snapshot, exactly
// like a crash recovery would.
type Feed struct {
	fs  FS
	log *Log
}

// NewFeed returns a Feed over the directory fsys whose live writer is log.
func NewFeed(fsys FS, log *Log) *Feed { return &Feed{fs: fsys, log: log} }

// LastSeq reports the highest sequence number the log has assigned — the
// position a fully caught-up follower converges to.
func (f *Feed) LastSeq() uint64 { return f.log.LastSeq() }

// SnapshotSeq reports the last sequence number the current checkpoint covers
// (the manifest's position). Records at or below it may be truncated at any
// moment.
func (f *Feed) SnapshotSeq() (uint64, error) {
	m, ok, err := readManifest(f.fs)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, fmt.Errorf("wal: feed directory holds no manifest")
	}
	return m.SnapshotSeq, nil
}

// OpenSnapshot opens the current checkpoint snapshot for reading and returns
// the sequence number it covers. The caller must Close the reader. A
// checkpoint may land between the manifest read and the open; the one-retry
// loop absorbs the rename race (the new manifest is already durable when the
// old snapshot is removed, so the second read always names a live file).
func (f *Feed) OpenSnapshot() (rc io.ReadCloser, seq uint64, err error) {
	for attempt := 0; ; attempt++ {
		m, ok, rerr := readManifest(f.fs)
		if rerr != nil {
			return nil, 0, rerr
		}
		if !ok {
			return nil, 0, fmt.Errorf("wal: feed directory holds no manifest")
		}
		rc, err = f.fs.Open(m.Snapshot)
		if err == nil {
			return rc, m.SnapshotSeq, nil
		}
		if attempt >= 3 {
			return nil, 0, fmt.Errorf("wal: snapshot %s vanished under the feed: %w", m.Snapshot, err)
		}
	}
}

// segmentsSnapshot copies the managed segment list under the log's mutex.
func (l *Log) segmentsSnapshot() []segment {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]segment, len(l.segments))
	copy(out, l.segments)
	return out
}

// ReadAfter collects records with Seq > after, in sequence order, until
// maxBytes of framed records are gathered or the log's readable tail ends.
// The returned slice is strictly contiguous from after+1: the first record is
// after+1 and each next one increments by one, so a follower can apply the
// batch blindly after its own revalidation. When the records right after the
// position no longer exist — truncated by a checkpoint — ReadAfter returns
// ErrPositionTruncated and the caller ships the snapshot instead.
//
// Records still buffered in the commit pipeline (written by no leader yet)
// are not visible; they ship on a later call. Reading races appends safely:
// a scan observing a half-written record stops at the CRC, which just shortens
// this batch.
func (f *Feed) ReadAfter(after uint64, maxBytes int) ([]Record, error) {
	if maxBytes <= 0 {
		maxBytes = 1 << 20
	}
	segs := f.log.segmentsSnapshot()
	if len(segs) == 0 {
		// Nothing written since the covering checkpoint: the position is
		// current only if no newer records should exist below it.
		return f.emptyOrTruncated(after)
	}
	// Find the first segment that can contain after+1: the last one whose
	// first sequence number is at or below it.
	start := -1
	for i, s := range segs {
		if s.first <= after+1 {
			start = i
		}
	}
	if start < 0 {
		// Every retained segment starts beyond the requested position — the
		// records in between were truncated away.
		return nil, ErrPositionTruncated
	}
	var out []Record
	bytes := 0
	next := after + 1
	for _, seg := range segs[start:] {
		if bytes >= maxBytes {
			break
		}
		if seg.first > next {
			// A gap between retained segments (possible transiently while a
			// truncation deletes oldest-first): the tail is unreachable from
			// this position.
			break
		}
		_, _, err := scanSegment(f.fs, seg.name, seg.first, func(r Record) {
			if r.Seq != next || bytes >= maxBytes {
				return
			}
			out = append(out, r)
			bytes += recordSize(r)
			next++
		})
		if err != nil {
			// The segment vanished mid-read: a checkpoint truncated it. If we
			// already chained records the batch is still a valid contiguous
			// prefix; otherwise report the truncation.
			if len(out) == 0 {
				return nil, ErrPositionTruncated
			}
			break
		}
	}
	if len(out) == 0 {
		return f.emptyOrTruncated(after)
	}
	return out, nil
}

// emptyOrTruncated disambiguates "no records after the position": caught up
// (the position is at or beyond everything the snapshot does not already
// cover) versus truncated (a checkpoint advanced past it, so records the
// follower never saw are gone).
func (f *Feed) emptyOrTruncated(after uint64) ([]Record, error) {
	snapSeq, err := f.SnapshotSeq()
	if err != nil {
		return nil, err
	}
	if after < snapSeq {
		return nil, ErrPositionTruncated
	}
	return nil, nil
}
