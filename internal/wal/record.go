package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// On-disk record framing (all integers little-endian):
//
//	u32 payloadLen
//	u32 crc32c(payload)
//	payload:
//	  u64 seq
//	  u8  kind
//	  u32 len(S) | S bytes
//	  u32 len(P) | P bytes
//	  u32 len(O) | O bytes
//	  u64 scoreBits (IEEE-754)
//
// The CRC covers the payload only; a corrupt length field fails either the
// sanity bound or the CRC of whatever bytes it frames. Sequence numbers are
// assigned densely starting at 1 and never reused, so recovery can verify
// continuity across segment boundaries and a snapshot's position in the log
// is just "the last sequence number it covers".

// Kind identifiers. The reader fails loudly on kinds it does not understand
// rather than skipping records whose semantics it would silently drop.
const (
	// KindInsert logs one triple insertion; Score carries the triple score.
	KindInsert = byte(1)
	// KindTombstone logs a retraction of every live copy of the (S,P,O)
	// key; Score is ignored and written as 0. An update logs as a tombstone
	// followed by an insert of the new score.
	KindTombstone = byte(2)
)

// Record is one logged operation. S, P, O are the triple's term strings —
// not dictionary IDs — so replay is deterministic under any shard count and
// any dictionary history: terms re-encode in log order, and subject-hash
// routing re-derives the same global insertion order the acked inserts had.
type Record struct {
	Seq   uint64
	Kind  byte
	S     string
	P     string
	O     string
	Score float64
}

// MaxTermLen mirrors the binary snapshot reader's per-term sanity bound
// (kg.MaxTermLen — the durability layer asserts the two are equal at compile
// time, so they cannot drift apart silently).
const MaxTermLen = 1 << 24

// maxPayload bounds a record's payload: three maximal terms plus the fixed
// fields. Anything larger in a length field is treated as corruption.
const maxPayload = 3*(4+MaxTermLen) + 8 + 1 + 8

// castagnoli is the CRC32C table (the polynomial used by ext4, iSCSI and
// most storage formats, with hardware support on current CPUs).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// recordSize returns the framed size of r.
func recordSize(r Record) int {
	return 8 + 8 + 1 + 4 + len(r.S) + 4 + len(r.P) + 4 + len(r.O) + 8
}

// appendRecord frames r onto buf.
func appendRecord(buf []byte, r Record) []byte {
	payloadLen := recordSize(r) - 8
	start := len(buf)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(payloadLen))
	buf = binary.LittleEndian.AppendUint32(buf, 0) // CRC patched below
	pstart := len(buf)
	buf = binary.LittleEndian.AppendUint64(buf, r.Seq)
	buf = append(buf, r.Kind)
	for _, s := range [3]string{r.S, r.P, r.O} {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
		buf = append(buf, s...)
	}
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.Score))
	crc := crc32.Checksum(buf[pstart:], castagnoli)
	binary.LittleEndian.PutUint32(buf[start+4:], crc)
	return buf
}

// validRecord checks the invariants a writer enforces before framing, so a
// record that passes CRC at replay but violates them is reported as
// corruption rather than applied.
func validRecord(r Record) error {
	if r.Kind != KindInsert && r.Kind != KindTombstone {
		return fmt.Errorf("wal: unsupported record kind %d", r.Kind)
	}
	if len(r.S) > MaxTermLen || len(r.P) > MaxTermLen || len(r.O) > MaxTermLen {
		return fmt.Errorf("wal: term exceeds %d bytes", MaxTermLen)
	}
	if r.Score < 0 || math.IsNaN(r.Score) || math.IsInf(r.Score, 0) {
		return fmt.Errorf("wal: invalid score %v", r.Score)
	}
	return nil
}

// parsePayload decodes a CRC-verified payload into a Record. Structural
// errors (short fields, oversized terms, unknown kinds, invalid scores) are
// corruption from the reader's point of view.
func parsePayload(p []byte) (Record, error) {
	var r Record
	if len(p) < 8+1 {
		return r, fmt.Errorf("wal: payload truncated (%d bytes)", len(p))
	}
	r.Seq = binary.LittleEndian.Uint64(p)
	r.Kind = p[8]
	p = p[9:]
	for _, dst := range [3]*string{&r.S, &r.P, &r.O} {
		if len(p) < 4 {
			return r, fmt.Errorf("wal: term length truncated")
		}
		l := binary.LittleEndian.Uint32(p)
		p = p[4:]
		if l > MaxTermLen {
			return r, fmt.Errorf("wal: term length %d exceeds bound", l)
		}
		if uint32(len(p)) < l {
			return r, fmt.Errorf("wal: term bytes truncated")
		}
		*dst = string(p[:l])
		p = p[l:]
	}
	if len(p) != 8 {
		return r, fmt.Errorf("wal: payload tail is %d bytes, want 8", len(p))
	}
	r.Score = math.Float64frombits(binary.LittleEndian.Uint64(p))
	if err := validRecord(r); err != nil {
		return r, err
	}
	return r, nil
}
