package wal

import (
	"errors"
	"io"
	"testing"
)

// feedFixture opens a log over a fresh MemFS with a planted manifest at
// snapSeq and appends n records, using a small segment size so rotation is
// exercised.
func feedFixture(t *testing.T, snapSeq uint64, n int) (*MemFS, *Log, *Feed) {
	t.Helper()
	fs := NewMemFS()
	initManifest(t, fs, snapSeq)
	l, _, err := Open(fs, Options{Policy: SyncAlways, SegmentSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	for i := 0; i < n; i++ {
		if err := l.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	return fs, l, NewFeed(fs, l)
}

func TestFeedReadAfterContiguous(t *testing.T) {
	const n = 50
	_, l, feed := feedFixture(t, 0, n)
	if l.SegmentCount() < 2 {
		t.Fatalf("fixture did not rotate: %d segments", l.SegmentCount())
	}
	for after := uint64(0); after <= n; after++ {
		recs, err := feed.ReadAfter(after, 1<<20)
		if err != nil {
			t.Fatalf("ReadAfter(%d): %v", after, err)
		}
		if got, want := len(recs), int(n-after); got != want {
			t.Fatalf("ReadAfter(%d) returned %d records, want %d", after, got, want)
		}
		for i, r := range recs {
			if r.Seq != after+uint64(i)+1 {
				t.Fatalf("ReadAfter(%d)[%d].Seq = %d, want %d", after, i, r.Seq, after+uint64(i)+1)
			}
			want := rec(int(r.Seq) - 1)
			want.Seq = r.Seq
			if r != want {
				t.Fatalf("ReadAfter(%d)[%d] = %+v, want %+v", after, i, r, want)
			}
		}
	}
}

func TestFeedReadAfterRespectsMaxBytes(t *testing.T) {
	const n = 40
	_, _, feed := feedFixture(t, 0, n)
	var applied uint64
	rounds := 0
	for applied < n {
		recs, err := feed.ReadAfter(applied, 64)
		if err != nil {
			t.Fatalf("ReadAfter(%d): %v", applied, err)
		}
		if len(recs) == 0 {
			t.Fatalf("ReadAfter(%d) returned no records before catching up", applied)
		}
		for _, r := range recs {
			if r.Seq != applied+1 {
				t.Fatalf("gap: seq %d after applied %d", r.Seq, applied)
			}
			applied = r.Seq
		}
		rounds++
	}
	if rounds < 2 {
		t.Fatalf("maxBytes=64 finished in %d round; expected batching", rounds)
	}
}

func TestFeedTruncatedPositionFallsBackToSnapshot(t *testing.T) {
	const n = 60
	fs, l, feed := feedFixture(t, 0, n)
	// Checkpoint at 40: new snapshot + manifest, then truncate the log.
	const snapSeq = 40
	initManifest(t, fs, snapSeq)
	if err := l.TruncateThrough(snapSeq); err != nil {
		t.Fatal(err)
	}
	// A position inside the truncated range must redirect to the snapshot…
	if _, err := feed.ReadAfter(10, 1<<20); !errors.Is(err, ErrPositionTruncated) {
		t.Fatalf("ReadAfter(10) after truncation = %v, want ErrPositionTruncated", err)
	}
	// …whose seq covers the missing records.
	rc, seq, err := feed.OpenSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	rc.Close()
	if seq != snapSeq {
		t.Fatalf("OpenSnapshot seq = %d, want %d", seq, snapSeq)
	}
	// Positions at or past the retained tail still read fine. TruncateThrough
	// keeps the active segment, so some records <= snapSeq may survive; the
	// contract only requires positions >= snapSeq to work.
	recs, err := feed.ReadAfter(snapSeq, 1<<20)
	if err != nil {
		t.Fatalf("ReadAfter(%d): %v", snapSeq, err)
	}
	if len(recs) != n-snapSeq || recs[0].Seq != snapSeq+1 {
		t.Fatalf("ReadAfter(%d): %d records starting %d", snapSeq, len(recs), recs[0].Seq)
	}
}

func TestFeedCaughtUpReturnsEmpty(t *testing.T) {
	const n = 7
	_, _, feed := feedFixture(t, 0, n)
	recs, err := feed.ReadAfter(n, 1<<20)
	if err != nil || len(recs) != 0 {
		t.Fatalf("caught-up ReadAfter = %d records, %v; want 0, nil", len(recs), err)
	}
	if got := feed.LastSeq(); got != n {
		t.Fatalf("LastSeq = %d, want %d", got, n)
	}
}

func TestFeedEmptyLogBehindSnapshotIsTruncated(t *testing.T) {
	// A follower at seq 3 pulling from a primary whose log starts fresh after
	// a checkpoint at 10 must be sent the snapshot, not told "caught up".
	fs := NewMemFS()
	initManifest(t, fs, 10)
	l, _, err := Open(fs, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	feed := NewFeed(fs, l)
	if _, err := feed.ReadAfter(3, 1<<20); !errors.Is(err, ErrPositionTruncated) {
		t.Fatalf("ReadAfter(3) = %v, want ErrPositionTruncated", err)
	}
	if recs, err := feed.ReadAfter(10, 1<<20); err != nil || len(recs) != 0 {
		t.Fatalf("ReadAfter(10) = %d records, %v; want caught up", len(recs), err)
	}
}

func TestFeedTornTailShortensBatch(t *testing.T) {
	// Written-but-torn bytes at the segment tail must shorten the batch, not
	// corrupt it: the feed serves the valid prefix only.
	fs, l, feed := feedFixture(t, 0, 5)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Append garbage to the last segment image to simulate a torn append
	// racing the read.
	names, err := fs.List()
	if err != nil {
		t.Fatal(err)
	}
	var last string
	for _, name := range names {
		if _, ok := parseSegmentName(name); ok && name > last {
			last = name
		}
	}
	if last == "" {
		t.Fatal("no segment found")
	}
	rc, err := fs.Open(last)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(rc)
	rc.Close()
	if err != nil {
		t.Fatal(err)
	}
	f, err := fs.Create(last) // truncates; rewrite valid bytes + torn tail
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(append(body, 0xde, 0xad, 0xbe)); err != nil {
		t.Fatal(err)
	}
	f.Sync()
	f.Close()
	// Reopen a log view over the same fs for the feed's segment list.
	l2, _, err := Open(fs, Options{Policy: SyncAlways, SegmentSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	feed = NewFeed(fs, l2)
	recs, err := feed.ReadAfter(0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 || recs[len(recs)-1].Seq != 5 {
		t.Fatalf("torn tail: got %d records, last seq %d", len(recs), recs[len(recs)-1].Seq)
	}
}

func TestFrameRecordRoundTrips(t *testing.T) {
	want := Record{Seq: 42, Kind: KindTombstone, S: "s", P: "p", O: "o"}
	framed := FrameRecord(nil, want)
	var got []Record
	n, err := ReadRecords(bytesReader(framed), 42, func(r Record) error {
		got = append(got, r)
		return nil
	})
	if err != nil || n != 1 || len(got) != 1 || got[0] != want {
		t.Fatalf("round trip: n=%d err=%v got=%+v", n, err, got)
	}
}

// bytesReader avoids importing bytes just for one reader.
func bytesReader(b []byte) io.Reader { return &sliceReader{b: b} }

type sliceReader struct{ b []byte }

func (r *sliceReader) Read(p []byte) (int, error) {
	if len(r.b) == 0 {
		return 0, io.EOF
	}
	n := copy(p, r.b)
	r.b = r.b[n:]
	return n, nil
}
