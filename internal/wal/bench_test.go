package wal

import (
	"sync/atomic"
	"testing"
	"time"
)

// BenchmarkAppend measures per-record append cost on the real filesystem
// under each sync policy, sequentially and with concurrent appenders (where
// group commit batches fsyncs). SyncAlways sequential is the worst case by
// design: every append pays a full fsync alone.
func BenchmarkAppend(b *testing.B) {
	for _, pol := range []SyncPolicy{SyncNone, SyncInterval, SyncAlways} {
		open := func(b *testing.B) *Log {
			fs, err := DirFS(b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			initManifest(b, fs, 0)
			l, _, err := Open(fs, Options{Policy: pol, Interval: 10 * time.Millisecond})
			if err != nil {
				b.Fatal(err)
			}
			return l
		}
		b.Run(pol.String(), func(b *testing.B) {
			l := open(b)
			defer l.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := l.Append(rec(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(pol.String()+"-parallel", func(b *testing.B) {
			l := open(b)
			defer l.Close()
			var n atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if err := l.Append(rec(int(n.Add(1)))); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}
