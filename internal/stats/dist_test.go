package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func uniform01() PiecewiseConst {
	return PiecewiseConst{Bounds: []float64{0, 1}, Heights: []float64{1}}
}

func twoBucket(sigma, pTail, hi float64) PiecewiseConst {
	return PiecewiseConst{
		Bounds:  []float64{0, sigma, hi},
		Heights: []float64{pTail / sigma, (1 - pTail) / (hi - sigma)},
	}
}

func TestPiecewiseConstValidate(t *testing.T) {
	if err := uniform01().Validate(); err != nil {
		t.Fatalf("uniform: %v", err)
	}
	bad := PiecewiseConst{Bounds: []float64{0, 1}, Heights: []float64{0.5}}
	if err := bad.Validate(); err == nil {
		t.Fatal("half-mass density validated")
	}
	neg := PiecewiseConst{Bounds: []float64{0, 1, 2}, Heights: []float64{2, -1}}
	if err := neg.Validate(); err == nil {
		t.Fatal("negative height validated")
	}
	nonzero := PiecewiseConst{Bounds: []float64{0.5, 1}, Heights: []float64{2}}
	if err := nonzero.Validate(); err == nil {
		t.Fatal("support not starting at 0 validated")
	}
}

func TestPiecewiseConstCDF(t *testing.T) {
	d := twoBucket(0.3, 0.2, 1)
	cases := []struct{ x, want float64 }{
		{-1, 0}, {0, 0},
		{0.15, 0.1}, // half of the tail bucket's 0.2 mass
		{0.3, 0.2},  // full tail bucket
		{0.65, 0.6}, // tail + half of the top bucket
		{1, 1}, {2, 1},
	}
	for _, c := range cases {
		if got := d.CDF(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("CDF(%v): got %v want %v", c.x, got, c.want)
		}
	}
}

func TestPiecewiseConstInvCDFInvertsCDF(t *testing.T) {
	d := twoBucket(0.25, 0.35, 1)
	for p := 0.01; p < 1; p += 0.07 {
		x := d.InvCDF(p)
		if got := d.CDF(x); math.Abs(got-p) > 1e-9 {
			t.Errorf("CDF(InvCDF(%v)) = %v", p, got)
		}
	}
	if d.InvCDF(0) != 0 {
		t.Error("InvCDF(0) must be 0")
	}
	if d.InvCDF(1) != 1 {
		t.Error("InvCDF(1) must be support top")
	}
}

func TestPiecewiseConstMean(t *testing.T) {
	if got := uniform01().Mean(); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("uniform mean: got %v want 0.5", got)
	}
	// Heavily top-weighted density has mean near the top.
	d := twoBucket(0.9, 0.05, 1)
	if d.Mean() < 0.85 {
		t.Fatalf("top-heavy mean too low: %v", d.Mean())
	}
}

func TestPiecewiseConstTailMass(t *testing.T) {
	d := uniform01()
	// ∫_x^1 t dt = (1-x²)/2.
	for _, x := range []float64{0, 0.25, 0.5, 0.9, 1} {
		want := (1 - x*x) / 2
		if got := d.TailMass(x); math.Abs(got-want) > 1e-12 {
			t.Errorf("TailMass(%v): got %v want %v", x, got, want)
		}
	}
	if got := d.TailMass(0); math.Abs(got-d.Mean()) > 1e-12 {
		t.Error("TailMass(0) must equal the mean")
	}
}

func TestScale(t *testing.T) {
	d := twoBucket(0.3, 0.2, 1)
	s := d.Scale(0.5)
	if err := s.Validate(); err != nil {
		t.Fatalf("scaled density invalid: %v", err)
	}
	if s.Hi() != 0.5 {
		t.Fatalf("scaled hi: got %v want 0.5", s.Hi())
	}
	if got, want := s.Mean(), 0.5*d.Mean(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("scaled mean: got %v want %v", got, want)
	}
	// CDF at scaled point must match original.
	if got, want := s.CDF(0.15), d.CDF(0.3); math.Abs(got-want) > 1e-12 {
		t.Fatalf("scaled CDF: got %v want %v", got, want)
	}
}

func TestPiecewiseLinearCDFAndInverse(t *testing.T) {
	// Triangle density on [0,2]: peak at 1 — the convolution of two
	// uniforms on [0,1].
	tri := PiecewiseLinear{Xs: []float64{0, 1, 2}, Ys: []float64{0, 1, 0}}
	if err := tri.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := tri.CDF(1); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("triangle CDF(1): got %v want 0.5", got)
	}
	if got := tri.CDF(0.5); math.Abs(got-0.125) > 1e-12 {
		t.Fatalf("triangle CDF(0.5): got %v want 0.125", got)
	}
	for p := 0.02; p < 1; p += 0.07 {
		x := tri.InvCDF(p)
		if got := tri.CDF(x); math.Abs(got-p) > 1e-9 {
			t.Errorf("triangle CDF(InvCDF(%v)) = %v", p, got)
		}
	}
	if got := tri.Mean(); math.Abs(got-1) > 1e-12 {
		t.Fatalf("triangle mean: got %v want 1", got)
	}
}

func TestPiecewiseLinearTailMass(t *testing.T) {
	tri := PiecewiseLinear{Xs: []float64{0, 1, 2}, Ys: []float64{0, 1, 0}}
	// By symmetry TailMass(1) = ∫_1^2 t·(2-t) dt = 2/3... compute directly:
	// ∫_1^2 t(2-t)dt = [t² - t³/3]_1^2 = (4 - 8/3) - (1 - 1/3) = 4/3 - 2/3 = 2/3.
	if got := tri.TailMass(1); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("triangle TailMass(1): got %v want 2/3", got)
	}
	if got := tri.TailMass(0); math.Abs(got-tri.Mean()) > 1e-12 {
		t.Fatal("TailMass(0) must equal mean")
	}
	if got := tri.TailMass(2); got != 0 {
		t.Fatalf("TailMass(hi): got %v want 0", got)
	}
}

func TestExpectedAtRank(t *testing.T) {
	d := uniform01()
	// For uniform, E(X(j)) ≈ j/(m+1): rank 1 of n=9 → 9/10 = 0.9.
	if got := ExpectedAtRank(d, 9, 1); math.Abs(got-0.9) > 1e-12 {
		t.Fatalf("rank 1 of 9: got %v want 0.9", got)
	}
	if got := ExpectedAtRank(d, 9, 9); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("rank 9 of 9: got %v want 0.1", got)
	}
	if got := ExpectedAtRank(d, 5, 6); got != 0 {
		t.Fatalf("rank beyond n must be 0: got %v", got)
	}
	if got := ExpectedAtRank(d, 5, 0); got != 0 {
		t.Fatalf("rank 0 must be 0: got %v", got)
	}
	// Monotone in rank: better ranks have higher expected scores.
	prev := math.Inf(1)
	for i := 1; i <= 5; i++ {
		v := ExpectedAtRank(d, 5, i)
		if v > prev {
			t.Fatalf("expected score must not increase with rank: rank %d %v > %v", i, v, prev)
		}
		prev = v
	}
}

// quickPC generates a random valid piecewise-constant density.
func quickPC(rng *rand.Rand) PiecewiseConst {
	n := 1 + rng.Intn(4)
	bounds := []float64{0}
	x := 0.0
	for i := 0; i < n; i++ {
		x += 0.05 + rng.Float64()
		bounds = append(bounds, x)
	}
	masses := make([]float64, n)
	tot := 0.0
	for i := range masses {
		masses[i] = 0.05 + rng.Float64()
		tot += masses[i]
	}
	heights := make([]float64, n)
	for i := range heights {
		heights[i] = masses[i] / tot / (bounds[i+1] - bounds[i])
	}
	return PiecewiseConst{Bounds: bounds, Heights: heights}
}

func TestQuickInvCDFMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		d := quickPC(rng)
		if err := d.Validate(); err != nil {
			t.Fatal(err)
		}
		prev := -1.0
		for p := 0.0; p <= 1.0; p += 0.04 {
			x := d.InvCDF(p)
			if x < prev-1e-12 {
				t.Fatalf("InvCDF not monotone at p=%v", p)
			}
			prev = x
		}
	}
}

func TestQuickCDFBounds(t *testing.T) {
	f := func(seed int64, x float64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := quickPC(rng)
		c := d.CDF(x)
		return c >= 0 && c <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
