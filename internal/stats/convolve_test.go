package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestConvolveUniformsGivesTriangle(t *testing.T) {
	pl := Convolve(uniform01(), uniform01())
	if err := pl.Validate(); err != nil {
		t.Fatal(err)
	}
	if pl.Hi() != 2 {
		t.Fatalf("support: got %v want 2", pl.Hi())
	}
	// Triangle: pdf(1) = 1, pdf(0.5) = 0.5, pdf(1.5) = 0.5.
	for _, c := range []struct{ x, want float64 }{
		{0, 0}, {0.5, 0.5}, {1, 1}, {1.5, 0.5}, {2, 0},
	} {
		if got := pl.PDF(c.x); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("pdf(%v): got %v want %v", c.x, got, c.want)
		}
	}
	if got := pl.Mean(); math.Abs(got-1) > 1e-9 {
		t.Fatalf("mean: got %v want 1", got)
	}
}

func TestConvolvePreservesMassAndMean(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 40; trial++ {
		a, b := quickPC(rng), quickPC(rng)
		pl := Convolve(a, b)
		if err := pl.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Mean of the sum = sum of means (independence).
		want := a.Mean() + b.Mean()
		if got := pl.Mean(); math.Abs(got-want) > 1e-6 {
			t.Fatalf("trial %d: mean %v want %v", trial, got, want)
		}
		if got := pl.Hi(); math.Abs(got-(a.Hi()+b.Hi())) > 1e-9 {
			t.Fatalf("trial %d: support %v want %v", trial, got, a.Hi()+b.Hi())
		}
	}
}

func TestConvolveCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		a, b := quickPC(rng), quickPC(rng)
		ab := Convolve(a, b)
		ba := Convolve(b, a)
		for x := 0.0; x <= ab.Hi(); x += ab.Hi() / 37 {
			if math.Abs(ab.PDF(x)-ba.PDF(x)) > 1e-9 {
				t.Fatalf("trial %d: pdf differs at %v: %v vs %v", trial, x, ab.PDF(x), ba.PDF(x))
			}
		}
	}
}

func TestConvolveAgainstMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	a := twoBucket(0.3, 0.2, 1)
	b := twoBucket(0.6, 0.5, 1)
	pl := Convolve(a, b)
	// Monte-Carlo estimate of the CDF at a few probes.
	const samples = 200000
	probes := []float64{0.4, 0.8, 1.2, 1.6}
	counts := make([]int, len(probes))
	for i := 0; i < samples; i++ {
		x := a.InvCDF(rng.Float64()) + b.InvCDF(rng.Float64())
		for j, p := range probes {
			if x <= p {
				counts[j]++
			}
		}
	}
	for j, p := range probes {
		mc := float64(counts[j]) / samples
		if got := pl.CDF(p); math.Abs(got-mc) > 0.01 {
			t.Errorf("CDF(%v): analytic %v vs monte-carlo %v", p, got, mc)
		}
	}
}

func TestConvolveAllSingleInput(t *testing.T) {
	d := twoBucket(0.3, 0.2, 1)
	got := ConvolveAll([]PiecewiseConst{d}, 2)
	if got.Hi() != 1 {
		t.Fatalf("single input support: got %v", got.Hi())
	}
	if math.Abs(got.Mean()-d.Mean()) > 1e-12 {
		t.Fatal("single input must be returned unchanged")
	}
}

func TestConvolveAllThreePatterns(t *testing.T) {
	ds := []PiecewiseConst{uniform01(), uniform01(), uniform01()}
	got := ConvolveAll(ds, 2)
	if math.Abs(got.Hi()-3) > 1e-9 {
		t.Fatalf("support: got %v want 3", got.Hi())
	}
	// The paper's intermediate two-bucket refit assigns bucket probability
	// by score-mass share, which deliberately overweights high scores — the
	// mean drifts upward but must stay plausible (between the true mean 1.5
	// and the support top).
	if m := got.Mean(); m < 1.5-0.1 || m > 2.6 {
		t.Fatalf("mean: got %v, want within [1.4, 2.6]", m)
	}
	// The final distribution must still be a valid density.
	if pl, ok := got.(PiecewiseLinear); ok {
		if err := pl.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestConvolveAllEmpty(t *testing.T) {
	got := ConvolveAll(nil, 2)
	if got.Hi() != 1 {
		t.Fatalf("empty input fallback: got hi=%v", got.Hi())
	}
}

func TestRefitPreservesTailShape(t *testing.T) {
	tri := Convolve(uniform01(), uniform01())
	rf := Refit(tri)
	if err := rf.Validate(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(rf.Hi()-2) > 1e-9 {
		t.Fatalf("refit support: got %v want 2", rf.Hi())
	}
	// The boundary σ must satisfy TailMass(σ) ≈ 0.8·mean.
	sigma := rf.Bounds[1]
	if got, want := tri.TailMass(sigma), 0.8*tri.Mean(); math.Abs(got-want) > 1e-6 {
		t.Fatalf("refit boundary: TailMass(σ)=%v want %v", got, want)
	}
	// Mean should be roughly preserved.
	if math.Abs(rf.Mean()-tri.Mean()) > 0.25 {
		t.Fatalf("refit mean drifted: %v vs %v", rf.Mean(), tri.Mean())
	}
}

func TestRefitNMoreBucketsCloserMean(t *testing.T) {
	tri := Convolve(twoBucket(0.2, 0.3, 1), twoBucket(0.7, 0.6, 1))
	err2 := math.Abs(Refit(tri).Mean() - tri.Mean())
	err8 := math.Abs(RefitN(tri, 8).Mean() - tri.Mean())
	if err8 > err2+1e-9 {
		t.Fatalf("8-bucket refit should not be worse than 2-bucket: %v vs %v", err8, err2)
	}
	if err := RefitN(tri, 8).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestQuantiles(t *testing.T) {
	qs := Quantiles(uniform01(), 9)
	if len(qs) != 9 {
		t.Fatalf("got %d quantiles", len(qs))
	}
	for i, q := range qs {
		want := float64(i+1) / 10
		if math.Abs(q-want) > 1e-9 {
			t.Errorf("quantile %d: got %v want %v", i, q, want)
		}
	}
}
