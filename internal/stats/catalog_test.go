package stats

import (
	"math"
	"testing"

	"specqp/internal/kg"
)

// catalogStore builds a small store: 6 entities typed A (scores 60..10),
// 3 of them also typed B.
func catalogStore(t *testing.T) (*kg.Store, kg.Pattern, kg.Pattern) {
	t.Helper()
	st := kg.NewStore(nil)
	add := func(s, o string, sc float64) {
		if err := st.AddSPO(s, "type", o, sc); err != nil {
			t.Fatal(err)
		}
	}
	for i, sc := range []float64{60, 50, 40, 30, 20, 10} {
		add(string(rune('a'+i)), "A", sc)
	}
	add("a", "B", 33)
	add("c", "B", 22)
	add("e", "B", 11)
	st.Freeze()
	ty, _ := st.Dict().Lookup("type")
	aID, _ := st.Dict().Lookup("A")
	bID, _ := st.Dict().Lookup("B")
	pa := kg.NewPattern(kg.Var("s"), kg.Const(ty), kg.Const(aID))
	pb := kg.NewPattern(kg.Var("s"), kg.Const(ty), kg.Const(bID))
	return st, pa, pb
}

func TestPatternDistCachedAndValid(t *testing.T) {
	st, pa, _ := catalogStore(t)
	cat := NewCatalog(st, 2, nil)
	d, m, ok := cat.PatternDist(pa)
	if !ok {
		t.Fatal("pattern with matches reported !ok")
	}
	if m != 6 {
		t.Fatalf("m: got %d want 6", m)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	d2, _, _ := cat.PatternDist(pa)
	if &d.Bounds[0] != &d2.Bounds[0] {
		t.Fatal("second PatternDist call did not hit the cache")
	}
}

func TestPatternDistEmptyPattern(t *testing.T) {
	st, pa, _ := catalogStore(t)
	cat := NewCatalog(st, 2, nil)
	missing := kg.NewPattern(pa.S, pa.P, kg.Const(kg.ID(9999)))
	// Encode a dummy so the ID space is big enough for Decode-free paths.
	st.Dict().Encode("unused-type")
	if _, _, ok := cat.PatternDist(missing); ok {
		t.Fatal("empty pattern reported ok")
	}
}

func TestExactCounter(t *testing.T) {
	st, pa, pb := catalogStore(t)
	c := ExactCounter{Store: st}
	q := kg.NewQuery(pa, pb)
	if got := c.QueryCount(q); got != 3 {
		t.Fatalf("exact count: got %d want 3", got)
	}
}

func TestEstimatedCounterIndependence(t *testing.T) {
	st, pa, pb := catalogStore(t)
	c := EstimatedCounter{Store: st}
	q := kg.NewQuery(pa, pb)
	// 6·3 / max distinct subjects (6) = 3.
	if got := c.QueryCount(q); got != 3 {
		t.Fatalf("estimated count: got %d want 3", got)
	}
	single := kg.NewQuery(pa)
	if got := c.QueryCount(single); got != 6 {
		t.Fatalf("single pattern estimate: got %d want 6", got)
	}
}

func TestQueryCountCaching(t *testing.T) {
	st, pa, pb := catalogStore(t)
	calls := 0
	cat := NewCatalog(st, 2, countFunc(func(q kg.Query) int {
		calls++
		return st.Count(q)
	}))
	q := kg.NewQuery(pa, pb)
	if cat.QueryCount(q) != 3 || cat.QueryCount(q) != 3 {
		t.Fatal("wrong count")
	}
	if calls != 1 {
		t.Fatalf("counter invoked %d times, want 1", calls)
	}
	// A different query misses the cache.
	cat.QueryCount(kg.NewQuery(pa))
	if calls != 2 {
		t.Fatalf("counter invoked %d times, want 2", calls)
	}
}

type countFunc func(kg.Query) int

func (f countFunc) QueryCount(q kg.Query) int { return f(q) }

func TestQueryKeyVariableWiring(t *testing.T) {
	st, pa, _ := catalogStore(t)
	ty := pa.P
	// Path query ?x type ?y . ?y type ?z vs ?x type ?y . ?z type ?w differ
	// in wiring and must not share cache entries.
	q1 := kg.NewQuery(
		kg.NewPattern(kg.Var("x"), ty, kg.Var("y")),
		kg.NewPattern(kg.Var("y"), ty, kg.Var("z")),
	)
	q2 := kg.NewQuery(
		kg.NewPattern(kg.Var("x"), ty, kg.Var("y")),
		kg.NewPattern(kg.Var("z"), ty, kg.Var("w")),
	)
	if queryKey(q1) == queryKey(q2) {
		t.Fatal("different variable wiring produced the same query key")
	}
	// Pure renaming must share the key.
	q3 := kg.NewQuery(
		kg.NewPattern(kg.Var("a"), ty, kg.Var("b")),
		kg.NewPattern(kg.Var("b"), ty, kg.Var("c")),
	)
	if queryKey(q1) != queryKey(q3) {
		t.Fatal("variable renaming changed the query key")
	}
	_ = st
}

func TestEstimateQueryN(t *testing.T) {
	st, pa, pb := catalogStore(t)
	cat := NewCatalog(st, 2, nil)
	q := kg.NewQuery(pa, pb)
	est, ok := cat.EstimateQueryN(q, nil, 3)
	if !ok {
		t.Fatal("estimate failed")
	}
	if est.N != 3 {
		t.Fatalf("N: got %d want 3", est.N)
	}
	if math.Abs(est.Dist.Hi()-2) > 1e-9 {
		t.Fatalf("support: got %v want 2", est.Dist.Hi())
	}
	if _, ok := cat.EstimateQueryN(q, nil, 0); ok {
		t.Fatal("n=0 must fail")
	}
}

func TestEstimateQueryWeights(t *testing.T) {
	st, pa, pb := catalogStore(t)
	cat := NewCatalog(st, 2, nil)
	q := kg.NewQuery(pa, pb)
	full, _ := cat.EstimateQueryN(q, nil, 3)
	half, ok := cat.EstimateQueryN(q, []float64{0.5, 1}, 3)
	if !ok {
		t.Fatal("weighted estimate failed")
	}
	if math.Abs(half.Dist.Hi()-1.5) > 1e-9 {
		t.Fatalf("weighted support: got %v want 1.5", half.Dist.Hi())
	}
	if half.Dist.Mean() >= full.Dist.Mean() {
		t.Fatal("down-weighting must lower the expected score")
	}
}

func TestExpectedScoreAtRankMonotoneInRank(t *testing.T) {
	st, pa, pb := catalogStore(t)
	cat := NewCatalog(st, 2, nil)
	q := kg.NewQuery(pa, pb)
	prev := math.Inf(1)
	for i := 1; i <= 3; i++ {
		v, ok := cat.ExpectedScoreAtRank(q, nil, i)
		if !ok {
			t.Fatalf("rank %d: not ok", i)
		}
		if v > prev {
			t.Fatalf("rank %d estimate %v exceeds rank %d estimate %v", i, v, i-1, prev)
		}
		prev = v
	}
	if _, ok := cat.ExpectedScoreAtRank(q, nil, 4); ok {
		t.Fatal("rank beyond answer count must be !ok")
	}
}

func TestCatalogBucketsFloor(t *testing.T) {
	st, _, _ := catalogStore(t)
	cat := NewCatalog(st, 0, nil)
	if cat.Buckets() != 2 {
		t.Fatalf("bucket floor: got %d want 2", cat.Buckets())
	}
	cat8 := NewCatalog(st, 8, nil)
	if cat8.Buckets() != 8 {
		t.Fatalf("buckets: got %d want 8", cat8.Buckets())
	}
}
