package stats

import (
	"sync"

	"specqp/internal/kg"
)

// Catalog caches per-pattern score statistics (the paper's precomputed
// metadata) and exposes query-level distribution estimation. It is safe for
// concurrent use after construction.
type Catalog struct {
	store kg.Graph
	// Buckets selects the histogram resolution: 2 reproduces the paper's
	// model; larger values enable the multi-bucket ablation.
	buckets int

	mu         sync.RWMutex
	cache      map[kg.PatternKey]cachedStats
	countCache map[string]int
	// version is the store content version (kg.Graph.Version) the caches
	// reflect; live inserts move it, and syncVersion discards everything
	// computed against older contents.
	version uint64

	// Counter supplies join cardinalities. The paper uses exact counts
	// (footnote 3); EstimatedCounter enables the selectivity ablation.
	counter Counter
}

type cachedStats struct {
	dist PiecewiseConst
	m    int
	ok   bool
}

// Counter estimates or computes the number of answers of a query.
type Counter interface {
	QueryCount(q kg.Query) int
}

// ExactCounter computes exact join cardinalities with the store's evaluator
// — the configuration the paper evaluates.
type ExactCounter struct{ Store kg.Graph }

// QueryCount implements Counter.
func (c ExactCounter) QueryCount(q kg.Query) int { return c.Store.Count(q) }

// EstimatedCounter estimates join cardinality under the classic
// independence/containment assumption: the product of pattern cardinalities
// divided, per shared variable occurrence, by the number of distinct values
// that variable can take in the joined patterns' relevant position.
type EstimatedCounter struct{ Store kg.Graph }

// QueryCount implements Counter.
func (c EstimatedCounter) QueryCount(q kg.Query) int {
	if len(q.Patterns) == 0 {
		return 0
	}
	est := 1.0
	for _, p := range q.Patterns {
		card := c.Store.Cardinality(p)
		if card == 0 {
			return 0
		}
		est *= float64(card)
	}
	// For each variable appearing in j >= 2 patterns, divide by the
	// (j-1)-th power of the max distinct-value count among its occurrences.
	occ := map[string][]int{}
	for i, p := range q.Patterns {
		for _, v := range p.Vars() {
			occ[v] = append(occ[v], i)
		}
	}
	for v, idxs := range occ {
		if len(idxs) < 2 {
			continue
		}
		maxDistinct := 1
		for _, i := range idxs {
			d := c.distinctValues(q.Patterns[i], v)
			if d > maxDistinct {
				maxDistinct = d
			}
		}
		for j := 1; j < len(idxs); j++ {
			est /= float64(maxDistinct)
		}
	}
	if est < 0 {
		return 0
	}
	return int(est + 0.5)
}

func (c EstimatedCounter) distinctValues(p kg.Pattern, v string) int {
	seen := map[kg.ID]bool{}
	for _, ti := range c.Store.MatchList(p) {
		t := c.Store.Triple(ti)
		if p.S.IsVar && p.S.Name == v {
			seen[t.S] = true
		}
		if p.P.IsVar && p.P.Name == v {
			seen[t.P] = true
		}
		if p.O.IsVar && p.O.Name == v {
			seen[t.O] = true
		}
	}
	if len(seen) == 0 {
		return 1
	}
	return len(seen)
}

// NewCatalog builds a catalog over st using bucket resolution buckets
// (use 2 for the paper's model) and the given cardinality counter (nil means
// exact counting, as in the paper).
func NewCatalog(st kg.Graph, buckets int, counter Counter) *Catalog {
	if buckets < 2 {
		buckets = 2
	}
	if counter == nil {
		counter = ExactCounter{Store: st}
	}
	return &Catalog{
		store:      st,
		buckets:    buckets,
		cache:      make(map[kg.PatternKey]cachedStats),
		countCache: make(map[string]int),
		counter:    counter,
	}
}

// queryKey builds a canonical cache key covering constants and variable
// wiring (variables are numbered in first-use order so renamings collide,
// which is correct: counts are invariant under variable renaming).
func queryKey(q kg.Query) string {
	vs := kg.NewVarSet(q)
	buf := make([]byte, 0, len(q.Patterns)*15)
	emit := func(t kg.Term) {
		if t.IsVar {
			buf = append(buf, 0xFF, byte(vs.Index(t.Name)))
			return
		}
		buf = append(buf, 0, byte(t.ID), byte(t.ID>>8), byte(t.ID>>16), byte(t.ID>>24))
	}
	for _, p := range q.Patterns {
		emit(p.S)
		emit(p.P)
		emit(p.O)
	}
	return string(buf)
}

// Store returns the underlying triple store.
func (c *Catalog) Store() kg.Graph { return c.store }

// syncVersion discards every cached statistic when the store has been
// mutated since it was computed (live ingest moves Graph.Version on each
// insert; compactions do not, since contents are unchanged). It returns the
// version new entries should be tagged against: writers only publish results
// computed at the still-current version, so a mutation racing a computation
// can at worst drop a cacheable result, never retain a stale one past the
// next sync.
func (c *Catalog) syncVersion() uint64 {
	v := c.store.Version()
	c.mu.RLock()
	cur := c.version
	c.mu.RUnlock()
	if cur == v {
		return v
	}
	c.mu.Lock()
	// Advance only: a goroutine carrying a stale version read (the store
	// moved between its Version() load and this lock) must not rewind the
	// catalog, or its tag would re-admit writes computed from pre-mutation
	// contents.
	if c.version < v {
		c.version = v
		clear(c.cache)
		clear(c.countCache)
	}
	c.mu.Unlock()
	return v
}

// Buckets returns the histogram resolution.
func (c *Catalog) Buckets() int { return c.buckets }

// PatternDist returns the bucket-histogram density of the pattern's
// normalised scores and the match count. ok is false when the pattern has no
// (non-zero-scored) matches.
func (c *Catalog) PatternDist(p kg.Pattern) (PiecewiseConst, int, bool) {
	v := c.syncVersion()
	key := p.Key()
	c.mu.RLock()
	if cs, hit := c.cache[key]; hit {
		c.mu.RUnlock()
		return cs.dist, cs.m, cs.ok
	}
	c.mu.RUnlock()

	scores := c.store.NormalizedScores(p)
	var cs cachedStats
	cs.m = len(scores)
	if c.buckets == 2 {
		if ps, err := FitTwoBucket(scores); err == nil {
			cs.dist, cs.ok = ps.Dist(), true
		}
	} else {
		if d, err := FitNBucket(scores, c.buckets); err == nil {
			cs.dist, cs.ok = d, true
		}
	}
	c.mu.Lock()
	if c.version == v {
		c.cache[key] = cs
	}
	c.mu.Unlock()
	return cs.dist, cs.m, cs.ok
}

// QueryEstimate is the estimator's view of one query: the (convolved) score
// density of its answers and the estimated number of answers.
type QueryEstimate struct {
	Dist Dist
	N    int
}

// QueryCount returns the (exact or estimated, per the configured Counter)
// number of answers of q, caching results across repeated plans.
func (c *Catalog) QueryCount(q kg.Query) int {
	v := c.syncVersion()
	key := queryKey(q)
	c.mu.RLock()
	n, hit := c.countCache[key]
	c.mu.RUnlock()
	if hit {
		return n
	}
	n = c.counter.QueryCount(q)
	c.mu.Lock()
	if c.version == v {
		c.countCache[key] = n
	}
	c.mu.Unlock()
	return n
}

// Selectivity returns the join selectivity φ of q under the configured
// Counter: QueryCount(q) / ∏ per-pattern cardinalities; 0 when any pattern
// is empty.
func (c *Catalog) Selectivity(q kg.Query) float64 {
	prod := 1.0
	for _, p := range q.Patterns {
		card := c.store.Cardinality(p)
		if card == 0 {
			return 0
		}
		prod *= float64(card)
	}
	return float64(c.QueryCount(q)) / prod
}

// EstimateQueryN builds the score distribution for a triple pattern query
// per Section 3.1.2 — convolving the per-pattern densities, each optionally
// scaled by a relaxation weight (1 or a zero value means unrelaxed) — with an
// externally supplied answer-count estimate n (the paper's m12 = m·m′·φ).
// ok is false when any pattern has no matches or n == 0.
//
// weights may be nil (all 1) or have len(q.Patterns) entries.
func (c *Catalog) EstimateQueryN(q kg.Query, weights []float64, n int) (QueryEstimate, bool) {
	if n <= 0 {
		return QueryEstimate{}, false
	}
	ds := make([]PiecewiseConst, 0, len(q.Patterns))
	for i, p := range q.Patterns {
		d, _, ok := c.PatternDist(p)
		if !ok {
			return QueryEstimate{}, false
		}
		w := 1.0
		if weights != nil && weights[i] > 0 {
			w = weights[i]
		}
		if w != 1 {
			d = d.Scale(w)
		}
		ds = append(ds, d)
	}
	return QueryEstimate{Dist: ConvolveAll(ds, c.buckets), N: n}, true
}

// EstimateQuery is EstimateQueryN with n taken from the cardinality counter.
func (c *Catalog) EstimateQuery(q kg.Query, weights []float64) (QueryEstimate, bool) {
	return c.EstimateQueryN(q, weights, c.QueryCount(q))
}

// ExpectedScoreAtRank estimates the expected score of the rank-i answer
// (rank 1 = best) of query q under the per-pattern relaxation weights.
// It returns 0, false when the query is estimated to have < i answers.
func (c *Catalog) ExpectedScoreAtRank(q kg.Query, weights []float64, i int) (float64, bool) {
	est, ok := c.EstimateQuery(q, weights)
	if !ok || est.N < i {
		return 0, false
	}
	return ExpectedAtRank(est.Dist, est.N, i), true
}

// ExpectedScoreAtRankN is ExpectedScoreAtRank with an external answer count.
func (c *Catalog) ExpectedScoreAtRankN(q kg.Query, weights []float64, n, i int) (float64, bool) {
	est, ok := c.EstimateQueryN(q, weights, n)
	if !ok || est.N < i {
		return 0, false
	}
	return ExpectedAtRank(est.Dist, est.N, i), true
}
