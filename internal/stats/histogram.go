package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// PatternStats are the four precomputed values the paper stores per triple
// pattern (Section 3.1.1):
//
//	M      — total number of matching triples,
//	SigmaR — normalised score at the rank within which 80% of score mass lies,
//	SR     — cumulative score through that rank,
//	SM     — cumulative score through all ranks.
//
// Hi is the support upper bound (1 for raw patterns; w for weighted ones;
// the number of summed patterns for convolved query distributions).
type PatternStats struct {
	M      int
	SigmaR float64
	SR     float64
	SM     float64
	Hi     float64
}

// ErrNoMatches is returned when fitting statistics over an empty match list.
var ErrNoMatches = errors.New("stats: pattern has no matches")

// massFraction is the paper's 80/20 bucket-boundary rule: the short, tall
// bucket captures 80% of the score mass.
const massFraction = 0.8

// FitTwoBucket computes PatternStats from a pattern's normalised score list
// (sorted descending, values in [0,1], as produced by kg.NormalizedScores).
func FitTwoBucket(scores []float64) (PatternStats, error) {
	return fitMass(scores, massFraction, 1)
}

// fitMass finds the rank r at which cumulative score mass first reaches
// frac·SM, recording σr, Sr and SM with support upper bound hi.
func fitMass(scores []float64, frac, hi float64) (PatternStats, error) {
	if len(scores) == 0 {
		return PatternStats{}, ErrNoMatches
	}
	sm := 0.0
	for i, s := range scores {
		if s < 0 || s > hi+1e-9 {
			return PatternStats{}, fmt.Errorf("stats: score %v at rank %d outside [0,%v]", s, i+1, hi)
		}
		if i > 0 && s > scores[i-1]+1e-9 {
			return PatternStats{}, fmt.Errorf("stats: scores not sorted descending at rank %d", i+1)
		}
		sm += s
	}
	if sm == 0 {
		return PatternStats{}, errors.New("stats: all scores are zero")
	}
	cum := 0.0
	r := len(scores) - 1
	for i, s := range scores {
		cum += s
		if cum >= frac*sm {
			r = i
			break
		}
	}
	sr := 0.0
	for i := 0; i <= r; i++ {
		sr += scores[i]
	}
	return PatternStats{M: len(scores), SigmaR: scores[r], SR: sr, SM: sm, Hi: hi}, nil
}

// Dist materialises the two-bucket density of Section 3.1.1:
//
//	f(x) = (SM−SR)/SM · 1/σr        for 0 ≤ x < σr
//	f(x) = SR/SM · 1/(Hi−σr)        for σr ≤ x ≤ Hi
//
// Degenerate boundaries (σr at 0 or Hi) are nudged inward so both buckets
// keep positive width.
func (ps PatternStats) Dist() PiecewiseConst {
	hi := ps.Hi
	if hi <= 0 {
		hi = 1
	}
	sigma := ps.SigmaR
	const eps = 1e-9
	minW := hi * 1e-6
	if sigma < minW {
		sigma = minW
	}
	if sigma > hi-minW {
		sigma = hi - minW
	}
	pTail := (ps.SM - ps.SR) / ps.SM
	pTop := ps.SR / ps.SM
	if pTail < 0 {
		pTail = 0
	}
	if pTop > 1 {
		pTop = 1
	}
	// Renormalise against accumulated float error.
	tot := pTail + pTop
	if tot <= eps {
		pTail, pTop, tot = 0.5, 0.5, 1
	}
	pTail /= tot
	pTop /= tot
	return PiecewiseConst{
		Bounds:  []float64{0, sigma, hi},
		Heights: []float64{pTail / sigma, pTop / (hi - sigma)},
	}
}

// FitNBucket generalises the fit to n buckets with boundaries at the ranks
// where cumulative score mass crosses j/n of the total, for j = 1..n-1
// (Section 3.1.1's Eq. (1)-(3) family). Used by the multi-bucket ablation the
// paper discusses in Section 4.5.2. Zero-width buckets caused by duplicate
// boundary scores are merged. It returns the density directly.
func FitNBucket(scores []float64, n int) (PiecewiseConst, error) {
	if n < 1 {
		return PiecewiseConst{}, fmt.Errorf("stats: bucket count %d < 1", n)
	}
	if len(scores) == 0 {
		return PiecewiseConst{}, ErrNoMatches
	}
	sm := 0.0
	for _, s := range scores {
		sm += s
	}
	if sm == 0 {
		return PiecewiseConst{}, errors.New("stats: all scores are zero")
	}
	// Walk ranks top-down recording (boundary score, cumulative mass above)
	// at each j/n crossing. Boundaries descend with j.
	type crossing struct{ sigma, cumAbove float64 }
	var crossings []crossing
	cum := 0.0
	j := 1
	for _, s := range scores {
		cum += s
		for j < n && cum >= float64(j)/float64(n)*sm {
			crossings = append(crossings, crossing{sigma: s, cumAbove: cum})
			j++
		}
	}
	// Ascending bounds with the mass that falls inside each bucket.
	// Bucket layout: [0, σ_{last}], ..., [σ_1, hi].
	const minW = 1e-9
	bounds := []float64{0}
	masses := []float64{}
	prevCum := sm // mass below the current lower boundary, walking upward
	for i := len(crossings) - 1; i >= 0; i-- {
		c := crossings[i]
		lo := bounds[len(bounds)-1]
		if c.sigma <= lo+minW || c.sigma >= 1-minW {
			continue // merge zero-width buckets into their neighbour
		}
		bounds = append(bounds, c.sigma)
		masses = append(masses, (prevCum-c.cumAbove)/sm)
		prevCum = c.cumAbove
	}
	bounds = append(bounds, 1)
	masses = append(masses, prevCum/sm)

	heights := make([]float64, len(masses))
	for i := range heights {
		heights[i] = masses[i] / (bounds[i+1] - bounds[i])
	}
	pc := PiecewiseConst{Bounds: bounds, Heights: heights}
	if err := pc.Validate(); err != nil {
		return PiecewiseConst{}, err
	}
	return pc, nil
}

// Refit projects an arbitrary density (typically the piecewise-linear result
// of a convolution) back onto the two-bucket model, implementing Section
// 3.1.2's "this again results in a two-bucket histogram". The bucket boundary
// σ is the score with 80% of the *expected score mass* above it:
//
//	TailMass(σ) = massFraction · Mean
//
// and the bucket probabilities mirror the per-pattern construction with
// SR/SM := massFraction.
func Refit(d Dist) PiecewiseConst {
	hi := d.Hi()
	mean := d.Mean()
	if mean <= 0 || hi <= 0 {
		return PiecewiseConst{Bounds: []float64{0, 1}, Heights: []float64{1}}
	}
	target := massFraction * mean
	// Bisect TailMass(σ) = target; TailMass is decreasing in σ.
	lo, hiX := 0.0, hi
	for i := 0; i < 64; i++ {
		mid := (lo + hiX) / 2
		if d.TailMass(mid) > target {
			lo = mid
		} else {
			hiX = mid
		}
	}
	sigma := (lo + hiX) / 2
	ps := PatternStats{
		M:      0,
		SigmaR: sigma,
		SR:     massFraction,
		SM:     1,
		Hi:     hi,
	}
	return ps.Dist()
}

// RefitN projects a density onto an n-bucket histogram with equal score-mass
// buckets — the generalisation used by the multi-bucket ablation.
func RefitN(d Dist, n int) PiecewiseConst {
	if n < 2 {
		return Refit(d)
	}
	hi := d.Hi()
	mean := d.Mean()
	if mean <= 0 || hi <= 0 {
		return PiecewiseConst{Bounds: []float64{0, 1}, Heights: []float64{1}}
	}
	bounds := make([]float64, 0, n+1)
	bounds = append(bounds, 0)
	// Boundary j has (n-j)/n of score mass above it.
	for j := 1; j < n; j++ {
		target := float64(n-j) / float64(n) * mean
		lo, hiX := 0.0, hi
		for i := 0; i < 64; i++ {
			mid := (lo + hiX) / 2
			if d.TailMass(mid) > target {
				lo = mid
			} else {
				hiX = mid
			}
		}
		bounds = append(bounds, (lo+hiX)/2)
	}
	bounds = append(bounds, hi)
	minW := hi * 1e-9
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1]+minW {
			bounds[i] = bounds[i-1] + minW
		}
	}
	if bounds[n] > hi {
		bounds[n] = hi
		sort.Float64s(bounds)
	}
	heights := make([]float64, n)
	mass := 1 / float64(n)
	for i := 0; i < n; i++ {
		w := bounds[i+1] - bounds[i]
		if w <= 0 {
			w = minW
		}
		heights[i] = mass / w
	}
	return PiecewiseConst{Bounds: bounds, Heights: heights}
}

// Quantiles returns q evenly spaced InvCDF probes of d — convenient for
// debugging and for golden tests.
func Quantiles(d Dist, q int) []float64 {
	out := make([]float64, q)
	for i := 1; i <= q; i++ {
		out[i-1] = d.InvCDF(float64(i) / float64(q+1))
	}
	return out
}

// almostEqual is shared by the package tests.
func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }
