package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFitTwoBucketPaperDefinition(t *testing.T) {
	// Scores with clear 80/20 structure: the first two carry 1.8 of 2.11
	// total mass (85% ≥ 80% crossing happens at rank 2).
	scores := []float64{1.0, 0.8, 0.1, 0.1, 0.05, 0.03, 0.02, 0.01}
	ps, err := FitTwoBucket(scores)
	if err != nil {
		t.Fatal(err)
	}
	if ps.M != 8 {
		t.Fatalf("M: got %d want 8", ps.M)
	}
	sm := 0.0
	for _, s := range scores {
		sm += s
	}
	if math.Abs(ps.SM-sm) > 1e-12 {
		t.Fatalf("SM: got %v want %v", ps.SM, sm)
	}
	// 80% of mass = 1.688; cumulative 1.0, 1.8 → crossing at rank 2 (index 1).
	if ps.SigmaR != 0.8 {
		t.Fatalf("SigmaR: got %v want 0.8", ps.SigmaR)
	}
	if math.Abs(ps.SR-1.8) > 1e-12 {
		t.Fatalf("SR: got %v want 1.8", ps.SR)
	}
}

func TestFitTwoBucketErrors(t *testing.T) {
	if _, err := FitTwoBucket(nil); err != ErrNoMatches {
		t.Fatalf("empty: got %v want ErrNoMatches", err)
	}
	if _, err := FitTwoBucket([]float64{0, 0}); err == nil {
		t.Fatal("all-zero scores accepted")
	}
	if _, err := FitTwoBucket([]float64{0.5, 0.9}); err == nil {
		t.Fatal("unsorted scores accepted")
	}
	if _, err := FitTwoBucket([]float64{1.5}); err == nil {
		t.Fatal("score above hi accepted")
	}
}

func TestPatternStatsDistMatchesPaperFormulas(t *testing.T) {
	ps := PatternStats{M: 100, SigmaR: 0.5, SR: 8, SM: 10, Hi: 1}
	d := ps.Dist()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// f(x) = (SM−SR)/SM · 1/σ = 0.2/0.5 = 0.4 below σ,
	// f(x) = SR/SM · 1/(1−σ) = 0.8/0.5 = 1.6 above σ.
	if got := d.PDF(0.25); math.Abs(got-0.4) > 1e-9 {
		t.Fatalf("tail pdf: got %v want 0.4", got)
	}
	if got := d.PDF(0.75); math.Abs(got-1.6) > 1e-9 {
		t.Fatalf("top pdf: got %v want 1.6", got)
	}
	// cdf at σ = tail mass = 0.2.
	if got := d.CDF(0.5); math.Abs(got-0.2) > 1e-9 {
		t.Fatalf("cdf(σ): got %v want 0.2", got)
	}
}

func TestPatternStatsDistDegenerateBoundaries(t *testing.T) {
	// σ at the support top: the top bucket would be empty.
	top := PatternStats{M: 5, SigmaR: 1, SR: 4, SM: 5, Hi: 1}
	if err := top.Dist().Validate(); err != nil {
		t.Fatalf("σ=hi: %v", err)
	}
	zero := PatternStats{M: 5, SigmaR: 0, SR: 4, SM: 5, Hi: 1}
	if err := zero.Dist().Validate(); err != nil {
		t.Fatalf("σ=0: %v", err)
	}
}

func TestFitNBucketBasics(t *testing.T) {
	scores := make([]float64, 100)
	for i := range scores {
		scores[i] = 1 / float64(i+1) // power-law-ish
	}
	for _, n := range []int{1, 2, 4, 8} {
		d, err := FitNBucket(scores, n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(d.Heights) > n {
			t.Fatalf("n=%d: got %d buckets", n, len(d.Heights))
		}
	}
	if _, err := FitNBucket(scores, 0); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := FitNBucket(nil, 2); err != ErrNoMatches {
		t.Fatal("empty scores accepted")
	}
}

func TestFitNBucketDuplicateScores(t *testing.T) {
	// All scores equal: every boundary collapses; must degrade gracefully.
	scores := []float64{0.5, 0.5, 0.5, 0.5}
	d, err := FitNBucket(scores, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFitNBucketMassSharesMatchScores(t *testing.T) {
	// The paper's model assigns each bucket a probability equal to its
	// score-mass share. Verify the fitted CDF honours that at every bucket
	// boundary against the raw scores.
	rng := rand.New(rand.NewSource(5))
	scores := make([]float64, 500)
	for i := range scores {
		scores[i] = math.Pow(rng.Float64(), 3) // skewed toward 0
	}
	sortDesc(scores)
	sm := 0.0
	for _, s := range scores {
		sm += s
	}
	for _, n := range []int{2, 4, 16} {
		d, err := FitNBucket(scores, n)
		if err != nil {
			t.Fatal(err)
		}
		for bi := 1; bi < len(d.Bounds)-1; bi++ {
			sigma := d.Bounds[bi]
			// Score mass strictly above σ in the raw data (ties at σ count
			// as "above" because the crossing rank is inclusive).
			above := 0.0
			for _, s := range scores {
				if s >= sigma {
					above += s
				}
			}
			wantCDF := 1 - above/sm
			if got := d.CDF(sigma); math.Abs(got-wantCDF) > 0.05 {
				t.Fatalf("n=%d boundary %v: CDF %v want %v", n, sigma, got, wantCDF)
			}
		}
	}
}

func sortDesc(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] > xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// TestQuickFitTwoBucketAlwaysValid: any sorted positive score list in [0,1]
// produces a valid density.
func TestQuickFitTwoBucketAlwaysValid(t *testing.T) {
	f := func(raw []float64) bool {
		scores := make([]float64, 0, len(raw))
		for _, r := range raw {
			v := math.Abs(r)
			v -= math.Floor(v) // into [0,1)
			if v == 0 {
				v = 0.5
			}
			scores = append(scores, v)
		}
		if len(scores) == 0 {
			return true
		}
		sortDesc(scores)
		ps, err := FitTwoBucket(scores)
		if err != nil {
			return false
		}
		return ps.Dist().Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickOrderStatisticsWithinSupport: expected scores at any rank stay
// inside the support for arbitrary densities.
func TestQuickOrderStatisticsWithinSupport(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 100; trial++ {
		d := quickPC(rng)
		n := 1 + rng.Intn(1000)
		for i := 1; i <= n; i += 1 + n/7 {
			v := ExpectedAtRank(d, n, i)
			if v < 0 || v > d.Hi()+1e-9 {
				t.Fatalf("rank %d of %d: %v outside [0,%v]", i, n, v, d.Hi())
			}
		}
	}
}

// TestOrderStatisticsAgainstSimulation validates the David–Nagaraja
// approximation the estimator relies on: the expected max of n uniform
// samples is n/(n+1).
func TestOrderStatisticsAgainstSimulation(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	d := uniform01()
	const n, trials = 20, 20000
	sum := 0.0
	for tr := 0; tr < trials; tr++ {
		max := 0.0
		for i := 0; i < n; i++ {
			if x := rng.Float64(); x > max {
				max = x
			}
		}
		sum += max
	}
	sim := sum / trials
	est := ExpectedAtRank(d, n, 1)
	if math.Abs(sim-est) > 0.01 {
		t.Fatalf("order statistic estimate %v vs simulated %v", est, sim)
	}
}
