package stats

import "sort"

// Convolve computes the exact density of X+Y for independent X ~ a, Y ~ b,
// both piecewise-constant. The convolution of two uniform blocks is a
// trapezoid, so the sum over block pairs is a continuous piecewise-linear
// density; Convolve evaluates it exactly at every pairwise boundary sum
// (Section 3.1.2, Figure 4 of the paper).
func Convolve(a, b PiecewiseConst) PiecewiseLinear {
	// Candidate knots: all sums of bucket boundaries.
	knotSet := make(map[float64]bool, len(a.Bounds)*len(b.Bounds))
	for _, x := range a.Bounds {
		for _, y := range b.Bounds {
			knotSet[x+y] = true
		}
	}
	knots := make([]float64, 0, len(knotSet))
	for k := range knotSet {
		knots = append(knots, k)
	}
	sort.Float64s(knots)

	ys := make([]float64, len(knots))
	for i, x := range knots {
		ys[i] = convAt(a, b, x)
	}
	return PiecewiseLinear{Xs: knots, Ys: ys}
}

// convAt evaluates (f_a * f_b)(x) = Σ_{i,j} h_i·g_j·|[aLo_i,aHi_i] ∩ [x−bHi_j, x−bLo_j]|.
func convAt(a, b PiecewiseConst, x float64) float64 {
	v := 0.0
	for i, ha := range a.Heights {
		if ha == 0 {
			continue
		}
		aLo, aHi := a.Bounds[i], a.Bounds[i+1]
		for j, hb := range b.Heights {
			if hb == 0 {
				continue
			}
			lo := x - b.Bounds[j+1]
			hi := x - b.Bounds[j]
			if lo < aLo {
				lo = aLo
			}
			if hi > aHi {
				hi = aHi
			}
			if hi > lo {
				v += ha * hb * (hi - lo)
			}
		}
	}
	return v
}

// ConvolveAll folds Convolve+Refit over a sequence of piecewise-constant
// densities, re-fitting to the two-bucket model after every step exactly as
// the paper does ("For three or more triple patterns, we repeat the above
// process"). With buckets > 2 it re-fits onto an n-bucket histogram instead
// (the multi-bucket ablation). It returns the final (un-refit) density of the
// last convolution so rank estimates use the richest available shape; for a
// single input it returns that input.
func ConvolveAll(ds []PiecewiseConst, buckets int) Dist {
	switch len(ds) {
	case 0:
		return PiecewiseConst{Bounds: []float64{0, 1}, Heights: []float64{1}}
	case 1:
		return ds[0]
	}
	cur := ds[0]
	var last Dist = cur
	for i := 1; i < len(ds); i++ {
		pl := Convolve(cur, ds[i])
		last = pl
		if i < len(ds)-1 {
			if buckets > 2 {
				cur = RefitN(pl, buckets)
			} else {
				cur = Refit(pl)
			}
		}
	}
	return last
}
