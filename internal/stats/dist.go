// Package stats implements the score-distribution machinery of Spec-QP
// (Section 3.1 of the paper): per-pattern two-bucket histograms fit with the
// 80/20 score-mass rule, the n-bucket generalisation, exact convolution of
// piecewise-constant densities into piecewise-linear ones, re-fitting of
// convolved densities back to bucket histograms via order statistics, and the
// expected-score-at-rank estimator E(X(i)) ≈ F⁻¹(i/(m+1)).
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Dist is a continuous probability distribution over a bounded non-negative
// support [0, Hi]. All Spec-QP score models implement it.
type Dist interface {
	// Hi returns the upper end of the support.
	Hi() float64
	// CDF evaluates the cumulative distribution at x (clamped to [0,1]).
	CDF(x float64) float64
	// InvCDF returns the smallest x with CDF(x) >= p, for p in [0,1].
	InvCDF(p float64) float64
	// Mean returns E[X].
	Mean() float64
	// TailMass returns ∫_x^Hi t·f(t) dt — the expected score mass above x —
	// used when re-fitting convolved distributions to bucket histograms.
	TailMass(x float64) float64
}

// ExpectedAtRank estimates the expected score of the answer at rank i from
// the top (rank 1 = highest) among n i.i.d. samples of d, using the order
// statistics approximation from David & Nagaraja:
//
//	E(X(j)) ≈ F⁻¹(j/(m+1))   with j = n+1-i  (the (n+1-i)-th order statistic).
//
// It returns 0 when n < i (not enough answers to have a rank-i score).
func ExpectedAtRank(d Dist, n, i int) float64 {
	if n < i || i < 1 {
		return 0
	}
	return d.InvCDF(float64(n+1-i) / float64(n+1))
}

// PiecewiseConst is a density that is constant within each bucket.
// Bounds has len(Heights)+1 entries, strictly increasing, Bounds[0] == 0.
// Heights are densities (not probabilities); ∑ Heights[i]·width[i] == 1.
type PiecewiseConst struct {
	Bounds  []float64
	Heights []float64
}

// Validate checks structural invariants and that total mass is ≈ 1.
func (pc PiecewiseConst) Validate() error {
	if len(pc.Bounds) != len(pc.Heights)+1 {
		return fmt.Errorf("stats: bounds/heights mismatch: %d vs %d", len(pc.Bounds), len(pc.Heights))
	}
	if len(pc.Heights) == 0 {
		return errors.New("stats: empty piecewise-constant density")
	}
	if pc.Bounds[0] != 0 {
		return fmt.Errorf("stats: support must start at 0, got %v", pc.Bounds[0])
	}
	mass := 0.0
	for i, h := range pc.Heights {
		w := pc.Bounds[i+1] - pc.Bounds[i]
		if w <= 0 {
			return fmt.Errorf("stats: non-increasing bounds at bucket %d", i)
		}
		if h < 0 {
			return fmt.Errorf("stats: negative height at bucket %d", i)
		}
		mass += h * w
	}
	if math.Abs(mass-1) > 1e-6 {
		return fmt.Errorf("stats: total mass %v != 1", mass)
	}
	return nil
}

// Hi implements Dist.
func (pc PiecewiseConst) Hi() float64 { return pc.Bounds[len(pc.Bounds)-1] }

// PDF evaluates the density at x (0 outside the support; right-continuous at
// bucket boundaries, with the final bound included in the last bucket).
func (pc PiecewiseConst) PDF(x float64) float64 {
	if x < 0 || x > pc.Hi() {
		return 0
	}
	i := sort.SearchFloat64s(pc.Bounds, x)
	// SearchFloat64s returns first index with Bounds[i] >= x.
	if i < len(pc.Bounds) && pc.Bounds[i] == x {
		if i == len(pc.Heights) {
			return pc.Heights[i-1]
		}
		return pc.Heights[i]
	}
	return pc.Heights[i-1]
}

// CDF implements Dist.
func (pc PiecewiseConst) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= pc.Hi() {
		return 1
	}
	c := 0.0
	for i, h := range pc.Heights {
		lo, hi := pc.Bounds[i], pc.Bounds[i+1]
		if x <= lo {
			break
		}
		if x >= hi {
			c += h * (hi - lo)
		} else {
			c += h * (x - lo)
		}
	}
	if c > 1 {
		c = 1
	}
	return c
}

// InvCDF implements Dist.
func (pc PiecewiseConst) InvCDF(p float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return pc.Hi()
	}
	c := 0.0
	for i, h := range pc.Heights {
		lo, hi := pc.Bounds[i], pc.Bounds[i+1]
		m := h * (hi - lo)
		if c+m >= p {
			if h == 0 {
				return hi
			}
			return lo + (p-c)/h
		}
		c += m
	}
	return pc.Hi()
}

// Mean implements Dist.
func (pc PiecewiseConst) Mean() float64 {
	m := 0.0
	for i, h := range pc.Heights {
		lo, hi := pc.Bounds[i], pc.Bounds[i+1]
		m += h * (hi*hi - lo*lo) / 2
	}
	return m
}

// TailMass implements Dist.
func (pc PiecewiseConst) TailMass(x float64) float64 {
	if x <= 0 {
		return pc.Mean()
	}
	if x >= pc.Hi() {
		return 0
	}
	m := 0.0
	for i, h := range pc.Heights {
		lo, hi := pc.Bounds[i], pc.Bounds[i+1]
		if hi <= x {
			continue
		}
		if lo < x {
			lo = x
		}
		m += h * (hi*hi - lo*lo) / 2
	}
	return m
}

// Scale returns the density of w·X when X ~ pc, i.e. the support and bucket
// boundaries shrink by factor w and the heights grow by 1/w. This models the
// weight of a relaxation rule applied to a relaxed pattern's scores.
func (pc PiecewiseConst) Scale(w float64) PiecewiseConst {
	if w <= 0 {
		panic("stats: non-positive scale factor")
	}
	b := make([]float64, len(pc.Bounds))
	h := make([]float64, len(pc.Heights))
	for i, v := range pc.Bounds {
		b[i] = v * w
	}
	for i, v := range pc.Heights {
		h[i] = v / w
	}
	return PiecewiseConst{Bounds: b, Heights: h}
}

// PiecewiseLinear is a density that is continuous and linear between knots.
// Xs is strictly increasing with Xs[0] == 0; Ys are non-negative densities.
// Convolving two piecewise-constant densities yields exactly this shape.
type PiecewiseLinear struct {
	Xs []float64
	Ys []float64
}

// Validate checks structural invariants and unit mass.
func (pl PiecewiseLinear) Validate() error {
	if len(pl.Xs) != len(pl.Ys) || len(pl.Xs) < 2 {
		return errors.New("stats: malformed piecewise-linear density")
	}
	for i := 1; i < len(pl.Xs); i++ {
		if pl.Xs[i] <= pl.Xs[i-1] {
			return fmt.Errorf("stats: non-increasing knot at %d", i)
		}
	}
	for i, y := range pl.Ys {
		if y < -1e-9 {
			return fmt.Errorf("stats: negative density at knot %d: %v", i, y)
		}
	}
	if m := pl.mass(); math.Abs(m-1) > 1e-6 {
		return fmt.Errorf("stats: total mass %v != 1", m)
	}
	return nil
}

func (pl PiecewiseLinear) mass() float64 {
	m := 0.0
	for i := 1; i < len(pl.Xs); i++ {
		m += (pl.Ys[i] + pl.Ys[i-1]) / 2 * (pl.Xs[i] - pl.Xs[i-1])
	}
	return m
}

// Hi implements Dist.
func (pl PiecewiseLinear) Hi() float64 { return pl.Xs[len(pl.Xs)-1] }

// PDF evaluates the density at x by linear interpolation (0 outside support).
func (pl PiecewiseLinear) PDF(x float64) float64 {
	if x < pl.Xs[0] || x > pl.Hi() {
		return 0
	}
	i := sort.SearchFloat64s(pl.Xs, x)
	if i < len(pl.Xs) && pl.Xs[i] == x {
		return pl.Ys[i]
	}
	x0, x1 := pl.Xs[i-1], pl.Xs[i]
	y0, y1 := pl.Ys[i-1], pl.Ys[i]
	return y0 + (y1-y0)*(x-x0)/(x1-x0)
}

// CDF implements Dist (piecewise quadratic).
func (pl PiecewiseLinear) CDF(x float64) float64 {
	if x <= pl.Xs[0] {
		return 0
	}
	if x >= pl.Hi() {
		return 1
	}
	c := 0.0
	for i := 1; i < len(pl.Xs); i++ {
		x0, x1 := pl.Xs[i-1], pl.Xs[i]
		y0, y1 := pl.Ys[i-1], pl.Ys[i]
		if x >= x1 {
			c += (y0 + y1) / 2 * (x1 - x0)
			continue
		}
		// Partial segment [x0, x].
		t := x - x0
		slope := (y1 - y0) / (x1 - x0)
		c += y0*t + slope*t*t/2
		break
	}
	if c > 1 {
		c = 1
	}
	return c
}

// InvCDF implements Dist by solving the per-segment quadratic exactly.
func (pl PiecewiseLinear) InvCDF(p float64) float64 {
	if p <= 0 {
		return pl.Xs[0]
	}
	if p >= 1 {
		return pl.Hi()
	}
	c := 0.0
	for i := 1; i < len(pl.Xs); i++ {
		x0, x1 := pl.Xs[i-1], pl.Xs[i]
		y0, y1 := pl.Ys[i-1], pl.Ys[i]
		seg := (y0 + y1) / 2 * (x1 - x0)
		if c+seg < p {
			c += seg
			continue
		}
		// Solve y0·t + slope·t²/2 = p - c for t in [0, x1-x0].
		rem := p - c
		slope := (y1 - y0) / (x1 - x0)
		if math.Abs(slope) < 1e-15 {
			if y0 <= 0 {
				return x1
			}
			return x0 + rem/y0
		}
		// t = (-y0 + sqrt(y0² + 2·slope·rem)) / slope
		disc := y0*y0 + 2*slope*rem
		if disc < 0 {
			disc = 0
		}
		t := (-y0 + math.Sqrt(disc)) / slope
		if t < 0 {
			t = 0
		}
		if t > x1-x0 {
			t = x1 - x0
		}
		return x0 + t
	}
	return pl.Hi()
}

// Mean implements Dist. For a linear piece y(t)=y0+s·t on [x0,x1],
// ∫ t·y(t) dt has a closed cubic form.
func (pl PiecewiseLinear) Mean() float64 { return pl.TailMass(0) }

// TailMass implements Dist.
func (pl PiecewiseLinear) TailMass(x float64) float64 {
	m := 0.0
	for i := 1; i < len(pl.Xs); i++ {
		x0, x1 := pl.Xs[i-1], pl.Xs[i]
		y0, y1 := pl.Ys[i-1], pl.Ys[i]
		if x1 <= x {
			continue
		}
		lo := x0
		ylo := y0
		if x > x0 {
			lo = x
			ylo = y0 + (y1-y0)*(x-x0)/(x1-x0)
		}
		m += segmentFirstMoment(lo, x1, ylo, y1)
	}
	return m
}

// segmentFirstMoment computes ∫_a^b t·y(t) dt for the linear segment from
// (a,ya) to (b,yb).
func segmentFirstMoment(a, b, ya, yb float64) float64 {
	if b <= a {
		return 0
	}
	s := (yb - ya) / (b - a)
	// y(t) = ya + s(t-a) = (ya - s·a) + s·t
	c0 := ya - s*a
	return c0*(b*b-a*a)/2 + s*(b*b*b-a*a*a)/3
}
