package relax

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"specqp/internal/kg"
)

// WriteTSV serialises the rule set as tab-separated lines
//
//	fromS fromP fromO toS toP toO weight
//
// where variables render as "?name" and constants as their dictionary
// strings. Rules are emitted in a deterministic order.
func (rs *RuleSet) WriteTSV(w io.Writer, dict *kg.Dict) error {
	term := func(t kg.Term) string {
		if t.IsVar {
			return "?" + t.Name
		}
		return dict.Decode(t.ID)
	}
	var lines []string
	for _, list := range rs.rules {
		for _, r := range list {
			if r.IsChain() {
				// Chain rules have no single target pattern; the TSV format
				// covers only plain rules. Skipping keeps round-trips of
				// miner-produced rule sets lossless (miners emit no chains).
				continue
			}
			lines = append(lines, fmt.Sprintf("%s\t%s\t%s\t%s\t%s\t%s\t%s",
				term(r.From.S), term(r.From.P), term(r.From.O),
				term(r.To.S), term(r.To.P), term(r.To.O),
				strconv.FormatFloat(r.Weight, 'g', -1, 64)))
		}
	}
	sort.Strings(lines)
	bw := bufio.NewWriter(w)
	for _, l := range lines {
		if _, err := fmt.Fprintln(bw, l); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTSV parses rules written by WriteTSV, interning constants into dict.
// Blank lines and '#' comments are skipped.
func ReadTSV(r io.Reader, dict *kg.Dict) (*RuleSet, error) {
	rs := NewRuleSet()
	if err := ReadTSVInto(rs, r, dict); err != nil {
		return nil, err
	}
	return rs, nil
}

// ReadTSVInto parses rules into an existing rule set — the path for engines
// whose rule set must exist before the rules file can be read (a durable
// engine recovers its dictionary from the WAL directory first, then loads
// rules against it).
func ReadTSVInto(rs *RuleSet, r io.Reader, dict *kg.Dict) error {
	term := func(s string) kg.Term {
		if strings.HasPrefix(s, "?") {
			return kg.Var(s)
		}
		return kg.Const(dict.Encode(s))
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Split(line, "\t")
		if len(f) != 7 {
			return fmt.Errorf("relax: line %d: want 7 fields, got %d", lineNo, len(f))
		}
		w, err := strconv.ParseFloat(f[6], 64)
		if err != nil {
			return fmt.Errorf("relax: line %d: bad weight %q: %v", lineNo, f[6], err)
		}
		rule := Rule{
			From:   kg.NewPattern(term(f[0]), term(f[1]), term(f[2])),
			To:     kg.NewPattern(term(f[3]), term(f[4]), term(f[5])),
			Weight: w,
		}
		if err := rs.Add(rule); err != nil {
			return fmt.Errorf("relax: line %d: %v", lineNo, err)
		}
	}
	return sc.Err()
}
