package relax

import (
	"math"
	"testing"

	"specqp/internal/kg"
)

// tweetStore: 4 tweets tagging terms with known co-occurrence structure.
//
//	t1: {a, b}    t2: {a, b}    t3: {a, c}    t4: {b}
//
// → w(a→b) = 2/3, w(a→c) = 1/3, w(b→a) = 2/3, w(c→a) = 1.
func tweetStore(t *testing.T) (*kg.Store, kg.ID) {
	t.Helper()
	st := kg.NewStore(nil)
	add := func(tw, term string) {
		if err := st.AddSPO(tw, "hasTag", term, 1); err != nil {
			t.Fatal(err)
		}
	}
	add("t1", "a")
	add("t1", "b")
	add("t2", "a")
	add("t2", "b")
	add("t3", "a")
	add("t3", "c")
	add("t4", "b")
	st.Freeze()
	tag, _ := st.Dict().Lookup("hasTag")
	return st, tag
}

func TestCooccurrenceMinerWeights(t *testing.T) {
	st, tag := tweetStore(t)
	rules, err := CooccurrenceMiner{Pred: tag}.Mine(st)
	if err != nil {
		t.Fatal(err)
	}
	aID, _ := st.Dict().Lookup("a")
	bID, _ := st.Dict().Lookup("b")
	cID, _ := st.Dict().Lookup("c")
	pa := kg.NewPattern(kg.Var("s"), kg.Const(tag), kg.Const(aID))

	got := rules.For(pa)
	if len(got) != 2 {
		t.Fatalf("rules for a: got %d want 2", len(got))
	}
	// Top rule: a→b with 2/3.
	if got[0].To.O.ID != bID || math.Abs(got[0].Weight-2.0/3) > 1e-12 {
		t.Fatalf("top rule for a: got →%d w=%v", got[0].To.O.ID, got[0].Weight)
	}
	if got[1].To.O.ID != cID || math.Abs(got[1].Weight-1.0/3) > 1e-12 {
		t.Fatalf("second rule for a: got →%d w=%v", got[1].To.O.ID, got[1].Weight)
	}
	// c→a has weight 1 (c always co-occurs with a).
	pc := kg.NewPattern(kg.Var("s"), kg.Const(tag), kg.Const(cID))
	top, ok := rules.Top(pc)
	if !ok || top.Weight != 1 || top.To.O.ID != aID {
		t.Fatalf("rule for c: got %+v ok=%v", top, ok)
	}
}

func TestCooccurrenceMinerMaxRulesAndMinWeight(t *testing.T) {
	st, tag := tweetStore(t)
	rules, err := CooccurrenceMiner{Pred: tag, MaxRules: 1}.Mine(st)
	if err != nil {
		t.Fatal(err)
	}
	aID, _ := st.Dict().Lookup("a")
	pa := kg.NewPattern(kg.Var("s"), kg.Const(tag), kg.Const(aID))
	if got := rules.For(pa); len(got) != 1 {
		t.Fatalf("MaxRules=1: got %d rules", len(got))
	}

	strict, err := CooccurrenceMiner{Pred: tag, MinWeight: 0.5}.Mine(st)
	if err != nil {
		t.Fatal(err)
	}
	if got := strict.For(pa); len(got) != 1 {
		t.Fatalf("MinWeight=0.5: got %d rules want 1 (only a→b at 2/3)", len(got))
	}
}

func TestCooccurrenceMinerIgnoresOtherPredicates(t *testing.T) {
	st := kg.NewStore(nil)
	if err := st.AddSPO("t1", "hasTag", "a", 1); err != nil {
		t.Fatal(err)
	}
	if err := st.AddSPO("t1", "mentions", "b", 1); err != nil {
		t.Fatal(err)
	}
	st.Freeze()
	tag, _ := st.Dict().Lookup("hasTag")
	rules, err := CooccurrenceMiner{Pred: tag}.Mine(st)
	if err != nil {
		t.Fatal(err)
	}
	if rules.Len() != 0 {
		t.Fatalf("mentions triples leaked into mining: %d rules", rules.Len())
	}
}

func TestTypeHierarchyMiner(t *testing.T) {
	st := kg.NewStore(nil)
	add := func(s, o string) {
		if err := st.AddSPO(s, "rdf:type", o, 1); err != nil {
			t.Fatal(err)
		}
	}
	add("shakira", "singer")
	add("bob", "guitarist")
	st.Freeze()
	d := st.Dict()
	ty, _ := d.Lookup("rdf:type")
	singer, _ := d.Lookup("singer")
	guitarist, _ := d.Lookup("guitarist")
	musician := d.Encode("musician")
	artist := d.Encode("artist")
	vocalist := d.Encode("vocalist")

	h := TypeHierarchy{
		TypePred: ty,
		SubclassOf: map[kg.ID][]kg.ID{
			singer:    {musician},
			guitarist: {musician},
			vocalist:  {musician},
			musician:  {artist},
		},
		ParentWeight:  0.7,
		SiblingWeight: 0.8,
	}
	rules, err := h.Mine(st)
	if err != nil {
		t.Fatal(err)
	}
	ps := kg.NewPattern(kg.Var("s"), kg.Const(ty), kg.Const(singer))
	got := rules.For(ps)
	// singer → guitarist (sibling 0.8), vocalist (sibling 0.8),
	// musician (parent 0.7), artist (grandparent 0.49).
	if len(got) != 4 {
		t.Fatalf("rules for singer: got %d want 4", len(got))
	}
	weights := map[kg.ID]float64{}
	for _, r := range got {
		weights[r.To.O.ID] = r.Weight
	}
	if weights[guitarist] != 0.8 || weights[vocalist] != 0.8 {
		t.Fatalf("sibling weights: %v", weights)
	}
	if weights[musician] != 0.7 {
		t.Fatalf("parent weight: %v", weights[musician])
	}
	if math.Abs(weights[artist]-0.49) > 1e-12 {
		t.Fatalf("grandparent weight: %v", weights[artist])
	}
	// Types never used as rdf:type objects get no rules.
	pv := kg.NewPattern(kg.Var("s"), kg.Const(ty), kg.Const(vocalist))
	if got := rules.For(pv); len(got) != 0 {
		t.Fatalf("unused type has %d rules", len(got))
	}
}

func TestTypeHierarchyMinerDefaults(t *testing.T) {
	st := kg.NewStore(nil)
	if err := st.AddSPO("x", "rdf:type", "a", 1); err != nil {
		t.Fatal(err)
	}
	st.Freeze()
	ty, _ := st.Dict().Lookup("rdf:type")
	a, _ := st.Dict().Lookup("a")
	b := st.Dict().Encode("b")
	h := TypeHierarchy{TypePred: ty, SubclassOf: map[kg.ID][]kg.ID{a: {b}}}
	rules, err := h.Mine(st)
	if err != nil {
		t.Fatal(err)
	}
	top, ok := rules.Top(kg.NewPattern(kg.Var("s"), kg.Const(ty), kg.Const(a)))
	if !ok || top.Weight != 0.7 {
		t.Fatalf("default parent weight: got %v ok=%v", top.Weight, ok)
	}
}
