package relax

import (
	"math"
	"testing"

	"specqp/internal/kg"
)

// grandparentStore: a KG where hasGrandparent is missing but derivable from
// hasParent chains.
func grandparentStore(t *testing.T) (*kg.Store, kg.ID, kg.ID) {
	t.Helper()
	st := kg.NewStore(nil)
	add := func(s, p, o string, sc float64) {
		if err := st.AddSPO(s, p, o, sc); err != nil {
			t.Fatal(err)
		}
	}
	add("alice", "hasParent", "bob", 10)
	add("bob", "hasParent", "carol", 8)
	add("alice", "hasParent", "dana", 6)
	add("dana", "hasParent", "erin", 4)
	add("zed", "hasGrandparent", "ygor", 5)
	st.Freeze()
	hp, _ := st.Dict().Lookup("hasParent")
	hg, _ := st.Dict().Lookup("hasGrandparent")
	return st, hp, hg
}

func chainRule(hp, hg kg.ID, w float64) Rule {
	return Rule{
		From: kg.NewPattern(kg.Var("s"), kg.Const(hg), kg.Var("g")),
		Chain: []kg.Pattern{
			kg.NewPattern(kg.Var("s"), kg.Const(hp), kg.Var("m")),
			kg.NewPattern(kg.Var("m"), kg.Const(hp), kg.Var("g")),
		},
		Weight: w,
	}
}

func TestChainRuleValidate(t *testing.T) {
	_, hp, hg := grandparentStore(t)
	r := chainRule(hp, hg, 0.7)
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if !r.IsChain() {
		t.Fatal("IsChain false for chain rule")
	}
	// A chain that does not bind ?g must be rejected.
	bad := Rule{
		From:   kg.NewPattern(kg.Var("s"), kg.Const(hg), kg.Var("g")),
		Chain:  []kg.Pattern{kg.NewPattern(kg.Var("s"), kg.Const(hp), kg.Var("m"))},
		Weight: 0.7,
	}
	if err := bad.Validate(); err == nil {
		t.Fatal("chain missing a domain variable validated")
	}
}

func TestApplyChainRenames(t *testing.T) {
	_, hp, hg := grandparentStore(t)
	r := chainRule(hp, hg, 0.7)
	// Query pattern uses ?x and ?y instead of ?s and ?g.
	qp := kg.NewPattern(kg.Var("x"), kg.Const(hg), kg.Var("y"))
	chain := ApplyChain(r, qp)
	if len(chain) != 2 {
		t.Fatalf("chain length: %d", len(chain))
	}
	if chain[0].S.Name != "x" {
		t.Fatalf("first pattern subject: %v", chain[0].S)
	}
	if chain[1].O.Name != "y" {
		t.Fatalf("second pattern object: %v", chain[1].O)
	}
	// The existential middle variable must be fresh and consistent.
	mid := chain[0].O.Name
	if mid == "x" || mid == "y" || mid == "m" {
		t.Fatalf("existential variable not fresh: %q", mid)
	}
	if chain[1].S.Name != mid {
		t.Fatalf("existential variable inconsistent: %q vs %q", chain[1].S.Name, mid)
	}
}

func TestChainMatches(t *testing.T) {
	st, hp, hg := grandparentStore(t)
	r := chainRule(hp, hg, 0.7)
	qp := kg.NewPattern(kg.Var("s"), kg.Const(hg), kg.Var("g"))
	outer := kg.NewQuery(qp)
	vs := kg.NewVarSet(outer)
	chain := ApplyChain(r, qp)
	matches := ChainMatches(st, chain, vs)
	// Chains: alice→bob→carol, alice→dana→erin.
	if len(matches) != 2 {
		t.Fatalf("matches: got %d want 2", len(matches))
	}
	// Scores: hasParent max = 10. alice→bob (10/10) →carol (8/10): avg 0.9.
	if math.Abs(matches[0].Score-0.9) > 1e-12 {
		t.Fatalf("top chain score: got %v want 0.9", matches[0].Score)
	}
	// alice→dana (6/10) →erin (4/10): avg 0.5.
	if math.Abs(matches[1].Score-0.5) > 1e-12 {
		t.Fatalf("second chain score: got %v want 0.5", matches[1].Score)
	}
	// Bindings are projected onto the outer varset (s, g only).
	sIdx, gIdx := vs.Index("s"), vs.Index("g")
	alice, _ := st.Dict().Lookup("alice")
	carol, _ := st.Dict().Lookup("carol")
	if matches[0].Binding[sIdx] != alice || matches[0].Binding[gIdx] != carol {
		t.Fatalf("top match binding: %v", matches[0].Binding)
	}
}

func TestChainMatchesDeduplicates(t *testing.T) {
	st := kg.NewStore(nil)
	add := func(s, p, o string, sc float64) {
		if err := st.AddSPO(s, p, o, sc); err != nil {
			t.Fatal(err)
		}
	}
	// Two distinct middle nodes produce the same (s, g) projection.
	add("a", "hasParent", "m1", 10)
	add("a", "hasParent", "m2", 2)
	add("m1", "hasParent", "g", 10)
	add("m2", "hasParent", "g", 2)
	st.Freeze()
	hp, _ := st.Dict().Lookup("hasParent")
	qp := kg.NewPattern(kg.Var("s"), kg.Const(hp), kg.Var("g"))
	vs := kg.NewVarSet(kg.NewQuery(qp))
	chain := []kg.Pattern{
		kg.NewPattern(kg.Var("s"), kg.Const(hp), kg.Var("_m")),
		kg.NewPattern(kg.Var("_m"), kg.Const(hp), kg.Var("g")),
	}
	matches := ChainMatches(st, chain, vs)
	// Projections: (a,g) via m1 avg 1.0, via m2 avg 0.2; (a,m-bindings of
	// first hop where the chain also matches second hops)… only (a,g) is a
	// complete chain. Dedup keeps the max.
	count := map[string]int{}
	for _, m := range matches {
		count[m.Binding.Key()]++
	}
	for k, c := range count {
		if c > 1 {
			t.Fatalf("projection %q appears %d times", k, c)
		}
	}
	if matches[0].Score != 1.0 {
		t.Fatalf("dedup kept %v want 1.0", matches[0].Score)
	}
}

func TestEnumerateWithChainRule(t *testing.T) {
	_, hp, hg := grandparentStore(t)
	rs := NewRuleSet()
	if err := rs.Add(chainRule(hp, hg, 0.7)); err != nil {
		t.Fatal(err)
	}
	q := kg.NewQuery(kg.NewPattern(kg.Var("s"), kg.Const(hg), kg.Var("g")))
	all := rs.Enumerate(q, 0)
	if len(all) != 2 {
		t.Fatalf("enumeration: got %d want 2", len(all))
	}
	spliced := all[1]
	if len(spliced.Query.Patterns) != 2 {
		t.Fatalf("chain not spliced: %d patterns", len(spliced.Query.Patterns))
	}
	if len(spliced.PatternWeights) != 2 {
		t.Fatalf("pattern weights: %v", spliced.PatternWeights)
	}
	for _, w := range spliced.PatternWeights {
		if math.Abs(w-0.35) > 1e-12 {
			t.Fatalf("chain per-pattern weight: got %v want 0.35", w)
		}
	}
}
