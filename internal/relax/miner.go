package relax

import (
	"sort"

	"specqp/internal/kg"
)

// CooccurrenceMiner mines Twitter-style relaxation rules for patterns of the
// form 〈?s pred term〉: term T1 relaxes to term T2 with weight
//
//	w = #subjects_having_T1_and_T2 / #subjects_having_T1
//
// exactly as the paper computes relaxations over the Twitter dataset. Only
// the object position is relaxed ("predicate does not have relaxations").
type CooccurrenceMiner struct {
	// Pred restricts mining to triples with this predicate (e.g. hasTag).
	Pred kg.ID
	// MaxRules caps the number of rules per term, keeping the strongest.
	// Zero means keep all.
	MaxRules int
	// MinWeight drops rules weaker than this threshold.
	MinWeight float64
}

// Mine computes the rule set from the store's co-occurrence structure.
func (m CooccurrenceMiner) Mine(st kg.Graph) (*RuleSet, error) {
	// subjects per term, and term sets per subject.
	termSubjects := make(map[kg.ID]map[kg.ID]bool)
	subjectTerms := make(map[kg.ID][]kg.ID)
	for i := 0; i < st.Len(); i++ {
		t := st.Triple(int32(i))
		if t.P != m.Pred {
			continue
		}
		set := termSubjects[t.O]
		if set == nil {
			set = make(map[kg.ID]bool)
			termSubjects[t.O] = set
		}
		if !set[t.S] {
			set[t.S] = true
			subjectTerms[t.S] = append(subjectTerms[t.S], t.O)
		}
	}

	// Pairwise co-occurrence counts.
	cooc := make(map[[2]kg.ID]int)
	for _, terms := range subjectTerms {
		for i := 0; i < len(terms); i++ {
			for j := 0; j < len(terms); j++ {
				if i != j {
					cooc[[2]kg.ID{terms[i], terms[j]}]++
				}
			}
		}
	}

	rs := NewRuleSet()
	for t1, subs := range termSubjects {
		n1 := len(subs)
		if n1 == 0 {
			continue
		}
		type cand struct {
			t2 kg.ID
			w  float64
		}
		var cands []cand
		for t2 := range termSubjects {
			if t2 == t1 {
				continue
			}
			c := cooc[[2]kg.ID{t1, t2}]
			if c == 0 {
				continue
			}
			w := float64(c) / float64(n1)
			if w > 1 {
				w = 1
			}
			if w < m.MinWeight {
				continue
			}
			cands = append(cands, cand{t2, w})
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].w != cands[j].w {
				return cands[i].w > cands[j].w
			}
			return cands[i].t2 < cands[j].t2
		})
		if m.MaxRules > 0 && len(cands) > m.MaxRules {
			cands = cands[:m.MaxRules]
		}
		from := kg.NewPattern(kg.Var("s"), kg.Const(m.Pred), kg.Const(t1))
		for _, c := range cands {
			r := Rule{
				From:   from,
				To:     kg.NewPattern(kg.Var("s"), kg.Const(m.Pred), kg.Const(c.t2)),
				Weight: c.w,
			}
			if err := rs.Add(r); err != nil {
				return nil, err
			}
		}
	}
	return rs, nil
}

// TypeHierarchy describes a concept taxonomy for the type-hierarchy miner:
// SubclassOf maps a type term to its direct supertypes. The miner generates
// XKG-style relaxations for 〈?s rdf:type T〉 patterns:
//
//   - sibling types (sharing a parent) with weight SiblingWeight,
//   - parent types with weight ParentWeight,
//   - grandparent types with weight ParentWeight².
//
// The weight scheme follows the intuition of the paper's Table 1 example
// (singer → vocalist > jazz_singer > artist).
type TypeHierarchy struct {
	TypePred      kg.ID
	SubclassOf    map[kg.ID][]kg.ID
	ParentWeight  float64 // default 0.7
	SiblingWeight float64 // default 0.8
}

// Mine computes the rule set implied by the taxonomy for every type that
// appears as an object of TypePred in the store.
func (h TypeHierarchy) Mine(st kg.Graph) (*RuleSet, error) {
	pw := h.ParentWeight
	if pw == 0 {
		pw = 0.7
	}
	sw := h.SiblingWeight
	if sw == 0 {
		sw = 0.8
	}
	children := make(map[kg.ID][]kg.ID)
	for c, ps := range h.SubclassOf {
		for _, p := range ps {
			children[p] = append(children[p], c)
		}
	}
	used := make(map[kg.ID]bool)
	for i := 0; i < st.Len(); i++ {
		t := st.Triple(int32(i))
		if t.P == h.TypePred {
			used[t.O] = true
		}
	}

	rs := NewRuleSet()
	add := func(from, to kg.ID, w float64) error {
		if from == to || w <= 0 || w > 1 {
			return nil
		}
		return rs.Add(Rule{
			From:   kg.NewPattern(kg.Var("s"), kg.Const(h.TypePred), kg.Const(from)),
			To:     kg.NewPattern(kg.Var("s"), kg.Const(h.TypePred), kg.Const(to)),
			Weight: w,
		})
	}
	for ty := range used {
		seen := map[kg.ID]bool{ty: true}
		// Siblings.
		for _, parent := range h.SubclassOf[ty] {
			for _, sib := range children[parent] {
				if !seen[sib] {
					seen[sib] = true
					if err := add(ty, sib, sw); err != nil {
						return nil, err
					}
				}
			}
		}
		// Parents and grandparents.
		for _, parent := range h.SubclassOf[ty] {
			if !seen[parent] {
				seen[parent] = true
				if err := add(ty, parent, pw); err != nil {
					return nil, err
				}
			}
			for _, gp := range h.SubclassOf[parent] {
				if !seen[gp] {
					seen[gp] = true
					if err := add(ty, gp, pw*pw); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	return rs, nil
}
