// Package relax implements weighted relaxation rules over triple patterns
// (Definition 7 of the paper), rule sets keyed by pattern, enumeration of
// relaxed queries (Definition 8), and two rule miners matching the paper's
// datasets: a type-hierarchy miner (XKG-style) and a co-occurrence miner
// (Twitter-style, w = #items(T1∧T2)/#items(T1)).
package relax

import (
	"fmt"
	"sort"

	"specqp/internal/kg"
)

// Rule is a weighted relaxation rule r = (q, q', w): pattern q may be
// rewritten to q' at a score penalty factor w ∈ (0,1]. When Chain is
// non-empty the rule is a chain relaxation (the paper's Section 6 extension)
// and To is ignored — see chain.go.
type Rule struct {
	From   kg.Pattern
	To     kg.Pattern
	Chain  []kg.Pattern
	Weight float64
}

// Validate checks rule invariants.
func (r Rule) Validate() error {
	if r.Weight <= 0 || r.Weight > 1 {
		return fmt.Errorf("relax: rule weight %v outside (0,1]", r.Weight)
	}
	return r.ValidateChain()
}

// RuleSet stores relaxation rules indexed by the domain pattern's canonical
// key. Rules for each pattern are kept sorted by weight descending, so the
// first rule is the "top-weighted relaxation" PLANGEN tests.
type RuleSet struct {
	rules map[kg.PatternKey][]Rule
}

// NewRuleSet returns an empty rule set.
func NewRuleSet() *RuleSet {
	return &RuleSet{rules: make(map[kg.PatternKey][]Rule)}
}

// Add inserts a rule, keeping the per-pattern list sorted by weight
// descending (ties broken by target pattern key for determinism).
func (rs *RuleSet) Add(r Rule) error {
	if err := r.Validate(); err != nil {
		return err
	}
	k := r.From.Key()
	list := append(rs.rules[k], r)
	sort.SliceStable(list, func(i, j int) bool {
		if list[i].Weight != list[j].Weight {
			return list[i].Weight > list[j].Weight
		}
		return lessKey(list[i].To.Key(), list[j].To.Key())
	})
	rs.rules[k] = list
	return nil
}

func lessKey(a, b kg.PatternKey) bool {
	if a.S != b.S {
		return a.S < b.S
	}
	if a.P != b.P {
		return a.P < b.P
	}
	if a.O != b.O {
		return a.O < b.O
	}
	return a.Shape < b.Shape
}

// For returns the rules whose domain matches pattern p, best weight first.
// The returned slice must not be mutated.
func (rs *RuleSet) For(p kg.Pattern) []Rule {
	return rs.rules[p.Key()]
}

// Top returns the top-weighted relaxation for p, or false if p has none.
func (rs *RuleSet) Top(p kg.Pattern) (Rule, bool) {
	l := rs.rules[p.Key()]
	if len(l) == 0 {
		return Rule{}, false
	}
	return l[0], true
}

// Len reports the total number of rules.
func (rs *RuleSet) Len() int {
	n := 0
	for _, l := range rs.rules {
		n += len(l)
	}
	return n
}

// MaxFanout returns the largest number of rules attached to any single
// pattern (useful for dataset sanity checks: the paper requires ≥10 for XKG
// and ≥5 for Twitter).
func (rs *RuleSet) MaxFanout() int {
	m := 0
	for _, l := range rs.rules {
		if len(l) > m {
			m = len(l)
		}
	}
	return m
}

// RelaxedQuery names one application of rules to a query: for each original
// pattern index, which rule (if any) was applied. Weights multiply
// (Definition 8: "The score is reduced further for each subsequent
// relaxation"). Chain rules splice several patterns into the rewritten
// query, so PatternWeights is aligned to Query.Patterns (not to the original
// query): a chain of length L applied with weight w contributes w/L per
// spliced pattern, making the chain's total contribution w × the average
// normalised score.
type RelaxedQuery struct {
	Query          kg.Query
	Applied        []int // per original pattern: -1 original, else rule index
	Weight         float64
	PatternWeights []float64 // per rewritten pattern
}

// Enumerate lists every relaxed query obtainable by independently choosing,
// for each pattern, either the original or one of its relaxations (including
// chain relaxations, which splice multiple patterns). The original query
// (all -1) is included first. For a query with relaxation fan-outs f1..fn
// this yields ∏(fi+1) queries — the combinatorial space whose full
// exploration the paper's Introduction costs at 48 for its example.
//
// limit > 0 caps the number of returned queries (breadth-first by number of
// relaxed patterns, so cheaper rewrites come first); limit <= 0 means no cap.
func (rs *RuleSet) Enumerate(q kg.Query, limit int) []RelaxedQuery {
	type choice struct {
		patterns []kg.Pattern
		weights  []float64
		weight   float64
		rule     int
	}
	perPattern := make([][]choice, len(q.Patterns))
	for i, p := range q.Patterns {
		cs := []choice{{patterns: []kg.Pattern{p}, weights: []float64{1}, weight: 1, rule: -1}}
		for ri, r := range rs.For(p) {
			if r.IsChain() {
				// Chains splice; per-pattern weight w/L keeps the chain's
				// total contribution at w × average normalised score.
				chain := ApplyChain(r, p)
				ws := make([]float64, len(chain))
				for ci := range ws {
					ws[ci] = r.Weight / float64(len(chain))
				}
				cs = append(cs, choice{patterns: chain, weights: ws, weight: r.Weight, rule: ri})
				continue
			}
			// Apply renames the rule's placeholder variables to the query
			// pattern's variable names so joins stay connected.
			cs = append(cs, choice{
				patterns: []kg.Pattern{Apply(r, p)},
				weights:  []float64{r.Weight},
				weight:   r.Weight,
				rule:     ri,
			})
		}
		perPattern[i] = cs
	}

	var out []RelaxedQuery
	var rec func(i int, pats []kg.Pattern, pws []float64, applied []int, w float64, relaxed, wantRelaxed int)
	rec = func(i int, pats []kg.Pattern, pws []float64, applied []int, w float64, relaxed, wantRelaxed int) {
		if limit > 0 && len(out) >= limit {
			return
		}
		if i == len(q.Patterns) {
			if relaxed == wantRelaxed {
				ap := make([]int, len(applied))
				copy(ap, applied)
				ps := make([]kg.Pattern, len(pats))
				copy(ps, pats)
				ws := make([]float64, len(pws))
				copy(ws, pws)
				out = append(out, RelaxedQuery{
					Query:          kg.Query{Patterns: ps},
					Applied:        ap,
					Weight:         w,
					PatternWeights: ws,
				})
			}
			return
		}
		// Prune: cannot reach wantRelaxed relaxations with remaining patterns.
		if relaxed+len(q.Patterns)-i < wantRelaxed {
			return
		}
		for _, c := range perPattern[i] {
			nr := relaxed
			if c.rule >= 0 {
				nr++
			}
			if nr > wantRelaxed {
				continue
			}
			applied[i] = c.rule
			rec(i+1, append(pats, c.patterns...), append(pws, c.weights...), applied, w*c.weight, nr, wantRelaxed)
		}
	}
	for wantRelaxed := 0; wantRelaxed <= len(q.Patterns); wantRelaxed++ {
		rec(0, nil, nil, make([]int, len(q.Patterns)), 1, 0, wantRelaxed)
		if limit > 0 && len(out) >= limit {
			out = out[:limit]
			break
		}
	}
	return out
}
