package relax

import (
	"fmt"

	"specqp/internal/kg"
)

// Chain relaxations implement the extension the paper names as future work
// in Section 6: "replacing a triple pattern with a chain of triple patterns".
// A Rule whose Chain field is non-empty rewrites its domain pattern into a
// conjunction of patterns instead of a single pattern; fresh variables in the
// chain act as existentials. Example:
//
//	〈?s hasGrandparent ?g〉  →  〈?s hasParent ?p〉 . 〈?p hasParent ?g〉
//
// Execution materialises the chain's answers, projects them onto the
// variables of the original pattern, and scores each projected match with
// the average of the chain triples' normalised scores (keeping the value in
// [0,1] so Definition 5's "top score equals the rule weight" property is
// preserved).

// IsChain reports whether the rule rewrites into a chain of patterns.
func (r Rule) IsChain() bool { return len(r.Chain) > 0 }

// ValidateChain checks chain-specific invariants: every variable of the
// domain pattern must be bound somewhere in the chain, so the rewritten
// query stays connected.
func (r Rule) ValidateChain() error {
	if !r.IsChain() {
		return nil
	}
	bound := map[string]bool{}
	for _, p := range r.Chain {
		for _, v := range p.Vars() {
			bound[v] = true
		}
	}
	for _, v := range r.From.Vars() {
		if !bound[v] {
			return fmt.Errorf("relax: chain does not bind domain variable ?%s", v)
		}
	}
	return nil
}

// ApplyChain rewrites query pattern p with the chain rule r: the domain
// pattern's variables are renamed positionally to p's variable names
// (mirroring Apply), and every other chain variable gets a fresh name that
// cannot collide with query variables.
func ApplyChain(r Rule, p kg.Pattern) []kg.Pattern {
	rename := map[string]string{}
	bindPos := func(from, orig kg.Term) {
		if from.IsVar && orig.IsVar {
			rename[from.Name] = orig.Name
		}
	}
	bindPos(r.From.S, p.S)
	bindPos(r.From.P, p.P)
	bindPos(r.From.O, p.O)

	fresh := 0
	mapTerm := func(t kg.Term) kg.Term {
		if !t.IsVar {
			return t
		}
		if to, ok := rename[t.Name]; ok {
			return kg.Var(to)
		}
		// Existential variable: allocate a stable fresh name.
		name := fmt.Sprintf("_chain%d_%s", fresh, t.Name)
		rename[t.Name] = name
		fresh++
		return kg.Var(name)
	}
	out := make([]kg.Pattern, len(r.Chain))
	for i, cp := range r.Chain {
		out[i] = kg.NewPattern(mapTerm(cp.S), mapTerm(cp.P), mapTerm(cp.O))
	}
	return out
}

// ChainMatches materialises the answers of a chain (already rewritten with
// ApplyChain) projected onto the enclosing query's variable set vs. Each
// projected match is scored with the average of the chain triples'
// normalised scores; duplicate projections keep the maximum. The result is
// sorted by score descending — the "sorted answer list" shape the operators
// expect.
func ChainMatches(st kg.Graph, chain []kg.Pattern, vs *kg.VarSet) []kg.Answer {
	sub := kg.NewQuery(chain...)
	subVS := kg.NewVarSet(sub)
	raw := st.Evaluate(sub)

	n := float64(len(chain))
	out := make([]kg.Answer, 0, len(raw))
	for _, a := range raw {
		proj := kg.NewBinding(vs.Len())
		for i := 0; i < subVS.Len(); i++ {
			if a.Binding[i] == kg.NoID {
				continue
			}
			if qi := vs.Index(subVS.Name(i)); qi >= 0 {
				proj[qi] = a.Binding[i]
			}
		}
		out = append(out, kg.Answer{Binding: proj, Score: a.Score / n})
	}
	out = kg.DedupMax(out)
	kg.SortAnswers(out)
	return out
}
