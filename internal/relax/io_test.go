package relax

import (
	"bytes"
	"strings"
	"testing"

	"specqp/internal/kg"
)

func TestRulesTSVRoundTrip(t *testing.T) {
	d := kg.NewDict()
	rs := NewRuleSet()
	p1 := pat(d, "s", "type", "singer")
	mustAdd(t, rs, Rule{From: p1, To: pat(d, "s", "type", "vocalist"), Weight: 0.8})
	mustAdd(t, rs, Rule{From: p1, To: pat(d, "s", "type", "artist"), Weight: 0.5})
	mustAdd(t, rs, Rule{From: pat(d, "s", "knows", "alice"), To: pat(d, "s", "knows", "bob"), Weight: 0.25})

	var buf bytes.Buffer
	if err := rs.WriteTSV(&buf, d); err != nil {
		t.Fatal(err)
	}
	d2 := kg.NewDict()
	rs2, err := ReadTSV(&buf, d2)
	if err != nil {
		t.Fatal(err)
	}
	if rs2.Len() != rs.Len() {
		t.Fatalf("round trip: %d rules, want %d", rs2.Len(), rs.Len())
	}
	// Check the singer rules survived with order and weights.
	singerID, _ := d2.Lookup("singer")
	typeID, _ := d2.Lookup("type")
	got := rs2.For(kg.NewPattern(kg.Var("s"), kg.Const(typeID), kg.Const(singerID)))
	if len(got) != 2 {
		t.Fatalf("singer rules: %d", len(got))
	}
	if got[0].Weight != 0.8 || got[1].Weight != 0.5 {
		t.Fatalf("weights: %v %v", got[0].Weight, got[1].Weight)
	}
	vocalistID, _ := d2.Lookup("vocalist")
	if got[0].To.O.ID != vocalistID {
		t.Fatal("top rule target lost")
	}
}

func TestRulesTSVSkipsChains(t *testing.T) {
	d := kg.NewDict()
	rs := NewRuleSet()
	hp := d.Encode("hasParent")
	hg := d.Encode("hasGrandparent")
	mustAdd(t, rs, Rule{
		From: kg.NewPattern(kg.Var("s"), kg.Const(hg), kg.Var("g")),
		Chain: []kg.Pattern{
			kg.NewPattern(kg.Var("s"), kg.Const(hp), kg.Var("m")),
			kg.NewPattern(kg.Var("m"), kg.Const(hp), kg.Var("g")),
		},
		Weight: 0.7,
	})
	mustAdd(t, rs, Rule{From: pat(d, "s", "type", "a"), To: pat(d, "s", "type", "b"), Weight: 0.5})
	var buf bytes.Buffer
	if err := rs.WriteTSV(&buf, d); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(strings.TrimSpace(buf.String()), "\n") + 1
	if lines != 1 {
		t.Fatalf("chain rule serialised: %d lines\n%s", lines, buf.String())
	}
}

func TestRulesTSVErrors(t *testing.T) {
	d := kg.NewDict()
	cases := []struct{ name, src string }{
		{"too few fields", "a\tb\tc\td\te\tf\n"},
		{"bad weight", "?s\tp\to\t?s\tp\to2\tNaNope\n"},
		{"weight out of range", "?s\tp\to\t?s\tp\to2\t1.5\n"},
	}
	for _, c := range cases {
		if _, err := ReadTSV(strings.NewReader(c.src), d); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	// Comments and blanks are fine.
	rs, err := ReadTSV(strings.NewReader("# comment\n\n?s\tp\to\t?s\tp\to2\t0.5\n"), d)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 1 {
		t.Fatalf("rules: %d", rs.Len())
	}
}
