package relax

import (
	"testing"

	"specqp/internal/kg"
)

func pat(d *kg.Dict, v, p, o string) kg.Pattern {
	return kg.NewPattern(kg.Var(v), kg.Const(d.Encode(p)), kg.Const(d.Encode(o)))
}

func TestRuleValidate(t *testing.T) {
	d := kg.NewDict()
	r := Rule{From: pat(d, "s", "type", "a"), To: pat(d, "s", "type", "b"), Weight: 0.5}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, w := range []float64{0, -0.1, 1.01} {
		r.Weight = w
		if err := r.Validate(); err == nil {
			t.Errorf("weight %v accepted", w)
		}
	}
}

func TestRuleSetOrderedByWeight(t *testing.T) {
	d := kg.NewDict()
	rs := NewRuleSet()
	from := pat(d, "s", "type", "singer")
	for _, c := range []struct {
		to string
		w  float64
	}{{"artist", 0.4}, {"vocalist", 0.9}, {"jazz", 0.7}} {
		if err := rs.Add(Rule{From: from, To: pat(d, "s", "type", c.to), Weight: c.w}); err != nil {
			t.Fatal(err)
		}
	}
	rules := rs.For(from)
	if len(rules) != 3 {
		t.Fatalf("got %d rules", len(rules))
	}
	if rules[0].Weight != 0.9 || rules[1].Weight != 0.7 || rules[2].Weight != 0.4 {
		t.Fatalf("rules not sorted by weight: %v %v %v", rules[0].Weight, rules[1].Weight, rules[2].Weight)
	}
	top, ok := rs.Top(from)
	if !ok || top.Weight != 0.9 {
		t.Fatalf("top rule: got %v ok=%v", top.Weight, ok)
	}
	if rs.Len() != 3 {
		t.Fatalf("len: got %d", rs.Len())
	}
	if rs.MaxFanout() != 3 {
		t.Fatalf("fanout: got %d", rs.MaxFanout())
	}
}

func TestRuleSetForVariableRenamedPattern(t *testing.T) {
	d := kg.NewDict()
	rs := NewRuleSet()
	from := pat(d, "s", "type", "singer")
	if err := rs.Add(Rule{From: from, To: pat(d, "s", "type", "vocalist"), Weight: 0.8}); err != nil {
		t.Fatal(err)
	}
	// A query using ?x instead of ?s must still find the rules.
	queryPat := pat(d, "x", "type", "singer")
	if got := rs.For(queryPat); len(got) != 1 {
		t.Fatalf("renamed pattern: got %d rules want 1", len(got))
	}
	if _, ok := rs.Top(pat(d, "x", "type", "pianist")); ok {
		t.Fatal("unrelated pattern has a top rule")
	}
}

func TestApplyRenamesVariables(t *testing.T) {
	d := kg.NewDict()
	r := Rule{From: pat(d, "s", "type", "singer"), To: pat(d, "s", "type", "vocalist"), Weight: 0.8}
	qp := pat(d, "x", "type", "singer")
	out := Apply(r, qp)
	if !out.S.IsVar || out.S.Name != "x" {
		t.Fatalf("subject variable: got %+v want ?x", out.S)
	}
	vocalist, _ := d.Lookup("vocalist")
	if out.O.IsVar || out.O.ID != vocalist {
		t.Fatalf("object: got %+v want vocalist", out.O)
	}
}

func TestEnumerateCountsAndOrder(t *testing.T) {
	d := kg.NewDict()
	rs := NewRuleSet()
	p1 := pat(d, "s", "type", "singer")
	p2 := pat(d, "s", "type", "lyricist")
	// 2 relaxations for p1, 1 for p2 → (2+1)·(1+1) = 6 relaxed queries.
	mustAdd(t, rs, Rule{From: p1, To: pat(d, "s", "type", "vocalist"), Weight: 0.9})
	mustAdd(t, rs, Rule{From: p1, To: pat(d, "s", "type", "artist"), Weight: 0.5})
	mustAdd(t, rs, Rule{From: p2, To: pat(d, "s", "type", "writer"), Weight: 0.7})
	q := kg.NewQuery(p1, p2)

	all := rs.Enumerate(q, 0)
	if len(all) != 6 {
		t.Fatalf("enumeration size: got %d want 6", len(all))
	}
	// First is the original.
	if all[0].Weight != 1 || all[0].Applied[0] != -1 || all[0].Applied[1] != -1 {
		t.Fatalf("first enumerated query is not the original: %+v", all[0])
	}
	// Breadth-first by number of relaxations: 1 original, 3 single, 2 double.
	relaxedCount := func(rq RelaxedQuery) int {
		n := 0
		for _, a := range rq.Applied {
			if a >= 0 {
				n++
			}
		}
		return n
	}
	wantOrder := []int{0, 1, 1, 1, 2, 2}
	for i, rq := range all {
		if relaxedCount(rq) != wantOrder[i] {
			t.Fatalf("position %d: %d relaxations, want %d", i, relaxedCount(rq), wantOrder[i])
		}
	}
	// Weights multiply.
	last := all[5]
	if last.Weight != 0.5*0.7 && last.Weight != 0.9*0.7 {
		t.Fatalf("double relaxation weight: got %v", last.Weight)
	}
}

func TestEnumerateLimit(t *testing.T) {
	d := kg.NewDict()
	rs := NewRuleSet()
	p1 := pat(d, "s", "type", "a")
	for i := 0; i < 10; i++ {
		mustAdd(t, rs, Rule{From: p1, To: pat(d, "s", "type", string(rune('b'+i))), Weight: 0.5})
	}
	q := kg.NewQuery(p1)
	if got := rs.Enumerate(q, 4); len(got) != 4 {
		t.Fatalf("limit: got %d want 4", len(got))
	}
	if got := rs.Enumerate(q, 0); len(got) != 11 {
		t.Fatalf("no limit: got %d want 11", len(got))
	}
}

func TestEnumerateRenamesRuleVariables(t *testing.T) {
	d := kg.NewDict()
	rs := NewRuleSet()
	p := pat(d, "s", "type", "a")
	mustAdd(t, rs, Rule{From: p, To: pat(d, "s", "type", "b"), Weight: 0.5})
	q := kg.NewQuery(pat(d, "x", "type", "a"))
	all := rs.Enumerate(q, 0)
	if len(all) != 2 {
		t.Fatalf("got %d queries", len(all))
	}
	relaxed := all[1].Query.Patterns[0]
	if !relaxed.S.IsVar || relaxed.S.Name != "x" {
		t.Fatalf("relaxed pattern variable: got %+v want ?x", relaxed.S)
	}
}

func mustAdd(t *testing.T, rs *RuleSet, r Rule) {
	t.Helper()
	if err := rs.Add(r); err != nil {
		t.Fatal(err)
	}
}
