package relax

import "specqp/internal/kg"

// Apply rewrites query pattern p with rule r, renaming the rule's variables
// positionally so the rewritten pattern keeps p's variable names (rules are
// mined with placeholder variable names; what matters is which positions are
// variables). It returns the rewritten pattern.
//
// Example: rule 〈?s type singer〉→〈?s type vocalist〉 applied to the query
// pattern 〈?x type singer〉 yields 〈?x type vocalist〉.
func Apply(r Rule, p kg.Pattern) kg.Pattern {
	out := r.To
	rename := func(tgt, from, orig kg.Term) kg.Term {
		if tgt.IsVar && from.IsVar {
			// The rule kept this position variable; adopt the query's name.
			if orig.IsVar {
				return orig
			}
		}
		return tgt
	}
	out.S = rename(r.To.S, r.From.S, p.S)
	out.P = rename(r.To.P, r.From.P, p.P)
	out.O = rename(r.To.O, r.From.O, p.O)
	return out
}
