// Sampled always-on slow-query logging: every query that crosses the
// configured threshold is accounted for, and a rate-limited subset is written
// as structured JSON lines carrying the full execution trace. The sampling
// decision is taken *before* execution — a token must be available for the
// run to be traced — so the logged trace is the real one, not a re-execution,
// and the untraced hot path keeps its zero-allocation guarantee: when no
// token is available (or the log is disabled) the query runs exactly as
// before. Crossings that find no token are counted and reported in the next
// logged line's `suppressed` field, so bursts of slowness are never silently
// invisible — they are visible as a count instead of as log volume.
package server

import (
	"encoding/json"
	"io"
	"sync"
	"time"

	"specqp"
)

// slowLog is the sampler + writer. Nil means disabled; every method is
// nil-receiver safe so call sites need no guards.
type slowLog struct {
	w         io.Writer
	threshold time.Duration
	every     time.Duration
	now       func() time.Time

	mu         sync.Mutex
	next       time.Time // earliest instant the next token is available
	armed      bool      // a token is reserved for the query in flight
	suppressed int64     // threshold crossings dropped since the last line
	logged     int64
}

func newSlowLog(w io.Writer, threshold, every time.Duration, now func() time.Time) *slowLog {
	if w == nil || threshold <= 0 {
		return nil
	}
	if every <= 0 {
		every = time.Second
	}
	return &slowLog{w: w, threshold: threshold, every: every, now: now}
}

// arm reports whether the caller should run its query traced: true when the
// log is enabled and a sampling token is available. At most one query holds
// the reservation at a time — concurrent arms while a traced query is in
// flight return false and run untraced, which keeps the worst-case tracing
// overhead at one query per sampling interval regardless of concurrency.
func (sl *slowLog) arm() bool {
	if sl == nil {
		return false
	}
	sl.mu.Lock()
	defer sl.mu.Unlock()
	if sl.armed || sl.now().Before(sl.next) {
		return false
	}
	sl.armed = true
	return true
}

// disarm releases an arm() reservation without consuming the token — the
// query came in under the threshold, so nothing is logged and the next slow
// query can still be sampled immediately.
func (sl *slowLog) disarm() {
	if sl == nil {
		return
	}
	sl.mu.Lock()
	sl.armed = false
	sl.mu.Unlock()
}

// slowEntry is one JSON line of the slow-query log.
type slowEntry struct {
	TS        string             `json:"ts"`
	ElapsedUS int64              `json:"elapsed_us"`
	Query     string             `json:"query"`
	K         int                `json:"k"`
	Mode      string             `json:"mode"`
	Tier      int                `json:"tier"`
	Answers   int                `json:"answers"`
	Error     string             `json:"error,omitempty"`
	// Suppressed counts threshold crossings since the previous line that were
	// rate-limited away instead of logged.
	Suppressed int64              `json:"suppressed,omitempty"`
	Trace      *specqp.QueryTrace `json:"trace,omitempty"`
}

// observe accounts one finished query: below the threshold it releases any
// reservation; above it, an armed caller consumes its token and writes the
// line (with the trace its traced run produced) while an unarmed one bumps
// the suppressed count.
func (sl *slowLog) observe(elapsed time.Duration, armed bool, e slowEntry) {
	if sl == nil {
		return
	}
	if elapsed < sl.threshold {
		if armed {
			sl.disarm()
		}
		return
	}
	sl.mu.Lock()
	if !armed {
		sl.suppressed++
		sl.mu.Unlock()
		return
	}
	sl.armed = false
	sl.next = sl.now().Add(sl.every)
	e.Suppressed = sl.suppressed
	sl.suppressed = 0
	sl.logged++
	// The encode happens under the mutex so lines from concurrent queries
	// never interleave; one line per sampling interval keeps this cold.
	enc := json.NewEncoder(sl.w)
	e.TS = sl.now().UTC().Format(time.RFC3339Nano)
	e.ElapsedUS = elapsed.Microseconds()
	_ = enc.Encode(e)
	sl.mu.Unlock()
}

// Logged reports how many slow-query lines have been written (tests and the
// overload smoke assert on it).
func (sl *slowLog) Logged() int64 {
	if sl == nil {
		return 0
	}
	sl.mu.Lock()
	defer sl.mu.Unlock()
	return sl.logged
}
