package server

import (
	"math"
	"sync"
	"time"
)

// bucketTable is the per-client token-bucket rate limiter: each client ID
// owns one bucket refilled at rate tokens/sec up to burst. The table itself
// is bounded (maxClients) so an attacker cycling client IDs cannot grow it
// without limit — when full, idle buckets are evicted first and, if every
// bucket is busy, the unknown newcomer is simply refused admission (the
// conservative failure: an overloaded table is itself an overload signal).
type bucketTable struct {
	mu         sync.Mutex
	rate       float64 // tokens per second; <= 0 disables rate limiting
	burst      float64
	maxClients int
	buckets    map[string]*bucket
	now        func() time.Time
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newBucketTable(rate float64, burst, maxClients int, now func() time.Time) *bucketTable {
	if burst < 1 {
		burst = 1
	}
	if maxClients < 1 {
		maxClients = 1
	}
	return &bucketTable{
		rate:       rate,
		burst:      float64(burst),
		maxClients: maxClients,
		buckets:    make(map[string]*bucket),
		now:        now,
	}
}

// take attempts to consume n tokens from client's bucket. On refusal it
// returns the duration after which the client should retry (the Retry-After
// hint), always at least one second so well-behaved clients back off
// meaningfully.
//
// The effective cost is clamped to the bucket capacity: a request priced
// beyond burst (a /batch with more lines than BurstPerClient) would otherwise
// wait for a token level the bucket can never reach — the refill saturates at
// burst — so every retry would see the same refusal and the advertised
// Retry-After would be a lie. Charging a full bucket is the strongest penalty
// the limiter can express; admission of oversized batches is still bounded by
// MaxBatchQueries and the accept queue.
func (t *bucketTable) take(client string, n int) (ok bool, retryAfter time.Duration) {
	if t.rate <= 0 {
		return true, 0
	}
	need := float64(n)
	if need > t.burst {
		need = t.burst
	}
	now := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	b := t.buckets[client]
	if b == nil {
		if len(t.buckets) >= t.maxClients && !t.evictIdle(now) {
			// Table saturated with active clients: refuse the newcomer with a
			// flat one-second backoff instead of growing without bound.
			return false, time.Second
		}
		b = &bucket{tokens: t.burst, last: now}
		t.buckets[client] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = math.Min(t.burst, b.tokens+t.rate*dt)
	}
	b.last = now
	if b.tokens >= need {
		b.tokens -= need
		return true, 0
	}
	wait := time.Duration((need - b.tokens) / t.rate * float64(time.Second))
	if wait < time.Second {
		wait = time.Second
	}
	return false, wait
}

// evictIdle removes one bucket that has refilled to burst (its owner has been
// quiet long enough to be indistinguishable from a new client). Caller holds
// t.mu. Reports whether a slot was freed.
func (t *bucketTable) evictIdle(now time.Time) bool {
	for id, b := range t.buckets {
		tokens := b.tokens
		if dt := now.Sub(b.last).Seconds(); dt > 0 {
			tokens = math.Min(t.burst, tokens+t.rate*dt)
		}
		if tokens >= t.burst {
			delete(t.buckets, id)
			return true
		}
	}
	return false
}
