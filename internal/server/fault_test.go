// Fault-injection harness for the query service. Every scenario here is an
// overload, fault, or shutdown the server must survive with its invariants
// intact: shed requests never touch the engine, served answers are
// bit-identical to an unloaded oracle, goroutines and queues stay bounded,
// a wedged log degrades to read-only instead of down, and drain loses no
// in-flight work.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"specqp"
)

// fakeClock is the injected time source for admission/degradation tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// TestShedBeforeEngine floods a 1-slot, 1-queue server whose backend is
// parked on a gate: of N concurrent requests exactly two may ever reach the
// engine (one running, one queued); every other request must be shed with a
// fast 429 + Retry-After while the gate is still closed — proving sheds
// happen before any engine work.
func TestShedBeforeEngine(t *testing.T) {
	gb := &gateBackend{Backend: testEngine(t), gate: make(chan struct{})}
	srv := New(Config{Backend: gb, MaxInflight: 1, MaxQueue: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const n = 12
	body := fmt.Sprintf(`{"query":%q,"k":2,"deadline_ms":30000}`, fixtureSPARQL)
	statuses := make(chan int, n)
	var launched, shedSeen sync.WaitGroup
	launched.Add(n)
	shedSeen.Add(n - 2)
	for i := 0; i < n; i++ {
		go func() {
			defer launched.Done()
			resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(body))
			if err != nil {
				t.Error(err)
				statuses <- 0
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusTooManyRequests {
				if resp.Header.Get("Retry-After") == "" {
					t.Error("429 without Retry-After")
				}
				shedSeen.Done()
			}
			statuses <- resp.StatusCode
		}()
	}

	// Wait until all n-2 sheds have come back. The gate is still closed, so
	// at this instant the engine has been touched by at most the two admitted
	// requests — and neither has completed.
	shedSeen.Wait()
	if got := gb.queryCalls.Load(); got > 2 {
		t.Fatalf("engine touched %d times with gate closed (want <= 2)", got)
	}
	if got := srv.Metrics().ShedQueue.Load(); got != n-2 {
		t.Fatalf("ShedQueue = %d, want %d", got, n-2)
	}

	close(gb.gate)
	launched.Wait()
	counts := map[int]int{}
	for i := 0; i < n; i++ {
		counts[<-statuses]++
	}
	if counts[http.StatusOK] != 2 || counts[http.StatusTooManyRequests] != n-2 {
		t.Fatalf("status distribution: %v", counts)
	}
	if got := gb.queryCalls.Load(); got != 2 {
		t.Fatalf("engine calls after drain: %d want 2", got)
	}
}

// TestRateLimitShedsPerClient verifies the per-client token buckets: a burst
// past the bucket is shed per client, and an independent client is untouched.
func TestRateLimitShedsPerClient(t *testing.T) {
	clock := newFakeClock()
	srv := New(Config{
		Backend:       testEngine(t),
		RatePerClient: 1, BurstPerClient: 2,
		now: clock.Now,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	do := func(client string) int {
		req, _ := http.NewRequest("POST", ts.URL+"/query", strings.NewReader(
			fmt.Sprintf(`{"query":%q,"k":1}`, fixtureSPARQL)))
		req.Header.Set("X-Client-ID", client)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	got := []int{do("alice"), do("alice"), do("alice"), do("alice")}
	want := []int{200, 200, 429, 429}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("alice request %d: status %d want %d (all: %v)", i+1, got[i], want[i], got)
		}
	}
	if s := do("bob"); s != http.StatusOK {
		t.Fatalf("bob should have a fresh bucket, got %d", s)
	}
	// The bucket refills at 1 token/sec on the fake clock.
	clock.Advance(2 * time.Second)
	if s := do("alice"); s != http.StatusOK {
		t.Fatalf("alice after refill: %d", s)
	}
	if srv.Metrics().ShedRate.Load() != 2 {
		t.Fatalf("ShedRate = %d", srv.Metrics().ShedRate.Load())
	}
}

// TestDegradationTiers drives the governor through its tiers on a fake clock
// and asserts the server rewrites admitted queries accordingly: exact-only at
// tier 1, shrunk k at tier 2, and full recovery after a quiet period.
func TestDegradationTiers(t *testing.T) {
	clock := newFakeClock()
	srv := New(Config{
		Backend:           testEngine(t),
		DegradeThreshold:  4, // tier1 at 4 outstanding sheds, tier2 at 16
		DegradeLeakPerSec: 1,
		DegradedK:         1,
		now:               clock.Now,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	query := func() map[string]any {
		_, out := postJSON(t, ts.URL+"/query", map[string]any{
			"query": fixtureSPARQL, "k": 3, "mode": "spec-qp",
		})
		return out
	}

	if out := query(); out["mode"] != "spec-qp" || out["tier"].(float64) != 0 {
		t.Fatalf("tier 0: %v / %v", out["mode"], out["tier"])
	}

	for i := 0; i < 5; i++ {
		srv.gov.noteShed()
	}
	if srv.Tier() != TierExact {
		t.Fatalf("tier after 5 sheds: %d", srv.Tier())
	}
	out := query()
	if out["mode"] != "exact" || out["tier"].(float64) != 1 {
		t.Fatalf("tier 1 should force exact mode: %v / %v", out["mode"], out["tier"])
	}
	if len(out["answers"].([]any)) == 0 {
		t.Fatal("tier 1 still answers")
	}

	for i := 0; i < 20; i++ {
		srv.gov.noteShed()
	}
	if srv.Tier() != TierShrunkK {
		t.Fatalf("tier after sustained sheds: %d", srv.Tier())
	}
	out = query()
	if out["mode"] != "exact" || out["k"].(float64) != 1 {
		t.Fatalf("tier 2 should shrink k to 1: %v / k=%v", out["mode"], out["k"])
	}
	if n := len(out["answers"].([]any)); n > 1 {
		t.Fatalf("tier 2 answers: %d", n)
	}

	// /healthz reports the degradation.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h healthz
	json.NewDecoder(resp.Body).Decode(&h)
	resp.Body.Close()
	if h.Status != "degraded" || h.Tier != TierShrunkK {
		t.Fatalf("healthz under degradation: %+v", h)
	}

	// A quiet period leaks the bucket dry and the server recovers fully.
	clock.Advance(time.Minute)
	if srv.Tier() != TierNormal {
		t.Fatalf("tier after quiet period: %d", srv.Tier())
	}
	if out := query(); out["mode"] != "spec-qp" || out["tier"].(float64) != 0 {
		t.Fatalf("recovery: %v / %v", out["mode"], out["tier"])
	}
	if srv.Metrics().Degraded.Load() != 2 {
		t.Fatalf("Degraded = %d", srv.Metrics().Degraded.Load())
	}
}

// TestReadOnlyOnWedgedLog verifies graceful degradation under a durability
// fault: with the WAL wedged, mutations fail fast with 503 before touching
// the engine, queries keep serving, and /healthz reports read-only.
func TestReadOnlyOnWedgedLog(t *testing.T) {
	gb := &gateBackend{Backend: testEngine(t)}
	gb.wedged.Store(true)
	srv := New(Config{Backend: gb})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	status, out := postJSON(t, ts.URL+"/insert", map[string]any{
		"s": "bowie", "p": "rdf:type", "o": "singer", "score": 97.0,
	})
	if status != http.StatusServiceUnavailable {
		t.Fatalf("wedged insert: status %d %v", status, out)
	}
	if msg, _ := out["error"].(string); !strings.Contains(msg, "read-only") || !strings.Contains(msg, "wedged") {
		t.Fatalf("wedged insert error: %v", out)
	}
	if gb.mutCalls.Load() != 0 {
		t.Fatal("wedged mutation reached the engine")
	}

	status, out = postJSON(t, ts.URL+"/query", map[string]any{"query": fixtureSPARQL, "k": 2})
	if status != http.StatusOK || len(out["answers"].([]any)) == 0 {
		t.Fatalf("queries must keep serving read-only: %d %v", status, out)
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h healthz
	json.NewDecoder(resp.Body).Decode(&h)
	resp.Body.Close()
	if h.Status != "read-only" || !h.Wedged {
		t.Fatalf("healthz: %+v", h)
	}
}

// TestDrainFlushesAndRefuses proves the graceful-drain sequence: in-flight
// requests finish and are answered, new arrivals get a fast 503, and the
// final Sync+Checkpoint runs exactly once.
func TestDrainFlushesAndRefuses(t *testing.T) {
	gb := &gateBackend{Backend: testEngine(t), gate: make(chan struct{})}
	srv := New(Config{Backend: gb, MaxInflight: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	inflight := make(chan int, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(
			fmt.Sprintf(`{"query":%q,"k":2,"deadline_ms":30000}`, fixtureSPARQL)))
		if err != nil {
			inflight <- 0
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		inflight <- resp.StatusCode
	}()
	// Wait for the request to reach the engine gate.
	for gb.queryCalls.Load() == 0 {
		time.Sleep(time.Millisecond)
	}

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drained <- srv.Drain(ctx)
	}()
	for !srv.Draining() {
		time.Sleep(time.Millisecond)
	}

	// New arrivals are refused immediately while the in-flight one runs.
	status, _ := postJSON(t, ts.URL+"/query", map[string]any{"query": fixtureSPARQL})
	if status != http.StatusServiceUnavailable {
		t.Fatalf("during drain: status %d", status)
	}
	if srv.Metrics().ShedDraining.Load() != 1 {
		t.Fatalf("ShedDraining = %d", srv.Metrics().ShedDraining.Load())
	}

	close(gb.gate)
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if got := <-inflight; got != http.StatusOK {
		t.Fatalf("in-flight request dropped during drain: status %d", got)
	}
	if gb.syncs.Load() != 1 || gb.checkpoints.Load() != 1 {
		t.Fatalf("final flush: syncs=%d checkpoints=%d", gb.syncs.Load(), gb.checkpoints.Load())
	}

	// A second Drain waits but must not flush again.
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if gb.syncs.Load() != 1 || gb.checkpoints.Load() != 1 {
		t.Fatal("second drain re-flushed")
	}
}

// TestDrainTimesOutOnStuckRequest: a request parked in the engine past the
// drain context's deadline surfaces as a drain error, not a hang.
func TestDrainTimesOutOnStuckRequest(t *testing.T) {
	gb := &gateBackend{Backend: testEngine(t), gate: make(chan struct{})}
	srv := New(Config{Backend: gb})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	go http.Post(ts.URL+"/query", "application/json", strings.NewReader(
		fmt.Sprintf(`{"query":%q,"deadline_ms":30000}`, fixtureSPARQL)))
	for gb.queryCalls.Load() == 0 {
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := srv.Drain(ctx); err == nil {
		t.Fatal("drain should time out with a stuck request")
	}
	close(gb.gate)
}

// TestClientCancelReleasesSlot: a client that disconnects mid-query must not
// leak its execution slot — the service recovers full capacity.
func TestClientCancelReleasesSlot(t *testing.T) {
	gb := &gateBackend{Backend: testEngine(t), gate: make(chan struct{})}
	defer close(gb.gate)
	srv := New(Config{Backend: gb, MaxInflight: 1, MaxQueue: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, "POST", ts.URL+"/query", strings.NewReader(
		fmt.Sprintf(`{"query":%q,"deadline_ms":30000}`, fixtureSPARQL)))
	errc := make(chan error, 1)
	go func() {
		_, err := http.DefaultClient.Do(req)
		errc <- err
	}()
	for gb.queryCalls.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("expected client-side cancellation error")
	}

	// The slot must come back: a fresh request gets admitted (it parks on the
	// gate, which is exactly the point — admission succeeded).
	deadline := time.Now().Add(5 * time.Second)
	for len(srv.slots) != 0 || srv.waiting.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("slot leaked after client cancel: inflight=%d waiting=%d",
				len(srv.slots), srv.waiting.Load())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestOracleBitIdenticalUnderLoad hammers an undersized server with a mixed
// query/mutation workload and asserts the core correctness invariant: every
// answered query is bit-identical (bindings and scores) to the unloaded
// oracle; overload may shed, but it may never corrupt.
func TestOracleBitIdenticalUnderLoad(t *testing.T) {
	eng := testEngine(t)
	q, err := eng.ParseSPARQL(fixtureSPARQL)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := eng.Query(q, 3, specqp.ModeTriniT)
	if err != nil {
		t.Fatal(err)
	}
	type wireAnswer struct {
		Binding map[string]string
		Score   float64
	}
	want := make([]wireAnswer, len(oracle.Answers))
	for i, a := range oracle.Answers {
		want[i] = wireAnswer{Binding: eng.DecodeAnswer(q, a), Score: a.Score}
	}

	srv := New(Config{Backend: eng, MaxInflight: 2, MaxQueue: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const workers, perWorker = 8, 40
	var served, shed, failed atomic.Int64
	var wg sync.WaitGroup
	body := fmt.Sprintf(`{"query":%q,"k":3,"mode":"trinit","deadline_ms":10000}`, fixtureSPARQL)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				// Every 8th op is a mutation of an unrelated predicate, so the
				// oracle stays valid while the write path stays hot.
				if i%8 == 7 {
					buf, _ := json.Marshal(map[string]any{
						"s": fmt.Sprintf("w%d-i%d", w, i), "p": "noise", "o": "blob", "score": 1.0,
					})
					resp, err := http.Post(ts.URL+"/insert", "application/json", bytes.NewReader(buf))
					if err == nil {
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
					continue
				}
				resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(body))
				if err != nil {
					failed.Add(1)
					continue
				}
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					var out struct {
						Answers []struct {
							Binding map[string]string `json:"binding"`
							Score   float64           `json:"score"`
						} `json:"answers"`
					}
					if err := json.Unmarshal(raw, &out); err != nil {
						t.Errorf("decode: %v", err)
						continue
					}
					if len(out.Answers) != len(want) {
						t.Errorf("answer count %d want %d", len(out.Answers), len(want))
						continue
					}
					for r := range want {
						if out.Answers[r].Score != want[r].Score ||
							out.Answers[r].Binding["s"] != want[r].Binding["s"] {
							t.Errorf("rank %d: got %v/%v want %v/%v", r,
								out.Answers[r].Binding["s"], out.Answers[r].Score,
								want[r].Binding["s"], want[r].Score)
						}
					}
					served.Add(1)
				case http.StatusTooManyRequests:
					shed.Add(1)
				default:
					failed.Add(1)
					t.Errorf("unexpected status %d: %s", resp.StatusCode, raw)
				}
			}
		}(w)
	}
	wg.Wait()
	if served.Load() == 0 {
		t.Fatal("no queries served under load")
	}
	if failed.Load() != 0 {
		t.Fatalf("failed requests: %d", failed.Load())
	}
	t.Logf("served=%d shed=%d", served.Load(), shed.Load())
}

// TestGoroutinesBoundedUnderBurst asserts overload does not grow the
// process: after an overload burst drains, the goroutine count returns to
// near its pre-burst baseline (no leaked handlers, waiters, or timers).
func TestGoroutinesBoundedUnderBurst(t *testing.T) {
	gb := &gateBackend{Backend: testEngine(t), gate: make(chan struct{})}
	srv := New(Config{Backend: gb, MaxInflight: 2, MaxQueue: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	runtime.GC()
	baseline := runtime.NumGoroutine()

	var wg sync.WaitGroup
	body := fmt.Sprintf(`{"query":%q,"deadline_ms":30000}`, fixtureSPARQL)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(body))
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	close(gb.gate)
	wg.Wait()
	http.DefaultClient.CloseIdleConnections()

	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+8 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not return to baseline: %d -> %d",
				baseline, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if w := srv.waiting.Load(); w != 0 {
		t.Fatalf("accept queue not drained: %d", w)
	}
}

// TestSlowLorisRecovery: connections that trickle bytes forever must not pin
// the service. With ReadTimeout armed (as specqp-serve arms it), the loris
// connections are cut and full capacity returns to honest clients.
func TestSlowLorisRecovery(t *testing.T) {
	gb := &gateBackend{Backend: testEngine(t)}
	srv := New(Config{Backend: gb, MaxInflight: 2, MaxQueue: 2})
	ts := httptest.NewUnstartedServer(srv.Handler())
	ts.Config.ReadTimeout = 300 * time.Millisecond
	ts.Start()
	defer ts.Close()
	addr := strings.TrimPrefix(ts.URL, "http://")

	// Open loris connections that send headers promising a body, then stall.
	var conns []net.Conn
	for i := 0; i < 4; i++ {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(c, "POST /query HTTP/1.1\r\nHost: x\r\nContent-Type: application/json\r\nContent-Length: 1000\r\n\r\n{")
		conns = append(conns, c)
	}
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()

	// Within a few read-timeout periods the loris slots are reclaimed and an
	// honest query is served.
	deadline := time.Now().Add(5 * time.Second)
	body := fmt.Sprintf(`{"query":%q,"k":2}`, fixtureSPARQL)
	for {
		resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(body))
		if err == nil {
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK && strings.Contains(string(raw), "answers") {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("service did not recover from slow-loris connections")
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestBucketTableBounded: cycling client IDs cannot grow the bucket table
// past its cap; with every bucket active, unknown newcomers are refused.
func TestBucketTableBounded(t *testing.T) {
	clock := newFakeClock()
	bt := newBucketTable(1, 4, 8, clock.Now)
	for i := 0; i < 100; i++ {
		bt.take(fmt.Sprintf("client-%d", i), 1)
	}
	if len(bt.buckets) > 8 {
		t.Fatalf("bucket table grew to %d (cap 8)", len(bt.buckets))
	}
	// Drain every bucket so none is idle-evictable, then a newcomer must be
	// refused rather than grow the table.
	clock.Advance(10 * time.Second)
	ids := make([]string, 0, len(bt.buckets))
	for id := range bt.buckets {
		ids = append(ids, id)
	}
	for _, id := range ids {
		bt.take(id, 4)
	}
	ok, retry := bt.take("newcomer", 1)
	if ok || retry < time.Second {
		t.Fatalf("saturated table admitted newcomer: ok=%v retry=%v", ok, retry)
	}
	// Once buckets refill (idle owners), the newcomer evicts one and gets in.
	clock.Advance(time.Minute)
	if ok, _ := bt.take("newcomer", 1); !ok {
		t.Fatal("idle eviction failed")
	}
	if len(bt.buckets) > 8 {
		t.Fatalf("table exceeded cap after eviction: %d", len(bt.buckets))
	}
}

// TestExpiredDeadlineReports504: a deadline that expires inside the engine
// maps to 504 with the partial flag set.
func TestExpiredDeadlineReports504(t *testing.T) {
	gb := &gateBackend{Backend: testEngine(t), gate: make(chan struct{})}
	defer close(gb.gate)
	srv := New(Config{Backend: gb})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	status, out := postJSON(t, ts.URL+"/query", map[string]any{
		"query": fixtureSPARQL, "deadline_ms": 50,
	})
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status %d: %v", status, out)
	}
	if out["partial"] != true {
		t.Fatalf("expired query should be marked partial: %v", out)
	}
	if srv.Metrics().Expired.Load() != 1 {
		t.Fatalf("Expired = %d", srv.Metrics().Expired.Load())
	}
}
