// Streaming top-k delivery: the rank-join operators prove an answer final —
// corner bound at or below the answer's score — long before the full top-k
// fills, and this file puts that proof on the wire. A streaming request
// (`"stream": true` in the body, or `Accept: application/x-ndjson`) receives
// one NDJSON line per answer the moment the engine emits it, flushed through
// http.Flusher so it leaves the process immediately, followed by one trailer
// line per query carrying the metrics, tier and error that a buffered
// response would have carried in its envelope.
//
// Wire shape, one JSON object per line:
//
//	{"index":0,"answer":{"binding":{...},"score":1.87,"relaxed":2}}   answer
//	{"index":0,"trailer":{"answers":3,"k":3,"mode":"spec-qp",...}}    trailer
//
// index is the query's position in a /batch request (always 0 on /query);
// batch answer lines interleave across queries as each proves answers final,
// so clients demultiplex by index. The status is committed as 200 when the
// first line is written; failures after that point are reported in the
// trailer (error/partial), never as a silent truncation — every line write is
// error-checked and the stream stops at the first failed write.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"sync"
	"time"

	"specqp"
)

// lineWriter serialises NDJSON lines, flushing after every line so streamed
// answers reach the client immediately, and latching the first encode/write
// error so a failed connection stops the stream instead of silently
// truncating the body under an already-committed 200.
type lineWriter struct {
	enc *json.Encoder
	fl  http.Flusher
	err error
}

func newLineWriter(w http.ResponseWriter) *lineWriter {
	fl, _ := w.(http.Flusher)
	return &lineWriter{enc: json.NewEncoder(w), fl: fl}
}

// writeLine encodes v as one NDJSON line and flushes it. It reports whether
// the line reached the transport; after the first failure every call is a
// cheap no-op returning false.
func (lw *lineWriter) writeLine(v any) bool {
	if lw.err != nil {
		return false
	}
	if err := lw.enc.Encode(v); err != nil {
		lw.err = err
		return false
	}
	if lw.fl != nil {
		lw.fl.Flush()
	}
	return true
}

// failed reports whether a line write has failed; once true the connection is
// dead and no further engine or encode work should be spent on it.
func (lw *lineWriter) failed() bool { return lw.err != nil }

// wantsStream reports whether the request asked for incremental NDJSON
// delivery, by body flag or Accept header.
func wantsStream(r *http.Request, req queryRequest) bool {
	return req.Stream || strings.Contains(r.Header.Get("Accept"), "application/x-ndjson")
}

// streamAnswer is one streamed answer line.
type streamAnswer struct {
	Index  int        `json:"index"`
	Answer answerJSON `json:"answer"`
}

// streamTrailer is the per-query final line of a stream.
type streamTrailer struct {
	Index   int         `json:"index"`
	Trailer trailerBody `json:"trailer"`
}

// trailerBody carries what a buffered queryResponse carries minus the answers
// themselves (already on the wire): result metrics, the served tier, and the
// error/partial outcome that arrived too late for the status line.
type trailerBody struct {
	Answers int    `json:"answers"`
	K       int    `json:"k"`
	Mode    string `json:"mode"`
	Tier    int    `json:"tier"`
	ExecUS  int64  `json:"exec_us"`
	PlanUS  int64  `json:"plan_us,omitempty"`
	Partial bool   `json:"partial,omitempty"`
	Error   string `json:"error,omitempty"`
}

// trailerFor builds the trailer line body for one executed query.
func trailerFor(res specqp.Result, err error, answers, k int, mode specqp.Mode, tier int) trailerBody {
	tb := trailerBody{
		Answers: answers,
		K:       k,
		Mode:    mode.String(),
		Tier:    tier,
		ExecUS:  res.ExecTime.Microseconds(),
		PlanUS:  res.PlanTime.Microseconds(),
	}
	if err != nil {
		tb.Error = err.Error()
		tb.Partial = errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)
	}
	return tb
}

// streamQuery serves one /query request incrementally: each proven-final
// answer is encoded and flushed as its own line, then the trailer reports the
// outcome. Deadline and cancellation semantics are QueryContext's — an expiry
// mid-stream stops the operators within AbortStride pulls and the answers
// already streamed stand, marked partial in the trailer.
func (s *Server) streamQuery(ctx context.Context, w http.ResponseWriter, q specqp.Query, k int, mode specqp.Mode, tier int, start time.Time) (specqp.Result, error, int) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	lw := newLineWriter(w)

	n := 0
	res, qerr := s.eng.QueryStream(ctx, q, k, mode, func(a specqp.Answer) bool {
		if n == 0 {
			s.m.FirstAnswer.Observe(s.cfg.now().Sub(start))
		}
		n++
		s.m.StreamedAnswers.Add(1)
		return lw.writeLine(streamAnswer{Answer: answerJSON{
			Binding: s.eng.DecodeAnswer(q, a),
			Score:   a.Score,
			Relaxed: a.Relaxed,
		}})
	})
	s.m.Latency.Observe(s.cfg.now().Sub(start))
	switch {
	case qerr == nil:
	case errors.Is(qerr, context.DeadlineExceeded):
		s.m.Expired.Add(1)
	case errors.Is(qerr, context.Canceled):
	default:
		s.m.QueryErrors.Add(1)
	}
	if !lw.failed() {
		lw.writeLine(streamTrailer{Trailer: trailerFor(res, qerr, n, k, mode, tier)})
	}
	return res, qerr, n
}

// streamBatch serves one /batch request incrementally over the shared worker
// pool: answer lines from different queries interleave as each query proves
// answers final (clients demultiplex by index), then one trailer line per
// input line reports each query's outcome in input order. queries and
// parseErrs align with reqs; valid holds the parsed queries in input order.
func (s *Server) streamBatch(ctx context.Context, w http.ResponseWriter, reqs []queryRequest, queries []specqp.Query, parseErrs []error, valid []specqp.Query, k int, mode specqp.Mode, tier int, start time.Time) {
	// origIdx maps a valid-query index back to its input line.
	origIdx := make([]int, 0, len(valid))
	for i := range reqs {
		if parseErrs[i] == nil {
			origIdx = append(origIdx, i)
		}
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	lw := newLineWriter(w)

	// The pool calls emit from concurrent workers; the mutex serialises line
	// writes and the first-answer observation. A dead connection turns every
	// later emit into a false return, stopping each in-flight query at its
	// next proven answer instead of draining k for a client that left.
	var mu sync.Mutex
	counts := make([]int, len(valid))
	first := true
	emit := func(vi int, a specqp.Answer) bool {
		mu.Lock()
		defer mu.Unlock()
		if first {
			first = false
			s.m.FirstAnswer.Observe(s.cfg.now().Sub(start))
		}
		counts[vi]++
		s.m.StreamedAnswers.Add(1)
		oi := origIdx[vi]
		return lw.writeLine(streamAnswer{Index: oi, Answer: answerJSON{
			Binding: s.eng.DecodeAnswer(queries[oi], a),
			Score:   a.Score,
			Relaxed: a.Relaxed,
		}})
	}

	results, berr := s.eng.QueryBatchStream(ctx, valid, k, mode, emit)
	s.m.Latency.Observe(s.cfg.now().Sub(start))
	if berr != nil {
		// Batch-level misuse; the queries never ran. One terminal trailer.
		s.m.QueryErrors.Add(1)
		if !lw.failed() {
			lw.writeLine(streamTrailer{Index: -1, Trailer: trailerBody{
				K: k, Mode: mode.String(), Tier: tier, Error: "batch: " + berr.Error(),
			}})
		}
		return
	}

	ri := 0
	for i := range reqs {
		if lw.failed() {
			return
		}
		if parseErrs[i] != nil {
			lw.writeLine(streamTrailer{Index: i, Trailer: trailerBody{
				K: k, Mode: mode.String(), Tier: tier, Error: "parse: " + parseErrs[i].Error(),
			}})
			continue
		}
		br := results[ri]
		if br.Err != nil && errors.Is(br.Err, context.DeadlineExceeded) {
			s.m.Expired.Add(1)
		}
		lw.writeLine(streamTrailer{Index: i, Trailer: trailerFor(br.Result, br.Err, counts[ri], k, mode, tier)})
		ri++
	}
}
