package server

import (
	"sync"
	"time"
)

// Degradation tiers. Under sustained overload the server does not merely
// shed harder — it makes every admitted query cheaper, exploiting the
// paper's own semantics: the exact (unrelaxed) top-k is a principled answer,
// not an error, so saturation degrades answer enrichment before it degrades
// availability.
const (
	// TierNormal serves the requested mode and k unchanged.
	TierNormal = 0
	// TierExact forces ModeExact: relaxation processing (the Incremental
	// Merges and relaxed scans) is dropped, queries answer with the exact
	// top-k of the unrelaxed query.
	TierExact = 1
	// TierShrunkK additionally caps k at Config.DegradedK, shrinking the
	// rank joins' stopping depth.
	TierShrunkK = 2
)

// governor decides the current degradation tier from a leaky bucket of
// queue-full shed events: every shed adds one unit of pressure, pressure
// leaks at leakPerSec, and the tier is a threshold function of the
// outstanding pressure. A short burst of sheds (below the threshold) never
// degrades; sustained shedding — arrivals outpacing the leak — escalates to
// TierExact and then TierShrunkK, and a quiet period drains the bucket back
// to TierNormal. Time is read through the injected clock so the fault
// harness can drive transitions deterministically.
type governor struct {
	mu         sync.Mutex
	score      float64
	last       time.Time
	leakPerSec float64
	t1, t2     float64
	// latThreshold feeds completion latencies into the same bucket: every
	// accepted query slower than it adds one unit of pressure, exactly like a
	// shed. Zero disables the latency feed (the default — shed-only). This is
	// the early-warning half of degradation: a saturated engine can be slow
	// without the accept queue ever filling (slow queries at low arrival
	// rate), and waiting for sheds means waiting for queueing collapse.
	latThreshold time.Duration
	now          func() time.Time
}

func newGovernor(threshold, leakPerSec float64, latThreshold time.Duration, now func() time.Time) *governor {
	if threshold <= 0 {
		threshold = 64
	}
	if leakPerSec <= 0 {
		leakPerSec = 16
	}
	return &governor{leakPerSec: leakPerSec, t1: threshold, t2: 4 * threshold, latThreshold: latThreshold, now: now}
}

// decay applies the leak since the last observation. Caller holds g.mu.
func (g *governor) decay() {
	now := g.now()
	if !g.last.IsZero() {
		if dt := now.Sub(g.last).Seconds(); dt > 0 {
			g.score -= g.leakPerSec * dt
			if g.score < 0 {
				g.score = 0
			}
		}
	}
	g.last = now
}

// noteShed records one queue-full shed.
func (g *governor) noteShed() {
	g.mu.Lock()
	g.decay()
	g.score++
	g.mu.Unlock()
}

// noteLatency records one accepted query's completion latency; breaches of
// the configured threshold pressure the bucket like a shed. A no-op when the
// latency feed is disabled or the query was fast — the common case pays one
// comparison, no lock.
func (g *governor) noteLatency(d time.Duration) {
	if g.latThreshold <= 0 || d < g.latThreshold {
		return
	}
	g.mu.Lock()
	g.decay()
	g.score++
	g.mu.Unlock()
}

// Tier returns the current degradation tier.
func (g *governor) Tier() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.decay()
	switch {
	case g.score >= g.t2:
		return TierShrunkK
	case g.score >= g.t1:
		return TierExact
	default:
		return TierNormal
	}
}

// Pressure returns the outstanding pressure score (observability).
func (g *governor) Pressure() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.decay()
	return g.score
}
