// Package server is the HTTP/JSON front end over the specqp engine, and its
// headline is the failure discipline, not the routes:
//
//   - Admission control: per-client token buckets and a bounded accept queue
//     shed load with a fast 429 + Retry-After *before* any engine work — the
//     server never queues unboundedly, and a shed request costs a few atomic
//     operations, not a goroutine parked on the executor.
//   - Deadline propagation: the request's deadline (X-Deadline-Ms header or
//     deadline_ms body field, clamped to a configured maximum) rides the
//     request context into Engine.QueryContext, where the operators poll it
//     at a bounded stride — a cancelled or expired client never holds an
//     executor worker.
//   - Graceful degradation: sustained queue-shedding escalates a governor
//     through tiers — serve exact-only answers (the paper's own relaxation
//     semantics make the unrelaxed top-k a principled cheaper answer), then
//     shrink k — and a wedged write-ahead log flips the server read-only:
//     mutations fail fast with the sticky typed error while queries keep
//     serving.
//   - Graceful drain: Drain stops admitting, waits for in-flight requests,
//     and persists a final Sync + Checkpoint, so SIGTERM loses nothing.
//
// Endpoints: POST /query (JSON object), POST /batch (JSON lines, one query
// per line, shared k/mode), POST /insert /delete /update, GET /healthz,
// GET /metrics.
package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"specqp"
	"specqp/internal/metrics"
)

// Backend is the engine surface the server drives. *specqp.Engine implements
// it directly; the fault-injection harness wraps it to count and delay calls,
// which is how "no shed request ever touches the engine" is asserted rather
// than assumed.
type Backend interface {
	ParseSPARQL(src string) (specqp.Query, error)
	QueryContext(ctx context.Context, q specqp.Query, k int, mode specqp.Mode) (specqp.Result, error)
	QueryStream(ctx context.Context, q specqp.Query, k int, mode specqp.Mode, emit specqp.AnswerEmitter) (specqp.Result, error)
	QueryBatch(ctx context.Context, queries []specqp.Query, k int, mode specqp.Mode) ([]specqp.BatchResult, error)
	QueryBatchStream(ctx context.Context, queries []specqp.Query, k int, mode specqp.Mode, emit func(int, specqp.Answer) bool) ([]specqp.BatchResult, error)
	DecodeAnswer(q specqp.Query, a specqp.Answer) map[string]string
	InsertSPO(s, p, o string, score float64) error
	DeleteSPO(s, p, o string) (int, error)
	UpdateSPO(s, p, o string, score float64) error
	Sync() error
	Checkpoint() error
	Wedged() bool
}

var _ Backend = (*specqp.Engine)(nil)

// A read replica fed by WAL log shipping serves the same surface: queries
// from the last applied state, mutations refused with the wedged-log error,
// which the mutation handlers already render as 503 read-only.
var _ Backend = (*specqp.Replica)(nil)

// TracedBackend is the optional tracing extension of Backend: engines that
// implement it serve `"explain": true` requests and feed the slow-query log
// real execution traces. Backends without it (fault-injection wrappers that
// only implement Backend) still serve everything else — explain requests
// just fall back to an untraced run.
type TracedBackend interface {
	QueryTraced(ctx context.Context, q specqp.Query, k int, mode specqp.Mode) (specqp.Result, error)
}

// StatsBackend is the optional engine-internals extension: /healthz reports
// the store occupancy and WAL position, /metrics the compaction, cache,
// fsync and checkpoint gauges.
type StatsBackend interface {
	Stats() specqp.EngineStats
}

var (
	_ TracedBackend = (*specqp.Engine)(nil)
	_ TracedBackend = (*specqp.Replica)(nil)
	_ StatsBackend  = (*specqp.Engine)(nil)
	_ StatsBackend  = (*specqp.Replica)(nil)
)

// Config tunes the server's admission and degradation behavior. The zero
// value of every field selects a production-safe default.
type Config struct {
	// Backend is the engine to serve (required).
	Backend Backend

	// MaxInflight bounds concurrently executing requests (queries and
	// mutations alike). Default: 2 × GOMAXPROCS.
	MaxInflight int
	// MaxQueue bounds requests waiting for an execution slot; arrivals
	// beyond it are shed with 429. Default: 4 × MaxInflight.
	MaxQueue int

	// RatePerClient is the per-client token-bucket refill rate in requests
	// per second; 0 disables per-client rate limiting.
	RatePerClient float64
	// BurstPerClient is the bucket capacity (default: max(8, RatePerClient)).
	BurstPerClient int
	// MaxClients bounds the bucket table (default 16384).
	MaxClients int

	// DefaultDeadline applies when a request carries no deadline (default
	// 2s); MaxDeadline clamps requested deadlines (default 30s).
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration

	// MaxK clamps the requested k (default 1000). DegradedK is the k cap at
	// TierShrunkK (default 3).
	MaxK      int
	DegradedK int

	// DegradeThreshold is the governor's leaky-bucket tier-1 threshold in
	// outstanding queue-shed events; DegradeLeakPerSec is the leak rate. See
	// the governor for semantics.
	DegradeThreshold  float64
	DegradeLeakPerSec float64
	// DegradeLatency feeds accepted-query completion latency into the same
	// bucket: every query slower than this threshold adds one unit of
	// pressure, like a shed. Zero (the default) disables the latency feed.
	DegradeLatency time.Duration

	// SlowQueryThreshold enables the sampled slow-query log: queries slower
	// than it are logged as structured JSON lines (with their execution
	// trace) to SlowQueryLog, rate-limited to one line per SlowQueryInterval
	// (default 1s); crossings in between are counted, not dropped silently.
	// Zero (the default) disables the log.
	SlowQueryThreshold time.Duration
	SlowQueryInterval  time.Duration
	// SlowQueryLog receives the slow-query lines (default os.Stderr).
	SlowQueryLog io.Writer

	// MaxBodyBytes bounds request bodies (default 1 MiB).
	MaxBodyBytes int64
	// MaxBatchQueries bounds queries per /batch request (default 1024).
	MaxBatchQueries int

	// Metrics receives the server counters; allocated internally when nil.
	Metrics *metrics.ServerMetrics

	// Replication marks this server as fronting a read replica (a follower of
	// WAL log shipping): /healthz reports the replication position and lag,
	// /metrics includes the replication gauges and counters. nil on primaries.
	Replication *metrics.ReplicationMetrics

	// now is the clock seam for the admission and degradation machinery
	// (tests inject a fake clock); nil means time.Now.
	now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.MaxInflight <= 0 {
		c.MaxInflight = 2 * runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 4 * c.MaxInflight
	}
	if c.BurstPerClient <= 0 {
		c.BurstPerClient = 8
		if int(c.RatePerClient) > 8 {
			c.BurstPerClient = int(c.RatePerClient)
		}
	}
	if c.MaxClients <= 0 {
		c.MaxClients = 16384
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 2 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 30 * time.Second
	}
	if c.MaxK <= 0 {
		c.MaxK = 1000
	}
	if c.DegradedK <= 0 {
		c.DegradedK = 3
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.MaxBatchQueries <= 0 {
		c.MaxBatchQueries = 1024
	}
	if c.Metrics == nil {
		c.Metrics = &metrics.ServerMetrics{}
	}
	if c.SlowQueryThreshold > 0 && c.SlowQueryLog == nil {
		c.SlowQueryLog = os.Stderr
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// Server is the resilient query service. Create with New, mount Handler on
// an http.Server, and call Drain before process exit.
type Server struct {
	cfg     Config
	eng     Backend
	traced  TracedBackend // nil when the backend cannot trace
	stats   StatsBackend  // nil when the backend exposes no engine stats
	m       *metrics.ServerMetrics
	slow    *slowLog // nil when disabled
	slots   chan struct{}
	waiting atomic.Int64
	buckets *bucketTable
	gov     *governor

	// draining + reqMu + reqWG implement the drain barrier: beginRequest
	// pairs the flag check with the WaitGroup add under reqMu, so once Drain
	// flips the flag no new request can register and reqWG.Wait is safe.
	draining atomic.Bool
	reqMu    sync.Mutex
	reqWG    sync.WaitGroup
}

// New builds a Server over cfg.Backend.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	if cfg.Backend == nil {
		panic("server: Config.Backend is required")
	}
	s := &Server{
		cfg:     cfg,
		eng:     cfg.Backend,
		m:       cfg.Metrics,
		slow:    newSlowLog(cfg.SlowQueryLog, cfg.SlowQueryThreshold, cfg.SlowQueryInterval, cfg.now),
		slots:   make(chan struct{}, cfg.MaxInflight),
		buckets: newBucketTable(cfg.RatePerClient, cfg.BurstPerClient, cfg.MaxClients, cfg.now),
		gov:     newGovernor(cfg.DegradeThreshold, cfg.DegradeLeakPerSec, cfg.DegradeLatency, cfg.now),
	}
	s.traced, _ = cfg.Backend.(TracedBackend)
	s.stats, _ = cfg.Backend.(StatsBackend)
	return s
}

// SlowQueriesLogged reports how many slow-query lines have been written
// (observability and the overload smoke test).
func (s *Server) SlowQueriesLogged() int64 { return s.slow.Logged() }

// Metrics returns the server's counter set.
func (s *Server) Metrics() *metrics.ServerMetrics { return s.m }

// Tier returns the current degradation tier (observability and tests).
func (s *Server) Tier() int { return s.gov.Tier() }

// Handler returns the route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", s.handleQuery)
	mux.HandleFunc("POST /batch", s.handleBatch)
	mux.HandleFunc("POST /insert", func(w http.ResponseWriter, r *http.Request) { s.handleMutate(w, r, "insert") })
	mux.HandleFunc("POST /delete", func(w http.ResponseWriter, r *http.Request) { s.handleMutate(w, r, "delete") })
	mux.HandleFunc("POST /update", func(w http.ResponseWriter, r *http.Request) { s.handleMutate(w, r, "update") })
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// errorBody writes a JSON error with the given status.
func errorBody(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// shed writes the fast 429 with a Retry-After hint.
func shed(w http.ResponseWriter, retryAfter time.Duration, reason string) {
	secs := int(retryAfter / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	errorBody(w, http.StatusTooManyRequests, "overloaded: %s", reason)
}

// beginRequest registers an in-flight request against the drain barrier.
func (s *Server) beginRequest() bool {
	s.reqMu.Lock()
	defer s.reqMu.Unlock()
	if s.draining.Load() {
		return false
	}
	s.reqWG.Add(1)
	return true
}

// clientID resolves the admission identity of a request: the X-Client-ID
// header when present (multi-tenant deployments set it at the edge),
// otherwise the remote host.
func clientID(r *http.Request) string {
	if id := r.Header.Get("X-Client-ID"); id != "" {
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// admit runs the full admission pipeline for a request costing n tokens:
// drain check, per-client token bucket, bounded accept queue. On success the
// caller holds an execution slot and MUST call the returned release. The
// request has touched no engine state before admit returns.
func (s *Server) admit(w http.ResponseWriter, r *http.Request, n int) (release func(), ok bool) {
	if !s.beginRequest() {
		s.m.ShedDraining.Add(1)
		errorBody(w, http.StatusServiceUnavailable, "draining")
		return nil, false
	}
	done := func() { s.reqWG.Done() }
	s.m.Requests.Add(1)

	if ok, retry := s.buckets.take(clientID(r), n); !ok {
		s.m.ShedRate.Add(1)
		shed(w, retry, "client rate limit")
		done()
		return nil, false
	}

	select {
	case s.slots <- struct{}{}:
	default:
		// No free slot: join the bounded accept queue or shed. The counter
		// add is the reservation; crossing MaxQueue means the queue was full.
		if s.waiting.Add(1) > int64(s.cfg.MaxQueue) {
			s.waiting.Add(-1)
			s.gov.noteShed()
			s.m.ShedQueue.Add(1)
			shed(w, time.Second, "accept queue full")
			done()
			return nil, false
		}
		select {
		case s.slots <- struct{}{}:
			s.waiting.Add(-1)
		case <-r.Context().Done():
			// The client gave up while queued; it holds no slot and the
			// engine never saw it. Counted separately from the sheds the
			// server initiated — queue abandonment is a client-side signal
			// (deadlines shorter than queue wait) that would otherwise be
			// invisible in the admission accounting.
			s.waiting.Add(-1)
			s.m.ShedCanceled.Add(1)
			errorBody(w, http.StatusServiceUnavailable, "canceled while queued")
			done()
			return nil, false
		}
	}
	s.m.Accepted.Add(1)
	return func() {
		<-s.slots
		done()
	}, true
}

// deadlineFor resolves a request's execution deadline: the X-Deadline-Ms
// header, then the body's deadline_ms, then the default — clamped to
// MaxDeadline. The derived context is also canceled when the client
// disconnects (it chains from the request context).
func (s *Server) deadlineFor(r *http.Request, bodyMS int64) time.Duration {
	ms := bodyMS
	if h := r.Header.Get("X-Deadline-Ms"); h != "" {
		if v, err := strconv.ParseInt(h, 10, 64); err == nil && v > 0 {
			ms = v
		}
	}
	d := time.Duration(ms) * time.Millisecond
	if d <= 0 {
		d = s.cfg.DefaultDeadline
	}
	if d > s.cfg.MaxDeadline {
		d = s.cfg.MaxDeadline
	}
	return d
}

// degrade applies the current tier to the requested mode and k, returning
// the effective values and the tier served.
func (s *Server) degrade(mode specqp.Mode, k int) (specqp.Mode, int, int) {
	tier := s.gov.Tier()
	if tier >= TierExact {
		mode = specqp.ModeExact
	}
	if tier >= TierShrunkK && k > s.cfg.DegradedK {
		k = s.cfg.DegradedK
	}
	if tier > TierNormal {
		s.m.Degraded.Add(1)
	}
	return mode, k, tier
}

// queryRequest is the /query body and the per-line /batch shape.
type queryRequest struct {
	Query      string `json:"query"`
	K          int    `json:"k,omitempty"`
	Mode       string `json:"mode,omitempty"`
	DeadlineMS int64  `json:"deadline_ms,omitempty"`
	// Stream selects incremental NDJSON delivery: one line per answer as the
	// rank join proves it final, then a trailer line. Equivalent to sending
	// Accept: application/x-ndjson. On /batch the first line's value governs
	// the whole response, like k/mode/deadline.
	Stream bool `json:"stream,omitempty"`
	// Explain requests the execution trace: the response carries a "trace"
	// object with the planner's decisions and the plan-shaped per-operator
	// counter tree. Explain forces the buffered response shape — a trace
	// describes a completed execution, so it cannot ride NDJSON increments —
	// and is ignored on /batch (trace one query at a time).
	Explain bool `json:"explain,omitempty"`
}

// answerJSON is one decoded answer.
type answerJSON struct {
	Binding map[string]string `json:"binding"`
	Score   float64           `json:"score"`
	Relaxed uint32            `json:"relaxed,omitempty"`
}

// queryResponse is the /query body and the per-line /batch response shape.
type queryResponse struct {
	Answers []answerJSON       `json:"answers"`
	K       int                `json:"k"`
	Mode    string             `json:"mode"`
	Tier    int                `json:"tier"`
	ExecUS  int64              `json:"exec_us"`
	PlanUS  int64              `json:"plan_us,omitempty"`
	Partial bool               `json:"partial,omitempty"`
	Error   string             `json:"error,omitempty"`
	Trace   *specqp.QueryTrace `json:"trace,omitempty"`
}

// resolve parses the mode and clamps k for one request.
func (s *Server) resolve(req queryRequest) (specqp.Mode, int, error) {
	mode := specqp.ModeSpecQP
	if req.Mode != "" {
		m, err := specqp.ParseMode(req.Mode)
		if err != nil {
			return 0, 0, err
		}
		mode = m
	}
	k := req.K
	if k <= 0 {
		k = specqp.DefaultK
	}
	if k > s.cfg.MaxK {
		k = s.cfg.MaxK
	}
	return mode, k, nil
}

// buildResponse converts one engine result into the wire shape.
func (s *Server) buildResponse(q specqp.Query, res specqp.Result, err error, k int, mode specqp.Mode, tier int) queryResponse {
	out := queryResponse{
		Answers: make([]answerJSON, 0, len(res.Answers)),
		K:       k,
		Mode:    mode.String(),
		Tier:    tier,
		ExecUS:  res.ExecTime.Microseconds(),
		PlanUS:  res.PlanTime.Microseconds(),
	}
	for _, a := range res.Answers {
		out.Answers = append(out.Answers, answerJSON{
			Binding: s.eng.DecodeAnswer(q, a),
			Score:   a.Score,
			Relaxed: a.Relaxed,
		})
	}
	if err != nil {
		out.Error = err.Error()
		out.Partial = errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)
	}
	return out
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admit(w, r, 1)
	if !ok {
		return
	}
	defer release()
	start := s.cfg.now()

	var req queryRequest
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		errorBody(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	mode, k, err := s.resolve(req)
	if err != nil {
		errorBody(w, http.StatusBadRequest, "%v", err)
		return
	}
	q, err := s.eng.ParseSPARQL(req.Query)
	if err != nil {
		errorBody(w, http.StatusBadRequest, "parse: %v", err)
		return
	}
	mode, k, tier := s.degrade(mode, k)

	ctx, cancel := context.WithTimeout(r.Context(), s.deadlineFor(r, req.DeadlineMS))
	defer cancel()

	s.m.EngineQueries.Add(1)
	// Tracing decisions happen before execution: an explicit explain request,
	// or a slow-query sampling token — the logged trace must be the real run,
	// never a re-execution. Explain forces the buffered shape (see the field).
	armed := s.slow.arm()
	if wantsStream(r, req) && !req.Explain {
		res, qerr, n := s.streamQuery(ctx, w, q, k, mode, tier, start)
		elapsed := s.cfg.now().Sub(start)
		s.gov.noteLatency(elapsed)
		if armed {
			// Streamed runs are untraced (the trace cannot ride increments);
			// a slow one still logs, just without the operator tree.
			s.slow.observe(elapsed, true, s.slowEntry(req, res, qerr, n, k, mode, tier))
		}
		return
	}
	var res specqp.Result
	var qerr error
	if (req.Explain || armed) && s.traced != nil {
		res, qerr = s.traced.QueryTraced(ctx, q, k, mode)
	} else {
		res, qerr = s.eng.QueryContext(ctx, q, k, mode)
	}
	elapsed := s.cfg.now().Sub(start)
	s.m.Latency.Observe(elapsed)
	s.gov.noteLatency(elapsed)
	s.slow.observe(elapsed, armed, s.slowEntry(req, res, qerr, len(res.Answers), k, mode, tier))

	status := http.StatusOK
	switch {
	case qerr == nil:
	case errors.Is(qerr, context.DeadlineExceeded):
		s.m.Expired.Add(1)
		status = http.StatusGatewayTimeout
	case errors.Is(qerr, context.Canceled):
		// The client is gone; the write below is best-effort.
		status = http.StatusServiceUnavailable
	default:
		s.m.QueryErrors.Add(1)
		status = http.StatusInternalServerError
	}
	out := s.buildResponse(q, res, qerr, k, mode, tier)
	if req.Explain {
		// A non-nil trace only exists when the backend traces; when it
		// cannot (a bare Backend wrapper) the field just stays absent.
		out.Trace = res.Trace
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(out)
}

// slowEntry assembles the slow-query log line for one finished query.
func (s *Server) slowEntry(req queryRequest, res specqp.Result, qerr error, answers, k int, mode specqp.Mode, tier int) slowEntry {
	e := slowEntry{
		Query:   req.Query,
		K:       k,
		Mode:    mode.String(),
		Tier:    tier,
		Answers: answers,
		Trace:   res.Trace,
	}
	if qerr != nil {
		e.Error = qerr.Error()
	}
	return e
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	// Parse the lines first, before admission? No: admission first — a shed
	// batch must cost no more than a shed query. The body read happens under
	// the slot, bounded by MaxBodyBytes and the http.Server read timeouts.
	var reqs []queryRequest
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	peeked := false
	// The token-bucket cost of a batch is its line count, so one client
	// cannot smuggle MaxBatchQueries queries for the price of one request —
	// but counting lines requires reading the body. Read it, then admit with
	// the true cost; nothing here touches the engine.
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var req queryRequest
		if err := json.Unmarshal(line, &req); err != nil {
			errorBody(w, http.StatusBadRequest, "line %d: %v", len(reqs)+1, err)
			return
		}
		reqs = append(reqs, req)
		if len(reqs) > s.cfg.MaxBatchQueries {
			errorBody(w, http.StatusBadRequest, "batch exceeds %d queries", s.cfg.MaxBatchQueries)
			return
		}
		peeked = true
	}
	if err := sc.Err(); err != nil {
		errorBody(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	if !peeked {
		errorBody(w, http.StatusBadRequest, "empty batch")
		return
	}

	release, ok := s.admit(w, r, len(reqs))
	if !ok {
		return
	}
	defer release()
	start := s.cfg.now()

	// The batch shares one k/mode/deadline (Engine.QueryBatch's contract):
	// taken from the first line, clamped and degraded once.
	mode, k, err := s.resolve(reqs[0])
	if err != nil {
		errorBody(w, http.StatusBadRequest, "%v", err)
		return
	}
	mode, k, tier := s.degrade(mode, k)

	queries := make([]specqp.Query, len(reqs))
	parseErrs := make([]error, len(reqs))
	valid := make([]specqp.Query, 0, len(reqs))
	for i, req := range reqs {
		q, perr := s.eng.ParseSPARQL(req.Query)
		if perr != nil {
			parseErrs[i] = perr
			continue
		}
		queries[i] = q
		valid = append(valid, q)
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.deadlineFor(r, reqs[0].DeadlineMS))
	defer cancel()

	s.m.EngineQueries.Add(int64(len(valid)))
	if wantsStream(r, reqs[0]) {
		s.streamBatch(ctx, w, reqs, queries, parseErrs, valid, k, mode, tier, start)
		return
	}
	results, berr := s.eng.QueryBatch(ctx, valid, k, mode)
	elapsed := s.cfg.now().Sub(start)
	s.m.Latency.Observe(elapsed)
	s.gov.noteLatency(elapsed)
	if berr != nil {
		errorBody(w, http.StatusInternalServerError, "batch: %v", berr)
		return
	}

	// Results align positionally with the valid (parsed) queries; lines that
	// failed to parse report their error in place. Every line write is
	// error-checked and flushed: a mid-response write failure stops the body
	// at the last complete line instead of silently truncating under the
	// already-committed 200, and no encode work is spent on a dead pipe.
	w.Header().Set("Content-Type", "application/x-ndjson")
	lw := newLineWriter(w)
	ri := 0
	for i := range reqs {
		var line queryResponse
		switch {
		case parseErrs[i] != nil:
			line = queryResponse{K: k, Mode: mode.String(), Tier: tier, Error: "parse: " + parseErrs[i].Error()}
		default:
			br := results[ri]
			ri++
			line = s.buildResponse(queries[i], br.Result, br.Err, k, mode, tier)
			if br.Err != nil && errors.Is(br.Err, context.DeadlineExceeded) {
				s.m.Expired.Add(1)
			}
		}
		if !lw.writeLine(line) {
			return
		}
	}
}

// mutateRequest is the /insert, /delete and /update body.
type mutateRequest struct {
	S     string  `json:"s"`
	P     string  `json:"p"`
	O     string  `json:"o"`
	Score float64 `json:"score,omitempty"`
}

func (s *Server) handleMutate(w http.ResponseWriter, r *http.Request, op string) {
	// Read-only fast path: a wedged log fails every mutation, so refuse
	// before spending an execution slot. Queries never take this path.
	if s.eng.Wedged() {
		s.m.MutationErrors.Add(1)
		if s.cfg.Replication != nil {
			errorBody(w, http.StatusServiceUnavailable, "read-only: replica; write to the primary")
		} else {
			errorBody(w, http.StatusServiceUnavailable, "read-only: %v", specqp.ErrWedged)
		}
		return
	}
	release, ok := s.admit(w, r, 1)
	if !ok {
		return
	}
	defer release()

	var req mutateRequest
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		errorBody(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.S == "" || req.P == "" || req.O == "" {
		errorBody(w, http.StatusBadRequest, "s, p and o are required")
		return
	}

	s.m.Mutations.Add(1)
	var removed int
	var err error
	switch op {
	case "insert":
		err = s.eng.InsertSPO(req.S, req.P, req.O, req.Score)
	case "delete":
		removed, err = s.eng.DeleteSPO(req.S, req.P, req.O)
	case "update":
		err = s.eng.UpdateSPO(req.S, req.P, req.O, req.Score)
	}
	if err != nil {
		s.m.MutationErrors.Add(1)
		if errors.Is(err, specqp.ErrWedged) {
			errorBody(w, http.StatusServiceUnavailable, "read-only: %v", err)
			return
		}
		errorBody(w, http.StatusInternalServerError, "%s: %v", op, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"ok": true, "removed": removed})
}

// healthz is the /healthz response shape. The replica_* fields appear only on
// followers (Config.Replication set): a replica is Wedged by construction, so
// its steady status is "read-only", and replica_lag_seq is how far its applied
// WAL position trails the newest one the primary reported.
type healthz struct {
	Status            string  `json:"status"` // ok | degraded | read-only | draining
	Tier              int     `json:"tier"`
	Wedged            bool    `json:"wedged"`
	Inflight          int     `json:"inflight"`
	Waiting           int     `json:"waiting"`
	Pressure          float64 `json:"pressure"`
	Replica           bool    `json:"replica,omitempty"`
	ReplicaAppliedSeq *uint64 `json:"replica_applied_seq,omitempty"`
	ReplicaPrimarySeq *uint64 `json:"replica_primary_seq,omitempty"`
	ReplicaLagSeq     *uint64 `json:"replica_lag_seq,omitempty"`
	ReplicaConnected  *bool   `json:"replica_connected,omitempty"`
	// Engine is the engine-internals snapshot (store occupancy, WAL
	// position, pinned snapshots); absent when the backend exposes none.
	Engine *specqp.EngineStats `json:"engine,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := healthz{
		Tier:     s.gov.Tier(),
		Wedged:   s.eng.Wedged(),
		Inflight: len(s.slots),
		Waiting:  int(s.waiting.Load()),
		Pressure: s.gov.Pressure(),
	}
	if rm := s.cfg.Replication; rm != nil {
		applied, primary, lag, connected := rm.AppliedSeq(), rm.PrimarySeq(), rm.Lag(), rm.Connected()
		h.Replica = true
		h.ReplicaAppliedSeq = &applied
		h.ReplicaPrimarySeq = &primary
		h.ReplicaLagSeq = &lag
		h.ReplicaConnected = &connected
	}
	if s.stats != nil {
		es := s.stats.Stats()
		h.Engine = &es
	}
	status := http.StatusOK
	switch {
	case s.draining.Load():
		h.Status = "draining"
		status = http.StatusServiceUnavailable
	case h.Wedged:
		h.Status = "read-only"
	case h.Tier > TierNormal:
		h.Status = "degraded"
	default:
		h.Status = "ok"
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(h)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.m.WriteText(w)
	fmt.Fprintf(w, "specqp_inflight %d\n", len(s.slots))
	fmt.Fprintf(w, "specqp_waiting %d\n", s.waiting.Load())
	fmt.Fprintf(w, "specqp_degrade_tier %d\n", s.gov.Tier())
	fmt.Fprintf(w, "specqp_pressure %g\n", s.gov.Pressure())
	wedged := 0
	if s.eng.Wedged() {
		wedged = 1
	}
	fmt.Fprintf(w, "specqp_wedged %d\n", wedged)
	fmt.Fprintf(w, "specqp_slow_queries_logged_total %d\n", s.slow.Logged())
	if rm := s.cfg.Replication; rm != nil {
		rm.WriteText(w)
	}
	if s.stats != nil {
		writeEngineText(w, s.stats.Stats())
	}
}

// writeEngineText renders the engine-internals gauges and counters in
// Prometheus text exposition format. Store/cache lines always appear; the
// WAL family appears only on durable engines (so a non-durable server's
// exposition carries no dead zero series).
func writeEngineText(w io.Writer, es specqp.EngineStats) {
	fmt.Fprintf(w, "specqp_engine_live_triples %d\n", es.LiveTriples)
	fmt.Fprintf(w, "specqp_engine_head_len %d\n", es.HeadLen)
	fmt.Fprintf(w, "specqp_engine_l1_len %d\n", es.L1Len)
	fmt.Fprintf(w, "specqp_engine_tombstones %d\n", es.Tombstones)
	fmt.Fprintf(w, "specqp_engine_ops_total %d\n", es.Ops)
	fmt.Fprintf(w, "specqp_engine_compactions_total{tier=\"full\"} %d\n", es.CompactionsFull)
	fmt.Fprintf(w, "specqp_engine_compactions_total{tier=\"l1\"} %d\n", es.CompactionsTiered)
	fmt.Fprintf(w, "specqp_engine_compaction_us_total{tier=\"full\"} %d\n", es.CompactionFullNS/1e3)
	fmt.Fprintf(w, "specqp_engine_compaction_us_total{tier=\"l1\"} %d\n", es.CompactionTieredNS/1e3)
	fmt.Fprintf(w, "specqp_engine_pinned_snapshots_total %d\n", es.PinnedSnapshots)
	fmt.Fprintf(w, "specqp_engine_plan_cache_hits_total %d\n", es.PlanCacheHits)
	fmt.Fprintf(w, "specqp_engine_plan_cache_misses_total %d\n", es.PlanCacheMisses)
	fmt.Fprintf(w, "specqp_engine_list_cache_hits_total %d\n", es.ListCacheHits)
	fmt.Fprintf(w, "specqp_engine_list_cache_misses_total %d\n", es.ListCacheMisses)
	if !es.Durable {
		return
	}
	fmt.Fprintf(w, "specqp_engine_wal_last_seq %d\n", es.WALLastSeq)
	fmt.Fprintf(w, "specqp_engine_wal_size_bytes %d\n", es.WALSize)
	fmt.Fprintf(w, "specqp_engine_wal_segments %d\n", es.WALSegments)
	fmt.Fprintf(w, "specqp_engine_wal_commits_total %d\n", es.WALCommits)
	fmt.Fprintf(w, "specqp_engine_wal_commit_records_total %d\n", es.WALCommitRecords)
	fmt.Fprintf(w, "specqp_engine_wal_fsyncs_total %d\n", es.WALFsyncs)
	fmt.Fprintf(w, "specqp_engine_wal_fsync_us_total %d\n", es.WALFsyncNS/1e3)
	fmt.Fprintf(w, "specqp_engine_wal_last_fsync_us %d\n", es.WALLastFsyncNS/1e3)
	fmt.Fprintf(w, "specqp_engine_checkpoints_total %d\n", es.Checkpoints)
	fmt.Fprintf(w, "specqp_engine_checkpoint_us_total %d\n", es.CheckpointNS/1e3)
	fmt.Fprintf(w, "specqp_engine_last_checkpoint_bytes %d\n", es.LastCheckpointBytes)
}

// Drain performs the graceful-shutdown sequence: stop admitting (new
// requests get a fast 503), wait for every in-flight request to finish (or
// ctx to expire), then persist a final Sync + Checkpoint so the WAL tail is
// durable and truncated before the process exits. Safe to call once;
// subsequent calls wait again but skip the flush if the first call ran it.
func (s *Server) Drain(ctx context.Context) error {
	s.reqMu.Lock()
	first := !s.draining.Swap(true)
	s.reqMu.Unlock()

	done := make(chan struct{})
	go func() {
		s.reqWG.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return fmt.Errorf("server: drain: %w", ctx.Err())
	}
	if !first {
		return nil
	}
	if err := s.eng.Sync(); err != nil && !errors.Is(err, specqp.ErrWedged) {
		return fmt.Errorf("server: drain sync: %w", err)
	}
	if err := s.eng.Checkpoint(); err != nil && !errors.Is(err, specqp.ErrWedged) {
		return fmt.Errorf("server: drain checkpoint: %w", err)
	}
	return nil
}

// Draining reports whether Drain has started.
func (s *Server) Draining() bool { return s.draining.Load() }
