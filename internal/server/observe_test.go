package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"specqp"
)

// slowBackend wraps the fixture engine and advances the fake clock by a fixed
// delay inside every query call, so the server's elapsed measurement — taken
// on the injected clock — sees a deterministic latency without real sleeping.
type slowBackend struct {
	*specqp.Engine
	clock *fakeClock
	delay time.Duration
}

func (b *slowBackend) QueryContext(ctx context.Context, q specqp.Query, k int, mode specqp.Mode) (specqp.Result, error) {
	b.clock.Advance(b.delay)
	return b.Engine.QueryContext(ctx, q, k, mode)
}

func (b *slowBackend) QueryTraced(ctx context.Context, q specqp.Query, k int, mode specqp.Mode) (specqp.Result, error) {
	b.clock.Advance(b.delay)
	return b.Engine.QueryTraced(ctx, q, k, mode)
}

// TestExplainEndpoint checks the `"explain": true` contract: the response
// gains a trace object carrying the planner decisions and the operator tree,
// the answers are unchanged, and requests without the flag stay trace-free.
func TestExplainEndpoint(t *testing.T) {
	srv := New(Config{Backend: testEngine(t)})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	status, plain := postJSON(t, ts.URL+"/query", map[string]any{
		"query": fixtureSPARQL, "k": 3, "mode": "spec-qp",
	})
	if status != http.StatusOK {
		t.Fatalf("plain query: %d", status)
	}
	if _, ok := plain["trace"]; ok {
		t.Fatal("trace present without explain")
	}

	status, out := postJSON(t, ts.URL+"/query", map[string]any{
		"query": fixtureSPARQL, "k": 3, "mode": "spec-qp", "explain": true,
	})
	if status != http.StatusOK {
		t.Fatalf("explain query: %d", status)
	}
	if len(out["answers"].([]any)) != len(plain["answers"].([]any)) {
		t.Fatal("explain changed the answers")
	}
	tr, ok := out["trace"].(map[string]any)
	if !ok {
		t.Fatalf("no trace in explain response: %v", out)
	}
	if tr["mode"] != "spec-qp" {
		t.Fatalf("trace mode: %v", tr["mode"])
	}
	if tr["shape_key"] == "" || tr["shape_key"] == nil {
		t.Fatal("trace shape key missing")
	}
	root, ok := tr["root"].(map[string]any)
	if !ok {
		t.Fatalf("trace has no operator tree: %v", tr)
	}
	if op, _ := root["op"].(string); op == "" {
		t.Fatalf("root op missing: %v", root)
	}
	// The executed tree recorded real work somewhere.
	var worked func(n map[string]any) bool
	worked = func(n map[string]any) bool {
		if p, _ := n["pulls"].(float64); p > 0 {
			return true
		}
		if kids, _ := n["children"].([]any); kids != nil {
			for _, c := range kids {
				if worked(c.(map[string]any)) {
					return true
				}
			}
		}
		return false
	}
	if !worked(root) {
		t.Fatalf("trace tree recorded no pulls: %v", root)
	}

	// Explain forces the buffered shape even when streaming is requested: the
	// body is one JSON object, not NDJSON lines.
	status, streamed := postJSON(t, ts.URL+"/query", map[string]any{
		"query": fixtureSPARQL, "k": 3, "stream": true, "explain": true,
	})
	if status != http.StatusOK {
		t.Fatalf("explain+stream: %d", status)
	}
	if _, ok := streamed["trace"].(map[string]any); !ok {
		t.Fatalf("explain+stream lost the trace: %v", streamed)
	}
}

// TestSlowQueryLog drives the sampled slow-query log on an injected clock: a
// slow query is logged with its trace, a second crossing inside the sampling
// interval is suppressed (counted, not written), and the next token logs the
// suppression count.
func TestSlowQueryLog(t *testing.T) {
	clock := newFakeClock()
	var buf bytes.Buffer
	srv := New(Config{
		Backend:            &slowBackend{Engine: testEngine(t), clock: clock, delay: 50 * time.Millisecond},
		SlowQueryThreshold: 10 * time.Millisecond,
		SlowQueryInterval:  time.Second,
		SlowQueryLog:       &buf,
		now:                clock.Now,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	query := func() {
		status, _ := postJSON(t, ts.URL+"/query", map[string]any{
			"query": fixtureSPARQL, "k": 3, "mode": "spec-qp",
		})
		if status != http.StatusOK {
			t.Fatalf("query status %d", status)
		}
	}

	query() // armed: logged with trace
	query() // token cooling down: crossing suppressed
	if got := srv.SlowQueriesLogged(); got != 1 {
		t.Fatalf("logged after burst: %d, want 1 (rate limit)", got)
	}
	clock.Advance(2 * time.Second)
	query() // fresh token: logged, reports the suppressed crossing
	if got := srv.SlowQueriesLogged(); got != 2 {
		t.Fatalf("logged after cooldown: %d, want 2", got)
	}

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("log lines: %d\n%s", len(lines), buf.String())
	}
	var first, second struct {
		TS         string          `json:"ts"`
		ElapsedUS  int64           `json:"elapsed_us"`
		Query      string          `json:"query"`
		Mode       string          `json:"mode"`
		Answers    int             `json:"answers"`
		Suppressed int64           `json:"suppressed"`
		Trace      json.RawMessage `json:"trace"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line 1: %v\n%s", err, lines[0])
	}
	if err := json.Unmarshal([]byte(lines[1]), &second); err != nil {
		t.Fatalf("line 2: %v\n%s", err, lines[1])
	}
	if first.Query != fixtureSPARQL || first.Mode != "spec-qp" || first.Answers == 0 {
		t.Fatalf("line 1 content: %+v", first)
	}
	if first.ElapsedUS != 50_000 {
		t.Fatalf("line 1 elapsed: %dus, want 50000 (injected clock)", first.ElapsedUS)
	}
	if first.Suppressed != 0 {
		t.Fatalf("line 1 suppressed: %d", first.Suppressed)
	}
	if len(first.Trace) == 0 || string(first.Trace) == "null" {
		t.Fatal("line 1 carries no trace despite the armed traced run")
	}
	var tr struct {
		Mode string          `json:"mode"`
		Root json.RawMessage `json:"root"`
	}
	if err := json.Unmarshal(first.Trace, &tr); err != nil || tr.Mode != "spec-qp" || len(tr.Root) == 0 {
		t.Fatalf("line 1 trace: err=%v %s", err, first.Trace)
	}
	if second.Suppressed != 1 {
		t.Fatalf("line 2 suppressed: %d, want 1", second.Suppressed)
	}
	if first.TS == "" || second.TS <= first.TS {
		t.Fatalf("timestamps not increasing: %q then %q", first.TS, second.TS)
	}
}

// TestLatencyFedDegradation proves the latency feed reaches the governor:
// slow completions alone — no shed ever happens — escalate the tier, and a
// quiet period recovers it. Driven entirely on the injected clock.
func TestLatencyFedDegradation(t *testing.T) {
	clock := newFakeClock()
	srv := New(Config{
		Backend:           &slowBackend{Engine: testEngine(t), clock: clock, delay: 50 * time.Millisecond},
		DegradeThreshold:  2,
		DegradeLeakPerSec: 1,
		DegradeLatency:    10 * time.Millisecond,
		now:               clock.Now,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	query := func() map[string]any {
		status, out := postJSON(t, ts.URL+"/query", map[string]any{
			"query": fixtureSPARQL, "k": 3, "mode": "spec-qp",
		})
		if status != http.StatusOK {
			t.Fatalf("query status %d", status)
		}
		return out
	}

	if out := query(); out["tier"].(float64) != 0 {
		t.Fatalf("first query already degraded: %v", out["tier"])
	}
	query()
	query() // third breach clears the threshold even net of leak decay
	if srv.Tier() != TierExact {
		t.Fatalf("tier after three slow queries: %d, want %d", srv.Tier(), TierExact)
	}
	if out := query(); out["mode"] != "exact" || out["tier"].(float64) != 1 {
		t.Fatalf("degraded query: mode=%v tier=%v", out["mode"], out["tier"])
	}
	if srv.Metrics().ShedQueue.Load() != 0 || srv.Metrics().ShedRate.Load() != 0 {
		t.Fatal("degradation was shed-driven, not latency-driven")
	}
	clock.Advance(time.Minute)
	if srv.Tier() != TierNormal {
		t.Fatalf("tier after quiet minute: %d", srv.Tier())
	}

	// Unit-level: fast completions never pressure the bucket, and a zero
	// threshold disables the feed entirely.
	g := newGovernor(2, 1, 10*time.Millisecond, clock.Now)
	g.noteLatency(5 * time.Millisecond)
	if g.Pressure() != 0 {
		t.Fatalf("fast completion pressured the governor: %v", g.Pressure())
	}
	off := newGovernor(2, 1, 0, clock.Now)
	off.noteLatency(time.Hour)
	if off.Pressure() != 0 {
		t.Fatalf("disabled latency feed pressured the governor: %v", off.Pressure())
	}
}

// TestHealthzEngineStats checks /healthz carries the engine-internals block:
// store occupancy, cache accounting, durability flag.
func TestHealthzEngineStats(t *testing.T) {
	srv := New(Config{Backend: testEngine(t)})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	eng, ok := h["engine"].(map[string]any)
	if !ok {
		t.Fatalf("healthz has no engine block: %v", h)
	}
	if eng["live_triples"].(float64) != 9 {
		t.Fatalf("live triples: %v", eng["live_triples"])
	}
	if eng["durable"].(bool) {
		t.Fatal("flat engine reported durable")
	}
	for _, key := range []string{"head_len", "l1_len", "tombstones", "plan_cache_hits", "plan_cache_misses"} {
		if _, ok := eng[key]; !ok {
			t.Fatalf("engine block missing %q: %v", key, eng)
		}
	}
}

// metricLine matches one Prometheus text-format sample: name, optional
// well-formed label set, and a float value.
var metricLine = regexp.MustCompile(
	`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*")*\})? (-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?|[+-]Inf|NaN)$`)

// TestMetricsExpositionConformance scrapes /metrics after real traffic and
// validates every line against the text-format grammar, then checks the
// histogram families hold the invariants a Prometheus ingester relies on:
// buckets cumulative and monotone, the +Inf bucket equal to _count, _sum
// present. This is the regression test for the malformed histogram exposition
// (summary gauges with no bucket family).
func TestMetricsExpositionConformance(t *testing.T) {
	srv := New(Config{Backend: testEngine(t)})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for i := 0; i < 3; i++ {
		if status, _ := postJSON(t, ts.URL+"/query", map[string]any{
			"query": fixtureSPARQL, "k": 3,
		}); status != http.StatusOK {
			t.Fatalf("traffic query: %d", status)
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type: %q", ct)
	}

	type histo struct {
		buckets []int64 // in exposition order
		inf     int64
		hasInf  bool
		hasSum  bool
		count   int64
	}
	histos := map[string]*histo{}
	seen := map[string]bool{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if !strings.HasPrefix(line, "# TYPE ") && !strings.HasPrefix(line, "# HELP ") {
				t.Fatalf("malformed comment: %q", line)
			}
			continue
		}
		m := metricLine.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("malformed sample line: %q", line)
		}
		name, labels, value := m[1], m[2], m[4]
		seen[name] = true
		switch {
		case strings.HasSuffix(name, "_bucket"):
			fam := strings.TrimSuffix(name, "_bucket")
			h := histos[fam]
			if h == nil {
				h = &histo{}
				histos[fam] = h
			}
			le := strings.TrimSuffix(strings.TrimPrefix(labels, `{le="`), `"}`)
			v, err := strconv.ParseInt(value, 10, 64)
			if err != nil {
				t.Fatalf("bucket value %q: %v", line, err)
			}
			if le == "+Inf" {
				h.inf, h.hasInf = v, true
			} else {
				if _, err := strconv.ParseInt(le, 10, 64); err != nil {
					t.Fatalf("non-numeric le %q in %q", le, line)
				}
				h.buckets = append(h.buckets, v)
			}
		case strings.HasSuffix(name, "_us_sum"):
			if h := histos[strings.TrimSuffix(name, "_sum")]; h != nil {
				h.hasSum = true
			}
		case strings.HasSuffix(name, "_us_count"):
			if h := histos[strings.TrimSuffix(name, "_count")]; h != nil {
				h.count, _ = strconv.ParseInt(value, 10, 64)
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	for _, want := range []string{
		"specqp_requests_total", "specqp_accepted_total", "specqp_engine_queries_total",
		"specqp_slow_queries_logged_total",
		"specqp_engine_live_triples", "specqp_engine_head_len",
		"specqp_engine_compactions_total", "specqp_engine_pinned_snapshots_total",
		"specqp_engine_plan_cache_hits_total", "specqp_engine_list_cache_hits_total",
		"specqp_query_latency_us_bucket", "specqp_first_answer_latency_us_bucket",
	} {
		if !seen[want] {
			t.Fatalf("exposition missing %s", want)
		}
	}

	if len(histos) == 0 {
		t.Fatal("no histogram families found")
	}
	for fam, h := range histos {
		if !h.hasInf || !h.hasSum {
			t.Fatalf("%s: inf=%v sum=%v", fam, h.hasInf, h.hasSum)
		}
		for i := 1; i < len(h.buckets); i++ {
			if h.buckets[i] < h.buckets[i-1] {
				t.Fatalf("%s bucket %d not cumulative: %v", fam, i, h.buckets)
			}
		}
		if n := len(h.buckets); n > 0 && h.inf < h.buckets[n-1] {
			t.Fatalf("%s +Inf %d undercuts last finite bucket %d", fam, h.inf, h.buckets[n-1])
		}
		if h.count != h.inf {
			t.Fatalf("%s _count %d != +Inf bucket %d", fam, h.count, h.inf)
		}
	}
	lat := histos["specqp_query_latency_us"]
	if lat == nil || lat.inf < 3 {
		t.Fatalf("query latency histogram did not see the traffic: %+v", lat)
	}
}
