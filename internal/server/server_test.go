package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"specqp"
)

// testEngine builds the quickstart musicians KG with two relaxation rules —
// the same fixture the library tests use, reached through the public API.
func testEngine(t testing.TB) *specqp.Engine {
	t.Helper()
	st := specqp.NewStore()
	triples := []struct {
		s, o  string
		score float64
	}{
		{"shakira", "singer", 100}, {"beyonce", "singer", 90}, {"miley", "singer", 50},
		{"prince", "vocalist", 95}, {"elton", "vocalist", 85},
		{"shakira", "guitarist", 40}, {"prince", "guitarist", 99},
		{"miley", "musician", 45}, {"beyonce", "musician", 70},
	}
	for _, tr := range triples {
		if err := st.AddSPO(tr.s, "rdf:type", tr.o, tr.score); err != nil {
			t.Fatal(err)
		}
	}
	st.Freeze()
	d := st.Dict()
	ty, _ := d.Lookup("rdf:type")
	pat := func(o string) specqp.Pattern {
		id, ok := d.Lookup(o)
		if !ok {
			t.Fatalf("missing term %q", o)
		}
		return specqp.NewPattern(specqp.Var("s"), specqp.Const(ty), specqp.Const(id))
	}
	rules := specqp.NewRuleSet()
	if err := rules.Add(specqp.Rule{From: pat("singer"), To: pat("vocalist"), Weight: 0.8}); err != nil {
		t.Fatal(err)
	}
	if err := rules.Add(specqp.Rule{From: pat("guitarist"), To: pat("musician"), Weight: 0.7}); err != nil {
		t.Fatal(err)
	}
	return specqp.NewEngine(st, rules)
}

const fixtureSPARQL = `SELECT ?s WHERE { ?s 'rdf:type' <singer> . ?s 'rdf:type' <guitarist> }`

// gateBackend wraps a Backend, counting engine touches and optionally parking
// every query on a gate channel. It is how the harness proves shed requests
// never reach the engine, holds requests in flight deterministically, and
// simulates a wedged log without real I/O faults.
type gateBackend struct {
	Backend
	queryCalls  atomic.Int64
	mutCalls    atomic.Int64
	syncs       atomic.Int64
	checkpoints atomic.Int64
	wedged      atomic.Bool
	gate        chan struct{} // non-nil: QueryContext parks until close or ctx
}

func (g *gateBackend) QueryContext(ctx context.Context, q specqp.Query, k int, mode specqp.Mode) (specqp.Result, error) {
	g.queryCalls.Add(1)
	if g.gate != nil {
		select {
		case <-g.gate:
		case <-ctx.Done():
			return specqp.Result{}, ctx.Err()
		}
	}
	return g.Backend.QueryContext(ctx, q, k, mode)
}

func (g *gateBackend) QueryBatch(ctx context.Context, qs []specqp.Query, k int, mode specqp.Mode) ([]specqp.BatchResult, error) {
	g.queryCalls.Add(int64(len(qs)))
	return g.Backend.QueryBatch(ctx, qs, k, mode)
}

func (g *gateBackend) InsertSPO(s, p, o string, score float64) error {
	g.mutCalls.Add(1)
	return g.Backend.InsertSPO(s, p, o, score)
}

func (g *gateBackend) DeleteSPO(s, p, o string) (int, error) {
	g.mutCalls.Add(1)
	return g.Backend.DeleteSPO(s, p, o)
}

func (g *gateBackend) UpdateSPO(s, p, o string, score float64) error {
	g.mutCalls.Add(1)
	return g.Backend.UpdateSPO(s, p, o, score)
}

func (g *gateBackend) Sync() error {
	g.syncs.Add(1)
	return g.Backend.Sync()
}

func (g *gateBackend) Checkpoint() error {
	g.checkpoints.Add(1)
	return g.Backend.Checkpoint()
}

func (g *gateBackend) Wedged() bool { return g.wedged.Load() || g.Backend.Wedged() }

// postJSON posts a JSON body and returns status plus decoded response map.
func postJSON(t testing.TB, url string, body any) (int, map[string]any) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	raw, _ := io.ReadAll(resp.Body)
	if len(raw) > 0 {
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatalf("decode %q: %v", raw, err)
		}
	}
	return resp.StatusCode, out
}

func TestQueryEndpointMatchesEngine(t *testing.T) {
	eng := testEngine(t)
	srv := New(Config{Backend: eng})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	q, err := eng.ParseSPARQL(fixtureSPARQL)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := eng.Query(q, 3, specqp.ModeTriniT)
	if err != nil {
		t.Fatal(err)
	}

	status, out := postJSON(t, ts.URL+"/query", map[string]any{
		"query": fixtureSPARQL, "k": 3, "mode": "trinit",
	})
	if status != http.StatusOK {
		t.Fatalf("status %d: %v", status, out)
	}
	answers := out["answers"].([]any)
	if len(answers) != len(oracle.Answers) {
		t.Fatalf("answers: got %d want %d", len(answers), len(oracle.Answers))
	}
	for i, a := range answers {
		m := a.(map[string]any)
		want := oracle.Answers[i]
		if got := m["score"].(float64); got != want.Score {
			t.Fatalf("rank %d score %v want %v", i, got, want.Score)
		}
		binding := m["binding"].(map[string]any)
		if binding["s"] != eng.DecodeAnswer(q, want)["s"] {
			t.Fatalf("rank %d binding %v", i, binding)
		}
	}
	if out["tier"].(float64) != 0 || out["mode"] != "trinit" {
		t.Fatalf("tier/mode: %v / %v", out["tier"], out["mode"])
	}
}

func TestQueryBadRequests(t *testing.T) {
	srv := New(Config{Backend: testEngine(t)})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for name, body := range map[string]string{
		"malformed json": `{`,
		"bad sparql":     `{"query":"garbage"}`,
		"bad mode":       fmt.Sprintf(`{"query":%q,"mode":"warp-speed"}`, fixtureSPARQL),
	} {
		resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d want 400", name, resp.StatusCode)
		}
	}
	if got := srv.Metrics().EngineQueries.Load(); got != 0 {
		t.Fatalf("bad requests reached the engine: %d", got)
	}
}

func TestBatchEndpoint(t *testing.T) {
	eng := testEngine(t)
	srv := New(Config{Backend: eng})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	q, err := eng.ParseSPARQL(fixtureSPARQL)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := eng.Query(q, 2, specqp.ModeNaive)
	if err != nil {
		t.Fatal(err)
	}

	lines := fmt.Sprintf("{\"query\":%q,\"k\":2,\"mode\":\"naive\"}\n{\"query\":\"garbage\"}\n{\"query\":%q}\n",
		fixtureSPARQL, fixtureSPARQL)
	resp, err := http.Post(ts.URL+"/batch", "application/x-ndjson", strings.NewReader(lines))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	raw, _ := io.ReadAll(resp.Body)
	outLines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(outLines) != 3 {
		t.Fatalf("lines: %d (%q)", len(outLines), raw)
	}
	var first, second, third map[string]any
	for i, dst := range []*map[string]any{&first, &second, &third} {
		if err := json.Unmarshal([]byte(outLines[i]), dst); err != nil {
			t.Fatal(err)
		}
	}
	if n := len(first["answers"].([]any)); n != len(oracle.Answers) {
		t.Fatalf("line 1 answers: %d want %d", n, len(oracle.Answers))
	}
	if errStr, _ := second["error"].(string); !strings.Contains(errStr, "parse") {
		t.Fatalf("line 2 should be a parse error: %v", second)
	}
	if n := len(third["answers"].([]any)); n != len(oracle.Answers) {
		t.Fatalf("line 3 answers: %d want %d", n, len(oracle.Answers))
	}
}

func TestBatchRejectsEmptyAndOversized(t *testing.T) {
	srv := New(Config{Backend: testEngine(t), MaxBatchQueries: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/batch", "application/x-ndjson", strings.NewReader("\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d", resp.StatusCode)
	}

	line := fmt.Sprintf("{\"query\":%q}\n", fixtureSPARQL)
	resp, err = http.Post(ts.URL+"/batch", "application/x-ndjson", strings.NewReader(strings.Repeat(line, 3)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized batch: status %d", resp.StatusCode)
	}
	if got := srv.Metrics().EngineQueries.Load(); got != 0 {
		t.Fatalf("rejected batches reached the engine: %d", got)
	}
}

func TestMutationEndpoints(t *testing.T) {
	eng := testEngine(t)
	srv := New(Config{Backend: eng})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	status, out := postJSON(t, ts.URL+"/insert", map[string]any{
		"s": "bowie", "p": "rdf:type", "o": "singer", "score": 97.0,
	})
	if status != http.StatusOK || out["ok"] != true {
		t.Fatalf("insert: %d %v", status, out)
	}
	status, out = postJSON(t, ts.URL+"/update", map[string]any{
		"s": "bowie", "p": "rdf:type", "o": "singer", "score": 98.0,
	})
	if status != http.StatusOK || out["ok"] != true {
		t.Fatalf("update: %d %v", status, out)
	}
	status, out = postJSON(t, ts.URL+"/delete", map[string]any{
		"s": "bowie", "p": "rdf:type", "o": "singer",
	})
	if status != http.StatusOK || out["removed"].(float64) != 1 {
		t.Fatalf("delete: %d %v", status, out)
	}
	status, _ = postJSON(t, ts.URL+"/insert", map[string]any{"s": "x", "p": "", "o": "y"})
	if status != http.StatusBadRequest {
		t.Fatalf("missing field accepted: %d", status)
	}
	if got := srv.Metrics().Mutations.Load(); got != 3 {
		t.Fatalf("mutations counted: %d want 3", got)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	srv := New(Config{Backend: testEngine(t)})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if _, out := postJSON(t, ts.URL+"/query", map[string]any{"query": fixtureSPARQL, "k": 1}); out["error"] != nil {
		t.Fatalf("query: %v", out["error"])
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h healthz
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || h.Status != "ok" || h.Wedged || h.Tier != 0 {
		t.Fatalf("healthz: %d %+v", resp.StatusCode, h)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(raw)
	for _, want := range []string{
		"specqp_requests_total", "specqp_accepted_total", "specqp_shed_queue_total",
		"specqp_query_latency_p99_us", "specqp_degrade_tier 0", "specqp_wedged 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if !strings.Contains(text, "specqp_engine_queries_total 1") {
		t.Errorf("engine query not counted:\n%s", text)
	}
}

func TestDeadlineResolution(t *testing.T) {
	srv := New(Config{Backend: testEngine(t), DefaultDeadline: 2 * time.Second, MaxDeadline: 5 * time.Second})
	req := httptest.NewRequest("POST", "/query", nil)

	if d := srv.deadlineFor(req, 0); d != 2*time.Second {
		t.Fatalf("default: %v", d)
	}
	if d := srv.deadlineFor(req, 250); d != 250*time.Millisecond {
		t.Fatalf("body: %v", d)
	}
	req.Header.Set("X-Deadline-Ms", "400")
	if d := srv.deadlineFor(req, 250); d != 400*time.Millisecond {
		t.Fatalf("header should win: %v", d)
	}
	req.Header.Set("X-Deadline-Ms", "999999999")
	if d := srv.deadlineFor(req, 0); d != 5*time.Second {
		t.Fatalf("clamp: %v", d)
	}
}
