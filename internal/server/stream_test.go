package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// readNDJSON decodes a response body into one map per line.
func readNDJSON(t *testing.T, body []byte) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(string(body)), "\n") {
		if line == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		out = append(out, m)
	}
	return out
}

// postRaw posts body and returns status, headers and raw response bytes.
func postRaw(t *testing.T, url, body string, hdr map[string]string) (int, http.Header, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, resp.Header, raw
}

// TestStreamQueryMatchesBuffered: a streamed /query ("stream":true or the
// Accept header) delivers exactly the buffered response's answers — same
// order, same scores, same bindings — as individual lines plus a trailer
// carrying what the buffered envelope carried.
func TestStreamQueryMatchesBuffered(t *testing.T) {
	eng := testEngine(t)
	srv := New(Config{Backend: eng})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	status, buffered := postJSON(t, ts.URL+"/query", map[string]any{
		"query": fixtureSPARQL, "k": 3, "mode": "trinit",
	})
	if status != http.StatusOK {
		t.Fatalf("buffered status %d", status)
	}
	want := buffered["answers"].([]any)
	if len(want) == 0 {
		t.Fatal("fixture query returned no answers")
	}

	for name, variant := range map[string]struct {
		body string
		hdr  map[string]string
	}{
		"body flag":     {body: fmt.Sprintf(`{"query":%q,"k":3,"mode":"trinit","stream":true}`, fixtureSPARQL)},
		"accept header": {body: fmt.Sprintf(`{"query":%q,"k":3,"mode":"trinit"}`, fixtureSPARQL), hdr: map[string]string{"Accept": "application/x-ndjson"}},
	} {
		status, hdr, raw := postRaw(t, ts.URL+"/query", variant.body, variant.hdr)
		if status != http.StatusOK {
			t.Fatalf("%s: status %d (%s)", name, status, raw)
		}
		if ct := hdr.Get("Content-Type"); ct != "application/x-ndjson" {
			t.Fatalf("%s: content type %q", name, ct)
		}
		lines := readNDJSON(t, raw)
		if len(lines) != len(want)+1 {
			t.Fatalf("%s: %d lines, want %d answers + trailer", name, len(lines), len(want))
		}
		for i, w := range want {
			wm := w.(map[string]any)
			ans, ok := lines[i]["answer"].(map[string]any)
			if !ok {
				t.Fatalf("%s: line %d is not an answer line: %v", name, i, lines[i])
			}
			if lines[i]["index"].(float64) != 0 {
				t.Fatalf("%s: line %d index %v", name, i, lines[i]["index"])
			}
			if ans["score"] != wm["score"] {
				t.Fatalf("%s: rank %d score %v, buffered %v", name, i, ans["score"], wm["score"])
			}
			gb, wb := ans["binding"].(map[string]any), wm["binding"].(map[string]any)
			if gb["s"] != wb["s"] {
				t.Fatalf("%s: rank %d binding %v, buffered %v", name, i, gb, wb)
			}
		}
		trailer, ok := lines[len(lines)-1]["trailer"].(map[string]any)
		if !ok {
			t.Fatalf("%s: last line is not a trailer: %v", name, lines[len(lines)-1])
		}
		if int(trailer["answers"].(float64)) != len(want) {
			t.Fatalf("%s: trailer answers %v, want %d", name, trailer["answers"], len(want))
		}
		if trailer["mode"] != "trinit" || trailer["error"] != nil {
			t.Fatalf("%s: trailer %v", name, trailer)
		}
	}

	if got := srv.Metrics().FirstAnswer.Count(); got != 2 {
		t.Fatalf("FirstAnswer observations: %d, want 2 (one per streamed query)", got)
	}
	if got := srv.Metrics().StreamedAnswers.Load(); got != int64(2*len(want)) {
		t.Fatalf("streamed answers counter: %d, want %d", got, 2*len(want))
	}
	_, _, metricsRaw := getRaw(t, ts.URL+"/metrics")
	for _, needle := range []string{"specqp_first_answer_latency_count 2", "specqp_first_answer_latency_p50_us", "specqp_streamed_answers_total"} {
		if !strings.Contains(string(metricsRaw), needle) {
			t.Fatalf("/metrics missing %q:\n%s", needle, metricsRaw)
		}
	}
}

func getRaw(t *testing.T, url string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, resp.Header, raw
}

// TestStreamBatchDemux: a streamed /batch interleaves answer lines across
// queries; demultiplexing by index reconstructs each query's buffered
// answers, parse errors surface as in-place trailers, and every input line
// gets exactly one trailer.
func TestStreamBatchDemux(t *testing.T) {
	eng := testEngine(t)
	srv := New(Config{Backend: eng})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	_, buffered := postJSON(t, ts.URL+"/query", map[string]any{
		"query": fixtureSPARQL, "k": 2, "mode": "naive",
	})
	want := buffered["answers"].([]any)

	lines := fmt.Sprintf("{\"query\":%q,\"k\":2,\"mode\":\"naive\",\"stream\":true}\n{\"query\":\"garbage\"}\n{\"query\":%q}\n",
		fixtureSPARQL, fixtureSPARQL)
	status, _, raw := postRaw(t, ts.URL+"/batch", lines, map[string]string{"Content-Type": "application/x-ndjson"})
	if status != http.StatusOK {
		t.Fatalf("status %d (%s)", status, raw)
	}
	out := readNDJSON(t, raw)

	answers := map[int][]map[string]any{}
	trailers := map[int]map[string]any{}
	for _, m := range out {
		idx := int(m["index"].(float64))
		switch {
		case m["answer"] != nil:
			answers[idx] = append(answers[idx], m["answer"].(map[string]any))
		case m["trailer"] != nil:
			if _, dup := trailers[idx]; dup {
				t.Fatalf("line %d got two trailers", idx)
			}
			trailers[idx] = m["trailer"].(map[string]any)
		default:
			t.Fatalf("unrecognized line %v", m)
		}
	}
	for i := 0; i < 3; i++ {
		if trailers[i] == nil {
			t.Fatalf("no trailer for input line %d", i)
		}
	}
	if errStr, _ := trailers[1]["error"].(string); !strings.Contains(errStr, "parse") {
		t.Fatalf("line 1 trailer should carry parse error: %v", trailers[1])
	}
	if len(answers[1]) != 0 {
		t.Fatalf("parse-error line streamed %d answers", len(answers[1]))
	}
	for _, idx := range []int{0, 2} {
		if len(answers[idx]) != len(want) {
			t.Fatalf("query %d: %d streamed answers, buffered %d", idx, len(answers[idx]), len(want))
		}
		for i, w := range want {
			wm := w.(map[string]any)
			if answers[idx][i]["score"] != wm["score"] {
				t.Fatalf("query %d rank %d score %v, buffered %v", idx, i, answers[idx][i]["score"], wm["score"])
			}
		}
		if int(trailers[idx]["answers"].(float64)) != len(want) {
			t.Fatalf("query %d trailer answers %v", idx, trailers[idx]["answers"])
		}
	}
}

// flushRecorder counts Flush calls on top of a ResponseRecorder.
type flushRecorder struct {
	*httptest.ResponseRecorder
	flushes int
}

func (f *flushRecorder) Flush() {
	f.flushes++
	f.ResponseRecorder.Flush()
}

// TestStreamFlushesPerLine: every streamed line is followed by a Flush, so
// answers leave the process the moment they are proven, not when the
// response buffer happens to fill.
func TestStreamFlushesPerLine(t *testing.T) {
	srv := New(Config{Backend: testEngine(t)})
	body := fmt.Sprintf(`{"query":%q,"k":3,"mode":"trinit","stream":true}`, fixtureSPARQL)
	req := httptest.NewRequest(http.MethodPost, "/query", strings.NewReader(body))
	rec := &flushRecorder{ResponseRecorder: httptest.NewRecorder()}
	srv.Handler().ServeHTTP(rec, req)

	lines := readNDJSON(t, rec.Body.Bytes())
	if len(lines) < 2 {
		t.Fatalf("expected answers + trailer, got %d lines", len(lines))
	}
	if rec.flushes < len(lines) {
		t.Fatalf("%d flushes for %d lines — streaming is buffering", rec.flushes, len(lines))
	}
}

// failWriter is a ResponseWriter whose Write fails after `allow` successful
// calls, simulating a client that disconnected mid-response.
type failWriter struct {
	hdr    http.Header
	allow  int
	writes int
}

func (f *failWriter) Header() http.Header {
	if f.hdr == nil {
		f.hdr = http.Header{}
	}
	return f.hdr
}
func (f *failWriter) WriteHeader(int) {}
func (f *failWriter) Write(p []byte) (int, error) {
	f.writes++
	if f.writes > f.allow {
		return 0, errors.New("broken pipe")
	}
	return len(p), nil
}

// TestBatchStopsOnFirstWriteFailure is the NDJSON truncation regression: the
// buffered /batch loop used to ignore enc.Encode errors, so a dead
// connection silently dropped response lines while the handler kept encoding
// into the void. Now the first failed write stops the loop: exactly one
// failing attempt, no further encode work.
func TestBatchStopsOnFirstWriteFailure(t *testing.T) {
	srv := New(Config{Backend: testEngine(t)})
	lines := strings.Repeat(fmt.Sprintf("{\"query\":%q,\"k\":2,\"mode\":\"trinit\"}\n", fixtureSPARQL), 3)
	req := httptest.NewRequest(http.MethodPost, "/batch", strings.NewReader(lines))
	fw := &failWriter{allow: 1}
	srv.Handler().ServeHTTP(fw, req)
	if fw.writes != 2 {
		t.Fatalf("write attempts: %d, want 2 (one success, one failure, then stop)", fw.writes)
	}
}

// TestStreamStopsOnFirstWriteFailure: same property on the streaming path —
// a failed answer write makes the emitter return false, which stops the
// engine's drain instead of computing answers for a client that left.
func TestStreamStopsOnFirstWriteFailure(t *testing.T) {
	srv := New(Config{Backend: testEngine(t)})
	body := fmt.Sprintf(`{"query":%q,"k":3,"mode":"trinit","stream":true}`, fixtureSPARQL)
	req := httptest.NewRequest(http.MethodPost, "/query", strings.NewReader(body))
	fw := &failWriter{allow: 1}
	srv.Handler().ServeHTTP(fw, req)
	if fw.writes != 2 {
		t.Fatalf("write attempts: %d, want 2 (first answer, failed second, no trailer)", fw.writes)
	}
	// The healthy run writes 3 answers + 1 trailer; stopping at 2 attempts
	// proves the drain was cut short, and StreamedAnswers records only the
	// emissions that were attempted.
	if got := srv.Metrics().StreamedAnswers.Load(); got != 2 {
		t.Fatalf("streamed answers after dead pipe: %d, want 2", got)
	}
}

// TestBatchLargerThanBurstAdmitted is the admission starvation regression:
// a /batch whose line count exceeds BurstPerClient used to need more tokens
// than the bucket can ever hold — the refill saturates at burst — so every
// retry saw 429 forever. The cost is now clamped to the bucket capacity:
// the batch is admitted when the bucket is full, drains it completely, and
// the advertised Retry-After is enough for the next oversized batch.
func TestBatchLargerThanBurstAdmitted(t *testing.T) {
	base := time.Now()
	var offsetNS atomic.Int64
	srv := New(Config{
		Backend:        testEngine(t),
		RatePerClient:  1,
		BurstPerClient: 2,
		now:            func() time.Time { return base.Add(time.Duration(offsetNS.Load())) },
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	batch := strings.Repeat(fmt.Sprintf("{\"query\":%q,\"k\":1,\"mode\":\"trinit\"}\n", fixtureSPARQL), 4)
	hdr := map[string]string{"Content-Type": "application/x-ndjson", "X-Client-ID": "oversized"}

	status, _, raw := postRaw(t, ts.URL+"/batch", batch, hdr)
	if status != http.StatusOK {
		t.Fatalf("oversized batch refused with a full bucket: status %d (%s)", status, raw)
	}
	if got := len(readNDJSON(t, raw)); got != 4 {
		t.Fatalf("admitted batch answered %d lines, want 4", got)
	}

	// Bucket drained: the immediate retry is shed, with a truthful hint.
	status, hdrs, _ := postRaw(t, ts.URL+"/batch", batch, hdr)
	if status != http.StatusTooManyRequests {
		t.Fatalf("drained bucket admitted a batch: status %d", status)
	}
	retry := hdrs.Get("Retry-After")
	if retry == "" {
		t.Fatal("429 without Retry-After")
	}

	// Advancing the clock past the refill horizon must re-admit the same
	// oversized batch — the permanent-starvation repro under the old cost
	// accounting, where no amount of waiting ever helped.
	offsetNS.Store(int64(3 * time.Second))
	status, _, raw = postRaw(t, ts.URL+"/batch", batch, hdr)
	if status != http.StatusOK {
		t.Fatalf("oversized batch still refused after full refill: status %d (%s)", status, raw)
	}
	if got := srv.Metrics().ShedRate.Load(); got != 1 {
		t.Fatalf("shed_rate counter: %d, want 1", got)
	}
}

// TestBucketTakeClampsOversizedCost pins the bucket-level fix directly: a
// cost beyond burst is payable (clamped to capacity) and refill restores
// admission within burst/rate seconds — the exact scenario that starved
// forever when take demanded more tokens than the bucket can hold.
func TestBucketTakeClampsOversizedCost(t *testing.T) {
	base := time.Now()
	now := base
	bt := newBucketTable(1, 4, 16, func() time.Time { return now })

	ok, _ := bt.take("c", 10)
	if !ok {
		t.Fatal("full bucket refused an oversized cost — permanent starvation")
	}
	ok, retry := bt.take("c", 1)
	if ok {
		t.Fatal("drained bucket granted a token")
	}
	if retry < time.Second || retry > 5*time.Second {
		t.Fatalf("retry hint %v not within the refill horizon", retry)
	}
	now = base.Add(4 * time.Second) // full refill at rate 1, burst 4
	if ok, _ = bt.take("c", 10); !ok {
		t.Fatal("refilled bucket refused the oversized cost again")
	}
}

// TestShedCanceledMetric: a client that gives up while waiting in the accept
// queue is counted as shed_canceled — distinct from rate/queue sheds — and
// the counter is visible at /metrics. MaxInflight=1 with a gated backend
// holds the only slot; a /batch request queues behind it (the batch handler
// consumes its whole body before admission, so the server's background read
// is armed and the disconnect is observable while queued); canceling its
// context abandons the queue.
func TestShedCanceledMetric(t *testing.T) {
	eng := testEngine(t)
	gb := &gateBackend{Backend: eng, gate: make(chan struct{})}
	srv := New(Config{Backend: gb, MaxInflight: 1, MaxQueue: 4})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body, _ := json.Marshal(map[string]any{"query": fixtureSPARQL, "mode": "trinit", "deadline_ms": 10000})

	first := make(chan error, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
		if err == nil {
			resp.Body.Close()
		}
		first <- err
	}()
	waitFor(t, "first request to hold the slot", func() bool { return gb.queryCalls.Load() == 1 })

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/batch",
		strings.NewReader(fmt.Sprintf("{\"query\":%q,\"mode\":\"trinit\"}\n", fixtureSPARQL)))
	if err != nil {
		t.Fatal(err)
	}
	second := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		second <- err
	}()
	waitFor(t, "second request to queue", func() bool { return srv.waiting.Load() == 1 })

	cancel()
	waitFor(t, "shed_canceled to be counted", func() bool { return srv.Metrics().ShedCanceled.Load() == 1 })
	if err := <-second; err == nil {
		t.Fatal("canceled request reported success")
	}
	if got := gb.queryCalls.Load(); got != 1 {
		t.Fatalf("abandoned request reached the engine: %d calls", got)
	}

	close(gb.gate)
	if err := <-first; err != nil {
		t.Fatal(err)
	}
	_, _, metricsRaw := getRaw(t, ts.URL+"/metrics")
	if !strings.Contains(string(metricsRaw), "specqp_shed_canceled_total 1") {
		t.Fatalf("/metrics missing shed_canceled_total:\n%s", metricsRaw)
	}
}

// waitFor polls cond until true or the deadline trips.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	for deadline := time.Now().Add(5 * time.Second); ; {
		if cond() {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}
