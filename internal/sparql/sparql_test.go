package sparql

import (
	"strings"
	"testing"

	"specqp/internal/kg"
)

func TestParsePaperExample(t *testing.T) {
	d := kg.NewDict()
	src := `SELECT ?s WHERE{
		?s 'rdf:type' <singer>.
		?s 'rdf:type' <lyricist>.
		?s 'rdf:type' <guitarist>.
		?s 'rdf:type' <pianist>
	}`
	pq, err := Parse(src, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(pq.Query.Patterns) != 4 {
		t.Fatalf("patterns: got %d want 4", len(pq.Query.Patterns))
	}
	if len(pq.Projection) != 1 || pq.Projection[0] != "s" {
		t.Fatalf("projection: got %v", pq.Projection)
	}
	ty, ok := d.Lookup("rdf:type")
	if !ok {
		t.Fatal("rdf:type not interned")
	}
	for i, p := range pq.Query.Patterns {
		if !p.S.IsVar || p.S.Name != "s" {
			t.Fatalf("pattern %d subject: %+v", i, p.S)
		}
		if p.P.IsVar || p.P.ID != ty {
			t.Fatalf("pattern %d predicate: %+v", i, p.P)
		}
	}
	singer, _ := d.Lookup("singer")
	if pq.Query.Patterns[0].O.ID != singer {
		t.Fatal("first object is not singer")
	}
}

func TestParseMultiVariableAndStar(t *testing.T) {
	d := kg.NewDict()
	pq, err := Parse(`SELECT ?x ?y WHERE { ?x <knows> ?y . ?y <knows> ?z }`, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(pq.Projection) != 2 {
		t.Fatalf("projection: %v", pq.Projection)
	}
	star, err := Parse(`SELECT * WHERE { ?x <knows> ?y }`, d)
	if err != nil {
		t.Fatal(err)
	}
	if star.Projection != nil {
		t.Fatalf("star projection must be empty, got %v", star.Projection)
	}
}

func TestParseTermForms(t *testing.T) {
	d := kg.NewDict()
	pq, err := Parse(`SELECT ?s WHERE { ?s "double quoted" bare:token . ?s <iri-term> 'single' }`, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(pq.Query.Patterns) != 2 {
		t.Fatalf("patterns: %d", len(pq.Query.Patterns))
	}
	for _, term := range []string{"double quoted", "bare:token", "iri-term", "single"} {
		if _, ok := d.Lookup(term); !ok {
			t.Errorf("term %q not interned", term)
		}
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	d := kg.NewDict()
	if _, err := Parse(`select ?s where { ?s <p> <o> }`, d); err != nil {
		t.Fatalf("lowercase keywords rejected: %v", err)
	}
}

func TestParseTrailingDotOptional(t *testing.T) {
	d := kg.NewDict()
	a, err := Parse(`SELECT ?s WHERE { ?s <p> <o> . }`, d)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Parse(`SELECT ?s WHERE { ?s <p> <o> }`, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Query.Patterns) != len(b.Query.Patterns) {
		t.Fatal("trailing dot changed the parse")
	}
}

func TestParseErrors(t *testing.T) {
	d := kg.NewDict()
	cases := []struct {
		name, src string
	}{
		{"missing select", `WHERE { ?s <p> <o> }`},
		{"missing where", `SELECT ?s { ?s <p> <o> }`},
		{"unterminated block", `SELECT ?s WHERE { ?s <p> <o>`},
		{"empty block", `SELECT ?s WHERE { }`},
		{"incomplete pattern", `SELECT ?s WHERE { ?s <p> }`},
		{"unknown projection", `SELECT ?zz WHERE { ?s <p> <o> }`},
		{"trailing garbage", `SELECT ?s WHERE { ?s <p> <o> } extra`},
		{"unterminated iri", `SELECT ?s WHERE { ?s <p <o> }`},
		{"unterminated literal", `SELECT ?s WHERE { ?s 'p <o> }`},
		{"empty var", `SELECT ? WHERE { ?s <p> <o> }`},
		{"brace in pattern", `SELECT ?s WHERE { ?s <p> { }`},
	}
	for _, c := range cases {
		if _, err := Parse(c.src, d); err == nil {
			t.Errorf("%s: parse succeeded", c.name)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse did not panic on bad input")
		}
	}()
	MustParse(`garbage`, kg.NewDict())
}

func TestParseIntegratesWithStore(t *testing.T) {
	st := kg.NewStore(nil)
	if err := st.AddSPO("shakira", "rdf:type", "singer", 10); err != nil {
		t.Fatal(err)
	}
	if err := st.AddSPO("shakira", "rdf:type", "guitarist", 5); err != nil {
		t.Fatal(err)
	}
	st.Freeze()
	pq := MustParse(`SELECT ?s WHERE { ?s 'rdf:type' <singer> . ?s 'rdf:type' <guitarist> }`, st.Dict())
	answers := st.Evaluate(pq.Query)
	if len(answers) != 1 {
		t.Fatalf("answers: got %d want 1", len(answers))
	}
	if got := st.Dict().Decode(answers[0].Binding[0]); got != "shakira" {
		t.Fatalf("answer: %q", got)
	}
}

func TestParseWhitespaceRobust(t *testing.T) {
	d := kg.NewDict()
	src := "SELECT   ?s\n\tWHERE\n{\n?s\t<p>\n<o>\n}\n"
	if _, err := Parse(src, d); err != nil {
		t.Fatalf("whitespace variants rejected: %v", err)
	}
	if !strings.Contains(src, "\t") {
		t.Fatal("test setup lost tabs")
	}
}

func TestParseLimit(t *testing.T) {
	d := kg.NewDict()
	pq, err := Parse(`SELECT ?s WHERE { ?s <p> <o> } LIMIT 15`, d)
	if err != nil {
		t.Fatal(err)
	}
	if pq.Limit != 15 {
		t.Fatalf("limit: got %d want 15", pq.Limit)
	}
	noLimit, err := Parse(`SELECT ?s WHERE { ?s <p> <o> }`, d)
	if err != nil {
		t.Fatal(err)
	}
	if noLimit.Limit != 0 {
		t.Fatalf("absent limit: got %d want 0", noLimit.Limit)
	}
	for _, src := range []string{
		`SELECT ?s WHERE { ?s <p> <o> } LIMIT`,
		`SELECT ?s WHERE { ?s <p> <o> } LIMIT zero`,
		`SELECT ?s WHERE { ?s <p> <o> } LIMIT 0`,
		`SELECT ?s WHERE { ?s <p> <o> } LIMIT 5 extra`,
	} {
		if _, err := Parse(src, d); err == nil {
			t.Errorf("bad LIMIT accepted: %s", src)
		}
	}
	lc, err := Parse(`select ?s where { ?s <p> <o> } limit 3`, d)
	if err != nil || lc.Limit != 3 {
		t.Fatalf("lowercase limit: %v %d", err, lc.Limit)
	}
}
