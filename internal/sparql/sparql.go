// Package sparql parses the SPARQL subset the paper uses: single
// SELECT queries over a basic graph pattern of triple patterns,
//
//	SELECT ?s ?o WHERE {
//	    ?s 'rdf:type' <singer> .
//	    ?s <collaboratesWith> ?o
//	}
//
// Terms may be variables (?name), IRIs (<...>), quoted literals ('...' or
// "..."), or bare tokens. SELECT * selects all variables. The parser
// dictionary-encodes constants against a kg.Dict, interning unseen terms
// (a constant absent from the KG simply has an empty match list).
package sparql

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"specqp/internal/kg"
)

// ParsedQuery is the result of parsing: the triple pattern query, the
// projection list (empty means SELECT *), and the optional LIMIT (0 when
// absent). LIMIT maps naturally onto the engines' top-k parameter.
type ParsedQuery struct {
	Query      kg.Query
	Projection []string
	Limit      int
}

// Parse parses src into a ParsedQuery, encoding constants with dict.
func Parse(src string, dict *kg.Dict) (ParsedQuery, error) {
	toks, err := lex(src)
	if err != nil {
		return ParsedQuery{}, err
	}
	p := &parser{toks: toks, dict: dict}
	return p.parse()
}

// MustParse is Parse that panics on error (for tests and examples).
func MustParse(src string, dict *kg.Dict) ParsedQuery {
	pq, err := Parse(src, dict)
	if err != nil {
		panic(err)
	}
	return pq
}

type tokKind int

const (
	tokWord tokKind = iota // bare token, keyword, IRI or literal content
	tokVar                 // ?name
	tokStar                // *
	tokLBrace
	tokRBrace
	tokDot
)

type token struct {
	kind tokKind
	text string
	pos  int
}

func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case unicode.IsSpace(rune(c)):
			i++
		case c == '{':
			toks = append(toks, token{tokLBrace, "{", i})
			i++
		case c == '}':
			toks = append(toks, token{tokRBrace, "}", i})
			i++
		case c == '.':
			toks = append(toks, token{tokDot, ".", i})
			i++
		case c == '*':
			toks = append(toks, token{tokStar, "*", i})
			i++
		case c == '?':
			j := i + 1
			for j < n && isNameByte(src[j]) {
				j++
			}
			if j == i+1 {
				return nil, fmt.Errorf("sparql: empty variable name at offset %d", i)
			}
			toks = append(toks, token{tokVar, src[i+1 : j], i})
			i = j
		case c == '<':
			j := strings.IndexByte(src[i:], '>')
			if j < 0 {
				return nil, fmt.Errorf("sparql: unterminated IRI at offset %d", i)
			}
			toks = append(toks, token{tokWord, src[i+1 : i+j], i})
			i += j + 1
		case c == '\'' || c == '"':
			quote := c
			j := i + 1
			for j < n && src[j] != quote {
				j++
			}
			if j == n {
				return nil, fmt.Errorf("sparql: unterminated literal at offset %d", i)
			}
			toks = append(toks, token{tokWord, src[i+1 : j], i})
			i = j + 1
		default:
			j := i
			for j < n && isNameByte(src[j]) {
				j++
			}
			if j == i {
				return nil, fmt.Errorf("sparql: unexpected character %q at offset %d", c, i)
			}
			toks = append(toks, token{tokWord, src[i:j], i})
			i = j
		}
	}
	return toks, nil
}

func isNameByte(c byte) bool {
	return c == '_' || c == ':' || c == '#' || c == '-' ||
		(c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

type parser struct {
	toks []token
	pos  int
	dict *kg.Dict
}

func (p *parser) peek() (token, bool) {
	if p.pos >= len(p.toks) {
		return token{}, false
	}
	return p.toks[p.pos], true
}

func (p *parser) next() (token, bool) {
	t, ok := p.peek()
	if ok {
		p.pos++
	}
	return t, ok
}

func (p *parser) expectWord(kw string) error {
	t, ok := p.next()
	if !ok || t.kind != tokWord || !strings.EqualFold(t.text, kw) {
		return fmt.Errorf("sparql: expected %q at offset %d", kw, t.pos)
	}
	return nil
}

func (p *parser) parse() (ParsedQuery, error) {
	var pq ParsedQuery
	if err := p.expectWord("SELECT"); err != nil {
		return pq, err
	}
	for {
		t, ok := p.peek()
		if !ok {
			return pq, fmt.Errorf("sparql: unexpected end of input in SELECT clause")
		}
		if t.kind == tokVar {
			p.next()
			pq.Projection = append(pq.Projection, t.text)
			continue
		}
		if t.kind == tokStar {
			p.next()
			pq.Projection = nil
			continue
		}
		break
	}
	if err := p.expectWord("WHERE"); err != nil {
		return pq, err
	}
	if t, ok := p.next(); !ok || t.kind != tokLBrace {
		return pq, fmt.Errorf("sparql: expected '{' after WHERE")
	}
	for {
		t, ok := p.peek()
		if !ok {
			return pq, fmt.Errorf("sparql: unterminated WHERE block")
		}
		if t.kind == tokRBrace {
			p.next()
			break
		}
		pat, err := p.parsePattern()
		if err != nil {
			return pq, err
		}
		pq.Query.Patterns = append(pq.Query.Patterns, pat)
		if t, ok := p.peek(); ok && t.kind == tokDot {
			p.next()
		}
	}
	// Optional LIMIT clause.
	if t, ok := p.peek(); ok && t.kind == tokWord && strings.EqualFold(t.text, "LIMIT") {
		p.next()
		nt, ok := p.next()
		if !ok || nt.kind != tokWord {
			return pq, fmt.Errorf("sparql: LIMIT requires a number")
		}
		n, err := strconv.Atoi(nt.text)
		if err != nil || n < 1 {
			return pq, fmt.Errorf("sparql: bad LIMIT %q", nt.text)
		}
		pq.Limit = n
	}
	if t, ok := p.next(); ok {
		return pq, fmt.Errorf("sparql: trailing input at offset %d", t.pos)
	}
	if len(pq.Query.Patterns) == 0 {
		return pq, fmt.Errorf("sparql: empty WHERE block")
	}
	// Validate projection variables.
	qvars := map[string]bool{}
	for _, v := range pq.Query.Vars() {
		qvars[v] = true
	}
	for _, v := range pq.Projection {
		if !qvars[v] {
			return pq, fmt.Errorf("sparql: projected variable ?%s not used in WHERE", v)
		}
	}
	return pq, nil
}

func (p *parser) parsePattern() (kg.Pattern, error) {
	terms := make([]kg.Term, 0, 3)
	for len(terms) < 3 {
		t, ok := p.next()
		if !ok {
			return kg.Pattern{}, fmt.Errorf("sparql: incomplete triple pattern")
		}
		switch t.kind {
		case tokVar:
			terms = append(terms, kg.Var(t.text))
		case tokWord:
			terms = append(terms, kg.Const(p.dict.Encode(t.text)))
		default:
			return kg.Pattern{}, fmt.Errorf("sparql: unexpected token %q in triple pattern at offset %d", t.text, t.pos)
		}
	}
	return kg.NewPattern(terms[0], terms[1], terms[2]), nil
}

// Render renders a query back to SPARQL text (single line), decoding
// constants with dict. It is the inverse of Parse for queries produced by
// this package: Parse(Render(q)) reproduces q up to term interning.
// Constants render as IRIs unless they contain '>', in which case a quote
// delimiter not occurring in the term is chosen; CanRender reports the rare
// terms (containing '>' and both quote characters) that no delimiter of the
// grammar can carry.
func Render(q kg.Query, dict *kg.Dict) string {
	var b strings.Builder
	b.WriteString("SELECT")
	for _, v := range q.Vars() {
		b.WriteString(" ?")
		b.WriteString(v)
	}
	b.WriteString(" WHERE {")
	for i, p := range q.Patterns {
		if i > 0 {
			b.WriteString(" .")
		}
		for _, t := range []kg.Term{p.S, p.P, p.O} {
			b.WriteByte(' ')
			if t.IsVar {
				b.WriteByte('?')
				b.WriteString(t.Name)
			} else {
				writeConst(&b, dict.Decode(t.ID))
			}
		}
	}
	b.WriteString(" }")
	return b.String()
}

// writeConst renders one constant with the first delimiter that can carry it.
func writeConst(b *strings.Builder, term string) {
	switch {
	case !strings.ContainsRune(term, '>'):
		b.WriteByte('<')
		b.WriteString(term)
		b.WriteByte('>')
	case !strings.ContainsRune(term, '\''):
		b.WriteByte('\'')
		b.WriteString(term)
		b.WriteByte('\'')
	default:
		// CanRender guards the remaining case; emit with '"' regardless so
		// Render stays total.
		b.WriteByte('"')
		b.WriteString(term)
		b.WriteByte('"')
	}
}

// CanRender reports whether every constant of q survives a Render→Parse
// round trip. The grammar has no escape sequences, so a term containing
// '>' and both quote characters cannot be carried by any delimiter.
func CanRender(q kg.Query, dict *kg.Dict) bool {
	for _, p := range q.Patterns {
		for _, t := range []kg.Term{p.S, p.P, p.O} {
			if t.IsVar {
				continue
			}
			term := dict.Decode(t.ID)
			if strings.ContainsRune(term, '>') &&
				strings.ContainsRune(term, '\'') &&
				strings.ContainsRune(term, '"') {
				return false
			}
		}
	}
	return true
}
