package sparql

import (
	"reflect"
	"testing"

	"specqp/internal/kg"
)

// FuzzParseSPARQL fuzzes the parser with two properties:
//
//  1. Parse never panics, whatever the input;
//  2. accepted queries round-trip — Parse(Render(q)) reproduces q exactly —
//     for every query whose constants the grammar can carry (CanRender; the
//     grammar has no escapes, so a constant containing '>' and both quote
//     characters is unrepresentable).
func FuzzParseSPARQL(f *testing.F) {
	seeds := []string{
		"SELECT ?s WHERE { ?s 'rdf:type' <singer> }",
		"SELECT ?s ?o WHERE { ?s <collaboratesWith> ?o . ?s 'rdf:type' <singer> } LIMIT 5",
		"SELECT * WHERE { ?x ?p ?y . ?y ?p ?z }",
		"SELECT ?x WHERE { ?x \"has tag\" bare_token }",
		"select ?s where { ?s a <b> . } limit 10",
		"SELECT ?s WHERE { ?s <p> '' }",
		"SELECT ?s WHERE { ?s <p> 'a>b' }",
		"SELECT",
		"SELECT ?s WHERE {",
		"SELECT ?s WHERE { ?s }",
		"SELECT ?s WHERE { ?s <p> <o> } LIMIT x",
		"{}?.*<>''\"\"",
		"SELECT ?s WHERE { ?s <p> <o> } trailing",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		dict := kg.NewDict()
		pq, err := Parse(src, dict)
		if err != nil {
			return
		}
		if len(pq.Query.Patterns) == 0 {
			t.Fatalf("accepted query %q has no patterns", src)
		}
		if !CanRender(pq.Query, dict) {
			return
		}
		rendered := Render(pq.Query, dict)
		pq2, err := Parse(rendered, dict)
		if err != nil {
			t.Fatalf("round-trip parse failed: %q rendered as %q: %v", src, rendered, err)
		}
		if !reflect.DeepEqual(pq.Query, pq2.Query) {
			t.Fatalf("round trip changed the query: %q → %q:\n  first  %#v\n  second %#v",
				src, rendered, pq.Query, pq2.Query)
		}
	})
}
