package trace

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestRenderGolden pins the text rendering byte-for-byte on a handcrafted
// trace: zero-valued counters and unset timings must not print, the branch
// glyphs must nest by plan position, and the header must carry exactly the
// planner decisions that were set. Any drift here breaks `specqp -explain`
// consumers and the slow-query log's human half.
func TestRenderGolden(t *testing.T) {
	scan1 := NewNode("ListScan")
	scan1.Detail = "?s <rdf:type> <singer>"
	scan1.SetTop(100)
	for i := 0; i < 5; i++ {
		scan1.Pull()
	}
	scan1.Emit()
	scan1.Emit()
	scan1.SampleBound(90)
	scan1.SampleBound(80)
	scan1.SampleBound(70)

	scan2 := NewNode("ListScan")
	scan2.Detail = "?s <rdf:type> <guitarist>"
	scan2.Pull()
	scan2.DedupDrop()

	join := NewNode("RankJoin")
	join.SetTop(100)
	join.Pull()
	join.Pull()
	join.Emit()
	join.Created()
	join.Children = []*Node{scan1, scan2}

	tr := &Trace{
		Mode:         "spec-qp",
		K:            3,
		PlanCached:   true,
		PlanCacheHit: true,
		Relaxations:  2,
		PlanUS:       12,
		ExecUS:       340,
		Answers:      1,
		MemoryObjects: 4,
		Root:         join,
	}

	want := strings.Join([]string{
		"mode=spec-qp k=3 plan=cache-hit relaxed_patterns=2 plan_us=12 exec_us=340 answers=1 objects=4",
		"└─ RankJoin pulls=2 emits=1 created=1 top=100.0000",
		"   ├─ ListScan(?s <rdf:type> <singer>) pulls=5 emits=2 top=100.0000 bound=70.0000 bound_path=[90.0000→70.0000 ×3]",
		"   └─ ListScan(?s <rdf:type> <guitarist>) pulls=1 dedup_dropped=1",
		"",
	}, "\n")
	if got := Render(tr); got != want {
		t.Errorf("render mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestRenderCacheMissAndNilRoot covers the header variants: a cache miss
// prints plan=cache-miss, a rootless trace (naive mode) renders only the
// header line, and a nil trace renders empty.
func TestRenderCacheMissAndNilRoot(t *testing.T) {
	tr := &Trace{Mode: "naive", K: 10, PlanCached: true, Answers: 2, MemoryObjects: 7}
	got := Render(tr)
	want := "mode=naive k=10 plan=cache-miss answers=2 objects=7\n"
	if got != want {
		t.Errorf("got %q want %q", got, want)
	}
	if Render(nil) != "" {
		t.Error("nil trace must render empty")
	}
}

// TestNilNodeSafety is the zero-overhead contract: every mutator must be a
// no-op on a nil *Node — that is what lets operators call them unguarded on
// the untraced hot path.
func TestNilNodeSafety(t *testing.T) {
	var n *Node
	n.Pull()
	n.Emit()
	n.Created()
	n.DedupDrop()
	n.AbortPoll()
	n.Rescan()
	n.SetArenaBytes(42)
	n.SetTop(1.5)
	n.SampleBound(0.5)
	if s := n.Snapshot(); s != nil {
		t.Fatalf("nil node snapshot: %+v", s)
	}
}

// TestJSONShape checks the wire form: omitempty keeps zero counters out,
// final_bound distinguishes "bound 0 observed" from "no bound observed", and
// children recurse.
func TestJSONShape(t *testing.T) {
	leaf := NewNode("ListScan")
	leaf.Detail = "p"
	leaf.Pull()
	leaf.SampleBound(0) // a genuine zero bound must serialise
	root := NewNode("RankJoin")
	root.Emit()
	root.Children = []*Node{leaf}

	raw, err := json.Marshal(root)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if m["op"] != "RankJoin" || m["emits"] != float64(1) {
		t.Fatalf("root: %v", m)
	}
	if _, ok := m["pulls"]; ok {
		t.Fatalf("zero counter serialised: %v", m)
	}
	kids := m["children"].([]any)
	child := kids[0].(map[string]any)
	if child["op"] != "ListScan" || child["pulls"] != float64(1) {
		t.Fatalf("child: %v", child)
	}
	if fb, ok := child["final_bound"]; !ok || fb != float64(0) {
		t.Fatalf("zero final bound dropped: %v", child)
	}
	if _, ok := m["final_bound"]; ok {
		t.Fatalf("unobserved bound serialised: %v", m)
	}
}

// TestJSONRoundTrip pins the wire contract a remote explain consumer relies
// on: a trace marshalled into a response and unmarshalled back must render
// identically — counters, bounds and trajectory included, not just the tree
// shape.
func TestJSONRoundTrip(t *testing.T) {
	leaf := NewNode("ListScan")
	leaf.Detail = "p w=0.800"
	for i := 0; i < 4; i++ {
		leaf.Pull()
	}
	leaf.Emit()
	leaf.SetTop(9)
	leaf.SampleBound(8)
	leaf.SampleBound(5)
	root := NewNode("RankJoin")
	root.Emit()
	root.Created()
	root.Children = []*Node{leaf}
	tr := &Trace{Mode: "spec-qp", K: 2, PlanCached: true, Answers: 1, Root: root}

	raw, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	var back Trace
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if got, want := Render(&back), Render(tr); got != want {
		t.Errorf("render changed across JSON round trip:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestTrajectoryDecimation fills the bound trajectory far past its cap and
// checks the sketch stays bounded while retaining first-ish and last values.
func TestTrajectoryDecimation(t *testing.T) {
	n := NewNode("ListScan")
	const total = 10 * maxTrajectory
	for i := 0; i < total; i++ {
		n.SampleBound(float64(total - i))
	}
	s := n.Snapshot()
	if len(s.BoundTrajectory) > maxTrajectory {
		t.Fatalf("trajectory unbounded: %d > %d", len(s.BoundTrajectory), maxTrajectory)
	}
	if len(s.BoundTrajectory) < maxTrajectory/4 {
		t.Fatalf("trajectory over-decimated: %d", len(s.BoundTrajectory))
	}
	if s.FinalBound == nil || *s.FinalBound != 1 {
		t.Fatalf("final bound: %v", s.FinalBound)
	}
	for i := 1; i < len(s.BoundTrajectory); i++ {
		if s.BoundTrajectory[i] > s.BoundTrajectory[i-1] {
			t.Fatalf("trajectory not descending at %d: %v", i, s.BoundTrajectory)
		}
	}
}

// TestTotalsByOp aggregates across same-op nodes.
func TestTotalsByOp(t *testing.T) {
	a, b := NewNode("ListScan"), NewNode("ListScan")
	a.Pull()
	a.Pull()
	b.Pull()
	b.Emit()
	root := NewNode("RankJoin")
	root.Children = []*Node{a, b}
	tr := &Trace{Root: root}
	tot := tr.TotalsByOp()
	if v := tot["ListScan"]; v[0] != 3 || v[1] != 1 {
		t.Fatalf("ListScan totals: %v", v)
	}
	ops := tr.Ops()
	if len(ops) != 2 || ops[0] != "ListScan" || ops[1] != "RankJoin" {
		t.Fatalf("ops: %v", ops)
	}
}
