// Package trace is the per-query execution tracing layer: a plan-shaped tree
// of per-operator statistics (pulls, emissions, dedup suppressions, bound
// trajectories, abort polls, arena bytes) plus the planner decisions that
// shaped the tree (plan-cache hit, shape key, chosen mode, relaxation
// expansions) and the per-phase wall times.
//
// The design constraint is zero overhead when disabled: operators hold a
// *Node that is nil unless the execution asked for tracing, and every mutator
// is nil-receiver safe — the disabled hot path pays one nil check per event
// and allocates nothing, which is what keeps the indexed operator path at
// 0 allocs/op and bit-identical to untraced execution (the alloc guards in
// internal/operators enforce it).
//
// When enabled, counters are atomics and the bound trajectory is mutex
// guarded: join legs run under concurrent prefetch goroutines, and a trace
// may be serialised while a cancelled leg's goroutine is still winding down.
// The package deliberately imports nothing from the engine — operators, exec
// and the server all depend on it, never the reverse.
package trace

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// maxTrajectory bounds the bound-trajectory sample count per operator. When
// the buffer fills, every other sample is dropped and the sampling stride
// doubles, so long executions keep a uniformly spaced sketch of the bound's
// descent instead of an unbounded log.
const maxTrajectory = 32

// Node is one operator's statistics in the plan-shaped trace tree. Exported
// scalar fields are written once, single-threaded (at construction or at
// tree-assembly time); the unexported counters are written on the operator's
// executing goroutine and read by the trace consumer, hence atomic.
type Node struct {
	// Op names the operator (ListScan, ShardedListScan, IncrementalMerge,
	// RankJoin, NRJN, AnswerScan, Prefetch).
	Op string
	// Detail renders the operator's pattern or configuration (e.g. the triple
	// pattern a scan covers, with its relaxation weight).
	Detail string
	// Shards is the fan-in of a ShardedListScan (0 otherwise).
	Shards int
	// BuildUS is the leg's construction wall time in microseconds, stamped by
	// the executor on leg roots (0 elsewhere).
	BuildUS int64
	// Children are the operator's inputs, in plan order.
	Children []*Node

	pulls      atomic.Int64 // input entries pulled / candidates examined
	emits      atomic.Int64 // entries emitted downstream
	created    atomic.Int64 // answer objects created (join results enqueued)
	dedup      atomic.Int64 // entries suppressed by duplicate elimination
	abortPolls atomic.Int64 // cancellation-hook polls (AbortStride boundaries)
	rescans    atomic.Int64 // inner-input restarts (NRJN)
	arenaBytes atomic.Int64 // slab-arena bytes backing emitted bindings

	mu        sync.Mutex
	topScore  float64
	boundSet  bool
	lastBound float64
	traj      []float64
	stride    int
	skip      int
}

// NewNode returns a node for the named operator.
func NewNode(op string) *Node { return &Node{Op: op} }

// Pull records one input pull (nil-safe; a no-op on nil receivers, like every
// mutator below).
func (n *Node) Pull() {
	if n != nil {
		n.pulls.Add(1)
	}
}

// Emit records one emission.
func (n *Node) Emit() {
	if n != nil {
		n.emits.Add(1)
	}
}

// Created records one answer object created (a join result enqueued before
// the corner bound proves it final).
func (n *Node) Created() {
	if n != nil {
		n.created.Add(1)
	}
}

// DedupDrop records one entry suppressed by duplicate elimination.
func (n *Node) DedupDrop() {
	if n != nil {
		n.dedup.Add(1)
	}
}

// AbortPoll records one cancellation-hook poll.
func (n *Node) AbortPoll() {
	if n != nil {
		n.abortPolls.Add(1)
	}
}

// Rescan records one inner-input restart.
func (n *Node) Rescan() {
	if n != nil {
		n.rescans.Add(1)
	}
}

// SetArenaBytes records the operator's current slab-arena footprint.
func (n *Node) SetArenaBytes(b int64) {
	if n != nil {
		n.arenaBytes.Store(b)
	}
}

// SetTop records the operator's initial top-score bound (write-once, at
// construction or priming).
func (n *Node) SetTop(v float64) {
	if n == nil {
		return
	}
	n.mu.Lock()
	n.topScore = v
	n.mu.Unlock()
}

// SampleBound records the operator's bound (or certificate) as observed at an
// emission: the final value is always retained, and the sequence of samples —
// decimated to at most maxTrajectory points — sketches the bound's monotone
// descent, which is the paper's early-termination story made visible.
func (n *Node) SampleBound(b float64) {
	if n == nil {
		return
	}
	n.mu.Lock()
	n.lastBound = b
	n.boundSet = true
	if n.stride == 0 {
		n.stride = 1
	}
	n.skip++
	if n.skip >= n.stride {
		n.skip = 0
		if len(n.traj) >= maxTrajectory {
			keep := n.traj[:0]
			for i := 0; i < len(n.traj); i += 2 {
				keep = append(keep, n.traj[i])
			}
			n.traj = keep
			n.stride *= 2
		}
		n.traj = append(n.traj, b)
	}
	n.mu.Unlock()
}

// NodeStats is the serialisable snapshot of one node, also the JSON shape of
// the whole tree (Children recurse).
type NodeStats struct {
	Op              string       `json:"op"`
	Detail          string       `json:"detail,omitempty"`
	Shards          int          `json:"shards,omitempty"`
	BuildUS         int64        `json:"build_us,omitempty"`
	Pulls           int64        `json:"pulls,omitempty"`
	Emits           int64        `json:"emits,omitempty"`
	Created         int64        `json:"created,omitempty"`
	DedupDropped    int64        `json:"dedup_dropped,omitempty"`
	AbortPolls      int64        `json:"abort_polls,omitempty"`
	Rescans         int64        `json:"rescans,omitempty"`
	ArenaBytes      int64        `json:"arena_bytes,omitempty"`
	TopScore        float64      `json:"top_score,omitempty"`
	FinalBound      *float64     `json:"final_bound,omitempty"`
	BoundTrajectory []float64    `json:"bound_trajectory,omitempty"`
	Children        []*NodeStats `json:"children,omitempty"`
}

// Snapshot captures the node (and its subtree) as plain serialisable values.
// Safe to call while operator goroutines are still winding down.
func (n *Node) Snapshot() *NodeStats {
	if n == nil {
		return nil
	}
	s := &NodeStats{
		Op:           n.Op,
		Detail:       n.Detail,
		Shards:       n.Shards,
		BuildUS:      n.BuildUS,
		Pulls:        n.pulls.Load(),
		Emits:        n.emits.Load(),
		Created:      n.created.Load(),
		DedupDropped: n.dedup.Load(),
		AbortPolls:   n.abortPolls.Load(),
		Rescans:      n.rescans.Load(),
		ArenaBytes:   n.arenaBytes.Load(),
	}
	n.mu.Lock()
	s.TopScore = n.topScore
	if n.boundSet {
		fb := n.lastBound
		s.FinalBound = &fb
	}
	s.BoundTrajectory = append([]float64(nil), n.traj...)
	n.mu.Unlock()
	for _, c := range n.Children {
		if cs := c.Snapshot(); cs != nil {
			s.Children = append(s.Children, cs)
		}
	}
	return s
}

// MarshalJSON serialises the node as its snapshot, so a live tree can be
// embedded directly in a JSON response.
func (n *Node) MarshalJSON() ([]byte, error) {
	return json.Marshal(n.Snapshot())
}

// UnmarshalJSON restores a node from its snapshot form, so a trace received
// over the wire (the /query explain response) renders with its counters — not
// just the tree shape.
func (n *Node) UnmarshalJSON(data []byte) error {
	var s NodeStats
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	n.restore(&s)
	return nil
}

// restore overwrites the node with a snapshot's values, recursively.
func (n *Node) restore(s *NodeStats) {
	n.Op, n.Detail, n.Shards, n.BuildUS = s.Op, s.Detail, s.Shards, s.BuildUS
	n.pulls.Store(s.Pulls)
	n.emits.Store(s.Emits)
	n.created.Store(s.Created)
	n.dedup.Store(s.DedupDropped)
	n.abortPolls.Store(s.AbortPolls)
	n.rescans.Store(s.Rescans)
	n.arenaBytes.Store(s.ArenaBytes)
	n.mu.Lock()
	n.topScore = s.TopScore
	n.boundSet = s.FinalBound != nil
	if s.FinalBound != nil {
		n.lastBound = *s.FinalBound
	}
	n.traj = append([]float64(nil), s.BoundTrajectory...)
	n.mu.Unlock()
	n.Children = nil
	for _, cs := range s.Children {
		c := &Node{}
		c.restore(cs)
		n.Children = append(n.Children, c)
	}
}

// Trace is one query execution's full trace: the planner's decisions, the
// phase wall times, and the operator tree.
type Trace struct {
	// Mode is the engine mode that executed (spec-qp, trinit, naive, exact).
	Mode string `json:"mode"`
	// K is the requested answer count.
	K int `json:"k"`
	// ShapeKey is the plan cache's canonical key for the query shape
	// (ModeSpecQP only).
	ShapeKey string `json:"shape_key,omitempty"`
	// PlanCacheHit reports whether the speculative plan came from the shape
	// cache (meaningful only when PlanCached is true).
	PlanCacheHit bool `json:"plan_cache_hit,omitempty"`
	// PlanCached reports whether the plan was resolved through the shape
	// cache at all (single uncached queries plan directly).
	PlanCached bool `json:"plan_cached,omitempty"`
	// Relaxations is the number of patterns the plan expands with relaxations
	// (the speculative planner's singleton count; all patterns for TriniT).
	Relaxations int `json:"relaxations,omitempty"`
	// PlanUS and ExecUS are the planning and execution wall times.
	PlanUS int64 `json:"plan_us,omitempty"`
	ExecUS int64 `json:"exec_us"`
	// Answers is the number of answers produced; MemoryObjects the paper's
	// answer-objects-created metric.
	Answers       int   `json:"answers"`
	MemoryObjects int64 `json:"memory_objects"`
	// Root is the operator tree (nil for modes without one, e.g. naive).
	Root *Node `json:"root,omitempty"`
}

// Render pretty-prints the trace as a deterministic indented tree — the
// EXPLAIN ANALYZE text form. Counters render only when non-zero, timings only
// when set, so a handcrafted trace with fixed values renders byte-stably for
// golden tests.
func Render(t *Trace) string {
	if t == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "mode=%s k=%d", t.Mode, t.K)
	if t.PlanCached {
		if t.PlanCacheHit {
			b.WriteString(" plan=cache-hit")
		} else {
			b.WriteString(" plan=cache-miss")
		}
	}
	if t.Relaxations > 0 {
		fmt.Fprintf(&b, " relaxed_patterns=%d", t.Relaxations)
	}
	if t.PlanUS > 0 {
		fmt.Fprintf(&b, " plan_us=%d", t.PlanUS)
	}
	if t.ExecUS > 0 {
		fmt.Fprintf(&b, " exec_us=%d", t.ExecUS)
	}
	fmt.Fprintf(&b, " answers=%d objects=%d\n", t.Answers, t.MemoryObjects)
	if t.Root != nil {
		renderNode(&b, t.Root.Snapshot(), "", true)
	}
	return b.String()
}

func renderNode(b *strings.Builder, n *NodeStats, prefix string, last bool) {
	branch, childPrefix := "├─ ", prefix+"│  "
	if last {
		branch, childPrefix = "└─ ", prefix+"   "
	}
	b.WriteString(prefix)
	b.WriteString(branch)
	b.WriteString(n.Op)
	if n.Detail != "" {
		fmt.Fprintf(b, "(%s)", n.Detail)
	}
	type field struct {
		name string
		v    int64
	}
	for _, f := range []field{
		{"shards", int64(n.Shards)},
		{"build_us", n.BuildUS},
		{"pulls", n.Pulls},
		{"emits", n.Emits},
		{"created", n.Created},
		{"dedup_dropped", n.DedupDropped},
		{"abort_polls", n.AbortPolls},
		{"rescans", n.Rescans},
		{"arena_bytes", n.ArenaBytes},
	} {
		if f.v != 0 {
			fmt.Fprintf(b, " %s=%d", f.name, f.v)
		}
	}
	if n.TopScore != 0 {
		fmt.Fprintf(b, " top=%.4f", n.TopScore)
	}
	if n.FinalBound != nil {
		fmt.Fprintf(b, " bound=%.4f", *n.FinalBound)
	}
	if len(n.BoundTrajectory) > 1 {
		fmt.Fprintf(b, " bound_path=[%.4f→%.4f ×%d]",
			n.BoundTrajectory[0], n.BoundTrajectory[len(n.BoundTrajectory)-1], len(n.BoundTrajectory))
	}
	b.WriteByte('\n')
	for i, c := range n.Children {
		renderNode(b, c, childPrefix, i == len(n.Children)-1)
	}
}

// TotalsByOp aggregates pulls/emits per operator kind across the tree —
// convenient for tests and dashboards.
func (t *Trace) TotalsByOp() map[string][2]int64 {
	out := map[string][2]int64{}
	var walk func(n *NodeStats)
	walk = func(n *NodeStats) {
		if n == nil {
			return
		}
		v := out[n.Op]
		v[0] += n.Pulls
		v[1] += n.Emits
		out[n.Op] = v
		for _, c := range n.Children {
			walk(c)
		}
	}
	if t.Root != nil {
		walk(t.Root.Snapshot())
	}
	return out
}

// Ops lists the distinct operator kinds in the tree, sorted.
func (t *Trace) Ops() []string {
	var ops []string
	for op := range t.TotalsByOp() {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	return ops
}
