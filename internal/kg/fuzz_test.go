package kg

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// snapshotBytes serialises a small valid store for the seed corpus.
func snapshotBytes(tb testing.TB) []byte {
	tb.Helper()
	st := NewStore(nil)
	for _, tr := range []struct {
		s, p, o string
		score   float64
	}{
		{"shakira", "rdf:type", "singer", 98},
		{"prince", "rdf:type", "guitarist", 99},
		{"prince", "rdf:type", "guitarist", 40}, // duplicate key
		{"miley", "collab", "prince", 0},
	} {
		if err := st.AddSPO(tr.s, tr.p, tr.o, tr.score); err != nil {
			tb.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := st.WriteBinary(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzReadBinary fuzzes the snapshot reader with hostile inputs. The
// properties:
//
//  1. ReadBinary never panics and never trusts attacker-controlled counts
//     for allocation (the term and triple loops grow with bytes actually
//     read — a claimed multi-gigabyte snapshot backed by a short stream must
//     fail fast, not allocate);
//  2. accepted snapshots are well-formed: frozen, in-range term references,
//     finite non-negative scores, and WriteBinary→ReadBinary round-trips to
//     the identical triple sequence.
func FuzzReadBinary(f *testing.F) {
	valid := snapshotBytes(f)
	f.Add(valid)
	f.Add(valid[:len(valid)-5]) // truncated mid-triple
	f.Add(valid[:9])            // truncated after magic
	f.Add([]byte("SPECQPKG"))   // magic only
	f.Add([]byte("not a snapshot"))
	// Claimed counts far beyond the actual payload.
	huge := append([]byte{}, valid[:16]...)
	binary.LittleEndian.PutUint32(huge[12:16], 1<<31)
	huge = append(huge, valid[16:]...)
	f.Add(huge)
	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		if !st.Frozen() {
			t.Fatal("accepted snapshot produced an unfrozen store")
		}
		nTerms := st.Dict().Len()
		for i := 0; i < st.Len(); i++ {
			tr := st.Triple(int32(i))
			if int(tr.S) >= nTerms || int(tr.P) >= nTerms || int(tr.O) >= nTerms {
				t.Fatalf("triple %d references term beyond dictionary (%d terms)", i, nTerms)
			}
			if tr.Score < 0 || tr.Score != tr.Score || tr.Score > 1e308*1.79 {
				t.Fatalf("triple %d carries invalid score %v", i, tr.Score)
			}
		}
		var buf bytes.Buffer
		if err := st.WriteBinary(&buf); err != nil {
			t.Fatalf("re-serialising accepted snapshot: %v", err)
		}
		st2, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("re-reading serialised snapshot: %v", err)
		}
		if st2.Len() != st.Len() || st2.Dict().Len() != st.Dict().Len() {
			t.Fatalf("round trip changed sizes: %d/%d triples, %d/%d terms",
				st.Len(), st2.Len(), st.Dict().Len(), st2.Dict().Len())
		}
		for i := 0; i < st.Len(); i++ {
			if st.Triple(int32(i)) != st2.Triple(int32(i)) {
				t.Fatalf("round trip changed triple %d", i)
			}
		}
	})
}
