// Package kg implements an in-memory, scored RDF-style triple store used as
// the storage substrate for Spec-QP. It provides dictionary encoding of terms,
// triple-pattern matching with per-pattern answer lists sorted by score
// (descending), exact join-cardinality computation, and TSV (de)serialisation.
//
// The store plays the role PostgreSQL played in the paper's evaluation: a
// provider of score-sorted match lists for individual triple patterns. All
// ranking semantics (Definitions 5, 6 and 8 of the paper) live here too.
package kg

import (
	"fmt"
	"sort"
	"sync"
)

// ID is a dictionary-encoded term identifier. IDs are dense and start at 0.
type ID uint32

// NoID is a sentinel for "no term".
const NoID = ID(^uint32(0))

// Dict maps term strings (IRIs, literals, tokens) to dense IDs and back.
// The zero value is not usable; call NewDict.
type Dict struct {
	mu   sync.RWMutex
	byS  map[string]ID
	byID []string
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{byS: make(map[string]ID)}
}

// Encode interns s and returns its ID, allocating a new one if unseen.
func (d *Dict) Encode(s string) ID {
	d.mu.RLock()
	id, ok := d.byS[s]
	d.mu.RUnlock()
	if ok {
		return id
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok = d.byS[s]; ok {
		return id
	}
	id = ID(len(d.byID))
	d.byS[s] = id
	d.byID = append(d.byID, s)
	return id
}

// Lookup returns the ID for s and whether it is present, without interning.
func (d *Dict) Lookup(s string) (ID, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	id, ok := d.byS[s]
	return id, ok
}

// Decode returns the string for id. It panics if id was never allocated.
func (d *Dict) Decode(id ID) string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if int(id) >= len(d.byID) {
		panic(fmt.Sprintf("kg: decode of unknown ID %d", id))
	}
	return d.byID[id]
}

// Len reports the number of interned terms.
func (d *Dict) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.byID)
}

// Strings returns a copy of all interned terms indexed by ID.
func (d *Dict) Strings() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]string, len(d.byID))
	copy(out, d.byID)
	return out
}

// sortIDs sorts a slice of IDs ascending (helper shared by index code).
func sortIDs(ids []ID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}
