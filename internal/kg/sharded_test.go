package kg

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// shardCounts is the shard-count ladder every sharded property test walks:
// the degenerate single segment, small counts that leave some shards empty,
// a prime count that exercises uneven routing, and a count larger than the
// test vocabularies' subject range.
var shardCounts = []int{1, 2, 3, 7, 16}

// shardedFrom builds the sharded copy of a flat store.
func shardedFrom(t testing.TB, st *Store, n int) *ShardedStore {
	t.Helper()
	ss := NewShardedStoreFrom(st, n)
	if !ss.Frozen() {
		t.Fatal("NewShardedStoreFrom returned an unfrozen store")
	}
	if ss.Len() != st.Len() {
		t.Fatalf("sharded store has %d triples, flat has %d", ss.Len(), st.Len())
	}
	return ss
}

// shapePatterns enumerates every pattern shape over the randomStore
// vocabulary: each posting family, residual shapes, repeated variables and
// full scans.
func shapePatterns() []Pattern {
	var pats []Pattern
	for id := 0; id < 8; id++ {
		s, o := Const(ID(id)), Const(ID(id))
		p := Const(ID(id % 3))
		pats = append(pats,
			NewPattern(s, Var("p"), Var("o")),
			NewPattern(Var("s"), p, Var("o")),
			NewPattern(Var("s"), Var("p"), o),
			NewPattern(Var("s"), p, o),
			NewPattern(s, p, Var("o")),
			NewPattern(s, p, o),
			NewPattern(s, Var("p"), Const(ID((id+3)%8))),
			NewPattern(s, Var("x"), Var("x")),
			NewPattern(Var("x"), Var("x"), o),
			NewPattern(Var("x"), p, Var("x")),
		)
	}
	return append(pats,
		NewPattern(Var("s"), Var("p"), Var("o")),
		NewPattern(Var("x"), Var("p"), Var("x")),
		NewPattern(Var("x"), Var("x"), Var("x")),
	)
}

// TestShardedMatchesFlat is the layout-equivalence property test: global
// triple indexes are insertion-ordered in both layouts, so MatchList,
// Cardinality, MaxScore and NormalizedScores must agree element-for-element
// with the flat store across the whole shard-count ladder.
func TestShardedMatchesFlat(t *testing.T) {
	for trial := int64(0); trial < 6; trial++ {
		st := randomStore(t, 4200+trial, 300)
		for _, n := range shardCounts {
			ss := shardedFrom(t, st, n)
			if got, want := ss.HasDuplicates(), st.HasDuplicates(); got != want {
				t.Fatalf("shards=%d: HasDuplicates %v, flat %v", n, got, want)
			}
			for i := 0; i < st.Len(); i++ {
				if ss.Triple(int32(i)) != st.Triple(int32(i)) {
					t.Fatalf("shards=%d: triple %d differs", n, i)
				}
			}
			for _, p := range shapePatterns() {
				got, want := ss.MatchList(p), st.MatchList(p)
				if !equalLists(got, want) {
					t.Fatalf("trial %d shards=%d pattern %v: merged list %v, flat %v", trial, n, p, got, want)
				}
				if g, w := ss.Cardinality(p), st.Cardinality(p); g != w {
					t.Fatalf("shards=%d pattern %v: cardinality %d, flat %d", n, p, g, w)
				}
				if g, w := ss.MaxScore(p), st.MaxScore(p); g != w {
					t.Fatalf("shards=%d pattern %v: max score %v, flat %v", n, p, g, w)
				}
				gs, ws := ss.NormalizedScores(p), st.NormalizedScores(p)
				if len(gs) != len(ws) {
					t.Fatalf("shards=%d pattern %v: %d normalised scores, flat %d", n, p, len(gs), len(ws))
				}
				for i := range gs {
					if gs[i] != ws[i] {
						t.Fatalf("shards=%d pattern %v: normalised score %d is %v, flat %v", n, p, i, gs[i], ws[i])
					}
				}
			}
		}
	}
}

// randomJoinQuery builds a 2–3 pattern query over the randomStore vocabulary
// chained through shared variables.
func randomJoinQuery(rng *rand.Rand) Query {
	names := []string{"x", "y", "z", "w"}
	n := 2 + rng.Intn(2)
	var ps []Pattern
	for i := 0; i < n; i++ {
		s := Var(names[i])
		if rng.Intn(4) == 0 {
			s = Var(names[0])
		}
		p := Const(ID(rng.Intn(3)))
		o := Term(Var(names[i+1]))
		if rng.Intn(3) == 0 {
			o = Const(ID(rng.Intn(8)))
		}
		ps = append(ps, NewPattern(s, p, o))
	}
	return NewQuery(ps...)
}

// TestShardedEvaluateMatchesFlat pins the shared evaluator over both
// layouts: complete answer sets, weighted answer sets, exact counts and
// selectivities agree for randomized join queries at every shard count.
func TestShardedEvaluateMatchesFlat(t *testing.T) {
	for trial := int64(0); trial < 8; trial++ {
		rng := rand.New(rand.NewSource(7700 + trial))
		st := randomStore(t, 9900+trial, 200)
		q := randomJoinQuery(rng)
		weights := make([]float64, len(q.Patterns))
		for i := range weights {
			weights[i] = 0.25 + rng.Float64()*0.75
		}
		want := st.Evaluate(q)
		wantW := st.EvaluateWeighted(q, weights)
		for _, n := range shardCounts {
			ss := shardedFrom(t, st, n)
			got := ss.Evaluate(q)
			if len(got) != len(want) {
				t.Fatalf("trial %d shards=%d: %d answers, flat %d", trial, n, len(got), len(want))
			}
			for i := range got {
				if got[i].Binding.Compare(want[i].Binding) != 0 || math.Abs(got[i].Score-want[i].Score) > 1e-12 {
					t.Fatalf("trial %d shards=%d: answer %d is %v, flat %v", trial, n, i, got[i], want[i])
				}
			}
			gotW := ss.EvaluateWeighted(q, weights)
			if len(gotW) != len(wantW) {
				t.Fatalf("trial %d shards=%d: %d weighted answers, flat %d", trial, n, len(gotW), len(wantW))
			}
			for i := range gotW {
				if gotW[i].Binding.Compare(wantW[i].Binding) != 0 || math.Abs(gotW[i].Score-wantW[i].Score) > 1e-12 {
					t.Fatalf("trial %d shards=%d: weighted answer %d is %v, flat %v", trial, n, i, gotW[i], wantW[i])
				}
			}
			if g, w := ss.Count(q), st.Count(q); g != w {
				t.Fatalf("trial %d shards=%d: count %d, flat %d", trial, n, g, w)
			}
			if g, w := ss.Selectivity(q), st.Selectivity(q); g != w {
				t.Fatalf("trial %d shards=%d: selectivity %v, flat %v", trial, n, g, w)
			}
		}
	}
}

// TestShardedAddRoutesBySubject pins the partitioning contract: every triple
// lands in the shard its subject hashes to, the directory round-trips, and
// duplicate (s,p,o) keys stay within one shard.
func TestShardedAddRoutesBySubject(t *testing.T) {
	ss := NewShardedStore(nil, 4)
	for i := 0; i < 40; i++ {
		if err := ss.AddSPO(fmt.Sprintf("s%d", i%7), "p", fmt.Sprintf("o%d", i), float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	ss.Freeze()
	if err := ss.AddSPO("late", "p", "o", 1); err != ErrFrozen {
		t.Fatalf("Add after Freeze: %v, want ErrFrozen", err)
	}
	for g := 0; g < ss.Len(); g++ {
		tr := ss.Triple(int32(g))
		want := ss.shardFor(tr.S)
		if got := int(ss.locShard[g]); got != want {
			t.Fatalf("triple %d in shard %d, subject hashes to %d", g, got, want)
		}
		if ss.global[ss.locShard[g]][ss.locIdx[g]] != int32(g) {
			t.Fatalf("directory round-trip broken for triple %d", g)
		}
	}
	total := 0
	for i := 0; i < ss.NumShards(); i++ {
		total += ss.Shard(i).Len()
	}
	if total != ss.Len() {
		t.Fatalf("shard lengths sum to %d, want %d", total, ss.Len())
	}
}

// TestShardedMatchListAllocs guards the sharded MatchList read path: after
// the first (materialising) call, repeated lookups are cache hits with zero
// allocations, matching the flat store's zero-alloc posting views.
func TestShardedMatchListAllocs(t *testing.T) {
	st := randomStore(t, 31, 400)
	ss := shardedFrom(t, st, 4)
	pats := shapePatterns()
	for _, p := range pats {
		ss.MatchList(p) // materialise and cache
	}
	if allocs := testing.AllocsPerRun(100, func() {
		for _, p := range pats {
			if len(ss.MatchList(p)) != st.Cardinality(p) {
				t.Fatal("sharded match list diverged")
			}
		}
	}); allocs != 0 {
		t.Fatalf("warm sharded MatchList: %v allocs per sweep, want 0", allocs)
	}
}

// BenchmarkShardedMatchList compares warm match-list reads across layouts
// and shard counts: the flat store's slice view against the sharded store's
// cached merged view.
func BenchmarkShardedMatchList(b *testing.B) {
	st := randomStore(b, 77, 100000)
	pat := NewPattern(Var("s"), Const(ID(1)), Var("o"))
	b.Run("flat", func(b *testing.B) {
		st.MatchList(pat)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if len(st.MatchList(pat)) == 0 {
				b.Fatal("empty list")
			}
		}
	})
	for _, n := range []int{2, 8} {
		ss := NewShardedStoreFrom(st, n)
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			ss.MatchList(pat)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if len(ss.MatchList(pat)) == 0 {
					b.Fatal("empty list")
				}
			}
		})
	}
}

// BenchmarkShardedFreeze measures the parallel multi-segment freeze against
// the flat single-store freeze on the same triples.
func BenchmarkShardedFreeze(b *testing.B) {
	base := randomStore(b, 5, 200000)
	triples := make([]Triple, base.Len())
	for i := range triples {
		triples[i] = base.Triple(int32(i))
	}
	b.Run("flat", func(b *testing.B) {
		b.StopTimer()
		for i := 0; i < b.N; i++ {
			st := NewStore(base.Dict())
			for _, tr := range triples {
				if err := st.Add(tr); err != nil {
					b.Fatal(err)
				}
			}
			b.StartTimer()
			st.Freeze()
			b.StopTimer()
		}
	})
	for _, n := range []int{4, 8} {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			b.StopTimer()
			for i := 0; i < b.N; i++ {
				ss := NewShardedStore(base.Dict(), n)
				for _, tr := range triples {
					if err := ss.Add(tr); err != nil {
						b.Fatal(err)
					}
				}
				b.StartTimer()
				ss.Freeze()
				b.StopTimer()
			}
		})
	}
}
