package kg

import (
	"fmt"
	"math/rand"
	"testing"
)

// This file is the live-ingest correctness contract at the storage layer:
// a store mutated through Insert/Compact must be indistinguishable — match
// lists, cardinalities, max scores, normalised scores, duplicate flags,
// evaluation, counting — from a flat store rebuilt from scratch over the
// same triple prefix, at every interleaving point, for both layouts and
// every shard count.

// randomTripleSeq builds a deterministic triple sequence over the
// randomStore vocabulary (8 subjects/objects, 3 predicates, tie-heavy
// scores, occasional duplicate (s,p,o) keys) plus a dictionary holding it.
func randomTripleSeq(t testing.TB, seed int64, n int) (*Dict, []Triple) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	dict := NewDict()
	for dict.Len() < 12 {
		dict.Encode(fmt.Sprintf("term%d", dict.Len()))
	}
	triples := make([]Triple, 0, n+n/4)
	for i := 0; i < n; i++ {
		tr := Triple{
			S:     ID(rng.Intn(8)),
			P:     ID(rng.Intn(3)),
			O:     ID(rng.Intn(8)),
			Score: float64(rng.Intn(50)),
		}
		triples = append(triples, tr)
		if rng.Intn(6) == 0 {
			dup := tr
			dup.Score = float64(rng.Intn(50))
			triples = append(triples, dup)
		}
	}
	return dict, triples
}

// rebuiltFlat is the live store's oracle: a fresh flat store over the prefix.
func rebuiltFlat(t testing.TB, dict *Dict, prefix []Triple) *Store {
	t.Helper()
	st := NewStore(dict)
	for _, tr := range prefix {
		if err := st.Add(tr); err != nil {
			t.Fatal(err)
		}
	}
	st.Freeze()
	return st
}

// assertGraphsAgree compares every read-path observable of g against the
// flat oracle: exact list equality (global indexes are insertion-ordered in
// both), exact float equality on scores, and the evaluator on a join query.
func assertGraphsAgree(t *testing.T, label string, g Graph, flat *Store) {
	t.Helper()
	if g.Len() != flat.Len() {
		t.Fatalf("%s: Len %d, oracle %d", label, g.Len(), flat.Len())
	}
	if g.HasDuplicates() != flat.HasDuplicates() {
		t.Fatalf("%s: HasDuplicates %v, oracle %v", label, g.HasDuplicates(), flat.HasDuplicates())
	}
	for i := 0; i < flat.Len(); i++ {
		if g.Triple(int32(i)) != flat.Triple(int32(i)) {
			t.Fatalf("%s: triple %d differs", label, i)
		}
	}
	for _, p := range shapePatterns() {
		got, want := g.MatchList(p), flat.MatchList(p)
		if !equalLists(got, want) {
			t.Fatalf("%s pattern %v: list %v, oracle %v", label, p, got, want)
		}
		if gc, wc := g.Cardinality(p), flat.Cardinality(p); gc != wc {
			t.Fatalf("%s pattern %v: cardinality %d, oracle %d", label, p, gc, wc)
		}
		if gm, wm := g.MaxScore(p), flat.MaxScore(p); gm != wm {
			t.Fatalf("%s pattern %v: max score %v, oracle %v", label, p, gm, wm)
		}
		gs, ws := g.NormalizedScores(p), flat.NormalizedScores(p)
		for i := range gs {
			if gs[i] != ws[i] {
				t.Fatalf("%s pattern %v: normalised score %d is %v, oracle %v", label, p, i, gs[i], ws[i])
			}
		}
	}
	q := NewQuery(
		NewPattern(Var("x"), Const(ID(0)), Var("y")),
		NewPattern(Var("y"), Const(ID(1)), Var("z")),
	)
	got, want := g.Evaluate(q), flat.Evaluate(q)
	if len(got) != len(want) {
		t.Fatalf("%s: %d answers, oracle %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i].Binding.Compare(want[i].Binding) != 0 || got[i].Score != want[i].Score {
			t.Fatalf("%s: answer %d is %v, oracle %v", label, i, got[i], want[i])
		}
	}
	if gc, wc := g.Count(q), flat.Count(q); gc != wc {
		t.Fatalf("%s: count %d, oracle %d", label, gc, wc)
	}
}

// TestLiveStoreMatchesRebuild drives a flat live store through an
// insert/compact schedule, checking every observable against a full rebuild
// after each step — head-only visibility, frozen⊕head merge order and
// post-compaction state all must be bit-identical to the oracle.
func TestLiveStoreMatchesRebuild(t *testing.T) {
	for trial := int64(0); trial < 4; trial++ {
		dict, triples := randomTripleSeq(t, 6100+trial, 120)
		base := len(triples) / 2
		st := NewStore(dict)
		for _, tr := range triples[:base] {
			if err := st.Add(tr); err != nil {
				t.Fatal(err)
			}
		}
		st.Freeze()
		st.SetHeadLimit(-1) // manual compaction: the schedule decides
		rng := rand.New(rand.NewSource(8800 + trial))
		for pos := base; pos < len(triples); pos++ {
			if err := st.Insert(triples[pos]); err != nil {
				t.Fatal(err)
			}
			if rng.Intn(7) == 0 {
				st.Compact()
				if st.HeadLen() != 0 {
					t.Fatalf("head has %d triples after Compact", st.HeadLen())
				}
			}
			if rng.Intn(3) == 0 || pos == len(triples)-1 {
				label := fmt.Sprintf("trial %d pos %d (head %d)", trial, pos+1, st.HeadLen())
				assertGraphsAgree(t, label, st, rebuiltFlat(t, dict, triples[:pos+1]))
			}
		}
	}
}

// TestLiveShardedMatchesRebuild is the same schedule over the sharded
// layout, across the shard-count ladder, with per-shard compactions mixed
// in. Global indexes must remain insertion-ordered through live inserts, so
// list equality with the flat rebuild stays exact.
func TestLiveShardedMatchesRebuild(t *testing.T) {
	for _, shards := range shardCounts {
		dict, triples := randomTripleSeq(t, 9300+int64(shards), 120)
		base := len(triples) / 2
		ss := NewShardedStore(dict, shards)
		for _, tr := range triples[:base] {
			if err := ss.Add(tr); err != nil {
				t.Fatal(err)
			}
		}
		ss.Freeze()
		ss.SetHeadLimit(-1)
		rng := rand.New(rand.NewSource(400 + int64(shards)))
		for pos := base; pos < len(triples); pos++ {
			if err := ss.Insert(triples[pos]); err != nil {
				t.Fatal(err)
			}
			switch rng.Intn(8) {
			case 0:
				ss.CompactShard(rng.Intn(shards))
			case 1:
				ss.Compact()
			}
			if rng.Intn(3) == 0 || pos == len(triples)-1 {
				label := fmt.Sprintf("shards=%d pos %d (head %d)", shards, pos+1, ss.HeadLen())
				assertGraphsAgree(t, label, ss, rebuiltFlat(t, dict, triples[:pos+1]))
			}
		}
	}
}

// TestAutoCompaction pins the merge-on-threshold contract: with a head limit
// of n, the head never holds n or more triples after an Insert returns, and
// the store reports the merges it performed.
func TestAutoCompaction(t *testing.T) {
	dict, triples := randomTripleSeq(t, 31, 80)
	st := NewStore(dict)
	st.Freeze() // empty frozen segment: everything arrives live
	st.SetHeadLimit(5)
	for _, tr := range triples {
		if err := st.Insert(tr); err != nil {
			t.Fatal(err)
		}
		if st.HeadLen() >= 5 {
			t.Fatalf("head grew to %d with limit 5", st.HeadLen())
		}
	}
	if st.Compactions() == 0 {
		t.Fatal("no automatic compactions recorded")
	}
	if st.Len() != len(triples) {
		t.Fatalf("store has %d triples, inserted %d", st.Len(), len(triples))
	}
	assertGraphsAgree(t, "auto-compacted", st, rebuiltFlat(t, dict, triples))

	// Same through the sharded layout: the limit applies per segment.
	ss := NewShardedStore(dict, 4)
	ss.Freeze()
	ss.SetHeadLimit(5)
	for _, tr := range triples {
		if err := ss.Insert(tr); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < ss.NumShards(); i++ {
		if ss.Shard(i).HeadLen() >= 5 {
			t.Fatalf("shard %d head grew to %d with limit 5", i, ss.Shard(i).HeadLen())
		}
	}
	if ss.Compactions() == 0 {
		t.Fatal("no automatic shard compactions recorded")
	}
	assertGraphsAgree(t, "auto-compacted sharded", ss, rebuiltFlat(t, dict, triples))
}

// TestCompactShardLeavesOthersUntouched pins the isolation contract behind
// "compacting one shard never blocks queries on other shards": a per-shard
// compaction publishes a new snapshot only for the compacted shard — every
// other shard's snapshot pointer is physically unchanged, so readers there
// cannot even observe that a merge happened.
func TestCompactShardLeavesOthersUntouched(t *testing.T) {
	dict, triples := randomTripleSeq(t, 77, 100)
	ss := NewShardedStore(dict, 4)
	ss.Freeze()
	ss.SetHeadLimit(-1)
	for _, tr := range triples {
		if err := ss.Insert(tr); err != nil {
			t.Fatal(err)
		}
	}
	target := -1
	for i := 0; i < ss.NumShards(); i++ {
		if ss.Shard(i).HeadLen() > 0 {
			target = i
			break
		}
	}
	if target < 0 {
		t.Fatal("no shard received head triples")
	}
	before := make([]*storeState, ss.NumShards())
	for i := range before {
		before[i] = ss.Shard(i).live.Load()
	}
	ss.CompactShard(target)
	for i := range before {
		after := ss.Shard(i).live.Load()
		if i == target {
			if after == before[i] {
				t.Fatalf("shard %d snapshot unchanged by its own compaction", i)
			}
			if ss.Shard(i).HeadLen() != 0 {
				t.Fatalf("shard %d head not empty after compaction", i)
			}
		} else if after != before[i] {
			t.Fatalf("compacting shard %d replaced shard %d's snapshot", target, i)
		}
	}
	assertGraphsAgree(t, "after single-shard compaction", ss, rebuiltFlat(t, dict, triples))
}

// TestLiveVersionSemantics pins the cache-invalidation signal: Version moves
// on every Insert and never on Compact (contents are unchanged, so
// version-keyed caches survive merges).
func TestLiveVersionSemantics(t *testing.T) {
	dict, triples := randomTripleSeq(t, 5, 20)
	for _, g := range []LiveGraph{
		func() LiveGraph { st := NewStore(dict); st.Freeze(); return st }(),
		func() LiveGraph { ss := NewShardedStore(dict, 3); ss.Freeze(); return ss }(),
	} {
		g.SetHeadLimit(-1)
		if g.Version() != 0 {
			t.Fatalf("%T: fresh frozen store at version %d", g, g.Version())
		}
		for i, tr := range triples {
			if err := g.Insert(tr); err != nil {
				t.Fatal(err)
			}
			if got := g.Version(); got != uint64(i+1) {
				t.Fatalf("%T: version %d after %d inserts", g, got, i+1)
			}
		}
		v := g.Version()
		g.Compact()
		if g.Version() != v {
			t.Fatalf("%T: Compact moved version %d -> %d", g, v, g.Version())
		}
		if g.HeadLen() != 0 {
			t.Fatalf("%T: head not empty after Compact", g)
		}
	}
}

// TestLiveInsertRejectsInvalidScores mirrors Add's score validation on the
// live path: NaN/Inf/negative scores must be rejected before touching any
// snapshot, leaving the store unchanged.
func TestLiveInsertRejectsInvalidScores(t *testing.T) {
	st := NewStore(nil)
	st.Freeze()
	for _, bad := range []float64{-1, nan(), inf()} {
		if err := st.Insert(Triple{Score: bad}); err == nil {
			t.Fatalf("Insert accepted score %v", bad)
		}
	}
	if st.Len() != 0 || st.Version() != 0 {
		t.Fatalf("rejected inserts mutated the store (len %d, version %d)", st.Len(), st.Version())
	}
}

func nan() float64 { z := 0.0; return z / z }
func inf() float64 { z := 0.0; return 1 / z }

// TestLiveMatchListAllocsAfterCompact is the live-layer half of the
// zero-alloc acceptance guard: once the head is empty — freshly frozen or
// freshly compacted after live inserts — indexed MatchList lookups on both
// layouts are allocation-free slice views again, snapshot indirection
// included.
func TestLiveMatchListAllocsAfterCompact(t *testing.T) {
	dict, triples := randomTripleSeq(t, 55, 200)
	st := NewStore(dict)
	for _, tr := range triples[:100] {
		if err := st.Add(tr); err != nil {
			t.Fatal(err)
		}
	}
	st.Freeze()
	for _, tr := range triples[100:] {
		if err := st.Insert(tr); err != nil {
			t.Fatal(err)
		}
	}
	st.Compact()
	if st.HeadLen() != 0 {
		t.Fatal("head not empty after Compact")
	}
	pat := NewPattern(Var("s"), Const(ID(1)), Var("o"))
	if allocs := testing.AllocsPerRun(100, func() {
		if len(st.MatchList(pat)) == 0 {
			t.Fatal("empty list")
		}
	}); allocs != 0 {
		t.Fatalf("compacted flat MatchList: %v allocs, want 0", allocs)
	}

	ss := NewShardedStore(dict, 4)
	ss.Freeze()
	for _, tr := range triples {
		if err := ss.Insert(tr); err != nil {
			t.Fatal(err)
		}
	}
	ss.Compact()
	ss.MatchList(pat) // materialise the merged global list once
	if allocs := testing.AllocsPerRun(100, func() {
		if len(ss.MatchList(pat)) == 0 {
			t.Fatal("empty list")
		}
	}); allocs != 0 {
		t.Fatalf("compacted sharded MatchList: %v allocs, want 0", allocs)
	}
}

// TestShardedEvaluateParallelMatchesSequential pins the shard-parallel
// evaluator against the sequential walk it fans out: identical answer
// slices (bindings, exact scores, order) and identical counts, with and
// without duplicates forcing the sequential Count fallback.
func TestShardedEvaluateParallelMatchesSequential(t *testing.T) {
	for trial := int64(0); trial < 6; trial++ {
		rng := rand.New(rand.NewSource(2024 + trial))
		st := randomStore(t, 640+trial, 250)
		q := randomJoinQuery(rng)
		weights := make([]float64, len(q.Patterns))
		for i := range weights {
			weights[i] = 0.25 + rng.Float64()*0.75
		}
		for _, n := range shardCounts[1:] {
			ss := shardedFrom(t, st, n)
			vs := NewVarSet(q)
			order := evalOrder(ss, q)
			seq := collectAnswers(ss, q, vs, order, weights, nil)
			seq = DedupMax(seq)
			SortAnswers(seq)
			par := ss.EvaluateWeighted(q, weights)
			if len(par) != len(seq) {
				t.Fatalf("trial %d shards=%d: %d parallel answers, %d sequential", trial, n, len(par), len(seq))
			}
			for i := range par {
				if par[i].Binding.Compare(seq[i].Binding) != 0 || par[i].Score != seq[i].Score {
					t.Fatalf("trial %d shards=%d: answer %d is %v, sequential %v", trial, n, i, par[i], seq[i])
				}
			}
			if g, w := ss.Count(q), countAnswers(ss, q); g != w {
				t.Fatalf("trial %d shards=%d: parallel count %d, sequential %d", trial, n, g, w)
			}
		}
	}
}

// TestShardedCountParallelNoDuplicates exercises the parallel counting fast
// path itself: randomStore always carries duplicate keys (forcing the
// sequential dedup fallback above), so this fixture enumerates distinct
// (s,p,o) combinations to make the per-shard derivation sums the live path.
func TestShardedCountParallelNoDuplicates(t *testing.T) {
	st := NewStore(nil)
	for st.Dict().Len() < 12 {
		st.Dict().Encode(fmt.Sprintf("term%d", st.Dict().Len()))
	}
	rng := rand.New(rand.NewSource(99))
	for s := 0; s < 8; s++ {
		for p := 0; p < 3; p++ {
			for o := 0; o < 8; o++ {
				if rng.Intn(3) == 0 {
					continue
				}
				if err := st.Add(Triple{S: ID(s), P: ID(p), O: ID(o), Score: float64(rng.Intn(40))}); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	st.Freeze()
	if st.HasDuplicates() {
		t.Fatal("fixture unexpectedly has duplicates")
	}
	for trial := 0; trial < 5; trial++ {
		q := randomJoinQuery(rng)
		want := st.Count(q)
		for _, n := range shardCounts[1:] {
			ss := shardedFrom(t, st, n)
			if ss.HasDuplicates() {
				t.Fatal("sharded copy reports duplicates")
			}
			if got := ss.Count(q); got != want {
				t.Fatalf("trial %d shards=%d: parallel count %d, flat %d", trial, n, got, want)
			}
			if got, w := ss.Count(q), countAnswers(ss, q); got != w {
				t.Fatalf("trial %d shards=%d: parallel count %d, sequential walk %d", trial, n, got, w)
			}
		}
	}
}
