package kg

import (
	"runtime"
	"sort"
	"sync"
)

// This file builds the store's posting families at Freeze time. All six
// families — byS, byP, byO, byPO, bySP, bySPO — share one []int32 arena:
// each family owns a contiguous region, each key a span (offset + length)
// inside it, laid out with a counting pass so no per-key slice is ever
// allocated or grown. Every span is sorted by raw score descending (triple
// index ascending as tiebreak) exactly once, in parallel across spans, so
// the read path hands out slice views with no locking, filtering or
// allocation. This is the paper's cost model made literal: the database
// engine "retrieve[s] the matches for triple patterns in sorted order", and
// the retrieval itself is free at query time — and with the arena layout the
// index costs a flat 4 bytes per triple per family, with no slice-header or
// append-growth overhead on the millions of single-match keys a large graph
// has.

// Family indexes into Store.arenas.
const (
	famS = iota
	famP
	famO
	famPO
	famSP
	famSPO
	famCount
)

// span locates one posting inside its family's arena. Offsets are relative
// to the family arena, which holds exactly one entry per triple — so int32
// offsets cover every store whose triple indexes fit int32, the same
// capacity as the old per-key-slice layout.
type span struct {
	off, n int32
}

// view returns the arena slice a span describes, capacity-clamped so caller
// appends can never bleed into the neighbouring posting.
func (st *Store) view(f int, s span) []int32 {
	a := st.arenas[f]
	return a[s.off : s.off+s.n : s.off+s.n]
}

// bump counts one occurrence of key k during the counting pass.
func bump[K comparable](m map[K]span, k K) {
	s := m[k]
	s.n++
	m[k] = s
}

// assignOffsets lays the family's keys out contiguously in its arena and
// rewinds each count to zero so the fill pass can reuse it as a cursor.
func assignOffsets[K comparable](m map[K]span) {
	off := int32(0)
	for k, s := range m {
		m[k] = span{off: off}
		off += s.n
	}
}

// place writes triple index ti into k's next free arena slot.
func place[K comparable](m map[K]span, k K, arena []int32, ti int32) {
	s := m[k]
	arena[s.off+s.n] = ti
	s.n++
	m[k] = s
}

// buildPostings populates and sorts every posting family. Called by Freeze
// exactly once, before the store is marked frozen.
func (st *Store) buildPostings() {
	n := len(st.triples)
	st.byS = make(map[ID]span)
	st.byP = make(map[ID]span)
	st.byO = make(map[ID]span)
	st.byPO = make(map[[2]ID]span)
	st.bySP = make(map[[2]ID]span)
	st.bySPO = make(map[[3]ID]span, n)

	for _, t := range st.triples {
		bump(st.byS, t.S)
		bump(st.byP, t.P)
		bump(st.byO, t.O)
		bump(st.byPO, [2]ID{t.P, t.O})
		bump(st.bySP, [2]ID{t.S, t.P})
		bump(st.bySPO, [3]ID{t.S, t.P, t.O})
	}
	// Fewer distinct (s,p,o) keys than triples means some key was added more
	// than once; Count only needs binding dedup in that case.
	st.hasDuplicates = len(st.bySPO) < n

	backing := make([]int32, famCount*n)
	for f := 0; f < famCount; f++ {
		st.arenas[f] = backing[f*n : (f+1)*n : (f+1)*n]
	}
	assignOffsets(st.byS)
	assignOffsets(st.byP)
	assignOffsets(st.byO)
	assignOffsets(st.byPO)
	assignOffsets(st.bySP)
	assignOffsets(st.bySPO)

	for i, t := range st.triples {
		ii := int32(i)
		place(st.byS, t.S, st.arenas[famS], ii)
		place(st.byP, t.P, st.arenas[famP], ii)
		place(st.byO, t.O, st.arenas[famO], ii)
		place(st.byPO, [2]ID{t.P, t.O}, st.arenas[famPO], ii)
		place(st.bySP, [2]ID{t.S, t.P}, st.arenas[famSP], ii)
		place(st.bySPO, [3]ID{t.S, t.P, t.O}, st.arenas[famSPO], ii)
	}

	// Collect every span that actually needs sorting; singletons are
	// trivially sorted already.
	var buckets [][]int32
	collect := func(f int, s span) {
		if s.n > 1 {
			buckets = append(buckets, st.view(f, s))
		}
	}
	for _, s := range st.byS {
		collect(famS, s)
	}
	for _, s := range st.byP {
		collect(famP, s)
	}
	for _, s := range st.byO {
		collect(famO, s)
	}
	for _, s := range st.byPO {
		collect(famPO, s)
	}
	for _, s := range st.bySP {
		collect(famSP, s)
	}
	for _, s := range st.bySPO {
		collect(famSPO, s)
	}
	st.sortBuckets(buckets)
}

// sortBuckets score-sorts the buckets with a worker pool. Buckets are
// disjoint arena regions, so workers never touch the same memory.
func (st *Store) sortBuckets(buckets [][]int32) {
	workers := runtime.GOMAXPROCS(0)
	if workers > len(buckets) {
		workers = len(buckets)
	}
	if workers <= 1 {
		for _, b := range buckets {
			st.sortByScore(b)
		}
		return
	}
	jobs := make(chan []int32, len(buckets))
	for _, b := range buckets {
		jobs <- b
	}
	close(jobs)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := range jobs {
				st.sortByScore(b)
			}
		}()
	}
	wg.Wait()
}

// sortByScore orders triple indexes by raw score descending, index ascending
// on ties — the canonical match-list order everywhere in the store.
func (st *Store) sortByScore(l []int32) {
	sort.Slice(l, func(a, b int) bool {
		ta, tb := st.triples[l[a]], st.triples[l[b]]
		if ta.Score != tb.Score {
			return ta.Score > tb.Score
		}
		return l[a] < l[b]
	})
}

// matchedByIndex returns the Freeze-sorted posting that *is* the match list
// of p: for these shapes the bound positions pin down the matches completely,
// so the arena span needs no filtering, sorting, locking or allocation.
// ok is false for residual shapes — S+O bound (requires an intersection),
// repeated-variable patterns (require a consistency filter), and full scans
// (sorted lazily on first use, since most workloads never run one) — which
// go through the sharded residual cache instead.
func (st *Store) matchedByIndex(p Pattern) ([]int32, bool) {
	sb, pb, ob := !p.S.IsVar, !p.P.IsVar, !p.O.IsVar
	switch {
	case sb && pb && ob:
		return st.view(famSPO, st.bySPO[[3]ID{p.S.ID, p.P.ID, p.O.ID}]), true
	case pb && ob:
		return st.view(famPO, st.byPO[[2]ID{p.P.ID, p.O.ID}]), true
	case sb && pb:
		return st.view(famSP, st.bySP[[2]ID{p.S.ID, p.P.ID}]), true
	case sb && ob:
		return nil, false
	case sb:
		if p.P.Name == p.O.Name {
			return nil, false
		}
		return st.view(famS, st.byS[p.S.ID]), true
	case ob:
		if p.S.Name == p.P.Name {
			return nil, false
		}
		return st.view(famO, st.byO[p.O.ID]), true
	case pb:
		if p.S.Name == p.O.Name {
			return nil, false
		}
		return st.view(famP, st.byP[p.P.ID]), true
	default:
		return nil, false
	}
}

// candidates returns a sorted superset of the matches for p's bound
// positions: the smallest applicable posting, or (nil, false) to signal a
// full scan. Because every posting is score-sorted at Freeze, any
// order-preserving filter over a candidate list yields a correctly sorted
// match list.
func (st *Store) candidates(p Pattern) ([]int32, bool) {
	sb, pb, ob := !p.S.IsVar, !p.P.IsVar, !p.O.IsVar
	switch {
	case sb && pb && ob, pb && ob, sb && pb:
		// At most one variable position: matchedByIndex resolves these
		// shapes exactly, so share its lookup instead of repeating it.
		return st.matchedByIndex(p)
	case sb && ob:
		// Intersect the two single-position postings, scanning the smaller.
		a, fa := st.byS[p.S.ID], famS
		if b := st.byO[p.O.ID]; b.n < a.n {
			a, fa = b, famO
		}
		return st.view(fa, a), true
	case sb:
		return st.view(famS, st.byS[p.S.ID]), true
	case ob:
		return st.view(famO, st.byO[p.O.ID]), true
	case pb:
		return st.view(famP, st.byP[p.P.ID]), true
	default:
		return nil, false
	}
}
