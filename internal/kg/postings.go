package kg

import (
	"runtime"
	"sort"
	"sync"
)

// This file builds the store's posting families at Freeze time. Every
// posting bucket — byS, byP, byO, byPO, bySP, bySPO — is sorted by raw score
// descending (triple index ascending as tiebreak) exactly once, in parallel
// across buckets, so that the read path can hand out slice views with no
// locking, filtering or allocation. This is the paper's cost
// model made literal: the database engine "retrieve[s] the matches for triple
// patterns in sorted order", and the retrieval itself is free at query time.

// buildPostings populates and sorts every posting family. Called by Freeze
// exactly once, before the store is marked frozen.
func (st *Store) buildPostings() {
	for i, t := range st.triples {
		ii := int32(i)
		st.byS[t.S] = append(st.byS[t.S], ii)
		st.byP[t.P] = append(st.byP[t.P], ii)
		st.byO[t.O] = append(st.byO[t.O], ii)
		st.byPO[[2]ID{t.P, t.O}] = append(st.byPO[[2]ID{t.P, t.O}], ii)
		st.bySP[[2]ID{t.S, t.P}] = append(st.bySP[[2]ID{t.S, t.P}], ii)
		k := [3]ID{t.S, t.P, t.O}
		st.bySPO[k] = append(st.bySPO[k], ii)
		if len(st.bySPO[k]) > 1 {
			st.hasDuplicates = true
		}
	}

	// Collect every bucket that actually needs sorting; singletons are
	// trivially sorted already.
	var buckets [][]int32
	add := func(l []int32) {
		if len(l) > 1 {
			buckets = append(buckets, l)
		}
	}
	for _, l := range st.byS {
		add(l)
	}
	for _, l := range st.byP {
		add(l)
	}
	for _, l := range st.byO {
		add(l)
	}
	for _, l := range st.byPO {
		add(l)
	}
	for _, l := range st.bySP {
		add(l)
	}
	for _, l := range st.bySPO {
		add(l)
	}
	st.sortBuckets(buckets)
}

// sortBuckets score-sorts the buckets with a worker pool. Buckets are
// disjoint slices, so workers never touch the same memory.
func (st *Store) sortBuckets(buckets [][]int32) {
	workers := runtime.GOMAXPROCS(0)
	if workers > len(buckets) {
		workers = len(buckets)
	}
	if workers <= 1 {
		for _, b := range buckets {
			st.sortByScore(b)
		}
		return
	}
	jobs := make(chan []int32, len(buckets))
	for _, b := range buckets {
		jobs <- b
	}
	close(jobs)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := range jobs {
				st.sortByScore(b)
			}
		}()
	}
	wg.Wait()
}

// sortByScore orders triple indexes by raw score descending, index ascending
// on ties — the canonical match-list order everywhere in the store.
func (st *Store) sortByScore(l []int32) {
	sort.Slice(l, func(a, b int) bool {
		ta, tb := st.triples[l[a]], st.triples[l[b]]
		if ta.Score != tb.Score {
			return ta.Score > tb.Score
		}
		return l[a] < l[b]
	})
}

// matchedByIndex returns the Freeze-sorted posting that *is* the match list
// of p: for these shapes the bound positions pin down the matches completely,
// so the stored slice needs no filtering, sorting, locking or allocation.
// ok is false for residual shapes — S+O bound (requires an intersection),
// repeated-variable patterns (require a consistency filter), and full scans
// (sorted lazily on first use, since most workloads never run one) — which
// go through the sharded residual cache instead.
func (st *Store) matchedByIndex(p Pattern) ([]int32, bool) {
	sb, pb, ob := !p.S.IsVar, !p.P.IsVar, !p.O.IsVar
	switch {
	case sb && pb && ob:
		return st.bySPO[[3]ID{p.S.ID, p.P.ID, p.O.ID}], true
	case pb && ob:
		return st.byPO[[2]ID{p.P.ID, p.O.ID}], true
	case sb && pb:
		return st.bySP[[2]ID{p.S.ID, p.P.ID}], true
	case sb && ob:
		return nil, false
	case sb:
		if p.P.Name == p.O.Name {
			return nil, false
		}
		return st.byS[p.S.ID], true
	case ob:
		if p.S.Name == p.P.Name {
			return nil, false
		}
		return st.byO[p.O.ID], true
	case pb:
		if p.S.Name == p.O.Name {
			return nil, false
		}
		return st.byP[p.P.ID], true
	default:
		return nil, false
	}
}

// candidates returns a sorted superset of the matches for p's bound
// positions: the smallest applicable posting, or (nil, false) to signal a
// full scan. Because every posting is score-sorted at Freeze, any
// order-preserving filter over a candidate list yields a correctly sorted
// match list.
func (st *Store) candidates(p Pattern) ([]int32, bool) {
	sb, pb, ob := !p.S.IsVar, !p.P.IsVar, !p.O.IsVar
	switch {
	case sb && pb && ob, pb && ob, sb && pb:
		// At most one variable position: matchedByIndex resolves these
		// shapes exactly, so share its lookup instead of repeating it.
		return st.matchedByIndex(p)
	case sb && ob:
		// Intersect the two single-position postings, scanning the smaller.
		a, b := st.byS[p.S.ID], st.byO[p.O.ID]
		if len(b) < len(a) {
			a = b
		}
		return a, true
	case sb:
		return st.byS[p.S.ID], true
	case ob:
		return st.byO[p.O.ID], true
	case pb:
		return st.byP[p.P.ID], true
	default:
		return nil, false
	}
}
