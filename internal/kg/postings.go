package kg

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// This file builds a segment's posting families. All six families — byS,
// byP, byO, byPO, bySP, bySPO — share one []int32 arena: each family owns a
// contiguous region, each key a span (offset + length) inside it, laid out
// with a counting pass so no per-key slice is ever allocated or grown. Every
// span is sorted by raw score descending (triple index ascending as tiebreak)
// exactly once, in parallel across spans, so the read path hands out slice
// views with no locking, filtering or allocation. This is the paper's cost
// model made literal: the database engine "retrieve[s] the matches for triple
// patterns in sorted order", and the retrieval itself is free at query time —
// and with the arena layout the index costs a flat 4 bytes per triple per
// family, with no slice-header or append-growth overhead on the millions of
// single-match keys a large graph has.
//
// The families live in a postings value rather than on Store directly because
// a live store rebuilds them at every head compaction: readers hold the old
// immutable postings through their storeState snapshot while the merge builds
// a new one, so a compaction never blocks or tears a concurrent scan.

// Family indexes into postings.arenas.
const (
	famS = iota
	famP
	famO
	famPO
	famSP
	famSPO
	famCount
)

// span locates one posting inside its family's arena. Offsets are relative
// to the family arena, which holds exactly one entry per triple — so int32
// offsets cover every store whose triple indexes fit int32, the same
// capacity as the old per-key-slice layout.
type span struct {
	off, n int32
}

// postings is one frozen segment's complete index state over a fixed triple
// range. It is immutable once built; Store swaps in a freshly built value at
// Freeze and at every compaction. The main segment covers [0, len(triples));
// an L1 tier covers [lo, len(triples)) on top of a main segment ending at lo.
// Triples retracted by a tombstone before the build are skipped — the arena
// never contains a retracted fact — and recorded in the dead bitmap so no
// later rebuild over the same physical slots can resurrect them.
type postings struct {
	// triples is the frozen prefix the index covers (the range [lo,
	// len(triples)) of it). Triple indexes in every arena are absolute
	// positions in this slice; the slice is never mutated (live inserts
	// append past its length into the snapshot's triples).
	triples []Triple
	// lo is the first triple index this segment covers: 0 for the main
	// segment, the main segment's end for an L1 tier.
	lo int32
	// dead is the cumulative retraction bitmap over [0, len(triples)): bit i
	// set means triples[i] was annihilated by a tombstone at some merge. The
	// bitmap is inherited (copied) from the predecessor segment at every
	// build and only ever gains bits — dead triples stay physically in the
	// triples slice for index stability, so without the bitmap a rebuild
	// could not tell a retracted fact from a live one once its tombstone has
	// been resolved and dropped.
	dead []uint64
	// arenas is the shared posting storage: one region per family (slices of
	// a single flat allocation), holding triple indexes addressed by the
	// spans in the index maps.
	arenas [famCount][]int32
	// Secondary indexes from single bound positions to posting spans.
	byS, byP, byO map[ID]span
	// Composite indexes for the two most common access paths.
	byPO map[[2]ID]span // (P,O) bound: 〈?s p o〉
	bySP map[[2]ID]span // (S,P) bound: 〈s p ?o〉
	// Full index for fully bound lookups, mapping (S,P,O) to every triple
	// with those terms — duplicate additions of the same (s,p,o) with
	// different scores are all retained, score-sorted like every posting.
	bySPO map[[3]ID]span
	// hasDuplicates records whether any (s,p,o) key appears more than once in
	// the frozen prefix; Count only needs binding dedup in that case.
	hasDuplicates bool

	// residual caches match lists for patterns no posting serves directly.
	// Residual lists cover only the frozen prefix; the head overlay is merged
	// outside this cache, so entries stay valid for the postings' lifetime.
	residual *listCache
	// residualComputes points at the owning store's counter of residual-list
	// computations (shared across compactions), for tests asserting the
	// cache's single-flight guarantee.
	residualComputes *atomic.Int64
}

// view returns the arena slice a span describes, capacity-clamped so caller
// appends can never bleed into the neighbouring posting.
func (po *postings) view(f int, s span) []int32 {
	a := po.arenas[f]
	return a[s.off : s.off+s.n : s.off+s.n]
}

// isDead reports whether triple index i was annihilated by a tombstone at or
// before this segment's build.
func (po *postings) isDead(i int32) bool {
	w := int(i >> 6)
	if w >= len(po.dead) {
		return false
	}
	return po.dead[w]&(1<<(uint32(i)&63)) != 0
}

// killedBy reports whether tombs retracts triples[i]: a tombstone's watermark
// kills every copy of its (s,p,o) key inserted before it, and none after.
func killedBy(tombs map[[3]ID]int32, t Triple, i int32) bool {
	if len(tombs) == 0 {
		return false
	}
	w, ok := tombs[[3]ID{t.S, t.P, t.O}]
	return ok && i < w
}

// bump counts one occurrence of key k during the counting pass.
func bump[K comparable](m map[K]span, k K) {
	s := m[k]
	s.n++
	m[k] = s
}

// assignOffsets lays the family's keys out contiguously in its arena and
// rewinds each count to zero so the fill pass can reuse it as a cursor.
func assignOffsets[K comparable](m map[K]span) {
	off := int32(0)
	for k, s := range m {
		m[k] = span{off: off}
		off += s.n
	}
}

// place writes triple index ti into k's next free arena slot.
func place[K comparable](m map[K]span, k K, arena []int32, ti int32) {
	s := m[k]
	arena[s.off+s.n] = ti
	s.n++
	m[k] = s
}

// buildPostings populates and sorts every posting family over the triple
// range [lo, len(triples)). Called by Freeze and by every merge, always on a
// mutator goroutine; the result is published to readers through an atomic
// snapshot swap. prevDead is the predecessor segment's retraction bitmap
// (nil at Freeze) and tombs the tombstone set to resolve: every triple in
// range that is already dead, or that a tombstone's watermark retracts, is
// skipped and marked dead — the built arenas hold surviving facts only.
func buildPostings(triples []Triple, lo int32, prevDead []uint64, tombs map[[3]ID]int32, computes *atomic.Int64) *postings {
	nAll := len(triples)
	dead := make([]uint64, (nAll+63)/64)
	copy(dead, prevDead)
	po := &postings{
		triples:          triples,
		lo:               lo,
		dead:             dead,
		byS:              make(map[ID]span),
		byP:              make(map[ID]span),
		byO:              make(map[ID]span),
		byPO:             make(map[[2]ID]span),
		bySP:             make(map[[2]ID]span),
		bySPO:            make(map[[3]ID]span, nAll-int(lo)),
		residual:         newListCache(),
		residualComputes: computes,
	}

	live := 0
	for i := int(lo); i < nAll; i++ {
		if dead[i>>6]&(1<<(uint32(i)&63)) != 0 {
			continue
		}
		t := triples[i]
		if killedBy(tombs, t, int32(i)) {
			dead[i>>6] |= 1 << (uint32(i) & 63)
			continue
		}
		live++
		bump(po.byS, t.S)
		bump(po.byP, t.P)
		bump(po.byO, t.O)
		bump(po.byPO, [2]ID{t.P, t.O})
		bump(po.bySP, [2]ID{t.S, t.P})
		bump(po.bySPO, [3]ID{t.S, t.P, t.O})
	}
	// Fewer distinct (s,p,o) keys than surviving triples means some key
	// appears more than once; Count only needs binding dedup in that case.
	po.hasDuplicates = len(po.bySPO) < live

	backing := make([]int32, famCount*live)
	for f := 0; f < famCount; f++ {
		po.arenas[f] = backing[f*live : (f+1)*live : (f+1)*live]
	}
	assignOffsets(po.byS)
	assignOffsets(po.byP)
	assignOffsets(po.byO)
	assignOffsets(po.byPO)
	assignOffsets(po.bySP)
	assignOffsets(po.bySPO)

	for i := int(lo); i < nAll; i++ {
		if dead[i>>6]&(1<<(uint32(i)&63)) != 0 {
			continue
		}
		t := triples[i]
		ii := int32(i)
		place(po.byS, t.S, po.arenas[famS], ii)
		place(po.byP, t.P, po.arenas[famP], ii)
		place(po.byO, t.O, po.arenas[famO], ii)
		place(po.byPO, [2]ID{t.P, t.O}, po.arenas[famPO], ii)
		place(po.bySP, [2]ID{t.S, t.P}, po.arenas[famSP], ii)
		place(po.bySPO, [3]ID{t.S, t.P, t.O}, po.arenas[famSPO], ii)
	}

	// Collect every span that actually needs sorting; singletons are
	// trivially sorted already.
	var buckets [][]int32
	collect := func(f int, s span) {
		if s.n > 1 {
			buckets = append(buckets, po.view(f, s))
		}
	}
	for _, s := range po.byS {
		collect(famS, s)
	}
	for _, s := range po.byP {
		collect(famP, s)
	}
	for _, s := range po.byO {
		collect(famO, s)
	}
	for _, s := range po.byPO {
		collect(famPO, s)
	}
	for _, s := range po.bySP {
		collect(famSP, s)
	}
	for _, s := range po.bySPO {
		collect(famSPO, s)
	}
	po.sortBuckets(buckets)
	return po
}

// sortBuckets score-sorts the buckets with a worker pool. Buckets are
// disjoint arena regions, so workers never touch the same memory.
func (po *postings) sortBuckets(buckets [][]int32) {
	workers := runtime.GOMAXPROCS(0)
	if workers > len(buckets) {
		workers = len(buckets)
	}
	if workers <= 1 {
		for _, b := range buckets {
			po.sortByScore(b)
		}
		return
	}
	jobs := make(chan []int32, len(buckets))
	for _, b := range buckets {
		jobs <- b
	}
	close(jobs)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := range jobs {
				po.sortByScore(b)
			}
		}()
	}
	wg.Wait()
}

// sortByScore orders triple indexes by raw score descending, index ascending
// on ties — the canonical match-list order everywhere in the store.
func (po *postings) sortByScore(l []int32) {
	sort.Slice(l, func(a, b int) bool {
		ta, tb := po.triples[l[a]], po.triples[l[b]]
		if ta.Score != tb.Score {
			return ta.Score > tb.Score
		}
		return l[a] < l[b]
	})
}

// matchList returns the frozen prefix's match list for p: a Freeze-sorted
// arena view for indexed shapes, the single-flight residual cache otherwise.
func (po *postings) matchList(p Pattern) []int32 {
	if l, ok := po.matchedByIndex(p); ok {
		return l
	}
	return po.residual.get(p.Key(), func() []int32 { return po.computeMatches(p) })
}

// computeMatches filters the smallest candidate posting down to the exact
// match list. Candidate postings are score-sorted at build time and filtering
// preserves order, so only the full-scan fallback — which walks triples in
// insertion order — sorts its result.
func (po *postings) computeMatches(p Pattern) []int32 {
	po.residualComputes.Add(1)
	var out []int32
	cand, indexed := po.candidates(p)
	if !indexed {
		for i := int(po.lo); i < len(po.triples); i++ {
			if po.isDead(int32(i)) {
				continue
			}
			if p.Matches(po.triples[i]) {
				out = append(out, int32(i))
			}
		}
		po.sortByScore(out)
		return out
	}
	for _, i := range cand {
		if p.Matches(po.triples[i]) {
			out = append(out, i)
		}
	}
	return out
}

// matchedByIndex returns the pre-sorted posting that *is* the match list
// of p: for these shapes the bound positions pin down the matches completely,
// so the arena span needs no filtering, sorting, locking or allocation.
// ok is false for residual shapes — S+O bound (requires an intersection),
// repeated-variable patterns (require a consistency filter), and full scans
// (sorted lazily on first use, since most workloads never run one) — which
// go through the sharded residual cache instead.
func (po *postings) matchedByIndex(p Pattern) ([]int32, bool) {
	sb, pb, ob := !p.S.IsVar, !p.P.IsVar, !p.O.IsVar
	switch {
	case sb && pb && ob:
		return po.view(famSPO, po.bySPO[[3]ID{p.S.ID, p.P.ID, p.O.ID}]), true
	case pb && ob:
		return po.view(famPO, po.byPO[[2]ID{p.P.ID, p.O.ID}]), true
	case sb && pb:
		return po.view(famSP, po.bySP[[2]ID{p.S.ID, p.P.ID}]), true
	case sb && ob:
		return nil, false
	case sb:
		if p.P.Name == p.O.Name {
			return nil, false
		}
		return po.view(famS, po.byS[p.S.ID]), true
	case ob:
		if p.S.Name == p.P.Name {
			return nil, false
		}
		return po.view(famO, po.byO[p.O.ID]), true
	case pb:
		if p.S.Name == p.O.Name {
			return nil, false
		}
		return po.view(famP, po.byP[p.P.ID]), true
	default:
		return nil, false
	}
}

// candidates returns a sorted superset of the matches for p's bound
// positions: the smallest applicable posting, or (nil, false) to signal a
// full scan. Because every posting is score-sorted at build time, any
// order-preserving filter over a candidate list yields a correctly sorted
// match list.
func (po *postings) candidates(p Pattern) ([]int32, bool) {
	sb, pb, ob := !p.S.IsVar, !p.P.IsVar, !p.O.IsVar
	switch {
	case sb && pb && ob, pb && ob, sb && pb:
		// At most one variable position: matchedByIndex resolves these
		// shapes exactly, so share its lookup instead of repeating it.
		return po.matchedByIndex(p)
	case sb && ob:
		// Intersect the two single-position postings, scanning the smaller.
		a, fa := po.byS[p.S.ID], famS
		if b := po.byO[p.O.ID]; b.n < a.n {
			a, fa = b, famO
		}
		return po.view(fa, a), true
	case sb:
		return po.view(famS, po.byS[p.S.ID]), true
	case ob:
		return po.view(famO, po.byO[p.O.ID]), true
	case pb:
		return po.view(famP, po.byP[p.P.ID]), true
	default:
		return nil, false
	}
}
