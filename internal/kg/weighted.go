package kg

// EvaluateWeighted computes the complete answer set of q where each
// pattern's normalised-score contribution is multiplied by weights[i]
// (per-pattern relaxation weighting; weights nil means all 1). Used by the
// naive baseline and by tests as ground truth for relaxed queries.
func (st *Store) EvaluateWeighted(q Query, weights []float64) []Answer {
	return evaluateWeighted(st, q, weights)
}

// DedupMax collapses answers with identical bindings, keeping the maximum
// score (Definition 8: the score of an answer under a space of relaxations
// is the maximum over derivations). Relaxed provenance masks of collapsed
// answers follow the kept maximum.
func DedupMax(as []Answer) []Answer {
	keyer := NewKeyer()
	best := make(map[BindingKey]int, len(as))
	out := as[:0]
	for _, a := range as {
		k := keyer.Key(a.Binding)
		if i, ok := best[k]; ok {
			if a.Score > out[i].Score {
				out[i] = a
			}
			continue
		}
		best[k] = len(out)
		out = append(out, a)
	}
	return out
}
