package kg

// EvaluateWeighted computes the complete answer set of q where each
// pattern's normalised-score contribution is multiplied by weights[i]
// (per-pattern relaxation weighting; weights nil means all 1). Used by the
// naive baseline and by tests as ground truth for relaxed queries.
func (st *Store) EvaluateWeighted(q Query, weights []float64) []Answer {
	vs := NewVarSet(q)
	order := evalOrder(st, q)
	var out []Answer
	var rec func(step int, b Binding, score float64)
	rec = func(step int, b Binding, score float64) {
		if step == len(order) {
			out = append(out, Answer{Binding: b.Clone(), Score: score})
			return
		}
		pi := order[step]
		p := q.Patterns[pi]
		max := st.MaxScore(p)
		w := 1.0
		if weights != nil && weights[pi] > 0 {
			w = weights[pi]
		}
		for _, ti := range st.boundCandidates(p, vs, b) {
			t := st.triples[ti]
			nb, ok := bindPattern(vs, p, t, b)
			if !ok {
				continue
			}
			s := 0.0
			if max > 0 {
				s = w * t.Score / max
			}
			rec(step+1, nb, score+s)
		}
	}
	rec(0, NewBinding(vs.Len()), 0)
	out = DedupMax(out)
	SortAnswers(out)
	return out
}

// DedupMax collapses answers with identical bindings, keeping the maximum
// score (Definition 8: the score of an answer under a space of relaxations
// is the maximum over derivations). Relaxed provenance masks of collapsed
// answers follow the kept maximum.
func DedupMax(as []Answer) []Answer {
	keyer := NewKeyer()
	best := make(map[BindingKey]int, len(as))
	out := as[:0]
	for _, a := range as {
		k := keyer.Key(a.Binding)
		if i, ok := best[k]; ok {
			if a.Score > out[i].Score {
				out[i] = a
			}
			continue
		}
		best[k] = len(out)
		out = append(out, a)
	}
	return out
}
