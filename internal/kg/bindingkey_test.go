package kg

import (
	"math/rand"
	"testing"
)

func TestKeyerPackedSmallBindings(t *testing.T) {
	k := NewKeyer()
	a := Binding{1, 2}
	b := Binding{1, 2}
	c := Binding{2, 1}
	d := Binding{1, NoID}
	if k.Key(a) != k.Key(b) {
		t.Fatal("equal bindings produced different keys")
	}
	if k.Key(a) == k.Key(c) {
		t.Fatal("swapped bindings collided")
	}
	if k.Key(a) == k.Key(d) {
		t.Fatal("NoID position collided with bound position")
	}
	// Packed keys are pure functions of the IDs: independent Keyers agree.
	if NewKeyer().Key(a) != k.Key(a) {
		t.Fatal("packed keys differ across Keyers")
	}
	// One- and zero-variable bindings pack too.
	if NewKeyer().Key(Binding{7}) != NewKeyer().Key(Binding{7}) {
		t.Fatal("width-1 packed key unstable")
	}
	if NewKeyer().Key(Binding{}) != 0 {
		t.Fatal("empty binding must key to 0")
	}
}

func TestKeyerInternedWideBindings(t *testing.T) {
	k := NewKeyer()
	a := Binding{1, 2, 3, NoID}
	b := Binding{1, 2, 3, NoID}
	c := Binding{1, 2, NoID, 3}
	if k.Key(a) != k.Key(b) {
		t.Fatal("equal wide bindings produced different keys")
	}
	if k.Key(a) == k.Key(c) {
		t.Fatal("distinct wide bindings collided")
	}
	// Interned identities are dense and stable across repeats.
	first := k.Key(a)
	for i := 0; i < 10; i++ {
		if k.Key(b) != first {
			t.Fatal("re-keying drifted")
		}
	}
}

func TestKeyerProjection(t *testing.T) {
	k := NewProjKeyer([]int{0, 2})
	a := Binding{1, 99, 3}
	b := Binding{1, 42, 3} // differs only outside the projection
	c := Binding{1, 99, 4}
	if k.Key(a) != k.Key(b) {
		t.Fatal("projection must ignore unprojected positions")
	}
	if k.Key(a) == k.Key(c) {
		t.Fatal("projected difference lost")
	}
	// Empty projection: every binding keys identically (cartesian joins).
	e := NewProjKeyer(nil)
	if e.Key(a) != e.Key(c) {
		t.Fatal("empty projection must collapse all bindings")
	}
	// Wide projections go through the interner with the same semantics.
	w := NewProjKeyer([]int{0, 1, 2, 3})
	x := Binding{1, 2, 3, 4, 77}
	y := Binding{1, 2, 3, 4, 88}
	z := Binding{1, 2, 3, 5, 77}
	if w.Key(x) != w.Key(y) || w.Key(x) == w.Key(z) {
		t.Fatal("wide projection semantics broken")
	}
}

func TestKeyerReset(t *testing.T) {
	k := NewKeyer()
	wide := Binding{1, 2, 3}
	k1 := k.Key(wide)
	k.Reset()
	k2 := k.Key(wide)
	// After Reset identities restart from zero; the first interned tuple
	// gets the same dense id again.
	if k1 != k2 {
		t.Fatalf("first post-reset key: got %d want %d", k2, k1)
	}
	k.Key(Binding{4, 5, 6})
	if k.Key(wide) != k2 {
		t.Fatal("re-keying after reset drifted")
	}
}

// TestKeyerMatchesStringKeyOracle cross-checks Keyer equality classes
// against Binding.Key() on random bindings, packed and interned widths.
func TestKeyerMatchesStringKeyOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, width := range []int{1, 2, 3, 5} {
		k := NewKeyer()
		byString := map[string]BindingKey{}
		for i := 0; i < 2000; i++ {
			b := make(Binding, width)
			for j := range b {
				if rng.Intn(4) == 0 {
					b[j] = NoID
				} else {
					b[j] = ID(rng.Intn(6))
				}
			}
			got := k.Key(b)
			if prev, ok := byString[b.Key()]; ok {
				if prev != got {
					t.Fatalf("width %d: binding %v keyed %d then %d", width, b, prev, got)
				}
			} else {
				for s, id := range byString {
					if id == got {
						t.Fatalf("width %d: distinct bindings %q and %v share key %d", width, s, b, got)
					}
				}
				byString[b.Key()] = got
			}
		}
	}
}
