package kg

import (
	"math"
	"testing"
)

func TestVarSet(t *testing.T) {
	q := NewQuery(
		NewPattern(Var("s"), Const(1), Var("o")),
		NewPattern(Var("o"), Const(2), Var("z")),
	)
	vs := NewVarSet(q)
	if vs.Len() != 3 {
		t.Fatalf("len: got %d want 3", vs.Len())
	}
	for i, name := range []string{"s", "o", "z"} {
		if vs.Index(name) != i {
			t.Errorf("index(%s): got %d want %d", name, vs.Index(name), i)
		}
		if vs.Name(i) != name {
			t.Errorf("name(%d): got %s want %s", i, vs.Name(i), name)
		}
	}
	if vs.Index("missing") != -1 {
		t.Fatal("missing variable should index -1")
	}
}

func TestBindingMergeAndCompatibility(t *testing.T) {
	a := NewBinding(3)
	b := NewBinding(3)
	a[0] = 7
	b[1] = 8
	if !a.CompatibleWith(b) {
		t.Fatal("disjoint bindings must be compatible")
	}
	m := a.Merge(b)
	if m[0] != 7 || m[1] != 8 || m[2] != NoID {
		t.Fatalf("merge: got %v", m)
	}
	c := NewBinding(3)
	c[0] = 9
	if a.CompatibleWith(c) {
		t.Fatal("conflicting bindings must be incompatible")
	}
	// Merge must not mutate the receiver.
	if a[1] != NoID {
		t.Fatal("Merge mutated receiver")
	}
}

func TestBindingKeyDistinguishes(t *testing.T) {
	a := NewBinding(2)
	b := NewBinding(2)
	if a.Key() != b.Key() {
		t.Fatal("equal bindings must share keys")
	}
	b[0] = 1
	if a.Key() == b.Key() {
		t.Fatal("different bindings must not share keys")
	}
}

func TestAnswerRelaxedCount(t *testing.T) {
	cases := []struct {
		mask uint32
		want int
	}{{0, 0}, {1, 1}, {0b1010, 2}, {0b1111, 4}}
	for _, c := range cases {
		if got := (Answer{Relaxed: c.mask}).RelaxedCount(); got != c.want {
			t.Errorf("mask %b: got %d want %d", c.mask, got, c.want)
		}
	}
}

func TestEvaluateStarQuery(t *testing.T) {
	st, ids := musicStore(t)
	q := NewQuery(typePattern(ids, "singer"), typePattern(ids, "lyricist"))
	answers := st.Evaluate(q)
	// singers ∩ lyricists = {shakira, beyonce}.
	if len(answers) != 2 {
		t.Fatalf("answers: got %d want 2", len(answers))
	}
	top := answers[0]
	if got := st.Dict().Decode(top.Binding[0]); got != "shakira" {
		t.Fatalf("top answer: got %q want shakira", got)
	}
	// Score of shakira = 100/100 + 80/80 = 2.
	if math.Abs(top.Score-2.0) > 1e-12 {
		t.Fatalf("shakira score: got %v want 2", top.Score)
	}
	// beyonce = 90/100 + 70/80 = 0.9 + 0.875 = 1.775.
	if math.Abs(answers[1].Score-1.775) > 1e-12 {
		t.Fatalf("beyonce score: got %v want 1.775", answers[1].Score)
	}
}

func TestEvaluateEmptyJoin(t *testing.T) {
	st, ids := musicStore(t)
	q := NewQuery(typePattern(ids, "pianist"), typePattern(ids, "guitarist"))
	if got := st.Evaluate(q); len(got) != 0 {
		t.Fatalf("pianist∧guitarist: got %d answers want 0", len(got))
	}
}

func TestEvaluatePathQuery(t *testing.T) {
	st := NewStore(nil)
	add := func(s, p, o string, sc float64) {
		if err := st.AddSPO(s, p, o, sc); err != nil {
			t.Fatal(err)
		}
	}
	add("a", "knows", "b", 10)
	add("b", "knows", "c", 8)
	add("a", "knows", "c", 5)
	add("c", "knows", "d", 7)
	st.Freeze()
	knows, _ := st.Dict().Lookup("knows")
	q := NewQuery(
		NewPattern(Var("x"), Const(knows), Var("y")),
		NewPattern(Var("y"), Const(knows), Var("z")),
	)
	answers := st.Evaluate(q)
	// Paths: a→b→c, a→c→d, b→c→d.
	if len(answers) != 3 {
		t.Fatalf("paths: got %d want 3", len(answers))
	}
	if st.Count(q) != 3 {
		t.Fatalf("count: got %d want 3", st.Count(q))
	}
}

func TestCountMatchesEvaluate(t *testing.T) {
	st, ids := musicStore(t)
	qs := []Query{
		NewQuery(typePattern(ids, "singer")),
		NewQuery(typePattern(ids, "singer"), typePattern(ids, "lyricist")),
		NewQuery(typePattern(ids, "singer"), typePattern(ids, "vocalist")),
		NewQuery(typePattern(ids, "singer"), typePattern(ids, "lyricist"), typePattern(ids, "guitarist")),
	}
	for i, q := range qs {
		if got, want := st.Count(q), len(st.Evaluate(q)); got != want {
			t.Errorf("query %d: Count=%d Evaluate=%d", i, got, want)
		}
	}
}

func TestSelectivity(t *testing.T) {
	st, ids := musicStore(t)
	q := NewQuery(typePattern(ids, "singer"), typePattern(ids, "lyricist"))
	// 2 answers / (4 × 2) = 0.25.
	if got := st.Selectivity(q); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("selectivity: got %v want 0.25", got)
	}
	empty := NewQuery(typePattern(ids, "singer"), NewPattern(Var("s"), Const(ids["rdf:type"]), Const(ids["shakira"])))
	if got := st.Selectivity(empty); got != 0 {
		t.Fatalf("selectivity with empty pattern: got %v want 0", got)
	}
}

func TestEvaluateWeighted(t *testing.T) {
	st, ids := musicStore(t)
	q := NewQuery(typePattern(ids, "singer"), typePattern(ids, "lyricist"))
	w := []float64{0.5, 1}
	answers := st.EvaluateWeighted(q, w)
	if len(answers) != 2 {
		t.Fatalf("answers: got %d want 2", len(answers))
	}
	// shakira: 0.5·1 + 1 = 1.5.
	if math.Abs(answers[0].Score-1.5) > 1e-12 {
		t.Fatalf("weighted shakira: got %v want 1.5", answers[0].Score)
	}
	// Nil weights behave like all-ones.
	plain := st.EvaluateWeighted(q, nil)
	ref := st.Evaluate(q)
	for i := range ref {
		if math.Abs(plain[i].Score-ref[i].Score) > 1e-12 {
			t.Fatalf("nil weights diverge at %d: %v vs %v", i, plain[i].Score, ref[i].Score)
		}
	}
}

func TestDedupMaxKeepsMaximum(t *testing.T) {
	b1 := NewBinding(1)
	b1[0] = 5
	b2 := NewBinding(1)
	b2[0] = 6
	in := []Answer{
		{Binding: b1, Score: 1.0},
		{Binding: b1.Clone(), Score: 3.0},
		{Binding: b2, Score: 2.0},
		{Binding: b1.Clone(), Score: 2.5},
	}
	out := DedupMax(in)
	if len(out) != 2 {
		t.Fatalf("dedup: got %d want 2", len(out))
	}
	var got5 float64
	for _, a := range out {
		if a.Binding[0] == 5 {
			got5 = a.Score
		}
	}
	if got5 != 3.0 {
		t.Fatalf("dedup kept %v for binding 5, want 3.0", got5)
	}
}

func TestSortAnswersDeterministic(t *testing.T) {
	mk := func(id ID, score float64) Answer {
		b := NewBinding(1)
		b[0] = id
		return Answer{Binding: b, Score: score}
	}
	in := []Answer{mk(3, 1), mk(1, 1), mk(2, 2)}
	SortAnswers(in)
	if in[0].Binding[0] != 2 {
		t.Fatal("highest score must come first")
	}
	if in[1].Binding[0] != 1 || in[2].Binding[0] != 3 {
		t.Fatalf("ties must break by binding key: got %v %v", in[1].Binding[0], in[2].Binding[0])
	}
}

func TestEvaluateDeduplicatesDuplicateTriples(t *testing.T) {
	st := NewStore(nil)
	// Two triples with identical s,p,o and different scores.
	if err := st.AddSPO("e", "type", "t", 10); err != nil {
		t.Fatal(err)
	}
	if err := st.AddSPO("e", "type", "t", 4); err != nil {
		t.Fatal(err)
	}
	if err := st.AddSPO("f", "type", "t", 8); err != nil {
		t.Fatal(err)
	}
	st.Freeze()
	ty, _ := st.Dict().Lookup("type")
	tt, _ := st.Dict().Lookup("t")
	q := NewQuery(NewPattern(Var("s"), Const(ty), Const(tt)))
	answers := st.Evaluate(q)
	if len(answers) != 2 {
		t.Fatalf("dedup: got %d answers want 2", len(answers))
	}
	if answers[0].Score != 1.0 {
		t.Fatalf("duplicate must keep max score 10/10: got %v", answers[0].Score)
	}
}
