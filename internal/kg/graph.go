package kg

import (
	"fmt"
	"sort"
	"strings"
)

// Graph is the read interface of a frozen triple store — everything the
// planner, the statistics catalog, the relaxation miners and the physical
// operators need from the storage layer. It is implemented by *Store (one
// flat posting layout) and *ShardedStore (N hash-partitioned segments).
//
// Triple indexes handed out by MatchList and accepted by Triple are global:
// dense, insertion-ordered, and stable across the store's lifetime. Every
// match list is sorted by raw score descending with the global index as
// tiebreak — the canonical order all operators and oracles rely on.
type Graph interface {
	// Dict returns the term dictionary shared by every triple.
	Dict() *Dict
	// Len reports the number of triples.
	Len() int
	// Frozen reports whether the store is frozen (readable).
	Frozen() bool
	// Triple returns the triple at global index i.
	Triple(i int32) Triple
	// MatchList returns the global indexes of triples matching p, sorted by
	// raw score descending (global index ascending on ties). The result must
	// not be mutated.
	MatchList(p Pattern) []int32
	// Cardinality returns the number of triples matching p.
	Cardinality(p Pattern) int
	// MaxScore returns the maximum raw score among matches of p (0 if none) —
	// the normalisation constant of Definition 5.
	MaxScore(p Pattern) float64
	// NormalizedScores returns the normalised score list for p, sorted
	// descending, aligned with MatchList(p). Caller-owned.
	NormalizedScores(p Pattern) []float64
	// HasDuplicates reports whether any (s,p,o) key was added more than once.
	HasDuplicates() bool
	// Evaluate computes the complete answer set of q (Definition 6 scoring).
	Evaluate(q Query) []Answer
	// EvaluateWeighted is Evaluate with per-pattern weight multipliers.
	EvaluateWeighted(q Query, weights []float64) []Answer
	// Count returns the exact number of distinct answers to q.
	Count(q Query) int
	// Selectivity returns Count(q) over the product of pattern cardinalities.
	Selectivity(q Query) float64
	// PatternString renders a pattern with decoded constants.
	PatternString(p Pattern) string
	// QueryString renders a query with decoded constants.
	QueryString(q Query) string
	// Version reports the logical content version: 0 for a store frozen once
	// and never mutated, incremented by every live Insert. Compaction leaves
	// it unchanged (the visible triple set is identical). Caches keyed on
	// patterns or queries must be discarded when it moves.
	Version() uint64
	// Pin returns an immutable read view of the store's current contents: an
	// exact insertion-order prefix frozen at the moment of the call. Every
	// read through the pinned view — match lists, cardinalities,
	// normalisation constants, candidate enumeration — reflects that one
	// content version regardless of concurrent Inserts, so an operator tree
	// (or Evaluate call) built over a pin has full snapshot isolation.
	// Pinning an already pinned view returns the view itself. Must not be
	// called before Freeze.
	Pin() Graph
}

// ShardedGraph is the per-segment read interface of a hash-partitioned
// store, implemented by *ShardedStore and by its pinned views. The merged
// scan operator uses it to run one sub-scan per segment against shard-local
// match-list views and interleave them into exact global order.
type ShardedGraph interface {
	Graph
	// NumShards reports the number of segments.
	NumShards() int
	// ShardView returns segment i as a Graph over shard-local triple
	// indexes.
	ShardView(i int) Graph
	// GlobalIndexes returns the table mapping shard i's local triple indexes
	// to global indexes. The result must not be mutated; local indexes at or
	// beyond its length are not (yet) part of this view.
	GlobalIndexes(i int) []int32
}

// LiveGraph is the mutable extension of Graph: stores that accept inserts,
// deletes and updates after Freeze through a per-segment mutable head
// (retractions as per-key tombstones), merged into the frozen arenas on
// demand. Implemented by *Store (one head) and *ShardedStore (one head per
// segment, compacted independently).
type LiveGraph interface {
	Graph
	// Insert appends a triple live; it is immediately visible to readers.
	Insert(t Triple) error
	// InsertDeferred is Insert with any triggered automatic compaction
	// handed back to the caller instead of run inline (nil when none is
	// due). The durability layer's write-ordering mutex relies on it.
	InsertDeferred(t Triple) (compact func(), err error)
	// Delete retracts every live copy of the (s,p,o) key and returns how
	// many were removed; the retraction is immediately visible to readers.
	Delete(s, p, o ID) (int, error)
	// Update re-scores the (s,p,o) key latest-wins: all live copies are
	// retracted and one copy with t.Score inserted, atomically. Updating an
	// absent key inserts it.
	Update(t Triple) error
	// UpdateDeferred is Update with any triggered automatic compaction
	// handed back (see InsertDeferred).
	UpdateDeferred(t Triple) (compact func(), err error)
	// Compact merges every pending head (and L1 tier) into its frozen
	// segment, annihilating covered tombstones. Readers are never blocked
	// and answers are identical before and after.
	Compact()
	// SetHeadLimit sets the per-segment head size at which Insert compacts
	// automatically (0 = DefaultHeadLimit, negative = manual only).
	SetHeadLimit(n int)
	// SetL1Limit configures per-segment tiered compaction (positive n) or
	// restores single-level merges (0, the default).
	SetL1Limit(n int)
	// HeadLen reports the total number of un-compacted head triples.
	HeadLen() int
	// LiveLen reports the number of live (non-retracted) triples; Len keeps
	// counting retracted slots for index stability.
	LiveLen() int
	// Tombstones reports the number of pending (not yet compacted-away)
	// retraction keys; a full Compact drives it to zero.
	Tombstones() int
	// Ops reports applied mutation operations: the triple count at Freeze
	// plus one per Insert/Delete and two per Update. The durability layer's
	// store-side mirror of the WAL sequence.
	Ops() uint64
	// Compactions reports how many head merges have been performed.
	Compactions() uint64
}

// Compile-time interface checks for the live layer.
var (
	_ LiveGraph    = (*Store)(nil)
	_ LiveGraph    = (*ShardedStore)(nil)
	_ ShardedGraph = (*ShardedStore)(nil)
)

// matcher is the package-internal contract the shared evaluator needs beyond
// Graph: candidate enumeration for a (possibly variable-substituted) pattern
// without materialising a match list per recursion step.
type matcher interface {
	Graph
	// forCandidates calls f with every candidate triple for sub — a superset
	// of the exact matches, drawn from the cheapest applicable index.
	forCandidates(sub Pattern, f func(t Triple))
}

// Compile-time interface checks.
var (
	_ matcher = (*Store)(nil)
	_ matcher = (*ShardedStore)(nil)
)

// substPattern substitutes variables of p already bound in b, yielding the
// pattern whose candidates constrain the next recursion step.
func substPattern(p Pattern, vs *VarSet, b Binding) Pattern {
	subst := func(t Term) Term {
		if !t.IsVar {
			return t
		}
		if i := vs.Index(t.Name); i >= 0 && b[i] != NoID {
			return Const(b[i])
		}
		return t
	}
	return Pattern{S: subst(p.S), P: subst(p.P), O: subst(p.O)}
}

// evalOrder orders patterns by ascending cardinality, which keeps the
// backtracking join cheap and deterministic.
func evalOrder(g Graph, q Query) []int {
	order := make([]int, len(q.Patterns))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return g.Cardinality(q.Patterns[order[a]]) < g.Cardinality(q.Patterns[order[b]])
	})
	return order
}

// evaluateWeighted is the shared backtracking-join evaluator behind
// Evaluate and EvaluateWeighted on both store layouts. weights nil means all
// ones. Candidate enumeration order never affects the result: every
// derivation is visited, DedupMax keeps the maximum score per binding, and
// SortAnswers fixes the output order.
func evaluateWeighted(g matcher, q Query, weights []float64) []Answer {
	vs := NewVarSet(q)
	order := evalOrder(g, q)
	out := collectAnswers(g, q, vs, order, weights, nil)
	out = DedupMax(out)
	SortAnswers(out)
	return out
}

// collectAnswers runs the backtracking join and returns the raw (un-deduped,
// unsorted) derivations. level0 overrides candidate enumeration for the
// first join level only — the seam the shard-parallel evaluator fans out on
// (each shard enumerates its own level-0 candidates while deeper levels use
// the full matcher); nil means g's own candidates at every level.
func collectAnswers(g matcher, q Query, vs *VarSet, order []int, weights []float64, level0 func(Pattern, func(Triple))) []Answer {
	var out []Answer
	var rec func(step int, b Binding, score float64)
	rec = func(step int, b Binding, score float64) {
		if step == len(order) {
			out = append(out, Answer{Binding: b.Clone(), Score: score})
			return
		}
		pi := order[step]
		p := q.Patterns[pi]
		max := g.MaxScore(p)
		w := 1.0
		if weights != nil && weights[pi] > 0 {
			w = weights[pi]
		}
		emit := func(t Triple) {
			nb, ok := bindPattern(vs, p, t, b)
			if !ok {
				return
			}
			s := 0.0
			if max > 0 {
				s = w * t.Score / max
			}
			rec(step+1, nb, score+s)
		}
		sub := substPattern(p, vs, b)
		if step == 0 && level0 != nil {
			level0(sub, emit)
		} else {
			g.forCandidates(sub, emit)
		}
	}
	rec(0, NewBinding(vs.Len()), 0)
	return out
}

// countAnswers is the shared exact join-cardinality computation. Without
// duplicate triples every derivation is a distinct binding, so counting
// stays allocation-free; only duplicate-bearing stores pay for the dedup map.
func countAnswers(g matcher, q Query) int {
	vs := NewVarSet(q)
	order := evalOrder(g, q)
	if !g.HasDuplicates() {
		return countDerivations(g, q, vs, order, nil)
	}
	seen := make(map[BindingKey]bool)
	keyer := NewKeyer()
	var rec func(step int, b Binding)
	rec = func(step int, b Binding) {
		if step == len(order) {
			seen[keyer.Key(b)] = true
			return
		}
		p := q.Patterns[order[step]]
		g.forCandidates(substPattern(p, vs, b), func(t Triple) {
			if nb, ok := bindPattern(vs, p, t, b); ok {
				rec(step+1, nb)
			}
		})
	}
	rec(0, NewBinding(vs.Len()))
	return len(seen)
}

// countDerivations counts complete derivations without deduplication —
// exact on duplicate-free stores, where derivations and bindings are in
// bijection. level0 plays the same shard fan-out role as in collectAnswers.
func countDerivations(g matcher, q Query, vs *VarSet, order []int, level0 func(Pattern, func(Triple))) int {
	n := 0
	var rec func(step int, b Binding)
	rec = func(step int, b Binding) {
		if step == len(order) {
			n++
			return
		}
		p := q.Patterns[order[step]]
		emit := func(t Triple) {
			if nb, ok := bindPattern(vs, p, t, b); ok {
				rec(step+1, nb)
			}
		}
		sub := substPattern(p, vs, b)
		if step == 0 && level0 != nil {
			level0(sub, emit)
		} else {
			g.forCandidates(sub, emit)
		}
	}
	rec(0, NewBinding(vs.Len()))
	return n
}

// normalizedScores is the shared Definition 5 normalisation: each match's
// raw score divided by the head (maximum) score, aligned with MatchList(p).
// Centralised so the two layouts cannot diverge on the max==0 guard or the
// division — the bit-identical contract depends on identical floats.
func normalizedScores(g Graph, p Pattern) []float64 {
	l := g.MatchList(p)
	out := make([]float64, len(l))
	if len(l) == 0 {
		return out
	}
	max := g.Triple(l[0]).Score
	if max == 0 {
		return out
	}
	for i, ti := range l {
		out[i] = g.Triple(ti).Score / max
	}
	return out
}

// selectivity is the shared exact-selectivity computation: Count(q) divided
// by the product of per-pattern cardinalities (0 when any pattern is empty).
func selectivity(g Graph, q Query) float64 {
	prod := 1.0
	for _, p := range q.Patterns {
		c := g.Cardinality(p)
		if c == 0 {
			return 0
		}
		prod *= float64(c)
	}
	return float64(g.Count(q)) / prod
}

// patternString renders a pattern with constants decoded through d.
func patternString(d *Dict, p Pattern) string {
	f := func(t Term) string {
		if t.IsVar {
			return "?" + t.Name
		}
		return d.Decode(t.ID)
	}
	return fmt.Sprintf("〈%s %s %s〉", f(p.S), f(p.P), f(p.O))
}

// queryString renders a query with constants decoded through d.
func queryString(d *Dict, q Query) string {
	var b strings.Builder
	for i, p := range q.Patterns {
		if i > 0 {
			b.WriteString(" . ")
		}
		b.WriteString(patternString(d, p))
	}
	return b.String()
}
