package kg

import (
	"fmt"
	"strings"
)

// Triple is a scored 〈s p o〉 tuple (Definition 1). Score carries the raw,
// unnormalised triple score (e.g. extraction count, inlink count, retweets).
type Triple struct {
	S, P, O ID
	Score   float64
}

// Term is one position of a triple pattern: either a constant KG term or a
// variable (Definition 2). Variables are identified by name; the query
// compiler additionally assigns dense variable indexes (see Query).
type Term struct {
	IsVar bool
	Name  string // variable name without the leading '?', when IsVar
	ID    ID     // constant term ID, when !IsVar
}

// Var returns a variable term.
func Var(name string) Term {
	return Term{IsVar: true, Name: strings.TrimPrefix(name, "?")}
}

// Const returns a constant term for an already-encoded ID.
func Const(id ID) Term { return Term{ID: id} }

// Pattern is a triple pattern 〈S P O〉 (Definition 2).
type Pattern struct {
	S, P, O Term
}

// NewPattern builds a pattern from three terms.
func NewPattern(s, p, o Term) Pattern { return Pattern{S: s, P: p, O: o} }

// Vars returns the distinct variable names of the pattern in S,P,O order.
func (p Pattern) Vars() []string {
	var vs []string
	seen := map[string]bool{}
	for _, t := range []Term{p.S, p.P, p.O} {
		if t.IsVar && !seen[t.Name] {
			seen[t.Name] = true
			vs = append(vs, t.Name)
		}
	}
	return vs
}

// Matches reports whether triple t matches the pattern, ignoring variables
// (variables match anything; repeated variables must bind consistently).
// It never allocates — the head-overlay filters of a live store call it per
// head triple per lookup.
func (p Pattern) Matches(t Triple) bool {
	if !p.S.IsVar && p.S.ID != t.S {
		return false
	}
	if !p.P.IsVar && p.P.ID != t.P {
		return false
	}
	if !p.O.IsVar && p.O.ID != t.O {
		return false
	}
	if p.S.IsVar {
		if p.P.IsVar && p.S.Name == p.P.Name && t.S != t.P {
			return false
		}
		if p.O.IsVar && p.S.Name == p.O.Name && t.S != t.O {
			return false
		}
	}
	if p.P.IsVar && p.O.IsVar && p.P.Name == p.O.Name && t.P != t.O {
		return false
	}
	return true
}

// Key returns a canonical comparable key for the pattern, suitable for use as
// a map key in caches and statistics stores. Variable identity is erased to a
// positional marker so that 〈?x p o〉 and 〈?y p o〉 share statistics, which is
// correct because score distributions depend only on the constant positions.
func (p Pattern) Key() PatternKey {
	enc := func(t Term) ID {
		if t.IsVar {
			return NoID
		}
		return t.ID
	}
	// Repeated-variable patterns (e.g. 〈?x p ?x〉) are rare; distinguish them
	// with the shape bits so they do not share stats with 〈?x p ?y〉.
	shape := uint8(0)
	if p.S.IsVar && p.O.IsVar && p.S.Name == p.O.Name {
		shape |= 1
	}
	if p.S.IsVar && p.P.IsVar && p.S.Name == p.P.Name {
		shape |= 2
	}
	if p.P.IsVar && p.O.IsVar && p.P.Name == p.O.Name {
		shape |= 4
	}
	return PatternKey{S: enc(p.S), P: enc(p.P), O: enc(p.O), Shape: shape}
}

// PatternKey is a canonical, comparable rendering of a Pattern.
type PatternKey struct {
	S, P, O ID
	Shape   uint8
}

// String renders the pattern using raw IDs; use Store.PatternString for a
// human-readable rendering with decoded terms.
func (p Pattern) String() string {
	f := func(t Term) string {
		if t.IsVar {
			return "?" + t.Name
		}
		return fmt.Sprintf("#%d", t.ID)
	}
	return fmt.Sprintf("〈%s %s %s〉", f(p.S), f(p.P), f(p.O))
}

// Query is a triple pattern query (Definition 3): a set of triple patterns
// sharing variables. Patterns preserves user order; the executor may reorder.
type Query struct {
	Patterns []Pattern
}

// NewQuery builds a query over the given patterns.
func NewQuery(ps ...Pattern) Query { return Query{Patterns: ps} }

// Vars returns the distinct variable names across all patterns, in first-use
// order.
func (q Query) Vars() []string {
	var vs []string
	seen := map[string]bool{}
	for _, p := range q.Patterns {
		for _, v := range p.Vars() {
			if !seen[v] {
				seen[v] = true
				vs = append(vs, v)
			}
		}
	}
	return vs
}

// Clone returns a deep copy of the query.
func (q Query) Clone() Query {
	ps := make([]Pattern, len(q.Patterns))
	copy(ps, q.Patterns)
	return Query{Patterns: ps}
}

// Replace returns a copy of the query with pattern index i replaced by p.
func (q Query) Replace(i int, p Pattern) Query {
	c := q.Clone()
	c.Patterns[i] = p
	return c
}
