package kg

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// randomStore builds a store with duplicate-heavy random triples so every
// posting family has multi-entry buckets and duplicate (s,p,o) keys.
func randomStore(t testing.TB, seed int64, n int) *Store {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	st := NewStore(nil)
	for st.Dict().Len() < 12 {
		st.Dict().Encode(fmt.Sprintf("term%d", st.Dict().Len()))
	}
	for i := 0; i < n; i++ {
		tr := Triple{
			S:     ID(rng.Intn(8)),
			P:     ID(rng.Intn(3)),
			O:     ID(rng.Intn(8)),
			Score: float64(rng.Intn(50)), // small range forces score ties
		}
		if err := st.Add(tr); err != nil {
			t.Fatal(err)
		}
	}
	st.Freeze()
	return st
}

// oracleMatches is the naive reference: filter all triples, sort by score
// descending with index ascending tiebreak (insertion sort keeps the oracle
// independent of the store's own sort).
func oracleMatches(st *Store, p Pattern) []int32 {
	var out []int32
	for i := 0; i < st.Len(); i++ {
		if p.Matches(st.Triple(int32(i))) {
			out = append(out, int32(i))
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			a, b := st.Triple(out[j-1]), st.Triple(out[j])
			if a.Score > b.Score || (a.Score == b.Score && out[j-1] < out[j]) {
				break
			}
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

func equalLists(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestPostingsAgreeWithOracle is the Freeze-time property test: for every
// pattern shape — each posting family, the full scan, repeated-variable
// shapes and the S+O residual — MatchList agrees element-for-element with
// the naive filter+sort oracle.
func TestPostingsAgreeWithOracle(t *testing.T) {
	for trial := int64(0); trial < 10; trial++ {
		st := randomStore(t, 100+trial, 300)
		var pats []Pattern
		for id := 0; id < 8; id++ {
			s, o := Const(ID(id)), Const(ID(id))
			p := Const(ID(id % 3))
			pats = append(pats,
				NewPattern(s, Var("p"), Var("o")),            // byS
				NewPattern(Var("s"), p, Var("o")),            // byP
				NewPattern(Var("s"), Var("p"), o),            // byO
				NewPattern(Var("s"), p, o),                   // byPO
				NewPattern(s, p, Var("o")),                   // bySP
				NewPattern(s, p, o),                          // bySPO
				NewPattern(s, Var("p"), Const(ID((id+3)%8))), // S+O residual
				NewPattern(s, Var("x"), Var("x")),            // repeated vars, S bound
				NewPattern(Var("x"), Var("x"), o),            // repeated vars, O bound
				NewPattern(Var("x"), p, Var("x")),            // repeated vars, P bound
			)
		}
		pats = append(pats,
			NewPattern(Var("s"), Var("p"), Var("o")), // full scan
			NewPattern(Var("x"), Var("p"), Var("x")), // full scan, repeated
			NewPattern(Var("x"), Var("x"), Var("x")), // all repeated
		)
		for _, p := range pats {
			got := st.MatchList(p)
			want := oracleMatches(st, p)
			if !equalLists(got, want) {
				t.Fatalf("trial %d pattern %v: got %v want %v", trial, p, got, want)
			}
		}
	}
}

// TestFullyBoundKeepsDuplicates pins the duplicate contract chosen for the
// SPO index: duplicate (s,p,o) additions with different scores all appear in
// MatchList, score-sorted, and Cardinality counts them all.
func TestFullyBoundKeepsDuplicates(t *testing.T) {
	st := NewStore(nil)
	for _, sc := range []float64{10, 30, 20} {
		if err := st.AddSPO("a", "p", "b", sc); err != nil {
			t.Fatal(err)
		}
	}
	st.Freeze()
	a, _ := st.Dict().Lookup("a")
	p, _ := st.Dict().Lookup("p")
	b, _ := st.Dict().Lookup("b")
	pat := NewPattern(Const(a), Const(p), Const(b))
	l := st.MatchList(pat)
	if len(l) != 3 {
		t.Fatalf("duplicates: got %d matches want 3", len(l))
	}
	if got := []float64{st.Triple(l[0]).Score, st.Triple(l[1]).Score, st.Triple(l[2]).Score}; got[0] != 30 || got[1] != 20 || got[2] != 10 {
		t.Fatalf("duplicate scores out of order: %v", got)
	}
	if got := st.Cardinality(pat); got != 3 {
		t.Fatalf("cardinality: got %d want 3", got)
	}
	if got := st.MaxScore(pat); got != 30 {
		t.Fatalf("max score: got %v want 30", got)
	}
	// Count counts distinct answers, not derivations: the three duplicate
	// triples collapse to one binding, in line with Evaluate's DedupMax.
	q := NewQuery(pat)
	if got, want := st.Count(q), len(st.Evaluate(q)); got != want || got != 1 {
		t.Fatalf("count: got %d, Evaluate gives %d, want 1", got, want)
	}
	qv := NewQuery(NewPattern(Var("s"), Const(p), Const(b)))
	if got, want := st.Count(qv), len(st.Evaluate(qv)); got != want || got != 1 {
		t.Fatalf("var count: got %d, Evaluate gives %d, want 1", got, want)
	}
}

// TestResidualCacheSingleFlight hammers one residual pattern from many
// goroutines on a cold store and asserts the list was computed exactly once
// and every caller saw the same backing slice.
func TestResidualCacheSingleFlight(t *testing.T) {
	st := randomStore(t, 42, 500)
	pat := NewPattern(Const(ID(1)), Var("p"), Const(ID(2))) // S+O residual
	want := oracleMatches(st, pat)

	const workers = 32
	lists := make([][]int32, workers)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			lists[w] = st.MatchList(pat)
		}(w)
	}
	close(start)
	wg.Wait()

	if got := st.residualComputes.Load(); got != 1 {
		t.Fatalf("residual computes: got %d want 1 (single-flight broken)", got)
	}
	for w := 0; w < workers; w++ {
		if !equalLists(lists[w], want) {
			t.Fatalf("worker %d: wrong list", w)
		}
	}
}

// TestResidualCacheManyKeysConcurrent misses many distinct residual keys at
// once; meant to run under -race to exercise shard locking.
func TestResidualCacheManyKeysConcurrent(t *testing.T) {
	st := randomStore(t, 7, 400)
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				s := ID((w + rep) % 8)
				o := ID((w * rep) % 8)
				pat := NewPattern(Const(s), Var("p"), Const(o))
				got := st.MatchList(pat)
				for i := 1; i < len(got); i++ {
					if st.Triple(got[i]).Score > st.Triple(got[i-1]).Score {
						t.Error("residual list not sorted")
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	// Distinct keys only ever compute once each: 8×8 = 64 max.
	if got := st.residualComputes.Load(); got > 64 {
		t.Fatalf("residual computes: got %d want <= 64", got)
	}
}

// TestResidualCachePanicNotPoisoned: a panicking compute must not leave a
// permanently cached empty list behind — the next lookup retries.
func TestResidualCachePanicNotPoisoned(t *testing.T) {
	c := newListCache()
	key := PatternKey{S: 1, P: 2, O: 3}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic did not propagate")
			}
		}()
		c.get(key, func() []int32 { panic("compute bug") })
	}()
	got := c.get(key, func() []int32 { return []int32{7, 8} })
	if !equalLists(got, []int32{7, 8}) {
		t.Fatalf("post-panic lookup returned %v, cache poisoned", got)
	}
}

// TestMatchListZeroAllocs asserts the acceptance criterion directly: after
// Freeze, MatchList on every indexed shape performs zero allocations.
func TestMatchListZeroAllocs(t *testing.T) {
	st := randomStore(t, 3, 1000)
	shapes := map[string]Pattern{
		"byS":   NewPattern(Const(ID(1)), Var("p"), Var("o")),
		"byP":   NewPattern(Var("s"), Const(ID(1)), Var("o")),
		"byO":   NewPattern(Var("s"), Var("p"), Const(ID(1))),
		"byPO":  NewPattern(Var("s"), Const(ID(1)), Const(ID(2))),
		"bySP":  NewPattern(Const(ID(1)), Const(ID(1)), Var("o")),
		"bySPO": NewPattern(Const(ID(1)), Const(ID(1)), Const(ID(2))),
	}
	for name, pat := range shapes {
		pat := pat
		if allocs := testing.AllocsPerRun(100, func() {
			st.MatchList(pat)
		}); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", name, allocs)
		}
	}
	// Warm residual patterns — S+O bound and full scans — are also
	// allocation-free (cache hit).
	for name, res := range map[string]Pattern{
		"S+O":  NewPattern(Const(ID(1)), Var("p"), Const(ID(2))),
		"scan": NewPattern(Var("s"), Var("p"), Var("o")),
	} {
		res := res
		st.MatchList(res)
		if allocs := testing.AllocsPerRun(100, func() {
			st.MatchList(res)
		}); allocs != 0 {
			t.Errorf("warm residual %s: %v allocs/op, want 0", name, allocs)
		}
	}
}

// BenchmarkMatchList measures the indexed fast paths; run with -benchmem to
// see the 0 allocs/op.
func BenchmarkMatchList(b *testing.B) {
	st := randomStore(b, 5, 20000)
	shapes := []struct {
		name string
		pat  Pattern
	}{
		{"PO", NewPattern(Var("s"), Const(ID(1)), Const(ID(2)))},
		{"SP", NewPattern(Const(ID(1)), Const(ID(1)), Var("o"))},
		{"S", NewPattern(Const(ID(1)), Var("p"), Var("o"))},
		{"P", NewPattern(Var("s"), Const(ID(1)), Var("o"))},
		{"O", NewPattern(Var("s"), Var("p"), Const(ID(1)))},
		{"SPO", NewPattern(Const(ID(1)), Const(ID(1)), Const(ID(2)))},
		{"scan", NewPattern(Var("s"), Var("p"), Var("o"))},
		{"residual-warm", NewPattern(Const(ID(1)), Var("p"), Const(ID(2)))},
	}
	for _, sh := range shapes {
		b.Run(sh.name, func(b *testing.B) {
			st.MatchList(sh.pat) // warm residuals; no-op for fast paths
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st.MatchList(sh.pat)
			}
		})
	}
}

// BenchmarkFreeze measures the parallel posting build+sort.
func BenchmarkFreeze(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	triples := make([]Triple, 200000)
	for i := range triples {
		triples[i] = Triple{
			S:     ID(rng.Intn(5000)),
			P:     ID(rng.Intn(20)),
			O:     ID(rng.Intn(5000)),
			Score: rng.Float64() * 1000,
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		st := NewStore(nil)
		for _, tr := range triples {
			if err := st.Add(tr); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		st.Freeze()
	}
}
