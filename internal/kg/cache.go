package kg

import (
	"sync"
	"sync/atomic"
)

// listCacheHits / listCacheMisses are process-wide tallies across every
// listCache instance. Instances are per-snapshot and dropped wholesale on
// version changes, so a ratio must aggregate above them; process scope is the
// natural aggregation for the /metrics hit-ratio gauge (single-flight waiters
// count as hits — the list was not recomputed for them).
var listCacheHits, listCacheMisses atomic.Int64

// ListCacheStats reports cumulative merged/residual list-cache hits and
// misses across the process.
func ListCacheStats() (hits, misses int64) {
	return listCacheHits.Load(), listCacheMisses.Load()
}

// residualShards is the fan-out of the residual match-list cache. Sixteen
// shards keep lock contention negligible at the concurrency levels the
// engine runs at (a worker per core), while staying cheap to allocate per
// store.
const residualShards = 16

// listCache is a sharded, single-flight cache for computed match lists:
// residual shapes matchedByIndex cannot serve as a plain slice view
// (S+O-bound intersections and repeated-variable filters), per-snapshot
// frozen⊕head merges on a live store, and the sharded store's merged global
// lists. Keys hash to a shard; within a shard the first goroutine to miss
// computes the list while concurrent misses on the same key block on the
// entry's ready channel, so every list is computed at most once per cache
// lifetime (caches are dropped wholesale when their backing state changes).
type listCache struct {
	shards [residualShards]listShard
}

type listShard struct {
	mu sync.Mutex
	m  map[PatternKey]*listEntry
}

// listEntry is a cache slot. list is written exactly once, before ready is
// closed; readers must receive on ready before touching list.
type listEntry struct {
	ready chan struct{}
	list  []int32
}

func newListCache() *listCache {
	c := &listCache{}
	for i := range c.shards {
		c.shards[i].m = make(map[PatternKey]*listEntry)
	}
	return c
}

func (c *listCache) shard(k PatternKey) *listShard {
	// Cheap multiplicative mix of the key's fields; the shard count is tiny
	// so quality beyond "spreads distinct patterns" is wasted.
	h := uint32(k.S)*0x9e3779b1 ^ uint32(k.P)*0x85ebca77 ^ uint32(k.O)*0xc2b2ae3d ^ uint32(k.Shape)
	h ^= h >> 16
	return &c.shards[h%residualShards]
}

// get returns the cached list for k, invoking compute at most once across
// all concurrent callers of the same key (single-flight). compute runs
// outside the shard lock, so a slow residual computation never blocks
// lookups of other keys in the shard.
func (c *listCache) get(k PatternKey, compute func() []int32) []int32 {
	s := c.shard(k)
	s.mu.Lock()
	if e, ok := s.m[k]; ok {
		s.mu.Unlock()
		listCacheHits.Add(1)
		<-e.ready
		return e.list
	}
	e := &listEntry{ready: make(chan struct{})}
	s.m[k] = e
	s.mu.Unlock()
	listCacheMisses.Add(1)
	done := false
	defer func() {
		if !done {
			// compute panicked: drop the poisoned entry so later calls
			// retry instead of silently reading an empty list forever. The
			// panic still propagates to the computing goroutine, and
			// currently-blocked waiters are released (seeing the nil list
			// of this one failed attempt).
			s.mu.Lock()
			delete(s.m, k)
			s.mu.Unlock()
		}
		close(e.ready)
	}()
	e.list = compute()
	done = true
	return e.list
}
