package kg

import (
	"fmt"
	"sync"
	"testing"
)

func TestDictEncodeDecode(t *testing.T) {
	d := NewDict()
	a := d.Encode("alpha")
	b := d.Encode("beta")
	if a == b {
		t.Fatalf("distinct terms got same ID %d", a)
	}
	if got := d.Encode("alpha"); got != a {
		t.Fatalf("re-encode alpha: got %d want %d", got, a)
	}
	if got := d.Decode(a); got != "alpha" {
		t.Fatalf("decode: got %q want alpha", got)
	}
	if got := d.Decode(b); got != "beta" {
		t.Fatalf("decode: got %q want beta", got)
	}
	if d.Len() != 2 {
		t.Fatalf("len: got %d want 2", d.Len())
	}
}

func TestDictLookup(t *testing.T) {
	d := NewDict()
	if _, ok := d.Lookup("missing"); ok {
		t.Fatal("lookup of missing term reported present")
	}
	id := d.Encode("present")
	got, ok := d.Lookup("present")
	if !ok || got != id {
		t.Fatalf("lookup: got (%d,%v) want (%d,true)", got, ok, id)
	}
	if d.Len() != 1 {
		t.Fatalf("lookup must not intern; len=%d", d.Len())
	}
}

func TestDictDecodeUnknownPanics(t *testing.T) {
	d := NewDict()
	defer func() {
		if recover() == nil {
			t.Fatal("decode of unknown ID did not panic")
		}
	}()
	d.Decode(42)
}

func TestDictStrings(t *testing.T) {
	d := NewDict()
	terms := []string{"x", "y", "z"}
	for _, s := range terms {
		d.Encode(s)
	}
	got := d.Strings()
	if len(got) != 3 {
		t.Fatalf("strings len: got %d want 3", len(got))
	}
	for i, s := range terms {
		if got[i] != s {
			t.Fatalf("strings[%d]: got %q want %q", i, got[i], s)
		}
	}
	// Mutating the copy must not affect the dictionary.
	got[0] = "mutated"
	if d.Decode(0) != "x" {
		t.Fatal("Strings returned aliased storage")
	}
}

func TestDictConcurrentEncode(t *testing.T) {
	d := NewDict()
	const workers = 8
	const perWorker = 200
	var wg sync.WaitGroup
	ids := make([][]ID, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ids[w] = make([]ID, perWorker)
			for i := 0; i < perWorker; i++ {
				ids[w][i] = d.Encode(fmt.Sprintf("term-%d", i))
			}
		}(w)
	}
	wg.Wait()
	if d.Len() != perWorker {
		t.Fatalf("concurrent encode interned %d terms, want %d", d.Len(), perWorker)
	}
	for w := 1; w < workers; w++ {
		for i := 0; i < perWorker; i++ {
			if ids[w][i] != ids[0][i] {
				t.Fatalf("worker %d got ID %d for term-%d, worker 0 got %d", w, ids[w][i], i, ids[0][i])
			}
		}
	}
}
