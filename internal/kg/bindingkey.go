package kg

// This file implements the packed binding-key scheme used by the operator
// layer for deduplication and join probing. Binding.Key() builds a fresh
// string per call — one heap allocation per probe, which dominates operator
// cost once list retrieval is allocation-free. BindingKey replaces it with a
// plain uint64: bindings (or projections of bindings) over at most two
// variables pack the raw IDs directly into the key, and wider tuples go
// through a per-operator interner that assigns dense integer identities
// backed by a flat arena. Either way, map probes are integer-keyed and the
// steady state allocates nothing.

// BindingKey is a compact comparable key for a binding, or for a fixed
// projection of one. Keys are produced by a Keyer; two keys from the same
// Keyer are equal iff the (projected) bindings bind the same values. Keys
// from different Keyers are not comparable unless both Keyers are packed
// (at most two projected variables), in which case the key is a pure
// function of the projected IDs.
type BindingKey uint64

// Keyer produces BindingKeys for bindings of one query. The zero value is
// not usable; construct with NewKeyer or NewProjKeyer. A Keyer is not safe
// for concurrent use — operators own one each, matching their existing
// single-goroutine contract.
type Keyer struct {
	vars  []int // projection; nil = identity over the whole binding
	arena []ID  // interned tuples, width IDs each (interned mode only)
	table map[uint64][]BindingKey
}

// NewKeyer returns a Keyer over the whole binding (every variable of the
// query). Bindings of at most two variables never touch the interner.
func NewKeyer() *Keyer { return &Keyer{} }

// NewProjKeyer returns a Keyer over the given variable indexes (e.g. a rank
// join's shared variables). The projection slice is retained; callers must
// not mutate it. An empty (or nil) projection keys every binding identically
// — a rank join with no shared variables degrades to a cartesian product.
func NewProjKeyer(vars []int) *Keyer {
	if vars == nil {
		vars = []int{}
	}
	return &Keyer{vars: vars}
}

// Packed reports whether keys for width-w tuples avoid the interner.
func packed(w int) bool { return w <= 2 }

// Key returns the key for b's projection. Packed mode is allocation-free;
// interned mode allocates only when the tuple is new (amortised zero in the
// steady state of a dedup map).
func (k *Keyer) Key(b Binding) BindingKey {
	if k.vars == nil {
		if packed(len(b)) {
			switch len(b) {
			case 0:
				return 0
			case 1:
				return BindingKey(uint32(b[0]))
			default:
				return BindingKey(uint32(b[0])) | BindingKey(uint32(b[1]))<<32
			}
		}
		return k.intern(b, nil)
	}
	if packed(len(k.vars)) {
		switch len(k.vars) {
		case 0:
			return 0
		case 1:
			return BindingKey(uint32(b[k.vars[0]]))
		default:
			return BindingKey(uint32(b[k.vars[0]])) | BindingKey(uint32(b[k.vars[1]]))<<32
		}
	}
	return k.intern(b, k.vars)
}

// intern maps the projected tuple to a dense identity, probing an
// fnv-hashed bucket table with full equality checks so hash collisions can
// never conflate distinct tuples.
func (k *Keyer) intern(b Binding, vars []int) BindingKey {
	w := len(b)
	if vars != nil {
		w = len(vars)
	}
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	h := uint64(fnvOffset)
	if vars == nil {
		for _, v := range b {
			h = (h ^ uint64(uint32(v))) * fnvPrime
		}
	} else {
		for _, i := range vars {
			h = (h ^ uint64(uint32(b[i]))) * fnvPrime
		}
	}
	if k.table == nil {
		k.table = make(map[uint64][]BindingKey)
	}
	for _, id := range k.table[h] {
		off := int(id) * w
		stored := k.arena[off : off+w]
		if vars == nil {
			if equalIDs(stored, b) {
				return id
			}
		} else {
			match := true
			for j, i := range vars {
				if stored[j] != b[i] {
					match = false
					break
				}
			}
			if match {
				return id
			}
		}
	}
	id := BindingKey(len(k.arena) / w)
	if vars == nil {
		k.arena = append(k.arena, b...)
	} else {
		for _, i := range vars {
			k.arena = append(k.arena, b[i])
		}
	}
	k.table[h] = append(k.table[h], id)
	return id
}

func equalIDs(a []ID, b []ID) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Reset discards all interned identities while keeping the arena and table
// capacity, so a resettable operator's steady state stays allocation-free.
// Keys issued before Reset must not be compared with keys issued after.
func (k *Keyer) Reset() {
	k.arena = k.arena[:0]
	for h, bucket := range k.table {
		k.table[h] = bucket[:0]
	}
}
