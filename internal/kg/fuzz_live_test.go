package kg

import (
	"fmt"
	"testing"
)

// FuzzLiveStore fuzzes the live-ingest layer with mutation schedules decoded
// from the input bytes: interleaved inserts, per-shard compactions, whole
// store compactions and checkpoints, run against a sharded live store and
// checked — at every checkpoint and at the end — against a flat store
// rebuilt from scratch over the same triple prefix. The property is the
// tentpole contract itself: a mutable head plus merge-on-threshold must be
// observationally identical to a full re-freeze, for every schedule the
// fuzzer can dream up.
//
// Byte stream layout: data[0] picks the shard count, data[1] the head limit
// (0 = manual compaction only, so the fuzzer controls merge points), then
// each 3-byte chunk is one operation:
//
//	op := b[0] % 16
//	 0..10: insert 〈s p o〉 with s/p/o drawn from b[1..2], score = b[0]
//	 11:    compact shard b[1] % shards
//	 12:    compact all shards
//	 13..15: checkpoint (full comparison against the flat rebuild)
func FuzzLiveStore(f *testing.F) {
	// Seeds covering: plain inserts, insert+checkpoint, insert+compact
	// interleavings, per-shard compactions, duplicate-heavy streams.
	f.Add([]byte{2, 0, 3, 1, 2, 7, 9, 4, 13, 0, 0})
	f.Add([]byte{4, 3, 5, 200, 11, 6, 10, 2, 11, 1, 0, 14, 0, 0, 5, 200, 11, 12, 0, 0, 15, 0, 0})
	f.Add([]byte{1, 1, 8, 8, 8, 8, 8, 8, 13, 0, 0, 12, 0, 0, 13, 0, 0})
	f.Add([]byte{7, 2, 0, 255, 255, 1, 255, 255, 2, 255, 255, 11, 3, 0, 13, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		shards := 1 + int(data[0])%7
		headLimit := int(data[1]) % 8
		if headLimit == 0 {
			headLimit = -1 // manual only: the schedule's compact ops decide
		}

		dict := NewDict()
		for dict.Len() < 12 {
			dict.Encode(fmt.Sprintf("term%d", dict.Len()))
		}
		ss := NewShardedStore(dict, shards)
		ss.Freeze() // empty frozen segments: the whole store arrives live
		ss.SetHeadLimit(headLimit)

		var log []Triple
		checkpoints := 0
		check := func(label string) {
			flat := NewStore(dict)
			for _, tr := range log {
				if err := flat.Add(tr); err != nil {
					t.Fatal(err)
				}
			}
			flat.Freeze()
			if ss.Len() != flat.Len() {
				t.Fatalf("%s: live Len %d, oracle %d", label, ss.Len(), flat.Len())
			}
			if ss.HasDuplicates() != flat.HasDuplicates() {
				t.Fatalf("%s: HasDuplicates %v, oracle %v", label, ss.HasDuplicates(), flat.HasDuplicates())
			}
			for i := 0; i < flat.Len(); i++ {
				if ss.Triple(int32(i)) != flat.Triple(int32(i)) {
					t.Fatalf("%s: triple %d differs", label, i)
				}
			}
			for _, p := range shapePatterns() {
				if got, want := ss.MatchList(p), flat.MatchList(p); !equalLists(got, want) {
					t.Fatalf("%s pattern %v: list %v, oracle %v", label, p, got, want)
				}
				if got, want := ss.MaxScore(p), flat.MaxScore(p); got != want {
					t.Fatalf("%s pattern %v: max score %v, oracle %v", label, p, got, want)
				}
				if got, want := ss.Cardinality(p), flat.Cardinality(p); got != want {
					t.Fatalf("%s pattern %v: cardinality %d, oracle %d", label, p, got, want)
				}
			}
			q := NewQuery(
				NewPattern(Var("x"), Const(ID(0)), Var("y")),
				NewPattern(Var("y"), Const(ID(1)), Var("z")),
			)
			got, want := ss.Evaluate(q), flat.Evaluate(q)
			if len(got) != len(want) {
				t.Fatalf("%s: %d answers, oracle %d", label, len(got), len(want))
			}
			for i := range got {
				if got[i].Binding.Compare(want[i].Binding) != 0 || got[i].Score != want[i].Score {
					t.Fatalf("%s: answer %d is %v, oracle %v", label, i, got[i], want[i])
				}
			}
			if gc, wc := ss.Count(q), flat.Count(q); gc != wc {
				t.Fatalf("%s: count %d, oracle %d", label, gc, wc)
			}
		}

		ops := data[2:]
		for i := 0; i+3 <= len(ops) && len(log) < 200; i += 3 {
			b := ops[i : i+3]
			switch op := b[0] % 16; {
			case op <= 10:
				tr := Triple{
					S:     ID(b[1] % 8),
					P:     ID(b[2] % 3),
					O:     ID(b[2] / 3 % 8),
					Score: float64(b[0]),
				}
				if err := ss.Insert(tr); err != nil {
					t.Fatalf("insert %v: %v", tr, err)
				}
				log = append(log, tr)
			case op == 11:
				ss.CompactShard(int(b[1]) % shards)
			case op == 12:
				ss.Compact()
			default:
				if checkpoints < 6 {
					checkpoints++
					check(fmt.Sprintf("checkpoint %d (%d triples, head %d)", checkpoints, len(log), ss.HeadLen()))
				}
			}
		}
		check(fmt.Sprintf("final (%d triples, head %d, %d compactions)", len(log), ss.HeadLen(), ss.Compactions()))
	})
}

// FuzzMutableStore is FuzzLiveStore's delete-bearing sibling: the fuzzer
// drives interleaved inserts, deletes, latest-wins updates, per-shard and
// whole-store compactions — with and without the L1 tier — against a sharded
// live store, checked at every checkpoint against a flat store rebuilt from
// the *surviving* facts (retraction-of-every-copy semantics replayed by
// mutModel). Physical indexes diverge under deletes (dead slots stay), so
// the comparison is the resolved-triple one from assertMutatedAgree.
//
// Byte stream layout: data[0] picks the shard count, data[1] the head limit,
// data[2] the L1 limit (0 = single-level), then each 3-byte chunk is one op:
//
//	op := b[0] % 16
//	 0..8:  insert 〈s p o〉 drawn from b[1..2], score = b[0]
//	 9..10: delete key drawn from b[1..2]
//	 11:    update key drawn from b[1..2], score = b[0]
//	 12:    compact shard b[1] % shards
//	 13:    compact all shards
//	 14..15: checkpoint (full comparison against the survivor rebuild)
func FuzzMutableStore(f *testing.F) {
	// Seeds: insert/delete/checkpoint, delete-then-reinsert, update-heavy,
	// tiered with per-shard compactions, delete of an absent key.
	f.Add([]byte{2, 0, 0, 3, 1, 2, 7, 4, 13, 9, 1, 2, 14, 0, 0})
	f.Add([]byte{4, 3, 7, 5, 200, 11, 9, 200, 11, 6, 200, 11, 14, 0, 0, 12, 1, 0, 15, 0, 0})
	f.Add([]byte{1, 1, 0, 8, 8, 8, 11, 8, 8, 11, 8, 8, 14, 0, 0, 13, 0, 0, 15, 0, 0})
	f.Add([]byte{7, 2, 5, 0, 255, 255, 9, 255, 255, 10, 1, 1, 12, 3, 0, 14, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			return
		}
		shards := 1 + int(data[0])%7
		headLimit := int(data[1]) % 8
		if headLimit == 0 {
			headLimit = -1 // manual only: the schedule's compact ops decide
		}
		l1Limit := int(data[2]) % 32

		dict := NewDict()
		for dict.Len() < 12 {
			dict.Encode(fmt.Sprintf("term%d", dict.Len()))
		}
		ss := NewShardedStore(dict, shards)
		ss.Freeze() // empty frozen segments: the whole store arrives live
		ss.SetHeadLimit(headLimit)
		ss.SetL1Limit(l1Limit)

		model := &mutModel{}
		ops := 0
		checkpoints := 0
		check := func(label string) {
			flat := NewStore(dict)
			for _, tr := range model.survivors {
				if err := flat.Add(tr); err != nil {
					t.Fatal(err)
				}
			}
			flat.Freeze()
			assertMutatedAgree(t, label, ss, flat)
		}

		stream := data[3:]
		for i := 0; i+3 <= len(stream) && ops < 200; i += 3 {
			b := stream[i : i+3]
			key := func() (ID, ID, ID) {
				return ID(b[1] % 8), ID(b[2] % 3), ID(b[2] / 3 % 8)
			}
			switch op := b[0] % 16; {
			case op <= 8:
				s, p, o := key()
				tr := Triple{S: s, P: p, O: o, Score: float64(b[0])}
				if err := ss.Insert(tr); err != nil {
					t.Fatalf("insert %v: %v", tr, err)
				}
				model.insert(tr)
				ops++
			case op <= 10:
				s, p, o := key()
				removed, err := ss.Delete(s, p, o)
				if err != nil {
					t.Fatalf("delete: %v", err)
				}
				if want := model.delete(s, p, o); removed != want {
					t.Fatalf("delete removed %d copies, model says %d", removed, want)
				}
				ops++
			case op == 11:
				s, p, o := key()
				tr := Triple{S: s, P: p, O: o, Score: float64(b[0])}
				if err := ss.Update(tr); err != nil {
					t.Fatalf("update %v: %v", tr, err)
				}
				model.update(tr)
				ops++
			case op == 12:
				ss.CompactShard(int(b[1]) % shards)
			case op == 13:
				ss.Compact()
			default:
				if checkpoints < 6 {
					checkpoints++
					check(fmt.Sprintf("checkpoint %d (%d survivors, head %d, tombs %d)",
						checkpoints, len(model.survivors), ss.HeadLen(), ss.Tombstones()))
				}
			}
		}
		check(fmt.Sprintf("final (%d survivors, head %d, tombs %d)", len(model.survivors), ss.HeadLen(), ss.Tombstones()))
		ss.Compact()
		if ss.Tombstones() != 0 {
			t.Fatalf("full Compact left %d tombstones", ss.Tombstones())
		}
		check("after full compact")
	})
}
