package kg

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// ShardedStore is a Graph over N hash-partitioned segments: every triple is
// routed to a shard by its subject ID, each shard is an independent *Store
// sharing one dictionary, and Freeze freezes all shards in parallel (each
// shard's posting sorts additionally fan out over their own worker pool).
// After Freeze the store stays live: Insert routes new triples into the
// owning shard's mutable head, and each shard compacts its own head into its
// frozen arena independently — compacting one shard never touches, or blocks
// queries on, any other shard, because readers work exclusively off
// immutable per-shard snapshots and an immutable directory snapshot.
//
// Partitioning by subject has two load-bearing consequences:
//
//   - all copies of one (s,p,o) key live in one shard, so per-shard duplicate
//     detection and per-shard dedup remain exact;
//   - a pattern with a bound subject is answered entirely by one shard, and
//     two triples in different shards can only collapse onto the same binding
//     when the pattern's subject is a variable outside the query's variable
//     set (every other shape captures or pins the subject).
//
// Global triple indexes are insertion-ordered across the whole sharded store
// (a per-triple directory maps them to shard-local indexes, and each shard
// keeps the inverse table). Because a shard's local order is the global
// insertion order restricted to that shard — live inserts append to shard
// and directory in lockstep — per-shard score-sorted postings interleave
// into exactly the unsharded match-list order — the property that makes
// sharded execution bit-identical to the flat layout.
//
// Memory overhead versus a flat Store is 12 bytes per triple (directory plus
// inverse table); the per-shard posting arenas sum to the flat layout's size.
type ShardedStore struct {
	dict   *Dict
	shards []*Store
	frozen bool

	// mu serialises mutators (Insert, Compact-all bookkeeping). Readers
	// never take it.
	mu sync.Mutex
	// Mutator-side directory: global index → owning shard and shard-local
	// index, plus the inverse table global[s][l] = global index of shard s's
	// triple l. Readers use the dir snapshot below once frozen.
	locShard []int32
	locIdx   []int32
	global   [][]int32

	// ops mirrors Store.ops across the whole sharded store: the global
	// triple count at Freeze, +1 per Insert or Delete, +2 per Update.
	// Mutator-side (guarded by mu); readers see the dir snapshot's copy.
	ops uint64

	// dir is the immutable directory snapshot readers use after Freeze;
	// republished on every live mutation (and refreshed after shard
	// compactions so pins capture the merged per-shard states).
	dir atomic.Pointer[shardedDir]
	// version counts live mutations (see Graph.Version).
	version atomic.Uint64

	// merged caches materialised global match lists for the generic
	// Graph.MatchList path (cold paths: statistics, oracles), keyed by the
	// content version so live inserts invalidate it wholesale. The hot query
	// path never materialises — ShardedListScan merges per-shard views.
	merged atomic.Pointer[versionedLists]

	// pins counts Pin calls (cumulative; see Store.pins).
	pins atomic.Int64
}

// Pins reports how many snapshot views the sharded store has handed out.
func (ss *ShardedStore) Pins() int64 { return ss.pins.Load() }

// CompactionStats aggregates the per-shard tiered/full compaction counters
// and durations (see Store.CompactionStats).
func (ss *ShardedStore) CompactionStats() (full, tiered uint64, fullNS, tieredNS int64) {
	for _, sh := range ss.shards {
		f, t, fns, tns := sh.CompactionStats()
		full += f
		tiered += t
		fullNS += fns
		tieredNS += tns
	}
	return full, tiered, fullNS, tieredNS
}

// shardedDir is one immutable directory snapshot: the global→shard mapping
// and its inverse at a single content version, together with the per-shard
// storeState snapshots captured at the same instant — so a pin is one
// pointer load and every shard view is exactly in lockstep with the
// directory (len(global[i]) == len(states[i].triples), always). Backing
// arrays are shared with newer snapshots (appends only ever write beyond
// every published snapshot's length).
type shardedDir struct {
	locShard []int32
	locIdx   []int32
	global   [][]int32
	states   []*storeState
	// ops is the sharded store's operation count at publish (see
	// ShardedStore.ops).
	ops uint64
}

// versionedLists pairs a merged-list cache with the content version it was
// built for.
type versionedLists struct {
	version uint64
	cache   *listCache
}

// NewShardedStore returns an empty sharded store with n segments using the
// given dictionary (or a fresh one if dict is nil). n < 1 is clamped to 1.
func NewShardedStore(dict *Dict, n int) *ShardedStore {
	if dict == nil {
		dict = NewDict()
	}
	if n < 1 {
		n = 1
	}
	ss := &ShardedStore{
		dict:   dict,
		shards: make([]*Store, n),
		global: make([][]int32, n),
	}
	for i := range ss.shards {
		ss.shards[i] = NewStore(dict)
	}
	return ss
}

// NewShardedStoreFrom partitions an existing store's triples into n segments
// (sharing its dictionary) and freezes the result. st itself is left
// untouched — in particular it is not frozen if it was not already.
func NewShardedStoreFrom(st *Store, n int) *ShardedStore {
	ss := NewShardedStore(st.dict, n)
	for _, t := range st.allTriples() {
		if err := ss.Add(t); err != nil {
			// st accepted the triple, so the shard must too.
			panic(fmt.Sprintf("kg: resharding valid triple failed: %v", err))
		}
	}
	ss.Freeze()
	return ss
}

// shardFor routes a subject ID to its shard.
func (ss *ShardedStore) shardFor(s ID) int {
	h := uint32(s) * 0x9e3779b1
	h ^= h >> 16
	return int(h % uint32(len(ss.shards)))
}

// NumShards reports the number of segments.
func (ss *ShardedStore) NumShards() int { return len(ss.shards) }

// Shard returns segment i. The segment is a plain Store; after Freeze it
// serves zero-alloc shard-local match-list views (plus its own head overlay
// while un-compacted inserts are pending).
func (ss *ShardedStore) Shard(i int) *Store { return ss.shards[i] }

// ShardView implements ShardedGraph: segment i as a Graph over shard-local
// indexes.
func (ss *ShardedStore) ShardView(i int) Graph { return ss.shards[i] }

// GlobalIndexes returns the table mapping shard s's local triple indexes to
// global indexes, as of the current directory snapshot. The result must not
// be mutated. Under a concurrent insert the owning shard can be momentarily
// ahead of the directory; callers treat local indexes beyond the table as
// not-yet-inserted.
func (ss *ShardedStore) GlobalIndexes(s int) []int32 {
	if d := ss.dir.Load(); d != nil {
		return d.global[s]
	}
	return ss.global[s]
}

// Dict returns the shared term dictionary.
func (ss *ShardedStore) Dict() *Dict { return ss.dict }

// Len reports the total number of triples across all shards. On a live
// store it is monotone non-decreasing under concurrent inserts.
func (ss *ShardedStore) Len() int {
	if d := ss.dir.Load(); d != nil {
		return len(d.locShard)
	}
	return len(ss.locShard)
}

// Frozen reports whether Freeze has been called.
func (ss *ShardedStore) Frozen() bool { return ss.frozen }

// appendDir records a triple routed to shard si at shard-local index li.
func (ss *ShardedStore) appendDir(si, li int) {
	ss.locShard = append(ss.locShard, int32(si))
	ss.locIdx = append(ss.locIdx, int32(li))
	ss.global[si] = append(ss.global[si], int32(len(ss.locShard)-1))
}

// publishDir snapshots the mutator-side directory for readers. The outer
// global slice is copied (its inner headers change length per insert); the
// int32 backing arrays are shared, which is safe because appends only write
// beyond every published length and the pointer store is an atomic release.
// Per-shard states are captured in the same snapshot: mutations are
// serialised by ss.mu and always update the shard before publishing, and
// merges never change a shard's triple count, so every captured state covers
// exactly its directory rows.
func (ss *ShardedStore) publishDir() {
	states := make([]*storeState, len(ss.shards))
	for i, sh := range ss.shards {
		states[i] = sh.state()
	}
	ss.dir.Store(&shardedDir{
		locShard: ss.locShard,
		locIdx:   ss.locIdx,
		global:   append([][]int32(nil), ss.global...),
		states:   states,
		ops:      ss.ops,
	})
}

// refreshDir republishes a content-identical directory snapshot so it
// captures the shards' latest post-merge states; without it a pin taken
// after a shard compaction would keep serving the shard's slower (and
// memory-pinning) pre-merge snapshot.
func (ss *ShardedStore) refreshDir() {
	ss.mu.Lock()
	if ss.frozen {
		ss.publishDir()
	}
	ss.mu.Unlock()
}

// Add routes a scored triple to its subject's shard (before Freeze).
func (ss *ShardedStore) Add(t Triple) error {
	if ss.frozen {
		return ErrFrozen
	}
	si := ss.shardFor(t.S)
	sh := ss.shards[si]
	if err := sh.Add(t); err != nil {
		return err
	}
	ss.appendDir(si, sh.Len()-1)
	return nil
}

// AddSPO encodes the three terms and appends the triple.
func (ss *ShardedStore) AddSPO(s, p, o string, score float64) error {
	return ss.Add(Triple{
		S:     ss.dict.Encode(s),
		P:     ss.dict.Encode(p),
		O:     ss.dict.Encode(o),
		Score: score,
	})
}

// Insert appends a scored triple live: the triple lands in its subject
// shard's mutable head (possibly triggering that shard's automatic
// compaction) and the directory snapshot is republished. The shard is
// always updated before the directory, so every directory entry has its
// triple present; safe for concurrent use with readers and other inserters.
// Before Freeze it behaves like Add.
//
// An automatic compaction runs after the directory lock is released, and
// the posting rebuild itself runs outside the shard lock too (triples
// inserted meanwhile are folded back into the head at publish): neither
// readers nor writers — of this shard or any other — wait for a merge.
func (ss *ShardedStore) Insert(t Triple) error {
	compact, err := ss.InsertDeferred(t)
	if compact != nil {
		compact()
	}
	return err
}

// InsertDeferred is Insert with any triggered automatic compaction split out
// (see Store.InsertDeferred).
func (ss *ShardedStore) InsertDeferred(t Triple) (compact func(), err error) {
	ss.mu.Lock()
	if !ss.frozen {
		err := ss.Add(t)
		ss.mu.Unlock()
		return nil, err
	}
	si := ss.shardFor(t.S)
	sh := ss.shards[si]
	need, err := sh.insert(t)
	if err != nil {
		ss.mu.Unlock()
		return nil, err
	}
	ss.appendDir(si, sh.Len()-1)
	ss.ops++
	ss.publishDir()
	ss.version.Add(1)
	ss.mu.Unlock()
	if need {
		return func() { sh.compactIfNeeded(); ss.refreshDir() }, nil
	}
	return nil, nil
}

// Delete retracts every live copy of the (s,p,o) key from its subject's
// shard (all copies of one key share a shard) and returns how many were
// removed. The retraction — tombstone, version bump and directory snapshot —
// publishes atomically with respect to pins: a view pinned before Delete
// returns sees every copy, one pinned after sees none. Returns ErrNotLive
// before Freeze.
func (ss *ShardedStore) Delete(s, p, o ID) (int, error) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if !ss.frozen {
		return 0, ErrNotLive
	}
	removed, err := ss.shards[ss.shardFor(s)].Delete(s, p, o)
	if err != nil {
		return 0, err
	}
	ss.ops++
	ss.publishDir()
	ss.version.Add(1)
	return removed, nil
}

// DeleteSPO retracts every live copy of the key named by the three terms;
// unknown terms return (0, nil) without interning.
func (ss *ShardedStore) DeleteSPO(s, p, o string) (int, error) {
	sid, ok := ss.dict.Lookup(s)
	if !ok {
		return 0, nil
	}
	pid, ok := ss.dict.Lookup(p)
	if !ok {
		return 0, nil
	}
	oid, ok := ss.dict.Lookup(o)
	if !ok {
		return 0, nil
	}
	return ss.Delete(sid, pid, oid)
}

// Update re-scores the (s,p,o) key latest-wins in its subject's shard (see
// Store.Update for the atomicity contract).
func (ss *ShardedStore) Update(t Triple) error {
	compact, err := ss.UpdateDeferred(t)
	if compact != nil {
		compact()
	}
	return err
}

// UpdateDeferred is Update with any triggered automatic compaction split out
// (see Store.InsertDeferred).
func (ss *ShardedStore) UpdateDeferred(t Triple) (compact func(), err error) {
	ss.mu.Lock()
	if !ss.frozen {
		ss.mu.Unlock()
		return nil, ErrNotLive
	}
	si := ss.shardFor(t.S)
	sh := ss.shards[si]
	need, err := sh.update(t)
	if err != nil {
		ss.mu.Unlock()
		return nil, err
	}
	ss.appendDir(si, sh.Len()-1)
	ss.ops += 2
	ss.publishDir()
	ss.version.Add(1)
	ss.mu.Unlock()
	if need {
		return func() { sh.compactIfNeeded(); ss.refreshDir() }, nil
	}
	return nil, nil
}

// UpdateSPO encodes the three terms and applies a latest-wins re-score.
func (ss *ShardedStore) UpdateSPO(s, p, o string, score float64) error {
	return ss.Update(Triple{
		S:     ss.dict.Encode(s),
		P:     ss.dict.Encode(p),
		O:     ss.dict.Encode(o),
		Score: score,
	})
}

// InsertSPO encodes the three terms and inserts the triple live.
func (ss *ShardedStore) InsertSPO(s, p, o string, score float64) error {
	return ss.Insert(Triple{
		S:     ss.dict.Encode(s),
		P:     ss.dict.Encode(p),
		O:     ss.dict.Encode(o),
		Score: score,
	})
}

// Freeze freezes every shard concurrently and publishes the read-side
// directory snapshot. Add must not be called afterwards (Insert may). Like
// Store.Freeze it is idempotent but must be called from a single goroutine;
// read from as many as you like afterwards.
func (ss *ShardedStore) Freeze() {
	if ss.frozen {
		return
	}
	var wg sync.WaitGroup
	for _, sh := range ss.shards {
		wg.Add(1)
		go func(sh *Store) {
			defer wg.Done()
			sh.Freeze()
		}(sh)
	}
	wg.Wait()
	ss.ops = uint64(len(ss.locShard))
	ss.publishDir()
	ss.frozen = true
}

// Compact merges every shard's pending head (and L1 tier) into its frozen
// arena, in parallel across shards, then refreshes the directory snapshot.
// Readers are never blocked; answers are identical before and after.
func (ss *ShardedStore) Compact() {
	var wg sync.WaitGroup
	for _, sh := range ss.shards {
		wg.Add(1)
		go func(sh *Store) {
			defer wg.Done()
			sh.Compact()
		}(sh)
	}
	wg.Wait()
	ss.refreshDir()
}

// CompactShard merges shard i's head only. Other shards' snapshots are left
// physically untouched, so the merge cost is proportional to one segment and
// queries on other shards proceed completely undisturbed.
func (ss *ShardedStore) CompactShard(i int) {
	ss.shards[i].Compact()
	ss.refreshDir()
}

// SetHeadLimit sets every shard's automatic-compaction threshold (the limit
// applies per segment, not to the aggregate head size).
func (ss *ShardedStore) SetHeadLimit(n int) {
	for _, sh := range ss.shards {
		sh.SetHeadLimit(n)
	}
}

// SetL1Limit configures every shard's tiered compaction (the threshold
// applies per segment; see Store.SetL1Limit).
func (ss *ShardedStore) SetL1Limit(n int) {
	for _, sh := range ss.shards {
		sh.SetL1Limit(n)
	}
}

// HeadLen reports the total number of un-compacted head triples across all
// shards.
func (ss *ShardedStore) HeadLen() int {
	n := 0
	for _, sh := range ss.shards {
		n += sh.HeadLen()
	}
	return n
}

// L1Len reports the total number of physical triple slots the shards' L1
// tiers cover.
func (ss *ShardedStore) L1Len() int {
	n := 0
	for _, sh := range ss.shards {
		n += sh.L1Len()
	}
	return n
}

// Tombstones reports the total number of pending tombstones across shards.
func (ss *ShardedStore) Tombstones() int {
	n := 0
	for _, sh := range ss.shards {
		n += sh.Tombstones()
	}
	return n
}

// Ops reports applied mutation operations (see Store.Ops).
func (ss *ShardedStore) Ops() uint64 {
	if d := ss.dir.Load(); d != nil {
		return d.ops
	}
	return uint64(len(ss.locShard))
}

// LiveLen reports the number of live (non-retracted) triples across shards;
// Len keeps counting retracted slots.
func (ss *ShardedStore) LiveLen() int {
	if d := ss.dir.Load(); d != nil {
		n := 0
		for _, s := range d.states {
			n += len(s.triples) - s.dead
		}
		return n
	}
	return len(ss.locShard)
}

// Compactions reports the total number of head merges across all shards.
func (ss *ShardedStore) Compactions() uint64 {
	var n uint64
	for _, sh := range ss.shards {
		n += sh.Compactions()
	}
	return n
}

// Version reports the logical content version (see Graph.Version).
func (ss *ShardedStore) Version() uint64 { return ss.version.Load() }

// HasDuplicates reports whether any shard holds duplicate (s,p,o) keys.
// Identical keys share a subject and therefore a shard, so this is exact —
// head triples included.
func (ss *ShardedStore) HasDuplicates() bool {
	for _, sh := range ss.shards {
		if sh.HasDuplicates() {
			return true
		}
	}
	return false
}

// Triple returns the triple at global index i. The shard is always at least
// as new as the directory snapshot, so every directory entry resolves.
func (ss *ShardedStore) Triple(i int32) Triple {
	if d := ss.dir.Load(); d != nil {
		return ss.shards[d.locShard[i]].Triple(d.locIdx[i])
	}
	return ss.shards[ss.locShard[i]].Triple(ss.locIdx[i])
}

// subjectShard returns the single shard able to match p when p's subject is
// bound, and ok=false otherwise.
func (ss *ShardedStore) subjectShard(p Pattern) (*Store, bool) {
	if p.S.IsVar {
		return nil, false
	}
	return ss.shards[ss.shardFor(p.S.ID)], true
}

// Cardinality returns the number of triples matching p — the aggregate over
// all shards (heads included), which is what the planner's cost model must
// see. A bound subject pins the single owning shard; every other shape sums
// per-shard cardinalities without materialising a merged list.
func (ss *ShardedStore) Cardinality(p Pattern) int {
	if sh, ok := ss.subjectShard(p); ok {
		return sh.Cardinality(p)
	}
	n := 0
	for _, sh := range ss.shards {
		n += sh.Cardinality(p)
	}
	return n
}

// MaxScore returns the global maximum raw score among matches of p — the
// Definition 5 normalisation constant. Per-shard lists are score-sorted, so
// this is one head peek (plus a head-overlay probe) per shard.
func (ss *ShardedStore) MaxScore(p Pattern) float64 {
	if sh, ok := ss.subjectShard(p); ok {
		return sh.MaxScore(p)
	}
	max := 0.0
	for _, sh := range ss.shards {
		if m := sh.MaxScore(p); m > max {
			max = m
		}
	}
	return max
}

// MatchList returns the global indexes of triples matching p in canonical
// order (score descending, global index ascending on ties). The merged list
// is materialised once per pattern key behind a single-flight cache keyed by
// the content version (live inserts start a fresh cache); the hot query path
// (ShardedListScan) never calls this — it merges the per-shard views.
func (ss *ShardedStore) MatchList(p Pattern) []int32 {
	if !ss.frozen {
		panic("kg: MatchList before Freeze")
	}
	v := ss.version.Load()
	vl := ss.merged.Load()
	if vl == nil || vl.version < v {
		// Advance only: a reader carrying a stale version load must not
		// evict a fresher cache another reader installed. A reader that
		// loses the race may fill a cache labelled newer than its own
		// version read; entries are computed from the live directory either
		// way, and sequential flows (the exactness contract) see one
		// version at a time.
		fresh := &versionedLists{version: v, cache: newListCache()}
		if ss.merged.CompareAndSwap(vl, fresh) {
			vl = fresh
		} else {
			vl = ss.merged.Load()
		}
	}
	return vl.cache.get(p.Key(), func() []int32 { return ss.mergeMatches(p) })
}

// mergeMatches translates every shard's match list to global indexes and
// restores canonical global order. Shard-local indexes not yet covered by
// the directory snapshot (a concurrent insert between the two loads) are
// treated as not yet inserted.
func (ss *ShardedStore) mergeMatches(p Pattern) []int32 {
	d := ss.dir.Load()
	var out []int32
	for si, sh := range ss.shards {
		glob := d.global[si]
		for _, li := range sh.MatchList(p) {
			if int(li) < len(glob) {
				out = append(out, glob[li])
			}
		}
	}
	sort.Slice(out, func(a, b int) bool {
		ta, tb := ss.Triple(out[a]), ss.Triple(out[b])
		if ta.Score != tb.Score {
			return ta.Score > tb.Score
		}
		return out[a] < out[b]
	})
	return out
}

// NormalizedScores returns the normalised score list for p, sorted
// descending, aligned with MatchList(p). The slice is freshly allocated and
// owned by the caller.
func (ss *ShardedStore) NormalizedScores(p Pattern) []float64 {
	return normalizedScores(ss, p)
}

// forCandidates implements matcher. A bound subject pins one shard; every
// other shape unions the shards' candidate postings. Enumeration order is
// irrelevant to the shared evaluator's results.
func (ss *ShardedStore) forCandidates(sub Pattern, f func(t Triple)) {
	if sh, ok := ss.subjectShard(sub); ok {
		sh.forCandidates(sub, f)
		return
	}
	for _, sh := range ss.shards {
		sh.forCandidates(sub, f)
	}
}

// Evaluate computes the complete answer set of q (Definition 6 scoring),
// identical to the flat store's evaluator over the same triples. The whole
// evaluation runs over one pinned view — every recursion level sees one
// content version — and on a multi-segment store the first join level fans
// out across shards: each shard enumerates its own level-0 candidates on its
// own goroutine while deeper levels probe the whole store, and the per-shard
// derivations are concatenated, deduplicated and sorted exactly like the
// sequential walk — level-0 candidate sets are disjoint across shards, so
// the derivation multiset is identical and DedupMax/SortAnswers normalise
// the order.
func (ss *ShardedStore) Evaluate(q Query) []Answer {
	return ss.pin().Evaluate(q)
}

// EvaluateWeighted is Evaluate with per-pattern weight multipliers.
func (ss *ShardedStore) EvaluateWeighted(q Query, weights []float64) []Answer {
	return ss.pin().EvaluateWeighted(q, weights)
}

// Count returns the exact number of distinct answers to q, over one pinned
// view. Duplicate-free stores count derivations with the same per-shard
// level-0 fan-out as Evaluate; duplicate-bearing stores need one global
// binding-dedup set and fall back to the sequential walk.
func (ss *ShardedStore) Count(q Query) int {
	return ss.pin().Count(q)
}

// Selectivity returns the exact join selectivity φ of q, over one pinned
// view.
func (ss *ShardedStore) Selectivity(q Query) float64 {
	return ss.pin().Selectivity(q)
}

// PatternString renders a pattern with decoded constants.
func (ss *ShardedStore) PatternString(p Pattern) string { return patternString(ss.dict, p) }

// QueryString renders a query with decoded constants.
func (ss *ShardedStore) QueryString(q Query) string { return queryString(ss.dict, q) }
