package kg

import (
	"fmt"
	"sort"
	"sync"
)

// ShardedStore is a Graph over N hash-partitioned segments: every triple is
// routed to a shard by its subject ID, each shard is an independent *Store
// sharing one dictionary, and Freeze freezes all shards in parallel (each
// shard's posting sorts additionally fan out over their own worker pool).
//
// Partitioning by subject has two load-bearing consequences:
//
//   - all copies of one (s,p,o) key live in one shard, so per-shard duplicate
//     detection and per-shard dedup remain exact;
//   - a pattern with a bound subject is answered entirely by one shard, and
//     two triples in different shards can only collapse onto the same binding
//     when the pattern's subject is a variable outside the query's variable
//     set (every other shape captures or pins the subject).
//
// Global triple indexes are insertion-ordered across the whole sharded store
// (a per-triple directory maps them to shard-local indexes, and each shard
// keeps the inverse table). Because a shard's local order is the global
// insertion order restricted to that shard, per-shard score-sorted postings
// interleave into exactly the unsharded match-list order — the property that
// makes sharded execution bit-identical to the flat layout.
//
// Memory overhead versus a flat Store is 12 bytes per triple (directory plus
// inverse table); the per-shard posting arenas sum to the flat layout's size.
type ShardedStore struct {
	dict   *Dict
	shards []*Store
	frozen bool

	// Directory: global index → owning shard and shard-local index.
	locShard []int32
	locIdx   []int32
	// Inverse table: global[s][l] is the global index of shard s's triple l.
	global [][]int32

	// merged caches materialised global match lists for the generic
	// Graph.MatchList path (cold paths: statistics, oracles). The hot query
	// path never materialises — ShardedListScan merges per-shard views.
	merged *listCache
}

// NewShardedStore returns an empty sharded store with n segments using the
// given dictionary (or a fresh one if dict is nil). n < 1 is clamped to 1.
func NewShardedStore(dict *Dict, n int) *ShardedStore {
	if dict == nil {
		dict = NewDict()
	}
	if n < 1 {
		n = 1
	}
	ss := &ShardedStore{
		dict:   dict,
		shards: make([]*Store, n),
		global: make([][]int32, n),
		merged: newListCache(),
	}
	for i := range ss.shards {
		ss.shards[i] = NewStore(dict)
	}
	return ss
}

// NewShardedStoreFrom partitions an existing store's triples into n segments
// (sharing its dictionary) and freezes the result. st itself is left
// untouched — in particular it is not frozen if it was not already.
func NewShardedStoreFrom(st *Store, n int) *ShardedStore {
	ss := NewShardedStore(st.dict, n)
	for _, t := range st.triples {
		if err := ss.Add(t); err != nil {
			// st accepted the triple, so the shard must too.
			panic(fmt.Sprintf("kg: resharding valid triple failed: %v", err))
		}
	}
	ss.Freeze()
	return ss
}

// shardFor routes a subject ID to its shard.
func (ss *ShardedStore) shardFor(s ID) int {
	h := uint32(s) * 0x9e3779b1
	h ^= h >> 16
	return int(h % uint32(len(ss.shards)))
}

// NumShards reports the number of segments.
func (ss *ShardedStore) NumShards() int { return len(ss.shards) }

// Shard returns segment i. The segment is a plain Store; after Freeze it
// serves zero-alloc shard-local match-list views.
func (ss *ShardedStore) Shard(i int) *Store { return ss.shards[i] }

// GlobalIndexes returns the table mapping shard s's local triple indexes to
// global indexes. The result must not be mutated.
func (ss *ShardedStore) GlobalIndexes(s int) []int32 { return ss.global[s] }

// Dict returns the shared term dictionary.
func (ss *ShardedStore) Dict() *Dict { return ss.dict }

// Len reports the total number of triples across all shards.
func (ss *ShardedStore) Len() int { return len(ss.locShard) }

// Frozen reports whether Freeze has been called.
func (ss *ShardedStore) Frozen() bool { return ss.frozen }

// Add routes a scored triple to its subject's shard.
func (ss *ShardedStore) Add(t Triple) error {
	if ss.frozen {
		return ErrFrozen
	}
	si := ss.shardFor(t.S)
	sh := ss.shards[si]
	if err := sh.Add(t); err != nil {
		return err
	}
	ss.locShard = append(ss.locShard, int32(si))
	ss.locIdx = append(ss.locIdx, int32(sh.Len()-1))
	ss.global[si] = append(ss.global[si], int32(len(ss.locShard)-1))
	return nil
}

// AddSPO encodes the three terms and appends the triple.
func (ss *ShardedStore) AddSPO(s, p, o string, score float64) error {
	return ss.Add(Triple{
		S:     ss.dict.Encode(s),
		P:     ss.dict.Encode(p),
		O:     ss.dict.Encode(o),
		Score: score,
	})
}

// Freeze freezes every shard concurrently. Add must not be called
// afterwards. Like Store.Freeze it is idempotent but must be called from a
// single goroutine; read from as many as you like afterwards.
func (ss *ShardedStore) Freeze() {
	if ss.frozen {
		return
	}
	var wg sync.WaitGroup
	for _, sh := range ss.shards {
		wg.Add(1)
		go func(sh *Store) {
			defer wg.Done()
			sh.Freeze()
		}(sh)
	}
	wg.Wait()
	ss.frozen = true
}

// HasDuplicates reports whether any shard holds duplicate (s,p,o) keys.
// Identical keys share a subject and therefore a shard, so this is exact.
func (ss *ShardedStore) HasDuplicates() bool {
	for _, sh := range ss.shards {
		if sh.HasDuplicates() {
			return true
		}
	}
	return false
}

// Triple returns the triple at global index i.
func (ss *ShardedStore) Triple(i int32) Triple {
	return ss.shards[ss.locShard[i]].Triple(ss.locIdx[i])
}

// subjectShard returns the single shard able to match p when p's subject is
// bound, and ok=false otherwise.
func (ss *ShardedStore) subjectShard(p Pattern) (*Store, bool) {
	if p.S.IsVar {
		return nil, false
	}
	return ss.shards[ss.shardFor(p.S.ID)], true
}

// Cardinality returns the number of triples matching p — the aggregate over
// all shards, which is what the planner's cost model must see. A bound
// subject pins the single owning shard; every other shape sums per-shard
// cardinalities without materialising a merged list.
func (ss *ShardedStore) Cardinality(p Pattern) int {
	if sh, ok := ss.subjectShard(p); ok {
		return sh.Cardinality(p)
	}
	n := 0
	for _, sh := range ss.shards {
		n += sh.Cardinality(p)
	}
	return n
}

// MaxScore returns the global maximum raw score among matches of p — the
// Definition 5 normalisation constant. Per-shard lists are score-sorted, so
// this is one head peek per shard.
func (ss *ShardedStore) MaxScore(p Pattern) float64 {
	if sh, ok := ss.subjectShard(p); ok {
		return sh.MaxScore(p)
	}
	max := 0.0
	for _, sh := range ss.shards {
		if m := sh.MaxScore(p); m > max {
			max = m
		}
	}
	return max
}

// MatchList returns the global indexes of triples matching p in canonical
// order (score descending, global index ascending on ties). The merged list
// is materialised once per pattern key behind a single-flight cache; the hot
// query path (ShardedListScan) never calls this — it merges the per-shard
// zero-alloc views directly.
func (ss *ShardedStore) MatchList(p Pattern) []int32 {
	if !ss.frozen {
		panic("kg: MatchList before Freeze")
	}
	return ss.merged.get(p.Key(), func() []int32 { return ss.mergeMatches(p) })
}

// mergeMatches translates every shard's match list to global indexes and
// restores canonical global order.
func (ss *ShardedStore) mergeMatches(p Pattern) []int32 {
	var out []int32
	for si, sh := range ss.shards {
		glob := ss.global[si]
		for _, li := range sh.MatchList(p) {
			out = append(out, glob[li])
		}
	}
	sort.Slice(out, func(a, b int) bool {
		ta, tb := ss.Triple(out[a]), ss.Triple(out[b])
		if ta.Score != tb.Score {
			return ta.Score > tb.Score
		}
		return out[a] < out[b]
	})
	return out
}

// NormalizedScores returns the normalised score list for p, sorted
// descending, aligned with MatchList(p). The slice is freshly allocated and
// owned by the caller.
func (ss *ShardedStore) NormalizedScores(p Pattern) []float64 {
	return normalizedScores(ss, p)
}

// forCandidates implements matcher. A bound subject pins one shard; every
// other shape unions the shards' candidate postings. Enumeration order is
// irrelevant to the shared evaluator's results.
func (ss *ShardedStore) forCandidates(sub Pattern, f func(t Triple)) {
	if sh, ok := ss.subjectShard(sub); ok {
		sh.forCandidates(sub, f)
		return
	}
	for _, sh := range ss.shards {
		sh.forCandidates(sub, f)
	}
}

// Evaluate computes the complete answer set of q (Definition 6 scoring),
// identical to the flat store's evaluator over the same triples.
func (ss *ShardedStore) Evaluate(q Query) []Answer {
	return evaluateWeighted(ss, q, nil)
}

// EvaluateWeighted is Evaluate with per-pattern weight multipliers.
func (ss *ShardedStore) EvaluateWeighted(q Query, weights []float64) []Answer {
	return evaluateWeighted(ss, q, weights)
}

// Count returns the exact number of distinct answers to q.
func (ss *ShardedStore) Count(q Query) int {
	return countAnswers(ss, q)
}

// Selectivity returns the exact join selectivity φ of q.
func (ss *ShardedStore) Selectivity(q Query) float64 {
	return selectivity(ss, q)
}

// PatternString renders a pattern with decoded constants.
func (ss *ShardedStore) PatternString(p Pattern) string { return patternString(ss.dict, p) }

// QueryString renders a query with decoded constants.
func (ss *ShardedStore) QueryString(q Query) string { return queryString(ss.dict, q) }
