package kg

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteTSV serialises the store's triples as tab-separated
// "subject\tpredicate\tobject\tscore" lines.
func (st *Store) WriteTSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, t := range st.allTriples() {
		_, err := fmt.Fprintf(bw, "%s\t%s\t%s\t%s\n",
			st.dict.Decode(t.S), st.dict.Decode(t.P), st.dict.Decode(t.O),
			strconv.FormatFloat(t.Score, 'g', -1, 64))
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ForEachTSVTriple walks tab-separated "subject\tpredicate\tobject\tscore"
// lines, calling fn per triple. Blank lines and lines starting with '#' are
// skipped. It is the single parser behind ReadTSV and the CLI's live-ingest
// path, so the two cannot drift on format details. Retraction lines (see
// ForEachTSVMutation) are an error here — a load path that cannot apply
// deletes must not silently drop them.
func ForEachTSVTriple(r io.Reader, fn func(s, p, o string, score float64) error) error {
	return ForEachTSVMutation(r, fn, nil)
}

// ForEachTSVMutation walks a TSV mutation stream: insert lines are the usual
// "subject\tpredicate\tobject\tscore", retraction lines put "-" in the first
// field — "-\tsubject\tpredicate\tobject" — and retract every live copy of
// the key. Blank lines and '#' comments are skipped. A nil del rejects
// retraction lines with an error.
func ForEachTSVMutation(r io.Reader, ins func(s, p, o string, score float64) error, del func(s, p, o string) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, "\t")
		if len(fields) != 4 {
			return fmt.Errorf("kg: line %d: want 4 tab-separated fields, got %d", lineNo, len(fields))
		}
		if fields[0] == "-" {
			if del == nil {
				return fmt.Errorf("kg: line %d: retraction line in an insert-only stream", lineNo)
			}
			if err := del(fields[1], fields[2], fields[3]); err != nil {
				return fmt.Errorf("kg: line %d: %v", lineNo, err)
			}
			continue
		}
		score, err := strconv.ParseFloat(fields[3], 64)
		if err != nil {
			return fmt.Errorf("kg: line %d: bad score %q: %v", lineNo, fields[3], err)
		}
		if err := ins(fields[0], fields[1], fields[2], score); err != nil {
			return fmt.Errorf("kg: line %d: %v", lineNo, err)
		}
	}
	return sc.Err()
}

// ReadTSV loads triples from tab-separated lines into a fresh store and
// freezes it. Blank lines and lines starting with '#' are skipped.
func ReadTSV(r io.Reader) (*Store, error) {
	st := NewStore(nil)
	if err := ForEachTSVTriple(r, st.AddSPO); err != nil {
		return nil, err
	}
	st.Freeze()
	return st, nil
}
