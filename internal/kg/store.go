package kg

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"
)

// Store is an in-memory scored triple store. Triples are added with Add and
// the store must be frozen with Freeze before querying. After Freeze the
// store is safe for concurrent readers.
//
// Freeze builds every posting family pre-sorted by raw score descending
// (triple index as tiebreak), mirroring the paper's setup where a database
// engine "retrieve[s] the matches for triple patterns in sorted order". For
// any pattern whose bound positions resolve to a single posting — fully
// bound, (P,O), (S,P), or a single bound position without repeated variables
// — MatchList is a lock-free, allocation-free slice view of that posting.
// Only residual shapes (S+O-bound intersections, repeated-variable filters,
// full scans) are computed lazily, behind a sharded single-flight cache.
type Store struct {
	dict    *Dict
	triples []Triple
	frozen  bool

	// arenas is the shared posting storage built at Freeze: one region per
	// family below (slices of a single flat allocation), holding triple
	// indexes addressed by the spans in the index maps. This replaces a
	// slice header and growth slack per distinct key; per-family spans keep
	// int32 offsets sufficient for any store whose triple indexes fit int32.
	arenas [famCount][]int32
	// Secondary indexes from single bound positions to posting spans.
	byS, byP, byO map[ID]span
	// Composite indexes for the two most common access paths.
	byPO map[[2]ID]span // (P,O) bound: 〈?s p o〉
	bySP map[[2]ID]span // (S,P) bound: 〈s p ?o〉
	// Full index for fully bound lookups, mapping (S,P,O) to every triple
	// with those terms — duplicate additions of the same (s,p,o) with
	// different scores are all retained, score-sorted like every posting.
	bySPO map[[3]ID]span
	// hasDuplicates records at Freeze whether any (s,p,o) key was added more
	// than once; Count only needs binding dedup in that case.
	hasDuplicates bool

	// residual caches match lists for patterns no posting serves directly.
	residual *listCache
	// residualComputes counts residual-list computations, for tests
	// asserting the cache's single-flight guarantee.
	residualComputes atomic.Int64
}

// NewStore returns an empty store using the given dictionary (or a fresh one
// if dict is nil).
func NewStore(dict *Dict) *Store {
	if dict == nil {
		dict = NewDict()
	}
	// The posting maps are built by Freeze (buildPostings), sized from the
	// triple count; an unfrozen store has no readable indexes.
	return &Store{
		dict:     dict,
		residual: newListCache(),
	}
}

// Dict returns the store's term dictionary.
func (st *Store) Dict() *Dict { return st.dict }

// Len reports the number of triples in the store.
func (st *Store) Len() int { return len(st.triples) }

// ErrFrozen is returned by mutating calls after Freeze.
var ErrFrozen = errors.New("kg: store is frozen")

// Add appends a scored triple. Scores must be finite and non-negative
// (NaN or ±Inf would poison the score-sorted posting order and Definition 5
// normalisation, and could not round-trip through the binary snapshot
// format); zero-scored triples are legal but never contribute to top-k under
// the paper's model. Duplicate (s,p,o) triples with different scores are all
// retained and all appear in match lists; answer-level semantics collapse
// them via DedupMax (Definition 8 keeps the maximum-score derivation).
func (st *Store) Add(t Triple) error {
	if st.frozen {
		return ErrFrozen
	}
	if t.Score < 0 || math.IsNaN(t.Score) || math.IsInf(t.Score, 0) {
		return fmt.Errorf("kg: invalid triple score %v", t.Score)
	}
	st.triples = append(st.triples, t)
	return nil
}

// AddSPO encodes the three terms and appends the triple.
func (st *Store) AddSPO(s, p, o string, score float64) error {
	return st.Add(Triple{
		S:     st.dict.Encode(s),
		P:     st.dict.Encode(p),
		O:     st.dict.Encode(o),
		Score: score,
	})
}

// Freeze builds the score-sorted secondary indexes, parallelising the
// per-bucket sorts across a worker pool. Add must not be called afterwards.
// Freeze is idempotent but not itself safe for concurrent use; freeze from
// one goroutine, then read from as many as you like.
func (st *Store) Freeze() {
	if st.frozen {
		return
	}
	st.buildPostings()
	st.frozen = true
}

// Frozen reports whether Freeze has been called.
func (st *Store) Frozen() bool { return st.frozen }

// HasDuplicates reports whether any (s,p,o) key was added more than once
// (with the same or different scores). Determined at Freeze. Operators use
// this to skip binding deduplication when a match list provably cannot
// repeat a binding.
func (st *Store) HasDuplicates() bool { return st.hasDuplicates }

// Triple returns the triple at index i (as stored; indexes are stable).
func (st *Store) Triple(i int32) Triple { return st.triples[i] }

// MatchList returns the indexes of triples matching p, sorted by raw score
// descending (ties broken by triple index for determinism). For indexed
// shapes this is a zero-allocation, lock-free view of a posting built at
// Freeze; residual shapes are computed once and cached. The result must not
// be mutated by callers.
func (st *Store) MatchList(p Pattern) []int32 {
	if !st.frozen {
		panic("kg: MatchList before Freeze")
	}
	if l, ok := st.matchedByIndex(p); ok {
		return l
	}
	return st.residual.get(p.Key(), func() []int32 { return st.computeMatches(p) })
}

// computeMatches filters the smallest candidate posting down to the exact
// match list. Candidate postings are score-sorted at Freeze and filtering
// preserves order, so only the full-scan fallback — which walks triples in
// insertion order — sorts its result.
func (st *Store) computeMatches(p Pattern) []int32 {
	st.residualComputes.Add(1)
	var out []int32
	cand, indexed := st.candidates(p)
	if !indexed {
		for i := range st.triples {
			if p.Matches(st.triples[i]) {
				out = append(out, int32(i))
			}
		}
		st.sortByScore(out)
		return out
	}
	for _, i := range cand {
		if p.Matches(st.triples[i]) {
			out = append(out, i)
		}
	}
	return out
}

// Cardinality returns the number of triples matching p.
func (st *Store) Cardinality(p Pattern) int { return len(st.MatchList(p)) }

// MaxScore returns the maximum raw score among matches of p, or 0 if there
// are no matches. Per Definition 5 this is the normalisation constant. Match
// lists are score-sorted at Freeze, so this is an O(1) head lookup — no list
// walk, no lock.
func (st *Store) MaxScore(p Pattern) float64 {
	l := st.MatchList(p)
	if len(l) == 0 {
		return 0
	}
	return st.triples[l[0]].Score
}

// NormalizedScore computes S(t|q) per Definition 5: the triple's raw score
// divided by the maximum raw score among all matches of the pattern. The
// result is in [0,1]. It returns 0 when the pattern has no matches.
func (st *Store) NormalizedScore(p Pattern, t Triple) float64 {
	max := st.MaxScore(p)
	if max == 0 {
		return 0
	}
	return t.Score / max
}

// NormalizedScores returns the normalised score list for p, sorted
// descending, aligned with MatchList(p). The slice is freshly allocated and
// owned by the caller.
func (st *Store) NormalizedScores(p Pattern) []float64 {
	return normalizedScores(st, p)
}

// PatternString renders a pattern with decoded constants.
func (st *Store) PatternString(p Pattern) string { return patternString(st.dict, p) }

// QueryString renders a query with decoded constants.
func (st *Store) QueryString(q Query) string { return queryString(st.dict, q) }
