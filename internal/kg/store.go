package kg

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Store is an in-memory scored triple store. Triples are added with Add and
// the store must be frozen with Freeze before querying. After Freeze the
// store is safe for concurrent readers — and, since the live-ingest layer,
// for concurrent writers through Insert: new triples land in a small mutable
// head overlay on top of the frozen segment, and Compact (or crossing the
// head-size limit) counting-sorts the head into the frozen posting arenas.
//
// Freeze builds every posting family pre-sorted by raw score descending
// (triple index as tiebreak), mirroring the paper's setup where a database
// engine "retrieve[s] the matches for triple patterns in sorted order". For
// any pattern whose bound positions resolve to a single posting — fully
// bound, (P,O), (S,P), or a single bound position without repeated variables
// — MatchList is a lock-free, allocation-free slice view of that posting
// whenever the head is empty. Only residual shapes (S+O-bound intersections,
// repeated-variable filters, full scans) are computed lazily, behind a
// sharded single-flight cache; a non-empty head adds a two-source merge of
// the frozen view with the head's sorted overlay.
//
// Readers never lock: all queryable state lives in an immutable storeState
// snapshot behind an atomic pointer. Insert and Compact build a new snapshot
// under the store's mutex and publish it with a single atomic store, so a
// concurrent reader sees either the whole old state or the whole new state —
// never a torn mixture.
type Store struct {
	dict *Dict
	// triples is the pre-freeze staging area; after Freeze the snapshot's
	// triples slice is authoritative (see allTriples).
	triples []Triple
	frozen  bool

	// live is the current read snapshot; nil until Freeze.
	live atomic.Pointer[storeState]
	// mu serialises mutators (Insert, Compact, SetHeadLimit) after Freeze.
	mu sync.Mutex
	// headLimit is the head size at which Insert triggers an automatic
	// compaction: 0 selects DefaultHeadLimit, negative disables automatic
	// compaction entirely (Compact must be called explicitly).
	headLimit int

	// compacting gates automatic compactions to one in flight (explicit
	// Compact calls always run).
	compacting atomic.Bool
	// version counts content changes: 0 for a store frozen once and never
	// mutated, +1 per successful Insert. Compaction leaves it unchanged —
	// the visible triple set is identical before and after a merge.
	version atomic.Uint64
	// compactions counts head merges (explicit and automatic).
	compactions atomic.Uint64
	// residualComputes counts residual-list computations across the store's
	// lifetime, for tests asserting the cache's single-flight guarantee.
	residualComputes atomic.Int64
}

// storeState is one immutable read snapshot of a live store: the frozen
// posting segment plus the mutable head's sorted overlay. Every reader loads
// exactly one storeState per call, so Insert/Compact swaps are atomic from
// the reader's point of view.
type storeState struct {
	// triples holds the frozen prefix (triples[:len(post.triples)]) followed
	// by the head (triples[len(post.triples):]). Triple indexes are stable
	// across inserts and compactions; backing arrays are shared between
	// snapshots but slots are written only before the covering snapshot is
	// published.
	triples []Triple
	// post indexes the frozen prefix.
	post *postings
	// headSorted lists head triple indexes in canonical match order — raw
	// score descending, index ascending on ties — the tiny sorted overlay
	// merged on top of frozen views.
	headSorted []int32
	// headDup records whether any head triple repeats an (s,p,o) key already
	// present in the frozen prefix or earlier in the head.
	headDup bool
	// merged lazily caches frozen⊕head merged match lists for this snapshot
	// (nil until the first merged lookup; dropped wholesale when the next
	// Insert or Compact publishes a new snapshot).
	merged atomic.Pointer[listCache]
}

// frozenLen reports how many leading triples the frozen postings cover.
func (s *storeState) frozenLen() int { return len(s.post.triples) }

// NewStore returns an empty store using the given dictionary (or a fresh one
// if dict is nil).
func NewStore(dict *Dict) *Store {
	if dict == nil {
		dict = NewDict()
	}
	// The posting families are built by Freeze (buildPostings), sized from
	// the triple count; an unfrozen store has no readable indexes.
	return &Store{dict: dict}
}

// Dict returns the store's term dictionary.
func (st *Store) Dict() *Dict { return st.dict }

// allTriples returns the store's full triple sequence: the snapshot's slice
// once frozen (which grows with live inserts), the staging slice before.
func (st *Store) allTriples() []Triple {
	if s := st.live.Load(); s != nil {
		return s.triples
	}
	return st.triples
}

// Len reports the number of triples in the store. On a live store it is
// monotone non-decreasing under concurrent inserts.
func (st *Store) Len() int { return len(st.allTriples()) }

// ErrFrozen is returned by Add after Freeze; use Insert for live ingest.
var ErrFrozen = errors.New("kg: store is frozen")

// validScore rejects scores that would poison the score-sorted posting order
// and Definition 5 normalisation (and could not round-trip through the
// binary snapshot format).
func validScore(score float64) error {
	if score < 0 || math.IsNaN(score) || math.IsInf(score, 0) {
		return fmt.Errorf("kg: invalid triple score %v", score)
	}
	return nil
}

// ValidateScore reports whether a triple score is storable: finite and
// non-negative, the same check Add and Insert apply. The durability layer
// validates before logging so a record can never be written for a triple the
// store would then reject.
func ValidateScore(score float64) error { return validScore(score) }

// Add appends a scored triple to an unfrozen store. Scores must be finite
// and non-negative; zero-scored triples are legal but never contribute to
// top-k under the paper's model. Duplicate (s,p,o) triples with different
// scores are all retained and all appear in match lists; answer-level
// semantics collapse them via DedupMax (Definition 8 keeps the maximum-score
// derivation). After Freeze, Add returns ErrFrozen — live ingest goes
// through Insert instead.
func (st *Store) Add(t Triple) error {
	if st.frozen {
		return ErrFrozen
	}
	if err := validScore(t.Score); err != nil {
		return err
	}
	st.triples = append(st.triples, t)
	return nil
}

// AddSPO encodes the three terms and appends the triple.
func (st *Store) AddSPO(s, p, o string, score float64) error {
	return st.Add(Triple{
		S:     st.dict.Encode(s),
		P:     st.dict.Encode(p),
		O:     st.dict.Encode(o),
		Score: score,
	})
}

// Freeze builds the score-sorted secondary indexes, parallelising the
// per-bucket sorts across a worker pool. Add must not be called afterwards;
// Insert may be. Freeze is idempotent but not itself safe for concurrent
// use; freeze from one goroutine, then read — and Insert — from as many as
// you like.
func (st *Store) Freeze() {
	if st.frozen {
		return
	}
	st.live.Store(&storeState{
		triples: st.triples,
		post:    buildPostings(st.triples, &st.residualComputes),
	})
	st.frozen = true
}

// Frozen reports whether Freeze has been called.
func (st *Store) Frozen() bool { return st.frozen }

// DefaultHeadLimit is the head size at which Insert triggers an automatic
// compaction when SetHeadLimit was never called. It keeps the per-query
// head-merge overhead bounded while amortising the posting rebuild over
// enough inserts to stay cheap.
const DefaultHeadLimit = 1024

// SetHeadLimit sets the head size at which Insert automatically compacts:
// 0 restores DefaultHeadLimit, a negative value disables automatic
// compaction (explicit Compact only). Safe to call concurrently with
// Insert; it does not itself trigger a compaction.
func (st *Store) SetHeadLimit(n int) {
	st.mu.Lock()
	st.headLimit = n
	st.mu.Unlock()
}

// effectiveHeadLimit resolves the configured limit; caller holds mu.
func (st *Store) effectiveHeadLimit() int {
	if st.headLimit == 0 {
		return DefaultHeadLimit
	}
	return st.headLimit
}

// HeadLen reports the number of triples currently in the mutable head (0 on
// an unfrozen or freshly compacted store).
func (st *Store) HeadLen() int {
	if s := st.live.Load(); s != nil {
		return len(s.headSorted)
	}
	return 0
}

// Version reports the store's logical content version: 0 until the first
// live Insert, +1 per insert. Compaction does not move it — the visible
// triple set is unchanged — so version-keyed caches survive merges.
func (st *Store) Version() uint64 { return st.version.Load() }

// Compactions reports how many head merges the store has performed.
func (st *Store) Compactions() uint64 { return st.compactions.Load() }

// Insert appends a scored triple to a live (frozen) store: the triple lands
// in the mutable head overlay, immediately visible to every subsequent read,
// and is merged into the frozen posting arenas when the head crosses the
// configured limit or Compact is called. Insert is safe for concurrent use
// with readers and other inserters. Before Freeze it behaves like Add.
func (st *Store) Insert(t Triple) error {
	compact, err := st.InsertDeferred(t)
	if compact != nil {
		compact()
	}
	return err
}

// InsertDeferred is Insert with any triggered automatic compaction split
// out: the insert itself is published (and visible) when the call returns,
// and the returned function — nil when no merge is due — runs the
// compaction. The durability layer uses it to keep posting rebuilds outside
// the mutex that orders WAL appends against store applies; everyone else
// should call Insert.
func (st *Store) InsertDeferred(t Triple) (compact func(), err error) {
	need, err := st.insert(t)
	if err == nil && need {
		return st.compactIfNeeded, nil
	}
	return nil, err
}

// insert publishes the head-extended snapshot and reports whether the head
// crossed the automatic-compaction limit. The merge itself is left to the
// caller so ShardedStore can run it outside its directory lock — a shard
// compacting must not stall inserts routed to other shards.
func (st *Store) insert(t Triple) (needCompact bool, err error) {
	if err := validScore(t.Score); err != nil {
		return false, err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if !st.frozen {
		st.triples = append(st.triples, t)
		return false, nil
	}
	s := st.live.Load()
	idx := int32(len(s.triples))
	// Appending may share the backing array with older snapshots; that is
	// safe because the new slot lies beyond every published snapshot's
	// length and the publish below is an atomic release.
	triples := append(s.triples, t)

	// Insert the new index into the head overlay at its canonical position:
	// after every head triple with a strictly greater score (equal scores
	// order by index, and the new index is the largest so far).
	pos := sort.Search(len(s.headSorted), func(i int) bool {
		return s.triples[s.headSorted[i]].Score < t.Score
	})
	head := make([]int32, 0, len(s.headSorted)+1)
	head = append(head, s.headSorted[:pos]...)
	head = append(head, idx)
	head = append(head, s.headSorted[pos:]...)

	dup := s.headDup
	if !dup {
		if s.post.bySPO[[3]ID{t.S, t.P, t.O}].n > 0 {
			dup = true
		} else {
			for _, hi := range s.headSorted {
				h := s.triples[hi]
				if h.S == t.S && h.P == t.P && h.O == t.O {
					dup = true
					break
				}
			}
		}
	}

	ns := &storeState{triples: triples, post: s.post, headSorted: head, headDup: dup}
	st.live.Store(ns)
	st.version.Add(1)
	limit := st.effectiveHeadLimit()
	return limit > 0 && len(head) >= limit, nil
}

// compactIfNeeded re-checks the head against the limit and merges if it
// still qualifies (a concurrent Compact may have emptied it since the
// triggering insert returned). The compacting flag bounds automatic merges
// to one in flight: under a sustained insert burst every insert past the
// limit would otherwise kick off its own redundant rebuild.
func (st *Store) compactIfNeeded() {
	if !st.compacting.CompareAndSwap(false, true) {
		return
	}
	defer st.compacting.Store(false)
	st.mu.Lock()
	if !st.frozen {
		st.mu.Unlock()
		return
	}
	s := st.live.Load()
	limit := st.effectiveHeadLimit()
	if limit <= 0 || len(s.headSorted) < limit {
		st.mu.Unlock()
		return
	}
	st.mu.Unlock()
	st.compactFrom(s)
}

// InsertSPO encodes the three terms and inserts the triple live.
func (st *Store) InsertSPO(s, p, o string, score float64) error {
	return st.Insert(Triple{
		S:     st.dict.Encode(s),
		P:     st.dict.Encode(p),
		O:     st.dict.Encode(o),
		Score: score,
	})
}

// Compact merges the mutable head into the frozen segment: the full triple
// sequence is re-laid into the counting-sort posting arenas (reusing the
// parallel per-bucket sort worker pool), and a fresh all-frozen snapshot is
// published. Neither readers nor writers are blocked for the rebuild — the
// expensive posting build runs outside the mutex against an immutable
// snapshot, and triples inserted meanwhile are folded back in as the new
// head at publish time. The visible triple set is unchanged throughout, so
// answers before and after a compaction are bit-identical. No-op on an
// unfrozen store or an empty head.
func (st *Store) Compact() {
	st.mu.Lock()
	if !st.frozen {
		st.mu.Unlock()
		return
	}
	s := st.live.Load()
	if len(s.headSorted) == 0 {
		st.mu.Unlock()
		return
	}
	st.mu.Unlock()
	st.compactFrom(s)
}

// compactFrom rebuilds the postings over snapshot s's full triple sequence
// off-lock, then publishes under the mutex: any triples inserted during the
// rebuild stay in the (now smaller) head of the published state, and a
// concurrent compaction that already covered at least this prefix wins.
func (st *Store) compactFrom(s *storeState) {
	post := buildPostings(s.triples, &st.residualComputes)
	st.mu.Lock()
	defer st.mu.Unlock()
	cur := st.live.Load()
	if len(cur.post.triples) >= len(post.triples) {
		return
	}
	ns := &storeState{triples: cur.triples, post: post}
	// cur's head is in canonical order; dropping the entries the new
	// postings absorbed preserves it.
	for _, hi := range cur.headSorted {
		if int(hi) >= len(post.triples) {
			ns.headSorted = append(ns.headSorted, hi)
		}
	}
	ns.headDup = headDupFor(ns)
	st.live.Store(ns)
	st.compactions.Add(1)
}

// headDupFor recomputes the head-duplicate flag exactly for a snapshot: a
// head triple repeating a frozen (s,p,o) key or another head triple's key.
// Quadratic in the head length, which is tiny right after a compaction.
func headDupFor(s *storeState) bool {
	for i, hi := range s.headSorted {
		t := s.triples[hi]
		if s.post.bySPO[[3]ID{t.S, t.P, t.O}].n > 0 {
			return true
		}
		for _, hj := range s.headSorted[:i] {
			h := s.triples[hj]
			if h.S == t.S && h.P == t.P && h.O == t.O {
				return true
			}
		}
	}
	return false
}

// HasDuplicates reports whether any (s,p,o) key was added more than once
// (with the same or different scores), in the frozen segment or the head.
// Operators use this to skip binding deduplication when a match list
// provably cannot repeat a binding.
func (st *Store) HasDuplicates() bool {
	if s := st.live.Load(); s != nil {
		return s.post.hasDuplicates || s.headDup
	}
	return false
}

// Triple returns the triple at index i (as stored; indexes are stable across
// inserts and compactions).
func (st *Store) Triple(i int32) Triple { return st.allTriples()[i] }

// state returns the current read snapshot, panicking before Freeze.
func (st *Store) state() *storeState {
	s := st.live.Load()
	if s == nil {
		panic("kg: read before Freeze")
	}
	return s
}

// MatchList returns the indexes of triples matching p, sorted by raw score
// descending (ties broken by triple index for determinism). For indexed
// shapes with an empty head this is a zero-allocation, lock-free view of a
// posting; residual shapes are computed once per segment generation and
// cached; a non-empty head produces a merged list cached per snapshot. The
// result must not be mutated by callers.
func (st *Store) MatchList(p Pattern) []int32 {
	return st.state().matchList(p)
}

func (s *storeState) matchList(p Pattern) []int32 {
	if len(s.headSorted) == 0 {
		return s.post.matchList(p)
	}
	c := s.merged.Load()
	if c == nil {
		c = newListCache()
		if !s.merged.CompareAndSwap(nil, c) {
			c = s.merged.Load()
		}
	}
	return c.get(p.Key(), func() []int32 { return s.computeMerged(p) })
}

// computeMerged two-way merges the frozen match list with the head's matches
// in canonical order. Head indexes all exceed frozen indexes, so on equal
// scores the index tiebreak keeps every frozen entry ahead of every head
// entry, and each source's internal order is already canonical.
func (s *storeState) computeMerged(p Pattern) []int32 {
	frozen := s.post.matchList(p)
	var head []int32
	for _, hi := range s.headSorted {
		if p.Matches(s.triples[hi]) {
			head = append(head, hi)
		}
	}
	if len(head) == 0 {
		return frozen
	}
	out := make([]int32, 0, len(frozen)+len(head))
	i, j := 0, 0
	for i < len(frozen) && j < len(head) {
		a, b := frozen[i], head[j]
		ta, tb := s.triples[a], s.triples[b]
		if ta.Score > tb.Score || (ta.Score == tb.Score && a < b) {
			out = append(out, a)
			i++
		} else {
			out = append(out, b)
			j++
		}
	}
	out = append(out, frozen[i:]...)
	out = append(out, head[j:]...)
	return out
}

// Cardinality returns the number of triples matching p, head included,
// without materialising a merged list.
func (st *Store) Cardinality(p Pattern) int {
	return st.state().cardinality(p)
}

// cardinality counts the snapshot's matches of p without materialising a
// merged list.
func (s *storeState) cardinality(p Pattern) int {
	n := len(s.post.matchList(p))
	for _, hi := range s.headSorted {
		if p.Matches(s.triples[hi]) {
			n++
		}
	}
	return n
}

// MaxScore returns the maximum raw score among matches of p, or 0 if there
// are no matches. Per Definition 5 this is the normalisation constant. The
// frozen side is an O(1) head lookup of the score-sorted posting; the head
// overlay is scanned in score order until its first match.
func (st *Store) MaxScore(p Pattern) float64 {
	return st.state().maxScore(p)
}

// maxScore computes the snapshot's Definition 5 normalisation constant.
func (s *storeState) maxScore(p Pattern) float64 {
	max := 0.0
	if l := s.post.matchList(p); len(l) > 0 {
		max = s.triples[l[0]].Score
	}
	for _, hi := range s.headSorted {
		if p.Matches(s.triples[hi]) {
			if sc := s.triples[hi].Score; sc > max {
				max = sc
			}
			break
		}
	}
	return max
}

// NormalizedScore computes S(t|q) per Definition 5: the triple's raw score
// divided by the maximum raw score among all matches of the pattern. The
// result is in [0,1]. It returns 0 when the pattern has no matches.
func (st *Store) NormalizedScore(p Pattern, t Triple) float64 {
	max := st.MaxScore(p)
	if max == 0 {
		return 0
	}
	return t.Score / max
}

// NormalizedScores returns the normalised score list for p, sorted
// descending, aligned with MatchList(p). The slice is freshly allocated and
// owned by the caller.
func (st *Store) NormalizedScores(p Pattern) []float64 {
	return normalizedScores(st, p)
}

// PatternString renders a pattern with decoded constants.
func (st *Store) PatternString(p Pattern) string { return patternString(st.dict, p) }

// QueryString renders a query with decoded constants.
func (st *Store) QueryString(q Query) string { return queryString(st.dict, q) }
