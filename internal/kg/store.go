package kg

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Store is an in-memory scored triple store. Triples are added with Add and
// the store must be frozen with Freeze before querying. After Freeze the
// store is safe for concurrent readers.
//
// Match lists for triple patterns are computed on first use, sorted by raw
// score descending, and cached — mirroring the paper's setup where a database
// engine "retrieve[s] the matches for triple patterns in sorted order".
type Store struct {
	dict    *Dict
	triples []Triple
	frozen  bool

	// Secondary indexes from single bound positions to triple indexes.
	byS, byP, byO map[ID][]int32
	// Composite indexes for the two most common access paths.
	byPO map[[2]ID][]int32 // (P,O) bound: 〈?s p o〉
	bySP map[[2]ID][]int32 // (S,P) bound: 〈s p ?o〉
	// Existence index for fully bound lookups, mapping (S,P,O) to the index
	// of the highest-scored triple with those terms.
	bySPO map[[3]ID]int32

	mu        sync.RWMutex
	listCache map[PatternKey][]int32 // sorted-by-score-desc triple indexes
}

// NewStore returns an empty store using the given dictionary (or a fresh one
// if dict is nil).
func NewStore(dict *Dict) *Store {
	if dict == nil {
		dict = NewDict()
	}
	return &Store{
		dict:      dict,
		byS:       make(map[ID][]int32),
		byP:       make(map[ID][]int32),
		byO:       make(map[ID][]int32),
		byPO:      make(map[[2]ID][]int32),
		bySP:      make(map[[2]ID][]int32),
		bySPO:     make(map[[3]ID]int32),
		listCache: make(map[PatternKey][]int32),
	}
}

// Dict returns the store's term dictionary.
func (st *Store) Dict() *Dict { return st.dict }

// Len reports the number of triples in the store.
func (st *Store) Len() int { return len(st.triples) }

// ErrFrozen is returned by mutating calls after Freeze.
var ErrFrozen = errors.New("kg: store is frozen")

// Add appends a scored triple. Scores must be non-negative; zero-scored
// triples are legal but never contribute to top-k under the paper's model.
func (st *Store) Add(t Triple) error {
	if st.frozen {
		return ErrFrozen
	}
	if t.Score < 0 {
		return fmt.Errorf("kg: negative triple score %v", t.Score)
	}
	st.triples = append(st.triples, t)
	return nil
}

// AddSPO encodes the three terms and appends the triple.
func (st *Store) AddSPO(s, p, o string, score float64) error {
	return st.Add(Triple{
		S:     st.dict.Encode(s),
		P:     st.dict.Encode(p),
		O:     st.dict.Encode(o),
		Score: score,
	})
}

// Freeze builds the secondary indexes. Add must not be called afterwards.
// Freeze is idempotent.
func (st *Store) Freeze() {
	if st.frozen {
		return
	}
	for i, t := range st.triples {
		ii := int32(i)
		st.byS[t.S] = append(st.byS[t.S], ii)
		st.byP[t.P] = append(st.byP[t.P], ii)
		st.byO[t.O] = append(st.byO[t.O], ii)
		st.byPO[[2]ID{t.P, t.O}] = append(st.byPO[[2]ID{t.P, t.O}], ii)
		st.bySP[[2]ID{t.S, t.P}] = append(st.bySP[[2]ID{t.S, t.P}], ii)
		k := [3]ID{t.S, t.P, t.O}
		if prev, ok := st.bySPO[k]; !ok || st.triples[prev].Score < t.Score {
			st.bySPO[k] = ii
		}
	}
	st.frozen = true
}

// Frozen reports whether Freeze has been called.
func (st *Store) Frozen() bool { return st.frozen }

// Triple returns the triple at index i (as stored; indexes are stable).
func (st *Store) Triple(i int32) Triple { return st.triples[i] }

// candidates returns the smallest available index posting for the pattern's
// bound positions, falling back to a full scan marker (nil, false).
func (st *Store) candidates(p Pattern) ([]int32, bool) {
	sb, pb, ob := !p.S.IsVar, !p.P.IsVar, !p.O.IsVar
	switch {
	case sb && pb && ob:
		if i, ok := st.bySPO[[3]ID{p.S.ID, p.P.ID, p.O.ID}]; ok {
			return []int32{i}, true
		}
		return nil, true
	case pb && ob:
		return st.byPO[[2]ID{p.P.ID, p.O.ID}], true
	case sb && pb:
		return st.bySP[[2]ID{p.S.ID, p.P.ID}], true
	case sb && ob:
		// Intersect the two single-position postings, scanning the smaller.
		a, b := st.byS[p.S.ID], st.byO[p.O.ID]
		if len(b) < len(a) {
			a = b
		}
		return a, true
	case sb:
		return st.byS[p.S.ID], true
	case ob:
		return st.byO[p.O.ID], true
	case pb:
		return st.byP[p.P.ID], true
	default:
		return nil, false
	}
}

// MatchList returns the indexes of triples matching p, sorted by raw score
// descending (ties broken by triple index for determinism). The result is
// cached and must not be mutated by callers.
func (st *Store) MatchList(p Pattern) []int32 {
	if !st.frozen {
		panic("kg: MatchList before Freeze")
	}
	key := p.Key()
	st.mu.RLock()
	if l, ok := st.listCache[key]; ok {
		st.mu.RUnlock()
		return l
	}
	st.mu.RUnlock()

	cand, ok := st.candidates(p)
	if !ok {
		cand = make([]int32, len(st.triples))
		for i := range cand {
			cand[i] = int32(i)
		}
	}
	var out []int32
	for _, i := range cand {
		if p.Matches(st.triples[i]) {
			out = append(out, i)
		}
	}
	sort.Slice(out, func(a, b int) bool {
		ta, tb := st.triples[out[a]], st.triples[out[b]]
		if ta.Score != tb.Score {
			return ta.Score > tb.Score
		}
		return out[a] < out[b]
	})

	st.mu.Lock()
	st.listCache[key] = out
	st.mu.Unlock()
	return out
}

// Cardinality returns the number of triples matching p.
func (st *Store) Cardinality(p Pattern) int { return len(st.MatchList(p)) }

// MaxScore returns the maximum raw score among matches of p, or 0 if there
// are no matches. Per Definition 5 this is the normalisation constant.
func (st *Store) MaxScore(p Pattern) float64 {
	l := st.MatchList(p)
	if len(l) == 0 {
		return 0
	}
	return st.triples[l[0]].Score
}

// NormalizedScore computes S(t|q) per Definition 5: the triple's raw score
// divided by the maximum raw score among all matches of the pattern. The
// result is in [0,1]. It returns 0 when the pattern has no matches.
func (st *Store) NormalizedScore(p Pattern, t Triple) float64 {
	max := st.MaxScore(p)
	if max == 0 {
		return 0
	}
	return t.Score / max
}

// NormalizedScores returns the normalised score list for p, sorted
// descending, aligned with MatchList(p).
func (st *Store) NormalizedScores(p Pattern) []float64 {
	l := st.MatchList(p)
	out := make([]float64, len(l))
	max := st.MaxScore(p)
	if max == 0 {
		return out
	}
	for i, ti := range l {
		out[i] = st.triples[ti].Score / max
	}
	return out
}

// PatternString renders a pattern with decoded constants.
func (st *Store) PatternString(p Pattern) string {
	f := func(t Term) string {
		if t.IsVar {
			return "?" + t.Name
		}
		return st.dict.Decode(t.ID)
	}
	return fmt.Sprintf("〈%s %s %s〉", f(p.S), f(p.P), f(p.O))
}

// QueryString renders a query with decoded constants.
func (st *Store) QueryString(q Query) string {
	parts := make([]string, len(q.Patterns))
	for i, p := range q.Patterns {
		parts[i] = st.PatternString(p)
	}
	s := ""
	for i, part := range parts {
		if i > 0 {
			s += " . "
		}
		s += part
	}
	return s
}
