package kg

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Store is an in-memory scored triple store. Triples are added with Add and
// the store must be frozen with Freeze before querying. After Freeze the
// store is safe for concurrent readers — and, since the live-ingest layer,
// for concurrent writers through Insert: new triples land in a small mutable
// head overlay on top of the frozen segment, and Compact (or crossing the
// head-size limit) counting-sorts the head into the frozen posting arenas.
//
// Freeze builds every posting family pre-sorted by raw score descending
// (triple index as tiebreak), mirroring the paper's setup where a database
// engine "retrieve[s] the matches for triple patterns in sorted order". For
// any pattern whose bound positions resolve to a single posting — fully
// bound, (P,O), (S,P), or a single bound position without repeated variables
// — MatchList is a lock-free, allocation-free slice view of that posting
// whenever the head is empty. Only residual shapes (S+O-bound intersections,
// repeated-variable filters, full scans) are computed lazily, behind a
// sharded single-flight cache; a non-empty head adds a two-source merge of
// the frozen view with the head's sorted overlay.
//
// Readers never lock: all queryable state lives in an immutable storeState
// snapshot behind an atomic pointer. Insert and Compact build a new snapshot
// under the store's mutex and publish it with a single atomic store, so a
// concurrent reader sees either the whole old state or the whole new state —
// never a torn mixture.
type Store struct {
	dict *Dict
	// triples is the pre-freeze staging area; after Freeze the snapshot's
	// triples slice is authoritative (see allTriples).
	triples []Triple
	frozen  bool

	// live is the current read snapshot; nil until Freeze.
	live atomic.Pointer[storeState]
	// mu serialises mutators (Insert, Delete, Update, merge publishes,
	// SetHeadLimit) after Freeze.
	mu sync.Mutex
	// mergeMu serialises merges (head→L1 and full compactions): a merge
	// builds off-lock against a snapshot loaded under mergeMu, so two
	// concurrent merges could otherwise publish states whose coverage
	// disagrees and orphan head entries absorbed by the loser.
	mergeMu sync.Mutex
	// headLimit is the head size at which Insert triggers an automatic
	// compaction: 0 selects DefaultHeadLimit, negative disables automatic
	// compaction entirely (Compact must be called explicitly).
	headLimit int
	// l1Limit enables tiered compaction when positive: automatic head merges
	// target a small frozen L1 tier instead of the main arena, and the L1 is
	// folded into the main arena only once it covers at least l1Limit
	// triples. 0 (the default) keeps single-level merges; explicit Compact
	// always merges everything into the main arena.
	l1Limit int

	// compacting gates automatic compactions to one in flight (explicit
	// Compact calls always run).
	compacting atomic.Bool
	// version counts content changes: 0 for a store frozen once and never
	// mutated, +1 per successful Insert, Delete or Update. Compaction leaves
	// it unchanged — the visible triple set is identical before and after a
	// merge.
	version atomic.Uint64
	// compactions counts head merges (explicit and automatic).
	compactions atomic.Uint64
	// compactionsFull / compactionsTiered split compactions by tier (full =
	// fold into the main arena, tiered = head → L1), and the *NS fields
	// accumulate each tier's merge wall time — the /metrics per-tier
	// compaction gauges.
	compactionsFull, compactionsTiered atomic.Uint64
	compactionFullNS, compactionTieredNS atomic.Int64
	// pins counts Pin calls (snapshot views handed out). Views are garbage
	// collected, not released, so this is a cumulative taken-counter.
	pins atomic.Int64
	// residualComputes counts residual-list computations across the store's
	// lifetime, for tests asserting the cache's single-flight guarantee.
	residualComputes atomic.Int64
}

// CompactionStats reports per-tier compaction counts and cumulative
// durations: full merges fold everything into the main arena, tiered merges
// re-freeze the head into the L1 tier.
func (st *Store) CompactionStats() (full, tiered uint64, fullNS, tieredNS int64) {
	return st.compactionsFull.Load(), st.compactionsTiered.Load(),
		st.compactionFullNS.Load(), st.compactionTieredNS.Load()
}

// Pins reports how many snapshot views the store has handed out (cumulative;
// views are reclaimed by the garbage collector, never explicitly released).
func (st *Store) Pins() int64 { return st.pins.Load() }

// storeState is one immutable read snapshot of a live store: the frozen
// posting segment plus the mutable head's sorted overlay. Every reader loads
// exactly one storeState per call, so Insert/Compact swaps are atomic from
// the reader's point of view.
type storeState struct {
	// triples holds the frozen prefix (triples[:frozenLen()]) followed by
	// the head (triples[frozenLen():]). Triple indexes are stable across
	// inserts, deletes and compactions — a retracted triple keeps its slot
	// and is masked out of every read instead; backing arrays are shared
	// between snapshots but slots are written only before the covering
	// snapshot is published.
	triples []Triple
	// post indexes the main frozen segment, triples[:len(post.triples)].
	post *postings
	// l1 is the optional small frozen tier over
	// triples[len(post.triples):len(l1.triples)], built by tiered head
	// merges (see Store.l1Limit); nil when tiering is off or freshly
	// full-compacted.
	l1 *postings
	// headSorted lists head triple indexes in canonical match order — raw
	// score descending, index ascending on ties — the tiny sorted overlay
	// merged on top of frozen views. Deleted head entries are removed
	// physically, so the overlay never lists a retracted fact.
	headSorted []int32
	// tombs is the pending tombstone set: (s,p,o) key → watermark (the
	// store's triple count when the delete was applied). A frozen entry at
	// index i is retracted iff tombs[key] > i, so a key re-inserted after
	// its delete stays visible. Resolved — annihilated into the dead bitmap
	// — at full merges. The map is copy-on-write: never mutated after its
	// snapshot publishes.
	tombs map[[3]ID]int32
	// ops counts applied mutation operations: Freeze sets it to the triple
	// count, then Insert and Delete add one and Update adds two (it logs as
	// a tombstone plus an insert). The durability layer maps WAL sequence
	// numbers onto it — with deletes in the mix the triple count no longer
	// measures log position, since a tombstone consumes a sequence number
	// without adding a triple.
	ops uint64
	// dead counts retracted triples still occupying physical slots in
	// triples; len(triples)-dead is the live triple count.
	dead int
	// headDup records whether any head triple repeats an (s,p,o) key already
	// present in the frozen segments or earlier in the head.
	headDup bool
	// crossDup records whether any L1 (s,p,o) key also appears in the main
	// segment (recomputed at every L1 merge; false while l1 is nil). Like
	// headDup it may over-approximate once deletes retract one of the
	// copies — which costs operators a dedup map, never correctness.
	crossDup bool
	// merged lazily caches merged (frozen ⊕ L1 ⊕ head, tombstone-masked)
	// match lists for this snapshot (nil until the first merged lookup;
	// dropped wholesale when the next mutation publishes a new snapshot).
	merged atomic.Pointer[listCache]
}

// frozenLen reports how many leading triples the frozen segments cover.
func (s *storeState) frozenLen() int {
	if s.l1 != nil {
		return len(s.l1.triples)
	}
	return len(s.post.triples)
}

// fastRead reports whether reads can serve raw main-segment posting views:
// no head overlay, no L1 tier, no pending tombstones — the zero-allocation
// path every quiescent (or freshly full-compacted) store stays on.
func (s *storeState) fastRead() bool {
	return len(s.headSorted) == 0 && s.l1 == nil && len(s.tombs) == 0
}

// killed reports whether the triple at index ti is retracted by a pending
// tombstone. Entries annihilated at earlier merges never reach this check —
// they are absent from every arena.
func (s *storeState) killed(ti int32) bool {
	if len(s.tombs) == 0 {
		return false
	}
	t := s.triples[ti]
	w, ok := s.tombs[[3]ID{t.S, t.P, t.O}]
	return ok && ti < w
}

// filterLive drops pending-tombstone-retracted entries from a canonical
// list, returning l itself when nothing is retracted.
func (s *storeState) filterLive(l []int32) []int32 {
	if len(s.tombs) == 0 {
		return l
	}
	for i, ti := range l {
		if s.killed(ti) {
			out := make([]int32, 0, len(l)-1)
			out = append(out, l[:i]...)
			for _, tj := range l[i+1:] {
				if !s.killed(tj) {
					out = append(out, tj)
				}
			}
			return out
		}
	}
	return l
}

// liveKeyCount counts the frozen segments' surviving copies of key k.
func (s *storeState) liveKeyCount(k [3]ID) int {
	n := 0
	count := func(po *postings) {
		for _, ti := range po.view(famSPO, po.bySPO[k]) {
			if !s.killed(ti) {
				n++
			}
		}
	}
	count(s.post)
	if s.l1 != nil {
		count(s.l1)
	}
	return n
}

// NewStore returns an empty store using the given dictionary (or a fresh one
// if dict is nil).
func NewStore(dict *Dict) *Store {
	if dict == nil {
		dict = NewDict()
	}
	// The posting families are built by Freeze (buildPostings), sized from
	// the triple count; an unfrozen store has no readable indexes.
	return &Store{dict: dict}
}

// Dict returns the store's term dictionary.
func (st *Store) Dict() *Dict { return st.dict }

// allTriples returns the store's full triple sequence: the snapshot's slice
// once frozen (which grows with live inserts), the staging slice before.
func (st *Store) allTriples() []Triple {
	if s := st.live.Load(); s != nil {
		return s.triples
	}
	return st.triples
}

// Len reports the number of triples in the store. On a live store it is
// monotone non-decreasing under concurrent inserts.
func (st *Store) Len() int { return len(st.allTriples()) }

// ErrFrozen is returned by Add after Freeze; use Insert for live ingest.
var ErrFrozen = errors.New("kg: store is frozen")

// validScore rejects scores that would poison the score-sorted posting order
// and Definition 5 normalisation (and could not round-trip through the
// binary snapshot format).
func validScore(score float64) error {
	if score < 0 || math.IsNaN(score) || math.IsInf(score, 0) {
		return fmt.Errorf("kg: invalid triple score %v", score)
	}
	return nil
}

// ValidateScore reports whether a triple score is storable: finite and
// non-negative, the same check Add and Insert apply. The durability layer
// validates before logging so a record can never be written for a triple the
// store would then reject.
func ValidateScore(score float64) error { return validScore(score) }

// Add appends a scored triple to an unfrozen store. Scores must be finite
// and non-negative; zero-scored triples are legal but never contribute to
// top-k under the paper's model. Duplicate (s,p,o) triples with different
// scores are all retained and all appear in match lists; answer-level
// semantics collapse them via DedupMax (Definition 8 keeps the maximum-score
// derivation). After Freeze, Add returns ErrFrozen — live ingest goes
// through Insert instead.
func (st *Store) Add(t Triple) error {
	if st.frozen {
		return ErrFrozen
	}
	if err := validScore(t.Score); err != nil {
		return err
	}
	st.triples = append(st.triples, t)
	return nil
}

// AddSPO encodes the three terms and appends the triple.
func (st *Store) AddSPO(s, p, o string, score float64) error {
	return st.Add(Triple{
		S:     st.dict.Encode(s),
		P:     st.dict.Encode(p),
		O:     st.dict.Encode(o),
		Score: score,
	})
}

// Freeze builds the score-sorted secondary indexes, parallelising the
// per-bucket sorts across a worker pool. Add must not be called afterwards;
// Insert may be. Freeze is idempotent but not itself safe for concurrent
// use; freeze from one goroutine, then read — and Insert — from as many as
// you like.
func (st *Store) Freeze() {
	if st.frozen {
		return
	}
	st.live.Store(&storeState{
		triples: st.triples,
		post:    buildPostings(st.triples, 0, nil, nil, &st.residualComputes),
		ops:     uint64(len(st.triples)),
	})
	st.frozen = true
}

// Frozen reports whether Freeze has been called.
func (st *Store) Frozen() bool { return st.frozen }

// DefaultHeadLimit is the head size at which Insert triggers an automatic
// compaction when SetHeadLimit was never called. It keeps the per-query
// head-merge overhead bounded while amortising the posting rebuild over
// enough inserts to stay cheap.
const DefaultHeadLimit = 1024

// SetHeadLimit sets the head size at which Insert automatically compacts:
// 0 restores DefaultHeadLimit, a negative value disables automatic
// compaction (explicit Compact only). Safe to call concurrently with
// Insert; it does not itself trigger a compaction.
func (st *Store) SetHeadLimit(n int) {
	st.mu.Lock()
	st.headLimit = n
	st.mu.Unlock()
}

// effectiveHeadLimit resolves the configured limit; caller holds mu.
func (st *Store) effectiveHeadLimit() int {
	if st.headLimit == 0 {
		return DefaultHeadLimit
	}
	return st.headLimit
}

// SetL1Limit configures tiered compaction: a positive n makes automatic head
// merges build a small frozen L1 tier, folded into the main arena once the
// tier covers at least n triples — bounding merge amplification under
// sustained churn (every head triple is re-sorted twice instead of once per
// head merge). 0 (the default) restores single-level merges. Explicit
// Compact always merges everything into the main arena regardless.
func (st *Store) SetL1Limit(n int) {
	st.mu.Lock()
	st.l1Limit = n
	st.mu.Unlock()
}

// L1Len reports the number of physical triple slots the L1 tier currently
// covers (0 without tiering).
func (st *Store) L1Len() int {
	if s := st.live.Load(); s != nil && s.l1 != nil {
		return len(s.l1.triples) - int(s.l1.lo)
	}
	return 0
}

// Tombstones reports the number of pending (unresolved) tombstones. Full
// compaction resolves every tombstone whose delete it covers.
func (st *Store) Tombstones() int {
	if s := st.live.Load(); s != nil {
		return len(s.tombs)
	}
	return 0
}

// Ops reports the number of applied mutation operations: the triple count at
// Freeze, plus one per Insert or Delete and two per Update since. The
// durability layer uses it as the store-side mirror of the WAL sequence —
// unlike Len it keeps counting when a delete retracts without appending.
func (st *Store) Ops() uint64 {
	if s := st.live.Load(); s != nil {
		return s.ops
	}
	return uint64(len(st.triples))
}

// LiveLen reports the number of live (non-retracted) triples. Len counts
// physical slots — retracted triples keep theirs for index stability — so
// LiveLen <= Len, with equality until the first Delete.
func (st *Store) LiveLen() int {
	if s := st.live.Load(); s != nil {
		return len(s.triples) - s.dead
	}
	return len(st.triples)
}

// HeadLen reports the number of triples currently in the mutable head (0 on
// an unfrozen or freshly compacted store).
func (st *Store) HeadLen() int {
	if s := st.live.Load(); s != nil {
		return len(s.headSorted)
	}
	return 0
}

// Version reports the store's logical content version: 0 until the first
// live mutation, +1 per Insert, Delete or Update. Compaction does not move
// it — the visible triple set is unchanged — so version-keyed caches survive
// merges; any mutation (deletes included) moves it, so no cache can serve a
// retracted fact.
func (st *Store) Version() uint64 { return st.version.Load() }

// Compactions reports how many head merges the store has performed.
func (st *Store) Compactions() uint64 { return st.compactions.Load() }

// Insert appends a scored triple to a live (frozen) store: the triple lands
// in the mutable head overlay, immediately visible to every subsequent read,
// and is merged into the frozen posting arenas when the head crosses the
// configured limit or Compact is called. Insert is safe for concurrent use
// with readers and other inserters. Before Freeze it behaves like Add.
func (st *Store) Insert(t Triple) error {
	compact, err := st.InsertDeferred(t)
	if compact != nil {
		compact()
	}
	return err
}

// InsertDeferred is Insert with any triggered automatic compaction split
// out: the insert itself is published (and visible) when the call returns,
// and the returned function — nil when no merge is due — runs the
// compaction. The durability layer uses it to keep posting rebuilds outside
// the mutex that orders WAL appends against store applies; everyone else
// should call Insert.
func (st *Store) InsertDeferred(t Triple) (compact func(), err error) {
	need, err := st.insert(t)
	if err == nil && need {
		return st.compactIfNeeded, nil
	}
	return nil, err
}

// insert publishes the head-extended snapshot and reports whether the head
// crossed the automatic-compaction limit. The merge itself is left to the
// caller so ShardedStore can run it outside its directory lock — a shard
// compacting must not stall inserts routed to other shards.
func (st *Store) insert(t Triple) (needCompact bool, err error) {
	if err := validScore(t.Score); err != nil {
		return false, err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if !st.frozen {
		st.triples = append(st.triples, t)
		return false, nil
	}
	s := st.live.Load()
	idx := int32(len(s.triples))
	// Appending may share the backing array with older snapshots; that is
	// safe because the new slot lies beyond every published snapshot's
	// length and the publish below is an atomic release.
	triples := append(s.triples, t)

	// Insert the new index into the head overlay at its canonical position:
	// after every head triple with a strictly greater score (equal scores
	// order by index, and the new index is the largest so far).
	pos := sort.Search(len(s.headSorted), func(i int) bool {
		return s.triples[s.headSorted[i]].Score < t.Score
	})
	head := make([]int32, 0, len(s.headSorted)+1)
	head = append(head, s.headSorted[:pos]...)
	head = append(head, idx)
	head = append(head, s.headSorted[pos:]...)

	dup := s.headDup
	if !dup {
		k := [3]ID{t.S, t.P, t.O}
		if s.post.bySPO[k].n > 0 || (s.l1 != nil && s.l1.bySPO[k].n > 0) {
			dup = true
		} else {
			for _, hi := range s.headSorted {
				h := s.triples[hi]
				if h.S == t.S && h.P == t.P && h.O == t.O {
					dup = true
					break
				}
			}
		}
	}

	ns := &storeState{
		triples: triples, post: s.post, l1: s.l1, headSorted: head,
		tombs: s.tombs, ops: s.ops + 1, dead: s.dead,
		headDup: dup, crossDup: s.crossDup,
	}
	st.live.Store(ns)
	st.version.Add(1)
	limit := st.effectiveHeadLimit()
	return limit > 0 && len(head) >= limit, nil
}

// ErrNotLive is returned by Delete and Update before Freeze: retractions and
// re-scores are live operations over an indexed store (pre-freeze staging is
// append-only — simply don't Add what you don't want).
var ErrNotLive = errors.New("kg: store must be frozen before Delete/Update")

// Delete retracts every live copy of the (s,p,o) key — frozen, L1 and head —
// and returns how many were removed. The retraction is visible to every
// subsequent read the moment Delete returns: head copies leave the overlay
// physically, frozen copies are masked by a tombstone that the next merge
// covering them annihilates into the arena rebuild, so a compacted segment
// never contains a retracted fact. A later Insert of the same key is
// unaffected (the tombstone's watermark orders before it). Deleting a key
// with no live copies is a no-op that still counts as one operation. Safe
// for concurrent use with readers and other mutators; returns ErrNotLive
// before Freeze.
func (st *Store) Delete(s, p, o ID) (int, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.deleteLocked([3]ID{s, p, o})
}

// deleteLocked applies a delete under st.mu.
func (st *Store) deleteLocked(k [3]ID) (int, error) {
	if !st.frozen {
		return 0, ErrNotLive
	}
	s := st.live.Load()
	removed := s.liveKeyCount(k)
	head := s.headSorted
	if dropped := countHeadKey(s, k); dropped > 0 {
		head = dropHeadKey(s, k, dropped)
		removed += dropped
	}
	ns := &storeState{
		triples: s.triples, post: s.post, l1: s.l1, headSorted: head,
		tombs: s.tombs, ops: s.ops + 1, dead: s.dead + removed,
		headDup: s.headDup, crossDup: s.crossDup,
	}
	if removed > 0 {
		ns.tombs = withTombstone(s.tombs, k, int32(len(s.triples)))
	}
	st.live.Store(ns)
	st.version.Add(1)
	return removed, nil
}

// DeleteSPO retracts every live copy of the key named by the three terms.
// Unknown terms mean the key never existed: DeleteSPO returns (0, nil)
// without interning them (and without consuming an operation).
func (st *Store) DeleteSPO(s, p, o string) (int, error) {
	sid, ok := st.dict.Lookup(s)
	if !ok {
		return 0, nil
	}
	pid, ok := st.dict.Lookup(p)
	if !ok {
		return 0, nil
	}
	oid, ok := st.dict.Lookup(o)
	if !ok {
		return 0, nil
	}
	return st.Delete(sid, pid, oid)
}

// countHeadKey counts head entries carrying key k.
func countHeadKey(s *storeState, k [3]ID) int {
	n := 0
	for _, hi := range s.headSorted {
		t := s.triples[hi]
		if t.S == k[0] && t.P == k[1] && t.O == k[2] {
			n++
		}
	}
	return n
}

// dropHeadKey rebuilds the head overlay without key k's entries (canonical
// order is preserved — dropping never reorders).
func dropHeadKey(s *storeState, k [3]ID, dropped int) []int32 {
	head := make([]int32, 0, len(s.headSorted)-dropped)
	for _, hi := range s.headSorted {
		t := s.triples[hi]
		if t.S == k[0] && t.P == k[1] && t.O == k[2] {
			continue
		}
		head = append(head, hi)
	}
	return head
}

// withTombstone copies the tombstone map with k's watermark set to w.
// Watermarks only grow per key — a later delete supersedes an earlier one.
func withTombstone(tombs map[[3]ID]int32, k [3]ID, w int32) map[[3]ID]int32 {
	out := make(map[[3]ID]int32, len(tombs)+1)
	for kk, ww := range tombs {
		out[kk] = ww
	}
	out[k] = w
	return out
}

// Update re-scores the (s,p,o) key, latest-wins: every live copy is
// retracted and one copy with t.Score is inserted, in a single atomically
// published snapshot — no read can observe the key half-updated or doubled.
// It counts as two operations (the WAL logs it as a tombstone plus an
// insert). Updating an absent key inserts it. Returns ErrNotLive before
// Freeze.
func (st *Store) Update(t Triple) error {
	compact, err := st.UpdateDeferred(t)
	if compact != nil {
		compact()
	}
	return err
}

// UpdateDeferred is Update with any triggered automatic compaction split out
// (see InsertDeferred for why the durability layer needs this).
func (st *Store) UpdateDeferred(t Triple) (compact func(), err error) {
	need, err := st.update(t)
	if err == nil && need {
		return st.compactIfNeeded, nil
	}
	return nil, err
}

// update applies a latest-wins re-score under st.mu and reports whether the
// head crossed the automatic-compaction limit.
func (st *Store) update(t Triple) (needCompact bool, err error) {
	if err := validScore(t.Score); err != nil {
		return false, err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if !st.frozen {
		return false, ErrNotLive
	}
	s := st.live.Load()
	k := [3]ID{t.S, t.P, t.O}
	removed := s.liveKeyCount(k)
	head := s.headSorted
	if dropped := countHeadKey(s, k); dropped > 0 {
		head = dropHeadKey(s, k, dropped)
		removed += dropped
	}
	idx := int32(len(s.triples))
	triples := append(s.triples, t)
	pos := sort.Search(len(head), func(i int) bool {
		return s.triples[head[i]].Score < t.Score
	})
	nh := make([]int32, 0, len(head)+1)
	nh = append(nh, head[:pos]...)
	nh = append(nh, idx)
	nh = append(nh, head[pos:]...)

	ns := &storeState{
		triples: triples, post: s.post, l1: s.l1, headSorted: nh,
		tombs: s.tombs, ops: s.ops + 2, dead: s.dead + removed,
		headDup: s.headDup, crossDup: s.crossDup,
	}
	if removed > 0 {
		// The watermark predates the fresh copy's index, so it retracts
		// every old copy and leaves the new one live.
		ns.tombs = withTombstone(s.tombs, k, idx)
	}
	st.live.Store(ns)
	st.version.Add(1)
	limit := st.effectiveHeadLimit()
	return limit > 0 && len(nh) >= limit, nil
}

// UpdateSPO encodes the three terms and applies a latest-wins re-score.
func (st *Store) UpdateSPO(s, p, o string, score float64) error {
	return st.Update(Triple{
		S:     st.dict.Encode(s),
		P:     st.dict.Encode(p),
		O:     st.dict.Encode(o),
		Score: score,
	})
}

// compactIfNeeded re-checks the head against the limit and merges if it
// still qualifies (a concurrent Compact may have emptied it since the
// triggering insert returned). The compacting flag bounds automatic merges
// to one in flight: under a sustained insert burst every insert past the
// limit would otherwise kick off its own redundant rebuild. With tiering
// enabled the head merges into the L1 tier, and the L1 folds into the main
// arena only once it crosses its own (larger) threshold.
func (st *Store) compactIfNeeded() {
	if !st.compacting.CompareAndSwap(false, true) {
		return
	}
	defer st.compacting.Store(false)
	st.mu.Lock()
	if !st.frozen {
		st.mu.Unlock()
		return
	}
	s := st.live.Load()
	limit := st.effectiveHeadLimit()
	l1Limit := st.l1Limit
	if limit <= 0 || len(s.headSorted) < limit {
		st.mu.Unlock()
		return
	}
	st.mu.Unlock()
	if l1Limit <= 0 {
		st.runMerge(true)
		return
	}
	st.runMerge(false)
	if s := st.live.Load(); s.l1 != nil && len(s.l1.triples)-int(s.l1.lo) >= l1Limit {
		st.runMerge(true)
	}
}

// InsertSPO encodes the three terms and inserts the triple live.
func (st *Store) InsertSPO(s, p, o string, score float64) error {
	return st.Insert(Triple{
		S:     st.dict.Encode(s),
		P:     st.dict.Encode(p),
		O:     st.dict.Encode(o),
		Score: score,
	})
}

// Compact merges everything into the main frozen segment: the full triple
// sequence — head, L1 tier and all — is re-laid into the counting-sort
// posting arenas (reusing the parallel per-bucket sort worker pool), every
// covered tombstone is annihilated (its victims leave the arenas for good),
// and a fresh all-frozen snapshot is published. Neither readers nor writers
// are blocked for the rebuild — the expensive posting build runs outside the
// mutex against an immutable snapshot, and triples mutated meanwhile are
// folded back in as the new head at publish time. The visible triple set is
// unchanged throughout, so answers before and after a compaction are
// bit-identical. No-op on an unfrozen store or when there is nothing to
// merge (empty head, no L1, no pending tombstones).
func (st *Store) Compact() {
	st.mu.Lock()
	if !st.frozen {
		st.mu.Unlock()
		return
	}
	s := st.live.Load()
	if s.fastRead() {
		st.mu.Unlock()
		return
	}
	st.mu.Unlock()
	st.runMerge(true)
}

// runMerge performs one merge step under mergeMu: full folds everything into
// the main arena; !full (tiered) re-freezes the head into the L1 tier and
// leaves the main arena untouched. The snapshot is loaded after mergeMu is
// acquired, so the build input always extends the published frozen coverage;
// concurrent mutations during the build land beyond it and stay in the head
// of the published state.
func (st *Store) runMerge(full bool) {
	st.mergeMu.Lock()
	defer st.mergeMu.Unlock()
	mergeStart := time.Now()
	defer func() {
		ns := time.Since(mergeStart).Nanoseconds()
		if full {
			st.compactionFullNS.Add(ns)
		} else {
			st.compactionTieredNS.Add(ns)
		}
	}()
	s := st.live.Load()
	if full {
		if s.fastRead() {
			return
		}
	} else if len(s.headSorted) == 0 {
		return
	}
	prevDead := s.post.dead
	if s.l1 != nil {
		prevDead = s.l1.dead
	}
	var post, l1 *postings
	if full {
		post = buildPostings(s.triples, 0, prevDead, s.tombs, &st.residualComputes)
	} else {
		post = s.post
		l1 = buildPostings(s.triples, int32(len(s.post.triples)), prevDead, s.tombs, &st.residualComputes)
	}
	coverage := len(s.triples)

	st.mu.Lock()
	defer st.mu.Unlock()
	// Merges never race each other (mergeMu), and mutators only extend
	// triples/head/tombs — so cur differs from s only by mutations applied
	// during the build.
	cur := st.live.Load()
	ns := &storeState{
		triples: cur.triples, post: post, l1: l1,
		ops: cur.ops, dead: cur.dead,
	}
	if full {
		// Tombstones the build consumed are resolved — their victims are in
		// the dead bitmap. Ones that arrived (or were re-armed at a new
		// watermark) during the build stay pending, masking any arena
		// entries they cover until the next merge.
		for k, w := range cur.tombs {
			if s.tombs[k] != w {
				if ns.tombs == nil {
					ns.tombs = make(map[[3]ID]int32)
				}
				ns.tombs[k] = w
			}
		}
	} else {
		// Tiered merges never resolve tombstones: a key's main-segment
		// copies are still in the untouched main arena, so dropping its
		// tombstone would resurrect them. Resolution waits for a full merge.
		ns.tombs = cur.tombs
		ns.crossDup = crossDupFor(post, l1)
	}
	// cur's head is in canonical order; dropping the entries the new
	// postings absorbed preserves it.
	for _, hi := range cur.headSorted {
		if int(hi) >= coverage {
			ns.headSorted = append(ns.headSorted, hi)
		}
	}
	ns.headDup = headDupFor(ns)
	st.live.Store(ns)
	st.compactions.Add(1)
	if full {
		st.compactionsFull.Add(1)
	} else {
		st.compactionsTiered.Add(1)
	}
}

// headDupFor recomputes the head-duplicate flag exactly for a snapshot: a
// head triple repeating a frozen (s,p,o) key or another head triple's key.
// Quadratic in the head length, which is tiny right after a compaction.
func headDupFor(s *storeState) bool {
	for i, hi := range s.headSorted {
		t := s.triples[hi]
		k := [3]ID{t.S, t.P, t.O}
		if s.post.bySPO[k].n > 0 || (s.l1 != nil && s.l1.bySPO[k].n > 0) {
			return true
		}
		for _, hj := range s.headSorted[:i] {
			h := s.triples[hj]
			if h.S == t.S && h.P == t.P && h.O == t.O {
				return true
			}
		}
	}
	return false
}

// crossDupFor reports whether any L1 (s,p,o) key also has main-segment
// entries — a merged match list could then repeat a binding across segments.
func crossDupFor(post, l1 *postings) bool {
	for k := range l1.bySPO {
		if post.bySPO[k].n > 0 {
			return true
		}
	}
	return false
}

// HasDuplicates reports whether any (s,p,o) key may appear more than once
// (with the same or different scores) across the frozen segments and the
// head. Operators use this to skip binding deduplication when a match list
// provably cannot repeat a binding; after deletes it may over-approximate
// (the surviving copy could be unique), which costs a dedup map, never
// correctness.
func (st *Store) HasDuplicates() bool {
	if s := st.live.Load(); s != nil {
		if s.post.hasDuplicates || s.headDup || s.crossDup {
			return true
		}
		return s.l1 != nil && s.l1.hasDuplicates
	}
	return false
}

// Triple returns the triple at index i (as stored; indexes are stable across
// inserts and compactions).
func (st *Store) Triple(i int32) Triple { return st.allTriples()[i] }

// state returns the current read snapshot, panicking before Freeze.
func (st *Store) state() *storeState {
	s := st.live.Load()
	if s == nil {
		panic("kg: read before Freeze")
	}
	return s
}

// MatchList returns the indexes of triples matching p, sorted by raw score
// descending (ties broken by triple index for determinism). For indexed
// shapes with an empty head this is a zero-allocation, lock-free view of a
// posting; residual shapes are computed once per segment generation and
// cached; a non-empty head produces a merged list cached per snapshot. The
// result must not be mutated by callers.
func (st *Store) MatchList(p Pattern) []int32 {
	return st.state().matchList(p)
}

func (s *storeState) matchList(p Pattern) []int32 {
	if s.fastRead() {
		return s.post.matchList(p)
	}
	c := s.merged.Load()
	if c == nil {
		c = newListCache()
		if !s.merged.CompareAndSwap(nil, c) {
			c = s.merged.Load()
		}
	}
	return c.get(p.Key(), func() []int32 { return s.computeMerged(p) })
}

// computeMerged merges the main segment's (tombstone-masked) match list with
// the L1 tier's and the head's matches, in canonical order. Each source's
// internal order is already canonical, and sources are index-disjoint, so a
// pairwise canonical merge is exact: on equal scores the index tiebreak
// interleaves them deterministically.
func (s *storeState) computeMerged(p Pattern) []int32 {
	merged := s.filterLive(s.post.matchList(p))
	if s.l1 != nil {
		merged = s.merge2(merged, s.filterLive(s.l1.matchList(p)))
	}
	var head []int32
	for _, hi := range s.headSorted {
		if p.Matches(s.triples[hi]) {
			head = append(head, hi)
		}
	}
	return s.merge2(merged, head)
}

// merge2 merges two canonically-ordered (score descending, index ascending)
// index-disjoint lists, returning one of them unchanged when the other is
// empty.
func (s *storeState) merge2(a, b []int32) []int32 {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return b
	}
	out := make([]int32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		x, y := a[i], b[j]
		tx, ty := s.triples[x], s.triples[y]
		if tx.Score > ty.Score || (tx.Score == ty.Score && x < y) {
			out = append(out, x)
			i++
		} else {
			out = append(out, y)
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// Cardinality returns the number of triples matching p, head included,
// without materialising a merged list.
func (st *Store) Cardinality(p Pattern) int {
	return st.state().cardinality(p)
}

// cardinality counts the snapshot's live matches of p without materialising
// a merged list.
func (s *storeState) cardinality(p Pattern) int {
	n := s.countLive(s.post.matchList(p))
	if s.l1 != nil {
		n += s.countLive(s.l1.matchList(p))
	}
	for _, hi := range s.headSorted {
		if p.Matches(s.triples[hi]) {
			n++
		}
	}
	return n
}

// countLive counts a canonical list's entries not retracted by a pending
// tombstone, allocation-free.
func (s *storeState) countLive(l []int32) int {
	if len(s.tombs) == 0 {
		return len(l)
	}
	n := 0
	for _, ti := range l {
		if !s.killed(ti) {
			n++
		}
	}
	return n
}

// MaxScore returns the maximum raw score among matches of p, or 0 if there
// are no matches. Per Definition 5 this is the normalisation constant. The
// frozen side is an O(1) head lookup of the score-sorted posting; the head
// overlay is scanned in score order until its first match.
func (st *Store) MaxScore(p Pattern) float64 {
	return st.state().maxScore(p)
}

// maxScore computes the snapshot's Definition 5 normalisation constant. Each
// source is score-sorted, so only its first live match matters; the head is
// physically delete-free, so its first match is live by construction.
func (s *storeState) maxScore(p Pattern) float64 {
	max := 0.0
	firstLive := func(l []int32) {
		for _, ti := range l {
			if !s.killed(ti) {
				if sc := s.triples[ti].Score; sc > max {
					max = sc
				}
				return
			}
		}
	}
	firstLive(s.post.matchList(p))
	if s.l1 != nil {
		firstLive(s.l1.matchList(p))
	}
	for _, hi := range s.headSorted {
		if p.Matches(s.triples[hi]) {
			if sc := s.triples[hi].Score; sc > max {
				max = sc
			}
			break
		}
	}
	return max
}

// NormalizedScore computes S(t|q) per Definition 5: the triple's raw score
// divided by the maximum raw score among all matches of the pattern. The
// result is in [0,1]. It returns 0 when the pattern has no matches.
func (st *Store) NormalizedScore(p Pattern, t Triple) float64 {
	max := st.MaxScore(p)
	if max == 0 {
		return 0
	}
	return t.Score / max
}

// NormalizedScores returns the normalised score list for p, sorted
// descending, aligned with MatchList(p). The slice is freshly allocated and
// owned by the caller.
func (st *Store) NormalizedScores(p Pattern) []float64 {
	return normalizedScores(st, p)
}

// PatternString renders a pattern with decoded constants.
func (st *Store) PatternString(p Pattern) string { return patternString(st.dict, p) }

// QueryString renders a query with decoded constants.
func (st *Store) QueryString(q Query) string { return queryString(st.dict, q) }
