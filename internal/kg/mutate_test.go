package kg

import (
	"fmt"
	"math/rand"
	"testing"
)

// This file is the full-mutability correctness contract at the storage
// layer: a store driven through interleaved Insert/Delete/Update/Compact
// schedules must be indistinguishable — match lists, cardinalities, max
// scores, normalised scores, evaluation, counting — from a flat store
// rebuilt from scratch over the *surviving* facts, at every interleaving
// point, for both layouts, every shard count, and with and without the L1
// compaction tier. Scores compare with exact float equality throughout.

// mutModel replays the mutation semantics the store promises: Insert
// appends, Delete retracts every live copy of the key, Update retracts the
// key and appends one copy with the new score. The survivor slice is the
// rebuild source for the flat oracle.
type mutModel struct {
	survivors []Triple
}

func (m *mutModel) insert(t Triple) { m.survivors = append(m.survivors, t) }

func (m *mutModel) delete(s, p, o ID) int {
	kept := m.survivors[:0]
	removed := 0
	for _, tr := range m.survivors {
		if tr.S == s && tr.P == p && tr.O == o {
			removed++
			continue
		}
		kept = append(kept, tr)
	}
	m.survivors = kept
	return removed
}

func (m *mutModel) update(t Triple) {
	m.delete(t.S, t.P, t.O)
	m.survivors = append(m.survivors, t)
}

// freezeLive freezes either live layout (Freeze is not part of LiveGraph —
// it belongs to the build phase).
func freezeLive(g LiveGraph) {
	switch s := g.(type) {
	case *Store:
		s.Freeze()
	case *ShardedStore:
		s.Freeze()
	}
}

// resolveList maps a match list's global indexes to the triples they name,
// so stores with different physical layouts (tombstoned slots vs a dense
// rebuild) compare on content.
func resolveList(g Graph, list []int32) []Triple {
	out := make([]Triple, len(list))
	for i, idx := range list {
		out[i] = g.Triple(idx)
	}
	return out
}

// assertMutatedAgree compares every read-path observable of the mutated
// graph g against the survivor-rebuilt flat oracle. Unlike
// assertGraphsAgree it cannot compare global indexes (g keeps retracted
// triples in dead physical slots), so lists compare as resolved triple
// sequences — which pins the canonical order too, since survivors keep
// their relative insertion order in both stores.
func assertMutatedAgree(t *testing.T, label string, g LiveGraph, flat *Store) {
	t.Helper()
	if g.LiveLen() != flat.Len() {
		t.Fatalf("%s: LiveLen %d, oracle %d", label, g.LiveLen(), flat.Len())
	}
	if flat.HasDuplicates() && !g.HasDuplicates() {
		t.Fatalf("%s: oracle has duplicates, mutated store reports none", label)
	}
	for _, p := range shapePatterns() {
		got, want := resolveList(g, g.MatchList(p)), resolveList(flat, flat.MatchList(p))
		if len(got) != len(want) {
			t.Fatalf("%s pattern %v: %d matches, oracle %d", label, p, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s pattern %v: match %d is %v, oracle %v", label, p, i, got[i], want[i])
			}
		}
		if gc, wc := g.Cardinality(p), flat.Cardinality(p); gc != wc {
			t.Fatalf("%s pattern %v: cardinality %d, oracle %d", label, p, gc, wc)
		}
		if gm, wm := g.MaxScore(p), flat.MaxScore(p); gm != wm {
			t.Fatalf("%s pattern %v: max score %v, oracle %v", label, p, gm, wm)
		}
		gs, ws := g.NormalizedScores(p), flat.NormalizedScores(p)
		if len(gs) != len(ws) {
			t.Fatalf("%s pattern %v: %d normalised scores, oracle %d", label, p, len(gs), len(ws))
		}
		for i := range gs {
			if gs[i] != ws[i] {
				t.Fatalf("%s pattern %v: normalised score %d is %v, oracle %v", label, p, i, gs[i], ws[i])
			}
		}
	}
	q := NewQuery(
		NewPattern(Var("x"), Const(ID(0)), Var("y")),
		NewPattern(Var("y"), Const(ID(1)), Var("z")),
	)
	got, want := g.Evaluate(q), flat.Evaluate(q)
	if len(got) != len(want) {
		t.Fatalf("%s: %d answers, oracle %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i].Binding.Compare(want[i].Binding) != 0 || got[i].Score != want[i].Score {
			t.Fatalf("%s: answer %d is %v, oracle %v", label, i, got[i], want[i])
		}
	}
	if gc, wc := g.Count(q), flat.Count(q); gc != wc {
		t.Fatalf("%s: count %d, oracle %d", label, gc, wc)
	}
}

// driveMutations runs a deterministic interleaved mutation schedule against
// g (already frozen over base) and checks it against the survivor oracle at
// random interleaving points and at the end. compactShard is nil for the
// flat layout.
func driveMutations(t *testing.T, label string, seed int64, g LiveGraph, dict *Dict,
	model *mutModel, stream []Triple, compactShard func(*rand.Rand)) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	check := func(tag string) {
		t.Helper()
		assertMutatedAgree(t, fmt.Sprintf("%s %s", label, tag),
			g, rebuiltFlat(t, dict, model.survivors))
	}
	check("freeze point")
	pos := 0
	// randomKey picks a key biased toward live facts so deletes and updates
	// usually hit something, with a tail of misses (no-op deletes, inserting
	// updates).
	randomKey := func() (ID, ID, ID) {
		if len(model.survivors) > 0 && rng.Intn(5) != 0 {
			tr := model.survivors[rng.Intn(len(model.survivors))]
			return tr.S, tr.P, tr.O
		}
		return ID(rng.Intn(8)), ID(rng.Intn(3)), ID(rng.Intn(8))
	}
	for pos < len(stream) || rng.Intn(4) != 0 {
		switch op := rng.Intn(20); {
		case op < 9 && pos < len(stream): // insert
			if err := g.Insert(stream[pos]); err != nil {
				t.Fatal(err)
			}
			model.insert(stream[pos])
			pos++
		case op < 13: // delete (usually a live key, sometimes a miss)
			s, p, o := randomKey()
			got, err := g.Delete(s, p, o)
			if err != nil {
				t.Fatal(err)
			}
			if want := model.delete(s, p, o); got != want {
				t.Fatalf("%s: Delete(%d,%d,%d) removed %d, oracle %d", label, s, p, o, got, want)
			}
		case op < 16: // latest-wins update
			s, p, o := randomKey()
			tr := Triple{S: s, P: p, O: o, Score: float64(rng.Intn(50))}
			if err := g.Update(tr); err != nil {
				t.Fatal(err)
			}
			model.update(tr)
		case op == 16:
			g.Compact()
		case op == 17 && compactShard != nil:
			compactShard(rng)
		default:
			check(fmt.Sprintf("pos %d/%d", pos, len(stream)))
		}
		if pos == len(stream) && rng.Intn(3) == 0 {
			break
		}
	}
	g.Compact()
	check("final compacted")
	if st, ok := g.(*Store); ok && st.Tombstones() != 0 {
		t.Fatalf("%s: %d tombstones survive a full compaction", label, st.Tombstones())
	}
	if ss, ok := g.(*ShardedStore); ok && ss.Tombstones() != 0 {
		t.Fatalf("%s: %d tombstones survive a full compaction", label, ss.Tombstones())
	}
}

// TestMutableStoreMatchesRebuild drives the flat store through interleaved
// insert/delete/update/compact schedules — single-level and tiered — against
// the survivor-rebuild oracle.
func TestMutableStoreMatchesRebuild(t *testing.T) {
	for _, l1 := range []int{0, 7} {
		for trial := int64(0); trial < 3; trial++ {
			dict, triples := randomTripleSeq(t, 7300+trial, 110)
			base := len(triples) / 2
			st := NewStore(dict)
			for _, tr := range triples[:base] {
				if err := st.Add(tr); err != nil {
					t.Fatal(err)
				}
			}
			st.Freeze()
			st.SetHeadLimit(6) // aggressive merges: every tier transition exercised
			st.SetL1Limit(l1)
			model := &mutModel{survivors: append([]Triple(nil), triples[:base]...)}
			label := fmt.Sprintf("flat l1=%d trial %d", l1, trial)
			driveMutations(t, label, 510+trial, st, dict, model, triples[base:], nil)
		}
	}
}

// TestMutableShardedMatchesRebuild is the same contract over the sharded
// layout, across the shard-count ladder, with per-shard compactions mixed
// into the schedule.
func TestMutableShardedMatchesRebuild(t *testing.T) {
	for _, l1 := range []int{0, 7} {
		for _, shards := range shardCounts {
			dict, triples := randomTripleSeq(t, 8700+int64(shards), 110)
			base := len(triples) / 2
			ss := NewShardedStore(dict, shards)
			for _, tr := range triples[:base] {
				if err := ss.Add(tr); err != nil {
					t.Fatal(err)
				}
			}
			ss.Freeze()
			ss.SetHeadLimit(6)
			ss.SetL1Limit(l1)
			model := &mutModel{survivors: append([]Triple(nil), triples[:base]...)}
			label := fmt.Sprintf("sharded=%d l1=%d", shards, l1)
			driveMutations(t, label, 620+int64(shards), ss, dict, model, triples[base:],
				func(rng *rand.Rand) { ss.CompactShard(rng.Intn(shards)) })
		}
	}
}

// TestDeleteSemantics pins the Delete contract edge cases on both layouts:
// pre-freeze rejection, unknown-key no-ops, full multi-copy retraction,
// head-resident copies, and re-insertion after a delete.
func TestDeleteSemantics(t *testing.T) {
	build := func(shards int) LiveGraph {
		dict := NewDict()
		for dict.Len() < 12 {
			dict.Encode(fmt.Sprintf("term%d", dict.Len()))
		}
		if shards > 1 {
			return NewShardedStore(dict, shards)
		}
		return NewStore(dict)
	}
	for _, shards := range []int{1, 3} {
		label := fmt.Sprintf("shards=%d", shards)
		g := build(shards)
		if _, err := g.Delete(0, 1, 2); err == nil {
			t.Fatalf("%s: Delete on an unfrozen store succeeded", label)
		}
		key := Triple{S: 1, P: 2, O: 3, Score: 10}
		add := func(tr Triple) {
			t.Helper()
			var err error
			switch s := g.(type) {
			case *Store:
				err = s.Add(tr)
			case *ShardedStore:
				err = s.Add(tr)
			}
			if err != nil {
				t.Fatal(err)
			}
		}
		add(key)
		dup := key
		dup.Score = 4
		add(dup)
		add(Triple{S: 1, P: 2, O: 4, Score: 7})
		freezeLive(g)
		g.SetHeadLimit(-1)
		// A third copy lands in the head: delete must retract frozen and head
		// copies alike.
		head := key
		head.Score = 2
		if err := g.Insert(head); err != nil {
			t.Fatal(err)
		}
		v := g.Version()
		if n, err := g.Delete(9, 9, 9); err != nil || n != 0 {
			t.Fatalf("%s: deleting an absent key: (%d, %v)", label, n, err)
		}
		if g.Version() == v {
			t.Fatalf("%s: no-op delete did not move the version", label)
		}
		if n, err := g.Delete(key.S, key.P, key.O); err != nil || n != 3 {
			t.Fatalf("%s: deleting 3 copies: (%d, %v)", label, n, err)
		}
		p := NewPattern(Const(key.S), Const(key.P), Const(key.O))
		if c := g.Cardinality(p); c != 0 {
			t.Fatalf("%s: deleted key still has cardinality %d", label, c)
		}
		if g.LiveLen() != 1 {
			t.Fatalf("%s: LiveLen %d after deleting 3 of 4", label, g.LiveLen())
		}
		// Re-insertion after the tombstone must be visible immediately and
		// survive compaction.
		re := key
		re.Score = 99
		if err := g.Insert(re); err != nil {
			t.Fatal(err)
		}
		for _, stage := range []string{"head", "compacted"} {
			if stage == "compacted" {
				g.Compact()
			}
			if c := g.Cardinality(p); c != 1 {
				t.Fatalf("%s %s: re-inserted key cardinality %d", label, stage, c)
			}
			if m := g.MaxScore(p); m != 99 {
				t.Fatalf("%s %s: re-inserted key max score %v", label, stage, m)
			}
		}
	}
}

// TestUpdateSemantics pins latest-wins re-scoring: every live copy collapses
// to one with the new score, an absent key is inserted, and no interleaving
// point observes the key missing.
func TestUpdateSemantics(t *testing.T) {
	for _, shards := range []int{1, 3} {
		label := fmt.Sprintf("shards=%d", shards)
		dict := NewDict()
		for dict.Len() < 12 {
			dict.Encode(fmt.Sprintf("term%d", dict.Len()))
		}
		var g LiveGraph
		if shards > 1 {
			g = NewShardedStore(dict, shards)
		} else {
			g = NewStore(dict)
		}
		if err := g.Update(Triple{S: 0, P: 1, O: 2, Score: 5}); err == nil {
			t.Fatalf("%s: Update on an unfrozen store succeeded", label)
		}
		freezeLive(g)
		g.SetHeadLimit(-1)
		key := Triple{S: 1, P: 2, O: 3, Score: 10}
		// Update of an absent key inserts it.
		if err := g.Update(key); err != nil {
			t.Fatal(err)
		}
		p := NewPattern(Const(key.S), Const(key.P), Const(key.O))
		if c, m := g.Cardinality(p), g.MaxScore(p); c != 1 || m != 10 {
			t.Fatalf("%s: inserting update: card %d max %v", label, c, m)
		}
		// Duplicate copies collapse to one on the next update.
		dup := key
		dup.Score = 3
		if err := g.Insert(dup); err != nil {
			t.Fatal(err)
		}
		up := key
		up.Score = 42
		if err := g.Update(up); err != nil {
			t.Fatal(err)
		}
		for _, stage := range []string{"head", "compacted"} {
			if stage == "compacted" {
				g.Compact()
			}
			if c, m := g.Cardinality(p), g.MaxScore(p); c != 1 || m != 42 {
				t.Fatalf("%s %s: card %d max %v, want 1/42", label, stage, c, m)
			}
		}
		if g.LiveLen() != 1 {
			t.Fatalf("%s: LiveLen %d", label, g.LiveLen())
		}
	}
}

// TestTieredCompaction pins the L1 mechanics on the flat store: with
// tiering on, head merges land in the L1 tier without rebuilding the main
// arenas; once L1 crosses its limit the next merge folds everything into
// the main arenas and drops the tier.
func TestTieredCompaction(t *testing.T) {
	dict, triples := randomTripleSeq(t, 1234, 60)
	st := NewStore(dict)
	for _, tr := range triples[:30] {
		if err := st.Add(tr); err != nil {
			t.Fatal(err)
		}
	}
	st.Freeze()
	st.SetHeadLimit(4)
	st.SetL1Limit(1 << 20) // unreachable: every merge stays tiered
	mainBefore := st.live.Load().post
	for _, tr := range triples[30:] {
		if err := st.Insert(tr); err != nil {
			t.Fatal(err)
		}
	}
	if st.L1Len() == 0 {
		t.Fatal("no L1 tier built under tiered auto-compaction")
	}
	if st.live.Load().post != mainBefore {
		t.Fatal("tiered merges rebuilt the main posting arenas")
	}
	assertMutatedAgree(t, "tiered", st, rebuiltFlat(t, dict, triples))
	// A full Compact folds the tier away.
	st.Compact()
	if st.L1Len() != 0 || st.HeadLen() != 0 {
		t.Fatalf("full Compact left L1=%d head=%d", st.L1Len(), st.HeadLen())
	}
	assertMutatedAgree(t, "folded", st, rebuiltFlat(t, dict, triples))

	// With a small L1 limit, crossing it folds automatically.
	st2 := NewStore(dict)
	st2.Freeze()
	st2.SetHeadLimit(3)
	st2.SetL1Limit(10)
	for _, tr := range triples {
		if err := st2.Insert(tr); err != nil {
			t.Fatal(err)
		}
	}
	if st2.L1Len() >= 10+3 {
		t.Fatalf("L1 grew to %d with limit 10", st2.L1Len())
	}
	assertMutatedAgree(t, "auto-folded", st2, rebuiltFlat(t, dict, triples))
}

// TestMutatedMatchListAllocsAfterCompact is the zero-alloc acceptance guard
// under mutation: after deletes and updates are fully compacted away (no
// tombstones, no L1, empty head) indexed MatchList reads on both layouts
// are allocation-free slice views again — the read path must not pay for
// mutability it is not using.
func TestMutatedMatchListAllocsAfterCompact(t *testing.T) {
	dict, triples := randomTripleSeq(t, 4321, 200)
	pat := NewPattern(Var("s"), Const(ID(1)), Var("o"))
	for _, shards := range []int{1, 4} {
		var g LiveGraph
		if shards > 1 {
			g = NewShardedStore(dict, shards)
		} else {
			g = NewStore(dict)
		}
		for _, tr := range triples[:150] {
			var err error
			switch s := g.(type) {
			case *Store:
				err = s.Add(tr)
			case *ShardedStore:
				err = s.Add(tr)
			}
			if err != nil {
				t.Fatal(err)
			}
		}
		freezeLive(g)
		g.SetHeadLimit(-1)
		for _, tr := range triples[150:] {
			if err := g.Insert(tr); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 20; i++ {
			tr := triples[i*7]
			if _, err := g.Delete(tr.S, tr.P, tr.O); err != nil {
				t.Fatal(err)
			}
		}
		if err := g.Update(Triple{S: 1, P: 1, O: 1, Score: 30}); err != nil {
			t.Fatal(err)
		}
		g.Compact()
		g.MatchList(pat) // materialise any merged global list once
		if allocs := testing.AllocsPerRun(100, func() {
			if len(g.MatchList(pat)) == 0 {
				t.Fatal("empty list")
			}
		}); allocs != 0 {
			t.Fatalf("shards=%d: compacted post-mutation MatchList: %v allocs, want 0", shards, allocs)
		}
	}
}
