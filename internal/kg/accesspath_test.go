package kg

import "testing"

// These tests exercise every index access path in candidates(): fully bound,
// (P,O), (S,P), (S,O), single positions, and full scans — including
// variable-predicate patterns that only the byS/byO paths can serve.
func accessStore(t *testing.T) *Store {
	t.Helper()
	st := NewStore(nil)
	add := func(s, p, o string, sc float64) {
		if err := st.AddSPO(s, p, o, sc); err != nil {
			t.Fatal(err)
		}
	}
	add("a", "knows", "b", 5)
	add("a", "likes", "b", 4)
	add("a", "knows", "c", 3)
	add("b", "knows", "c", 2)
	add("c", "likes", "a", 1)
	st.Freeze()
	return st
}

func lookup(t *testing.T, st *Store, s string) ID {
	t.Helper()
	id, ok := st.Dict().Lookup(s)
	if !ok {
		t.Fatalf("term %q missing", s)
	}
	return id
}

func TestAccessPathVarPredicate(t *testing.T) {
	st := accessStore(t)
	a := lookup(t, st, "a")
	b := lookup(t, st, "b")
	// 〈a ?p b〉: S and O bound, predicate variable.
	p := NewPattern(Const(a), Var("p"), Const(b))
	if got := st.Cardinality(p); got != 2 {
		t.Fatalf("〈a ?p b〉: got %d want 2", got)
	}
	// 〈a ?p ?o〉: only S bound.
	p2 := NewPattern(Const(a), Var("p"), Var("o"))
	if got := st.Cardinality(p2); got != 3 {
		t.Fatalf("〈a ?p ?o〉: got %d want 3", got)
	}
	// 〈?s ?p c〉: only O bound.
	c := lookup(t, st, "c")
	p3 := NewPattern(Var("s"), Var("p"), Const(c))
	if got := st.Cardinality(p3); got != 2 {
		t.Fatalf("〈?s ?p c〉: got %d want 2", got)
	}
}

func TestAccessPathSPBound(t *testing.T) {
	st := accessStore(t)
	a := lookup(t, st, "a")
	knows := lookup(t, st, "knows")
	p := NewPattern(Const(a), Const(knows), Var("o"))
	if got := st.Cardinality(p); got != 2 {
		t.Fatalf("〈a knows ?o〉: got %d want 2", got)
	}
}

func TestAccessPathPredicateOnly(t *testing.T) {
	st := accessStore(t)
	likes := lookup(t, st, "likes")
	p := NewPattern(Var("s"), Const(likes), Var("o"))
	if got := st.Cardinality(p); got != 2 {
		t.Fatalf("〈?s likes ?o〉: got %d want 2", got)
	}
}

func TestAccessPathRepeatedVariable(t *testing.T) {
	st := NewStore(nil)
	if err := st.AddSPO("x", "rel", "x", 3); err != nil {
		t.Fatal(err)
	}
	if err := st.AddSPO("x", "rel", "y", 2); err != nil {
		t.Fatal(err)
	}
	st.Freeze()
	rel := lookup(t, st, "rel")
	// 〈?v rel ?v〉 matches only the self-loop.
	p := NewPattern(Var("v"), Const(rel), Var("v"))
	if got := st.Cardinality(p); got != 1 {
		t.Fatalf("self-loop pattern: got %d want 1", got)
	}
}

func TestEvaluateVarPredicateQuery(t *testing.T) {
	st := accessStore(t)
	// Which predicates link a to b? Two answers: knows, likes.
	a := lookup(t, st, "a")
	b := lookup(t, st, "b")
	q := NewQuery(NewPattern(Const(a), Var("p"), Const(b)))
	answers := st.Evaluate(q)
	if len(answers) != 2 {
		t.Fatalf("answers: got %d want 2", len(answers))
	}
	// Top answer has normalised score 1 (knows, raw 5 / max 5).
	if answers[0].Score != 1 {
		t.Fatalf("top score: %v", answers[0].Score)
	}
}
