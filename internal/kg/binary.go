package kg

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Binary snapshot format for fast store persistence (TSV parsing dominates
// load time for multi-million-triple stores; the binary path avoids it).
//
// Layout (all integers little-endian):
//
//	magic     [8]byte  "SPECQPKG"
//	version   uint32   (currently 2)
//	nTerms    uint32
//	nTriples  uint64
//	headerCRC uint32   crc32c over the 12 count bytes            (v2 only)
//	terms:    nTerms × { len uint32, bytes }
//	termsCRC  uint32   crc32c over the whole term section        (v2 only)
//	triples:  nTriples × { s uint32, p uint32, o uint32, score float64 }
//	triplesCRC uint32  crc32c over the whole triple section      (v2 only)
//
// The snapshot freezes dictionary IDs, so WriteBinary→ReadBinary reproduces
// the store bit-for-bit (including duplicate triples and their order). The
// writer captures one pinned view and persists only live (non-retracted)
// triples — a snapshot never carries a deleted fact or a tombstone. The
// reader accepts v1 (the same layout without the three CRC words) for
// snapshots written before checksums existed; every CRC mismatch is
// corruption, reported before any triple from the damaged section is
// applied beyond the add callback.

var binaryMagic = [8]byte{'S', 'P', 'E', 'C', 'Q', 'P', 'K', 'G'}

const binaryVersion = 2

// binaryCastagnoli is the CRC32C table for snapshot section checksums — the
// same polynomial the WAL uses for record payloads, so the whole durability
// path fails loudly on bit rot.
var binaryCastagnoli = crc32.MakeTable(crc32.Castagnoli)

// MaxTermLen is the per-term byte bound every persistence surface enforces
// (binary snapshots here, WAL records in internal/wal — a compile-time check
// in the durability layer keeps the two in lockstep): a term length beyond
// it is treated as corruption, never allocated.
const MaxTermLen = 1 << 24

// WriteBinary serialises the store in the binary snapshot format.
func (st *Store) WriteBinary(w io.Writer) error {
	_, err := WriteGraphBinary(w, st)
	return err
}

// WriteGraphBinary serialises any Graph — flat or sharded, quiescent or live —
// in the binary snapshot format (see WriteGraphSnapshot), returning the
// number of triples captured.
func WriteGraphBinary(w io.Writer, g Graph) (int, error) {
	n, _, err := WriteGraphSnapshot(w, g)
	return n, err
}

// WriteGraphSnapshot serialises one pinned view of g in the binary snapshot
// format, writing live triples in global insertion order so a reload into
// any layout (ReadBinary, ReadBinarySharded) reproduces the store's answers
// bit-for-bit. Retracted triples are skipped — the snapshot is the
// post-resolution store, no tombstones needed. It returns the number of
// triples written and the pinned view's operation count (see LiveGraph.Ops);
// the durability layer derives the snapshot's log position from the latter,
// which keeps counting deletes that the survivor count cannot see.
func WriteGraphSnapshot(w io.Writer, g Graph) (n int, ops uint64, err error) {
	// Capture the view first, the term table after: the dictionary is
	// append-only, so terms snapshotted later always cover every ID the
	// captured triples reference even under concurrent mutation.
	var emit func(yield func(Triple) error) error
	if !g.Frozen() {
		// Pre-freeze staging area: append-only, every triple live.
		total := g.Len()
		n, ops = total, uint64(total)
		emit = func(yield func(Triple) error) error {
			for i := 0; i < total; i++ {
				if err := yield(g.Triple(int32(i))); err != nil {
					return err
				}
			}
			return nil
		}
	} else {
		switch p := g.Pin().(type) {
		case *pinnedStore:
			live := p.s.liveFn()
			total := len(p.s.triples)
			for i := 0; i < total; i++ {
				if live(int32(i)) {
					n++
				}
			}
			ops = p.s.ops
			emit = func(yield func(Triple) error) error {
				for i := 0; i < total; i++ {
					if live(int32(i)) {
						if err := yield(p.s.triples[i]); err != nil {
							return err
						}
					}
				}
				return nil
			}
		case *pinnedSharded:
			lives := make([]func(int32) bool, len(p.shards))
			for i, sh := range p.shards {
				lives[i] = sh.s.liveFn()
			}
			total := len(p.dir.locShard)
			for i := 0; i < total; i++ {
				if lives[p.dir.locShard[i]](p.dir.locIdx[i]) {
					n++
				}
			}
			ops = p.dir.ops
			emit = func(yield func(Triple) error) error {
				for i := 0; i < total; i++ {
					si, li := p.dir.locShard[i], p.dir.locIdx[i]
					if lives[si](li) {
						if err := yield(p.shards[si].s.triples[li]); err != nil {
							return err
						}
					}
				}
				return nil
			}
		default:
			// A pinned (or otherwise immutable) graph passed in directly:
			// every visible triple is live.
			total := p.Len()
			n, ops = total, uint64(total)
			emit = func(yield func(Triple) error) error {
				for i := 0; i < total; i++ {
					if err := yield(p.Triple(int32(i))); err != nil {
						return err
					}
				}
				return nil
			}
		}
	}
	terms := g.Dict().Strings()

	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return 0, 0, err
	}
	var scratch [8]byte
	crc := uint32(0)
	putU32 := func(v uint32, sum bool) error {
		binary.LittleEndian.PutUint32(scratch[:4], v)
		if sum {
			crc = crc32.Update(crc, binaryCastagnoli, scratch[:4])
		}
		_, err := bw.Write(scratch[:4])
		return err
	}
	putU64 := func(v uint64, sum bool) error {
		binary.LittleEndian.PutUint64(scratch[:8], v)
		if sum {
			crc = crc32.Update(crc, binaryCastagnoli, scratch[:8])
		}
		_, err := bw.Write(scratch[:8])
		return err
	}
	if err := putU32(binaryVersion, false); err != nil {
		return 0, 0, err
	}
	// Header section: the two counts, sealed by their CRC.
	if err := putU32(uint32(len(terms)), true); err != nil {
		return 0, 0, err
	}
	if err := putU64(uint64(n), true); err != nil {
		return 0, 0, err
	}
	if err := putU32(crc, false); err != nil {
		return 0, 0, err
	}
	// Term section.
	crc = 0
	for _, t := range terms {
		if err := putU32(uint32(len(t)), true); err != nil {
			return 0, 0, err
		}
		crc = crc32.Update(crc, binaryCastagnoli, []byte(t))
		if _, err := bw.WriteString(t); err != nil {
			return 0, 0, err
		}
	}
	if err := putU32(crc, false); err != nil {
		return 0, 0, err
	}
	// Triple section.
	crc = 0
	err = emit(func(tr Triple) error {
		if err := putU32(uint32(tr.S), true); err != nil {
			return err
		}
		if err := putU32(uint32(tr.P), true); err != nil {
			return err
		}
		if err := putU32(uint32(tr.O), true); err != nil {
			return err
		}
		return putU64(math.Float64bits(tr.Score), true)
	})
	if err != nil {
		return 0, 0, err
	}
	if err := putU32(crc, false); err != nil {
		return 0, 0, err
	}
	return n, ops, bw.Flush()
}

// liveFn returns a predicate reporting whether the triple at a local index
// is live (not retracted) in snapshot s. Frozen indexes consult the latest
// segment's cumulative dead bitmap plus the pending tombstones; head indexes
// are live exactly when the overlay still lists them (deletes drop head
// entries physically).
func (s *storeState) liveFn() func(int32) bool {
	po := s.post
	if s.l1 != nil {
		po = s.l1
	}
	fl := int32(s.frozenLen())
	var head map[int32]struct{}
	if len(s.headSorted) > 0 {
		head = make(map[int32]struct{}, len(s.headSorted))
		for _, hi := range s.headSorted {
			head[hi] = struct{}{}
		}
	}
	return func(i int32) bool {
		if i < fl {
			return !po.isDead(i) && !s.killed(i)
		}
		_, ok := head[i]
		return ok
	}
}

// ReadBinary loads a binary snapshot into a fresh, frozen store.
func ReadBinary(r io.Reader) (*Store, error) {
	st := NewStore(nil)
	if err := ReadBinaryInto(r, st.dict, st.Add); err != nil {
		return nil, err
	}
	st.Freeze()
	return st, nil
}

// ReadBinarySharded loads a binary snapshot into a fresh, frozen sharded
// store with n segments. Triples are routed by subject in insertion order, so
// answers are bit-identical to ReadBinary's flat layout at every shard count.
func ReadBinarySharded(r io.Reader, n int) (*ShardedStore, error) {
	ss := NewShardedStore(nil, n)
	if err := ReadBinaryInto(r, ss.dict, ss.Add); err != nil {
		return nil, err
	}
	ss.Freeze()
	return ss, nil
}

// ReadBinaryInto parses a binary snapshot, interning every term into dict (in
// snapshot order, so IDs are reproduced exactly) and calling add with every
// triple in insertion order. dict must be fresh (no interned terms): the
// snapshot's dense term table fixes the IDs, and a pre-populated dictionary
// would shift them. The durability layer uses this to load a snapshot into an
// unfrozen store and replay the WAL tail with plain Adds before one Freeze.
// Version-2 snapshots carry per-section CRC32C checksums, verified as each
// section completes; v1 snapshots load without checksum protection.
func ReadBinaryInto(r io.Reader, dict *Dict, add func(Triple) error) error {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return fmt.Errorf("kg: reading snapshot magic: %v", err)
	}
	if magic != binaryMagic {
		return fmt.Errorf("kg: not a specqp snapshot (magic %q)", magic[:])
	}
	var buf [8]byte
	crc := uint32(0)
	sum := false
	getU32 := func() (uint32, error) {
		if _, err := io.ReadFull(br, buf[:4]); err != nil {
			return 0, err
		}
		if sum {
			crc = crc32.Update(crc, binaryCastagnoli, buf[:4])
		}
		return binary.LittleEndian.Uint32(buf[:4]), nil
	}
	getU64 := func() (uint64, error) {
		if _, err := io.ReadFull(br, buf[:8]); err != nil {
			return 0, err
		}
		if sum {
			crc = crc32.Update(crc, binaryCastagnoli, buf[:8])
		}
		return binary.LittleEndian.Uint64(buf[:8]), nil
	}
	version, err := getU32()
	if err != nil {
		return err
	}
	if version != 1 && version != binaryVersion {
		return fmt.Errorf("kg: unsupported snapshot version %d", version)
	}
	// checkSection reads a section's stored CRC and compares it with the
	// accumulated one; v1 snapshots carry no section checksums.
	checkSection := func(name string) error {
		if version < 2 {
			return nil
		}
		got := crc
		sum = false
		stored, err := getU32()
		if err != nil {
			return fmt.Errorf("kg: %s checksum: %v", name, err)
		}
		if got != stored {
			return fmt.Errorf("kg: snapshot %s section corrupt (crc %08x, want %08x)", name, got, stored)
		}
		return nil
	}
	sum = version >= 2
	crc = 0
	nTerms, err := getU32()
	if err != nil {
		return err
	}
	nTriples, err := getU64()
	if err != nil {
		return err
	}
	if err := checkSection("header"); err != nil {
		return err
	}

	if dict.Len() != 0 {
		return fmt.Errorf("kg: snapshot load needs a fresh dictionary (%d terms already interned)", dict.Len())
	}
	// Counts are attacker-controlled: never allocate proportionally to a
	// claimed length before the bytes actually arrive. Terms are read in
	// bounded steps directly into termBuf's tail — append's geometric growth
	// keeps the buffer within a small factor of the bytes actually
	// delivered, so a snapshot claiming a huge term costs at most one step
	// of over-allocation; the triple loop below likewise grows with data
	// read, not with the declared nTriples.
	sum = version >= 2
	crc = 0
	const termChunk = 64 << 10
	var zeroChunk [termChunk]byte
	termBuf := make([]byte, 0, 64)
	for i := uint32(0); i < nTerms; i++ {
		l, err := getU32()
		if err != nil {
			return fmt.Errorf("kg: term %d length: %v", i, err)
		}
		if l > MaxTermLen {
			return fmt.Errorf("kg: term %d implausibly long (%d bytes)", i, l)
		}
		termBuf = termBuf[:0]
		for read := uint32(0); read < l; {
			n := l - read
			if n > termChunk {
				n = termChunk
			}
			start := len(termBuf)
			termBuf = append(termBuf, zeroChunk[:n]...)
			if _, err := io.ReadFull(br, termBuf[start:]); err != nil {
				return fmt.Errorf("kg: term %d bytes: %v", i, err)
			}
			if sum {
				crc = crc32.Update(crc, binaryCastagnoli, termBuf[start:])
			}
			read += n
		}
		if got := dict.Encode(string(termBuf)); got != ID(i) {
			return fmt.Errorf("kg: snapshot contains duplicate term %q", termBuf)
		}
	}
	if err := checkSection("term"); err != nil {
		return err
	}
	sum = version >= 2
	crc = 0
	for i := uint64(0); i < nTriples; i++ {
		s, err := getU32()
		if err != nil {
			return fmt.Errorf("kg: triple %d: %v", i, err)
		}
		p, err := getU32()
		if err != nil {
			return fmt.Errorf("kg: triple %d: %v", i, err)
		}
		o, err := getU32()
		if err != nil {
			return fmt.Errorf("kg: triple %d: %v", i, err)
		}
		bits, err := getU64()
		if err != nil {
			return fmt.Errorf("kg: triple %d: %v", i, err)
		}
		if s >= nTerms || p >= nTerms || o >= nTerms {
			return fmt.Errorf("kg: triple %d references unknown term", i)
		}
		score := math.Float64frombits(bits)
		if score < 0 || math.IsNaN(score) || math.IsInf(score, 0) {
			return fmt.Errorf("kg: triple %d has invalid score %v", i, score)
		}
		if err := add(Triple{S: ID(s), P: ID(p), O: ID(o), Score: score}); err != nil {
			return err
		}
	}
	if err := checkSection("triple"); err != nil {
		return err
	}
	return nil
}
