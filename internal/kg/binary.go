package kg

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary snapshot format for fast store persistence (TSV parsing dominates
// load time for multi-million-triple stores; the binary path avoids it).
//
// Layout (all integers little-endian):
//
//	magic   [8]byte  "SPECQPKG"
//	version uint32   (currently 1)
//	nTerms  uint32
//	nTriples uint64
//	terms:   nTerms × { len uint32, bytes }
//	triples: nTriples × { s uint32, p uint32, o uint32, score float64 }
//
// The snapshot freezes dictionary IDs, so WriteBinary→ReadBinary reproduces
// the store bit-for-bit (including duplicate triples and their order).

var binaryMagic = [8]byte{'S', 'P', 'E', 'C', 'Q', 'P', 'K', 'G'}

const binaryVersion = 1

// MaxTermLen is the per-term byte bound every persistence surface enforces
// (binary snapshots here, WAL records in internal/wal — a compile-time check
// in the durability layer keeps the two in lockstep): a term length beyond
// it is treated as corruption, never allocated.
const MaxTermLen = 1 << 24

// WriteBinary serialises the store in the binary snapshot format.
func (st *Store) WriteBinary(w io.Writer) error {
	_, err := WriteGraphBinary(w, st)
	return err
}

// WriteGraphBinary serialises any Graph — flat or sharded, quiescent or live —
// in the binary snapshot format, writing triples in global insertion order so
// a reload into any layout (ReadBinary, ReadBinarySharded) reproduces the
// store's answers bit-for-bit. On a live store it captures a consistent
// prefix: the triple count is loaded first and the term table afterwards, so
// the append-only dictionary always covers every ID the captured triples
// reference even under concurrent InsertSPO. It returns the number of triples
// captured — the durability layer derives the snapshot's log position from it.
func WriteGraphBinary(w io.Writer, g Graph) (int, error) {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return 0, err
	}
	var u32 [4]byte
	var u64 [8]byte
	putU32 := func(v uint32) error {
		binary.LittleEndian.PutUint32(u32[:], v)
		_, err := bw.Write(u32[:])
		return err
	}
	putU64 := func(v uint64) error {
		binary.LittleEndian.PutUint64(u64[:], v)
		_, err := bw.Write(u64[:])
		return err
	}
	if err := putU32(binaryVersion); err != nil {
		return 0, err
	}
	// The triple count is captured before the term table: the dictionary is
	// append-only, so terms snapshotted afterwards always cover every ID a
	// concurrently-inserted triple in the captured prefix references.
	n := g.Len()
	triple := g.Triple
	if st, ok := g.(*Store); ok {
		// The flat store serves the capture as one slice view instead of an
		// atomic snapshot load per triple.
		all := st.allTriples()[:n]
		triple = func(i int32) Triple { return all[i] }
	}
	terms := g.Dict().Strings()
	if err := putU32(uint32(len(terms))); err != nil {
		return 0, err
	}
	if err := putU64(uint64(n)); err != nil {
		return 0, err
	}
	for _, t := range terms {
		if err := putU32(uint32(len(t))); err != nil {
			return 0, err
		}
		if _, err := bw.WriteString(t); err != nil {
			return 0, err
		}
	}
	for i := 0; i < n; i++ {
		tr := triple(int32(i))
		if err := putU32(uint32(tr.S)); err != nil {
			return 0, err
		}
		if err := putU32(uint32(tr.P)); err != nil {
			return 0, err
		}
		if err := putU32(uint32(tr.O)); err != nil {
			return 0, err
		}
		if err := putU64(math.Float64bits(tr.Score)); err != nil {
			return 0, err
		}
	}
	return n, bw.Flush()
}

// ReadBinary loads a binary snapshot into a fresh, frozen store.
func ReadBinary(r io.Reader) (*Store, error) {
	st := NewStore(nil)
	if err := ReadBinaryInto(r, st.dict, st.Add); err != nil {
		return nil, err
	}
	st.Freeze()
	return st, nil
}

// ReadBinarySharded loads a binary snapshot into a fresh, frozen sharded
// store with n segments. Triples are routed by subject in insertion order, so
// answers are bit-identical to ReadBinary's flat layout at every shard count.
func ReadBinarySharded(r io.Reader, n int) (*ShardedStore, error) {
	ss := NewShardedStore(nil, n)
	if err := ReadBinaryInto(r, ss.dict, ss.Add); err != nil {
		return nil, err
	}
	ss.Freeze()
	return ss, nil
}

// ReadBinaryInto parses a binary snapshot, interning every term into dict (in
// snapshot order, so IDs are reproduced exactly) and calling add with every
// triple in insertion order. dict must be fresh (no interned terms): the
// snapshot's dense term table fixes the IDs, and a pre-populated dictionary
// would shift them. The durability layer uses this to load a snapshot into an
// unfrozen store and replay the WAL tail with plain Adds before one Freeze.
func ReadBinaryInto(r io.Reader, dict *Dict, add func(Triple) error) error {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return fmt.Errorf("kg: reading snapshot magic: %v", err)
	}
	if magic != binaryMagic {
		return fmt.Errorf("kg: not a specqp snapshot (magic %q)", magic[:])
	}
	var buf [8]byte
	getU32 := func() (uint32, error) {
		if _, err := io.ReadFull(br, buf[:4]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(buf[:4]), nil
	}
	getU64 := func() (uint64, error) {
		if _, err := io.ReadFull(br, buf[:8]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(buf[:8]), nil
	}
	version, err := getU32()
	if err != nil {
		return err
	}
	if version != binaryVersion {
		return fmt.Errorf("kg: unsupported snapshot version %d", version)
	}
	nTerms, err := getU32()
	if err != nil {
		return err
	}
	nTriples, err := getU64()
	if err != nil {
		return err
	}

	if dict.Len() != 0 {
		return fmt.Errorf("kg: snapshot load needs a fresh dictionary (%d terms already interned)", dict.Len())
	}
	// Counts are attacker-controlled: never allocate proportionally to a
	// claimed length before the bytes actually arrive. Terms are read in
	// bounded steps directly into termBuf's tail — append's geometric growth
	// keeps the buffer within a small factor of the bytes actually
	// delivered, so a snapshot claiming a huge term costs at most one step
	// of over-allocation; the triple loop below likewise grows with data
	// read, not with the declared nTriples.
	const termChunk = 64 << 10
	var zeroChunk [termChunk]byte
	termBuf := make([]byte, 0, 64)
	for i := uint32(0); i < nTerms; i++ {
		l, err := getU32()
		if err != nil {
			return fmt.Errorf("kg: term %d length: %v", i, err)
		}
		if l > MaxTermLen {
			return fmt.Errorf("kg: term %d implausibly long (%d bytes)", i, l)
		}
		termBuf = termBuf[:0]
		for read := uint32(0); read < l; {
			n := l - read
			if n > termChunk {
				n = termChunk
			}
			start := len(termBuf)
			termBuf = append(termBuf, zeroChunk[:n]...)
			if _, err := io.ReadFull(br, termBuf[start:]); err != nil {
				return fmt.Errorf("kg: term %d bytes: %v", i, err)
			}
			read += n
		}
		if got := dict.Encode(string(termBuf)); got != ID(i) {
			return fmt.Errorf("kg: snapshot contains duplicate term %q", termBuf)
		}
	}
	for i := uint64(0); i < nTriples; i++ {
		s, err := getU32()
		if err != nil {
			return fmt.Errorf("kg: triple %d: %v", i, err)
		}
		p, err := getU32()
		if err != nil {
			return fmt.Errorf("kg: triple %d: %v", i, err)
		}
		o, err := getU32()
		if err != nil {
			return fmt.Errorf("kg: triple %d: %v", i, err)
		}
		bits, err := getU64()
		if err != nil {
			return fmt.Errorf("kg: triple %d: %v", i, err)
		}
		if s >= nTerms || p >= nTerms || o >= nTerms {
			return fmt.Errorf("kg: triple %d references unknown term", i)
		}
		score := math.Float64frombits(bits)
		if score < 0 || math.IsNaN(score) || math.IsInf(score, 0) {
			return fmt.Errorf("kg: triple %d has invalid score %v", i, score)
		}
		if err := add(Triple{S: ID(s), P: ID(p), O: ID(o), Score: score}); err != nil {
			return err
		}
	}
	return nil
}
