package kg

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary snapshot format for fast store persistence (TSV parsing dominates
// load time for multi-million-triple stores; the binary path avoids it).
//
// Layout (all integers little-endian):
//
//	magic   [8]byte  "SPECQPKG"
//	version uint32   (currently 1)
//	nTerms  uint32
//	nTriples uint64
//	terms:   nTerms × { len uint32, bytes }
//	triples: nTriples × { s uint32, p uint32, o uint32, score float64 }
//
// The snapshot freezes dictionary IDs, so WriteBinary→ReadBinary reproduces
// the store bit-for-bit (including duplicate triples and their order).

var binaryMagic = [8]byte{'S', 'P', 'E', 'C', 'Q', 'P', 'K', 'G'}

const binaryVersion = 1

// WriteBinary serialises the store in the binary snapshot format.
func (st *Store) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	var u32 [4]byte
	var u64 [8]byte
	putU32 := func(v uint32) error {
		binary.LittleEndian.PutUint32(u32[:], v)
		_, err := bw.Write(u32[:])
		return err
	}
	putU64 := func(v uint64) error {
		binary.LittleEndian.PutUint64(u64[:], v)
		_, err := bw.Write(u64[:])
		return err
	}
	if err := putU32(binaryVersion); err != nil {
		return err
	}
	// Triples are captured before the term table: the dictionary is
	// append-only, so terms snapshotted afterwards always cover every ID a
	// concurrently-inserted triple in the captured snapshot references.
	triples := st.allTriples()
	terms := st.dict.Strings()
	if err := putU32(uint32(len(terms))); err != nil {
		return err
	}
	if err := putU64(uint64(len(triples))); err != nil {
		return err
	}
	for _, t := range terms {
		if err := putU32(uint32(len(t))); err != nil {
			return err
		}
		if _, err := bw.WriteString(t); err != nil {
			return err
		}
	}
	for _, tr := range triples {
		if err := putU32(uint32(tr.S)); err != nil {
			return err
		}
		if err := putU32(uint32(tr.P)); err != nil {
			return err
		}
		if err := putU32(uint32(tr.O)); err != nil {
			return err
		}
		if err := putU64(math.Float64bits(tr.Score)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary loads a binary snapshot into a fresh, frozen store.
func ReadBinary(r io.Reader) (*Store, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("kg: reading snapshot magic: %v", err)
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("kg: not a specqp snapshot (magic %q)", magic[:])
	}
	var buf [8]byte
	getU32 := func() (uint32, error) {
		if _, err := io.ReadFull(br, buf[:4]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(buf[:4]), nil
	}
	getU64 := func() (uint64, error) {
		if _, err := io.ReadFull(br, buf[:8]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(buf[:8]), nil
	}
	version, err := getU32()
	if err != nil {
		return nil, err
	}
	if version != binaryVersion {
		return nil, fmt.Errorf("kg: unsupported snapshot version %d", version)
	}
	nTerms, err := getU32()
	if err != nil {
		return nil, err
	}
	nTriples, err := getU64()
	if err != nil {
		return nil, err
	}

	st := NewStore(nil)
	// Counts are attacker-controlled: never allocate proportionally to a
	// claimed length before the bytes actually arrive. Terms are read in
	// bounded steps directly into termBuf's tail — append's geometric growth
	// keeps the buffer within a small factor of the bytes actually
	// delivered, so a snapshot claiming a huge term costs at most one step
	// of over-allocation; the triple loop below likewise grows with data
	// read, not with the declared nTriples.
	const termChunk = 64 << 10
	var zeroChunk [termChunk]byte
	termBuf := make([]byte, 0, 64)
	for i := uint32(0); i < nTerms; i++ {
		l, err := getU32()
		if err != nil {
			return nil, fmt.Errorf("kg: term %d length: %v", i, err)
		}
		if l > 1<<24 {
			return nil, fmt.Errorf("kg: term %d implausibly long (%d bytes)", i, l)
		}
		termBuf = termBuf[:0]
		for read := uint32(0); read < l; {
			n := l - read
			if n > termChunk {
				n = termChunk
			}
			start := len(termBuf)
			termBuf = append(termBuf, zeroChunk[:n]...)
			if _, err := io.ReadFull(br, termBuf[start:]); err != nil {
				return nil, fmt.Errorf("kg: term %d bytes: %v", i, err)
			}
			read += n
		}
		if got := st.dict.Encode(string(termBuf)); got != ID(i) {
			return nil, fmt.Errorf("kg: snapshot contains duplicate term %q", termBuf)
		}
	}
	for i := uint64(0); i < nTriples; i++ {
		s, err := getU32()
		if err != nil {
			return nil, fmt.Errorf("kg: triple %d: %v", i, err)
		}
		p, err := getU32()
		if err != nil {
			return nil, fmt.Errorf("kg: triple %d: %v", i, err)
		}
		o, err := getU32()
		if err != nil {
			return nil, fmt.Errorf("kg: triple %d: %v", i, err)
		}
		bits, err := getU64()
		if err != nil {
			return nil, fmt.Errorf("kg: triple %d: %v", i, err)
		}
		if s >= nTerms || p >= nTerms || o >= nTerms {
			return nil, fmt.Errorf("kg: triple %d references unknown term", i)
		}
		score := math.Float64frombits(bits)
		if score < 0 || math.IsNaN(score) || math.IsInf(score, 0) {
			return nil, fmt.Errorf("kg: triple %d has invalid score %v", i, score)
		}
		if err := st.Add(Triple{S: ID(s), P: ID(p), O: ID(o), Score: score}); err != nil {
			return nil, err
		}
	}
	st.Freeze()
	return st, nil
}
