package kg

import (
	"fmt"
	"sort"
)

// VarSet assigns dense indexes to the variables of a query. Operators and
// answers use these indexes instead of variable names.
type VarSet struct {
	names []string
	idx   map[string]int
}

// NewVarSet builds the variable set for a query.
func NewVarSet(q Query) *VarSet {
	vs := &VarSet{idx: make(map[string]int)}
	for _, name := range q.Vars() {
		vs.idx[name] = len(vs.names)
		vs.names = append(vs.names, name)
	}
	return vs
}

// Len reports the number of variables.
func (vs *VarSet) Len() int { return len(vs.names) }

// Index returns the dense index for a variable name, or -1 if unknown.
func (vs *VarSet) Index(name string) int {
	if i, ok := vs.idx[name]; ok {
		return i
	}
	return -1
}

// Name returns the variable name at index i.
func (vs *VarSet) Name(i int) string { return vs.names[i] }

// Names returns all variable names in index order.
func (vs *VarSet) Names() []string {
	out := make([]string, len(vs.names))
	copy(out, vs.names)
	return out
}

// Binding maps variable index → bound term ID. Unbound positions hold NoID.
type Binding []ID

// NewBinding returns an all-unbound binding for n variables.
func NewBinding(n int) Binding {
	b := make(Binding, n)
	for i := range b {
		b[i] = NoID
	}
	return b
}

// Clone copies the binding.
func (b Binding) Clone() Binding {
	c := make(Binding, len(b))
	copy(c, b)
	return c
}

// CompatibleWith reports whether two bindings agree on every variable bound
// in both.
func (b Binding) CompatibleWith(o Binding) bool {
	for i := range b {
		if b[i] != NoID && o[i] != NoID && b[i] != o[i] {
			return false
		}
	}
	return true
}

// Merge returns the union of two compatible bindings.
func (b Binding) Merge(o Binding) Binding {
	m := b.Clone()
	for i, v := range o {
		if v != NoID {
			m[i] = v
		}
	}
	return m
}

// Compare orders bindings of equal length lexicographically by bound ID
// (unbound NoID positions sort last, being the maximum uint32). It is the
// allocation-free tie-break used by SortAnswers and the operators' result
// heaps; Key() remains for cold paths that want a map-friendly string.
func (b Binding) Compare(o Binding) int {
	for i := range b {
		if b[i] != o[i] {
			if b[i] < o[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// Key returns a comparable string key for the bound positions (for
// deduplication and hashing). Bindings of equal length produce equal keys
// iff they bind the same values. It allocates per call; hot paths use
// BindingKey via a Keyer instead.
func (b Binding) Key() string {
	buf := make([]byte, 0, len(b)*4)
	for _, v := range b {
		buf = append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return string(buf)
}

// Answer is a scored query answer (Definition 4/6). Relaxed is a bitmask over
// pattern indexes recording which patterns were satisfied through a relaxed
// triple pattern rather than the original — the provenance needed for the
// paper's prediction-accuracy analysis (Table 3).
type Answer struct {
	Binding Binding
	Score   float64
	Relaxed uint32
}

// RelaxedCount returns the number of patterns answered via relaxations.
func (a Answer) RelaxedCount() int {
	c := 0
	for m := a.Relaxed; m != 0; m &= m - 1 {
		c++
	}
	return c
}

// String renders the answer with raw variable IDs.
func (a Answer) String() string {
	return fmt.Sprintf("answer{%v score=%.4f relaxed=%b}", []ID(a.Binding), a.Score, a.Relaxed)
}

// SortAnswers orders answers by score descending, breaking ties by binding
// order (Binding.Compare) ascending for determinism.
func SortAnswers(as []Answer) {
	sort.Slice(as, func(i, j int) bool {
		if as[i].Score != as[j].Score {
			return as[i].Score > as[j].Score
		}
		return as[i].Binding.Compare(as[j].Binding) < 0
	})
}

// bindPattern attempts to extend binding b with the triple t matched against
// pattern p. It returns the extended binding and true on success.
func bindPattern(vs *VarSet, p Pattern, t Triple, b Binding) (Binding, bool) {
	nb := b
	cloned := false
	set := func(term Term, v ID) bool {
		if !term.IsVar {
			return term.ID == v
		}
		i := vs.Index(term.Name)
		if i < 0 {
			return false
		}
		if nb[i] != NoID {
			return nb[i] == v
		}
		if !cloned {
			nb = b.Clone()
			cloned = true
		}
		nb[i] = v
		return true
	}
	if set(p.S, t.S) && set(p.P, t.P) && set(p.O, t.O) {
		return nb, true
	}
	return b, false
}

// Evaluate computes the complete answer set of q with Definition 6 scoring
// (sum of per-pattern normalised scores). It is used by the naive baseline,
// by exact cardinality computation, and by tests as ground truth. Patterns
// are evaluated smallest-cardinality first with index-backed candidate
// selection. The whole evaluation runs against one pinned snapshot, so the
// answers correspond to a single content version even under concurrent
// inserts.
func (st *Store) Evaluate(q Query) []Answer {
	return evaluateWeighted(st.pin(), q, nil)
}

// Count returns the exact number of answers to q (join cardinality). It is
// the "exact join selectivity" source the paper uses (footnote 3). Answers
// are distinct variable bindings: duplicate (s,p,o) triples — retained in
// the postings since the store keeps every addition — contribute multiple
// derivations but one answer, matching Evaluate's DedupMax semantics.
func (st *Store) Count(q Query) int {
	return countAnswers(st.pin(), q)
}

// Selectivity returns the exact join selectivity φ of q: the answer count
// divided by the product of per-pattern cardinalities. Returns 0 when any
// pattern is empty. Count and the cardinalities read one pinned snapshot.
func (st *Store) Selectivity(q Query) float64 {
	return selectivity(st.pin(), q)
}

// forCandidates implements matcher: it feeds f every triple of the cheapest
// candidate posting for sub (a superset of the exact matches), then every
// head triple. One snapshot serves the whole enumeration, and the frozen
// side deliberately uses the frozen-only lists — the merged frozen⊕head
// list would replay head triples twice, which would double-count
// derivations in the exact evaluator.
func (st *Store) forCandidates(sub Pattern, f func(t Triple)) {
	st.state().forCandidates(sub, f)
}

// forCandidates is the snapshot-level candidate enumeration behind both the
// live store's matcher and the pinned views. Pending-tombstone victims are
// masked out — a retracted fact must not contribute derivations — while the
// head needs no mask (deletes remove its entries physically).
func (s *storeState) forCandidates(sub Pattern, f func(t Triple)) {
	emit := func(po *postings) {
		cand, ok := po.candidates(sub)
		if !ok {
			cand = po.matchList(sub)
		}
		for _, ti := range cand {
			if !s.killed(ti) {
				f(s.triples[ti])
			}
		}
	}
	emit(s.post)
	if s.l1 != nil {
		emit(s.l1)
	}
	for _, hi := range s.headSorted {
		f(s.triples[hi])
	}
}
