package kg

import (
	"testing"
)

func TestPatternVars(t *testing.T) {
	p := NewPattern(Var("s"), Const(1), Var("o"))
	vs := p.Vars()
	if len(vs) != 2 || vs[0] != "s" || vs[1] != "o" {
		t.Fatalf("vars: got %v want [s o]", vs)
	}
	rep := NewPattern(Var("x"), Const(1), Var("x"))
	if got := rep.Vars(); len(got) != 1 || got[0] != "x" {
		t.Fatalf("repeated var: got %v want [x]", got)
	}
	c := NewPattern(Const(1), Const(2), Const(3))
	if got := c.Vars(); len(got) != 0 {
		t.Fatalf("constant pattern vars: got %v want none", got)
	}
}

func TestVarStripsQuestionMark(t *testing.T) {
	if Var("?s").Name != "s" {
		t.Fatalf("Var(?s) kept the question mark: %q", Var("?s").Name)
	}
	if Var("s").Name != "s" {
		t.Fatalf("Var(s): %q", Var("s").Name)
	}
}

func TestPatternMatches(t *testing.T) {
	tr := Triple{S: 10, P: 20, O: 30}
	cases := []struct {
		name string
		p    Pattern
		want bool
	}{
		{"all vars", NewPattern(Var("a"), Var("b"), Var("c")), true},
		{"exact", NewPattern(Const(10), Const(20), Const(30)), true},
		{"wrong subject", NewPattern(Const(11), Const(20), Const(30)), false},
		{"wrong predicate", NewPattern(Const(10), Const(21), Const(30)), false},
		{"wrong object", NewPattern(Const(10), Const(20), Const(31)), false},
		{"var subject", NewPattern(Var("s"), Const(20), Const(30)), true},
		{"repeated var mismatch", NewPattern(Var("x"), Const(20), Var("x")), false},
	}
	for _, c := range cases {
		if got := c.p.Matches(tr); got != c.want {
			t.Errorf("%s: got %v want %v", c.name, got, c.want)
		}
	}
	same := Triple{S: 10, P: 20, O: 10}
	if !NewPattern(Var("x"), Const(20), Var("x")).Matches(same) {
		t.Error("repeated var should match equal S and O")
	}
}

func TestPatternKeyErasesVariableNames(t *testing.T) {
	a := NewPattern(Var("x"), Const(5), Const(6))
	b := NewPattern(Var("y"), Const(5), Const(6))
	if a.Key() != b.Key() {
		t.Fatal("patterns differing only in variable name must share a key")
	}
	c := NewPattern(Var("x"), Const(5), Const(7))
	if a.Key() == c.Key() {
		t.Fatal("different constants must not share a key")
	}
}

func TestPatternKeyShapeBits(t *testing.T) {
	diag := NewPattern(Var("x"), Const(5), Var("x"))
	free := NewPattern(Var("x"), Const(5), Var("y"))
	if diag.Key() == free.Key() {
		t.Fatal("repeated-variable pattern must not share key with free pattern")
	}
}

func TestQueryVarsAndClone(t *testing.T) {
	q := NewQuery(
		NewPattern(Var("s"), Const(1), Var("o")),
		NewPattern(Var("o"), Const(2), Var("z")),
	)
	vs := q.Vars()
	if len(vs) != 3 || vs[0] != "s" || vs[1] != "o" || vs[2] != "z" {
		t.Fatalf("query vars: got %v", vs)
	}
	c := q.Clone()
	c.Patterns[0] = NewPattern(Var("w"), Const(9), Var("w"))
	if q.Patterns[0].S.Name != "s" {
		t.Fatal("Clone aliases the original pattern slice")
	}
}

func TestQueryReplace(t *testing.T) {
	q := NewQuery(
		NewPattern(Var("s"), Const(1), Const(2)),
		NewPattern(Var("s"), Const(1), Const(3)),
	)
	rep := NewPattern(Var("s"), Const(1), Const(99))
	q2 := q.Replace(1, rep)
	if q.Patterns[1].O.ID != 3 {
		t.Fatal("Replace mutated the receiver")
	}
	if q2.Patterns[1].O.ID != 99 {
		t.Fatalf("Replace result: got O=%d want 99", q2.Patterns[1].O.ID)
	}
	if q2.Patterns[0].O.ID != 2 {
		t.Fatal("Replace modified an unrelated pattern")
	}
}
