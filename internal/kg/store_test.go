package kg

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// musicStore builds the paper's running example: singers, lyricists,
// guitarists, pianists with popularity scores.
func musicStore(t *testing.T) (*Store, map[string]ID) {
	t.Helper()
	st := NewStore(nil)
	add := func(s, p, o string, sc float64) {
		if err := st.AddSPO(s, p, o, sc); err != nil {
			t.Fatal(err)
		}
	}
	add("shakira", "rdf:type", "singer", 100)
	add("beyonce", "rdf:type", "singer", 90)
	add("miley", "rdf:type", "singer", 50)
	add("taher", "rdf:type", "singer", 1)
	add("shakira", "rdf:type", "lyricist", 80)
	add("beyonce", "rdf:type", "lyricist", 70)
	add("prince", "rdf:type", "guitarist", 95)
	add("shakira", "rdf:type", "guitarist", 40)
	add("elton", "rdf:type", "pianist", 85)
	add("prince", "rdf:type", "vocalist", 60)
	add("miley", "rdf:type", "vocalist", 55)
	st.Freeze()
	ids := map[string]ID{}
	for _, s := range []string{"shakira", "beyonce", "miley", "taher", "prince", "elton",
		"rdf:type", "singer", "lyricist", "guitarist", "pianist", "vocalist"} {
		id, ok := st.Dict().Lookup(s)
		if !ok {
			t.Fatalf("term %q missing", s)
		}
		ids[s] = id
	}
	return st, ids
}

func typePattern(ids map[string]ID, ty string) Pattern {
	return NewPattern(Var("s"), Const(ids["rdf:type"]), Const(ids[ty]))
}

func TestStoreAddAfterFreeze(t *testing.T) {
	st := NewStore(nil)
	st.Freeze()
	if err := st.AddSPO("a", "b", "c", 1); err != ErrFrozen {
		t.Fatalf("add after freeze: got %v want ErrFrozen", err)
	}
}

func TestStoreRejectsNegativeScore(t *testing.T) {
	st := NewStore(nil)
	if err := st.AddSPO("a", "b", "c", -1); err == nil {
		t.Fatal("negative score accepted")
	}
}

func TestMatchListSortedAndFiltered(t *testing.T) {
	st, ids := musicStore(t)
	l := st.MatchList(typePattern(ids, "singer"))
	if len(l) != 4 {
		t.Fatalf("singer matches: got %d want 4", len(l))
	}
	for i := 1; i < len(l); i++ {
		if st.Triple(l[i]).Score > st.Triple(l[i-1]).Score {
			t.Fatal("match list not sorted by score descending")
		}
	}
	if got := st.Dict().Decode(st.Triple(l[0]).S); got != "shakira" {
		t.Fatalf("top singer: got %q want shakira", got)
	}
}

func TestMatchListCached(t *testing.T) {
	st, ids := musicStore(t)
	a := st.MatchList(typePattern(ids, "singer"))
	b := st.MatchList(typePattern(ids, "singer"))
	if &a[0] != &b[0] {
		t.Fatal("second MatchList call did not hit the cache")
	}
}

func TestMatchListFullyBoundPattern(t *testing.T) {
	st, ids := musicStore(t)
	p := NewPattern(Const(ids["shakira"]), Const(ids["rdf:type"]), Const(ids["singer"]))
	l := st.MatchList(p)
	if len(l) != 1 {
		t.Fatalf("fully bound match: got %d want 1", len(l))
	}
	p2 := NewPattern(Const(ids["taher"]), Const(ids["rdf:type"]), Const(ids["guitarist"]))
	if got := st.MatchList(p2); len(got) != 0 {
		t.Fatalf("absent triple matched: %v", got)
	}
}

func TestMatchListAllVariables(t *testing.T) {
	st, _ := musicStore(t)
	p := NewPattern(Var("a"), Var("b"), Var("c"))
	if got := len(st.MatchList(p)); got != st.Len() {
		t.Fatalf("full scan: got %d want %d", got, st.Len())
	}
}

func TestMatchListSubjectBound(t *testing.T) {
	st, ids := musicStore(t)
	p := NewPattern(Const(ids["shakira"]), Const(ids["rdf:type"]), Var("o"))
	if got := len(st.MatchList(p)); got != 3 {
		t.Fatalf("shakira types: got %d want 3", got)
	}
}

func TestNormalizedScores(t *testing.T) {
	st, ids := musicStore(t)
	p := typePattern(ids, "singer")
	ns := st.NormalizedScores(p)
	if len(ns) != 4 {
		t.Fatalf("got %d scores", len(ns))
	}
	if ns[0] != 1.0 {
		t.Fatalf("top normalised score: got %v want 1", ns[0])
	}
	if ns[1] != 0.9 {
		t.Fatalf("second: got %v want 0.9", ns[1])
	}
	if ns[3] != 0.01 {
		t.Fatalf("last: got %v want 0.01", ns[3])
	}
	if got := st.MaxScore(p); got != 100 {
		t.Fatalf("max score: got %v want 100", got)
	}
}

func TestNormalizedScoreEmptyPattern(t *testing.T) {
	st, ids := musicStore(t)
	absent := NewPattern(Var("s"), Const(ids["rdf:type"]), Const(ids["shakira"]))
	if got := st.MaxScore(absent); got != 0 {
		t.Fatalf("empty pattern max: got %v", got)
	}
	if got := st.NormalizedScore(absent, Triple{Score: 5}); got != 0 {
		t.Fatalf("empty pattern normalised: got %v", got)
	}
}

func TestCardinality(t *testing.T) {
	st, ids := musicStore(t)
	cases := map[string]int{"singer": 4, "lyricist": 2, "guitarist": 2, "pianist": 1, "vocalist": 2}
	for ty, want := range cases {
		if got := st.Cardinality(typePattern(ids, ty)); got != want {
			t.Errorf("cardinality(%s): got %d want %d", ty, got, want)
		}
	}
}

// TestMatchListAgainstBruteForce cross-checks the indexed match path against
// a brute-force scan on random stores and random patterns.
func TestMatchListAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		st := NewStore(nil)
		n := 50 + rng.Intn(100)
		for i := 0; i < n; i++ {
			tr := Triple{
				S:     ID(rng.Intn(10)),
				P:     ID(rng.Intn(4)),
				O:     ID(rng.Intn(10)),
				Score: float64(rng.Intn(1000)),
			}
			// Dictionary must cover the IDs used.
			for st.Dict().Len() <= int(tr.S) || st.Dict().Len() <= int(tr.O) {
				st.Dict().Encode(string(rune('a' + st.Dict().Len())))
			}
			if err := st.Add(tr); err != nil {
				t.Fatal(err)
			}
		}
		st.Freeze()
		randTerm := func() Term {
			if rng.Intn(2) == 0 {
				return Var(string(rune('u' + rng.Intn(3))))
			}
			return Const(ID(rng.Intn(10)))
		}
		for pi := 0; pi < 20; pi++ {
			p := NewPattern(randTerm(), randTerm(), randTerm())
			got := st.MatchList(p)
			// Every shape — including fully bound patterns, which keep all
			// duplicate (s,p,o) additions — returns the complete match set
			// in score-descending, index-ascending order.
			want := 0
			for i := 0; i < st.Len(); i++ {
				if p.Matches(st.Triple(int32(i))) {
					want++
				}
			}
			if len(got) != want {
				t.Fatalf("pattern %v: got %d matches want %d", p, len(got), want)
			}
			for i := 1; i < len(got); i++ {
				a, b := st.Triple(got[i-1]), st.Triple(got[i])
				if a.Score < b.Score || (a.Score == b.Score && got[i-1] >= got[i]) {
					t.Fatalf("pattern %v: match list out of order at %d", p, i)
				}
			}
		}
	}
}

// TestMatchListSortedProperty uses testing/quick: for arbitrary score sets
// the match list is always sorted descending.
func TestMatchListSortedProperty(t *testing.T) {
	f := func(scores []float64) bool {
		st := NewStore(nil)
		for i, s := range scores {
			if s < 0 {
				s = -s
			}
			if s != s || s > 1e15 { // NaN or absurd
				s = 1
			}
			_ = i
			if err := st.AddSPO("e", "p", "o", s); err != nil {
				return false
			}
		}
		st.Freeze()
		p := NewPattern(Var("s"), Var("p"), Var("o"))
		l := st.MatchList(p)
		for i := 1; i < len(l); i++ {
			if st.Triple(l[i]).Score > st.Triple(l[i-1]).Score {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
