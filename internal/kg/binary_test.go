package kg

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

func TestBinaryRoundTrip(t *testing.T) {
	st, ids := musicStore(t)
	var buf bytes.Buffer
	if err := st.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	st2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Len() != st.Len() {
		t.Fatalf("triples: %d want %d", st2.Len(), st.Len())
	}
	if st2.Dict().Len() != st.Dict().Len() {
		t.Fatalf("terms: %d want %d", st2.Dict().Len(), st.Dict().Len())
	}
	// IDs are preserved bit-for-bit: same pattern works on both stores.
	p := typePattern(ids, "singer")
	if got, want := st2.Cardinality(p), st.Cardinality(p); got != want {
		t.Fatalf("cardinality: %d want %d", got, want)
	}
	for i := 0; i < st.Len(); i++ {
		if st.Triple(int32(i)) != st2.Triple(int32(i)) {
			t.Fatalf("triple %d differs", i)
		}
	}
}

func TestBinaryRoundTripLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	st := NewStore(nil)
	for i := 0; i < 5000; i++ {
		s := string(rune('a' + rng.Intn(26)))
		if err := st.AddSPO("e"+s, "p", "o"+s, float64(rng.Intn(100000))); err != nil {
			t.Fatal(err)
		}
	}
	st.Freeze()
	var buf bytes.Buffer
	if err := st.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	st2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Len() != st.Len() {
		t.Fatalf("triples: %d want %d", st2.Len(), st.Len())
	}
}

func TestBinaryRejectsCorruption(t *testing.T) {
	st, _ := musicStore(t)
	var buf bytes.Buffer
	if err := st.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"bad magic", func(b []byte) []byte {
			c := append([]byte{}, b...)
			c[0] = 'X'
			return c
		}},
		{"bad version", func(b []byte) []byte {
			c := append([]byte{}, b...)
			c[8] = 99
			return c
		}},
		{"truncated", func(b []byte) []byte { return b[:len(b)-5] }},
		{"empty", func(b []byte) []byte { return nil }},
	}
	for _, c := range cases {
		if _, err := ReadBinary(bytes.NewReader(c.mut(good))); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	if _, err := ReadBinary(strings.NewReader("not a snapshot at all")); err == nil {
		t.Error("garbage accepted")
	}
}

// TestBinarySectionChecksums pins the v2 per-section CRC32C protection: a
// single flipped byte in the header counts, the term bytes or the triple
// payload must be rejected — with the damaged section named when the flip
// survives the structural sanity checks — while the pristine bytes load.
func TestBinarySectionChecksums(t *testing.T) {
	st, _ := musicStore(t)
	var buf bytes.Buffer
	if err := st.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	if _, err := ReadBinary(bytes.NewReader(good)); err != nil {
		t.Fatalf("pristine snapshot rejected: %v", err)
	}
	// Layout: magic 8 | version 4 | nTerms 4 + nTriples 8 | headerCRC 4 |
	// terms... | termsCRC 4 | triples... | triplesCRC 4.
	cases := []struct {
		name    string
		offset  int
		section string // expected in the error when the CRC is what fires
	}{
		{"header count byte", 13, ""},
		{"term length byte", 28, ""},
		{"term character", 33, "term"},
		{"triple score low byte", len(good) - 11, "triple"},
		{"triple term reference", len(good) - 21, ""},
	}
	for _, c := range cases {
		mut := append([]byte(nil), good...)
		mut[c.offset] ^= 0x40
		_, err := ReadBinary(bytes.NewReader(mut))
		if err == nil {
			t.Errorf("%s (offset %d): corrupted snapshot accepted", c.name, c.offset)
			continue
		}
		if c.section != "" && !strings.Contains(err.Error(), c.section+" section corrupt") {
			t.Errorf("%s: error %q does not name the %s section checksum", c.name, err, c.section)
		}
	}
	// Truncation inside each section is rejected too (CRC never read).
	for _, cut := range []int{20, 40, len(good) - 2} {
		if _, err := ReadBinary(bytes.NewReader(good[:cut])); err == nil {
			t.Errorf("snapshot truncated at %d accepted", cut)
		}
	}
}

// TestBinaryReadsV1 pins backward compatibility: a version-1 snapshot (the
// same layout minus the three CRC words) still loads.
func TestBinaryReadsV1(t *testing.T) {
	st, ids := musicStore(t)
	var buf bytes.Buffer
	if err := st.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	v2 := buf.Bytes()
	// Rebuild the byte stream as v1: copy sections, drop the CRC words.
	terms := st.Dict().Strings()
	termLen := 0
	for _, s := range terms {
		termLen += 4 + len(s)
	}
	var v1 bytes.Buffer
	v1.Write(v2[:8])                       // magic
	v1.Write([]byte{1, 0, 0, 0})           // version 1
	v1.Write(v2[12:24])                    // counts (no headerCRC)
	v1.Write(v2[28 : 28+termLen])          // term section (no termsCRC)
	v1.Write(v2[28+termLen+4 : len(v2)-4]) // triple section (no triplesCRC)
	st2, err := ReadBinary(bytes.NewReader(v1.Bytes()))
	if err != nil {
		t.Fatalf("v1 snapshot rejected: %v", err)
	}
	if st2.Len() != st.Len() || st2.Dict().Len() != st.Dict().Len() {
		t.Fatalf("v1 load: %d triples/%d terms, want %d/%d",
			st2.Len(), st2.Dict().Len(), st.Len(), st.Dict().Len())
	}
	p := typePattern(ids, "singer")
	if got, want := st2.Cardinality(p), st.Cardinality(p); got != want {
		t.Fatalf("v1 cardinality: %d want %d", got, want)
	}
}

// TestSnapshotSkipsRetractedFacts pins the survivors-only writer: after
// deletes and updates — resolved by compaction or still pending as
// tombstones, frozen or head-resident — WriteGraphSnapshot persists exactly
// the surviving facts in insertion order, and reports the store's operation
// count so checkpoints can place the snapshot in the log.
func TestSnapshotSkipsRetractedFacts(t *testing.T) {
	for _, compacted := range []bool{false, true} {
		for _, shards := range []int{1, 3} {
			dict, triples := randomTripleSeq(t, 2600, 80)
			var g LiveGraph
			if shards > 1 {
				g = NewShardedStore(dict, shards)
			} else {
				g = NewStore(dict)
			}
			model := &mutModel{}
			for _, tr := range triples[:50] {
				var err error
				switch s := g.(type) {
				case *Store:
					err = s.Add(tr)
				case *ShardedStore:
					err = s.Add(tr)
				}
				if err != nil {
					t.Fatal(err)
				}
				model.insert(tr)
			}
			freezeLive(g)
			g.SetHeadLimit(-1)
			for i, tr := range triples[50:] {
				if err := g.Insert(tr); err != nil {
					t.Fatal(err)
				}
				model.insert(tr)
				if i%3 == 0 { // delete a frozen-era key
					victim := triples[i%50]
					if _, err := g.Delete(victim.S, victim.P, victim.O); err != nil {
						t.Fatal(err)
					}
					model.delete(victim.S, victim.P, victim.O)
				}
				if i%7 == 0 { // latest-wins re-score
					up := triples[(i*3)%len(triples)]
					up.Score = float64(60 + i)
					if err := g.Update(up); err != nil {
						t.Fatal(err)
					}
					model.update(up)
				}
			}
			if compacted {
				g.Compact()
			}
			var buf bytes.Buffer
			n, ops, err := WriteGraphSnapshot(&buf, g)
			if err != nil {
				t.Fatal(err)
			}
			label := fmt.Sprintf("shards=%d compacted=%v", shards, compacted)
			if n != len(model.survivors) {
				t.Fatalf("%s: snapshot wrote %d triples, %d survive", label, n, len(model.survivors))
			}
			if ops != g.Ops() {
				t.Fatalf("%s: snapshot ops %d, store ops %d", label, ops, g.Ops())
			}
			got, err := ReadBinary(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if got.Len() != len(model.survivors) {
				t.Fatalf("%s: reloaded %d triples, want %d", label, got.Len(), len(model.survivors))
			}
			for i, want := range model.survivors {
				if tr := got.Triple(int32(i)); tr != want {
					t.Fatalf("%s: reloaded triple %d = %v, want %v", label, i, tr, want)
				}
			}
		}
	}
}

func TestBinaryPreservesSemantics(t *testing.T) {
	st, ids := musicStore(t)
	var buf bytes.Buffer
	if err := st.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	st2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	q := NewQuery(typePattern(ids, "singer"), typePattern(ids, "lyricist"))
	a1 := st.Evaluate(q)
	a2 := st2.Evaluate(q)
	if len(a1) != len(a2) {
		t.Fatalf("answers: %d vs %d", len(a1), len(a2))
	}
	for i := range a1 {
		if a1[i].Score != a2[i].Score {
			t.Fatalf("rank %d: %v vs %v", i, a1[i].Score, a2[i].Score)
		}
	}
}

// TestBinaryRoundTripLiveHeads pins the snapshot format over live stores:
// a store with a non-empty mutable head — flat or sharded, at several shard
// counts — must serialise its full triple sequence in global insertion order
// and reload (into either layout) with identical triples and identical
// answers. Before the durability work the live path was only ever persisted
// frozen; checkpoints snapshot mid-ingest, so heads must round-trip too.
func TestBinaryRoundTripLiveHeads(t *testing.T) {
	st, triples := pinFixture(t, 314, 140, 80)
	if st.HeadLen() == 0 {
		t.Fatal("fixture head is empty; the test would not cover the live path")
	}
	q := NewQuery(
		NewPattern(Var("x"), Const(ID(5)), Var("y")),
		NewPattern(Var("x"), Const(ID(6)), Var("z")),
	)
	wantAnswers := st.Evaluate(q)

	writers := map[string]Graph{"flat": st}
	for _, shards := range []int{1, 2, 7} {
		ss := NewShardedStore(st.Dict(), shards)
		ss.SetHeadLimit(-1)
		for _, tr := range triples[:80] {
			if err := ss.Add(tr); err != nil {
				t.Fatal(err)
			}
		}
		ss.Freeze()
		for _, tr := range triples[80:] {
			if err := ss.Insert(tr); err != nil {
				t.Fatal(err)
			}
		}
		if ss.HeadLen() == 0 {
			t.Fatalf("sharded fixture (%d shards) head is empty", shards)
		}
		writers[fmt.Sprintf("sharded-%d", shards)] = ss
	}

	for wname, g := range writers {
		var buf bytes.Buffer
		n, err := WriteGraphBinary(&buf, g)
		if err != nil {
			t.Fatal(err)
		}
		if n != len(triples) {
			t.Fatalf("%s: captured %d triples, want %d", wname, n, len(triples))
		}
		raw := buf.Bytes()
		readers := map[string]func() (Graph, error){
			"flat":      func() (Graph, error) { return ReadBinary(bytes.NewReader(raw)) },
			"sharded-2": func() (Graph, error) { return ReadBinarySharded(bytes.NewReader(raw), 2) },
			"sharded-7": func() (Graph, error) { return ReadBinarySharded(bytes.NewReader(raw), 7) },
		}
		for rname, read := range readers {
			got, err := read()
			if err != nil {
				t.Fatalf("%s→%s: %v", wname, rname, err)
			}
			if got.Len() != len(triples) {
				t.Fatalf("%s→%s: %d triples, want %d", wname, rname, got.Len(), len(triples))
			}
			for i := range triples {
				if got.Triple(int32(i)) != triples[i] {
					t.Fatalf("%s→%s: triple %d = %v, want %v", wname, rname, i, got.Triple(int32(i)), triples[i])
				}
			}
			gotAnswers := got.Evaluate(q)
			if len(gotAnswers) != len(wantAnswers) {
				t.Fatalf("%s→%s: %d answers, want %d", wname, rname, len(gotAnswers), len(wantAnswers))
			}
			for i := range gotAnswers {
				if gotAnswers[i].Score != wantAnswers[i].Score ||
					gotAnswers[i].Binding.Compare(wantAnswers[i].Binding) != 0 {
					t.Fatalf("%s→%s: answer %d = %v, want %v", wname, rname, i, gotAnswers[i], wantAnswers[i])
				}
			}
		}
	}
}
