package kg

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

func TestBinaryRoundTrip(t *testing.T) {
	st, ids := musicStore(t)
	var buf bytes.Buffer
	if err := st.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	st2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Len() != st.Len() {
		t.Fatalf("triples: %d want %d", st2.Len(), st.Len())
	}
	if st2.Dict().Len() != st.Dict().Len() {
		t.Fatalf("terms: %d want %d", st2.Dict().Len(), st.Dict().Len())
	}
	// IDs are preserved bit-for-bit: same pattern works on both stores.
	p := typePattern(ids, "singer")
	if got, want := st2.Cardinality(p), st.Cardinality(p); got != want {
		t.Fatalf("cardinality: %d want %d", got, want)
	}
	for i := 0; i < st.Len(); i++ {
		if st.Triple(int32(i)) != st2.Triple(int32(i)) {
			t.Fatalf("triple %d differs", i)
		}
	}
}

func TestBinaryRoundTripLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	st := NewStore(nil)
	for i := 0; i < 5000; i++ {
		s := string(rune('a' + rng.Intn(26)))
		if err := st.AddSPO("e"+s, "p", "o"+s, float64(rng.Intn(100000))); err != nil {
			t.Fatal(err)
		}
	}
	st.Freeze()
	var buf bytes.Buffer
	if err := st.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	st2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Len() != st.Len() {
		t.Fatalf("triples: %d want %d", st2.Len(), st.Len())
	}
}

func TestBinaryRejectsCorruption(t *testing.T) {
	st, _ := musicStore(t)
	var buf bytes.Buffer
	if err := st.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"bad magic", func(b []byte) []byte {
			c := append([]byte{}, b...)
			c[0] = 'X'
			return c
		}},
		{"bad version", func(b []byte) []byte {
			c := append([]byte{}, b...)
			c[8] = 99
			return c
		}},
		{"truncated", func(b []byte) []byte { return b[:len(b)-5] }},
		{"empty", func(b []byte) []byte { return nil }},
	}
	for _, c := range cases {
		if _, err := ReadBinary(bytes.NewReader(c.mut(good))); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	if _, err := ReadBinary(strings.NewReader("not a snapshot at all")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestBinaryPreservesSemantics(t *testing.T) {
	st, ids := musicStore(t)
	var buf bytes.Buffer
	if err := st.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	st2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	q := NewQuery(typePattern(ids, "singer"), typePattern(ids, "lyricist"))
	a1 := st.Evaluate(q)
	a2 := st2.Evaluate(q)
	if len(a1) != len(a2) {
		t.Fatalf("answers: %d vs %d", len(a1), len(a2))
	}
	for i := range a1 {
		if a1[i].Score != a2[i].Score {
			t.Fatalf("rank %d: %v vs %v", i, a1[i].Score, a2[i].Score)
		}
	}
}

// TestBinaryRoundTripLiveHeads pins the snapshot format over live stores:
// a store with a non-empty mutable head — flat or sharded, at several shard
// counts — must serialise its full triple sequence in global insertion order
// and reload (into either layout) with identical triples and identical
// answers. Before the durability work the live path was only ever persisted
// frozen; checkpoints snapshot mid-ingest, so heads must round-trip too.
func TestBinaryRoundTripLiveHeads(t *testing.T) {
	st, triples := pinFixture(t, 314, 140, 80)
	if st.HeadLen() == 0 {
		t.Fatal("fixture head is empty; the test would not cover the live path")
	}
	q := NewQuery(
		NewPattern(Var("x"), Const(ID(5)), Var("y")),
		NewPattern(Var("x"), Const(ID(6)), Var("z")),
	)
	wantAnswers := st.Evaluate(q)

	writers := map[string]Graph{"flat": st}
	for _, shards := range []int{1, 2, 7} {
		ss := NewShardedStore(st.Dict(), shards)
		ss.SetHeadLimit(-1)
		for _, tr := range triples[:80] {
			if err := ss.Add(tr); err != nil {
				t.Fatal(err)
			}
		}
		ss.Freeze()
		for _, tr := range triples[80:] {
			if err := ss.Insert(tr); err != nil {
				t.Fatal(err)
			}
		}
		if ss.HeadLen() == 0 {
			t.Fatalf("sharded fixture (%d shards) head is empty", shards)
		}
		writers[fmt.Sprintf("sharded-%d", shards)] = ss
	}

	for wname, g := range writers {
		var buf bytes.Buffer
		n, err := WriteGraphBinary(&buf, g)
		if err != nil {
			t.Fatal(err)
		}
		if n != len(triples) {
			t.Fatalf("%s: captured %d triples, want %d", wname, n, len(triples))
		}
		raw := buf.Bytes()
		readers := map[string]func() (Graph, error){
			"flat":      func() (Graph, error) { return ReadBinary(bytes.NewReader(raw)) },
			"sharded-2": func() (Graph, error) { return ReadBinarySharded(bytes.NewReader(raw), 2) },
			"sharded-7": func() (Graph, error) { return ReadBinarySharded(bytes.NewReader(raw), 7) },
		}
		for rname, read := range readers {
			got, err := read()
			if err != nil {
				t.Fatalf("%s→%s: %v", wname, rname, err)
			}
			if got.Len() != len(triples) {
				t.Fatalf("%s→%s: %d triples, want %d", wname, rname, got.Len(), len(triples))
			}
			for i := range triples {
				if got.Triple(int32(i)) != triples[i] {
					t.Fatalf("%s→%s: triple %d = %v, want %v", wname, rname, i, got.Triple(int32(i)), triples[i])
				}
			}
			gotAnswers := got.Evaluate(q)
			if len(gotAnswers) != len(wantAnswers) {
				t.Fatalf("%s→%s: %d answers, want %d", wname, rname, len(gotAnswers), len(wantAnswers))
			}
			for i := range gotAnswers {
				if gotAnswers[i].Score != wantAnswers[i].Score ||
					gotAnswers[i].Binding.Compare(wantAnswers[i].Binding) != 0 {
					t.Fatalf("%s→%s: answer %d = %v, want %v", wname, rname, i, gotAnswers[i], wantAnswers[i])
				}
			}
		}
	}
}
