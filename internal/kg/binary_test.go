package kg

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestBinaryRoundTrip(t *testing.T) {
	st, ids := musicStore(t)
	var buf bytes.Buffer
	if err := st.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	st2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Len() != st.Len() {
		t.Fatalf("triples: %d want %d", st2.Len(), st.Len())
	}
	if st2.Dict().Len() != st.Dict().Len() {
		t.Fatalf("terms: %d want %d", st2.Dict().Len(), st.Dict().Len())
	}
	// IDs are preserved bit-for-bit: same pattern works on both stores.
	p := typePattern(ids, "singer")
	if got, want := st2.Cardinality(p), st.Cardinality(p); got != want {
		t.Fatalf("cardinality: %d want %d", got, want)
	}
	for i := 0; i < st.Len(); i++ {
		if st.Triple(int32(i)) != st2.Triple(int32(i)) {
			t.Fatalf("triple %d differs", i)
		}
	}
}

func TestBinaryRoundTripLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	st := NewStore(nil)
	for i := 0; i < 5000; i++ {
		s := string(rune('a' + rng.Intn(26)))
		if err := st.AddSPO("e"+s, "p", "o"+s, float64(rng.Intn(100000))); err != nil {
			t.Fatal(err)
		}
	}
	st.Freeze()
	var buf bytes.Buffer
	if err := st.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	st2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Len() != st.Len() {
		t.Fatalf("triples: %d want %d", st2.Len(), st.Len())
	}
}

func TestBinaryRejectsCorruption(t *testing.T) {
	st, _ := musicStore(t)
	var buf bytes.Buffer
	if err := st.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"bad magic", func(b []byte) []byte {
			c := append([]byte{}, b...)
			c[0] = 'X'
			return c
		}},
		{"bad version", func(b []byte) []byte {
			c := append([]byte{}, b...)
			c[8] = 99
			return c
		}},
		{"truncated", func(b []byte) []byte { return b[:len(b)-5] }},
		{"empty", func(b []byte) []byte { return nil }},
	}
	for _, c := range cases {
		if _, err := ReadBinary(bytes.NewReader(c.mut(good))); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	if _, err := ReadBinary(strings.NewReader("not a snapshot at all")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestBinaryPreservesSemantics(t *testing.T) {
	st, ids := musicStore(t)
	var buf bytes.Buffer
	if err := st.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	st2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	q := NewQuery(typePattern(ids, "singer"), typePattern(ids, "lyricist"))
	a1 := st.Evaluate(q)
	a2 := st2.Evaluate(q)
	if len(a1) != len(a2) {
		t.Fatalf("answers: %d vs %d", len(a1), len(a2))
	}
	for i := range a1 {
		if a1[i].Score != a2[i].Score {
			t.Fatalf("rank %d: %v vs %v", i, a1[i].Score, a2[i].Score)
		}
	}
}
