package kg

import (
	"fmt"
	"math/rand"
	"testing"
)

// genPinTriples generates the deterministic fixture triple sequence: score
// ties and duplicate keys over a small ID universe, so pins land on every
// interesting match-list shape. A shorter n yields a prefix of a longer one.
func genPinTriples(seed int64, n int) []Triple {
	rng := rand.New(rand.NewSource(seed))
	triples := make([]Triple, n)
	for i := range triples {
		triples[i] = Triple{
			S:     ID(rng.Intn(5)),
			P:     ID(5 + rng.Intn(3)),
			O:     ID(8 + rng.Intn(4)),
			Score: float64(1 + rng.Intn(9)),
		}
	}
	return triples
}

// pinFixture builds a live store with score ties and duplicate keys: nFrozen
// triples frozen, the rest inserted live (head), so pins land on every
// frozen/head mixture.
func pinFixture(t *testing.T, seed int64, n, nFrozen int) (*Store, []Triple) {
	t.Helper()
	st := NewStore(nil)
	d := st.Dict()
	for i := 0; i < 12; i++ {
		d.Encode(fmt.Sprintf("t%d", i))
	}
	triples := genPinTriples(seed, n)
	st.SetHeadLimit(-1)
	for _, tr := range triples[:nFrozen] {
		if err := st.Add(tr); err != nil {
			t.Fatal(err)
		}
	}
	st.Freeze()
	for _, tr := range triples[nFrozen:] {
		if err := st.Insert(tr); err != nil {
			t.Fatal(err)
		}
	}
	return st, triples
}

// pinPatterns covers every match-list shape: indexed postings, residual
// S+O intersections, repeated variables, and full scans.
func pinPatterns() []Pattern {
	var ps []Pattern
	for s := 0; s < 5; s += 2 {
		ps = append(ps, NewPattern(Const(ID(s)), Var("p"), Var("o")))     // S-bound
		ps = append(ps, NewPattern(Const(ID(s)), Var("p"), Const(ID(8)))) // S+O: residual
		ps = append(ps, NewPattern(Const(ID(s)), Const(ID(5)), Var("o"))) // SP
	}
	ps = append(ps,
		NewPattern(Var("s"), Const(ID(6)), Var("o")),         // P-bound
		NewPattern(Var("s"), Var("p"), Const(ID(9))),         // O-bound
		NewPattern(Var("s"), Const(ID(5)), Const(ID(8))),     // PO
		NewPattern(Const(ID(1)), Const(ID(5)), Const(ID(8))), // SPO
		NewPattern(Var("s"), Var("p"), Var("o")),             // full scan
		NewPattern(Var("s"), Var("p"), Var("s")),             // repeated var
	)
	return ps
}

// TestPinnedStoreViewsMatchPrefixStore is the pinned-view contract at the
// storage level: a pin taken mid-ingest must answer every read exactly like
// a store holding only the triples present at pin time — even after the
// live store ingests more, retracts a key the pin can see, and compacts.
func TestPinnedStoreViewsMatchPrefixStore(t *testing.T) {
	const n, nFrozen = 120, 70
	for _, compacted := range []bool{false, true} {
		for _, limit := range []int{nFrozen, nFrozen + 9, n - 1, n} {
			triples := genPinTriples(42, n)
			st := NewStore(nil)
			for i := 0; i < 12; i++ {
				st.Dict().Encode(fmt.Sprintf("t%d", i))
			}
			st.SetHeadLimit(-1)
			for _, tr := range triples[:nFrozen] {
				if err := st.Add(tr); err != nil {
					t.Fatal(err)
				}
			}
			st.Freeze()
			for _, tr := range triples[nFrozen:limit] {
				if err := st.Insert(tr); err != nil {
					t.Fatal(err)
				}
			}
			ps := st.pin()
			// The live store moves on: the pin must keep answering from the
			// prefix regardless.
			for _, tr := range triples[limit:] {
				if err := st.Insert(tr); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := st.Delete(triples[0].S, triples[0].P, triples[0].O); err != nil {
				t.Fatal(err)
			}
			if compacted {
				st.Compact() // the post-pin tail (and tombstone) is now frozen
			}
			ref := NewStore(st.Dict())
			for _, tr := range triples[:limit] {
				if err := ref.Add(tr); err != nil {
					t.Fatal(err)
				}
			}
			ref.Freeze()
			label := fmt.Sprintf("compacted=%v limit=%d", compacted, limit)
			if ps.Len() != ref.Len() {
				t.Fatalf("%s: Len %d want %d", label, ps.Len(), ref.Len())
			}
			for pi, p := range pinPatterns() {
				gotL, wantL := ps.MatchList(p), ref.MatchList(p)
				if len(gotL) != len(wantL) {
					t.Fatalf("%s pattern %d: match list %v want %v", label, pi, gotL, wantL)
				}
				for i := range gotL {
					if gotL[i] != wantL[i] {
						t.Fatalf("%s pattern %d: match list %v want %v", label, pi, gotL, wantL)
					}
				}
				if got, want := ps.Cardinality(p), ref.Cardinality(p); got != want {
					t.Fatalf("%s pattern %d: cardinality %d want %d", label, pi, got, want)
				}
				if got, want := ps.MaxScore(p), ref.MaxScore(p); got != want {
					t.Fatalf("%s pattern %d: max score %v want %v", label, pi, got, want)
				}
				// forCandidates must enumerate a superset of matches drawn
				// only from visible triples; exactness is pinned through the
				// evaluator below.
				ps.forCandidates(p, func(tr Triple) {
					for i := 0; i < limit; i++ {
						if triples[i] == tr {
							return
						}
					}
					t.Fatalf("%s pattern %d: candidate %v not in visible prefix", label, pi, tr)
				})
			}
			q := NewQuery(
				NewPattern(Var("x"), Const(ID(5)), Var("y")),
				NewPattern(Var("x"), Const(ID(6)), Var("z")),
			)
			got, want := ps.Evaluate(q), ref.Evaluate(q)
			if len(got) != len(want) {
				t.Fatalf("%s: Evaluate %d answers want %d", label, len(got), len(want))
			}
			for i := range got {
				if got[i].Score != want[i].Score || got[i].Binding.Compare(want[i].Binding) != 0 {
					t.Fatalf("%s: Evaluate answer %d = %v want %v", label, i, got[i], want[i])
				}
			}
			if gc, wc := ps.Count(q), ref.Count(q); gc != wc {
				t.Fatalf("%s: Count %d want %d", label, gc, wc)
			}
		}
	}
}

// TestPinSurvivesLaterInserts pins the isolation property on the public
// surface: a Pin taken before inserts answers from the old version, for both
// layouts, while the live store moves on.
func TestPinSurvivesLaterInserts(t *testing.T) {
	for _, shards := range []int{1, 3} {
		st, triples := pinFixture(t, 7, 100, 100)
		var g LiveGraph = st
		if shards > 1 {
			ss := NewShardedStore(st.Dict(), shards)
			for _, tr := range triples {
				if err := ss.Add(tr); err != nil {
					t.Fatal(err)
				}
			}
			ss.Freeze()
			g = ss
		}
		pin := g.Pin()
		p := NewPattern(Var("s"), Const(ID(5)), Var("o"))
		wantCard := pin.Cardinality(p)
		wantMax := pin.MaxScore(p)
		wantLen := pin.Len()
		// Insert matches with a dominating score: an unpinned view would see
		// both a larger cardinality and a new normalisation constant.
		for i := 0; i < 30; i++ {
			if err := g.Insert(Triple{S: ID(i % 5), P: 5, O: 8, Score: 1000}); err != nil {
				t.Fatal(err)
			}
		}
		if g.Pin().Cardinality(p) == wantCard {
			t.Fatal("fixture inserts did not change the live cardinality")
		}
		if pin.Len() != wantLen || pin.Cardinality(p) != wantCard || pin.MaxScore(p) != wantMax {
			t.Fatalf("shards=%d: pin drifted: len %d→%d card %d→%d max %v→%v",
				shards, wantLen, pin.Len(), wantCard, pin.Cardinality(p), wantMax, pin.MaxScore(p))
		}
		if pin.Pin() != pin {
			t.Fatal("pinning a pin must return the same view")
		}
	}
}
