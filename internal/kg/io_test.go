package kg

import (
	"bytes"
	"strings"
	"testing"
)

func TestTSVRoundTrip(t *testing.T) {
	st, ids := musicStore(t)
	var buf bytes.Buffer
	if err := st.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	st2, err := ReadTSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Len() != st.Len() {
		t.Fatalf("round trip: got %d triples want %d", st2.Len(), st.Len())
	}
	// Same match semantics after the round trip.
	ty, ok := st2.Dict().Lookup("rdf:type")
	if !ok {
		t.Fatal("rdf:type lost in round trip")
	}
	singer, ok := st2.Dict().Lookup("singer")
	if !ok {
		t.Fatal("singer lost in round trip")
	}
	p2 := NewPattern(Var("s"), Const(ty), Const(singer))
	if got, want := st2.Cardinality(p2), st.Cardinality(typePattern(ids, "singer")); got != want {
		t.Fatalf("cardinality after round trip: got %d want %d", got, want)
	}
	if got := st2.MaxScore(p2); got != 100 {
		t.Fatalf("max score after round trip: got %v want 100", got)
	}
}

func TestReadTSVSkipsCommentsAndBlanks(t *testing.T) {
	src := "# header\n\na\tp\tb\t1.5\n  \na\tp\tc\t2\n"
	st, err := ReadTSV(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() != 2 {
		t.Fatalf("got %d triples want 2", st.Len())
	}
	if !st.Frozen() {
		t.Fatal("ReadTSV must freeze the store")
	}
}

func TestReadTSVErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"too few fields", "a\tp\tb\n"},
		{"bad score", "a\tp\tb\tnotanumber\n"},
		{"negative score", "a\tp\tb\t-3\n"},
	}
	for _, c := range cases {
		if _, err := ReadTSV(strings.NewReader(c.src)); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}
