package kg

import (
	"sort"
	"sync"
	"sync/atomic"
)

// This file implements snapshot pinning: Graph.Pin captures an immutable
// read view of a live store so that an entire operator tree — or one
// Evaluate/Count call — reads exactly one content version even while
// concurrent mutations land. Before pinning, each operator (and each
// recursion step of the exact evaluator) loaded its own snapshot, so a query
// racing an ingest could combine match lists from different versions: every
// list was internally consistent, but the joined answer corresponded to no
// single store state. A pinned view gives full snapshot isolation —
// mid-mutation answers are bit-identical to a quiescent store holding
// exactly the pinned mutation prefix. In particular a view pinned before a
// Delete keeps answering with the retracted fact, and one pinned after
// never sees it.
//
// For the flat store a pin is one atomic storeState load. For the sharded
// store it is one atomic directory load: the directory snapshot embeds the
// per-shard storeStates captured under the mutator lock at publish time, so
// shard views are exactly in lockstep with the directory — no visibility
// clamping is needed, and a mutation between two loads can never leak into
// a pin.

// pinnedStore is an immutable view of one segment: a captured storeState.
// Every read delegates straight to the snapshot.
type pinnedStore struct {
	dict *Dict
	s    *storeState
	// version is the owning store's content version at pin time (see
	// Graph.Version); constant for the pin's lifetime.
	version uint64
	// dup records HasDuplicates at pin time (it may over-approximate after
	// deletes, which only costs operators an unnecessary dedup map — never
	// correctness).
	dup bool
}

var _ matcher = (*pinnedStore)(nil)

// Dict implements Graph.
func (ps *pinnedStore) Dict() *Dict { return ps.dict }

// Len implements Graph: the pinned physical triple count (retracted slots
// included, mirroring Store.Len), constant for the pin's lifetime.
func (ps *pinnedStore) Len() int { return len(ps.s.triples) }

// Frozen implements Graph; a pin exists only after Freeze.
func (ps *pinnedStore) Frozen() bool { return true }

// Version implements Graph.
func (ps *pinnedStore) Version() uint64 { return ps.version }

// Pin implements Graph: a pinned view is already immutable.
func (ps *pinnedStore) Pin() Graph { return ps }

// Triple implements Graph.
func (ps *pinnedStore) Triple(i int32) Triple { return ps.s.triples[i] }

// HasDuplicates implements Graph.
func (ps *pinnedStore) HasDuplicates() bool { return ps.dup }

// MatchList implements Graph: the snapshot's own (cached) list.
func (ps *pinnedStore) MatchList(p Pattern) []int32 { return ps.s.matchList(p) }

// Cardinality implements Graph.
func (ps *pinnedStore) Cardinality(p Pattern) int { return ps.s.cardinality(p) }

// MaxScore implements Graph: the Definition 5 normalisation constant.
func (ps *pinnedStore) MaxScore(p Pattern) float64 { return ps.s.maxScore(p) }

// NormalizedScores implements Graph.
func (ps *pinnedStore) NormalizedScores(p Pattern) []float64 {
	return normalizedScores(ps, p)
}

// forCandidates implements matcher.
func (ps *pinnedStore) forCandidates(sub Pattern, f func(t Triple)) {
	ps.s.forCandidates(sub, f)
}

// Evaluate implements Graph over the pinned snapshot.
func (ps *pinnedStore) Evaluate(q Query) []Answer {
	return evaluateWeighted(ps, q, nil)
}

// EvaluateWeighted implements Graph.
func (ps *pinnedStore) EvaluateWeighted(q Query, weights []float64) []Answer {
	return evaluateWeighted(ps, q, weights)
}

// Count implements Graph.
func (ps *pinnedStore) Count(q Query) int { return countAnswers(ps, q) }

// Selectivity implements Graph.
func (ps *pinnedStore) Selectivity(q Query) float64 { return selectivity(ps, q) }

// PatternString implements Graph.
func (ps *pinnedStore) PatternString(p Pattern) string { return patternString(ps.dict, p) }

// QueryString implements Graph.
func (ps *pinnedStore) QueryString(q Query) string { return queryString(ps.dict, q) }

// dupFor computes a snapshot's duplicate flag across all segments.
func dupFor(s *storeState) bool {
	if s.post.hasDuplicates || s.headDup || s.crossDup {
		return true
	}
	return s.l1 != nil && s.l1.hasDuplicates
}

// pin captures the store's current snapshot as an immutable view.
func (st *Store) pin() *pinnedStore {
	st.pins.Add(1)
	s := st.state()
	return &pinnedStore{
		dict:    st.dict,
		s:       s,
		version: st.version.Load(),
		dup:     dupFor(s),
	}
}

// Pin implements Graph (see the file comment for the isolation contract).
func (st *Store) Pin() Graph { return st.pin() }

// pinnedSharded is an immutable view of a sharded store: one directory
// snapshot whose embedded per-shard states become the shard views, together
// describing exactly the global mutation prefix the directory covers.
type pinnedSharded struct {
	ss      *ShardedStore
	dir     *shardedDir
	shards  []*pinnedStore
	version uint64
	// merged lazily caches materialised global match lists for this pin
	// (cold paths — single-segment scans, oracles; the hot query path merges
	// per-shard views through ShardedListScan and never fills it).
	merged atomic.Pointer[listCache]
}

var _ matcher = (*pinnedSharded)(nil)
var _ ShardedGraph = (*pinnedSharded)(nil)

// pin captures the current directory snapshot; the embedded shard states
// were captured with it under the mutator lock, so the whole view is one
// consistent content version.
func (ss *ShardedStore) pin() *pinnedSharded {
	ss.pins.Add(1)
	d := ss.dir.Load()
	if d == nil {
		panic("kg: Pin before Freeze")
	}
	v := ss.version.Load()
	shards := make([]*pinnedStore, len(d.states))
	for i, s := range d.states {
		shards[i] = &pinnedStore{
			dict:    ss.dict,
			s:       s,
			version: v,
			dup:     dupFor(s),
		}
	}
	return &pinnedSharded{ss: ss, dir: d, shards: shards, version: v}
}

// Pin implements Graph (see the file comment for the isolation contract).
func (ss *ShardedStore) Pin() Graph { return ss.pin() }

// Dict implements Graph.
func (ps *pinnedSharded) Dict() *Dict { return ps.ss.dict }

// Len implements Graph: the pinned global physical triple count.
func (ps *pinnedSharded) Len() int { return len(ps.dir.locShard) }

// Frozen implements Graph.
func (ps *pinnedSharded) Frozen() bool { return true }

// Version implements Graph.
func (ps *pinnedSharded) Version() uint64 { return ps.version }

// Pin implements Graph.
func (ps *pinnedSharded) Pin() Graph { return ps }

// NumShards implements ShardedGraph.
func (ps *pinnedSharded) NumShards() int { return len(ps.shards) }

// ShardView implements ShardedGraph: shard i's pinned view.
func (ps *pinnedSharded) ShardView(i int) Graph { return ps.shards[i] }

// GlobalIndexes implements ShardedGraph. The table covers exactly the shard
// view's triples, so every visible local index maps.
func (ps *pinnedSharded) GlobalIndexes(i int) []int32 { return ps.dir.global[i] }

// Triple implements Graph: every pinned directory entry resolves in its
// shard's captured state.
func (ps *pinnedSharded) Triple(i int32) Triple {
	return ps.shards[ps.dir.locShard[i]].s.triples[ps.dir.locIdx[i]]
}

// HasDuplicates implements Graph.
func (ps *pinnedSharded) HasDuplicates() bool {
	for _, sh := range ps.shards {
		if sh.dup {
			return true
		}
	}
	return false
}

// subjectShard returns the single shard able to match p when p's subject is
// bound, and ok=false otherwise.
func (ps *pinnedSharded) subjectShard(p Pattern) (*pinnedStore, bool) {
	if p.S.IsVar {
		return nil, false
	}
	return ps.shards[ps.ss.shardFor(p.S.ID)], true
}

// Cardinality implements Graph over the pinned prefix.
func (ps *pinnedSharded) Cardinality(p Pattern) int {
	if sh, ok := ps.subjectShard(p); ok {
		return sh.Cardinality(p)
	}
	n := 0
	for _, sh := range ps.shards {
		n += sh.Cardinality(p)
	}
	return n
}

// MaxScore implements Graph over the pinned prefix.
func (ps *pinnedSharded) MaxScore(p Pattern) float64 {
	if sh, ok := ps.subjectShard(p); ok {
		return sh.MaxScore(p)
	}
	max := 0.0
	for _, sh := range ps.shards {
		if m := sh.MaxScore(p); m > max {
			max = m
		}
	}
	return max
}

// MatchList implements Graph: the global match list in canonical order,
// materialised once per pattern per pin behind a single-flight cache.
func (ps *pinnedSharded) MatchList(p Pattern) []int32 {
	c := ps.merged.Load()
	if c == nil {
		c = newListCache()
		if !ps.merged.CompareAndSwap(nil, c) {
			c = ps.merged.Load()
		}
	}
	return c.get(p.Key(), func() []int32 { return ps.mergeMatches(p) })
}

// mergeMatches translates every shard's match list to global indexes and
// restores canonical global order.
func (ps *pinnedSharded) mergeMatches(p Pattern) []int32 {
	var out []int32
	for si, sh := range ps.shards {
		glob := ps.dir.global[si]
		for _, li := range sh.MatchList(p) {
			out = append(out, glob[li])
		}
	}
	sort.Slice(out, func(a, b int) bool {
		ta, tb := ps.Triple(out[a]), ps.Triple(out[b])
		if ta.Score != tb.Score {
			return ta.Score > tb.Score
		}
		return out[a] < out[b]
	})
	return out
}

// NormalizedScores implements Graph.
func (ps *pinnedSharded) NormalizedScores(p Pattern) []float64 {
	return normalizedScores(ps, p)
}

// forCandidates implements matcher. A bound subject pins one shard; every
// other shape unions the shards' candidate enumerations.
func (ps *pinnedSharded) forCandidates(sub Pattern, f func(t Triple)) {
	if sh, ok := ps.subjectShard(sub); ok {
		sh.forCandidates(sub, f)
		return
	}
	for _, sh := range ps.shards {
		sh.forCandidates(sub, f)
	}
}

// fanoutLevel0 reports whether the evaluator's first join level can be
// fanned out across shards for q under order (see ShardedStore.Evaluate).
func (ps *pinnedSharded) fanoutLevel0(q Query, order []int) bool {
	if len(ps.shards) == 1 || len(order) == 0 {
		return false
	}
	_, pinned := ps.subjectShard(q.Patterns[order[0]])
	return !pinned
}

// Evaluate implements Graph: the complete answer set over the pinned prefix,
// with the first join level fanned out across shards (per-shard level-0
// candidate sets are disjoint, so the derivation multiset matches the
// sequential walk exactly).
func (ps *pinnedSharded) Evaluate(q Query) []Answer {
	return ps.evaluateWeightedParallel(q, nil)
}

// EvaluateWeighted implements Graph.
func (ps *pinnedSharded) EvaluateWeighted(q Query, weights []float64) []Answer {
	return ps.evaluateWeightedParallel(q, weights)
}

func (ps *pinnedSharded) evaluateWeightedParallel(q Query, weights []float64) []Answer {
	vs := NewVarSet(q)
	order := evalOrder(ps, q)
	if !ps.fanoutLevel0(q, order) {
		out := collectAnswers(ps, q, vs, order, weights, nil)
		out = DedupMax(out)
		SortAnswers(out)
		return out
	}
	outs := make([][]Answer, len(ps.shards))
	var wg sync.WaitGroup
	for si := range ps.shards {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			outs[si] = collectAnswers(ps, q, vs, order, weights, ps.shards[si].forCandidates)
		}(si)
	}
	wg.Wait()
	var out []Answer
	for _, o := range outs {
		out = append(out, o...)
	}
	out = DedupMax(out)
	SortAnswers(out)
	return out
}

// Count implements Graph (see ShardedStore.Count for the fan-out rules).
func (ps *pinnedSharded) Count(q Query) int {
	vs := NewVarSet(q)
	order := evalOrder(ps, q)
	if ps.HasDuplicates() || !ps.fanoutLevel0(q, order) {
		return countAnswers(ps, q)
	}
	counts := make([]int, len(ps.shards))
	var wg sync.WaitGroup
	for si := range ps.shards {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			counts[si] = countDerivations(ps, q, vs, order, ps.shards[si].forCandidates)
		}(si)
	}
	wg.Wait()
	n := 0
	for _, c := range counts {
		n += c
	}
	return n
}

// Selectivity implements Graph.
func (ps *pinnedSharded) Selectivity(q Query) float64 { return selectivity(ps, q) }

// PatternString implements Graph.
func (ps *pinnedSharded) PatternString(p Pattern) string { return patternString(ps.ss.dict, p) }

// QueryString implements Graph.
func (ps *pinnedSharded) QueryString(q Query) string { return queryString(ps.ss.dict, q) }
